#!/usr/bin/env python3
"""Compare a BENCH_micro.json run against a checked-in baseline.

The micro benches (bench_micro_grad_batch, bench_micro_grad_accumulate,
bench_micro_model_store) emit a flat JSON object of metrics into
bench_results/BENCH_micro.json. This tool diffs two such files and flags
regressions, so the perf trajectory of the hot paths is visible per PR.

Metric semantics are inferred from the key name:
  *_ns            lower is better (times)        -> flag when current/baseline > 1 + tol
  *.speedup       higher is better (ratios)      -> flag when baseline/current > 1 + tol
  *.bytes_ratio   higher is better (wire wins)   -> flag when baseline/current > 1 + tol
  *.bit_identical / *.trajectory_bitmatch_*      -> flag when current != 1 (hard invariant)
  *.adaptive_over_dense                          -> flag when current > 1.2 (advisory:
                                                   it is measured timing too)

Exit code is 0 unless --strict is passed AND a hard (bit-identity) invariant
broke. All wall-clock-derived metrics are advisory — shared CI runners are
noisy — so timing drift never fails the job.

Usage:
  python3 tools/bench_diff.py --baseline bench_results/BENCH_micro.baseline.json \
      --current build/bench_results/BENCH_micro.json [--tolerance 0.3] [--strict]
"""

import argparse
import json
import sys

ADAPTIVE_OVER_DENSE_LIMIT = 1.2


def classify(key: str) -> str:
    if key.endswith(".bit_identical") or ".trajectory_bitmatch" in key:
        return "invariant"
    if key.endswith(".adaptive_over_dense"):
        return "bounded"
    if key.endswith("_ns"):
        return "lower_better"
    if key.endswith(".speedup") or key.endswith(".bytes_ratio"):
        return "higher_better"
    return "info"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.3,
                        help="relative drift allowed on timing/ratio metrics")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when a hard invariant breaks")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    regressions, invariant_failures = [], []
    keys = sorted(set(baseline) | set(current))
    width = max((len(k) for k in keys), default=0)
    print(f"{'metric'.ljust(width)}  {'baseline':>12}  {'current':>12}  status")
    for key in keys:
        base, cur = baseline.get(key), current.get(key)
        if base is None or cur is None:
            status = "baseline-only" if cur is None else "new"
            # A hard invariant that simply was not measured must not slip
            # through --strict: dropping a bench from the CI run would
            # otherwise bypass the bit-identity guard silently.
            if cur is None and classify(key) == "invariant":
                status = "INVARIANT NOT MEASURED"
                invariant_failures.append(key)
        else:
            kind = classify(key)
            status = "ok"
            if kind == "invariant" and cur != 1:
                status = "INVARIANT BROKEN"
                invariant_failures.append(key)
            elif kind == "bounded" and cur > ADAPTIVE_OVER_DENSE_LIMIT:
                # Advisory like all wall-clock metrics: the 1.2 budget is a
                # calibration target, but it is measured timing and shared
                # runners are noisy — report loudly, never fail --strict.
                status = f"OVER LIMIT ({ADAPTIVE_OVER_DENSE_LIMIT})"
                regressions.append(key)
            elif kind == "lower_better" and base > 0 and cur / base > 1 + args.tolerance:
                status = f"regressed {cur / base:.2f}x"
                regressions.append(key)
            elif kind == "higher_better" and cur > 0 and base / cur > 1 + args.tolerance:
                status = f"regressed {base / cur:.2f}x"
                regressions.append(key)

        def fmt(v):
            return f"{v:12.4g}" if isinstance(v, (int, float)) else f"{'-':>12}"

        print(f"{key.ljust(width)}  {fmt(base)}  {fmt(cur)}  {status}")

    print(f"\n{len(regressions)} timing/ratio regression(s), "
          f"{len(invariant_failures)} invariant failure(s).")
    if invariant_failures:
        print("invariants:", ", ".join(invariant_failures))
    if args.strict and invariant_failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
