#!/usr/bin/env python3
"""Compare a BENCH_micro.json run against a checked-in baseline.

The micro benches (bench_micro_grad_batch, bench_micro_grad_accumulate,
bench_micro_model_store) emit a flat JSON object of metrics into
bench_results/BENCH_micro.json. This tool diffs two such files and flags
regressions, so the perf trajectory of the hot paths is visible per PR.

Metric semantics are inferred from the key name:
  *_ns            lower is better (times)        -> flag when current/baseline > 1 + tol
  *.speedup       higher is better (ratios)      -> flag when baseline/current > 1 + tol
  *.bytes_ratio   higher is better (wire wins)   -> flag when baseline/current > 1 + tol
  *.bit_identical / *.trajectory_bitmatch_*      -> flag when current != 1 (hard invariant)
  *.adaptive_over_dense                          -> flag when current > 1.2 (advisory:
                                                   it is measured timing too)

Exit code is 0 unless --strict is passed AND a hard (bit-identity) invariant
broke. All wall-clock-derived metrics are advisory — shared CI runners are
noisy — so timing drift never fails the job.

With --telemetry-baseline/--telemetry-current the tool additionally diffs two
span-telemetry reports (TelemetryReport::to_json, docs/TELEMETRY.md): per-stage
p50/p99 and share-of-total, plus record/drop totals. Telemetry drift is always
advisory — it never affects the exit code, even under --strict.

Usage:
  python3 tools/bench_diff.py --baseline bench_results/BENCH_micro.baseline.json \
      --current build/bench_results/BENCH_micro.json [--tolerance 0.3] [--strict] \
      [--telemetry-baseline bench_results/TELEMETRY_fig3.baseline.json \
       --telemetry-current build/bench_results/TELEMETRY_fig3.json]
"""

import argparse
import json
import sys

ADAPTIVE_OVER_DENSE_LIMIT = 1.2


def classify(key: str) -> str:
    if key.endswith(".bit_identical") or ".trajectory_bitmatch" in key:
        return "invariant"
    if key.endswith(".adaptive_over_dense"):
        return "bounded"
    if key.endswith("_ns"):
        return "lower_better"
    if key.endswith(".speedup") or key.endswith(".bytes_ratio"):
        return "higher_better"
    return "info"


def flatten_telemetry(report: dict) -> dict:
    """Flattens a schema-1 telemetry report to the flat-metric shape the
    main diff loop prints: per-stage p50/p99 (lower-better advisory via the
    _ns suffix) and share-of-total / volume counters (info)."""
    out = {}
    for name, stage in sorted(report.get("stages", {}).items()):
        out[f"telemetry.{name}.p50_ns"] = stage.get("p50_ns")
        out[f"telemetry.{name}.p99_ns"] = stage.get("p99_ns")
        out[f"telemetry.{name}.share"] = stage.get("share")
    staleness = report.get("staleness", {})
    out["telemetry.staleness.p50_versions"] = staleness.get("p50_ns")
    out["telemetry.staleness.p99_versions"] = staleness.get("p99_ns")
    out["telemetry.records"] = report.get("records")
    out["telemetry.dropped"] = report.get("dropped")
    return out


def print_diff(baseline: dict, current: dict, tolerance: float,
               regressions: list, invariant_failures: list) -> None:
    keys = sorted(set(baseline) | set(current))
    width = max((len(k) for k in keys), default=0)
    print(f"{'metric'.ljust(width)}  {'baseline':>12}  {'current':>12}  status")
    for key in keys:
        base, cur = baseline.get(key), current.get(key)
        if base is None or cur is None:
            status = "baseline-only" if cur is None else "new"
            # A hard invariant that simply was not measured must not slip
            # through --strict: dropping a bench from the CI run would
            # otherwise bypass the bit-identity guard silently.
            if cur is None and classify(key) == "invariant":
                status = "INVARIANT NOT MEASURED"
                invariant_failures.append(key)
        else:
            kind = classify(key)
            status = "ok"
            if kind == "invariant" and cur != 1:
                status = "INVARIANT BROKEN"
                invariant_failures.append(key)
            elif kind == "bounded" and cur > ADAPTIVE_OVER_DENSE_LIMIT:
                # Advisory like all wall-clock metrics: the 1.2 budget is a
                # calibration target, but it is measured timing and shared
                # runners are noisy — report loudly, never fail --strict.
                status = f"OVER LIMIT ({ADAPTIVE_OVER_DENSE_LIMIT})"
                regressions.append(key)
            elif kind == "lower_better" and base > 0 and cur / base > 1 + tolerance:
                status = f"regressed {cur / base:.2f}x"
                regressions.append(key)
            elif kind == "higher_better" and cur > 0 and base / cur > 1 + tolerance:
                status = f"regressed {base / cur:.2f}x"
                regressions.append(key)

        def fmt(v):
            return f"{v:12.4g}" if isinstance(v, (int, float)) else f"{'-':>12}"

        print(f"{key.ljust(width)}  {fmt(base)}  {fmt(cur)}  {status}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.3,
                        help="relative drift allowed on timing/ratio metrics")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when a hard invariant breaks")
    parser.add_argument("--telemetry-baseline",
                        help="checked-in span-telemetry report to diff against")
    parser.add_argument("--telemetry-current",
                        help="freshly exported span-telemetry report")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    regressions, invariant_failures = [], []
    print_diff(baseline, current, args.tolerance, regressions, invariant_failures)

    if args.telemetry_baseline and args.telemetry_current:
        with open(args.telemetry_baseline) as f:
            tel_base = json.load(f)
        with open(args.telemetry_current) as f:
            tel_cur = json.load(f)
        if tel_base.get("schema_version") != tel_cur.get("schema_version"):
            print(f"\ntelemetry schema mismatch: baseline v"
                  f"{tel_base.get('schema_version')} vs current v"
                  f"{tel_cur.get('schema_version')} — skipping stage diff")
        else:
            # Advisory by construction: telemetry drift is host timing and is
            # kept out of invariant_failures so it can never fail --strict.
            print("\nspan-telemetry stage diff (advisory):")
            tel_regressions = []
            print_diff(flatten_telemetry(tel_base), flatten_telemetry(tel_cur),
                       args.tolerance, tel_regressions, [])
            print(f"{len(tel_regressions)} telemetry drift(s) (advisory only).")

    print(f"\n{len(regressions)} timing/ratio regression(s), "
          f"{len(invariant_failures)} invariant failure(s).")
    if invariant_failures:
        print("invariants:", ", ".join(invariant_failures))
    if args.strict and invariant_failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
