#!/usr/bin/env python3
"""Docs health check, run by the CI `docs` job (and freely by hand).

Two gates:

1. Link check: every relative markdown link `[text](path)` in the repo's
   *.md files must point at an existing file or directory (external http/
   mailto links and pure #anchors are skipped; a trailing #anchor on a file
   link is stripped before the existence check).

2. Module README coverage: every `src/<module>/` directory must contain a
   README.md, and docs/ARCHITECTURE.md's module index must reference it
   (substring `src/<module>/README.md`), so the per-module indexes stay
   discoverable from the architecture entry point.

3. Test module registration: every `tests/<module>/` directory holding
   `*_test.cpp` files must be listed in tests/CMakeLists.txt's
   asyncml_add_test_module foreach — an unregistered directory is a test
   suite that silently never runs.

Exit code 0 = healthy; 1 = problems (each printed on its own line).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SKIP_DIRS = {".git", ".claude", "build", "bench_results", "third_party"}
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def markdown_files() -> list[Path]:
    files = []
    for path in sorted(REPO.rglob("*.md")):
        parts = set(path.relative_to(REPO).parts)
        if parts & SKIP_DIRS:
            continue
        files.append(path)
    return files


def check_links(md: Path) -> list[str]:
    problems = []
    for target in LINK.findall(md.read_text(encoding="utf-8")):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        resolved = (md.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            problems.append(
                f"{md.relative_to(REPO)}: broken link -> {target}"
            )
    return problems


def check_module_readmes() -> list[str]:
    problems = []
    architecture = REPO / "docs" / "ARCHITECTURE.md"
    arch_text = architecture.read_text(encoding="utf-8") if architecture.exists() else ""
    if not arch_text:
        problems.append("docs/ARCHITECTURE.md is missing")
    for module_dir in sorted((REPO / "src").iterdir()):
        if not module_dir.is_dir():
            continue
        module = module_dir.name
        if not (module_dir / "README.md").exists():
            problems.append(f"src/{module}/ has no README.md")
        elif f"src/{module}/README.md" not in arch_text:
            problems.append(
                f"docs/ARCHITECTURE.md does not reference src/{module}/README.md"
            )
    return problems


def check_test_modules() -> list[str]:
    problems = []
    cmake = REPO / "tests" / "CMakeLists.txt"
    cmake_text = cmake.read_text(encoding="utf-8") if cmake.exists() else ""
    if not cmake_text:
        return ["tests/CMakeLists.txt is missing"]
    match = re.search(r"foreach\(MODULE\s+([^)]*)\)", cmake_text)
    registered = set(match.group(1).split()) if match else set()
    for module_dir in sorted((REPO / "tests").iterdir()):
        if not module_dir.is_dir() or not list(module_dir.glob("*_test.cpp")):
            continue
        if module_dir.name not in registered:
            problems.append(
                f"tests/{module_dir.name}/ is not registered in "
                "tests/CMakeLists.txt (asyncml_add_test_module foreach)"
            )
    return problems


def main() -> int:
    problems: list[str] = []
    files = markdown_files()
    for md in files:
        problems.extend(check_links(md))
    problems.extend(check_module_readmes())
    problems.extend(check_test_modules())
    for problem in problems:
        print(problem)
    print(
        f"check_docs: {len(files)} markdown files scanned, "
        f"{len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
