// Out-of-process wire endpoint launcher (docs/TRANSPORT.md).
//
// The socket transport backends spawn one of these per worker. It connects
// back to the driver (--uds PATH or --tcp HOST PORT), introduces itself with
// a kHello frame, and then serves decode→validate→re-encode round trips via
// transport::run_worker_endpoint until shutdown or driver EOF.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "transport/endpoint.hpp"
#include "transport/socket.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--uds PATH | --tcp HOST PORT) --worker ID"
               " [--max-frame BYTES] [--hello-deadline-ms MS]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using asyncml::transport::EndpointOptions;
  using asyncml::transport::ScopedFd;

  std::string uds_path;
  std::string tcp_host;
  std::uint16_t tcp_port = 0;
  EndpointOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--uds") {
      uds_path = next("--uds");
    } else if (arg == "--tcp") {
      tcp_host = next("--tcp");
      tcp_port = static_cast<std::uint16_t>(std::strtoul(next("--tcp"), nullptr, 10));
    } else if (arg == "--worker") {
      opts.worker = static_cast<std::int32_t>(std::strtol(next("--worker"), nullptr, 10));
    } else if (arg == "--max-frame") {
      opts.max_frame_bytes = std::strtoull(next("--max-frame"), nullptr, 10);
    } else if (arg == "--hello-deadline-ms") {
      opts.hello_deadline_ms = std::strtod(next("--hello-deadline-ms"), nullptr);
    } else {
      return usage(argv[0]);
    }
  }
  if (opts.worker < 0 || (uds_path.empty() == (tcp_host.empty() && tcp_port == 0)) ||
      opts.max_frame_bytes == 0) {
    return usage(argv[0]);
  }

  asyncml::support::StatusOr<ScopedFd> fd =
      !uds_path.empty()
          ? asyncml::transport::connect_unix(uds_path, opts.hello_deadline_ms)
          : asyncml::transport::connect_tcp(tcp_host, tcp_port, opts.hello_deadline_ms);
  if (!fd.is_ok()) {
    std::fprintf(stderr, "asyncml_worker[%d]: connect failed: %s\n", opts.worker,
                 fd.status().to_string().c_str());
    return 1;
  }
  return asyncml::transport::run_worker_endpoint(fd.value().get(), opts);
}
