// Sharding-invariance property sweep (ISSUE 7 acceptance): the shard count of
// the model plane is a *layout* knob, not a *math* knob. For the synchronous
// solvers the trajectory must be bit-identical for S = 1 vs S ∈ {2, 4, 8} at
// every density — in both combine modes (kDriver's flat partition-ordered
// fold and kTree's fanout tree are each S-invariant, though the two modes are
// distinct FP association orders and need not match each other). The async
// path additionally checks that masked shard fetches actually skip shards on
// rcv1-like sparsity.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "data/synthetic.hpp"
#include "optim/asgd.hpp"
#include "optim/objective.hpp"
#include "optim/sgd.hpp"

namespace asyncml::optim {
namespace {

data::synthetic::Problem sparse_problem(double density) {
  data::synthetic::SparseSpec spec;
  spec.rows = 160;
  spec.cols = 96;
  spec.density = density;
  spec.noise_std = 0.0;
  return data::synthetic::make_sparse(spec, /*seed=*/41);
}

RunResult run_scheduled_sgd(const std::shared_ptr<const data::Dataset>& dataset,
                            std::uint32_t num_shards, core::CombineMode mode) {
  const Workload workload = Workload::create(dataset, 8, make_least_squares());

  engine::Cluster::Config cluster_config;
  cluster_config.num_workers = 4;
  cluster_config.cores_per_worker = 2;
  cluster_config.network.time_scale = 0.0;
  engine::Cluster cluster(cluster_config);

  SolverConfig config;
  config.updates = 24;
  config.batch_fraction = 0.25;
  config.service_floor_ms = 0.1;
  config.eval_every = 8;
  config.seed = 23;
  config.step = inverse_decay_step(0.05, 1.0, 0.01);
  config.store_config.num_shards = num_shards;
  config.combine_mode = mode;
  return ScheduledSgdSolver::run(cluster, workload, config);
}

RunResult run_asgd(const std::shared_ptr<const data::Dataset>& dataset,
                   std::uint32_t num_shards, std::size_t num_workers,
                   std::uint64_t* shard_reads = nullptr,
                   std::uint64_t* shard_reads_partial = nullptr,
                   std::uint64_t* shard_touches = nullptr) {
  const Workload workload = Workload::create(dataset, 8, make_least_squares());

  engine::Cluster::Config cluster_config;
  cluster_config.num_workers = num_workers;
  // One core per worker: a single-worker run then executes tasks serially,
  // so the staleness pattern — and with it the trajectory — is deterministic
  // and the S-invariance check is meaningful.
  cluster_config.cores_per_worker = 1;
  cluster_config.network.time_scale = 0.0;
  engine::Cluster cluster(cluster_config);

  SolverConfig config;
  config.updates = 96;
  config.batch_fraction = 0.25;
  config.service_floor_ms = 0.1;
  config.eval_every = 32;
  config.seed = 23;
  config.step = inverse_decay_step(0.05, 1.0, 0.01);
  config.store_config.num_shards = num_shards;
  RunResult result = AsgdSolver::run(cluster, workload, config);
  if (shard_reads != nullptr) *shard_reads = result.shard_reads;
  if (shard_reads_partial != nullptr) *shard_reads_partial = result.shard_reads_partial;
  if (shard_touches != nullptr) *shard_touches = result.shard_touches;
  return result;
}

using Param = std::tuple<double /*density*/, const char* /*combine*/>;

class ShardEquivalenceSweep : public ::testing::TestWithParam<Param> {};

// Tentpole acceptance: ScheduledSgd trajectories are bit-identical for
// S = 1 vs S ∈ {2, 4, 8} at every density, in both combine modes.
TEST_P(ShardEquivalenceSweep, ScheduledSgdIsBitIdenticalAcrossShardCounts) {
  const auto [density, combine_name] = GetParam();
  const core::CombineMode mode = std::string(combine_name) == "tree"
                                     ? core::CombineMode::kTree
                                     : core::CombineMode::kDriver;
  const auto problem = sparse_problem(density);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);

  const RunResult reference = run_scheduled_sgd(dataset, 1, mode);
  ASSERT_EQ(reference.updates, 24u);

  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    const RunResult sharded = run_scheduled_sgd(dataset, shards, mode);
    EXPECT_TRUE(linalg::bitwise_equal(reference.final_w, sharded.final_w))
        << "S=" << shards << " density=" << density << " mode=" << combine_name;
    ASSERT_EQ(sharded.trace.size(), reference.trace.size());
    for (std::size_t i = 0; i < reference.trace.size(); ++i) {
      EXPECT_EQ(sharded.trace[i].error, reference.trace[i].error)
          << "trace point " << i << " S=" << shards;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DensitiesTimesCombineModes, ShardEquivalenceSweep,
    ::testing::Combine(::testing::Values(0.001, 0.01, 0.1, 1.0),
                       ::testing::Values("driver", "tree")),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string d = std::to_string(std::get<0>(info.param));
      for (char& c : d) {
        if (c == '.') c = 'p';
      }
      return "density_" + d + "_" + std::get<1>(info.param);
    });

// Plain (fixed-placement) SGD never touches the sharded store — its broadcast
// path is the engine's — but the knob must still be inert.
TEST(ShardEquivalence, PlainSgdIgnoresShardCount) {
  const auto problem = sparse_problem(0.01);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  const Workload workload = Workload::create(dataset, 8, make_least_squares());

  linalg::DenseVector reference;
  for (const std::uint32_t shards : {1u, 4u}) {
    engine::Cluster::Config cluster_config;
    cluster_config.num_workers = 4;
    cluster_config.cores_per_worker = 2;
    cluster_config.network.time_scale = 0.0;
    engine::Cluster cluster(cluster_config);

    SolverConfig config;
    config.updates = 24;
    config.batch_fraction = 0.25;
    config.service_floor_ms = 0.1;
    config.eval_every = 8;
    config.seed = 23;
    config.step = inverse_decay_step(0.05, 1.0, 0.01);
    config.store_config.num_shards = shards;
    const RunResult result = SgdSolver::run(cluster, workload, config);
    if (shards == 1) {
      reference = result.final_w;
    } else {
      EXPECT_TRUE(linalg::bitwise_equal(reference, result.final_w));
    }
  }
}

// ASGD with one worker is serially collected, so sharding may only perturb
// the trajectory through model assembly — which is bit-exact; the objective
// agrees to ≤ 1e-8 (ISSUE 7 acceptance; bitwise in practice).
TEST(ShardEquivalence, SingleWorkerAsgdObjectiveMatchesAcrossShardCounts) {
  const auto problem = sparse_problem(0.01);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);

  const RunResult reference = run_asgd(dataset, 1, /*num_workers=*/1);
  const double ref_objective = reference.final_error();
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    const RunResult sharded = run_asgd(dataset, shards, /*num_workers=*/1);
    EXPECT_NEAR(sharded.final_error(), ref_objective, 1e-8) << "S=" << shards;
  }
}

// The point of the sharded plane: on rcv1-like sparsity (0.2% density) with
// topic locality — each partition's documents draw features from a narrow
// band of the vocabulary, as rcv1 category blocks do — a batch's support
// union touches < S shards, so ≥ 90% of worker model reads fetch only a
// subset of shards and the mean shard-touch count stays below S.
TEST(ShardEquivalence, SparseBatchesFetchFewerShardsThanS) {
  constexpr std::size_t kRows = 256;
  constexpr std::size_t kCols = 4096;
  constexpr std::size_t kParts = 8;
  constexpr std::size_t kBand = kCols / kParts;  // 512-wide topic bands
  std::vector<linalg::SparseVector> rows;
  rows.reserve(kRows);
  linalg::DenseVector labels(kRows);
  std::uint64_t rng = 99;
  const auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  for (std::size_t r = 0; r < kRows; ++r) {
    const std::size_t part = r / (kRows / kParts);
    linalg::SparseVector row;
    std::uint32_t col = static_cast<std::uint32_t>(part * kBand);
    // ~8 in-band nnz per row: 8/4096 ≈ 0.2% global density, rcv1-like.
    for (int k = 0; k < 8 && col < (part + 1) * kBand; ++k) {
      col += 1 + static_cast<std::uint32_t>(next() % (kBand / 8 - 1));
      row.push_back(col, 1.0 + static_cast<double>(next() % 100) / 100.0);
      labels[r] += row.values().back();
    }
    rows.push_back(std::move(row));
  }
  auto dataset = std::make_shared<const data::Dataset>(data::Dataset(
      "rcv1_banded", linalg::csr_from_rows(rows, kCols), std::move(labels)));
  ASSERT_LT(dataset->density(), 0.0025);

  std::uint64_t reads = 0;
  std::uint64_t partial = 0;
  std::uint64_t touches = 0;
  (void)run_asgd(dataset, /*num_shards=*/4, /*num_workers=*/4, &reads, &partial,
                 &touches);
  ASSERT_GT(reads, 0u);
  // ≥ 90% of reads touched fewer than S shards…
  EXPECT_GE(partial * 10, reads * 9)
      << partial << "/" << reads << " reads were partial";
  // …so the average shard-touch count is strictly below S.
  EXPECT_LT(touches, reads * 4);
}

}  // namespace
}  // namespace asyncml::optim
