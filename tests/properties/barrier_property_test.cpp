// Property sweeps over barrier controls: monotonicity in thresholds and
// consistency across randomized STAT snapshots.

#include <gtest/gtest.h>

#include "core/barrier.hpp"
#include "support/rng.hpp"

namespace asyncml::core {
namespace {

StatSnapshot random_snapshot(support::RngStream& rng, int workers) {
  StatSnapshot snap;
  snap.current_version = rng.next_below(100);
  snap.workers.resize(workers);
  for (int w = 0; w < workers; ++w) {
    WorkerStat& row = snap.workers[w];
    row.id = w;
    row.outstanding = static_cast<int>(rng.next_below(3));
    row.available = row.outstanding == 0;
    row.ever_dispatched = rng.bernoulli(0.8);
    row.task_staleness = row.ever_dispatched ? rng.next_below(20) : 0;
    row.tasks_completed = rng.next_below(50);
    row.avg_task_ms = rng.uniform(0.5, 10.0);
  }
  return snap;
}

class BarrierRandomSnapshots : public ::testing::TestWithParam<int> {};

TEST_P(BarrierRandomSnapshots, SspMonotoneInBound) {
  // If SSP(s) opens the gate, SSP(s') with s' >= s must open it too.
  support::RngStream rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const StatSnapshot snap = random_snapshot(rng, 8);
    bool prev_open = false;
    for (std::uint64_t s = 1; s <= 25; ++s) {
      const bool open = barriers::ssp(s).gate(snap);
      if (prev_open) {
        EXPECT_TRUE(open) << "SSP not monotone at s=" << s;
      }
      prev_open = open;
    }
  }
}

TEST_P(BarrierRandomSnapshots, AvailableFractionMonotoneInBeta) {
  // If the gate opens at beta, it must open at any smaller beta' (fewer
  // required workers).
  support::RngStream rng(GetParam() + 1'000);
  for (int trial = 0; trial < 200; ++trial) {
    const StatSnapshot snap = random_snapshot(rng, 8);
    bool prev_open = false;
    for (double beta = 1.0; beta >= 0.1; beta -= 0.1) {
      const bool open = barriers::available_fraction(beta).gate(snap);
      if (prev_open) {
        EXPECT_TRUE(open) << "beta barrier not monotone at " << beta;
      }
      prev_open = open;
    }
  }
}

TEST_P(BarrierRandomSnapshots, BspImpliesEveryFractionGate) {
  support::RngStream rng(GetParam() + 2'000);
  for (int trial = 0; trial < 200; ++trial) {
    const StatSnapshot snap = random_snapshot(rng, 6);
    if (barriers::bsp().gate(snap)) {
      for (double beta : {0.25, 0.5, 0.75, 1.0}) {
        EXPECT_TRUE(barriers::available_fraction(beta).gate(snap));
      }
    }
  }
}

TEST_P(BarrierRandomSnapshots, AspAdmitsSupersetOfEveryFilter) {
  support::RngStream rng(GetParam() + 3'000);
  const BarrierControl asp = barriers::asp();
  const BarrierControl ctime = barriers::completion_time_within(1.2);
  for (int trial = 0; trial < 200; ++trial) {
    const StatSnapshot snap = random_snapshot(rng, 8);
    for (const WorkerStat& w : snap.workers) {
      if (ctime.filter(w, snap)) {
        EXPECT_TRUE(asp.filter(w, snap));
      }
    }
  }
}

TEST_P(BarrierRandomSnapshots, BothIsIntersection) {
  support::RngStream rng(GetParam() + 4'000);
  const BarrierControl a = barriers::ssp(5);
  const BarrierControl b = barriers::available_fraction(0.5);
  const BarrierControl ab = barriers::both(a, b);
  for (int trial = 0; trial < 200; ++trial) {
    const StatSnapshot snap = random_snapshot(rng, 8);
    EXPECT_EQ(ab.gate(snap), a.gate(snap) && b.gate(snap));
  }
}

TEST_P(BarrierRandomSnapshots, CompletionTimeMonotoneInRatio) {
  support::RngStream rng(GetParam() + 5'000);
  for (int trial = 0; trial < 100; ++trial) {
    const StatSnapshot snap = random_snapshot(rng, 8);
    for (const WorkerStat& w : snap.workers) {
      bool prev_pass = false;
      for (double ratio = 0.5; ratio <= 3.0; ratio += 0.25) {
        const bool pass = barriers::completion_time_within(ratio).filter(w, snap);
        if (prev_pass) {
          EXPECT_TRUE(pass);
        }
        prev_pass = pass;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BarrierRandomSnapshots, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace asyncml::core
