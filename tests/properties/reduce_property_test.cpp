// Property sweep: engine aggregations equal serial folds for arbitrary data,
// across partition counts, worker counts, and aggregation topology
// (flat aggregate vs treeAggregate at several fanouts).

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "engine/actions.hpp"
#include "support/rng.hpp"

namespace asyncml::engine {
namespace {

using Param = std::tuple<int /*workers*/, int /*partitions*/, int /*fanout: 0=flat*/>;

class ReduceEquivalence : public ::testing::TestWithParam<Param> {};

TEST_P(ReduceEquivalence, MatchesSerialFold) {
  const auto [workers, partitions, fanout] = GetParam();

  support::RngStream rng(1234 + workers * 100 + partitions * 10 + fanout);
  std::vector<long> values(500);
  for (auto& v : values) v = static_cast<long>(rng.next_below(1'000));
  const long expected = std::accumulate(values.begin(), values.end(), 0L);

  Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 2;
  config.network.time_scale = 0.0;
  Cluster cluster(config);

  const Rdd<long> rdd = make_vector_rdd(values, partitions);
  const auto seq = [](long acc, const long& x) { return acc + x; };
  const auto comb = [](long a, const long& b) { return a + b; };

  const long total =
      fanout == 0
          ? aggregate_sync(cluster, rdd, 0L, seq, comb, StageOptions{})
          : tree_aggregate_sync(cluster, rdd, 0L, seq, comb, StageOptions{}, fanout);
  EXPECT_EQ(total, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ReduceEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 5), ::testing::Values(1, 3, 8, 16),
                       ::testing::Values(0, 2, 4)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_f" +
             std::to_string(std::get<2>(info.param));
    });

// Floating-point variant: aggregation order may differ, so compare with a
// tolerance scaled to the magnitude of the sum.
class FloatReduceEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FloatReduceEquivalence, CloseToSerialFold) {
  const int partitions = GetParam();
  support::RngStream rng(42);
  std::vector<double> values(2'000);
  for (auto& v : values) v = rng.next_gaussian();
  const double expected = std::accumulate(values.begin(), values.end(), 0.0);

  Cluster::Config config;
  config.num_workers = 4;
  config.network.time_scale = 0.0;
  Cluster cluster(config);
  const double total = aggregate_sync(
      cluster, make_vector_rdd(values, partitions), 0.0,
      [](double acc, const double& x) { return acc + x; },
      [](double a, const double& b) { return a + b; }, StageOptions{});
  EXPECT_NEAR(total, expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, FloatReduceEquivalence,
                         ::testing::Values(1, 2, 7, 32));

}  // namespace
}  // namespace asyncml::engine
