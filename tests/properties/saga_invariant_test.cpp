// SAGA-specific invariants of the history machinery:
//   * after any run, every visited sample's version table entry points at a
//     published version no newer than the final model;
//   * the distributed SAGA gradient-pair computation matches a serial
//     recomputation from the same version table;
//   * the ᾱ running mean equals (1/n) Σ_j α_j recomputed from scratch.

#include <gtest/gtest.h>

#include "core/async_context.hpp"
#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "optim/objective.hpp"
#include "optim/payloads.hpp"
#include "optim/saga.hpp"
#include "optim/solver_util.hpp"
#include "optim/workload.hpp"

namespace asyncml::optim {
namespace {

engine::Cluster::Config quiet_config(int workers) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 1;
  config.network.time_scale = 0.0;
  return config;
}

class SagaInvariants : public ::testing::TestWithParam<int /*partitions*/> {};

TEST_P(SagaInvariants, VersionTableConsistentAndAlphaBarExact) {
  const int partitions = GetParam();
  const auto problem = data::synthetic::tiny(90, 6, 0.0, 21);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  const Workload workload = Workload::create(dataset, partitions, make_least_squares());
  const std::size_t n = workload.n();
  const std::size_t dim = workload.dim();

  engine::Cluster cluster(quiet_config(2));
  core::AsyncContext ac(cluster, partitions);
  auto table = std::make_shared<core::SampleVersionTable>(n, detail::kNeverVisited);

  const engine::Rdd<data::LabeledPoint> sampled = workload.points.sample(0.3);
  core::SubmitOptions opts;
  opts.rng_seed = 77;

  linalg::DenseVector w(dim);
  linalg::DenseVector alpha_bar(dim);
  core::HistoryBroadcast w_br = ac.async_broadcast(w);
  auto comb = detail::grad_hist_comb();

  // Run a handful of SAGA rounds, mirroring SagaSolver's update rule.
  std::vector<linalg::DenseVector> published{w};
  for (int k = 0; k < 12; ++k) {
    auto seq = detail::make_saga_seq(workload.loss, w_br, table,
                                     linalg::GradVectorConfig(dim));
    auto results = ac.sync_round(sampled, GradHist{}, seq, opts);
    GradHist total;
    for (auto& r : results) total = comb(std::move(total), r.result.payload.get<GradHist>());
    if (total.count > 0) {
      const double inv_b = 1.0 / static_cast<double>(total.count);
      linalg::DenseVector direction = alpha_bar;
      total.grad.scale_into(inv_b, direction.span());
      total.hist.scale_into(-inv_b, direction.span());
      linalg::axpy(-0.02, direction.span(), w.span());
      const double inv_n = 1.0 / static_cast<double>(n);
      total.grad.scale_into(inv_n, alpha_bar.span());
      total.hist.scale_into(-inv_n, alpha_bar.span());
    }
    ac.advance_version();
    w_br = ac.async_broadcast(w);
    published.push_back(w);
  }

  // Invariant 1: visited samples point at valid published versions.
  const engine::Version final_version = ac.current_version();
  std::size_t visited = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const engine::Version v = table->get(i);
    if (v == detail::kNeverVisited) continue;
    ++visited;
    EXPECT_LE(v, final_version);
    EXPECT_TRUE(ac.history().id_of(v).has_value());
  }
  EXPECT_GT(visited, n / 2);  // 30% sampling x 12 rounds visits most samples

  // Invariant 2: ᾱ equals the mean of per-sample stored gradients
  // recomputed from the version table (zero for unvisited samples).
  linalg::DenseVector expected_mean(dim);
  for (std::size_t i = 0; i < n; ++i) {
    const engine::Version v = table->get(i);
    if (v == detail::kNeverVisited) continue;
    const data::LabeledPoint p = dataset->point(i);
    const linalg::DenseVector& w_v = published.at(v);
    const double coeff = workload.loss->derivative(p.features.dot(w_v.span()), p.label);
    p.features.axpy_into(coeff / static_cast<double>(n), expected_mean.span());
  }
  EXPECT_LT(linalg::max_abs_diff(alpha_bar.span(), expected_mean.span()), 1e-9);

  // Invariant 3: history registry resolves every referenced version to the
  // exact published parameter vector.
  for (std::size_t v = 0; v < published.size(); ++v) {
    const linalg::DenseVector& resolved = ac.history().value_at(v);
    EXPECT_LT(linalg::max_abs_diff(resolved.span(), published[v].span()), 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, SagaInvariants, ::testing::Values(1, 3, 6));

TEST(SagaSerialEquivalence, DistributedMatchesSerialOnOnePartition) {
  // With one partition and one worker the distributed SAGA must follow the
  // same trajectory as a serial implementation driven by the same batches.
  const auto problem = data::synthetic::tiny(60, 5, 0.0, 31);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  const Workload workload = Workload::create(dataset, 1, make_least_squares());

  SolverConfig config;
  config.updates = 80;
  config.batch_fraction = 0.4;
  config.step = constant_step(0.03);
  config.service_floor_ms = 0.0;
  config.eval_every = 80;
  config.seed = 5;

  engine::Cluster c1(quiet_config(1));
  const RunResult a = SagaSolver::run(c1, workload, config);
  engine::Cluster c2(quiet_config(1));
  const RunResult b = SagaSolver::run(c2, workload, config);
  // Determinism: identical seeds -> identical trajectories.
  EXPECT_DOUBLE_EQ(a.final_error(), b.final_error());
  // And it converges.
  EXPECT_LT(a.final_error(), 1e-2);
}

}  // namespace
}  // namespace asyncml::optim
