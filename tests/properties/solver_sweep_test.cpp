// Cross-algorithm property sweep: every solver × barrier combination on the
// same tiny noiseless problem must (a) run to its budget without deadlock or
// retry storms and (b) reduce the objective substantially. This is the
// "no configuration wedges the machinery" safety net for the whole stack.

#include <gtest/gtest.h>

#include <tuple>

#include "data/synthetic.hpp"
#include "optim/asaga.hpp"
#include "optim/asgd.hpp"
#include "optim/epoch_vr.hpp"
#include "optim/objective.hpp"
#include "optim/saga.hpp"
#include "optim/sgd.hpp"

namespace asyncml::optim {
namespace {

using Param = std::tuple<const char* /*algo*/, const char* /*barrier*/>;

class SolverBarrierSweep : public ::testing::TestWithParam<Param> {};

core::BarrierControl barrier_by_name(const std::string& name) {
  if (name == "bsp") return core::barriers::bsp();
  if (name == "ssp") return core::barriers::ssp(12);
  if (name == "beta") return core::barriers::available_fraction(0.5);
  if (name == "psp") return core::barriers::probabilistic(0.7, 3);
  return core::barriers::asp();
}

TEST_P(SolverBarrierSweep, RunsToBudgetAndImproves) {
  const auto [algo_name, barrier_name] = GetParam();
  const std::string algo = algo_name;

  const auto problem = data::synthetic::tiny(200, 8, 0.0, 17);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  const Workload workload = Workload::create(dataset, 8, make_least_squares());

  engine::Cluster::Config cluster_config;
  cluster_config.num_workers = 4;
  cluster_config.cores_per_worker = 2;
  cluster_config.network.time_scale = 0.0;
  engine::Cluster cluster(cluster_config);

  SolverConfig config;
  config.batch_fraction = 0.25;
  config.service_floor_ms = 0.1;
  config.eval_every = 50;
  config.barrier = barrier_by_name(barrier_name);
  config.seed = 23;

  RunResult result;
  if (algo == "sgd") {
    config.updates = 80;
    config.step = inverse_decay_step(0.05, 1.0, 0.01);
    result = SgdSolver::run(cluster, workload, config);
  } else if (algo == "saga") {
    config.updates = 80;
    config.step = constant_step(0.02);
    result = SagaSolver::run(cluster, workload, config);
  } else if (algo == "asgd") {
    config.updates = 320;
    config.step = inverse_decay_step(0.05, 1.0, 0.01);
    result = AsgdSolver::run(cluster, workload, config);
  } else if (algo == "asaga") {
    config.updates = 320;
    config.step = constant_step(0.02);
    result = AsagaSolver::run(cluster, workload, config);
  } else if (algo == "epochvr") {
    config.updates = 240;
    config.epoch_inner_updates = 60;
    config.step = constant_step(0.05);
    result = EpochVrSolver::run(cluster, workload, config);
  }

  EXPECT_GE(result.updates, 80u);
  EXPECT_LT(result.final_error(), result.trace.front().error * 0.5)
      << algo << " under " << barrier_name;
  // Nothing should have needed the failure path on a healthy cluster.
  EXPECT_EQ(cluster.metrics().tasks_failed.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsTimesBarriers, SolverBarrierSweep,
    ::testing::Combine(::testing::Values("sgd", "saga", "asgd", "asaga", "epochvr"),
                       ::testing::Values("asp", "bsp", "ssp", "beta", "psp")),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(std::get<0>(info.param)) + "_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace asyncml::optim
