// Property sweep: distributed mini-batch gradients computed through the
// engine must equal the serial gradient of the same batch, across losses ×
// dataset storage kinds × partition counts.

#include <gtest/gtest.h>

#include <tuple>

#include "data/synthetic.hpp"
#include "engine/actions.hpp"
#include "linalg/blas.hpp"
#include "optim/payloads.hpp"
#include "optim/solver_util.hpp"
#include "optim/workload.hpp"

namespace asyncml::optim {
namespace {

using Param = std::tuple<const char* /*loss*/, bool /*sparse*/, int /*partitions*/>;

class DistributedGradientProperty : public ::testing::TestWithParam<Param> {};

std::shared_ptr<const Loss> loss_by_name(const std::string& name) {
  if (name == "ls") return make_least_squares();
  if (name == "logistic") return make_logistic();
  return make_squared_hinge();
}

data::Dataset make_data(bool sparse, std::uint64_t seed) {
  if (sparse) {
    return data::synthetic::make_sparse(
               data::synthetic::SparseSpec{
                   .name = "p", .rows = 120, .cols = 30, .density = 0.2},
               seed)
        .dataset;
  }
  return data::synthetic::make_dense(
             data::synthetic::DenseSpec{.name = "p", .rows = 120, .cols = 30}, seed)
      .dataset;
}

TEST_P(DistributedGradientProperty, EngineGradientMatchesSerialReference) {
  const auto [loss_name, sparse, partitions] = GetParam();
  const auto loss = loss_by_name(loss_name);
  auto dataset = std::make_shared<const data::Dataset>(make_data(sparse, 11));
  const Workload workload = Workload::create(dataset, partitions, loss);

  engine::Cluster::Config config;
  config.num_workers = 3;
  config.cores_per_worker = 2;
  config.network.time_scale = 0.0;
  engine::Cluster cluster(config);

  linalg::DenseVector w(workload.dim());
  for (std::size_t j = 0; j < w.size(); ++j) w[j] = 0.01 * static_cast<double>(j % 7);
  auto w_br = cluster.broadcast(w, w.size_bytes());

  engine::StageOptions stage;
  stage.seq = 5;
  stage.rng_seed = 99;
  const double fraction = 0.4;
  const GradCount total = engine::aggregate_sync(
      cluster, workload.points.sample(fraction), GradCount{},
      detail::make_grad_seq(workload.loss, w_br,
                            linalg::GradVectorConfig(workload.dim())),
      detail::grad_comb(), stage);

  // Serial reference: iterate partitions in order with the same task RNG
  // derivation the worker uses: (seed, partition+1, seq).
  linalg::DenseVector expected(workload.dim());
  std::uint64_t expected_count = 0;
  for (int p = 0; p < partitions; ++p) {
    support::RngStream rng =
        support::RngStream(stage.rng_seed).substream(p + 1).substream(stage.seq);
    for (std::size_t r = workload.partitions[p].begin; r < workload.partitions[p].end;
         ++r) {
      if (!rng.bernoulli(fraction)) continue;
      const data::LabeledPoint point = dataset->point(r);
      const double coeff = loss->derivative(point.features.dot(w.span()), point.label);
      point.features.axpy_into(coeff, expected.span());
      ++expected_count;
    }
  }

  EXPECT_EQ(total.count, expected_count);
  const linalg::DenseVector grad = total.grad.to_dense();
  ASSERT_EQ(grad.size(), expected.size());
  EXPECT_LT(linalg::max_abs_diff(grad.span(), expected.span()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    LossStorageParts, DistributedGradientProperty,
    ::testing::Combine(::testing::Values("ls", "logistic", "hinge"),
                       ::testing::Bool(), ::testing::Values(1, 4, 7)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_sparse_" : "_dense_") +
             std::to_string(std::get<2>(info.param)) + "parts";
    });

}  // namespace
}  // namespace asyncml::optim
