// Representation-independence properties of the adaptive gradient pipeline:
// forcing dense vs sparse accumulation must not change solver trajectories
// (per-coordinate sums see the same terms in the same order), while the
// charged result bytes must collapse for sparse workloads.

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "optim/asgd.hpp"
#include "optim/saga.hpp"
#include "optim/sgd.hpp"
#include "optim/solver_util.hpp"

namespace asyncml::optim {
namespace {

engine::Cluster::Config quiet_config(int workers, int cores = 2) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = cores;
  config.network.time_scale = 0.0;  // result_bytes still accumulate
  return config;
}

Workload sparse_workload(double density, int partitions, std::size_t rows = 160,
                         std::size_t cols = 80) {
  const auto problem = data::synthetic::make_sparse(
      data::synthetic::SparseSpec{
          .name = "sweep", .rows = rows, .cols = cols, .density = density},
      /*seed=*/17);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  return Workload::create(dataset, partitions, make_least_squares());
}

class DensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(DensitySweep, SgdTrajectoryIndependentOfRepresentation) {
  const double density = GetParam();
  const Workload workload = sparse_workload(density, 4);

  SolverConfig config;
  config.updates = 20;
  config.batch_fraction = 0.3;
  config.step = constant_step(0.05);
  config.eval_every = 20;
  config.seed = 3;

  config.grad_mode = linalg::GradMode::kDense;
  engine::Cluster dense_cluster(quiet_config(3));
  const RunResult dense = SgdSolver::run(dense_cluster, workload, config);

  config.grad_mode = linalg::GradMode::kSparse;
  engine::Cluster sparse_cluster(quiet_config(3));
  const RunResult sparse = SgdSolver::run(sparse_cluster, workload, config);

  ASSERT_EQ(dense.final_w.size(), sparse.final_w.size());
  EXPECT_LT(linalg::max_abs_diff(dense.final_w.span(), sparse.final_w.span()),
            1e-12);
  EXPECT_NEAR(dense.final_error(), sparse.final_error(), 1e-12);
  // The sparse representation never ships more than the dense one.
  EXPECT_LE(sparse.result_bytes, dense.result_bytes);
}

TEST_P(DensitySweep, SagaTrajectoryIndependentOfRepresentation) {
  const double density = GetParam();
  const Workload workload = sparse_workload(density, 3, /*rows=*/90, /*cols=*/40);

  SolverConfig config;
  config.updates = 12;
  config.batch_fraction = 0.3;
  config.step = constant_step(0.02);
  config.eval_every = 12;
  config.seed = 9;

  config.grad_mode = linalg::GradMode::kDense;
  engine::Cluster dense_cluster(quiet_config(2));
  const RunResult dense = SagaSolver::run(dense_cluster, workload, config);

  config.grad_mode = linalg::GradMode::kSparse;
  engine::Cluster sparse_cluster(quiet_config(2));
  const RunResult sparse = SagaSolver::run(sparse_cluster, workload, config);

  ASSERT_EQ(dense.final_w.size(), sparse.final_w.size());
  EXPECT_LT(linalg::max_abs_diff(dense.final_w.span(), sparse.final_w.span()),
            1e-12);
}

INSTANTIATE_TEST_SUITE_P(Densities, DensitySweep,
                         ::testing::Values(0.001, 0.01, 0.1, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           if (info.param >= 1.0) return std::string("d1000");
                           return "d" + std::to_string(static_cast<int>(
                                            info.param * 1000.0));
                         });

TEST(SparseGradientAccounting, AsgdShipsFiveTimesFewerBytesAtLowDensity) {
  // Acceptance criterion: density <= 0.01 drops ASGD result_bytes >= 5x
  // versus the dense baseline with the final objective matching to <= 1e-8.
  // One worker with one core serializes execution, so both runs follow the
  // same deterministic schedule and the comparison isolates representation.
  const Workload workload =
      sparse_workload(/*density=*/0.01, /*partitions=*/8, /*rows=*/400,
                      /*cols=*/2000);
  ASSERT_LE(workload.dataset->density(), 0.012);

  SolverConfig config;
  config.updates = 64;
  config.batch_fraction = 0.1;
  config.step = constant_step(0.05);
  config.service_floor_ms = 0.0;
  config.eval_every = 64;
  config.seed = 21;

  config.grad_mode = linalg::GradMode::kDense;
  engine::Cluster dense_cluster(quiet_config(1, /*cores=*/1));
  const RunResult dense = AsgdSolver::run(dense_cluster, workload, config);

  config.grad_mode = linalg::GradMode::kAuto;  // density 0.01 -> sparse start
  engine::Cluster auto_cluster(quiet_config(1, /*cores=*/1));
  const RunResult adaptive = AsgdSolver::run(auto_cluster, workload, config);

  ASSERT_GT(dense.result_bytes, 0u);
  ASSERT_GT(adaptive.result_bytes, 0u);
  EXPECT_GE(static_cast<double>(dense.result_bytes),
            5.0 * static_cast<double>(adaptive.result_bytes))
      << "dense=" << dense.result_bytes << " adaptive=" << adaptive.result_bytes;
  EXPECT_NEAR(dense.final_error(), adaptive.final_error(), 1e-8);
  EXPECT_LT(linalg::max_abs_diff(dense.final_w.span(), adaptive.final_w.span()),
            1e-10);
}

TEST(SparseGradientAccounting, DenseDatasetsKeepDenseAccounting) {
  // kAuto on a dense dataset must reproduce the pre-GradVector wire model
  // exactly: every task result charges dim x 8 (+ count).
  const auto problem = data::synthetic::make_dense(
      data::synthetic::DenseSpec{.name = "dense", .rows = 120, .cols = 30},
      /*seed=*/4);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  const Workload workload = Workload::create(dataset, 4, make_least_squares());

  SolverConfig config;
  config.updates = 10;
  config.batch_fraction = 0.5;
  config.step = constant_step(0.01);
  config.eval_every = 10;

  engine::Cluster cluster(quiet_config(2));
  const RunResult r = SgdSolver::run(cluster, workload, config);
  const std::uint64_t per_task = 30u * sizeof(double) + sizeof(std::uint64_t);
  EXPECT_EQ(r.result_bytes, config.updates * 4u * per_task);
}

}  // namespace
}  // namespace asyncml::optim
