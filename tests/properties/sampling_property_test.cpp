// Sampling properties of the RDD layer: determinism per (seed, partition,
// seq), freshness across rounds, and statistical behaviour of mini-batch
// sizes — the contract that makes Spark-style recompute-on-retry sound.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "engine/rdd.hpp"
#include "support/rng.hpp"

namespace asyncml::engine {
namespace {

std::vector<int> sample_once(const Rdd<int>& sampled, PartitionId p, std::uint64_t seq,
                             std::uint64_t seed) {
  TaskContext ctx;
  ctx.partition = p;
  ctx.seq = seq;
  ctx.rng = support::RngStream(seed).substream(p + 1).substream(seq);
  std::vector<int> out;
  sampled.foreach_partition(p, ctx, [&](const int& v) { out.push_back(v); });
  return out;
}

class SamplingSweep
    : public ::testing::TestWithParam<std::tuple<double /*fraction*/, int /*parts*/>> {};

TEST_P(SamplingSweep, DeterministicPerKey) {
  const auto [fraction, parts] = GetParam();
  std::vector<int> values(3'000);
  std::iota(values.begin(), values.end(), 0);
  const Rdd<int> sampled = make_vector_rdd(values, parts).sample(fraction);

  for (int p = 0; p < parts; ++p) {
    EXPECT_EQ(sample_once(sampled, p, 3, 42), sample_once(sampled, p, 3, 42));
  }
}

TEST_P(SamplingSweep, FreshBatchPerRound) {
  const auto [fraction, parts] = GetParam();
  if (fraction == 0.0 || fraction == 1.0) {
    GTEST_SKIP() << "empty/full batches are identical across rounds by definition";
  }
  std::vector<int> values(3'000);
  std::iota(values.begin(), values.end(), 0);
  const Rdd<int> sampled = make_vector_rdd(values, parts).sample(fraction);

  int identical = 0;
  for (int p = 0; p < parts; ++p) {
    if (sample_once(sampled, p, 1, 42) == sample_once(sampled, p, 2, 42)) ++identical;
  }
  EXPECT_LT(identical, parts);  // at least one partition's batch changed
}

TEST_P(SamplingSweep, BatchSizeConcentratesAroundExpectation) {
  const auto [fraction, parts] = GetParam();
  std::vector<int> values(3'000);
  std::iota(values.begin(), values.end(), 0);
  const Rdd<int> sampled = make_vector_rdd(values, parts).sample(fraction);

  std::size_t total = 0;
  for (int p = 0; p < parts; ++p) total += sample_once(sampled, p, 9, 7).size();
  const double expected = 3'000.0 * fraction;
  // 5 standard deviations of Binomial(3000, f).
  const double sd = std::sqrt(3'000.0 * fraction * (1.0 - fraction));
  EXPECT_NEAR(static_cast<double>(total), expected, 5.0 * sd + 1.0);
}

TEST_P(SamplingSweep, SamplesComeFromOwnPartition) {
  const auto [fraction, parts] = GetParam();
  std::vector<int> values(3'000);
  std::iota(values.begin(), values.end(), 0);
  const auto ranges = data::contiguous_partitions(3'000, parts);
  const Rdd<int> sampled = make_vector_rdd(values, parts).sample(fraction);

  for (int p = 0; p < parts; ++p) {
    for (int v : sample_once(sampled, p, 4, 11)) {
      EXPECT_GE(static_cast<std::size_t>(v), ranges[p].begin);
      EXPECT_LT(static_cast<std::size_t>(v), ranges[p].end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FractionsAndParts, SamplingSweep,
    ::testing::Combine(::testing::Values(0.0, 0.01, 0.1, 0.5, 1.0),
                       ::testing::Values(1, 4, 16)),
    [](const ::testing::TestParamInfo<std::tuple<double, int>>& info) {
      const int pct = static_cast<int>(std::get<0>(info.param) * 100);
      return "f" + std::to_string(pct) + "_p" + std::to_string(std::get<1>(info.param));
    });

TEST(SamplingIndependence, DifferentSeedsGiveDifferentBatches) {
  std::vector<int> values(1'000);
  std::iota(values.begin(), values.end(), 0);
  const Rdd<int> sampled = make_vector_rdd(values, 1).sample(0.2);
  EXPECT_NE(sample_once(sampled, 0, 1, 100), sample_once(sampled, 0, 1, 101));
}

}  // namespace
}  // namespace asyncml::engine
