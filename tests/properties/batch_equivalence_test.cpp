// Bit-compatibility of the fused batch gradient pipeline with the per-row
// reference: for every loss kind, density, and solver family, running with
// SolverConfig::fused_kernels on vs off must produce *bit-identical*
// trajectories — same RNG draw sequence, same margin arithmetic, same
// per-coordinate accumulation order (grad_batch.hpp's contract).

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "optim/asgd.hpp"
#include "optim/epoch_vr.hpp"
#include "optim/saga.hpp"
#include "optim/sgd.hpp"
#include "optim/solver_util.hpp"

namespace asyncml::optim {
namespace {

engine::Cluster::Config quiet_config(int workers, int cores = 1) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = cores;
  config.network.time_scale = 0.0;
  return config;
}

Workload make_workload(double density, std::shared_ptr<const Loss> loss,
                       int partitions, std::size_t rows = 160, std::size_t cols = 80) {
  if (density >= 1.0) {
    const auto problem = data::synthetic::make_dense(
        data::synthetic::DenseSpec{.name = "dense", .rows = rows, .cols = cols},
        /*seed=*/23);
    return Workload::create(std::make_shared<const data::Dataset>(problem.dataset),
                            partitions, std::move(loss));
  }
  const auto problem = data::synthetic::make_sparse(
      data::synthetic::SparseSpec{
          .name = "sweep", .rows = rows, .cols = cols, .density = density},
      /*seed=*/23);
  return Workload::create(std::make_shared<const data::Dataset>(problem.dataset),
                          partitions, std::move(loss));
}

std::shared_ptr<const Loss> loss_by_name(const std::string& name) {
  if (name == "least_squares") return make_least_squares();
  if (name == "logistic") return make_logistic();
  return make_squared_hinge();
}

// The synthetic generators emit regression targets; logistic/hinge consume
// them as real-valued labels, which exercises both sign branches of their
// derivative kernels across a batch.
Workload sweep_workload(double density, const std::string& loss_name,
                        int partitions) {
  return make_workload(density, loss_by_name(loss_name), partitions);
}

using Case = std::tuple<std::string, double>;

class FusedSweep : public ::testing::TestWithParam<Case> {};

TEST_P(FusedSweep, SgdBitIdenticalToPerRow) {
  const auto& [loss_name, density] = GetParam();
  const Workload workload = sweep_workload(density, loss_name, 4);

  SolverConfig config;
  config.updates = 15;
  config.batch_fraction = 0.3;
  config.step = constant_step(0.02);
  config.eval_every = 15;
  config.seed = 7;

  config.fused_kernels = false;
  engine::Cluster perrow_cluster(quiet_config(3, /*cores=*/2));
  const RunResult perrow = SgdSolver::run(perrow_cluster, workload, config);

  config.fused_kernels = true;
  engine::Cluster fused_cluster(quiet_config(3, /*cores=*/2));
  const RunResult fused = SgdSolver::run(fused_cluster, workload, config);

  EXPECT_TRUE(linalg::bitwise_equal(perrow.final_w, fused.final_w))
      << "loss=" << loss_name << " density=" << density;
  // Same accumulator representations => same modeled wire bytes.
  EXPECT_EQ(perrow.result_bytes, fused.result_bytes);
}

TEST_P(FusedSweep, SagaBitIdenticalToPerRow) {
  const auto& [loss_name, density] = GetParam();
  const Workload workload = sweep_workload(density, loss_name, 3);

  SolverConfig config;
  config.updates = 10;
  config.batch_fraction = 0.3;
  config.step = constant_step(0.01);
  config.eval_every = 10;
  config.seed = 11;

  // One worker, one core: a serialized schedule makes the SAGA combine order
  // (arrival order) deterministic, so the comparison isolates the kernels.
  config.fused_kernels = false;
  engine::Cluster perrow_cluster(quiet_config(1));
  const RunResult perrow = SagaSolver::run(perrow_cluster, workload, config);

  config.fused_kernels = true;
  engine::Cluster fused_cluster(quiet_config(1));
  const RunResult fused = SagaSolver::run(fused_cluster, workload, config);

  EXPECT_TRUE(linalg::bitwise_equal(perrow.final_w, fused.final_w))
      << "loss=" << loss_name << " density=" << density;
  EXPECT_EQ(perrow.result_bytes, fused.result_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    LossDensityGrid, FusedSweep,
    ::testing::Combine(::testing::Values("least_squares", "logistic",
                                         "squared_hinge"),
                       ::testing::Values(0.001, 0.01, 0.1, 1.0)),
    [](const ::testing::TestParamInfo<Case>& info) {
      const std::string& loss = std::get<0>(info.param);
      const double density = std::get<1>(info.param);
      const std::string d = density >= 1.0
                                ? "dense"
                                : "d" + std::to_string(static_cast<int>(density * 1000));
      return loss + "_" + d;
    });

TEST(FusedEquivalence, AsgdBitIdenticalWhenSerialized) {
  const Workload workload = make_workload(0.05, make_least_squares(), 4);

  SolverConfig config;
  config.updates = 24;
  config.batch_fraction = 0.25;
  config.step = constant_step(0.02);
  config.eval_every = 24;
  config.seed = 13;

  config.fused_kernels = false;
  engine::Cluster perrow_cluster(quiet_config(1));
  const RunResult perrow = AsgdSolver::run(perrow_cluster, workload, config);

  config.fused_kernels = true;
  engine::Cluster fused_cluster(quiet_config(1));
  const RunResult fused = AsgdSolver::run(fused_cluster, workload, config);

  EXPECT_TRUE(linalg::bitwise_equal(perrow.final_w, fused.final_w));
}

TEST(FusedEquivalence, EpochVrBitIdenticalWhenSerialized) {
  const Workload workload = make_workload(0.05, make_least_squares(), 3);

  SolverConfig config;
  config.updates = 12;
  config.epoch_inner_updates = 4;
  config.batch_fraction = 0.3;
  config.step = constant_step(0.02);
  config.eval_every = 12;
  config.seed = 17;

  config.fused_kernels = false;
  engine::Cluster perrow_cluster(quiet_config(1));
  const RunResult perrow = EpochVrSolver::run(perrow_cluster, workload, config);

  config.fused_kernels = true;
  engine::Cluster fused_cluster(quiet_config(1));
  const RunResult fused = EpochVrSolver::run(fused_cluster, workload, config);

  EXPECT_TRUE(linalg::bitwise_equal(perrow.final_w, fused.final_w));
}

}  // namespace
}  // namespace asyncml::optim
