// History GC after a worker death: a task the crashed worker held pins its
// dispatch version in the STAT min-inflight bound. Once the crash surfaces
// as a synthesized failure and the retry completes on a survivor, nothing
// may keep pinning the old version — gc_history must be able to prune it.

#include <gtest/gtest.h>

#include <memory>

#include "core/async_context.hpp"
#include "engine/cluster.hpp"

namespace asyncml::core {
namespace {

engine::Cluster::Config quiet_config(int workers) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 1;
  config.network.time_scale = 0.0;
  return config;
}

TEST(GcUnderDeath, CrashedWorkersTaskDoesNotPinHistoryForever) {
  engine::Cluster::Config config = quiet_config(2);
  // Worker 0 dies the moment it dequeues its first task: its version-0 task
  // never runs and surfaces as a crash-synthesized failure instead.
  config.faults.crash_worker(/*worker=*/0, /*at_task=*/1);
  engine::Cluster cluster(config);
  AsyncContext ac(cluster, /*num_partitions=*/2);

  linalg::DenseVector w(4, 1.0);
  HistoryBroadcast w_br = ac.async_broadcast(w);  // publish at version 0
  ASSERT_TRUE(ac.history().id_of(0).has_value());

  const auto fn = std::make_shared<const engine::TaskFn>(
      [](engine::TaskContext& ctx) -> support::StatusOr<engine::Payload> {
        return engine::Payload::wrap<int>(ctx.partition);
      });
  // Both partitions dispatch at version 0; worker 0's copy dies with it and
  // is retried on worker 1 through collect's retry path.
  auto results = ac.sync_round_fn(fn, SubmitOptions{});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(ac.retries(), 0u);
  EXPECT_FALSE(cluster.worker_alive(0));

  // Publish a newer model, then GC against the STAT bound. With the dead
  // worker's registration unwound the bound has moved past version 0.
  ac.advance_version();
  w[0] = 2.0;
  w_br = ac.async_broadcast(w);
  const engine::Version bound = ac.gc_history();
  EXPECT_GE(bound, 1u);
  EXPECT_FALSE(ac.history().id_of(0).has_value());  // version 0 pruned
  ASSERT_TRUE(ac.history().id_of(1).has_value());
}

}  // namespace
}  // namespace asyncml::core
