#include "store/sharded_store.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <vector>

#include "store/model_cache.hpp"
#include "store/model_store.hpp"

namespace asyncml::store {
namespace {

/// Shard count for the storm tests: ASYNCML_TEST_SHARDS overrides (the CI
/// TSan leg runs the battery at S=4), default 4.
std::uint32_t shards_from_env(std::uint32_t fallback = 4) {
  const char* s = std::getenv("ASYNCML_TEST_SHARDS");
  if (s == nullptr) return fallback;
  const long v = std::strtol(s, nullptr, 10);
  return v > 0 ? static_cast<std::uint32_t>(v) : fallback;
}

StoreConfig sharded_config(std::uint32_t num_shards) {
  StoreConfig config;
  config.num_shards = num_shards;
  return config;
}

linalg::DenseVector make_model(std::size_t dim, double fill) {
  return linalg::DenseVector(dim, fill);
}

TEST(ShardedStore, SingleShardDelegatesBitExactly) {
  engine::BroadcastStore broadcasts_a;
  engine::BroadcastStore broadcasts_b;
  ShardedModelStore sharded(&broadcasts_a, sharded_config(1));
  ModelStore reference(&broadcasts_b);

  linalg::DenseVector w = make_model(16, 1.0);
  for (engine::Version v = 0; v < 5; ++v) {
    w[static_cast<std::size_t>(v) % 16] += 0.25;
    sharded.publish(w, v);
    reference.publish(w, v);
  }
  EXPECT_FALSE(sharded.sharded());
  EXPECT_EQ(sharded.active_shards(), 1u);
  EXPECT_EQ(sharded.shard_map(), nullptr);
  EXPECT_EQ(sharded.size(), reference.size());
  EXPECT_EQ(sharded.oldest(), reference.oldest());
  for (engine::Version v = 0; v < 5; ++v) {
    const linalg::DenseVector& a = sharded.value_at(v);
    const linalg::DenseVector& b = reference.driver_cache().value_at(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  // Chain metadata identical too: same publish decisions, same wire sizes.
  EXPECT_EQ(sharded.shard(0).stats().bases_published,
            reference.stats().bases_published);
  EXPECT_EQ(sharded.shard(0).stats().deltas_published,
            reference.stats().deltas_published);
}

TEST(ShardedStore, PublishTouchesOnlyChangedShards) {
  engine::BroadcastStore broadcasts;
  ShardedModelStore store(&broadcasts, sharded_config(4));
  linalg::DenseVector w = make_model(16, 1.0);  // 4 coords per shard
  store.publish(w, 0);
  ASSERT_TRUE(store.sharded());
  ASSERT_EQ(store.active_shards(), 4u);
  for (std::uint32_t s = 0; s < 4; ++s) EXPECT_EQ(store.shard(s).size(), 1u);

  w[9] = 5.0;  // shard 2 owns [8, 12)
  store.publish(w, 1);
  EXPECT_EQ(store.shard(0).size(), 1u);
  EXPECT_EQ(store.shard(1).size(), 1u);
  EXPECT_EQ(store.shard(2).size(), 2u);
  EXPECT_EQ(store.shard(3).size(), 1u);
  EXPECT_EQ(store.size(), 2u);  // global versions, not per-shard entries

  // Assembly at version 1 stitches untouched shards from their version-0
  // entries (latest_at_or_below) and is bit-equal to the published model.
  const linalg::DenseVector& got = store.value_at(1);
  ASSERT_EQ(got.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_EQ(got[i], w[i]);
  EXPECT_EQ(store.shard(2).latest_at_or_below(1), 1u);
  EXPECT_EQ(store.shard(0).latest_at_or_below(1), 0u);
}

TEST(ShardedStore, MaskedReadDefinesMaskedShardsOnly) {
  engine::BroadcastStore broadcasts;
  ShardedModelStore store(&broadcasts, sharded_config(4));
  linalg::DenseVector w(16);
  for (std::size_t i = 0; i < 16; ++i) w[i] = static_cast<double>(i) + 1.0;
  store.publish(w, 0);

  core::ShardSet mask;
  mask.ids = {1, 3};  // shards owning [4,8) and [12,16)
  const linalg::DenseVector& got = store.value_at(0, &mask);
  for (std::size_t i = 4; i < 8; ++i) EXPECT_EQ(got[i], w[i]);
  for (std::size_t i = 12; i < 16; ++i) EXPECT_EQ(got[i], w[i]);

  // Widening to a full read fills the remaining shards into the same entry.
  const linalg::DenseVector& full = store.value_at(0);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(full[i], w[i]);
}

TEST(ShardedStore, GcTranslatesFloorPerShard) {
  engine::BroadcastStore broadcasts;
  ShardedModelStore store(&broadcasts, sharded_config(4));
  linalg::DenseVector w = make_model(16, 1.0);
  store.publish(w, 0);
  // Versions 1..7 touch only shard 0; shard 3 never republishes after v0.
  for (engine::Version v = 1; v <= 7; ++v) {
    w[0] += 1.0;
    store.publish(w, v);
  }
  ASSERT_EQ(store.shard(0).size(), 8u);
  ASSERT_EQ(store.shard(3).size(), 1u);

  store.gc_below(5);
  // Shard 0's floor is its own entry at 5; shard 3 keeps version 0 — the
  // entry any in-flight version >= 5 still resolves to.
  EXPECT_EQ(store.shard(0).oldest(), 5u);
  EXPECT_EQ(store.shard(3).oldest(), 0u);
  EXPECT_EQ(store.oldest(), 5u);

  const linalg::DenseVector& got = store.value_at(7);
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_EQ(got[i], w[i]);
}

TEST(ShardedStore, IdOfResolvesThroughShardZeroTranslation) {
  engine::BroadcastStore broadcasts;
  ShardedModelStore store(&broadcasts, sharded_config(2));
  EXPECT_FALSE(store.id_of(0).has_value());  // before the first publish
  linalg::DenseVector w = make_model(8, 1.0);
  store.publish(w, 0);
  w[6] = 3.0;  // shard 1 only: shard 0 keeps serving version 0
  store.publish(w, 1);
  ASSERT_TRUE(store.id_of(1).has_value());
  EXPECT_EQ(*store.id_of(1), *store.shard(0).id_of(0));
  // Later versions translate down the same way (shard 0 last changed at 0).
  ASSERT_TRUE(store.id_of(7).has_value());
  EXPECT_EQ(*store.id_of(7), *store.shard(0).id_of(0));
}

TEST(ShardedStore, PublishResolveGcStorm) {
  const std::uint32_t num_shards = shards_from_env();
  engine::BroadcastStore broadcasts;
  ShardedModelStore store(&broadcasts, sharded_config(num_shards));
  const std::size_t dim = 64;
  linalg::DenseVector w(dim);
  std::map<engine::Version, linalg::DenseVector> published;

  std::uint64_t rng = 12345;
  const auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  for (engine::Version v = 0; v < 40; ++v) {
    // Sparse update: a handful of coordinates, often confined to few shards.
    const std::size_t touches = 1 + next() % 4;
    for (std::size_t t = 0; t < touches; ++t) {
      w[next() % dim] = static_cast<double>(next() % 1000) / 7.0;
    }
    store.publish(w, v);
    published.emplace(v, w);
    if (v % 8 == 7) {
      const engine::Version floor = v - 4;
      store.gc_below(floor);
      published.erase(published.begin(), published.lower_bound(floor));
    }
    // Every retained version still assembles bit-exactly.
    for (const auto& [q, want] : published) {
      const linalg::DenseVector& got = store.value_at(q);
      for (std::size_t i = 0; i < dim; ++i) {
        ASSERT_EQ(got[i], want[i]) << "v=" << q << " i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace asyncml::store
