// Crash-recovery acceptance for the durable tier (docs/DURABILITY.md):
//
//   * a ScheduledSgd coordinator SIGKILLed mid-stream — a real kill(2) of a
//     child process, not a polite shutdown — restarts from the manifest and
//     continues bit-exactly, without replaying any update;
//   * an injected torn_write on the newest checkpoint's model blob makes the
//     restore fall back to the previous checkpoint record (quarantine, no
//     abort) and the continuation is still bit-exact;
//   * the tier itself is invisible to the math: disk on vs off is
//     bit-identical for S ∈ {1, 2, 4, 8}.
//
// The child leg runs through an env-var hook evaluated at static-init time:
// the re-exec'd binary sees ASYNCML_DISK_CHILD_DIR, runs the solver leg, and
// _exit(0)s before gtest's main ever starts.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>

#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "optim/checkpoint.hpp"
#include "optim/objective.hpp"
#include "optim/sgd.hpp"

namespace asyncml::optim {
namespace {

Workload tiny_workload(std::uint64_t seed) {
  const auto problem = data::synthetic::tiny(120, 6, 0.0, seed);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  return Workload::create(dataset, 4, make_least_squares());
}

engine::Cluster::Config quiet_config(int workers) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 1;
  config.network.time_scale = 0.0;
  return config;
}

SolverConfig durable_config(std::uint64_t updates, const std::string& dir) {
  SolverConfig config;
  config.updates = updates;
  config.batch_fraction = 0.3;
  config.step = inverse_decay_step(0.05, 1.0, 0.01);
  config.service_floor_ms = 0.0;
  config.eval_every = 100000;  // eval never touches the iterate stream
  config.seed = 11;
  if (!dir.empty()) {
    config.store_config.disk.enabled = true;
    config.store_config.disk.dir = dir;
  }
  return config;
}

// -- the child leg (runs in the re-exec'd process, before gtest main) --------

[[noreturn]] void run_child_leg(const char* dir, const char* ckpt) {
  const Workload workload = tiny_workload(1);
  // Effectively unbounded: the parent SIGKILLs us long before 1M updates.
  SolverConfig config = durable_config(1'000'000, dir);
  config.checkpoint_every = 50;
  config.checkpoint_path = ckpt;
  engine::Cluster cluster(quiet_config(2));
  (void)ScheduledSgdSolver::run(cluster, workload, config);
  _exit(0);  // only reached if the parent never got around to killing us
}

struct ChildHook {
  ChildHook() {
    const char* dir = std::getenv("ASYNCML_DISK_CHILD_DIR");
    const char* ckpt = std::getenv("ASYNCML_DISK_CHILD_CKPT");
    if (dir != nullptr && ckpt != nullptr) run_child_leg(dir, ckpt);
  }
};
ChildHook child_hook;  // NOLINT: the env-gated child entry point

// TEST_TMPDIR first (the CI chaos legs isolate each seed's blob stores with
// it; older gtest releases ignore it in ::testing::TempDir()).
std::string test_tmp() {
  const char* env = std::getenv("TEST_TMPDIR");
  if (env != nullptr && env[0] != '\0') {
    std::string dir(env);
    if (dir.back() != '/') dir.push_back('/');
    return dir;
  }
  return ::testing::TempDir();
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = test_tmp() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(DiskRecovery, SigkilledCoordinatorResumesBitExactlyWithoutReplay) {
  const std::string dir = fresh_dir("sigkill_store");
  const std::string ckpt = test_tmp() + "sigkill.ckpt";
  std::remove(ckpt.c_str());

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    ::setenv("ASYNCML_DISK_CHILD_DIR", dir.c_str(), 1);
    ::setenv("ASYNCML_DISK_CHILD_CKPT", ckpt.c_str(), 1);
    // Re-exec so the child is a fresh single-threaded image; the ChildHook
    // static initializer picks the leg up from the env.
    char* const argv[] = {const_cast<char*>("disk_recovery_child"), nullptr};
    ::execv("/proc/self/exe", argv);
    _exit(127);
  }

  // Wait for the first durable checkpoint, then kill -9 mid-stream.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!std::filesystem::exists(ckpt)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "child produced no checkpoint in 60s";
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child was not killed mid-stream (status " << status << ")";

  // The surviving pointer file anchors the restart.
  auto loaded = load_checkpoint(ckpt);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  const std::uint64_t k = loaded.value().update_index;
  ASSERT_GT(k, 0u);
  EXPECT_EQ(loaded.value().store_dir, dir);

  // Reference: one uninterrupted run to k + 14 (no disk — the tier is inert
  // math-wise, which DiskOnOffIsBitIdentical pins separately).
  const Workload workload = tiny_workload(1);
  engine::Cluster c_ref(quiet_config(2));
  const RunResult uninterrupted =
      ScheduledSgdSolver::run(c_ref, workload, durable_config(k + 14, ""));

  // Restart from the manifest: no update is replayed (the run continues at
  // k + 1) and the continuation is bit-exact.
  SolverConfig resume = durable_config(k + 14, dir);
  resume.resume_from = ckpt;
  engine::Cluster c2(quiet_config(2));
  const RunResult resumed = ScheduledSgdSolver::run(c2, workload, resume);

  EXPECT_EQ(resumed.updates, k + 14);
  ASSERT_EQ(resumed.final_w.size(), uninterrupted.final_w.size());
  EXPECT_EQ(linalg::max_abs_diff(resumed.final_w.span(), uninterrupted.final_w.span()),
            0.0);
  std::remove(ckpt.c_str());
}

// An injected torn_write eats the newest checkpoint's model blob: the write
// "succeeds" (as a lost fsync race does), the pointer file names the torn
// record, and the restore must quarantine it and fall back to the previous
// intact checkpoint — no abort, still bit-exact from there.
TEST(DiskRecovery, TornCheckpointBlobFallsBackToOlderRecordBitExactly) {
  const Workload workload = tiny_workload(1);

  // Dry run: count blob writes so the fault window can target the very last
  // one — the update-12 checkpoint's model blob (base_interval 5 keeps the
  // checkpointed snapshots from dedup-aliasing any published base blob).
  const std::string dry_dir = fresh_dir("torn_ckpt_dry");
  const std::string dry_ckpt = test_tmp() + "torn_dry.ckpt";
  std::uint64_t total_writes = 0;
  {
    SolverConfig config = durable_config(12, dry_dir);
    config.checkpoint_every = 4;
    config.checkpoint_path = dry_ckpt;
    config.store_config.base_interval = 5;
    engine::Cluster cluster(quiet_config(2));
    (void)ScheduledSgdSolver::run(cluster, workload, config);
    total_writes = cluster.metrics().disk.blob_writes.load();
    std::remove(dry_ckpt.c_str());
  }
  ASSERT_GT(total_writes, 3u);

  // Faulted run: identical leg, the last blob write torn.
  const std::string dir = fresh_dir("torn_ckpt_store");
  const std::string ckpt = test_tmp() + "torn_ckpt.ckpt";
  {
    SolverConfig config = durable_config(12, dir);
    config.checkpoint_every = 4;
    config.checkpoint_path = ckpt;
    config.store_config.base_interval = 5;
    engine::Cluster::Config cc = quiet_config(2);
    cc.faults.torn_write(/*times=*/1, /*after=*/total_writes - 1);
    engine::Cluster cluster(cc);
    (void)ScheduledSgdSolver::run(cluster, workload, config);
    EXPECT_EQ(cluster.faults() != nullptr
                  ? cluster.faults()->stats().disk_writes_torn
                  : 0u,
              1u);
  }

  // The torn update-12 record fails verification; update 8's survives.
  auto loaded = load_checkpoint(ckpt);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().update_index, 8u);

  engine::Cluster c_ref(quiet_config(2));
  SolverConfig ref_config = durable_config(20, "");
  ref_config.store_config.base_interval = 5;
  const RunResult uninterrupted =
      ScheduledSgdSolver::run(c_ref, workload, ref_config);

  SolverConfig resume = durable_config(20, dir);
  resume.resume_from = ckpt;
  resume.store_config.base_interval = 5;
  engine::Cluster c2(quiet_config(2));
  const RunResult resumed = ScheduledSgdSolver::run(c2, workload, resume);

  EXPECT_EQ(linalg::max_abs_diff(resumed.final_w.span(), uninterrupted.final_w.span()),
            0.0);
  std::remove(ckpt.c_str());
}

// The durable tier is write-through behind the in-memory plane: turning it on
// may never change a single bit of the trajectory, at any shard count.
TEST(DiskRecovery, DiskOnOffIsBitIdenticalAcrossShardCounts) {
  data::synthetic::SparseSpec spec;
  spec.rows = 160;
  spec.cols = 96;
  spec.density = 0.05;
  spec.noise_std = 0.0;
  const auto problem = data::synthetic::make_sparse(spec, /*seed=*/41);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  const Workload workload = Workload::create(dataset, 8, make_least_squares());

  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    SolverConfig config;
    config.updates = 24;
    config.batch_fraction = 0.25;
    config.service_floor_ms = 0.1;
    config.eval_every = 8;
    config.seed = 23;
    config.step = inverse_decay_step(0.05, 1.0, 0.01);
    config.store_config.num_shards = shards;

    engine::Cluster c_mem(quiet_config(4));
    const RunResult in_memory = ScheduledSgdSolver::run(c_mem, workload, config);

    config.store_config.disk.enabled = true;
    config.store_config.disk.dir =
        fresh_dir("onoff_s" + std::to_string(shards));
    engine::Cluster c_disk(quiet_config(4));
    const RunResult durable = ScheduledSgdSolver::run(c_disk, workload, config);

    EXPECT_TRUE(linalg::bitwise_equal(in_memory.final_w, durable.final_w))
        << "disk tier changed the trajectory at S=" << shards;
    ASSERT_EQ(durable.trace.size(), in_memory.trace.size());
    for (std::size_t i = 0; i < in_memory.trace.size(); ++i) {
      EXPECT_EQ(durable.trace[i].error, in_memory.trace[i].error)
          << "trace point " << i << " S=" << shards;
    }
    // The tier actually ran: blobs were written through.
    EXPECT_GT(c_disk.metrics().disk.blob_writes.load(), 0u) << "S=" << shards;
  }
}

}  // namespace
}  // namespace asyncml::optim
