// Seeded fuzz battery over the disk-tier decoders (mirroring the transport
// frame fuzz): thousands of deterministic mutations — bit flips, truncations,
// length-field lies, splices, junk — driven through decode_blob and
// decode_manifest. The invariant is absolute: no crash, no out-of-bounds, no
// silent accept of a payload that differs from what was encoded.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "store/disk/blob.hpp"
#include "store/disk/manifest.hpp"
#include "support/sha256.hpp"

namespace asyncml::store::disk {
namespace {

// xorshift64* — deterministic across platforms, seeded per mutation.
struct Rng {
  std::uint64_t x;
  explicit Rng(std::uint64_t seed) : x(seed * 2685821657736338717ull | 1) {}
  std::uint64_t next() {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    return x * 2685821657736338717ull;
  }
  std::size_t below(std::size_t n) { return static_cast<std::size_t>(next() % n); }
};

std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& original,
                                 Rng& rng) {
  std::vector<std::uint8_t> m = original;
  switch (rng.below(6)) {
    case 0:  // single bit flip
      if (!m.empty()) {
        m[rng.below(m.size())] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      }
      break;
    case 1: {  // burst of byte rewrites
      const std::size_t n = 1 + rng.below(8);
      for (std::size_t k = 0; k < n && !m.empty(); ++k) {
        m[rng.below(m.size())] = static_cast<std::uint8_t>(rng.next());
      }
      break;
    }
    case 2:  // truncate (torn file)
      m.resize(rng.below(m.size() + 1));
      break;
    case 3: {  // rewrite 4 bytes somewhere in the header region (length lies)
      const std::size_t region = m.size() < 24 ? m.size() : 24;
      if (region >= 4) {
        const std::size_t off = rng.below(region - 3);
        for (std::size_t k = 0; k < 4; ++k) {
          m[off + k] = static_cast<std::uint8_t>(rng.next());
        }
      }
      break;
    }
    case 4: {  // splice: tail of a copy prepended (mis-framed stream)
      if (m.size() > 1) {
        std::vector<std::uint8_t> tail(
            original.end() -
                static_cast<std::ptrdiff_t>(1 + rng.below(original.size() - 1)),
            original.end());
        tail.insert(tail.end(), m.begin(), m.end());
        m = std::move(tail);
      }
      break;
    }
    default: {  // grow: junk appended past the end
      const std::size_t n = 1 + rng.below(64);
      for (std::size_t k = 0; k < n; ++k) {
        m.push_back(static_cast<std::uint8_t>(rng.next()));
      }
      break;
    }
  }
  return m;
}

std::vector<std::uint8_t> sample_payload() {
  std::vector<std::uint8_t> payload(240);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 59 + 3);
  }
  return payload;
}

// Any mutated blob the decoder accepts must carry the original payload bytes
// exactly — the only mutations that may pass are ones outside the covered
// image (there are none: header + payload is the whole file).
TEST(DiskFuzz, BlobDecoderNeverCrashesOrSilentlyAccepts) {
  const auto payload = sample_payload();
  const auto file = encode_blob(payload);
  const auto digest = support::sha256(payload);

  std::size_t accepted = 0;
  for (std::uint64_t seed = 1; seed <= 1500; ++seed) {
    Rng rng(seed * 1000003ull);
    const auto mutated = mutate(file, rng);
    const auto decoded = decode_blob(mutated, digest);
    if (decoded.is_ok()) {
      ++accepted;
      ASSERT_EQ(decoded.value().size(), payload.size()) << "seed " << seed;
      ASSERT_TRUE(std::memcmp(decoded.value().data(), payload.data(),
                              payload.size()) == 0)
          << "seed " << seed << " accepted altered payload bytes";
    }
  }
  // The battery must actually bite: most mutations are rejections, and the
  // rare accepts (e.g. junk appended past a lying-but-consistent image) are
  // verified byte-exact above.
  EXPECT_LT(accepted, 200u);
}

// Every single-bit flip of a complete blob image is caught: header flips
// fail magic/length validation, payload flips fail CRC, and anything that
// slips those fails the sha256 content address.
TEST(DiskFuzz, EverySingleBitFlipOfABlobIsCaught) {
  std::vector<std::uint8_t> payload(48);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i + 1);
  }
  const auto file = encode_blob(payload);
  const auto digest = support::sha256(payload);
  for (std::size_t byte = 0; byte < file.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto m = file;
      m[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_FALSE(decode_blob(m, digest).is_ok())
          << "byte " << byte << " bit " << bit << " silently accepted";
    }
  }
}

TEST(DiskFuzz, ManifestDecoderNeverCrashes) {
  // A realistic manifest: publishes, a gc floor, a checkpoint.
  std::vector<std::uint8_t> file = manifest_header();
  for (std::uint64_t v = 1; v <= 6; ++v) {
    PublishRecord r;
    r.shard = static_cast<std::uint32_t>(v % 2);
    r.version = v;
    r.parent = v - 1;
    r.has_base = v % 3 == 1;
    r.has_delta = !r.has_base;
    r.base_bytes = 512;
    r.delta_bytes = 64;
    r.base_digest = support::sha256({reinterpret_cast<const std::uint8_t*>(&v), 8});
    const auto rec = encode_publish_record(r);
    file.insert(file.end(), rec.begin(), rec.end());
  }
  const auto floor = encode_gc_floor_record(0, 3);
  file.insert(file.end(), floor.begin(), floor.end());
  CheckpointRecord cp;
  cp.update_index = 5;
  cp.counters = {{"tasks_completed", 99}};
  cp.aux = {{"alpha_bar", support::sha256({})}};
  const auto cpr = encode_checkpoint_record(cp);
  file.insert(file.end(), cpr.begin(), cpr.end());

  for (std::uint64_t seed = 1; seed <= 1500; ++seed) {
    Rng rng(seed * 7919ull + 13);
    const auto mutated = mutate(file, rng);
    const auto decoded = decode_manifest(mutated);
    if (decoded.is_ok()) {
      // Tolerated (torn tail / skipped unknowns) — but whatever replayed must
      // be internally consistent: valid_bytes never exceeds the input.
      EXPECT_LE(decoded.value().valid_bytes, mutated.size()) << "seed " << seed;
    }
  }
}

// Lying record lengths must be bounded by the actual file size before any
// allocation: a header claiming ~4 GiB of body is a torn tail, not an OOM.
TEST(DiskFuzz, LyingRecordLengthCannotDriveAllocation) {
  for (std::uint32_t lie : {0x7FFFFFFFu, 0xFFFFFFF0u, 0x00100001u}) {
    std::vector<std::uint8_t> file = manifest_header();
    const auto rec = encode_gc_floor_record(0, 1);
    file.insert(file.end(), rec.begin(), rec.end());
    const std::size_t len_off = manifest_header().size() + 1;  // after type byte
    file[len_off + 0] = static_cast<std::uint8_t>(lie);
    file[len_off + 1] = static_cast<std::uint8_t>(lie >> 8);
    file[len_off + 2] = static_cast<std::uint8_t>(lie >> 16);
    file[len_off + 3] = static_cast<std::uint8_t>(lie >> 24);
    const auto decoded = decode_manifest(file);
    ASSERT_TRUE(decoded.is_ok()) << "lie " << lie;
    EXPECT_TRUE(decoded.value().torn_tail);
    EXPECT_EQ(decoded.value().records, 0u);
  }
}

}  // namespace
}  // namespace asyncml::store::disk
