#include "store/model_cache.hpp"

#include <gtest/gtest.h>

#include "store/model_store.hpp"

namespace asyncml::store {
namespace {

struct CacheFixture {
  engine::BroadcastStore broadcasts;
  engine::NetworkModel net;
  engine::ClusterMetrics metrics{1};
  engine::BroadcastCache bcache;
  ModelStore store;

  explicit CacheFixture(StoreConfig config = {})
      : bcache(&broadcasts, &net, &metrics), store(&broadcasts, config) {
    net.time_scale = 0.0;  // no sleeps in unit tests
  }

  VersionedModelCache& worker_cache() { return store.cache_for(0, &bcache, &metrics); }
};

/// Publishes a chain 0..versions-1 over `dim` coords, one changed coordinate
/// per version; returns the final model.
linalg::DenseVector publish_chain(ModelStore& store, std::size_t dim,
                                  engine::Version versions) {
  linalg::DenseVector w(dim);
  for (engine::Version v = 0; v < versions; ++v) {
    w[v % dim] += static_cast<double>(v + 1);
    store.publish(w, v);
  }
  return w;
}

TEST(VersionedModelCache, ChainResolutionMatchesPublishedModel) {
  CacheFixture fx;
  const linalg::DenseVector w = publish_chain(fx.store, 8, 5);
  const linalg::DenseVector& resolved = fx.worker_cache().value_at(4);
  ASSERT_EQ(resolved.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_EQ(resolved[i], w[i]);
}

TEST(VersionedModelCache, MissChargesExactlyTheChainWireBytes) {
  CacheFixture fx;
  (void)publish_chain(fx.store, 8, 4);  // base + 3 deltas
  std::uint64_t expected = fx.store.entry_of(0)->base_bytes;
  for (engine::Version v = 1; v < 4; ++v) {
    expected += fx.store.entry_of(v)->delta_bytes;
  }
  (void)fx.worker_cache().value_at(3);
  EXPECT_EQ(fx.metrics.broadcast_bytes.load(), expected);
  EXPECT_EQ(fx.metrics.broadcast_fetches.load(), 4u);
  EXPECT_EQ(fx.metrics.broadcast_base_bytes.load(),
            fx.store.entry_of(0)->base_bytes);
}

TEST(VersionedModelCache, MaterializedHitIsFree) {
  CacheFixture fx;
  (void)publish_chain(fx.store, 8, 4);
  VersionedModelCache& cache = fx.worker_cache();
  (void)cache.value_at(3);
  const std::uint64_t bytes = fx.metrics.broadcast_bytes.load();
  const std::uint64_t fetches = fx.metrics.broadcast_fetches.load();
  (void)cache.value_at(3);  // hit: no wire traffic at all
  EXPECT_EQ(fx.metrics.broadcast_bytes.load(), bytes);
  EXPECT_EQ(fx.metrics.broadcast_fetches.load(), fetches);
  EXPECT_GT(fx.metrics.broadcast_hits.load(), 0u);
  EXPECT_TRUE(cache.contains(3));
  EXPECT_TRUE(cache.contains(0));  // the chain's base was materialized too
}

TEST(VersionedModelCache, NearestAncestorFetchesOnlyMissingLinks) {
  CacheFixture fx;
  (void)publish_chain(fx.store, 8, 6);  // base 0, deltas 1..5
  VersionedModelCache& cache = fx.worker_cache();
  (void)cache.value_at(3);  // materializes 0 and 3
  const std::uint64_t bytes = fx.metrics.broadcast_bytes.load();
  const std::uint64_t base_bytes = fx.metrics.broadcast_base_bytes.load();

  (void)cache.value_at(5);  // anchor on 3: fetch deltas 4 and 5 only
  const std::uint64_t expected =
      fx.store.entry_of(4)->delta_bytes + fx.store.entry_of(5)->delta_bytes;
  EXPECT_EQ(fx.metrics.broadcast_bytes.load() - bytes, expected);
  EXPECT_EQ(fx.metrics.broadcast_base_bytes.load(), base_bytes);  // no re-base fetch
}

TEST(VersionedModelCache, ResolvingBaseVersionAliasesWithoutCopy) {
  CacheFixture fx;
  (void)publish_chain(fx.store, 8, 1);
  VersionedModelCache& cache = fx.worker_cache();
  const linalg::DenseVector& resolved = cache.value_at(0);
  // The materialized base is the broadcast payload itself (zero copy).
  const engine::Payload payload = fx.broadcasts.get(fx.store.entry_of(0)->base_id);
  EXPECT_EQ(&resolved, &payload.get<linalg::DenseVector>());
}

TEST(VersionedModelCache, GcDropsMaterializedVersionsAndPayloads) {
  CacheFixture fx;
  (void)publish_chain(fx.store, 8, 6);
  VersionedModelCache& cache = fx.worker_cache();
  (void)cache.value_at(5);
  ASSERT_TRUE(cache.contains(0));
  const engine::BroadcastId v0_id = fx.store.entry_of(0)->base_id;
  ASSERT_TRUE(fx.bcache.contains(v0_id));

  fx.store.gc_below(4);
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(5));
  EXPECT_FALSE(fx.bcache.contains(v0_id));  // exact-id eviction propagated
}

TEST(VersionedModelCache, WarmWorkerRidesChainThroughScheduledBase) {
  StoreConfig config;
  config.base_interval = 4;  // dual-published bases at versions 0, 4, 8...
  CacheFixture fx(config);
  (void)publish_chain(fx.store, 64, 7);
  VersionedModelCache& cache = fx.worker_cache();
  (void)cache.value_at(3);
  const std::uint64_t bytes = fx.metrics.broadcast_bytes.load();
  const std::uint64_t base_bytes = fx.metrics.broadcast_base_bytes.load();

  // Versions 4 (a scheduled base), 5, 6 resolve as three cheap deltas from
  // the materialized anchor 3 — the dense snapshot at 4 never crosses the
  // wire for this warm worker.
  (void)cache.value_at(6);
  EXPECT_EQ(fx.metrics.broadcast_base_bytes.load(), base_bytes);
  const std::uint64_t expected = fx.store.entry_of(4)->delta_bytes +
                                 fx.store.entry_of(5)->delta_bytes +
                                 fx.store.entry_of(6)->delta_bytes;
  EXPECT_EQ(fx.metrics.broadcast_bytes.load() - bytes, expected);
  EXPECT_TRUE(cache.contains(6));
}

TEST(VersionedModelCache, StaleWorkerAnchorsOnBaseWhenChainCostsMore) {
  StoreConfig config;
  config.base_interval = 4;
  CacheFixture fx(config);
  // dim 8: a base is 64 bytes; each one-coordinate delta is 20 bytes, so a
  // stale worker gapping 7 versions (140 delta bytes through its old anchor)
  // should prefer base(4) + deltas 5-7 (64 + 60 = 124 bytes).
  (void)publish_chain(fx.store, 8, 8);
  VersionedModelCache& cache = fx.worker_cache();
  (void)cache.value_at(0);
  const std::uint64_t bytes = fx.metrics.broadcast_bytes.load();

  (void)cache.value_at(7);
  const std::uint64_t expected = fx.store.entry_of(4)->base_bytes +
                                 fx.store.entry_of(5)->delta_bytes +
                                 fx.store.entry_of(6)->delta_bytes +
                                 fx.store.entry_of(7)->delta_bytes;
  EXPECT_EQ(fx.metrics.broadcast_bytes.load() - bytes, expected);
}

TEST(VersionedModelCache, DriverCacheResolvesWithoutCharging) {
  CacheFixture fx;
  const linalg::DenseVector w = publish_chain(fx.store, 8, 5);
  const linalg::DenseVector& resolved = fx.store.driver_cache().value_at(4);
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_EQ(resolved[i], w[i]);
  EXPECT_EQ(fx.metrics.broadcast_bytes.load(), 0u);
  EXPECT_EQ(fx.metrics.broadcast_fetches.load(), 0u);
}

TEST(VersionedModelCache, SecondWorkerChargesItsOwnFetches) {
  CacheFixture fx;
  (void)publish_chain(fx.store, 8, 3);
  engine::ClusterMetrics metrics2(1);
  engine::BroadcastCache bcache2(&fx.broadcasts, &fx.net, &metrics2);
  (void)fx.worker_cache().value_at(2);
  const std::uint64_t bytes = fx.metrics.broadcast_bytes.load();
  (void)fx.store.cache_for(1, &bcache2, &metrics2).value_at(2);
  EXPECT_EQ(metrics2.broadcast_bytes.load(), bytes);  // same chain, own wire
}

}  // namespace
}  // namespace asyncml::store
