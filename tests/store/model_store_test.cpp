#include "store/model_store.hpp"

#include <gtest/gtest.h>

#include "store/model_cache.hpp"

namespace asyncml::store {
namespace {

linalg::DenseVector make_model(std::size_t dim, double fill) {
  return linalg::DenseVector(dim, fill);
}

TEST(ModelStore, FirstPublishIsBaseWithExactWireSize) {
  engine::BroadcastStore broadcasts;
  ModelStore store(&broadcasts);
  store.publish(make_model(32, 1.0), 0);

  const auto entry = store.entry_of(0);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->kind, EntryKind::kBase);
  EXPECT_FALSE(entry->has_delta());  // nothing to diff against
  EXPECT_EQ(entry->base_bytes, 32u * sizeof(double));
  EXPECT_EQ(broadcasts.get(entry->base_id).bytes(), 32u * sizeof(double));
}

TEST(ModelStore, SparseUpdatePublishesDeltaWithExactWireSize) {
  engine::BroadcastStore broadcasts;
  ModelStore store(&broadcasts);
  linalg::DenseVector w = make_model(64, 1.0);
  store.publish(w, 0);
  w[3] = 2.0;
  w[17] = -1.0;
  w[40] = 0.5;
  store.publish(w, 1);

  const auto entry = store.entry_of(1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->kind, EntryKind::kDelta);
  EXPECT_FALSE(entry->has_base());
  EXPECT_EQ(entry->parent, 0u);
  // 8-byte nnz header + 3 x (u32 index, f64 value).
  EXPECT_EQ(entry->delta_bytes, 8u + 3u * 12u);
  EXPECT_EQ(broadcasts.get(entry->delta_id).bytes(), 8u + 3u * 12u);
  EXPECT_EQ(store.stats().deltas_published, 1u);
  EXPECT_EQ(store.stats().bases_published, 1u);
}

TEST(ModelStore, DenseUpdateDensifiesIntoBase) {
  engine::BroadcastStore broadcasts;
  ModelStore store(&broadcasts);
  linalg::DenseVector w = make_model(64, 1.0);
  store.publish(w, 0);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] += 1.0;  // touches every coord
  store.publish(w, 1);

  const auto entry = store.entry_of(1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->kind, EntryKind::kBase);
  EXPECT_FALSE(entry->has_delta());  // densified: the chain breaks here
  EXPECT_EQ(store.stats().bases_published, 2u);
  EXPECT_EQ(store.stats().deltas_published, 0u);
}

TEST(ModelStore, BaseIntervalBoundsChainLength) {
  engine::BroadcastStore broadcasts;
  StoreConfig config;
  config.base_interval = 4;
  ModelStore store(&broadcasts, config);

  linalg::DenseVector w = make_model(64, 0.0);
  for (engine::Version v = 0; v < 9; ++v) {
    w[v] = 1.0;  // one-coordinate change per version
    store.publish(w, v);
  }
  // Pattern: base at 0, deltas 1-3, base at 4, deltas 5-7, base at 8.
  for (engine::Version v = 0; v < 9; ++v) {
    const auto entry = store.entry_of(v);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->kind, v % 4 == 0 ? EntryKind::kBase : EntryKind::kDelta)
        << "version " << v;
    // Scheduled bases are dual-published: their sparse delta ships too, so
    // warm workers ride the chain straight through them.
    EXPECT_EQ(entry->has_delta(), v != 0) << "version " << v;
  }
}

TEST(ModelStore, DeltaDisabledPublishesOnlyBases) {
  engine::BroadcastStore broadcasts;
  StoreConfig config;
  config.delta_enabled = false;
  ModelStore store(&broadcasts, config);
  linalg::DenseVector w = make_model(16, 0.0);
  store.publish(w, 0);
  w[1] = 1.0;
  store.publish(w, 1);
  EXPECT_EQ(store.entry_of(1)->kind, EntryKind::kBase);
  EXPECT_EQ(store.stats().deltas_published, 0u);
}

TEST(ModelStore, RepublishUnchangedModelIsIdempotent) {
  engine::BroadcastStore broadcasts;
  ModelStore store(&broadcasts);
  linalg::DenseVector w = make_model(8, 1.0);
  const engine::BroadcastId first = store.publish(w, 0);
  // Epoch boundaries re-broadcast the current version; unchanged model means
  // the existing entry already is this publish.
  const engine::BroadcastId second = store.publish(w, 0);
  EXPECT_EQ(first, second);
  EXPECT_TRUE(broadcasts.get(first).has_value());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().bases_published, 1u);
}

TEST(ModelStore, RepublishChangedModelReplacesEntryWithFreshBase) {
  engine::BroadcastStore broadcasts;
  ModelStore store(&broadcasts);
  linalg::DenseVector w = make_model(8, 1.0);
  store.publish(w, 0);
  const engine::BroadcastId first = store.entry_of(0)->base_id;
  w[2] = 9.0;
  store.publish(w, 0);
  const auto entry = store.entry_of(0);
  ASSERT_TRUE(entry.has_value());
  // The replaced version cannot serve as its own delta parent.
  EXPECT_EQ(entry->kind, EntryKind::kBase);
  EXPECT_FALSE(entry->has_delta());
  EXPECT_NE(entry->base_id, first);
  EXPECT_FALSE(broadcasts.get(first).has_value());
  EXPECT_DOUBLE_EQ(store.driver_cache().value_at(0)[2], 9.0);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ModelStore, GcErasesExactIdsAndSparesForeignBroadcasts) {
  engine::BroadcastStore broadcasts;
  ModelStore store(&broadcasts);
  linalg::DenseVector w = make_model(16, 0.0);
  store.publish(w, 0);
  // A non-history broadcast registered mid-run: its id lands inside the
  // history id range; threshold pruning would erase it.
  const engine::BroadcastId foreign = broadcasts.put(engine::Payload::wrap<int>(7));
  w[1] = 1.0;
  store.publish(w, 1);
  w[2] = 1.0;
  store.publish(w, 2);
  const engine::BroadcastId v0_id = store.entry_of(0)->base_id;
  const engine::BroadcastId v1_id = store.entry_of(1)->delta_id;

  store.gc_below(2);
  EXPECT_FALSE(broadcasts.get(v0_id).has_value());
  EXPECT_FALSE(broadcasts.get(v1_id).has_value());
  EXPECT_TRUE(broadcasts.get(foreign).has_value());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.oldest().value(), 2u);
  EXPECT_EQ(store.gc_floor(), 2u);
}

TEST(ModelStore, GcRebasesOldestRetainedDeltaOntoFreshBase) {
  engine::BroadcastStore broadcasts;
  ModelStore store(&broadcasts);
  linalg::DenseVector w = make_model(16, 0.0);
  for (engine::Version v = 0; v < 6; ++v) {
    w[v] = static_cast<double>(v + 1);
    store.publish(w, v);
  }
  ASSERT_EQ(store.entry_of(3)->kind, EntryKind::kDelta);

  store.gc_below(3);
  const auto rebased = store.entry_of(3);
  ASSERT_TRUE(rebased.has_value());
  EXPECT_EQ(rebased->kind, EntryKind::kBase);
  EXPECT_FALSE(rebased->has_delta());  // its parent is gone
  EXPECT_EQ(store.stats().compactions, 1u);
  // Later versions still resolve through the rebased chain, bit-for-bit.
  const linalg::DenseVector& resolved = store.driver_cache().value_at(5);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(resolved[i], static_cast<double>(i + 1));
  }
  EXPECT_EQ(store.entry_of(4)->kind, EntryKind::kDelta);  // untouched tail
}

TEST(ModelStore, GcOfEverythingForcesNextPublishToBase) {
  engine::BroadcastStore broadcasts;
  ModelStore store(&broadcasts);
  linalg::DenseVector w = make_model(16, 0.0);
  store.publish(w, 0);
  w[0] = 1.0;
  store.publish(w, 1);
  store.gc_below(10);  // drops everything
  EXPECT_EQ(store.size(), 0u);
  w[1] = 1.0;
  store.publish(w, 10);  // must not chain onto a GC'd parent
  EXPECT_EQ(store.entry_of(10)->kind, EntryKind::kBase);
}

TEST(ModelStoreDeath, ResolvingGcdVersionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  engine::BroadcastStore broadcasts;
  ModelStore store(&broadcasts);
  linalg::DenseVector w = make_model(8, 0.0);
  store.publish(w, 0);
  w[0] = 1.0;
  store.publish(w, 1);
  store.gc_below(1);  // version 0 is now below the STAT in-flight minimum
  EXPECT_DEATH((void)store.driver_cache().value_at(0), "garbage-collected");
}

TEST(ModelStoreDeath, ResolvingUnknownVersionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  engine::BroadcastStore broadcasts;
  ModelStore store(&broadcasts);
  store.publish(make_model(8, 0.0), 0);
  EXPECT_DEATH((void)store.driver_cache().value_at(7), "never published");
}

}  // namespace
}  // namespace asyncml::store
