// Version-churn properties of the delta-versioned model store: chain-resolved
// models must equal the directly published ones across update densities, and
// flipping ASGD from full-snapshot to delta publishing must collapse the
// charged broadcast bytes without changing the trajectory.

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "optim/asgd.hpp"
#include "store/model_cache.hpp"
#include "store/model_store.hpp"
#include "support/rng.hpp"

namespace asyncml::store {
namespace {

class DeltaDensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(DeltaDensitySweep, ChainResolutionEqualsDirectlyPublishedModel) {
  const double update_density = GetParam();
  constexpr std::size_t kDim = 300;
  constexpr engine::Version kVersions = 48;

  engine::BroadcastStore broadcasts;
  engine::NetworkModel net;
  net.time_scale = 0.0;
  engine::ClusterMetrics metrics(1);
  engine::BroadcastCache bcache(&broadcasts, &net, &metrics);
  StoreConfig config;
  config.base_interval = 8;
  ModelStore store(&broadcasts, config);

  // Publish a version churn where each update touches a random
  // `update_density` fraction of the coordinates; keep golden copies.
  support::RngStream rng(/*seed=*/31 + static_cast<std::uint64_t>(update_density * 1e4));
  linalg::DenseVector w(kDim);
  std::vector<linalg::DenseVector> golden;
  for (engine::Version v = 0; v < kVersions; ++v) {
    for (std::size_t i = 0; i < kDim; ++i) {
      if (rng.bernoulli(update_density)) w[i] += rng.uniform(-1.0, 1.0);
    }
    store.publish(w, v);
    golden.push_back(w);
  }

  // Resolve every version through a fresh worker cache in an adversarial
  // order (newest first, so anchors sit *above* most requests and chains
  // resolve from bases), then re-resolve in ascending order (hits + short
  // delta hops).  Every materialization must match its golden copy.
  VersionedModelCache& cache = store.cache_for(0, &bcache, &metrics);
  for (engine::Version v = kVersions; v-- > 0;) {
    const linalg::DenseVector& resolved = cache.value_at(v);
    EXPECT_LT(linalg::max_abs_diff(resolved.span(), golden[v].span()), 1e-12)
        << "version " << v << " at density " << update_density;
  }
  for (engine::Version v = 0; v < kVersions; ++v) {
    const linalg::DenseVector& resolved = cache.value_at(v);
    EXPECT_LT(linalg::max_abs_diff(resolved.span(), golden[v].span()), 1e-12);
  }

  // The driver-side cache resolves identically, without wire traffic.
  const std::uint64_t bytes = metrics.broadcast_bytes.load();
  for (engine::Version v = 0; v < kVersions; v += 7) {
    EXPECT_LT(linalg::max_abs_diff(store.driver_cache().value_at(v).span(),
                                   golden[v].span()),
              1e-12);
  }
  EXPECT_EQ(metrics.broadcast_bytes.load(), bytes);
}

INSTANTIATE_TEST_SUITE_P(UpdateDensities, DeltaDensitySweep,
                         ::testing::Values(0.001, 0.01, 0.1, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           if (info.param >= 1.0) return std::string("d1000");
                           return "d" + std::to_string(static_cast<int>(
                                            info.param * 1000.0));
                         });

TEST(DeltaBroadcastAccounting, AsgdShipsThreeTimesFewerBroadcastBytes) {
  // Acceptance criterion: on an rcv1-like sparse workload, delta publishing
  // drops ASGD's charged broadcast bytes >= 3x versus full-snapshot
  // publishing with the objective trajectory matching to <= 1e-8.  One
  // worker with one core serializes execution, so both runs follow the same
  // deterministic schedule — and because deltas ship overwrite values, the
  // resolved models (and hence the trajectories) are bit-identical.
  const auto problem = data::synthetic::make_sparse(
      data::synthetic::SparseSpec{
          .name = "rcv1-like", .rows = 400, .cols = 2000, .density = 0.01},
      /*seed=*/23);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  const optim::Workload workload =
      optim::Workload::create(dataset, 8, optim::make_least_squares());

  optim::SolverConfig config;
  config.updates = 64;
  config.batch_fraction = 0.1;
  config.step = optim::constant_step(0.05);
  config.eval_every = 8;
  config.seed = 21;

  engine::Cluster::Config cluster_config;
  cluster_config.num_workers = 1;
  cluster_config.cores_per_worker = 1;
  cluster_config.network.time_scale = 0.0;

  config.store_config.delta_enabled = false;
  engine::Cluster snapshot_cluster(cluster_config);
  const optim::RunResult snapshot =
      optim::AsgdSolver::run(snapshot_cluster, workload, config);

  config.store_config.delta_enabled = true;
  engine::Cluster delta_cluster(cluster_config);
  const optim::RunResult delta =
      optim::AsgdSolver::run(delta_cluster, workload, config);

  ASSERT_GT(snapshot.broadcast_bytes, 0u);
  ASSERT_GT(delta.broadcast_bytes, 0u);
  EXPECT_GE(static_cast<double>(snapshot.broadcast_bytes),
            3.0 * static_cast<double>(delta.broadcast_bytes))
      << "snapshot=" << snapshot.broadcast_bytes
      << " delta=" << delta.broadcast_bytes;

  // Trajectories match: same final model and same recorded objective curve.
  EXPECT_LT(linalg::max_abs_diff(snapshot.final_w.span(), delta.final_w.span()),
            1e-10);
  ASSERT_EQ(snapshot.trace.size(), delta.trace.size());
  for (std::size_t i = 0; i < snapshot.trace.size(); ++i) {
    EXPECT_NEAR(snapshot.trace[i].error, delta.trace[i].error, 1e-8);
  }

  // The split accounting explains the total: full-snapshot runs ship only
  // base bytes, delta runs mostly delta bytes.
  EXPECT_EQ(snapshot.broadcast_delta_bytes, 0u);
  EXPECT_EQ(snapshot.broadcast_bytes,
            snapshot.broadcast_base_bytes + snapshot.broadcast_delta_bytes);
  EXPECT_EQ(delta.broadcast_bytes,
            delta.broadcast_base_bytes + delta.broadcast_delta_bytes);
  EXPECT_GT(delta.broadcast_delta_bytes, 0u);
}

}  // namespace
}  // namespace asyncml::store
