// Blob format unit tests (store/disk/blob.hpp): round-trip, and one test per
// corruption class — every malformed image must come back as a non-OK Status,
// never a crash or a silent accept (the seeded battery in disk_fuzz_test.cpp
// extends this to random mutations).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "store/disk/blob.hpp"
#include "support/sha256.hpp"

namespace asyncml::store::disk {
namespace {

std::vector<std::uint8_t> sample_payload(std::size_t n) {
  std::vector<std::uint8_t> payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  return payload;
}

TEST(DiskBlob, RoundTrip) {
  const auto payload = sample_payload(300);
  const auto file = encode_blob(payload);
  ASSERT_EQ(file.size(), kBlobHeaderBytes + payload.size());

  const auto decoded = decode_blob(file);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  ASSERT_EQ(decoded.value().size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), decoded.value().begin()));

  const auto verified = decode_blob(file, support::sha256(payload));
  EXPECT_TRUE(verified.is_ok());
}

TEST(DiskBlob, EmptyPayloadRoundTrips) {
  const auto file = encode_blob({});
  const auto decoded = decode_blob(file);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().size(), 0u);
}

TEST(DiskBlob, TruncatedHeaderRejected) {
  const auto file = encode_blob(sample_payload(64));
  for (std::size_t n = 0; n < kBlobHeaderBytes; ++n) {
    const auto decoded = decode_blob({file.data(), n});
    EXPECT_FALSE(decoded.is_ok()) << "header prefix of " << n << " bytes accepted";
  }
}

TEST(DiskBlob, BadMagicRejected) {
  auto file = encode_blob(sample_payload(64));
  file[0] ^= 0x01;
  EXPECT_FALSE(decode_blob(file).is_ok());
}

// A crash image: the rename happened but the payload tail never hit the disk.
TEST(DiskBlob, TornPayloadRejected) {
  const auto payload = sample_payload(128);
  auto file = encode_blob(payload);
  file.resize(kBlobHeaderBytes + payload.size() / 2);
  EXPECT_FALSE(decode_blob(file).is_ok());
}

// A lying length field must never read out of bounds (claimed > actual) nor
// silently drop a tail (claimed < actual).
TEST(DiskBlob, LyingLengthRejectedBothDirections) {
  const auto payload = sample_payload(128);
  auto shorter = encode_blob(payload);
  shorter[8] = static_cast<std::uint8_t>(payload.size() / 2);
  shorter[9] = shorter[10] = shorter[11] = 0;
  EXPECT_FALSE(decode_blob(shorter).is_ok());

  auto longer = encode_blob(payload);
  longer[8] = 0xFF;
  longer[9] = 0xFF;
  longer[10] = 0xFF;
  longer[11] = 0x7F;
  EXPECT_FALSE(decode_blob(longer).is_ok());
}

TEST(DiskBlob, FlippedPayloadBitFailsCrc) {
  const auto payload = sample_payload(256);
  auto file = encode_blob(payload);
  file[kBlobHeaderBytes + 100] ^= 0x10;
  EXPECT_FALSE(decode_blob(file).is_ok());
}

// CRC intact but the content does not match the name it was stored under —
// the hash check is what catches a file whose name lies.
TEST(DiskBlob, WrongContentAddressRejected) {
  const auto payload = sample_payload(64);
  const auto file = encode_blob(payload);
  EXPECT_TRUE(decode_blob(file, support::sha256(payload)).is_ok());
  const auto other = support::sha256(sample_payload(65));
  EXPECT_FALSE(decode_blob(file, other).is_ok());
}

}  // namespace
}  // namespace asyncml::store::disk
