// Manifest grammar tests (store/disk/manifest.hpp): record round-trips,
// torn-tail tolerance with the valid_bytes resume contract, unknown-type
// forward compatibility, last-wins publish semantics, and the append-only
// writer's truncate-on-resume behaviour against a real file.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "store/disk/manifest.hpp"
#include "support/sha256.hpp"

namespace asyncml::store::disk {
namespace {

// TEST_TMPDIR first (CI isolates parallel chaos legs with it; older gtest
// releases ignore it in ::testing::TempDir()).
std::string test_tmp() {
  const char* env = std::getenv("TEST_TMPDIR");
  if (env != nullptr && env[0] != '\0') {
    std::string dir(env);
    if (dir.back() != '/') dir.push_back('/');
    return dir;
  }
  return ::testing::TempDir();
}

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

support::Sha256Digest digest_of(const char* s) {
  const std::string str(s);
  return support::sha256({reinterpret_cast<const std::uint8_t*>(str.data()),
                          str.size()});
}

PublishRecord sample_publish(std::uint32_t shard, std::uint64_t version) {
  PublishRecord r;
  r.shard = shard;
  r.version = version;
  r.parent = version > 0 ? version - 1 : 0;
  r.has_base = version % 4 == 0;
  r.has_delta = version % 4 != 0;
  if (r.has_base) {
    r.base_digest = digest_of("base");
    r.base_bytes = 800;
  }
  if (r.has_delta) {
    r.delta_digest = digest_of("delta");
    r.delta_bytes = 96;
  }
  return r;
}

std::vector<std::uint8_t> file_with(
    const std::vector<std::vector<std::uint8_t>>& records) {
  std::vector<std::uint8_t> file = manifest_header();
  for (const auto& r : records) file.insert(file.end(), r.begin(), r.end());
  return file;
}

TEST(DiskManifest, PublishRecordRoundTrips) {
  const PublishRecord rec = sample_publish(3, 8);
  const auto file = file_with({encode_publish_record(rec)});
  const auto decoded = decode_manifest(file);
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  const ManifestState& state = decoded.value();
  EXPECT_EQ(state.records, 1u);
  EXPECT_FALSE(state.torn_tail);
  EXPECT_EQ(state.valid_bytes, file.size());
  ASSERT_TRUE(state.shards.contains(3));
  ASSERT_TRUE(state.shards.at(3).contains(8));
  const PublishRecord& got = state.shards.at(3).at(8);
  EXPECT_EQ(got.parent, rec.parent);
  EXPECT_EQ(got.has_base, rec.has_base);
  EXPECT_EQ(got.has_delta, rec.has_delta);
  EXPECT_EQ(got.base_digest, rec.base_digest);
  EXPECT_EQ(got.delta_digest, rec.delta_digest);
  EXPECT_EQ(got.base_bytes, rec.base_bytes);
  EXPECT_EQ(got.delta_bytes, rec.delta_bytes);
}

TEST(DiskManifest, GcFloorMaxWins) {
  const auto file = file_with({encode_gc_floor_record(0, 5),
                               encode_gc_floor_record(0, 12),
                               encode_gc_floor_record(0, 9),
                               encode_gc_floor_record(2, 3)});
  const auto decoded = decode_manifest(file);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().gc_floors.at(0), 12u);
  EXPECT_EQ(decoded.value().gc_floors.at(2), 3u);
}

TEST(DiskManifest, CheckpointRecordRoundTrips) {
  CheckpointRecord rec;
  rec.update_index = 40;
  rec.model_version = 37;
  rec.round = 160;
  rec.model_digest = digest_of("model");
  rec.counters = {{"tasks_completed", 640}, {"retries", 2}};
  rec.aux = {{"alpha_bar", digest_of("alpha")}};
  const auto file = file_with({encode_checkpoint_record(rec)});
  const auto decoded = decode_manifest(file);
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_EQ(decoded.value().checkpoints.size(), 1u);
  const CheckpointRecord& got = decoded.value().checkpoints[0];
  EXPECT_EQ(got.update_index, 40u);
  EXPECT_EQ(got.model_version, 37u);
  EXPECT_EQ(got.round, 160u);
  EXPECT_EQ(got.model_digest, rec.model_digest);
  ASSERT_EQ(got.counters.size(), 2u);
  EXPECT_EQ(got.counters[0].first, "tasks_completed");
  EXPECT_EQ(got.counters[0].second, 640u);
  ASSERT_EQ(got.aux.size(), 1u);
  EXPECT_EQ(got.aux[0].first, "alpha_bar");
  EXPECT_EQ(got.aux[0].second, rec.aux[0].second);
}

TEST(DiskManifest, BadHeaderIsAnError) {
  EXPECT_FALSE(decode_manifest(bytes_of("NOTAMANI")).is_ok());
  EXPECT_FALSE(decode_manifest(bytes_of("AML")).is_ok());
  EXPECT_FALSE(decode_manifest({}).is_ok());
}

TEST(DiskManifest, EmptyManifestIsValid) {
  const auto decoded = decode_manifest(manifest_header());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().records, 0u);
  EXPECT_FALSE(decoded.value().torn_tail);
}

// A crash mid-append leaves a torn tail: replay must keep every record
// before the tear and report valid_bytes at the last intact boundary.
TEST(DiskManifest, TornTailKeepsIntactPrefix) {
  const auto r1 = encode_publish_record(sample_publish(0, 1));
  const auto r2 = encode_publish_record(sample_publish(0, 2));
  auto file = file_with({r1, r2});
  const std::uint64_t intact = manifest_header().size() + r1.size();
  // Cut the second record at every possible interior point.
  for (std::size_t cut = intact + 1; cut < file.size(); ++cut) {
    const auto decoded = decode_manifest({file.data(), cut});
    ASSERT_TRUE(decoded.is_ok()) << "cut " << cut;
    EXPECT_TRUE(decoded.value().torn_tail);
    EXPECT_EQ(decoded.value().records, 1u);
    EXPECT_EQ(decoded.value().valid_bytes, intact);
  }
}

// A record whose CRC fails ends the replay there too — a tear that flipped
// bits rather than cutting the file.
TEST(DiskManifest, CrcFailingRecordEndsReplay) {
  const auto r1 = encode_publish_record(sample_publish(0, 1));
  const auto r2 = encode_publish_record(sample_publish(0, 2));
  auto file = file_with({r1, r2});
  file[manifest_header().size() + r1.size() + kRecordHeaderBytes + 3] ^= 0x40;
  const auto decoded = decode_manifest(file);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(decoded.value().torn_tail);
  EXPECT_EQ(decoded.value().records, 1u);
  EXPECT_EQ(decoded.value().valid_bytes, manifest_header().size() + r1.size());
}

// Unknown record type with a valid CRC: skipped, counted, replay continues —
// an old reader over a new writer's log.
TEST(DiskManifest, UnknownTypeWithValidCrcIsSkipped) {
  auto unknown = encode_gc_floor_record(0, 7);
  // Rewriting the type invalidates nothing but the type byte — the CRC covers
  // only the body — so this is a valid record of an unknown kind.
  unknown[0] = 200;
  const auto tail = encode_publish_record(sample_publish(1, 9));
  const auto decoded = decode_manifest(file_with({unknown, tail}));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().skipped_unknown, 1u);
  EXPECT_FALSE(decoded.value().torn_tail);
  EXPECT_TRUE(decoded.value().shards.contains(1));
}

TEST(DiskManifest, DuplicatePublishLastWins) {
  PublishRecord first = sample_publish(0, 5);
  first.base_bytes = 111;
  first.has_base = true;
  PublishRecord second = first;
  second.base_bytes = 222;
  const auto decoded = decode_manifest(
      file_with({encode_publish_record(first), encode_publish_record(second)}));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().shards.at(0).at(5).base_bytes, 222u);
}

// Writer resume contract: open(truncate_to=valid_bytes) cuts the torn tail so
// post-restart appends land where the next replay will read them.
TEST(DiskManifestWriter, ResumeTruncatesTornTailThenAppends) {
  const std::string path = test_tmp() + "manifest_resume_test";
  std::remove(path.c_str());

  ManifestWriter w;
  ASSERT_TRUE(w.open(path, 0, /*do_fsync=*/false).is_ok());
  ASSERT_TRUE(w.append(encode_publish_record(sample_publish(0, 1))).is_ok());
  ASSERT_TRUE(w.append(encode_publish_record(sample_publish(0, 2))).is_ok());
  w.close();

  // Tear the file mid-second-record, like a crash during the append.
  std::uint64_t full = 0;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    full = static_cast<std::uint64_t>(in.tellg());
  }
  const std::uint64_t torn = full - 5;
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(torn)), 0);

  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  const auto replay = decode_manifest(bytes);
  ASSERT_TRUE(replay.is_ok());
  ASSERT_TRUE(replay.value().torn_tail);
  const std::uint64_t valid = replay.value().valid_bytes;

  ManifestWriter resumed;
  ASSERT_TRUE(resumed.open(path, valid, /*do_fsync=*/true).is_ok());
  ASSERT_TRUE(resumed.append(encode_publish_record(sample_publish(0, 3))).is_ok());
  resumed.close();

  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  const auto final_replay = decode_manifest(bytes);
  ASSERT_TRUE(final_replay.is_ok());
  EXPECT_FALSE(final_replay.value().torn_tail);
  EXPECT_EQ(final_replay.value().records, 2u);  // v1 and the post-resume v3
  EXPECT_TRUE(final_replay.value().shards.at(0).contains(1));
  EXPECT_FALSE(final_replay.value().shards.at(0).contains(2));  // torn away
  EXPECT_TRUE(final_replay.value().shards.at(0).contains(3));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace asyncml::store::disk
