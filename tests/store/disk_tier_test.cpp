// DiskTier + ModelStore durability integration: payload round-trips through
// the LRU and the blob files, dedup, fresh-open manifest rotation, resume
// replay, every injected fault seam (fail_write / torn_write / corrupt_blob /
// fail_read), quarantine with fallback to the nearest intact ancestor, and
// the GC-after-restore anchor regression.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "engine/fault.hpp"
#include "engine/metrics.hpp"
#include "engine/payload.hpp"
#include "linalg/blas.hpp"
#include "linalg/dense_vector.hpp"
#include "store/disk/blob.hpp"
#include "store/disk/blob_store.hpp"
#include "store/disk/disk_tier.hpp"
#include "store/model_cache.hpp"
#include "store/model_store.hpp"

namespace asyncml::store::disk {
namespace {

namespace fs = std::filesystem;

DiskTierConfig tier_config(const std::string& dir) {
  DiskTierConfig cfg;
  cfg.enabled = true;
  cfg.dir = dir;
  cfg.retry_backoff_ms = 0.01;  // keep injected-retry tests fast
  cfg.fsync = false;            // tmpfs tests don't need real durability
  return cfg;
}

// TEST_TMPDIR first (the CI chaos legs isolate each seed's blob stores with
// it; older gtest releases ignore it in ::testing::TempDir()).
std::string test_tmp() {
  const char* env = std::getenv("TEST_TMPDIR");
  if (env != nullptr && env[0] != '\0') {
    std::string dir(env);
    if (dir.back() != '/') dir.push_back('/');
    return dir;
  }
  return ::testing::TempDir();
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = test_tmp() + name;
  fs::remove_all(dir);
  return dir;
}

linalg::DenseVector make_model(std::size_t dim, double fill) {
  linalg::DenseVector w(dim, fill);
  for (std::size_t i = 0; i < dim; ++i) w[i] += 0.25 * static_cast<double>(i);
  return w;
}

engine::Payload payload_of(const linalg::DenseVector& w) {
  return engine::Payload::wrap<linalg::DenseVector>(w, w.size_bytes());
}

TEST(DiskTier, PayloadRoundTripsThroughLruAndThroughDisk) {
  const std::string dir = fresh_dir("tier_roundtrip");
  auto opened = DiskTier::open(tier_config(dir), OpenMode::kFresh);
  ASSERT_TRUE(opened.is_ok()) << opened.status().to_string();
  auto tier = std::move(opened).value();

  const linalg::DenseVector w = make_model(96, 1.5);
  const auto digest = tier->put_payload(payload_of(w));
  ASSERT_TRUE(digest.is_ok()) << digest.status().to_string();

  // Immediately after a put the bytes are hot: the fetch is an LRU hit.
  auto hot = tier->fetch_payload(digest.value());
  ASSERT_TRUE(hot.is_ok());
  EXPECT_GE(tier->metrics().lru_hits.load(), 1u);
  EXPECT_EQ(tier->metrics().blob_reads.load(), 0u);
  ASSERT_TRUE(hot.value().holds<linalg::DenseVector>());
  const auto& got = hot.value().get<linalg::DenseVector>();
  ASSERT_EQ(got.size(), w.size());
  EXPECT_EQ(linalg::max_abs_diff({got.data(), got.size()}, {w.data(), w.size()}),
            0.0);

  // A different tier instance (cold LRU) must read the blob file itself.
  tier.reset();
  auto reopened = DiskTier::open(tier_config(dir), OpenMode::kResume);
  ASSERT_TRUE(reopened.is_ok());
  auto cold = reopened.value()->fetch_payload(digest.value());
  ASSERT_TRUE(cold.is_ok()) << cold.status().to_string();
  EXPECT_GE(reopened.value()->metrics().blob_reads.load(), 1u);
  const auto& disk_got = cold.value().get<linalg::DenseVector>();
  EXPECT_EQ(linalg::max_abs_diff({disk_got.data(), disk_got.size()},
                                 {w.data(), w.size()}),
            0.0);
}

TEST(DiskTier, IdenticalPayloadsDedupIntoOneObject) {
  const std::string dir = fresh_dir("tier_dedup");
  auto tier = DiskTier::open(tier_config(dir), OpenMode::kFresh).value();
  const linalg::DenseVector w = make_model(64, 2.0);
  const auto first = tier->put_payload(payload_of(w));
  const auto second = tier->put_payload(payload_of(w));
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first.value(), second.value());
  EXPECT_EQ(tier->metrics().blob_writes.load(), 1u);
  EXPECT_GE(tier->metrics().blob_dedup_hits.load(), 1u);
}

TEST(DiskTier, FreshOpenRotatesTheOldManifestAside) {
  const std::string dir = fresh_dir("tier_rotate");
  {
    auto tier = DiskTier::open(tier_config(dir), OpenMode::kFresh).value();
    PublishRecord rec;
    rec.shard = 0;
    rec.version = 1;
    rec.has_base = true;
    ASSERT_TRUE(tier->append_publish(rec).is_ok());
  }
  auto again = DiskTier::open(tier_config(dir), OpenMode::kFresh).value();
  // Stale records must not leak into the new run's replay...
  EXPECT_TRUE(again->restored().shards.empty());
  // ...but the old log is kept aside for post-mortem, not destroyed.
  EXPECT_TRUE(fs::exists(fs::path(dir) / "manifest.old.0"));
}

TEST(DiskTier, ResumeReplaysPublishesFloorsAndCheckpoints) {
  const std::string dir = fresh_dir("tier_resume");
  support::Sha256Digest model_digest{};
  {
    auto tier = DiskTier::open(tier_config(dir), OpenMode::kFresh).value();
    const linalg::DenseVector w = make_model(32, 0.5);
    model_digest = tier->put_payload(payload_of(w)).value();
    for (std::uint64_t v = 1; v <= 3; ++v) {
      PublishRecord rec;
      rec.shard = static_cast<std::uint32_t>(v % 2);
      rec.version = v;
      rec.parent = v - 1;
      rec.has_base = v == 1;
      rec.has_delta = v != 1;
      rec.base_digest = v == 1 ? model_digest : support::Sha256Digest{};
      ASSERT_TRUE(tier->append_publish(rec).is_ok());
    }
    ASSERT_TRUE(tier->append_gc_floor(0, 2).is_ok());
    CheckpointRecord cp;
    cp.update_index = 9;
    cp.model_version = 3;
    cp.model_digest = model_digest;
    cp.counters = {{"tasks_completed", 18}};
    ASSERT_TRUE(tier->append_checkpoint(cp).is_ok());
  }

  auto tier = DiskTier::open(tier_config(dir), OpenMode::kResume).value();
  const ManifestState& st = tier->restored();
  ASSERT_TRUE(st.shards.contains(0));
  ASSERT_TRUE(st.shards.contains(1));
  EXPECT_TRUE(st.shards.at(1).contains(1));
  EXPECT_TRUE(st.shards.at(0).contains(2));
  EXPECT_EQ(st.gc_floors.at(0), 2u);
  ASSERT_EQ(st.checkpoints.size(), 1u);
  EXPECT_EQ(st.checkpoints[0].update_index, 9u);
  // The blobs the replayed records point at are still fetchable.
  EXPECT_TRUE(tier->fetch_payload(model_digest).is_ok());
}

// -- fault seams, one at a time (BlobStore level, no LRU in the way) ---------

std::vector<std::uint8_t> small_payload() {
  std::vector<std::uint8_t> p(96);
  for (std::size_t i = 0; i < p.size(); ++i) {
    p[i] = static_cast<std::uint8_t>(i ^ 0x5A);
  }
  return p;
}

TEST(DiskFaults, TransientWriteFailureIsRetriedAndCounted) {
  const std::string dir = fresh_dir("fault_write_retry");
  engine::DiskTierMetrics metrics;
  engine::FaultState faults{engine::FaultPlan{}.fail_write(1)};
  BlobStore store(dir, tier_config(dir), &metrics, &faults);
  ASSERT_TRUE(store.init().is_ok());

  const auto put = store.put(small_payload());
  ASSERT_TRUE(put.is_ok()) << put.status().to_string();
  EXPECT_EQ(faults.stats().disk_writes_failed, 1u);
  EXPECT_GE(metrics.write_retries.load(), 1u);
  EXPECT_TRUE(store.get(put.value()).is_ok());
}

TEST(DiskFaults, PersistentWriteFailureSurfacesAfterBoundedRetries) {
  const std::string dir = fresh_dir("fault_write_exhaust");
  engine::DiskTierMetrics metrics;
  engine::FaultState faults{engine::FaultPlan{}.fail_write(/*times=*/100)};
  auto cfg = tier_config(dir);
  cfg.max_attempts = 3;
  BlobStore store(dir, cfg, &metrics, &faults);
  ASSERT_TRUE(store.init().is_ok());

  const auto put = store.put(small_payload());
  ASSERT_FALSE(put.is_ok());
  EXPECT_EQ(put.status().code(), support::StatusCode::kUnavailable);
  EXPECT_EQ(faults.stats().disk_writes_failed, 3u);  // once per attempt
}

TEST(DiskFaults, TornWriteIsQuarantinedOnReadAndRecoverableByRewrite) {
  const std::string dir = fresh_dir("fault_torn");
  engine::DiskTierMetrics metrics;
  engine::FaultState faults{engine::FaultPlan{}.torn_write(1)};
  BlobStore store(dir, tier_config(dir), &metrics, &faults);
  ASSERT_TRUE(store.init().is_ok());

  const auto payload = small_payload();
  const auto put = store.put(payload);
  ASSERT_TRUE(put.is_ok());  // the tear is silent at write time, like real disks
  EXPECT_EQ(faults.stats().disk_writes_torn, 1u);

  const auto read = store.get(put.value());
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.status().code(), support::StatusCode::kDataLoss);
  EXPECT_EQ(metrics.quarantines.load(), 1u);
  EXPECT_FALSE(store.contains(put.value()));  // never re-served

  // Content addressing makes the repair trivial: write the same bytes again.
  const auto rewrite = store.put(payload);
  ASSERT_TRUE(rewrite.is_ok());
  EXPECT_EQ(rewrite.value(), put.value());
  EXPECT_TRUE(store.get(put.value()).is_ok());
}

TEST(DiskFaults, CorruptBlobFailsVerificationOnRead) {
  const std::string dir = fresh_dir("fault_corrupt");
  engine::DiskTierMetrics metrics;
  engine::FaultState faults{engine::FaultPlan{}.corrupt_blob(1)};
  BlobStore store(dir, tier_config(dir), &metrics, &faults);
  ASSERT_TRUE(store.init().is_ok());

  const auto put = store.put(small_payload());
  ASSERT_TRUE(put.is_ok());
  EXPECT_EQ(faults.stats().blobs_corrupted, 1u);
  const auto read = store.get(put.value());
  ASSERT_FALSE(read.is_ok());
  EXPECT_EQ(read.status().code(), support::StatusCode::kDataLoss);
  EXPECT_EQ(metrics.quarantines.load(), 1u);
}

TEST(DiskFaults, TransientReadFailureIsRetriedAndCounted) {
  const std::string dir = fresh_dir("fault_read_retry");
  engine::DiskTierMetrics metrics;
  engine::FaultState faults{engine::FaultPlan{}.fail_read(1)};
  BlobStore store(dir, tier_config(dir), &metrics, &faults);
  ASSERT_TRUE(store.init().is_ok());

  const auto payload = small_payload();
  const auto put = store.put(payload);
  ASSERT_TRUE(put.is_ok());
  const auto read = store.get(put.value());
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  EXPECT_EQ(faults.stats().disk_reads_failed, 1u);
  EXPECT_GE(metrics.read_retries.load(), 1u);
  EXPECT_EQ(read.value(), payload);
}

// -- ModelStore over the tier ------------------------------------------------

StoreConfig deep_chain_config() {
  StoreConfig cfg;
  cfg.base_interval = 100;  // keep v1.. as pure deltas
  return cfg;
}

/// Publishes versions 0..`last` with one-coordinate updates and returns the
/// model at each version.
std::vector<linalg::DenseVector> publish_chain(ModelStore& store,
                                               engine::Version last) {
  std::vector<linalg::DenseVector> models;
  linalg::DenseVector w = make_model(48, 1.0);
  for (engine::Version v = 0; v <= last; ++v) {
    w[v % w.size()] += 1.0 + static_cast<double>(v);
    store.publish(w, v);
    models.push_back(w);
  }
  return models;
}

TEST(DiskTierModelStore, RestoreServesHistoryWithoutReplay) {
  const std::string dir = fresh_dir("tier_restore");
  std::vector<linalg::DenseVector> models;
  {
    auto tier = DiskTier::open(tier_config(dir), OpenMode::kFresh).value();
    engine::BroadcastStore broadcasts;
    ModelStore store(&broadcasts, deep_chain_config());
    store.attach_disk(tier.get(), /*manifest_shard=*/0);
    models = publish_chain(store, 5);
  }

  auto tier = DiskTier::open(tier_config(dir), OpenMode::kResume).value();
  engine::BroadcastStore broadcasts;
  ModelStore store(&broadcasts, deep_chain_config());
  store.attach_disk(tier.get(), 0);
  const auto& st = tier->restored();
  ASSERT_TRUE(st.shards.contains(0));
  const std::uint64_t floor =
      st.gc_floors.contains(0) ? st.gc_floors.at(0) : 0;
  store.restore_from_manifest(st.shards.at(0), floor, /*anchor=*/5);

  ASSERT_TRUE(store.entry_of(5).has_value());
  const auto& w5 = store.driver_cache().value_at(5);
  EXPECT_EQ(linalg::max_abs_diff({w5.data(), w5.size()},
                                 {models[5].data(), models[5].size()}),
            0.0);
  EXPECT_GE(tier->metrics().faulted_in.load(), 1u);
  // Earlier history resolves too — no update replay anywhere.
  const auto& w3 = store.driver_cache().value_at(3);
  EXPECT_EQ(linalg::max_abs_diff({w3.data(), w3.size()},
                                 {models[3].data(), models[3].size()}),
            0.0);
}

TEST(DiskTierModelStore, QuarantinedBlobFallsBackToNearestIntactAncestor) {
  const std::string dir = fresh_dir("tier_fallback");
  std::vector<linalg::DenseVector> models;
  support::Sha256Digest victim{};
  {
    auto tier = DiskTier::open(tier_config(dir), OpenMode::kFresh).value();
    engine::BroadcastStore broadcasts;
    ModelStore store(&broadcasts, deep_chain_config());
    store.attach_disk(tier.get(), 0);
    models = publish_chain(store, 5);
    victim = store.entry_of(4)->delta_hash;  // v4's only payload
    ASSERT_FALSE(support::sha256_is_zero(victim));
  }

  auto tier = DiskTier::open(tier_config(dir), OpenMode::kResume).value();
  // Rot v4's delta blob on disk: flip one payload byte.
  const std::string path = tier->blobs().object_path(victim);
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(kBlobHeaderBytes + 2));
    char byte = 0;
    f.seekg(static_cast<std::streamoff>(kBlobHeaderBytes + 2));
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x08);
    f.seekp(static_cast<std::streamoff>(kBlobHeaderBytes + 2));
    f.write(&byte, 1);
  }

  engine::BroadcastStore broadcasts;
  ModelStore store(&broadcasts, deep_chain_config());
  store.attach_disk(tier.get(), 0);
  store.restore_from_manifest(tier->restored().shards.at(0), 0, /*anchor=*/5);

  // v5's chain runs through the rotted v4 delta: resolution must not crash
  // and must degrade to the nearest intact ancestor (v3), re-published as a
  // fresh base under v5.
  const auto& w5 = store.driver_cache().value_at(5);
  EXPECT_EQ(linalg::max_abs_diff({w5.data(), w5.size()},
                                 {models[3].data(), models[3].size()}),
            0.0);
  EXPECT_GE(tier->metrics().quarantines.load(), 1u);
  EXPECT_GE(tier->metrics().bases_republished.load(), 1u);
  EXPECT_GE(tier->metrics().recovery_walks.load(), 1u);
  // Versions before the rot are untouched.
  const auto& w2 = store.driver_cache().value_at(2);
  EXPECT_EQ(linalg::max_abs_diff({w2.data(), w2.size()},
                                 {models[2].data(), models[2].size()}),
            0.0);
}

// Regression (GC-after-restore): an aggressive GC floor arriving right after
// a restore must never collect the restore anchor out from under the run.
TEST(DiskTierModelStore, GcAfterRestoreNeverUnlinksTheAnchor) {
  const std::string dir = fresh_dir("tier_gc_anchor");
  std::vector<linalg::DenseVector> models;
  {
    auto tier = DiskTier::open(tier_config(dir), OpenMode::kFresh).value();
    engine::BroadcastStore broadcasts;
    ModelStore store(&broadcasts, deep_chain_config());
    store.attach_disk(tier.get(), 0);
    models = publish_chain(store, 5);
  }

  auto tier = DiskTier::open(tier_config(dir), OpenMode::kResume).value();
  engine::BroadcastStore broadcasts;
  ModelStore store(&broadcasts, deep_chain_config());
  store.attach_disk(tier.get(), 0);
  store.restore_from_manifest(tier->restored().shards.at(0), 0, /*anchor=*/5);
  ASSERT_EQ(store.restore_anchor(), std::optional<engine::Version>(5));

  // The pathological floor: far above everything restored.
  store.gc_below(1000);
  ASSERT_TRUE(store.entry_of(5).has_value()) << "anchor was collected";
  EXPECT_EQ(store.restore_anchor(), std::optional<engine::Version>(5));
  const auto& w5 = store.driver_cache().value_at(5);
  EXPECT_EQ(linalg::max_abs_diff({w5.data(), w5.size()},
                                 {models[5].data(), models[5].size()}),
            0.0);

  // A newer base-carrying publish releases the clamp; GC may then proceed.
  linalg::DenseVector next = models[5];
  next[0] += 3.0;
  store.publish(next, 6);
  EXPECT_EQ(store.restore_anchor(), std::nullopt);
  store.gc_below(6);
  EXPECT_FALSE(store.entry_of(5).has_value());
  const auto& w6 = store.driver_cache().value_at(6);
  EXPECT_EQ(linalg::max_abs_diff({w6.data(), w6.size()},
                                 {next.data(), next.size()}),
            0.0);
}

}  // namespace
}  // namespace asyncml::store::disk
