#include "straggler/trace_replay.hpp"

#include <gtest/gtest.h>

namespace asyncml::straggler {
namespace {

TEST(TraceReplay, ReplaysScheduledMultipliers) {
  TraceReplay model({{1.0, 2.0, 3.0}, {1.5}});
  EXPECT_DOUBLE_EQ(model.multiplier(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.multiplier(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(model.multiplier(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(model.multiplier(1, 0), 1.5);
}

TEST(TraceReplay, TailRepeatsLastEntry) {
  TraceReplay model({{1.0, 4.0}});
  EXPECT_DOUBLE_EQ(model.multiplier(0, 99), 4.0);
}

TEST(TraceReplay, UntracedWorkersRunFullSpeed) {
  TraceReplay model(std::vector<std::vector<double>>{{2.0}});
  EXPECT_DOUBLE_EQ(model.multiplier(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.multiplier(-1, 0), 1.0);
  TraceReplay empty(std::vector<std::vector<double>>{{}});
  EXPECT_DOUBLE_EQ(empty.multiplier(0, 0), 1.0);
}

TEST(TraceReplay, CsvParsesStepFunction) {
  const std::string csv =
      "worker,seq,multiplier\n"
      "0,0,1.0\n"
      "0,3,2.5\n"
      "1,1,4.0\n";
  const auto parsed = TraceReplay::from_csv(csv, 2);
  ASSERT_TRUE(parsed.is_ok());
  const TraceReplay& model = parsed.value();
  EXPECT_DOUBLE_EQ(model.multiplier(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.multiplier(0, 2), 1.0);  // step-filled
  EXPECT_DOUBLE_EQ(model.multiplier(0, 3), 2.5);
  EXPECT_DOUBLE_EQ(model.multiplier(0, 10), 2.5);
  EXPECT_DOUBLE_EQ(model.multiplier(1, 0), 1.0);  // filled before first entry
  EXPECT_DOUBLE_EQ(model.multiplier(1, 1), 4.0);
}

TEST(TraceReplay, CsvIgnoresCommentsAndBlanks) {
  const auto parsed = TraceReplay::from_csv("# comment\n\n0,0,2.0\n", 1);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_DOUBLE_EQ(parsed.value().multiplier(0, 0), 2.0);
}

TEST(TraceReplay, CsvRejectsMalformedRow) {
  EXPECT_FALSE(TraceReplay::from_csv("0;0;2.0\n", 1).is_ok());
  EXPECT_FALSE(TraceReplay::from_csv("nonsense\n", 1).is_ok());
}

TEST(TraceReplay, CsvRejectsOutOfRangeWorker) {
  EXPECT_FALSE(TraceReplay::from_csv("7,0,2.0\n", 2).is_ok());
}

TEST(TraceReplay, CsvRejectsSubUnitMultiplier) {
  EXPECT_FALSE(TraceReplay::from_csv("0,0,0.5\n", 1).is_ok());
}

TEST(TraceReplay, ModelsWorkerBecomingStraggler) {
  // The drifting-straggler scenario the STAT EWMA exists for: fast for 5
  // rounds, then 3x slow.
  std::vector<double> trace(5, 1.0);
  trace.resize(10, 3.0);
  TraceReplay model({trace});
  EXPECT_DOUBLE_EQ(model.multiplier(0, 4), 1.0);
  EXPECT_DOUBLE_EQ(model.multiplier(0, 5), 3.0);
}

}  // namespace
}  // namespace asyncml::straggler
