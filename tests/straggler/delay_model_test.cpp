#include <gtest/gtest.h>

#include "straggler/controlled_delay.hpp"
#include "straggler/production_cluster.hpp"

namespace asyncml::straggler {
namespace {

TEST(ControlledDelay, OnlyStragglerDelayed) {
  ControlledDelay model(/*straggler=*/2, /*intensity=*/0.6);
  for (int w = 0; w < 8; ++w) {
    EXPECT_DOUBLE_EQ(model.multiplier(w, 0), w == 2 ? 1.6 : 1.0);
  }
}

TEST(ControlledDelay, ZeroIntensityIsNoDelay) {
  ControlledDelay model(0, 0.0);
  EXPECT_DOUBLE_EQ(model.multiplier(0, 5), 1.0);
}

TEST(ControlledDelay, FullIntensityHalvesSpeed) {
  // The paper: "a 100% delay means the worker is executing jobs at half
  // speed" — i.e. service time x2.
  ControlledDelay model(0, 1.0);
  EXPECT_DOUBLE_EQ(model.multiplier(0, 0), 2.0);
}

TEST(ControlledDelay, StationaryAcrossRounds) {
  ControlledDelay model(1, 0.3);
  EXPECT_DOUBLE_EQ(model.multiplier(1, 0), model.multiplier(1, 99));
}

TEST(ProductionCluster, PaperProportionsAt32Workers) {
  // 25% stragglers of 32 = 8; 20% of those long tail = 2 (the paper: "6 are
  // assigned a random delay between 150%-250% and two are long tail").
  ProductionCluster model(32, /*seed=*/1);
  EXPECT_EQ(model.num_stragglers(), 8);
  EXPECT_EQ(model.num_long_tail(), 2);
}

TEST(ProductionCluster, MultipliersWithinConfiguredBands) {
  ProductionCluster model(32, /*seed=*/2);
  int uniform = 0, long_tail = 0, normal = 0;
  for (int w = 0; w < 32; ++w) {
    const double m = model.multiplier(w, 0);
    if (m == 1.0) {
      ++normal;
    } else if (m >= 1.5 && m <= 2.5) {
      ++uniform;
    } else if (m > 2.5 && m <= 10.0) {
      ++long_tail;
    } else {
      FAIL() << "multiplier out of band: " << m;
    }
  }
  EXPECT_EQ(normal, 24);
  EXPECT_EQ(uniform + long_tail, 8);
  EXPECT_GE(long_tail, 1);
}

TEST(ProductionCluster, DeterministicPerSeed) {
  ProductionCluster a(32, 7), b(32, 7), c(32, 8);
  EXPECT_EQ(a.multipliers(), b.multipliers());
  EXPECT_NE(a.multipliers(), c.multipliers());
}

TEST(ProductionCluster, SmallClusterStillHasStragglers) {
  ProductionCluster model(8, 3);
  EXPECT_EQ(model.num_stragglers(), 2);
  int delayed = 0;
  for (int w = 0; w < 8; ++w) delayed += model.multiplier(w, 0) > 1.0 ? 1 : 0;
  EXPECT_EQ(delayed, 2);
}

TEST(ProductionCluster, CustomConfigRespected) {
  PcsConfig config;
  config.straggler_fraction = 0.5;
  config.long_tail_fraction = 0.0;
  config.uniform_lo = 3.0;
  config.uniform_hi = 4.0;
  ProductionCluster model(10, 5, config);
  EXPECT_EQ(model.num_stragglers(), 5);
  EXPECT_EQ(model.num_long_tail(), 0);
  for (int w = 0; w < 10; ++w) {
    const double m = model.multiplier(w, 0);
    EXPECT_TRUE(m == 1.0 || (m >= 3.0 && m <= 4.0)) << m;
  }
}

TEST(NoDelay, AlwaysUnit) {
  engine::NoDelay model;
  EXPECT_DOUBLE_EQ(model.multiplier(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.multiplier(31, 999), 1.0);
}

}  // namespace
}  // namespace asyncml::straggler
