#include "data/libsvm.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "data/synthetic.hpp"

namespace asyncml::data {
namespace {

TEST(Libsvm, ParsesBasicFile) {
  std::istringstream in("1 1:0.5 3:2.0\n-1 2:1.5\n");
  const auto parsed = read_libsvm(in, "test");
  ASSERT_TRUE(parsed.is_ok());
  const Dataset& d = parsed.value();
  EXPECT_EQ(d.rows(), 2u);
  EXPECT_EQ(d.cols(), 3u);  // inferred from max index
  EXPECT_DOUBLE_EQ(d.labels()[0], 1.0);
  EXPECT_DOUBLE_EQ(d.labels()[1], -1.0);
  const linalg::SparseRowView r0 = d.sparse_features().row(0);
  ASSERT_EQ(r0.nnz(), 2u);
  EXPECT_EQ(r0.indices[0], 0u);  // 1-based -> 0-based
  EXPECT_DOUBLE_EQ(r0.values[1], 2.0);
}

TEST(Libsvm, SkipsBlankLinesAndComments) {
  std::istringstream in("\n# header comment\n1 1:1.0  # trailing\n\n");
  const auto parsed = read_libsvm(in, "test");
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().rows(), 1u);
}

TEST(Libsvm, DeclaredFeatureCountWins) {
  std::istringstream in("1 1:1.0\n");
  LibsvmOptions options;
  options.num_features = 10;
  const auto parsed = read_libsvm(in, "test", options);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().cols(), 10u);
}

TEST(Libsvm, IndexBeyondDeclaredCountRejected) {
  std::istringstream in("1 11:1.0\n");
  LibsvmOptions options;
  options.num_features = 10;
  EXPECT_FALSE(read_libsvm(in, "test", options).is_ok());
}

TEST(Libsvm, MaxRowsCapsReading) {
  std::istringstream in("1 1:1\n2 1:1\n3 1:1\n");
  LibsvmOptions options;
  options.max_rows = 2;
  const auto parsed = read_libsvm(in, "test", options);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().rows(), 2u);
}

TEST(Libsvm, RejectsMalformedLabel) {
  std::istringstream in("abc 1:1.0\n");
  EXPECT_FALSE(read_libsvm(in, "test").is_ok());
}

TEST(Libsvm, RejectsMissingColon) {
  std::istringstream in("1 15\n");
  EXPECT_FALSE(read_libsvm(in, "test").is_ok());
}

TEST(Libsvm, RejectsZeroIndex) {
  std::istringstream in("1 0:1.0\n");
  EXPECT_FALSE(read_libsvm(in, "test").is_ok());
}

TEST(Libsvm, RejectsNonIncreasingIndices) {
  std::istringstream in("1 3:1.0 2:1.0\n");
  EXPECT_FALSE(read_libsvm(in, "test").is_ok());
}

TEST(Libsvm, RejectsBadValue) {
  std::istringstream in("1 2:xyz\n");
  EXPECT_FALSE(read_libsvm(in, "test").is_ok());
}

TEST(Libsvm, MissingFileIsNotFound) {
  const auto loaded = load_libsvm("/nonexistent/path/data.svm");
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), support::StatusCode::kNotFound);
}

TEST(Libsvm, SparseRoundTripPreservesData) {
  const auto problem = synthetic::make_sparse(
      synthetic::SparseSpec{.name = "rt", .rows = 30, .cols = 20, .density = 0.2}, 7);
  std::ostringstream out;
  ASSERT_TRUE(write_libsvm(out, problem.dataset).is_ok());

  std::istringstream in(out.str());
  LibsvmOptions options;
  options.num_features = 20;
  const auto parsed = read_libsvm(in, "rt", options);
  ASSERT_TRUE(parsed.is_ok());
  const Dataset& back = parsed.value();
  ASSERT_EQ(back.rows(), problem.dataset.rows());
  for (std::size_t r = 0; r < back.rows(); ++r) {
    EXPECT_NEAR(back.labels()[r], problem.dataset.labels()[r], 1e-12);
    const auto a = problem.dataset.sparse_features().row(r);
    const auto b = back.sparse_features().row(r);
    ASSERT_EQ(a.nnz(), b.nnz());
    for (std::size_t k = 0; k < a.nnz(); ++k) {
      EXPECT_EQ(a.indices[k], b.indices[k]);
      EXPECT_NEAR(a.values[k], b.values[k], 1e-12);
    }
  }
}

TEST(Libsvm, DenseDatasetWritesNonzerosOnly) {
  linalg::DenseMatrix m(1, 4);
  m.at(0, 1) = 2.0;  // only one nonzero
  Dataset d("dense", std::move(m), linalg::DenseVector{1.0});
  std::ostringstream out;
  ASSERT_TRUE(write_libsvm(out, d).is_ok());
  EXPECT_EQ(out.str(), "1 2:2\n");
}

}  // namespace
}  // namespace asyncml::data
