#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace asyncml::data {
namespace {

linalg::DenseMatrix small_dense() {
  linalg::DenseMatrix m(2, 3);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(0, 2) = 2;
  m.at(1, 0) = 0;
  m.at(1, 1) = 3;
  m.at(1, 2) = 4;
  return m;
}

linalg::CsrMatrix small_sparse() {
  linalg::CsrMatrix m = linalg::CsrMatrix::for_appending(3);
  linalg::SparseVector r0;
  r0.push_back(0, 3.0);
  r0.push_back(2, 4.0);
  linalg::SparseVector r1;
  r1.push_back(1, 2.0);
  m.append_row(r0);
  m.append_row(r1);
  return m;
}

TEST(Dataset, DenseBasics) {
  Dataset d("dense", small_dense(), linalg::DenseVector{1.0, -1.0});
  EXPECT_TRUE(d.is_dense());
  EXPECT_EQ(d.rows(), 2u);
  EXPECT_EQ(d.cols(), 3u);
  EXPECT_DOUBLE_EQ(d.density(), 1.0);
  EXPECT_EQ(d.name(), "dense");
}

TEST(Dataset, SparseBasics) {
  Dataset d("sparse", small_sparse(), linalg::DenseVector{1.0, -1.0});
  EXPECT_FALSE(d.is_dense());
  EXPECT_EQ(d.rows(), 2u);
  EXPECT_EQ(d.cols(), 3u);
  EXPECT_DOUBLE_EQ(d.density(), 3.0 / 6.0);
}

TEST(Dataset, PointCarriesIndexLabelFeatures) {
  Dataset d("dense", small_dense(), linalg::DenseVector{1.0, -1.0});
  const LabeledPoint p = d.point(1);
  EXPECT_EQ(p.index, 1u);
  EXPECT_DOUBLE_EQ(p.label, -1.0);
  linalg::DenseVector w{1, 1, 1};
  EXPECT_DOUBLE_EQ(p.features.dot(w.span()), 7.0);
}

TEST(RowRef, DenseDotAxpyNorm) {
  Dataset d("dense", small_dense(), linalg::DenseVector(2));
  const RowRef row = d.row(0);
  EXPECT_TRUE(row.is_dense());
  linalg::DenseVector w{1, 0, 1};
  EXPECT_DOUBLE_EQ(row.dot(w.span()), 3.0);
  linalg::DenseVector acc(3);
  row.axpy_into(2.0, acc.span());
  EXPECT_DOUBLE_EQ(acc[1], 4.0);
  EXPECT_DOUBLE_EQ(row.norm_squared(), 1 + 4 + 4);
  EXPECT_EQ(row.nnz(), 3u);
}

TEST(RowRef, SparseDotAxpyNorm) {
  Dataset d("sparse", small_sparse(), linalg::DenseVector(2));
  const RowRef row = d.row(0);
  EXPECT_FALSE(row.is_dense());
  linalg::DenseVector w{1, 1, 1};
  EXPECT_DOUBLE_EQ(row.dot(w.span()), 7.0);
  linalg::DenseVector acc(3);
  row.axpy_into(1.0, acc.span());
  EXPECT_DOUBLE_EQ(acc[0], 3.0);
  EXPECT_DOUBLE_EQ(acc[2], 4.0);
  EXPECT_DOUBLE_EQ(row.norm_squared(), 25.0);
  EXPECT_EQ(row.nnz(), 2u);
}

TEST(NormalizeRows, DenseUnitNorms) {
  Dataset d("dense", small_dense(), linalg::DenseVector(2));
  const Dataset normalized = normalize_rows(d);
  for (std::size_t r = 0; r < normalized.rows(); ++r) {
    EXPECT_NEAR(normalized.row(r).norm_squared(), 1.0, 1e-12);
  }
}

TEST(NormalizeRows, SparseUnitNorms) {
  Dataset d("sparse", small_sparse(), linalg::DenseVector(2));
  const Dataset normalized = normalize_rows(d);
  for (std::size_t r = 0; r < normalized.rows(); ++r) {
    EXPECT_NEAR(normalized.row(r).norm_squared(), 1.0, 1e-12);
  }
}

TEST(NormalizeRows, LabelsPreserved) {
  Dataset d("dense", small_dense(), linalg::DenseVector{5.0, 6.0});
  const Dataset normalized = normalize_rows(d);
  EXPECT_DOUBLE_EQ(normalized.labels()[0], 5.0);
  EXPECT_DOUBLE_EQ(normalized.labels()[1], 6.0);
}

TEST(Dataset, FeatureBytesPositive) {
  Dataset dense("d", small_dense(), linalg::DenseVector(2));
  Dataset sparse("s", small_sparse(), linalg::DenseVector(2));
  EXPECT_EQ(dense.feature_bytes(), 2u * 3u * 8u);
  EXPECT_GT(sparse.feature_bytes(), 0u);
  EXPECT_LT(sparse.feature_bytes(), dense.feature_bytes() * 2);
}

}  // namespace
}  // namespace asyncml::data
