#include "data/split.hpp"

#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.hpp"
#include "linalg/solve.hpp"

namespace asyncml::data {
namespace {

TEST(TrainTestSplit, SizesMatchFraction) {
  const auto problem = synthetic::tiny(100, 5, 0.0, 1);
  const TrainTestSplit split = train_test_split(problem.dataset, 0.25, 7);
  EXPECT_EQ(split.test.rows(), 25u);
  EXPECT_EQ(split.train.rows(), 75u);
  EXPECT_EQ(split.train.cols(), 5u);
}

TEST(TrainTestSplit, AtLeastOneRowEachSide) {
  const auto problem = synthetic::tiny(4, 3, 0.0, 2);
  const TrainTestSplit tiny_test = train_test_split(problem.dataset, 0.0, 3);
  EXPECT_EQ(tiny_test.test.rows(), 1u);
  const TrainTestSplit tiny_train = train_test_split(problem.dataset, 1.0, 3);
  EXPECT_EQ(tiny_train.train.rows(), 1u);
}

TEST(TrainTestSplit, DeterministicPerSeed) {
  const auto problem = synthetic::tiny(60, 4, 0.1, 3);
  const auto a = train_test_split(problem.dataset, 0.3, 11);
  const auto b = train_test_split(problem.dataset, 0.3, 11);
  const auto c = train_test_split(problem.dataset, 0.3, 12);
  EXPECT_EQ(a.test.labels(), b.test.labels());
  EXPECT_NE(a.test.labels(), c.test.labels());
}

TEST(TrainTestSplit, RowsPartitionTheDataset) {
  // Every label mass is preserved: multiset of labels of train+test equals
  // the original (labels here are distinct reals with high probability).
  const auto problem = synthetic::tiny(50, 4, 0.0, 4);
  const auto split = train_test_split(problem.dataset, 0.4, 5);
  std::multiset<double> original, recombined;
  for (std::size_t i = 0; i < problem.dataset.rows(); ++i) {
    original.insert(problem.dataset.labels()[i]);
  }
  for (std::size_t i = 0; i < split.train.rows(); ++i) {
    recombined.insert(split.train.labels()[i]);
  }
  for (std::size_t i = 0; i < split.test.rows(); ++i) {
    recombined.insert(split.test.labels()[i]);
  }
  EXPECT_EQ(original, recombined);
}

TEST(TrainTestSplit, SparseDatasetsSupported) {
  const auto problem = synthetic::make_sparse(
      synthetic::SparseSpec{.rows = 40, .cols = 30, .density = 0.2}, 6);
  const auto split = train_test_split(problem.dataset, 0.25, 7);
  EXPECT_FALSE(split.train.is_dense());
  EXPECT_EQ(split.train.rows() + split.test.rows(), 40u);
}

TEST(Rmse, ZeroAtExactModel) {
  const auto problem = synthetic::tiny(50, 5, 0.0, 8);
  EXPECT_NEAR(rmse(problem.dataset, problem.w_star), 0.0, 1e-9);
}

TEST(Rmse, MatchesHandComputation) {
  linalg::DenseMatrix x(2, 1);
  x.at(0, 0) = 1.0;
  x.at(1, 0) = 1.0;
  Dataset d("hand", std::move(x), linalg::DenseVector{0.0, 2.0});
  // w = [1] -> residuals {1, -1} -> rmse 1.
  EXPECT_DOUBLE_EQ(rmse(d, linalg::DenseVector{1.0}), 1.0);
}

TEST(SignAccuracy, PerfectAndChanceLevels) {
  const auto problem = synthetic::tiny(200, 6, 0.0, 9);
  // Binarized labels, exact model => 100% sign agreement.
  linalg::DenseVector labels(problem.dataset.rows());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = problem.dataset.labels()[i] >= 0 ? 1.0 : -1.0;
  }
  Dataset binary("b", problem.dataset.dense_features(), labels);
  EXPECT_DOUBLE_EQ(sign_accuracy(binary, problem.w_star), 1.0);
  // The negated model gets everything wrong.
  linalg::DenseVector negated = problem.w_star;
  linalg::scal(-1.0, negated.span());
  EXPECT_LT(sign_accuracy(binary, negated), 0.1);
}

TEST(RSquared, OneAtExactModelZeroAtMeanModel) {
  const auto problem = synthetic::tiny(80, 4, 0.0, 10);
  EXPECT_NEAR(r_squared(problem.dataset, problem.w_star), 1.0, 1e-9);
  EXPECT_LE(r_squared(problem.dataset, linalg::DenseVector(4)), 0.5);
}

TEST(HoldoutGeneralization, FitOnTrainScoresOnTest) {
  // End-to-end: exact least-squares fit on the train half generalizes to the
  // held-out half of a noiseless problem.
  const auto problem = synthetic::tiny(120, 6, 0.0, 11);
  const auto split = train_test_split(problem.dataset, 0.5, 13);
  const auto fit = linalg::least_squares_optimum(split.train.dense_features(),
                                                 split.train.labels());
  ASSERT_TRUE(fit.is_ok());
  EXPECT_LT(rmse(split.test, fit.value()), 1e-6);
  EXPECT_GT(r_squared(split.test, fit.value()), 0.999);
}

}  // namespace
}  // namespace asyncml::data
