#include "data/partition.hpp"

#include <gtest/gtest.h>

namespace asyncml::data {
namespace {

TEST(ContiguousPartitions, EvenSplit) {
  const auto parts = contiguous_partitions(12, 4);
  ASSERT_EQ(parts.size(), 4u);
  for (const RowRange& r : parts) EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(parts.front().begin, 0u);
  EXPECT_EQ(parts.back().end, 12u);
}

TEST(ContiguousPartitions, UnevenSplitFrontLoaded) {
  const auto parts = contiguous_partitions(10, 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0].size(), 3u);
  EXPECT_EQ(parts[1].size(), 3u);
  EXPECT_EQ(parts[2].size(), 2u);
  EXPECT_EQ(parts[3].size(), 2u);
}

TEST(ContiguousPartitions, CoverWithoutGapsOrOverlap) {
  const auto parts = contiguous_partitions(101, 7);
  std::size_t cursor = 0;
  for (const RowRange& r : parts) {
    EXPECT_EQ(r.begin, cursor);
    cursor = r.end;
  }
  EXPECT_EQ(cursor, 101u);
}

TEST(ContiguousPartitions, MorePartsThanRows) {
  const auto parts = contiguous_partitions(3, 5);
  ASSERT_EQ(parts.size(), 5u);
  std::size_t total = 0;
  for (const RowRange& r : parts) total += r.size();
  EXPECT_EQ(total, 3u);
}

TEST(ContiguousPartitions, ZeroRows) {
  const auto parts = contiguous_partitions(0, 3);
  ASSERT_EQ(parts.size(), 3u);
  for (const RowRange& r : parts) EXPECT_EQ(r.size(), 0u);
}

TEST(WorkerForPartition, RoundRobin) {
  EXPECT_EQ(worker_for_partition(0, 4), 0);
  EXPECT_EQ(worker_for_partition(5, 4), 1);
  EXPECT_EQ(worker_for_partition(7, 4), 3);
}

TEST(PartitionsOfWorker, InverseOfRoundRobin) {
  // 32 partitions over 8 workers: worker w owns {w, w+8, w+16, w+24}.
  const auto owned = partitions_of_worker(2, 32, 8);
  ASSERT_EQ(owned.size(), 4u);
  EXPECT_EQ(owned[0], 2);
  EXPECT_EQ(owned[3], 26);
  for (int p : owned) EXPECT_EQ(worker_for_partition(p, 8), 2);
}

TEST(PartitionsOfWorker, OnePartitionPerWorker) {
  // The paper's PCS setup: 32 partitions, 32 workers.
  for (int w = 0; w < 32; ++w) {
    const auto owned = partitions_of_worker(w, 32, 32);
    ASSERT_EQ(owned.size(), 1u);
    EXPECT_EQ(owned[0], w);
  }
}

TEST(PartitionsOfWorker, WorkerBeyondPartitionsOwnsNothing) {
  EXPECT_TRUE(partitions_of_worker(5, 4, 8).empty());
}

}  // namespace
}  // namespace asyncml::data
