#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include "linalg/blas.hpp"

namespace asyncml::data::synthetic {
namespace {

TEST(SyntheticDense, ShapeMatchesSpec) {
  const Problem p = make_dense(DenseSpec{.name = "x", .rows = 100, .cols = 10}, 1);
  EXPECT_TRUE(p.dataset.is_dense());
  EXPECT_EQ(p.dataset.rows(), 100u);
  EXPECT_EQ(p.dataset.cols(), 10u);
  EXPECT_EQ(p.w_star.size(), 10u);
}

TEST(SyntheticDense, NoiselessLabelsAreExactMargins) {
  const Problem p = make_dense(DenseSpec{.rows = 50, .cols = 8, .noise_std = 0.0}, 2);
  EXPECT_TRUE(p.optimum_known());
  for (std::size_t r = 0; r < p.dataset.rows(); ++r) {
    EXPECT_NEAR(p.dataset.labels()[r], p.dataset.row(r).dot(p.w_star.span()), 1e-12);
  }
}

TEST(SyntheticDense, NoisyLabelsDeviate) {
  const Problem p = make_dense(DenseSpec{.rows = 200, .cols = 5, .noise_std = 0.5}, 3);
  EXPECT_FALSE(p.optimum_known());
  double total_dev = 0.0;
  for (std::size_t r = 0; r < p.dataset.rows(); ++r) {
    total_dev +=
        std::abs(p.dataset.labels()[r] - p.dataset.row(r).dot(p.w_star.span()));
  }
  EXPECT_GT(total_dev / static_cast<double>(p.dataset.rows()), 0.1);
}

TEST(SyntheticDense, DeterministicPerSeed) {
  const Problem a = make_dense(DenseSpec{.rows = 20, .cols = 4}, 11);
  const Problem b = make_dense(DenseSpec{.rows = 20, .cols = 4}, 11);
  const Problem c = make_dense(DenseSpec{.rows = 20, .cols = 4}, 12);
  EXPECT_EQ(a.w_star, b.w_star);
  EXPECT_DOUBLE_EQ(a.dataset.labels()[0], b.dataset.labels()[0]);
  EXPECT_NE(a.dataset.labels()[0], c.dataset.labels()[0]);
}

TEST(SyntheticSparse, DensityApproximatelyRespected) {
  const Problem p = make_sparse(
      SparseSpec{.rows = 500, .cols = 1'000, .density = 0.01, .normalize_rows = false},
      4);
  EXPECT_FALSE(p.dataset.is_dense());
  // Exponential jitter around the expectation: allow a factor-2 band.
  EXPECT_GT(p.dataset.density(), 0.004);
  EXPECT_LT(p.dataset.density(), 0.025);
}

TEST(SyntheticSparse, NormalizedRowsHaveUnitNorm) {
  const Problem p = make_sparse(
      SparseSpec{.rows = 50, .cols = 100, .density = 0.1, .normalize_rows = true}, 5);
  for (std::size_t r = 0; r < p.dataset.rows(); ++r) {
    if (p.dataset.row(r).nnz() > 0) {
      EXPECT_NEAR(p.dataset.row(r).norm_squared(), 1.0, 1e-10);
    }
  }
}

TEST(Rcv1Like, StructuralProfile) {
  const Problem p = rcv1_like(6, /*row_scale=*/0.1);  // 400 rows for speed
  EXPECT_FALSE(p.dataset.is_dense());
  EXPECT_EQ(p.dataset.cols(), 4'000u);
  // Per-row support is a tiny fraction of the feature space, like rcv1.
  EXPECT_LT(p.dataset.density(), 0.005);
  EXPECT_TRUE(p.optimum_known());
  EXPECT_EQ(p.dataset.name(), "rcv1_like");
}

TEST(Mnist8mLike, StructuralProfile) {
  const Problem p = mnist8m_like(7, /*row_scale=*/0.05);  // 400 rows
  EXPECT_TRUE(p.dataset.is_dense());
  EXPECT_EQ(p.dataset.cols(), 784u);
  // Pixel-like: all features within [0, 1].
  for (std::size_t r = 0; r < 10; ++r) {
    const auto row = p.dataset.dense_features().row(r);
    for (double v : row) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(EpsilonLike, RowsNormalized) {
  const Problem p = epsilon_like(8, /*row_scale=*/0.05);  // 200 rows
  EXPECT_TRUE(p.dataset.is_dense());
  EXPECT_EQ(p.dataset.cols(), 800u);
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(p.dataset.row(r).norm_squared(), 1.0, 1e-10);
  }
}

TEST(Tiny, MatchesRequestedShape) {
  const Problem p = tiny(30, 5, 0.0, 9);
  EXPECT_EQ(p.dataset.rows(), 30u);
  EXPECT_EQ(p.dataset.cols(), 5u);
}

}  // namespace
}  // namespace asyncml::data::synthetic
