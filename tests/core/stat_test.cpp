#include "core/stat.hpp"

#include <gtest/gtest.h>

namespace asyncml::core {
namespace {

StatSnapshot make_snapshot(int workers) {
  StatSnapshot snap;
  snap.workers.resize(workers);
  for (int w = 0; w < workers; ++w) snap.workers[w].id = w;
  return snap;
}

TEST(StatSnapshot, AllAvailableByDefault) {
  const StatSnapshot snap = make_snapshot(4);
  EXPECT_EQ(snap.num_workers(), 4);
  EXPECT_EQ(snap.available_workers(), 4);
}

TEST(StatSnapshot, AvailabilityCountsCorrectly) {
  StatSnapshot snap = make_snapshot(4);
  snap.workers[1].available = false;
  snap.workers[3].available = false;
  EXPECT_EQ(snap.available_workers(), 2);
}

TEST(StatSnapshot, MaxStalenessIgnoresIdleWorkers) {
  StatSnapshot snap = make_snapshot(3);
  snap.workers[0].ever_dispatched = true;
  snap.workers[0].outstanding = 0;  // idle: excluded
  snap.workers[0].task_staleness = 100;
  snap.workers[1].ever_dispatched = true;
  snap.workers[1].outstanding = 1;  // busy: counted
  snap.workers[1].task_staleness = 7;
  EXPECT_EQ(snap.max_staleness(), 7u);
}

TEST(StatSnapshot, MaxStalenessZeroWhenNothingInFlight) {
  StatSnapshot snap = make_snapshot(2);
  snap.workers[0].ever_dispatched = true;
  snap.workers[0].task_staleness = 50;
  EXPECT_EQ(snap.max_staleness(), 0u);
}

TEST(StatSnapshot, MeanAvgTaskTimeSkipsIdleHistoryless) {
  StatSnapshot snap = make_snapshot(3);
  snap.workers[0].tasks_completed = 5;
  snap.workers[0].avg_task_ms = 2.0;
  snap.workers[1].tasks_completed = 5;
  snap.workers[1].avg_task_ms = 4.0;
  // worker 2 never completed a task: excluded from the mean.
  EXPECT_DOUBLE_EQ(snap.mean_avg_task_ms(), 3.0);
}

TEST(StatSnapshot, MeanAvgTaskTimeEmptyClusterZero) {
  EXPECT_DOUBLE_EQ(make_snapshot(2).mean_avg_task_ms(), 0.0);
}

TEST(StatSnapshot, ToStringMentionsVersionAndAvailability) {
  StatSnapshot snap = make_snapshot(2);
  snap.current_version = 17;
  const std::string s = snap.to_string();
  EXPECT_NE(s.find("v17"), std::string::npos);
  EXPECT_NE(s.find("2/2"), std::string::npos);
}

}  // namespace
}  // namespace asyncml::core
