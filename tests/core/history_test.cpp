#include "core/history.hpp"

#include <gtest/gtest.h>

namespace asyncml::core {
namespace {

TEST(HistoryRegistry, PublishAndResolve) {
  engine::BroadcastStore store;
  HistoryRegistry registry(&store);
  registry.publish(linalg::DenseVector{1.0, 2.0}, /*version=*/0);
  registry.publish(linalg::DenseVector{3.0, 4.0}, /*version=*/1);

  EXPECT_EQ(registry.size(), 2u);
  EXPECT_DOUBLE_EQ(registry.value_at(0)[1], 2.0);
  EXPECT_DOUBLE_EQ(registry.value_at(1)[0], 3.0);
}

TEST(HistoryRegistry, IdOfUnknownVersionIsNull) {
  engine::BroadcastStore store;
  HistoryRegistry registry(&store);
  EXPECT_FALSE(registry.id_of(7).has_value());
  registry.publish(linalg::DenseVector{1.0}, 7);
  EXPECT_TRUE(registry.id_of(7).has_value());
}

TEST(HistoryRegistry, PruneDropsOldVersionsFromStoreToo) {
  engine::BroadcastStore store;
  HistoryRegistry registry(&store);
  registry.publish(linalg::DenseVector{1.0}, 0);
  registry.publish(linalg::DenseVector{2.0}, 1);
  registry.publish(linalg::DenseVector{3.0}, 2);
  const auto old_id = registry.id_of(0);
  ASSERT_TRUE(old_id.has_value());

  registry.prune_below(2);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_FALSE(registry.id_of(0).has_value());
  EXPECT_FALSE(registry.id_of(1).has_value());
  EXPECT_TRUE(registry.id_of(2).has_value());
  EXPECT_FALSE(store.get(*old_id).has_value());
  EXPECT_EQ(registry.oldest().value(), 2u);
}

TEST(HistoryRegistry, PruneDoesNotTouchForeignBroadcasts) {
  engine::BroadcastStore store;
  const engine::BroadcastId foreign = store.put(engine::Payload::wrap<int>(99));
  HistoryRegistry registry(&store);
  registry.publish(linalg::DenseVector{1.0}, 0);
  registry.prune_below(100);
  EXPECT_TRUE(store.get(foreign).has_value());
}

TEST(HistoryBroadcast, PinnedValueAndHistoricalValue) {
  engine::BroadcastStore store;
  auto registry = std::make_shared<HistoryRegistry>(&store);
  registry->publish(linalg::DenseVector{0.0}, 0);
  registry->publish(linalg::DenseVector{1.0}, 1);
  registry->publish(linalg::DenseVector{2.0}, 2);

  const HistoryBroadcast handle(registry, /*pinned=*/2);
  EXPECT_TRUE(handle.valid());
  EXPECT_EQ(handle.version(), 2u);
  EXPECT_DOUBLE_EQ(handle.value()[0], 2.0);        // w_br.value
  EXPECT_DOUBLE_EQ(handle.value_at(0)[0], 0.0);    // w_br.value(index) history
  EXPECT_DOUBLE_EQ(handle.value_at(1)[0], 1.0);
}

TEST(HistoryBroadcast, DefaultHandleInvalid) {
  HistoryBroadcast handle;
  EXPECT_FALSE(handle.valid());
}

TEST(HistoryBroadcast, WorkerSideResolutionFetchesEachChainLinkOnce) {
  engine::BroadcastStore store;
  engine::NetworkModel net;
  net.time_scale = 0.0;
  engine::ClusterMetrics metrics(1);
  engine::BroadcastCache cache(&store, &net, &metrics);

  auto registry = std::make_shared<HistoryRegistry>(&store);
  registry->publish(linalg::DenseVector(64), 0);  // base: 64 x 8 bytes
  registry->publish(linalg::DenseVector(64), 1);  // unchanged: empty delta (8B)
  const HistoryBroadcast handle(registry, 1);

  engine::WorkerEnv env{0, &cache, &metrics};
  engine::set_current_worker_env(&env);
  (void)handle.value();       // miss: fetches base v0 + delta v1
  (void)handle.value();       // materialized hit
  (void)handle.value_at(0);   // hit — v0's base was materialized on the way
  (void)handle.value_at(0);   // hit
  (void)handle.value_at(1);   // hit
  engine::set_current_worker_env(nullptr);

  EXPECT_EQ(metrics.broadcast_fetches.load(), 2u);
  EXPECT_EQ(metrics.broadcast_hits.load(), 4u);
  // One dense snapshot plus one empty-delta header crossed the wire — the
  // delta store's saving on top of the ASYNCbroadcast version cache.
  EXPECT_EQ(metrics.broadcast_bytes.load(), 64u * 8u + 8u);
  EXPECT_EQ(metrics.broadcast_base_bytes.load(), 64u * 8u);
  EXPECT_EQ(metrics.broadcast_delta_bytes.load(), 8u);
}

TEST(SampleVersionTable, GetSetAndMin) {
  SampleVersionTable table(4, 10);
  EXPECT_EQ(table.size(), 4u);
  EXPECT_EQ(table.get(2), 10u);
  table.set(2, 3);
  table.set(0, 7);
  EXPECT_EQ(table.get(2), 3u);
  EXPECT_EQ(table.min_version(), 3u);
}

TEST(SampleVersionTable, EmptyTableMinZero) {
  SampleVersionTable table(0);
  EXPECT_EQ(table.min_version(), 0u);
}

}  // namespace
}  // namespace asyncml::core
