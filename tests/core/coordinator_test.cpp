#include "core/coordinator.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace asyncml::core {
namespace {

using namespace std::chrono_literals;

engine::Cluster::Config quiet_config(int workers) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 1;
  config.network.time_scale = 0.0;
  return config;
}

engine::TaskSpec int_task(engine::Cluster& cluster, engine::PartitionId p,
                          engine::Version version, int value,
                          double service_ms = 0.0) {
  engine::TaskSpec spec;
  spec.id = cluster.next_task_id();
  spec.partition = p;
  spec.model_version = version;
  spec.service_floor_ms = service_ms;
  spec.fn = std::make_shared<const engine::TaskFn>(
      [value](engine::TaskContext&) -> support::StatusOr<engine::Payload> {
        return engine::Payload::wrap<int>(value);
      });
  return spec;
}

engine::TaskSpec failing_task(engine::Cluster& cluster, engine::PartitionId p) {
  engine::TaskSpec spec;
  spec.id = cluster.next_task_id();
  spec.partition = p;
  spec.fn = std::make_shared<const engine::TaskFn>(
      [](engine::TaskContext&) -> support::StatusOr<engine::Payload> {
        return support::Status(support::StatusCode::kInternal, "bad");
      });
  return spec;
}

TEST(Coordinator, CollectsAndTagsResults) {
  engine::Cluster cluster(quiet_config(2));
  Coordinator coord(cluster);
  coord.start();

  coord.on_dispatch(0, 1, /*version=*/0);
  cluster.submit(0, int_task(cluster, 0, /*version=*/0, 42));

  auto tagged = coord.collect_for(1000ms);
  ASSERT_TRUE(tagged.has_value());
  EXPECT_EQ(tagged->result.payload.get<int>(), 42);
  EXPECT_EQ(tagged->staleness, 0u);
  EXPECT_EQ(tagged->worker.id, 0);
  coord.stop();
}

TEST(Coordinator, StalenessIsVersionGap) {
  engine::Cluster cluster(quiet_config(1));
  Coordinator coord(cluster);
  coord.start();

  // Task computed against version 0; the server advances to 3 before it is
  // collected -> staleness 3.
  coord.on_dispatch(0, 1, 0);
  coord.advance_version();
  coord.advance_version();
  coord.advance_version();
  cluster.submit(0, int_task(cluster, 0, /*version=*/0, 1));

  auto tagged = coord.collect_for(1000ms);
  ASSERT_TRUE(tagged.has_value());
  EXPECT_EQ(tagged->staleness, 3u);
  coord.stop();
}

TEST(Coordinator, StatTracksAvailability) {
  engine::Cluster cluster(quiet_config(2));
  Coordinator coord(cluster);
  coord.start();

  EXPECT_EQ(coord.stat().available_workers(), 2);
  coord.on_dispatch(1, 2, 0);
  const StatSnapshot busy = coord.stat();
  EXPECT_EQ(busy.available_workers(), 1);
  EXPECT_FALSE(busy.workers[1].available);
  EXPECT_EQ(busy.workers[1].outstanding, 2);

  cluster.submit(1, int_task(cluster, 0, 0, 1));
  cluster.submit(1, int_task(cluster, 1, 0, 2));
  (void)coord.collect_for(1000ms);
  (void)coord.collect_for(1000ms);
  EXPECT_EQ(coord.stat().available_workers(), 2);
  coord.stop();
}

TEST(Coordinator, StatTracksTaskTimes) {
  engine::Cluster cluster(quiet_config(1));
  Coordinator coord(cluster);
  coord.start();

  coord.on_dispatch(0, 1, 0);
  cluster.submit(0, int_task(cluster, 0, 0, 1, /*service_ms=*/5.0));
  (void)coord.collect_for(1000ms);

  const StatSnapshot snap = coord.stat();
  EXPECT_EQ(snap.workers[0].tasks_completed, 1u);
  EXPECT_GE(snap.workers[0].avg_task_ms, 4.5);
  EXPECT_GE(snap.workers[0].mean_task_ms, 4.5);
  coord.stop();
}

TEST(Coordinator, SnapshotStalenessReflectsCurrentVersion) {
  engine::Cluster cluster(quiet_config(1));
  Coordinator coord(cluster);
  coord.start();

  coord.on_dispatch(0, 1, /*version=*/0);
  const StatSnapshot before = coord.stat();
  EXPECT_EQ(before.workers[0].task_staleness, 0u);

  coord.advance_version();
  coord.advance_version();
  const StatSnapshot after = coord.stat();
  EXPECT_EQ(after.workers[0].task_staleness, 2u);
  EXPECT_EQ(after.max_staleness(), 2u);  // worker still busy

  cluster.submit(0, int_task(cluster, 0, 0, 1));
  (void)coord.collect_for(1000ms);
  EXPECT_EQ(coord.stat().max_staleness(), 0u);  // nothing in flight
  coord.stop();
}

TEST(Coordinator, FailuresRoutedSeparately) {
  engine::Cluster cluster(quiet_config(1));
  Coordinator coord(cluster);
  coord.start();

  coord.on_dispatch(0, 1, 0);
  cluster.submit(0, failing_task(cluster, 0));

  // The failure must not appear as a result...
  EXPECT_FALSE(coord.collect_for(100ms).has_value());
  // ...but on the failure queue, with the worker marked available again.
  auto failed = coord.try_collect_failure();
  ASSERT_TRUE(failed.has_value());
  EXPECT_FALSE(failed->ok());
  EXPECT_EQ(coord.stat().available_workers(), 1);
  EXPECT_EQ(coord.stat().workers[0].tasks_failed, 1u);
  coord.stop();
}

TEST(Coordinator, FifoOrderOfResults) {
  engine::Cluster cluster(quiet_config(1));
  Coordinator coord(cluster);
  coord.start();

  coord.on_dispatch(0, 3, 0);
  for (int i = 0; i < 3; ++i) cluster.submit(0, int_task(cluster, i, 0, i));
  for (int i = 0; i < 3; ++i) {
    auto tagged = coord.collect_for(1000ms);
    ASSERT_TRUE(tagged.has_value());
    EXPECT_EQ(tagged->result.payload.get<int>(), i);  // single worker: FIFO
  }
  coord.stop();
}

TEST(Coordinator, HasNextNonBlocking) {
  engine::Cluster cluster(quiet_config(1));
  Coordinator coord(cluster);
  coord.start();
  EXPECT_FALSE(coord.has_next());
  coord.on_dispatch(0, 1, 0);
  cluster.submit(0, int_task(cluster, 0, 0, 5));
  // Wait for the drain thread to pick it up.
  auto tagged = coord.collect_for(1000ms);
  EXPECT_TRUE(tagged.has_value());
  EXPECT_FALSE(coord.has_next());
  coord.stop();
}

TEST(Coordinator, TotalOutstandingAggregates) {
  engine::Cluster cluster(quiet_config(3));
  Coordinator coord(cluster);
  coord.start();
  EXPECT_EQ(coord.total_outstanding(), 0);
  coord.on_dispatch(0, 2, 0);
  coord.on_dispatch(2, 1, 0);
  EXPECT_EQ(coord.total_outstanding(), 3);
  coord.stop();
}

TEST(Coordinator, MinInflightVersionCoversOldQueuedTasks) {
  // A 2-core worker can hold an old queued task while newer ones are
  // dispatched past it: the history-GC bound must report the *minimum*
  // outstanding version, not the last dispatched one.
  engine::Cluster cluster(quiet_config(1));
  Coordinator coord(cluster);
  coord.start();

  coord.on_dispatch(0, 1, /*version=*/0);  // old task, still in flight
  for (int i = 0; i < 5; ++i) coord.advance_version();
  coord.on_dispatch(0, 1, /*version=*/5);  // newer task on the other core

  StatSnapshot snap = coord.stat();
  EXPECT_EQ(snap.workers[0].last_dispatch_version, 5u);
  EXPECT_EQ(snap.workers[0].min_outstanding_version, 0u);
  EXPECT_EQ(snap.min_inflight_version(), 0u);

  // The newer task finishing first must not unpin the old one.
  cluster.submit(0, int_task(cluster, 1, /*version=*/5, 1));
  ASSERT_TRUE(coord.collect_for(1000ms).has_value());
  EXPECT_EQ(coord.stat().min_inflight_version(), 0u);

  // Once the old task's result lands, the bound catches up to the present.
  cluster.submit(0, int_task(cluster, 0, /*version=*/0, 2));
  ASSERT_TRUE(coord.collect_for(1000ms).has_value());
  EXPECT_EQ(coord.stat().min_inflight_version(), 5u);
  coord.stop();
}

TEST(Coordinator, FirstResultWinsDropsReplicaDuplicates) {
  // Two bit-identical copies of one task identity (partition, seq) in
  // flight: exactly one result is delivered, the other is dropped after its
  // STAT bookkeeping, and nothing stays outstanding.
  engine::Cluster cluster(quiet_config(2));
  Coordinator coord(cluster);
  coord.start();

  engine::TaskSpec original = int_task(cluster, /*p=*/3, /*version=*/0, 42);
  original.seq = 5;
  engine::TaskSpec replica = int_task(cluster, /*p=*/3, /*version=*/0, 42);
  replica.seq = 5;

  coord.on_task_dispatch(0, original);
  ASSERT_TRUE(coord.try_register_replica(1, replica));
  cluster.submit(0, std::move(original));
  cluster.submit(1, std::move(replica));

  auto first = coord.collect_for(1000ms);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->result.payload.get<int>(), 42);
  // The loser is dropped, never queued.
  EXPECT_FALSE(coord.collect_for(200ms).has_value());
  EXPECT_EQ(coord.duplicates_dropped(), 1u);
  EXPECT_EQ(coord.total_outstanding(), 0);
  coord.stop();
}

TEST(Coordinator, FailureWithLiveReplicaIsNotRetried) {
  // Original fails while its bit-identical replica is still in flight: the
  // replica covers the task, so the failure must not reach the retry queue
  // (a retry would be a wasted third dispatch). The replica's OK result is
  // delivered normally.
  engine::Cluster cluster(quiet_config(2));
  Coordinator coord(cluster);
  coord.start();

  engine::TaskSpec original = failing_task(cluster, /*p=*/2);
  original.seq = 4;
  engine::TaskSpec replica = int_task(cluster, /*p=*/2, /*version=*/0, 11);
  replica.seq = 4;

  coord.on_task_dispatch(0, original);
  ASSERT_TRUE(coord.try_register_replica(1, replica));
  cluster.submit(0, std::move(original));
  cluster.submit(1, std::move(replica));

  auto delivered = coord.collect_for(1000ms);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->result.payload.get<int>(), 11);
  // The losing copy may still be in the drain pipeline; wait for its
  // bookkeeping before asserting on it.
  for (int i = 0; i < 1000 && coord.total_outstanding() > 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_FALSE(coord.try_collect_failure().has_value());
  EXPECT_EQ(coord.duplicates_dropped(), 1u);
  EXPECT_EQ(coord.total_outstanding(), 0);
  coord.stop();
}

TEST(Coordinator, ReplicaRegistrationFailsOnceResultAccounted) {
  // A replica may only be registered while the original is still
  // unaccounted: once its result has been drained (even if not yet
  // collected), registering a replica would deliver the identity twice.
  engine::Cluster cluster(quiet_config(2));
  Coordinator coord(cluster);
  coord.start();

  engine::TaskSpec spec = int_task(cluster, /*p=*/1, /*version=*/0, 7);
  spec.seq = 9;
  engine::TaskSpec replica = spec;
  coord.on_task_dispatch(0, spec);
  cluster.submit(0, std::move(spec));
  ASSERT_TRUE(coord.collect_for(1000ms).has_value());

  EXPECT_FALSE(coord.try_register_replica(1, replica));
  EXPECT_EQ(coord.total_outstanding(), 0);
  coord.stop();
}

TEST(Coordinator, DispatchAbortUnwindsRegistration) {
  // Registration happens before submit; if the transport then rejects the
  // submit (fault injection, shutdown), the abort must unwind everything the
  // registration touched — outstanding, availability, and the min-inflight
  // GC bound — or the phantom task pins them all forever.
  engine::Cluster cluster(quiet_config(1));
  Coordinator coord(cluster);
  coord.start();

  engine::TaskSpec spec = int_task(cluster, /*p=*/0, /*version=*/0, 3);
  spec.seq = 2;
  coord.on_task_dispatch(0, spec);
  EXPECT_EQ(coord.total_outstanding(), 1);
  EXPECT_EQ(coord.stat().available_workers(), 0);

  coord.on_dispatch_aborted(0, spec);
  EXPECT_EQ(coord.total_outstanding(), 0);
  EXPECT_EQ(coord.stat().available_workers(), 1);
  EXPECT_EQ(coord.stat().min_inflight_version(), 0u);  // back to the present
  coord.stop();
}

TEST(Coordinator, RetryAfterAbortedDispatchStillDelivers) {
  // The resubmit reject path: register on worker 0, abort, register the SAME
  // (partition, seq) identity on worker 1. The abort must not poison the
  // identity (e.g. via the accounted-seq duplicate floor): the retry's
  // genuine result still delivers exactly once.
  engine::Cluster cluster(quiet_config(2));
  Coordinator coord(cluster);
  coord.start();

  engine::TaskSpec spec = int_task(cluster, /*p=*/0, /*version=*/0, 3);
  spec.seq = 6;
  coord.on_task_dispatch(0, spec);
  coord.on_dispatch_aborted(0, spec);

  engine::TaskSpec retry = int_task(cluster, /*p=*/0, /*version=*/0, 8);
  retry.seq = 6;
  coord.on_task_dispatch(1, retry);
  cluster.submit(1, std::move(retry));

  auto delivered = coord.collect_for(1000ms);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(delivered->result.payload.get<int>(), 8);
  EXPECT_EQ(delivered->worker.id, 1);
  EXPECT_EQ(coord.total_outstanding(), 0);
  coord.stop();
}

TEST(Coordinator, StopIsIdempotent) {
  engine::Cluster cluster(quiet_config(1));
  Coordinator coord(cluster);
  coord.start();
  coord.stop();
  coord.stop();
  EXPECT_TRUE(coord.stopped());
}

}  // namespace
}  // namespace asyncml::core
