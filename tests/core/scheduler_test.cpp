// Scheduler invariants under dynamic placement (docs/SCHEDULING.md):
// ownership stays a partition of the partition set across steals, capacity
// is conserved when stealing composes with a barrier, input validation
// fails loudly, and a healthy cluster never reshuffles ownership.

#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>

#include "core/barrier.hpp"
#include "core/coordinator.hpp"
#include "straggler/controlled_delay.hpp"

namespace asyncml::core {
namespace {

using namespace std::chrono_literals;

engine::Cluster::Config steal_config(int workers, int cores,
                                     std::shared_ptr<const engine::DelayModel> delay) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = cores;
  config.network.time_scale = 0.0;
  config.delay = std::move(delay);
  return config;
}

AsyncScheduler::TaskFactory int_factory(engine::Cluster& cluster,
                                        double service_ms = 3.0) {
  return [&cluster, service_ms](engine::PartitionId p) {
    engine::TaskSpec spec;
    spec.partition = p;
    spec.model_version = 0;
    spec.service_floor_ms = service_ms;
    spec.fn = std::make_shared<const engine::TaskFn>(
        [](engine::TaskContext&) -> support::StatusOr<engine::Payload> {
          return engine::Payload::wrap<int>(7);
        });
    return spec;
  };
}

/// Every partition must be owned by exactly one worker, always.
void expect_ownership_is_partition(const AsyncScheduler& scheduler, int workers,
                                   int partitions) {
  std::vector<int> owners(static_cast<std::size_t>(partitions), 0);
  for (int w = 0; w < workers; ++w) {
    for (const engine::PartitionId p : scheduler.partitions_of(w)) {
      ASSERT_GE(p, 0);
      ASSERT_LT(p, partitions);
      owners[static_cast<std::size_t>(p)] += 1;
    }
  }
  for (int p = 0; p < partitions; ++p) {
    EXPECT_EQ(owners[static_cast<std::size_t>(p)], 1) << "partition " << p;
  }
}

TEST(Scheduler, PartitionsOfValidatesWorkerId) {
  engine::Cluster cluster(steal_config(2, 1, nullptr));
  Coordinator coordinator(cluster);
  AsyncScheduler scheduler(cluster, coordinator);
  scheduler.set_num_partitions(4);

  EXPECT_NO_THROW((void)scheduler.partitions_of(1));
  EXPECT_THROW((void)scheduler.partitions_of(2), std::out_of_range);
  EXPECT_THROW((void)scheduler.partitions_of(-1), std::out_of_range);
  try {
    (void)scheduler.partitions_of(9);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("worker 9"), std::string::npos) << e.what();
  }
}

TEST(Scheduler, StealingComposesWithBarrierAndConservesInvariants) {
  // One worker 4x slower; the median-anchored filter shuns it once its EWMA
  // exists, its partition idles, and a healthy worker with free capacity and
  // no idle owned partition claims it (it may lose its last partition only
  // because the barrier already shut it out). Throughout: ownership stays a
  // partition of the partition set and no worker exceeds its core capacity.
  constexpr int kWorkers = 4;
  constexpr int kCores = 2;
  constexpr int kPartitions = 4;
  engine::Cluster cluster(steal_config(
      kWorkers, kCores, std::make_shared<straggler::ControlledDelay>(0, 3.0)));
  Coordinator coordinator(cluster);
  coordinator.start();
  AsyncScheduler scheduler(cluster, coordinator);
  scheduler.set_num_partitions(kPartitions);
  SchedulerPolicy policy;
  policy.steal_mode = StealMode::kLocality;
  scheduler.set_policy(policy);

  const BarrierControl barrier = barriers::median_completion_within(2.0);
  const AsyncScheduler::TaskFactory factory = int_factory(cluster, /*service_ms=*/4.0);

  int collected = 0;
  while (collected < 40) {
    scheduler.dispatch_eligible(barrier, factory);
    expect_ownership_is_partition(scheduler, kWorkers, kPartitions);
    for (const WorkerStat& row : coordinator.stat().workers) {
      EXPECT_LE(row.outstanding, kCores) << "worker " << row.id;
    }
    auto result = coordinator.collect_for(2000ms);
    ASSERT_TRUE(result.has_value());
    scheduler.on_result_collected(result->result.partition);
    ++collected;
  }

  EXPECT_GE(scheduler.partitions_stolen(), 1u);
  // The straggler was stripped: every partition now lives on a healthy worker.
  EXPECT_TRUE(scheduler.partitions_of(0).empty());
  expect_ownership_is_partition(scheduler, kWorkers, kPartitions);

  // Drain what is still in flight: afterwards the scheduler's busy count and
  // the coordinator's outstanding count must both reach exactly zero — no
  // task lost, none double-counted.
  while (coordinator.total_outstanding() > 0 || coordinator.has_next()) {
    auto tail = coordinator.collect_for(2000ms);
    ASSERT_TRUE(tail.has_value());
    scheduler.on_result_collected(tail->result.partition);
  }
  EXPECT_EQ(scheduler.busy_partitions(), 0);
  EXPECT_EQ(coordinator.total_outstanding(), 0);
  coordinator.stop();
}

TEST(Scheduler, NoStealsOnHealthyCluster) {
  // Homogeneous workers, ASP: the hysteresis margin must keep EWMA jitter
  // from reshuffling ownership — placement stays the fixed p % W forever.
  constexpr int kWorkers = 4;
  constexpr int kPartitions = 8;
  engine::Cluster cluster(steal_config(kWorkers, 2, nullptr));
  Coordinator coordinator(cluster);
  coordinator.start();
  AsyncScheduler scheduler(cluster, coordinator);
  scheduler.set_num_partitions(kPartitions);
  SchedulerPolicy policy;
  policy.steal_mode = StealMode::kLocality;
  scheduler.set_policy(policy);

  const BarrierControl barrier = barriers::asp();
  const AsyncScheduler::TaskFactory factory = int_factory(cluster, /*service_ms=*/1.5);

  std::vector<std::vector<engine::PartitionId>> initial;
  for (int w = 0; w < kWorkers; ++w) initial.push_back(scheduler.partitions_of(w));

  int collected = 0;
  while (collected < 60) {
    scheduler.dispatch_eligible(barrier, factory);
    auto result = coordinator.collect_for(2000ms);
    ASSERT_TRUE(result.has_value());
    scheduler.on_result_collected(result->result.partition);
    ++collected;
  }

  EXPECT_EQ(scheduler.partitions_stolen(), 0u);
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(scheduler.partitions_of(w), initial[static_cast<std::size_t>(w)]);
  }
  coordinator.stop();
}

}  // namespace
}  // namespace asyncml::core
