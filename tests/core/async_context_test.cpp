#include "core/async_context.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "straggler/controlled_delay.hpp"

namespace asyncml::core {
namespace {

engine::Cluster::Config quiet_config(int workers, int cores = 1) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = cores;
  config.network.time_scale = 0.0;
  return config;
}

TEST(AsyncContext, VersionStartsAtZeroAndAdvances) {
  engine::Cluster cluster(quiet_config(2));
  AsyncContext ac(cluster, /*num_partitions=*/2);
  EXPECT_EQ(ac.current_version(), 0u);
  ac.advance_version();
  EXPECT_EQ(ac.current_version(), 1u);
}

TEST(AsyncContext, AsyncBroadcastPublishesAtCurrentVersion) {
  engine::Cluster cluster(quiet_config(2));
  AsyncContext ac(cluster, 2);
  const HistoryBroadcast h0 = ac.async_broadcast(linalg::DenseVector{1.0});
  EXPECT_EQ(h0.version(), 0u);
  ac.advance_version();
  const HistoryBroadcast h1 = ac.async_broadcast(linalg::DenseVector{2.0});
  EXPECT_EQ(h1.version(), 1u);
  EXPECT_DOUBLE_EQ(h1.value_at(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(h1.value()[0], 2.0);
}

TEST(AsyncContext, AsyncAggregateRespectsWorkerCapacity) {
  // 3 single-core workers, 2 partitions each: the first dispatch fills every
  // worker to capacity (one task each); re-dispatching after each collect
  // cycles through the remaining partitions (round-robin, no starvation).
  engine::Cluster cluster(quiet_config(3, /*cores=*/1));
  AsyncContext ac(cluster, /*num_partitions=*/6);
  const auto rdd = engine::make_vector_rdd(std::vector<int>(60, 1), 6);
  const auto seq = [](long acc, const int& x) { return acc + x; };

  int dispatched = ac.async_aggregate(rdd, 0L, seq, barriers::asp(), SubmitOptions{});
  EXPECT_EQ(dispatched, 3);  // capacity: one in-flight task per core

  // Keep collecting (and re-dispatching) until every partition has run at
  // least once; the round-robin cursor guarantees this happens within a few
  // cycles even when one worker makes progress faster than the others.
  std::set<engine::PartitionId> seen;
  int collects = 0;
  while (seen.size() < 6u && collects < 60) {
    auto collected = ac.collect();
    ASSERT_TRUE(collected.has_value());
    EXPECT_EQ(collected->result.payload.get<long>(), 10L);  // 10 elements/partition
    seen.insert(collected->result.partition);
    ++collects;
    dispatched += ac.async_aggregate(rdd, 0L, seq, barriers::asp(), SubmitOptions{});
  }
  EXPECT_EQ(seen.size(), 6u);  // no partition starves
  EXPECT_GE(dispatched, 6);
  // Drain whatever the trailing dispatches put in flight.
  while (ac.coordinator().total_outstanding() > 0 || ac.has_next()) {
    (void)ac.collect();
  }
}

TEST(AsyncContext, BusyWorkersNotRedispatched) {
  engine::Cluster cluster(quiet_config(2));
  AsyncContext ac(cluster, 2);
  const auto rdd = engine::make_vector_rdd(std::vector<int>(10, 1), 2);
  SubmitOptions slow;
  slow.service_floor_ms = 30.0;

  const auto seq = [](long acc, const int& x) { return acc + x; };
  EXPECT_EQ(ac.async_aggregate(rdd, 0L, seq, barriers::asp(), slow), 2);
  // Immediately try again: both workers are busy, nothing new dispatched.
  EXPECT_EQ(ac.async_aggregate(rdd, 0L, seq, barriers::asp(), slow), 0);
  // Drain.
  (void)ac.collect();
  (void)ac.collect();
}

TEST(AsyncContext, BspGateBlocksUntilRoundCompletes) {
  // Worker 1 is a 6x straggler so that when worker 0's result arrives the
  // round is guaranteed to still be incomplete — no race on the assertion.
  engine::Cluster::Config config = quiet_config(2);
  config.delay = std::make_shared<straggler::ControlledDelay>(1, 5.0);
  engine::Cluster cluster(config);
  AsyncContext ac(cluster, 2);
  const auto rdd = engine::make_vector_rdd(std::vector<int>(10, 1), 2);
  const auto seq = [](long acc, const int& x) { return acc + x; };
  SubmitOptions opts;
  opts.service_floor_ms = 10.0;

  EXPECT_EQ(ac.async_aggregate(rdd, 0L, seq, barriers::bsp(), opts), 2);
  // Fast worker's result back: the straggler is still busy, BSP stays closed.
  ASSERT_TRUE(ac.collect().has_value());
  EXPECT_EQ(ac.async_aggregate(rdd, 0L, seq, barriers::bsp(), opts), 0);
  ASSERT_TRUE(ac.collect().has_value());
  // Round complete: gate reopens.
  EXPECT_EQ(ac.async_aggregate(rdd, 0L, seq, barriers::bsp(), opts), 2);
  (void)ac.collect();
  (void)ac.collect();
}

TEST(AsyncContext, SyncRoundReturnsOneResultPerPartition) {
  engine::Cluster cluster(quiet_config(3));
  AsyncContext ac(cluster, 5);
  const auto rdd = engine::make_vector_rdd(std::vector<int>(50, 2), 5);
  const auto results = ac.sync_round(
      rdd, 0L, [](long acc, const int& x) { return acc + x; }, SubmitOptions{});
  ASSERT_EQ(results.size(), 5u);
  long total = 0;
  std::set<engine::PartitionId> parts;
  for (const TaggedResult& r : results) {
    total += r.result.payload.get<long>();
    parts.insert(r.result.partition);
  }
  EXPECT_EQ(total, 100L);
  EXPECT_EQ(parts.size(), 5u);
}

TEST(AsyncContext, CollectReturnsWorkerAttributes) {
  engine::Cluster cluster(quiet_config(1));
  AsyncContext ac(cluster, 1);
  ac.advance_version();  // current version 1; task dispatched at v1
  const auto rdd = engine::make_vector_rdd(std::vector<int>{1}, 1);
  ac.async_aggregate(rdd, 0L, [](long acc, const int& x) { return acc + x; },
                     barriers::asp(), SubmitOptions{});
  auto collected = ac.collect();
  ASSERT_TRUE(collected.has_value());
  EXPECT_EQ(collected->staleness, 0u);
  EXPECT_EQ(collected->worker.id, 0);
  EXPECT_EQ(collected->worker.tasks_completed, 1u);
  EXPECT_EQ(collected->result.model_version, 1u);
}

TEST(AsyncContext, StalenessTagReflectsUpdatesDuringFlight) {
  engine::Cluster cluster(quiet_config(1));
  AsyncContext ac(cluster, 1);
  const auto rdd = engine::make_vector_rdd(std::vector<int>{1}, 1);
  SubmitOptions slow;
  slow.service_floor_ms = 20.0;
  ac.async_aggregate(rdd, 0L, [](long acc, const int& x) { return acc + x; },
                     barriers::asp(), slow);
  // Model advances twice while the task is in flight.
  ac.advance_version();
  ac.advance_version();
  auto collected = ac.collect();
  ASSERT_TRUE(collected.has_value());
  EXPECT_EQ(collected->staleness, 2u);
}

TEST(AsyncContext, FailedTasksRetriedThroughFactory) {
  engine::Cluster::Config config = quiet_config(2);
  config.faults.fail_task({.worker = 0}, /*times=*/1);  // first task on worker 0 fails
  engine::Cluster cluster(config);
  AsyncContext ac(cluster, 2);
  const auto rdd = engine::make_vector_rdd(std::vector<int>{1, 2}, 2);
  const auto results = ac.sync_round(
      rdd, 0L, [](long acc, const int& x) { return acc + x; }, SubmitOptions{});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GE(ac.retries(), 1u);
}

TEST(AsyncContext, HandleForReturnsPinnedVersion) {
  engine::Cluster cluster(quiet_config(1));
  AsyncContext ac(cluster, 1);
  (void)ac.async_broadcast(linalg::DenseVector{7.0});
  const HistoryBroadcast handle = ac.handle_for(0);
  EXPECT_DOUBLE_EQ(handle.value()[0], 7.0);
}

TEST(AsyncContext, GcHistoryCompactsBelowStatMinimum) {
  engine::Cluster cluster(quiet_config(2));
  AsyncContext ac(cluster, 2);
  for (engine::Version v = 0; v < 5; ++v) {
    (void)ac.async_broadcast(linalg::DenseVector{static_cast<double>(v)});
    ac.advance_version();
  }
  (void)ac.async_broadcast(linalg::DenseVector{5.0});
  ASSERT_EQ(ac.history().size(), 6u);

  // Nothing in flight: the STAT minimum is the current version, so every
  // older version is provably unreachable and gets compacted.
  const engine::Version bound = ac.gc_history();
  EXPECT_EQ(bound, 5u);
  EXPECT_EQ(ac.history().size(), 1u);
  EXPECT_EQ(ac.history().oldest().value(), 5u);
  EXPECT_DOUBLE_EQ(ac.handle_for(5).value()[0], 5.0);
}

TEST(AsyncContext, GcHistoryHonorsExtraFloor) {
  engine::Cluster cluster(quiet_config(2));
  AsyncContext ac(cluster, 2);
  for (engine::Version v = 0; v < 4; ++v) {
    (void)ac.async_broadcast(linalg::DenseVector{static_cast<double>(v)});
    ac.advance_version();
  }
  // A history-reading solver (SAGA's sample table) still references v2.
  const engine::Version bound = ac.gc_history(/*extra_floor=*/2);
  EXPECT_EQ(bound, 2u);
  EXPECT_EQ(ac.history().oldest().value(), 2u);
  EXPECT_DOUBLE_EQ(ac.handle_for(2).value()[0], 2.0);
  EXPECT_DOUBLE_EQ(ac.handle_for(3).value()[0], 3.0);
}

TEST(AsyncContext, StatVisibleThroughContext) {
  engine::Cluster cluster(quiet_config(4));
  AsyncContext ac(cluster, 4);
  EXPECT_EQ(ac.stat().num_workers(), 4);
  EXPECT_EQ(ac.stat().available_workers(), 4);
}

}  // namespace
}  // namespace asyncml::core
