// The paper-parity API: Table-1-named free functions must behave exactly as
// the AsyncContext methods they forward to; this test transliterates the
// paper's Algorithm 2 skeleton using only those names.

#include "core/api.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "optim/loss.hpp"
#include "optim/objective.hpp"
#include "optim/payloads.hpp"
#include "optim/workload.hpp"

namespace asyncml::core {
namespace {

engine::Cluster::Config quiet_config(int workers) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 2;
  config.network.time_scale = 0.0;
  return config;
}

TEST(PaperApi, StatAndHasNext) {
  engine::Cluster cluster(quiet_config(3));
  AsyncContext ac(cluster, 3);
  EXPECT_EQ(STAT(ac).num_workers(), 3);
  EXPECT_FALSE(ASYNChasNext(ac));
}

TEST(PaperApi, ReduceCollectRoundTrip) {
  engine::Cluster cluster(quiet_config(2));
  AsyncContext ac(cluster, 4);
  const auto rdd = engine::make_vector_rdd(std::vector<long>(40, 1L), 4);

  int dispatched =
      ASYNCreduce(ac, rdd, 0L, [](long a, const long& b) { return a + b; },
                  barriers::asp());
  long total = 0;
  int collected = 0;
  while (collected < 4) {
    auto payload = ASYNCcollect(ac);
    ASSERT_TRUE(payload.has_value());
    total += payload->get<long>();
    ++collected;
    dispatched += ASYNCreduce(ac, rdd, 0L, [](long a, const long& b) { return a + b; },
                              barriers::asp());
  }
  EXPECT_GE(dispatched, 4);
  EXPECT_GT(total, 0);
  // Drain leftovers from the trailing dispatches.
  while (ac.coordinator().total_outstanding() > 0 || ac.has_next()) {
    (void)ac.collect();
  }
}

TEST(PaperApi, CollectAllCarriesAttributes) {
  engine::Cluster cluster(quiet_config(1));
  AsyncContext ac(cluster, 1);
  const auto rdd = engine::make_vector_rdd(std::vector<int>{5}, 1);
  ASYNCaggregate(ac, rdd, 0L, [](long a, const int& b) { return a + b; },
                 barriers::asp());
  auto tagged = ASYNCcollectAll(ac);
  ASSERT_TRUE(tagged.has_value());
  EXPECT_EQ(tagged->worker.id, 0);
  EXPECT_EQ(tagged->staleness, 0u);
  EXPECT_EQ(tagged->result.payload.get<long>(), 5L);
}

TEST(PaperApi, BroadcastHistoryByName) {
  engine::Cluster cluster(quiet_config(1));
  AsyncContext ac(cluster, 1);
  const HistoryBroadcast w0 = ASYNCbroadcast(ac, linalg::DenseVector{1.0});
  ac.advance_version();
  const HistoryBroadcast w1 = ASYNCbroadcast(ac, linalg::DenseVector{2.0});
  EXPECT_DOUBLE_EQ(w1.value()[0], 2.0);
  EXPECT_DOUBLE_EQ(w1.value_at(w0.version())[0], 1.0);
}

TEST(PaperApi, Algorithm2Transliteration) {
  // Algorithm 2 of the paper, written with Table-1 names only. Converges on
  // a tiny least-squares problem.
  const auto problem = data::synthetic::tiny(120, 6, 0.0, 3);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  const auto workload =
      optim::Workload::create(dataset, 4, optim::make_least_squares());
  const std::size_t dim = workload.dim();

  engine::Cluster cluster(quiet_config(2));
  AsyncContext ac(cluster, 4);                               // AC = new ASYNCcontext
  linalg::DenseVector w(dim);

  const auto barrier = barriers::asp();                      // f: STAT.foreach(true)
  const auto sampled = workload.points.sample(0.4);          // .sample(b)
  const auto loss = workload.loss;

  std::uint64_t updates = 0;
  core::HistoryBroadcast w_br = ASYNCbroadcast(ac, w);       // w_br = broadcast(w)
  auto grad_map = [loss, &dim](core::HistoryBroadcast handle) {
    return [loss, handle, dim](optim::GradCount acc, const data::LabeledPoint& p) {
      acc.grad.ensure(linalg::GradVectorConfig(dim));
      const auto& model = handle.value();
      p.features.axpy_into(loss->derivative(p.features.dot(model.span()), p.label),
                           acc.grad);
      acc.count += 1;
      return acc;
    };
  };
  ASYNCaggregate(ac, sampled, optim::GradCount{}, grad_map(w_br), barrier);

  while (updates < 200) {
    auto collected = ASYNCcollectAll(ac);                    // AC.ASYNCcollect()
    ASSERT_TRUE(collected.has_value());
    const auto& g = collected->result.payload.get<optim::GradCount>();
    if (g.count > 0) {
      g.grad.scale_into(-0.02 / static_cast<double>(g.count), w.span());
    }
    ++updates;
    ac.advance_version();
    w_br = ASYNCbroadcast(ac, w);
    ASYNCaggregate(ac, sampled, optim::GradCount{}, grad_map(w_br), barrier);
  }

  const double err = optim::full_objective(*dataset, *loss, w);
  EXPECT_LT(err, 0.5);
  while (ac.coordinator().total_outstanding() > 0 || ac.has_next()) {
    (void)ac.collect();
  }
}

}  // namespace
}  // namespace asyncml::core
