#include "core/barrier.hpp"

#include <gtest/gtest.h>

namespace asyncml::core {
namespace {

StatSnapshot snapshot_with(int workers, int busy, std::uint64_t busy_staleness = 0) {
  StatSnapshot snap;
  snap.workers.resize(workers);
  for (int w = 0; w < workers; ++w) {
    snap.workers[w].id = w;
    if (w < busy) {
      snap.workers[w].available = false;
      snap.workers[w].outstanding = 1;
      snap.workers[w].ever_dispatched = true;
      snap.workers[w].task_staleness = busy_staleness;
    }
  }
  return snap;
}

TEST(Asp, AlwaysOpen) {
  const BarrierControl b = barriers::asp();
  EXPECT_EQ(b.name, "ASP");
  EXPECT_TRUE(b.gate(snapshot_with(4, 3, 100)));
  EXPECT_TRUE(b.filter(snapshot_with(4, 0).workers[0], snapshot_with(4, 0)));
}

TEST(Bsp, OpenOnlyWhenAllAvailable) {
  const BarrierControl b = barriers::bsp();
  EXPECT_TRUE(b.gate(snapshot_with(4, 0)));
  EXPECT_FALSE(b.gate(snapshot_with(4, 1)));
  EXPECT_FALSE(b.gate(snapshot_with(4, 4)));
}

TEST(Ssp, GateBoundsInFlightStaleness) {
  const BarrierControl b = barriers::ssp(5);
  EXPECT_TRUE(b.gate(snapshot_with(4, 2, /*busy_staleness=*/4)));
  EXPECT_FALSE(b.gate(snapshot_with(4, 2, /*busy_staleness=*/5)));
  EXPECT_FALSE(b.gate(snapshot_with(4, 2, /*busy_staleness=*/50)));
}

TEST(Ssp, OpenWhenClusterIdle) {
  // No in-flight tasks => nothing is stale => dispatch allowed.
  const BarrierControl b = barriers::ssp(1);
  EXPECT_TRUE(b.gate(snapshot_with(4, 0)));
}

TEST(AvailableFraction, ThresholdAtFloorBetaP) {
  const BarrierControl b = barriers::available_fraction(0.5);
  EXPECT_TRUE(b.gate(snapshot_with(8, 4)));   // 4 available >= floor(0.5*8)=4
  EXPECT_FALSE(b.gate(snapshot_with(8, 5)));  // 3 available < 4
}

TEST(AvailableFraction, AtLeastOneWorkerRequired) {
  const BarrierControl b = barriers::available_fraction(0.01);
  EXPECT_TRUE(b.gate(snapshot_with(4, 3)));   // 1 available >= max(1, 0)
  EXPECT_FALSE(b.gate(snapshot_with(4, 4)));  // 0 available
}

TEST(CompletionTimeWithin, FiltersChronicStragglers) {
  const BarrierControl b = barriers::completion_time_within(1.5);
  StatSnapshot snap = snapshot_with(3, 0);
  for (int w = 0; w < 3; ++w) snap.workers[w].tasks_completed = 10;
  snap.workers[0].avg_task_ms = 1.0;
  snap.workers[1].avg_task_ms = 1.0;
  snap.workers[2].avg_task_ms = 4.0;  // cluster mean = 2.0; 4.0 > 1.5*2.0
  EXPECT_TRUE(b.filter(snap.workers[0], snap));
  EXPECT_FALSE(b.filter(snap.workers[2], snap));
}

TEST(CompletionTimeWithin, NewWorkersAlwaysPass) {
  const BarrierControl b = barriers::completion_time_within(1.0);
  StatSnapshot snap = snapshot_with(2, 0);
  snap.workers[0].tasks_completed = 0;
  EXPECT_TRUE(b.filter(snap.workers[0], snap));
}

TEST(Both, ConjunctionOfGatesAndFilters) {
  const BarrierControl b =
      barriers::both(barriers::ssp(3), barriers::available_fraction(0.5));
  // SSP passes, fraction fails:
  EXPECT_FALSE(b.gate(snapshot_with(4, 3, 1)));
  // Both pass:
  EXPECT_TRUE(b.gate(snapshot_with(4, 2, 1)));
  // Fraction passes, SSP fails:
  EXPECT_FALSE(b.gate(snapshot_with(4, 2, 10)));
  EXPECT_NE(b.name.find("SSP"), std::string::npos);
}

TEST(Psp, AdmitsRoughlyPFractionOfWorkers) {
  // Probabilistic synchronous parallel: each worker admitted w.p. p per round.
  const BarrierControl b = barriers::probabilistic(0.5, /*seed=*/9);
  StatSnapshot snap = snapshot_with(16, 0);
  int admitted_total = 0;
  const int rounds = 200;
  for (int round = 0; round < rounds; ++round) {
    snap.current_version = static_cast<engine::Version>(round);
    for (const WorkerStat& w : snap.workers) {
      admitted_total += b.filter(w, snap) ? 1 : 0;
    }
  }
  const double rate = static_cast<double>(admitted_total) / (rounds * 16.0);
  EXPECT_NEAR(rate, 0.5, 0.05);
}

TEST(Psp, ReproducibleCoinSequencePerSeed) {
  // Two identically-seeded PSP barriers produce the same admission sequence;
  // a different seed produces a different one.
  const StatSnapshot snap = snapshot_with(4, 0);
  const BarrierControl a = barriers::probabilistic(0.5, 9);
  const BarrierControl b = barriers::probabilistic(0.5, 9);
  const BarrierControl c = barriers::probabilistic(0.5, 10);
  int mismatches_ab = 0, mismatches_ac = 0;
  for (int i = 0; i < 256; ++i) {
    const WorkerStat& w = snap.workers[i % 4];
    const bool ra = a.filter(w, snap);
    mismatches_ab += ra != b.filter(w, snap) ? 1 : 0;
    mismatches_ac += ra != c.filter(w, snap) ? 1 : 0;
  }
  EXPECT_EQ(mismatches_ab, 0);
  EXPECT_GT(mismatches_ac, 20);
}

TEST(Psp, FreshCoinsAcrossAttemptsPreventWedging) {
  // Repeated dispatch attempts must eventually admit a worker even if the
  // first attempt admitted none (the liveness property dispatch_live needs).
  const BarrierControl b = barriers::probabilistic(0.3, 4);
  const StatSnapshot snap = snapshot_with(1, 0);
  bool admitted = false;
  for (int attempt = 0; attempt < 100 && !admitted; ++attempt) {
    admitted = b.filter(snap.workers[0], snap);
  }
  EXPECT_TRUE(admitted);
}

TEST(Psp, ExtremesAlwaysAndNever) {
  StatSnapshot snap = snapshot_with(8, 0);
  const BarrierControl always = barriers::probabilistic(1.0, 1);
  const BarrierControl never = barriers::probabilistic(0.0, 1);
  for (const WorkerStat& w : snap.workers) {
    EXPECT_TRUE(always.filter(w, snap));
    EXPECT_FALSE(never.filter(w, snap));
  }
}

TEST(CustomBarrier, UserDefinedPredicates) {
  // Listing 2's spirit: dispatch only to even-numbered workers.
  BarrierControl b;
  b.filter = [](const WorkerStat& w, const StatSnapshot&) { return w.id % 2 == 0; };
  const StatSnapshot snap = snapshot_with(4, 0);
  EXPECT_TRUE(b.filter(snap.workers[0], snap));
  EXPECT_FALSE(b.filter(snap.workers[1], snap));
}

}  // namespace
}  // namespace asyncml::core
