#include "core/shard_map.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace asyncml::core {
namespace {

TEST(ShardMap, RangeBoundsAreBalancedAndCoverDim) {
  const ShardMap map(/*dim=*/10, /*num_shards=*/4, ShardScheme::kRange);
  ASSERT_EQ(map.num_shards(), 4u);
  // 10 = 4*2 + 2: the two leftmost shards take the extra coordinate.
  const std::vector<std::uint32_t> expected = {0, 3, 6, 8, 10};
  EXPECT_EQ(map.range_bounds(), expected);
  std::size_t covered = 0;
  for (std::uint32_t s = 0; s < map.num_shards(); ++s) covered += map.shard_dim(s);
  EXPECT_EQ(covered, map.dim());
}

TEST(ShardMap, ShardOfLocalOfGlobalOfAreInverse) {
  for (const ShardScheme scheme : {ShardScheme::kRange, ShardScheme::kHash}) {
    const ShardMap map(/*dim=*/101, /*num_shards=*/7, scheme);
    for (std::uint32_t i = 0; i < 101; ++i) {
      const std::uint32_t s = map.shard_of(i);
      ASSERT_LT(s, map.num_shards());
      const std::uint32_t local = map.local_of(i);
      ASSERT_LT(local, map.shard_dim(s));
      EXPECT_EQ(map.global_of(s, local), i);
    }
  }
}

TEST(ShardMap, HashSchemeIsStrided) {
  const ShardMap map(/*dim=*/12, /*num_shards=*/4, ShardScheme::kHash);
  for (std::uint32_t i = 0; i < 12; ++i) {
    EXPECT_EQ(map.shard_of(i), i % 4);
    EXPECT_EQ(map.local_of(i), i / 4);
  }
}

TEST(ShardMap, ShardCountClampsToDim) {
  const ShardMap tiny(/*dim=*/3, /*num_shards=*/8, ShardScheme::kRange);
  EXPECT_EQ(tiny.num_shards(), 3u);
  const ShardMap zero(/*dim=*/3, /*num_shards=*/0, ShardScheme::kRange);
  EXPECT_EQ(zero.num_shards(), 1u);
}

TEST(ShardMap, ExtractScatterRoundtrip) {
  for (const ShardScheme scheme : {ShardScheme::kRange, ShardScheme::kHash}) {
    const ShardMap map(/*dim=*/33, /*num_shards=*/5, scheme);
    std::vector<double> w(33);
    std::iota(w.begin(), w.end(), 1.0);
    std::vector<double> rebuilt(33, 0.0);
    for (std::uint32_t s = 0; s < map.num_shards(); ++s) {
      std::vector<double> slice(map.shard_dim(s));
      map.extract(s, w, slice);
      for (std::size_t local = 0; local < slice.size(); ++local) {
        EXPECT_EQ(slice[local],
                  w[map.global_of(s, static_cast<std::uint32_t>(local))]);
      }
      map.scatter(s, slice, rebuilt);
    }
    EXPECT_EQ(rebuilt, w);
  }
}

TEST(ShardMap, SliceDiffersIsBitwisePerShard) {
  const ShardMap map(/*dim=*/8, /*num_shards=*/2, ShardScheme::kRange);
  std::vector<double> a(8, 1.0);
  std::vector<double> b(8, 1.0);
  EXPECT_FALSE(map.slice_differs(0, a, b));
  EXPECT_FALSE(map.slice_differs(1, a, b));
  b[6] = 2.0;  // shard 1's range
  EXPECT_FALSE(map.slice_differs(0, a, b));
  EXPECT_TRUE(map.slice_differs(1, a, b));
  // Bitwise: -0.0 and +0.0 compare unequal (a republished slice must ship).
  a[0] = 0.0;
  b[0] = -0.0;
  EXPECT_TRUE(map.slice_differs(0, a, b));
}

}  // namespace
}  // namespace asyncml::core
