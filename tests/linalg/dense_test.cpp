#include <gtest/gtest.h>

#include "linalg/dense_matrix.hpp"
#include "linalg/dense_vector.hpp"

namespace asyncml::linalg {
namespace {

TEST(DenseVector, ConstructionAndFill) {
  DenseVector v(4, 1.5);
  ASSERT_EQ(v.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(v[i], 1.5);
  v.set_zero();
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(v[i], 0.0);
}

TEST(DenseVector, InitializerList) {
  DenseVector v{1.0, 2.0, 3.0};
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(DenseVector, SpanAliasesStorage) {
  DenseVector v(3);
  v.span()[2] = 7.0;
  EXPECT_DOUBLE_EQ(v[2], 7.0);
}

TEST(DenseVector, SizeBytes) {
  DenseVector v(10);
  EXPECT_EQ(v.size_bytes(), 80u);
}

TEST(DenseVector, EqualityAndCopy) {
  DenseVector a{1, 2, 3};
  DenseVector b = a;
  EXPECT_EQ(a, b);
  b[0] = 9;
  EXPECT_NE(a, b);
}

TEST(DenseVector, ToStringTruncates) {
  DenseVector v(20, 1.0);
  const std::string s = v.to_string();
  EXPECT_NE(s.find("(20 total)"), std::string::npos);
}

TEST(DenseMatrix, RowMajorLayout) {
  DenseMatrix m(2, 3);
  m.at(0, 0) = 1;
  m.at(0, 2) = 3;
  m.at(1, 1) = 5;
  EXPECT_DOUBLE_EQ(m.data()[0], 1.0);
  EXPECT_DOUBLE_EQ(m.data()[2], 3.0);
  EXPECT_DOUBLE_EQ(m.data()[4], 5.0);
}

TEST(DenseMatrix, RowViewAliases) {
  DenseMatrix m(2, 2);
  auto row = m.row(1);
  row[0] = 4.0;
  EXPECT_DOUBLE_EQ(m.at(1, 0), 4.0);
}

TEST(DenseMatrix, Dimensions) {
  DenseMatrix m(5, 7);
  EXPECT_EQ(m.rows(), 5u);
  EXPECT_EQ(m.cols(), 7u);
  EXPECT_EQ(m.size_bytes(), 5u * 7u * 8u);
}

}  // namespace
}  // namespace asyncml::linalg
