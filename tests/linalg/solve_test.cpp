#include "linalg/solve.hpp"

#include <gtest/gtest.h>

#include "linalg/blas.hpp"
#include "support/rng.hpp"

namespace asyncml::linalg {
namespace {

TEST(Cholesky, FactorizesIdentity) {
  DenseMatrix a(3, 3);
  for (int i = 0; i < 3; ++i) a.at(i, i) = 1.0;
  ASSERT_TRUE(cholesky_factorize(a).is_ok());
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(a.at(i, i), 1.0);
}

TEST(Cholesky, KnownFactor) {
  // A = [[4, 2], [2, 5]] => L = [[2, 0], [1, 2]]
  DenseMatrix a(2, 2);
  a.at(0, 0) = 4;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 5;
  ASSERT_TRUE(cholesky_factorize(a).is_ok());
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 2.0);
}

TEST(Cholesky, RejectsNonSquare) {
  DenseMatrix a(2, 3);
  EXPECT_FALSE(cholesky_factorize(a).is_ok());
}

TEST(Cholesky, RejectsIndefinite) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(1, 1) = -1;
  EXPECT_FALSE(cholesky_factorize(a).is_ok());
}

TEST(CholeskySolve, RoundTrip) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 4;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 5;
  DenseMatrix l = a;
  ASSERT_TRUE(cholesky_factorize(l).is_ok());
  const DenseVector b{10.0, 13.0};
  const DenseVector x = cholesky_solve(l, b);
  // Verify A x == b.
  EXPECT_NEAR(4 * x[0] + 2 * x[1], 10.0, 1e-12);
  EXPECT_NEAR(2 * x[0] + 5 * x[1], 13.0, 1e-12);
}

TEST(LeastSquares, RecoversExactSolutionDense) {
  // Overdetermined consistent system: b = A w*.
  support::RngStream rng(3);
  const std::size_t n = 50, d = 6;
  DenseMatrix a(n, d);
  DenseVector w_star(d);
  for (std::size_t j = 0; j < d; ++j) w_star[j] = rng.next_gaussian();
  DenseVector b(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) a.at(i, j) = rng.next_gaussian();
    b[i] = dot(a.row(i), w_star.span());
  }
  const auto solved = least_squares_optimum(a, b);
  ASSERT_TRUE(solved.is_ok());
  EXPECT_LT(max_abs_diff(solved.value().span(), w_star.span()), 1e-6);
}

TEST(LeastSquares, RecoversExactSolutionSparse) {
  support::RngStream rng(5);
  const std::size_t n = 60, d = 8;
  CsrMatrix a = CsrMatrix::for_appending(d);
  DenseVector w_star(d);
  for (std::size_t j = 0; j < d; ++j) w_star[j] = rng.next_gaussian();
  DenseVector b(n);
  for (std::size_t i = 0; i < n; ++i) {
    SparseVector row;
    double margin = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      if (rng.bernoulli(0.5)) {
        const double v = rng.next_gaussian();
        row.push_back(static_cast<std::uint32_t>(j), v);
        margin += v * w_star[j];
      }
    }
    a.append_row(row);
    b[i] = margin;
  }
  const auto solved = least_squares_optimum(a, b, 1e-12);
  ASSERT_TRUE(solved.is_ok());
  EXPECT_LT(max_abs_diff(solved.value().span(), w_star.span()), 1e-5);
}

TEST(LeastSquares, SizeMismatchRejected) {
  DenseMatrix a(3, 2);
  DenseVector b(4);
  EXPECT_FALSE(least_squares_optimum(a, b).is_ok());
}

}  // namespace
}  // namespace asyncml::linalg
