// Batch kernels (linalg/batch.hpp) vs their per-row references: every
// variant (blocked, AVX2-dispatched) must be *bit-identical* to per-row
// linalg::dot / axpy sequences — including remainder rows and columns.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "linalg/batch.hpp"
#include "linalg/blas.hpp"
#include "support/rng.hpp"

namespace asyncml::linalg {
namespace {

DenseMatrix random_dense(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  DenseMatrix m(rows, cols);
  support::RngStream rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m.at(r, c) = rng.uniform(-1.0, 1.0);
  }
  return m;
}

CsrMatrix random_sparse(std::size_t rows, std::size_t cols, double density,
                        std::uint64_t seed) {
  CsrMatrix m = CsrMatrix::for_appending(cols);
  support::RngStream rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    SparseVector row;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) row.push_back(static_cast<std::uint32_t>(c),
                                                rng.uniform(-1.0, 1.0));
    }
    m.append_row(row);
  }
  return m;
}

std::vector<double> random_vec(std::size_t n, std::uint64_t seed) {
  std::vector<double> v(n);
  support::RngStream rng(seed);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

bool bits_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// Row counts straddling every blocking remainder (4-row blocks, 2-row
// scalar pairs) and column counts straddling the 4-wide SIMD remainder.
const std::vector<std::size_t> kRowCounts = {0, 1, 2, 3, 4, 5, 7, 8, 13};
const std::vector<std::size_t> kColCounts = {1, 3, 4, 6, 8, 33, 100};

TEST(BatchKernels, GemvRowsBitMatchesPerRowDot) {
  for (std::size_t cols : kColCounts) {
    const DenseMatrix m = random_dense(16, cols, 101 + cols);
    const std::vector<double> x = random_vec(cols, 7);
    const DenseRowBlock block = m.block(2, 16);
    for (std::size_t count : kRowCounts) {
      std::vector<std::uint32_t> rows;
      for (std::size_t i = 0; i < count; ++i) {
        rows.push_back(static_cast<std::uint32_t>((i * 5) % block.rows()));
      }
      std::vector<double> margins(count, -1.0);
      gemv_rows(block, rows, x, margins);
      std::vector<double> reference(count);
      for (std::size_t i = 0; i < count; ++i) {
        reference[i] = dot(block.row(rows[i]), x);
      }
      EXPECT_TRUE(bits_equal(margins, reference))
          << "cols=" << cols << " count=" << count;
    }
  }
}

TEST(BatchKernels, SpmvRowsBitMatchesPerRowDot) {
  const CsrMatrix m = random_sparse(24, 60, 0.2, 33);
  const std::vector<double> x = random_vec(60, 9);
  const CsrRowSlice slice = m.slice(4, 20);
  ASSERT_EQ(slice.rows(), 16u);
  std::vector<std::uint32_t> rows = {0, 3, 5, 6, 7, 11, 15};
  std::vector<double> margins(rows.size());
  spmv_rows(slice, rows, x, margins);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(margins[i], dot(m.row(4 + rows[i]), x)) << "i=" << i;
  }
}

TEST(BatchKernels, AccumulateRowsDenseBitMatchesPerRowAxpy) {
  for (std::size_t cols : kColCounts) {
    const DenseMatrix m = random_dense(16, cols, 55 + cols);
    const DenseRowBlock block = m.block(0, 16);
    for (std::size_t count : kRowCounts) {
      std::vector<std::uint32_t> rows;
      std::vector<double> coeffs;
      support::RngStream rng(17 + count);
      for (std::size_t i = 0; i < count; ++i) {
        rows.push_back(static_cast<std::uint32_t>((i * 3) % 16));
        coeffs.push_back(rng.uniform(-2.0, 2.0));
      }
      std::vector<double> acc = random_vec(cols, 77);
      std::vector<double> reference = acc;
      accumulate_rows(block, rows, coeffs, acc);
      for (std::size_t i = 0; i < count; ++i) {
        axpy(coeffs[i], block.row(rows[i]), reference);
      }
      EXPECT_TRUE(bits_equal(acc, reference)) << "cols=" << cols << " count=" << count;
    }
  }
}

TEST(BatchKernels, AccumulateRowsSparseIntoDenseBitMatchesPerRowAxpy) {
  const CsrMatrix m = random_sparse(20, 50, 0.25, 91);
  const CsrRowSlice slice = m.slice(0, 20);
  std::vector<std::uint32_t> rows = {1, 2, 4, 9, 13, 19};
  std::vector<double> coeffs = {0.5, -1.5, 2.0, 0.25, -0.75, 1.0};
  std::vector<double> acc(50, 0.0);
  std::vector<double> reference(50, 0.0);
  accumulate_rows(slice, rows, coeffs, acc);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    axpy(coeffs[i], m.row(rows[i]), reference);
  }
  EXPECT_TRUE(bits_equal(acc, reference));
}

TEST(BatchKernels, AccumulateRowsIntoGradVectorMatchesPerRowAxpy) {
  const CsrMatrix m = random_sparse(20, 400, 0.05, 13);
  const CsrRowSlice slice = m.slice(0, 20);
  std::vector<std::uint32_t> rows;
  std::vector<double> coeffs;
  for (std::uint32_t r = 0; r < 20; ++r) {
    rows.push_back(r);
    coeffs.push_back(0.1 * static_cast<double>(r) - 0.7);
  }
  const GradVectorConfig cfg(400, kDefaultDensifyThreshold, /*dense_start=*/false);
  GradVector batch(cfg);
  GradVector reference(cfg);
  accumulate_rows(slice, rows, coeffs, batch);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    reference.axpy(coeffs[i], m.row(rows[i]));
  }
  EXPECT_EQ(batch.is_dense(), reference.is_dense());
  EXPECT_EQ(batch.nnz(), reference.nnz());
  EXPECT_EQ(batch.size_bytes(), reference.size_bytes());
  const DenseVector a = batch.to_dense();
  const DenseVector b = reference.to_dense();
  EXPECT_TRUE(bitwise_equal(a, b));
}

TEST(BatchKernels, CsrRowSliceViewsParentRows) {
  const CsrMatrix m = random_sparse(12, 30, 0.3, 3);
  const CsrRowSlice slice = m.slice(3, 9);
  EXPECT_EQ(slice.rows(), 6u);
  EXPECT_EQ(slice.cols(), 30u);
  std::size_t nnz = 0;
  for (std::size_t r = 0; r < slice.rows(); ++r) {
    const SparseRowView ours = slice.row(r);
    const SparseRowView parent = m.row(3 + r);
    ASSERT_EQ(ours.nnz(), parent.nnz());
    nnz += ours.nnz();
    for (std::size_t k = 0; k < ours.nnz(); ++k) {
      EXPECT_EQ(ours.indices[k], parent.indices[k]);
      EXPECT_EQ(ours.values[k], parent.values[k]);
    }
  }
  EXPECT_EQ(slice.nnz(), nnz);
}

TEST(GradVectorAssignDense, CopiesBitsAndSwitchesRepresentation) {
  const GradVectorConfig cfg(8, kDefaultDensifyThreshold, /*dense_start=*/false);
  GradVector g(cfg);
  g.axpy(1.0, SparseVector({1, 5}, {0.5, -0.25}).view());  // sparse entries
  const std::vector<double> v = {0.0, 1.5, -0.0, 3.0, 0.0, 0.0, 2.5, -1.0};
  g.assign_dense(v);
  EXPECT_TRUE(g.is_dense());
  EXPECT_EQ(g.nnz(), 8u);
  const DenseVector dense = g.to_dense();
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(dense[i], v[i]);
  EXPECT_EQ(g.size_bytes(), 8u * sizeof(double));
}

TEST(GradVectorPresize, ExpectedNnzHintAvoidsRehashAndKeepsValues) {
  GradVectorConfig hinted(1024, kDefaultDensifyThreshold, /*dense_start=*/false);
  hinted.expected_nnz = 200;
  GradVectorConfig unhinted(1024, kDefaultDensifyThreshold, /*dense_start=*/false);

  GradVector a(hinted);
  GradVector b(unhinted);
  support::RngStream rng(5);
  SparseVector row;
  for (std::uint32_t c = 0; c < 1024; c += 5) {
    row.push_back(c, rng.uniform(-1.0, 1.0));
  }
  a.axpy(0.5, row.view());
  b.axpy(0.5, row.view());
  EXPECT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.size_bytes(), b.size_bytes());
  EXPECT_TRUE(bitwise_equal(a.to_dense(), b.to_dense()));
}

}  // namespace
}  // namespace asyncml::linalg
