#include "linalg/sparse.hpp"

#include <gtest/gtest.h>

namespace asyncml::linalg {
namespace {

TEST(SparseVector, PushBackKeepsParallelArrays) {
  SparseVector v;
  v.push_back(1, 0.5);
  v.push_back(7, -2.0);
  ASSERT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.indices()[1], 7u);
  EXPECT_DOUBLE_EQ(v.values()[1], -2.0);
}

TEST(SparseVector, ViewReflectsContents) {
  SparseVector v({0, 3}, {1.0, 2.0});
  const SparseRowView view = v.view();
  ASSERT_EQ(view.nnz(), 2u);
  EXPECT_EQ(view.indices[1], 3u);
  EXPECT_DOUBLE_EQ(view.values[0], 1.0);
}

TEST(CsrMatrix, AppendRowsAndRead) {
  CsrMatrix m = CsrMatrix::for_appending(10);
  SparseVector r0;
  r0.push_back(0, 1.0);
  r0.push_back(9, 2.0);
  SparseVector r1;  // empty row
  SparseVector r2;
  r2.push_back(4, 3.0);
  m.append_row(r0);
  m.append_row(r1);
  m.append_row(r2);

  ASSERT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 10u);
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.row(0).nnz(), 2u);
  EXPECT_EQ(m.row(1).nnz(), 0u);
  EXPECT_EQ(m.row(2).indices[0], 4u);
  EXPECT_DOUBLE_EQ(m.row(2).values[0], 3.0);
}

TEST(CsrMatrix, DensityComputed) {
  CsrMatrix m = CsrMatrix::for_appending(10);
  SparseVector row;
  row.push_back(2, 1.0);
  m.append_row(row);
  m.append_row(row);
  EXPECT_DOUBLE_EQ(m.density(), 2.0 / 20.0);
}

TEST(CsrMatrix, EmptyMatrixDensityZero) {
  CsrMatrix m = CsrMatrix::for_appending(5);
  EXPECT_DOUBLE_EQ(m.density(), 0.0);
}

TEST(CsrFromRows, BuildsEquivalentMatrix) {
  std::vector<SparseVector> rows(2);
  rows[0].push_back(1, 5.0);
  rows[1].push_back(0, 6.0);
  rows[1].push_back(2, 7.0);
  const CsrMatrix m = csr_from_rows(rows, 3);
  ASSERT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m.row(1).values[1], 7.0);
}

TEST(CsrWellFormed, AcceptsValidMatrix) {
  std::vector<SparseVector> rows(1);
  rows[0].push_back(0, 1.0);
  rows[0].push_back(2, 1.0);
  EXPECT_TRUE(csr_is_well_formed(csr_from_rows(rows, 3)));
}

TEST(CsrMatrix, SizeBytesAccounts) {
  CsrMatrix m = CsrMatrix::for_appending(10);
  SparseVector row;
  row.push_back(1, 2.0);
  m.append_row(row);
  EXPECT_GT(m.size_bytes(), 0u);
}

}  // namespace
}  // namespace asyncml::linalg
