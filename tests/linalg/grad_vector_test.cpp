// GradVector: densification edge cases (empty, duplicate indices, threshold
// boundary), combine across representation pairs, kernels, and exact wire
// sizes.

#include "linalg/grad_vector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "linalg/blas.hpp"

namespace asyncml::linalg {
namespace {

SparseRowView row_view(const std::vector<std::uint32_t>& idx,
                       const std::vector<double>& val) {
  return {{idx.data(), idx.size()}, {val.data(), val.size()}};
}

TEST(GradVector, EmptyIsSparseZero) {
  GradVector g(GradVectorConfig(100));
  EXPECT_TRUE(g.configured());
  EXPECT_FALSE(g.is_dense());
  EXPECT_EQ(g.nnz(), 0u);
  EXPECT_EQ(g.size_bytes(), 0u);  // empty accumulators ship nothing
  EXPECT_EQ(g.to_dense(), DenseVector(100));

  DenseVector y(100, 1.0);
  g.scale_into(5.0, y.span());  // zero contributes nothing
  EXPECT_EQ(y, DenseVector(100, 1.0));
}

TEST(GradVector, UnconfiguredDefaultIsInert) {
  GradVector g;
  EXPECT_FALSE(g.configured());
  EXPECT_EQ(g.dim(), 0u);
  g.ensure(GradVectorConfig(8));
  EXPECT_TRUE(g.configured());
  g.ensure(GradVectorConfig(99));  // second ensure is a no-op
  EXPECT_EQ(g.dim(), 8u);
}

TEST(GradVector, AccumulatesDuplicateIndicesAcrossRows) {
  // Threshold 0.9: 4 distinct entries over dim=10 must stay sparse.
  GradVector g(GradVectorConfig(10, 0.9, /*dense_start=*/false));
  const std::vector<std::uint32_t> i1{1, 4, 7};
  const std::vector<double> v1{1.0, 2.0, 3.0};
  const std::vector<std::uint32_t> i2{4, 7, 9};
  const std::vector<double> v2{10.0, 20.0, 30.0};
  g.axpy(2.0, row_view(i1, v1));
  g.axpy(-1.0, row_view(i2, v2));

  EXPECT_EQ(g.nnz(), 4u);
  EXPECT_DOUBLE_EQ(g.value_at(1), 2.0);
  EXPECT_DOUBLE_EQ(g.value_at(4), 4.0 - 10.0);
  EXPECT_DOUBLE_EQ(g.value_at(7), 6.0 - 20.0);
  EXPECT_DOUBLE_EQ(g.value_at(9), -30.0);
  EXPECT_DOUBLE_EQ(g.value_at(0), 0.0);
}

TEST(GradVector, DensifiesStrictlyPastThreshold) {
  // dim=100, threshold 0.25: 25 entries stay sparse, the 26th densifies.
  GradVector g(GradVectorConfig(100, 0.25, /*dense_start=*/false));
  for (std::uint32_t k = 0; k < 25; ++k) {
    const std::vector<std::uint32_t> idx{k};
    const std::vector<double> val{1.0};
    g.axpy(1.0, row_view(idx, val));
  }
  EXPECT_FALSE(g.is_dense());
  EXPECT_EQ(g.nnz(), 25u);

  const std::vector<std::uint32_t> idx{25};
  const std::vector<double> val{1.0};
  g.axpy(1.0, row_view(idx, val));
  EXPECT_TRUE(g.is_dense());
  EXPECT_EQ(g.nnz(), 100u);  // dense ships every coordinate
  for (std::uint32_t k = 0; k <= 25; ++k) EXPECT_DOUBLE_EQ(g.value_at(k), 1.0);
  EXPECT_DOUBLE_EQ(g.value_at(60), 0.0);
}

TEST(GradVector, DenseRowForcesDensify) {
  // Threshold pinned high: this test is about dense rows forcing the switch,
  // not about the default occupancy calibration (one entry in dim=4 would
  // densify on its own under the default).
  GradVector g(GradVectorConfig(4, /*threshold=*/0.9, /*dense_start=*/false));
  const std::vector<std::uint32_t> idx{2};
  const std::vector<double> val{5.0};
  g.axpy(1.0, row_view(idx, val));
  ASSERT_FALSE(g.is_dense());

  const std::vector<double> dense_row{1.0, 2.0, 3.0, 4.0};
  g.axpy(0.5, {dense_row.data(), dense_row.size()});
  EXPECT_TRUE(g.is_dense());
  EXPECT_DOUBLE_EQ(g.value_at(2), 5.0 + 1.5);
  EXPECT_DOUBLE_EQ(g.value_at(0), 0.5);
}

TEST(GradVector, StartDenseSkipsSparsePhase) {
  GradVector g(GradVectorConfig(6, 0.25, /*dense_start=*/true));
  EXPECT_TRUE(g.is_dense());
  // Dense storage is lazy: an untouched accumulator (an empty-batch task's
  // payload) holds and ships nothing, exactly like the old empty DenseVector.
  EXPECT_EQ(g.nnz(), 0u);
  EXPECT_EQ(g.size_bytes(), 0u);
  const std::vector<std::uint32_t> idx{3};
  const std::vector<double> val{2.0};
  g.axpy(3.0, row_view(idx, val));
  EXPECT_DOUBLE_EQ(g.value_at(3), 6.0);
  EXPECT_EQ(g.nnz(), 6u);
  EXPECT_EQ(g.size_bytes(), 6 * sizeof(double));
}

TEST(GradVector, CombineAllRepresentationPairs) {
  const std::vector<std::uint32_t> ia{0, 2};
  const std::vector<double> va{1.0, 2.0};
  const std::vector<std::uint32_t> ib{2, 3};
  const std::vector<double> vb{10.0, 20.0};

  // Threshold 0.9 keeps the 3-entry union sparse over dim=4.
  auto sparse_a = [&] {
    GradVector g(GradVectorConfig(4, 0.9, false));
    g.axpy(1.0, row_view(ia, va));
    return g;
  };
  auto dense_b = [&] {
    GradVector g(GradVectorConfig(4, 0.9, true));
    g.axpy(1.0, row_view(ib, vb));
    return g;
  };
  auto sparse_b = [&] {
    GradVector g(GradVectorConfig(4, 0.9, false));
    g.axpy(1.0, row_view(ib, vb));
    return g;
  };
  const DenseVector expected{1.0, 0.0, 12.0, 20.0};

  {  // sparse += sparse
    GradVector g = sparse_a();
    g.add(sparse_b());
    EXPECT_FALSE(g.is_dense());
    EXPECT_EQ(g.to_dense(), expected);
  }
  {  // sparse += dense -> densifies
    GradVector g = sparse_a();
    g.add(dense_b());
    EXPECT_TRUE(g.is_dense());
    EXPECT_EQ(g.to_dense(), expected);
  }
  {  // dense += sparse
    GradVector g(GradVectorConfig(4, 0.9, true));
    g.add(sparse_a());
    g.add(sparse_b());
    EXPECT_TRUE(g.is_dense());
    EXPECT_EQ(g.to_dense(), expected);
  }
  {  // unconfigured adopts the other side wholesale (driver-side zero)
    GradVector g;
    g.add(sparse_a());
    EXPECT_TRUE(g.configured());
    EXPECT_FALSE(g.is_dense());
    g.add(sparse_b());
    EXPECT_EQ(g.to_dense(), expected);
  }
  {  // adding an empty/unconfigured right side is a no-op
    GradVector g = sparse_a();
    g.add(GradVector{});
    g.add(GradVector(GradVectorConfig(4, 0.9, false)));
    EXPECT_EQ(g.to_dense(), (DenseVector{1.0, 0.0, 2.0, 0.0}));
  }
}

TEST(GradVector, ScaleIntoMatchesToDenseAxpy) {
  GradVector g(GradVectorConfig(16));
  const std::vector<std::uint32_t> idx{1, 5, 9, 13};
  const std::vector<double> val{0.5, -2.0, 3.0, 7.0};
  g.axpy(1.5, row_view(idx, val));

  DenseVector via_scale(16, 0.25);
  g.scale_into(-0.3, via_scale.span());

  DenseVector via_dense(16, 0.25);
  const DenseVector d = g.to_dense();
  axpy(-0.3, d.span(), via_dense.span());

  EXPECT_LT(max_abs_diff(via_scale.span(), via_dense.span()), 1e-15);
}

TEST(GradVector, ExactWireSizes) {
  GradVector g(GradVectorConfig(1000));
  const std::vector<std::uint32_t> idx{10, 20, 30};
  const std::vector<double> val{1.0, 2.0, 3.0};
  g.axpy(1.0, row_view(idx, val));
  // sparse: u64 header + nnz * (u32 + f64)
  EXPECT_EQ(g.size_bytes(), 8u + 3u * 12u);

  const std::vector<double> dense_row(1000, 0.1);
  g.axpy(1.0, {dense_row.data(), dense_row.size()});
  EXPECT_EQ(g.size_bytes(), 1000u * sizeof(double));
}

TEST(GradVector, TableGrowthPreservesValuesAgainstReference) {
  // Enough scattered keys to force several rehash rounds; compare with a map.
  GradVector g(GradVectorConfig(100'000, 0.9, false));
  std::map<std::uint32_t, double> ref;
  std::uint32_t key = 7;
  for (int round = 0; round < 400; ++round) {
    key = (key * 2654435761u + 13u) % 100'000u;
    const double value = 0.01 * static_cast<double>(round + 1);
    const std::vector<std::uint32_t> idx{key};
    const std::vector<double> val{value};
    g.axpy(1.0, row_view(idx, val));
    ref[key] += value;
  }
  ASSERT_FALSE(g.is_dense());
  EXPECT_EQ(g.nnz(), ref.size());
  for (const auto& [k, v] : ref) EXPECT_DOUBLE_EQ(g.value_at(k), v);
}

TEST(GradVector, SetZeroRevertsToStartRepresentation) {
  GradVector g(GradVectorConfig(8, 0.25, /*dense_start=*/false));
  const std::vector<double> dense_row(8, 1.0);
  g.axpy(1.0, {dense_row.data(), dense_row.size()});
  ASSERT_TRUE(g.is_dense());

  g.set_zero();
  EXPECT_FALSE(g.is_dense());
  EXPECT_EQ(g.nnz(), 0u);
  EXPECT_EQ(g.to_dense(), DenseVector(8));

  // And it accumulates correctly again after the reset.
  const std::vector<std::uint32_t> idx{6};
  const std::vector<double> val{4.0};
  g.axpy(1.0, row_view(idx, val));
  EXPECT_DOUBLE_EQ(g.value_at(6), 4.0);
  EXPECT_EQ(g.nnz(), 1u);
}

TEST(GradVector, ForEachVisitsEveryEntryOnce) {
  GradVector g(GradVectorConfig(32));
  const std::vector<std::uint32_t> idx{3, 17, 31};
  const std::vector<double> val{1.0, 2.0, 4.0};
  g.axpy(1.0, row_view(idx, val));
  double sum = 0.0;
  std::size_t visits = 0;
  g.for_each([&](std::uint32_t, double v) {
    sum += v;
    ++visits;
  });
  EXPECT_EQ(visits, 3u);
  EXPECT_DOUBLE_EQ(sum, 7.0);
}

TEST(ResolveGradConfig, ExpectedUnionDensityDrivesAutoChoice) {
  // 1 - (1-d)^rows, clamped and monotone in both arguments.
  EXPECT_NEAR(expected_union_density(0.01, 1.0), 0.01, 1e-12);
  EXPECT_NEAR(expected_union_density(0.1, 16.0), 1.0 - std::pow(0.9, 16.0), 1e-12);
  EXPECT_DOUBLE_EQ(expected_union_density(1.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(expected_union_density(0.0, 100.0), 0.0);
  // A mid-density dataset saturates a 16-row batch: kAuto must start dense
  // even though the per-cell density is below the densify threshold.
  const GradVectorConfig saturating = resolve_grad_config(
      GradMode::kAuto, 1000, expected_union_density(0.1, 16.0));
  EXPECT_TRUE(saturating.start_dense);
  const GradVectorConfig sparse_batch = resolve_grad_config(
      GradMode::kAuto, 1000, expected_union_density(0.001, 16.0));
  EXPECT_FALSE(sparse_batch.start_dense);
}

TEST(ResolveGradConfig, AutoFollowsDatasetDensity) {
  const GradVectorConfig sparse = resolve_grad_config(GradMode::kAuto, 100, 0.01);
  EXPECT_FALSE(sparse.start_dense);
  const GradVectorConfig dense = resolve_grad_config(GradMode::kAuto, 100, 0.9);
  EXPECT_TRUE(dense.start_dense);
  // Forced modes override density.
  EXPECT_TRUE(resolve_grad_config(GradMode::kDense, 100, 0.001).start_dense);
  EXPECT_FALSE(resolve_grad_config(GradMode::kSparse, 100, 1.0).start_dense);
}

}  // namespace
}  // namespace asyncml::linalg
