#include "linalg/grad_vector.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace asyncml::linalg {
namespace {

// The wire-size contract of split_ranges (docs/SHARDING.md): splitting a
// gradient along shard bounds never inflates what goes on the wire.
//   * dense:  Σ pieces = 8 bytes per coordinate = the unsplit 8*dim exactly;
//   * sparse: each non-empty piece re-pays the 8-byte nnz header once, so
//             Σ pieces = 8*(non-empty pieces) + 12*total_nnz, and an empty
//             piece ships nothing at all.

GradVectorConfig sparse_cfg(std::size_t dim) {
  // Threshold 1.0: stays sparse regardless of fill (pieces never densify).
  return GradVectorConfig(dim, /*threshold=*/1.0, /*dense_start=*/false);
}

TEST(ShardSplit, DenseWireBytesArePreservedExactly) {
  const std::size_t dim = 20;
  GradVector g(GradVectorConfig(dim, 0.125, /*dense_start=*/true));
  std::vector<double> values(dim);
  for (std::size_t i = 0; i < dim; ++i) values[i] = static_cast<double>(i) + 0.5;
  g.assign_dense(values);
  ASSERT_TRUE(g.is_dense());
  EXPECT_EQ(g.size_bytes(), dim * sizeof(double));

  const std::vector<std::uint32_t> bounds = {0, 7, 13, 20};
  const std::vector<GradVector> pieces = g.split_ranges(bounds);
  ASSERT_EQ(pieces.size(), 3u);
  std::size_t total = 0;
  for (const GradVector& p : pieces) {
    EXPECT_TRUE(p.is_dense());
    total += p.size_bytes();
  }
  EXPECT_EQ(total, g.size_bytes());
}

TEST(ShardSplit, SparseWireBytesPayOneHeaderPerNonEmptyPiece) {
  const std::size_t dim = 100;
  GradVector g(sparse_cfg(dim));
  // Support confined to shards 0 and 2 of bounds {0,25,50,75,100}; shards 1
  // and 3 stay empty.
  g.set(3, 1.0);
  g.set(10, -2.0);
  g.set(60, 4.0);
  ASSERT_FALSE(g.is_dense());
  EXPECT_EQ(g.size_bytes(), 8u + 3u * 12u);

  const std::vector<std::uint32_t> bounds = {0, 25, 50, 75, 100};
  const std::vector<GradVector> pieces = g.split_ranges(bounds);
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0].nnz(), 2u);
  EXPECT_EQ(pieces[1].nnz(), 0u);
  EXPECT_EQ(pieces[2].nnz(), 1u);
  EXPECT_EQ(pieces[3].nnz(), 0u);

  // Empty pieces ship zero bytes; non-empty ones 8 + 12*nnz.
  EXPECT_EQ(pieces[0].size_bytes(), 8u + 2u * 12u);
  EXPECT_EQ(pieces[1].size_bytes(), 0u);
  EXPECT_EQ(pieces[2].size_bytes(), 8u + 1u * 12u);
  EXPECT_EQ(pieces[3].size_bytes(), 0u);

  std::size_t total = 0;
  std::size_t non_empty = 0;
  std::size_t total_nnz = 0;
  for (const GradVector& p : pieces) {
    total += p.size_bytes();
    if (p.nnz() > 0) ++non_empty;
    total_nnz += p.nnz();
  }
  EXPECT_EQ(total, 8u * non_empty + 12u * total_nnz);
  EXPECT_EQ(total_nnz, g.nnz());
}

TEST(ShardSplit, PiecesAreReindexedToLocalCoordinates) {
  const std::size_t dim = 40;
  GradVector g(sparse_cfg(dim));
  g.set(5, 1.5);
  g.set(25, -3.0);
  const std::vector<std::uint32_t> bounds = {0, 20, 40};
  const std::vector<GradVector> pieces = g.split_ranges(bounds);
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].dim(), 20u);
  EXPECT_EQ(pieces[1].dim(), 20u);
  EXPECT_EQ(pieces[0].value_at(5), 1.5);
  EXPECT_EQ(pieces[1].value_at(5), -3.0);  // global 25 - bound 20
}

TEST(ShardSplit, MergeFromRoundtripIsBitExact) {
  const std::size_t dim = 64;
  GradVector g(sparse_cfg(dim));
  for (std::uint32_t i = 0; i < dim; i += 5) {
    g.set(i, 0.1 * static_cast<double>(i) - 1.7);
  }
  const std::vector<std::uint32_t> bounds = {0, 10, 30, 31, 64};
  std::vector<GradVector> pieces = g.split_ranges(bounds);

  GradVector rebuilt(sparse_cfg(dim));
  for (std::size_t s = 0; s < pieces.size(); ++s) {
    rebuilt.merge_from(pieces[s], bounds[s]);
  }
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_EQ(rebuilt.value_at(i), g.value_at(i)) << "coordinate " << i;
  }
  EXPECT_EQ(rebuilt.nnz(), g.nnz());
}

TEST(ShardSplit, MergeFromAccumulatesIntoExistingValues) {
  GradVector acc(sparse_cfg(10));
  acc.set(2, 1.0);
  GradVector piece(sparse_cfg(4));
  piece.set(0, 2.0);  // global 2 at offset 2
  piece.set(3, 5.0);  // global 5
  acc.merge_from(piece, /*offset=*/2);
  EXPECT_EQ(acc.value_at(2), 3.0);
  EXPECT_EQ(acc.value_at(5), 5.0);
}

}  // namespace
}  // namespace asyncml::linalg
