#include "linalg/blas.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace asyncml::linalg {
namespace {

TEST(Dot, DenseDense) {
  DenseVector x{1, 2, 3, 4, 5};
  DenseVector y{5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(dot(x.span(), y.span()), 5 + 8 + 9 + 8 + 5);
}

TEST(Dot, EmptyVectorsZero) {
  DenseVector x, y;
  EXPECT_DOUBLE_EQ(dot(x.span(), y.span()), 0.0);
}

TEST(Dot, UnrolledTailHandled) {
  // Sizes around the 4-way unroll boundary.
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u}) {
    DenseVector x(n, 2.0), y(n, 3.0);
    EXPECT_DOUBLE_EQ(dot(x.span(), y.span()), 6.0 * static_cast<double>(n)) << n;
  }
}

TEST(Dot, SparseDense) {
  SparseVector s;
  s.push_back(1, 2.0);
  s.push_back(3, -1.0);
  DenseVector y{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(dot(s.view(), y.span()), 2.0 * 20 - 40);
}

TEST(Axpy, Dense) {
  DenseVector x{1, 2, 3};
  DenseVector y{10, 10, 10};
  axpy(2.0, x.span(), y.span());
  EXPECT_DOUBLE_EQ(y[0], 12);
  EXPECT_DOUBLE_EQ(y[2], 16);
}

TEST(Axpy, SparseScatter) {
  SparseVector s;
  s.push_back(0, 1.0);
  s.push_back(2, 3.0);
  DenseVector y(3);
  axpy(-1.0, s.view(), y.span());
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], -3.0);
}

TEST(Scal, ScalesInPlace) {
  DenseVector x{2, 4};
  scal(0.5, x.span());
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(Nrm2, MatchesHand) {
  DenseVector x{3, 4};
  EXPECT_DOUBLE_EQ(nrm2(x.span()), 5.0);
  EXPECT_DOUBLE_EQ(nrm2_squared(x.span()), 25.0);
}

TEST(Gemv, DenseMatrixVector) {
  DenseMatrix a(2, 3);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(0, 2) = 3;
  a.at(1, 0) = 4;
  a.at(1, 1) = 5;
  a.at(1, 2) = 6;
  DenseVector x{1, 1, 1};
  DenseVector out(2);
  gemv(a, x.span(), out.span());
  EXPECT_DOUBLE_EQ(out[0], 6.0);
  EXPECT_DOUBLE_EQ(out[1], 15.0);
}

TEST(Spmv, SparseMatrixVector) {
  CsrMatrix m = CsrMatrix::for_appending(3);
  SparseVector r0;
  r0.push_back(0, 2.0);
  SparseVector r1;
  r1.push_back(1, 1.0);
  r1.push_back(2, 1.0);
  m.append_row(r0);
  m.append_row(r1);
  DenseVector x{1, 2, 3};
  DenseVector out(2);
  spmv(m, x.span(), out.span());
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 5.0);
}

TEST(Copy, CopiesElements) {
  DenseVector x{1, 2, 3};
  DenseVector y(3);
  copy(x.span(), y.span());
  EXPECT_EQ(x, y);
}

TEST(MaxAbsDiff, FindsLargestDeviation) {
  DenseVector x{1, 2, 3};
  DenseVector y{1, 5, 2};
  EXPECT_DOUBLE_EQ(max_abs_diff(x.span(), y.span()), 3.0);
}

}  // namespace
}  // namespace asyncml::linalg
