#include "support/blocking_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace asyncml::support {
namespace {

using namespace std::chrono_literals;

TEST(BlockingQueue, PushPopSingleThread) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_TRUE(q.empty());
}

TEST(BlockingQueue, FifoOrderPreserved) {
  BlockingQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(BlockingQueue, TryPopEmptyReturnsNullopt) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, DrainTakesEverythingInOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push(i);
  const std::deque<int> all = q.drain();
  ASSERT_EQ(all.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.drain().empty());
}

TEST(BlockingQueue, DrainForWaitsForFirstItem) {
  BlockingQueue<int> q;
  std::thread producer([&q] {
    std::this_thread::sleep_for(10ms);
    q.push(1);
    q.push(2);
  });
  std::deque<int> got;
  while (got.empty()) got = q.drain_for(200ms);
  producer.join();
  // Everything pushed before the swap arrives in one batch; anything later
  // is picked up by the next drain.
  std::size_t total = got.size();
  while (total < 2) total += q.drain_for(200ms).size();
  EXPECT_EQ(total, 2u);
}

TEST(BlockingQueue, DrainForTimesOutEmpty) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.drain_for(10ms).empty());
}

TEST(BlockingQueue, DrainUnblocksBoundedPushers) {
  BlockingQueue<int> q(/*capacity=*/2);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(3);  // blocks until drain frees capacity
    pushed.store(true);
  });
  std::this_thread::sleep_for(5ms);
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.drain().size(), 2u);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BlockingQueue, DrainForReturnsEmptyWhenClosedAndDrained) {
  BlockingQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_EQ(q.drain_for(50ms).size(), 1u);  // pending items remain poppable
  EXPECT_TRUE(q.drain_for(5ms).empty());    // closed + drained: no wait
}

TEST(BlockingQueue, PopForTimesOut) {
  BlockingQueue<int> q;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_for(20ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, 15ms);
}

TEST(BlockingQueue, PopBlocksUntilPush) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(20ms);
    q.push(99);
  });
  EXPECT_EQ(q.pop().value(), 99);
  producer.join();
}

TEST(BlockingQueue, CloseWakesBlockedPopper) {
  BlockingQueue<int> q;
  std::thread closer([&] {
    std::this_thread::sleep_for(20ms);
    q.close();
  });
  EXPECT_FALSE(q.pop().has_value());
  closer.join();
}

TEST(BlockingQueue, CloseRefusesNewPushesButDrainsPending) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, BoundedCapacityTryPushFails) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  (void)q.pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(BlockingQueue, BoundedPushBlocksUntilSpace) {
  BlockingQueue<int> q(1);
  q.push(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);  // blocks until consumer pops
    pushed.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BlockingQueue, ManyProducersManyConsumersDeliverEverything) {
  BlockingQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2'500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  std::atomic<int> popped{0};
  std::atomic<long long> sum{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.pop()) {
        sum.fetch_add(*item);
        popped.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  const long long total = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), total);
  EXPECT_EQ(sum.load(), total * (total - 1) / 2);
}

TEST(BlockingQueue, MoveOnlyPayloadsWork) {
  BlockingQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(5));
  auto out = q.pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 5);
}

}  // namespace
}  // namespace asyncml::support
