#include "support/thread_util.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "support/stopwatch.hpp"

namespace asyncml::support {
namespace {

using namespace std::chrono_literals;

TEST(PreciseSleep, ZeroAndNegativeReturnImmediately) {
  Stopwatch watch;
  precise_sleep(0ns);
  precise_sleep(-5ms);
  EXPECT_LT(watch.elapsed_ms(), 1.0);
}

TEST(PreciseSleep, SleepsAtLeastRequested) {
  Stopwatch watch;
  precise_sleep(5ms);
  EXPECT_GE(watch.elapsed_ms(), 4.9);
}

TEST(PreciseSleep, OvershootBounded) {
  // Spin finish should keep overshoot well under scheduler-quantum scale.
  Stopwatch watch;
  precise_sleep(5ms);
  EXPECT_LT(watch.elapsed_ms(), 9.0);
}

TEST(PreciseSleep, SubMillisecondAccuracy) {
  Stopwatch watch;
  precise_sleep_ms(0.3);
  const double elapsed = watch.elapsed_ms();
  EXPECT_GE(elapsed, 0.29);
  EXPECT_LT(elapsed, 2.0);
}

TEST(SetThreadName, DoesNotCrash) {
  set_current_thread_name("asyncml-test");
  set_current_thread_name("a-very-long-thread-name-exceeding-15-chars");
  SUCCEED();
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch watch;
  precise_sleep_ms(2.0);
  watch.reset();
  EXPECT_LT(watch.elapsed_ms(), 1.0);
}

TEST(Stopwatch, ToMsConversion) {
  EXPECT_DOUBLE_EQ(to_ms(std::chrono::milliseconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_ms(std::chrono::microseconds(1500)), 1.5);
}

}  // namespace
}  // namespace asyncml::support
