#include "support/histogram.hpp"

#include <gtest/gtest.h>

namespace asyncml::support {
namespace {

TEST(Histogram, EmptyHistogramZeroes) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.quantile_ns(0.5), 0.0);
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  h.record(1e6);
  h.record(3e6);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 2e6);
}

TEST(Histogram, MinMaxTracked) {
  Histogram h;
  h.record(5e3);
  h.record(2e6);
  h.record(9e4);
  EXPECT_DOUBLE_EQ(h.min_ns(), 5e3);
  EXPECT_DOUBLE_EQ(h.max_ns(), 2e6);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min_ns(), 0.0);
}

TEST(Histogram, QuantileWithinBucketError) {
  // All mass at ~1ms: any quantile should land within the same power-of-two
  // bucket (factor-2 accuracy).
  Histogram h;
  for (int i = 0; i < 1'000; ++i) h.record(1e6);
  const double p50 = h.quantile_ns(0.5);
  EXPECT_GE(p50, 0.5e6);
  EXPECT_LE(p50, 2e6);
}

TEST(Histogram, QuantilesMonotone) {
  Histogram h;
  for (int i = 1; i <= 1'000; ++i) h.record(i * 1e4);
  EXPECT_LE(h.quantile_ns(0.5), h.quantile_ns(0.9));
  EXPECT_LE(h.quantile_ns(0.9), h.quantile_ns(0.99));
  EXPECT_LE(h.quantile_ns(0.99), h.max_ns());
}

TEST(Histogram, QuantileNeverExceedsMax) {
  Histogram h;
  h.record(3e6);
  EXPECT_LE(h.quantile_ns(0.99), 3e6);
}

TEST(Histogram, MergeCombinesCountsAndExtremes) {
  Histogram a, b;
  a.record(1e6);
  b.record(4e6);
  b.record(2e3);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min_ns(), 2e3);
  EXPECT_DOUBLE_EQ(a.max_ns(), 4e6);
}

TEST(Histogram, MergeIntoEmpty) {
  Histogram a, b;
  b.record(7e5);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min_ns(), 7e5);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h;
  h.record(1e6);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.max_ns(), 0.0);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h;
  h.record(1e6);
  const std::string s = h.summary_ms();
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace asyncml::support
