#include "support/histogram.hpp"

#include <gtest/gtest.h>

namespace asyncml::support {
namespace {

TEST(Histogram, EmptyHistogramZeroes) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.quantile_ns(0.5), 0.0);
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  h.record(1e6);
  h.record(3e6);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 2e6);
}

TEST(Histogram, MinMaxTracked) {
  Histogram h;
  h.record(5e3);
  h.record(2e6);
  h.record(9e4);
  EXPECT_DOUBLE_EQ(h.min_ns(), 5e3);
  EXPECT_DOUBLE_EQ(h.max_ns(), 2e6);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min_ns(), 0.0);
}

TEST(Histogram, QuantileWithinBucketError) {
  // All mass at ~1ms: any quantile should land within the same power-of-two
  // bucket (factor-2 accuracy).
  Histogram h;
  for (int i = 0; i < 1'000; ++i) h.record(1e6);
  const double p50 = h.quantile_ns(0.5);
  EXPECT_GE(p50, 0.5e6);
  EXPECT_LE(p50, 2e6);
}

TEST(Histogram, QuantilesMonotone) {
  Histogram h;
  for (int i = 1; i <= 1'000; ++i) h.record(i * 1e4);
  EXPECT_LE(h.quantile_ns(0.5), h.quantile_ns(0.9));
  EXPECT_LE(h.quantile_ns(0.9), h.quantile_ns(0.99));
  EXPECT_LE(h.quantile_ns(0.99), h.max_ns());
}

TEST(Histogram, QuantileNeverExceedsMax) {
  Histogram h;
  h.record(3e6);
  EXPECT_LE(h.quantile_ns(0.99), 3e6);
}

TEST(Histogram, MergeCombinesCountsAndExtremes) {
  Histogram a, b;
  a.record(1e6);
  b.record(4e6);
  b.record(2e3);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min_ns(), 2e3);
  EXPECT_DOUBLE_EQ(a.max_ns(), 4e6);
}

TEST(Histogram, MergeIntoEmpty) {
  Histogram a, b;
  b.record(7e5);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.min_ns(), 7e5);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h;
  h.record(1e6);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
  EXPECT_EQ(h.max_ns(), 0.0);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h;
  h.record(1e6);
  const std::string s = h.summary_ms();
  EXPECT_NE(s.find("n=1"), std::string::npos);
}

TEST(Histogram, CountBelowExactAtPowerOfTwoBoundaries) {
  // Buckets are [2^i, 2^(i+1)), so a power-of-two threshold lands exactly on
  // a bucket edge and count_below is exact, not a bound.
  Histogram h;
  h.record(1.0);
  h.record(2.0);
  h.record(3.0);
  h.record(4.0);
  h.record(8.0);
  EXPECT_EQ(h.count_below(2.0), 1u);
  EXPECT_EQ(h.count_below(4.0), 3u);
  EXPECT_EQ(h.count_below(8.0), 4u);
  EXPECT_EQ(h.count_below(16.0), 5u);
}

TEST(Histogram, CountBelowIsLowerBoundOffBoundary) {
  Histogram h;
  h.record(3.0);  // bucket [2, 4)
  // 3.5 cuts through the bucket: only fully-below buckets count.
  EXPECT_EQ(h.count_below(3.5), 0u);
  EXPECT_EQ(h.count_below(4.0), 1u);
}

TEST(Histogram, CountBelowEmptyAndZeroThreshold) {
  Histogram h;
  EXPECT_EQ(h.count_below(1e9), 0u);
  h.record(5.0);
  EXPECT_EQ(h.count_below(0.0), 0u);
}

TEST(Histogram, QuantileAtBucketEdgeCapsAtMax) {
  // A single record exactly at a bucket's lower edge: the bucket midpoint
  // (1536) exceeds the observed max, so the quantile caps at max.
  Histogram h;
  h.record(1024.0);
  EXPECT_DOUBLE_EQ(h.quantile_ns(0.5), 1024.0);
  EXPECT_DOUBLE_EQ(h.quantile_ns(0.99), 1024.0);
}

TEST(Histogram, QuantileEmptyIsZeroAtEveryQ) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile_ns(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile_ns(0.99), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile_ns(1.0), 0.0);
}

TEST(Histogram, JsonRoundTripPreservesAggregates) {
  Histogram h;
  h.record(5e3);
  h.record(1e6);
  h.record(1e6);
  h.record(7e8);
  const Histogram back = Histogram::from_json(h.to_json());
  EXPECT_EQ(back.count(), h.count());
  EXPECT_DOUBLE_EQ(back.min_ns(), h.min_ns());
  EXPECT_DOUBLE_EQ(back.max_ns(), h.max_ns());
  EXPECT_DOUBLE_EQ(back.mean_ns(), h.mean_ns());
  EXPECT_DOUBLE_EQ(back.quantile_ns(0.5), h.quantile_ns(0.5));
  EXPECT_DOUBLE_EQ(back.quantile_ns(0.99), h.quantile_ns(0.99));
  EXPECT_EQ(back.count_below(1 << 20), h.count_below(1 << 20));
}

TEST(Histogram, JsonRoundTripEmpty) {
  const Histogram back = Histogram::from_json(Histogram().to_json());
  EXPECT_EQ(back.count(), 0u);
  EXPECT_DOUBLE_EQ(back.max_ns(), 0.0);
  EXPECT_DOUBLE_EQ(back.quantile_ns(0.5), 0.0);
}

TEST(Histogram, FromJsonGarbageYieldsEmpty) {
  const Histogram h = Histogram::from_json("not json at all");
  EXPECT_EQ(h.count(), 0u);
}

}  // namespace
}  // namespace asyncml::support
