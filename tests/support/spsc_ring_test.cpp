#include "support/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace asyncml::support {
namespace {

TEST(SpscRing, PushPopBasic) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_EQ(ring.try_pop().value(), 1);
  EXPECT_EQ(ring.try_pop().value(), 2);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, CapacityRoundedUp) {
  SpscRing<int> ring(5);
  EXPECT_GE(ring.capacity(), 5u);
}

TEST(SpscRing, FullRingRefusesPush) {
  SpscRing<int> ring(2);
  std::size_t pushed = 0;
  while (ring.try_push(static_cast<int>(pushed))) ++pushed;
  EXPECT_EQ(pushed, ring.capacity());
  (void)ring.try_pop();
  EXPECT_TRUE(ring.try_push(99));
}

TEST(SpscRing, OrderPreservedAcrossWraparound) {
  SpscRing<int> ring(4);
  int next_push = 0, next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    while (ring.try_push(next_push)) ++next_push;
    while (auto v = ring.try_pop()) {
      EXPECT_EQ(*v, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, next_pop);
}

TEST(SpscRing, ConcurrentProducerConsumerDeliversInOrder) {
  SpscRing<int> ring(1024);
  constexpr int kItems = 200'000;
  std::thread producer([&] {
    for (int i = 0; i < kItems;) {
      if (ring.try_push(i)) ++i;
    }
  });
  int expected = 0;
  while (expected < kItems) {
    if (auto v = ring.try_pop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
}

}  // namespace
}  // namespace asyncml::support
