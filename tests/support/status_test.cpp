#include "support/status.hpp"

#include <gtest/gtest.h>

namespace asyncml::support {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s(StatusCode::kNotFound, "missing thing");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: missing thing");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status(StatusCode::kInternal, "x"), Status(StatusCode::kInternal, "x"));
  EXPECT_FALSE(Status(StatusCode::kInternal, "x") == Status(StatusCode::kInternal, "y"));
}

TEST(StatusCodeName, AllCodesNamed) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_STREQ(status_code_name(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(status_code_name(StatusCode::kFailedPrecondition), "FAILED_PRECONDITION");
  EXPECT_STREQ(status_code_name(StatusCode::kCancelled), "CANCELLED");
  EXPECT_STREQ(status_code_name(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(status_code_name(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().is_ok());
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(Status(StatusCode::kUnavailable, "down"));
  EXPECT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), StatusCode::kUnavailable);
}

TEST(StatusOr, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "payload");
}

TEST(StatusOr, WorksWithMoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(3));
  ASSERT_TRUE(v.is_ok());
  EXPECT_EQ(*std::move(v).value(), 3);
}

}  // namespace
}  // namespace asyncml::support
