// FIPS 180-4 known-answer tests for the dependency-free SHA-256 the disk
// tier content-addresses blobs with (support/sha256.hpp), plus the
// incremental-split equivalence the streaming interface promises and the
// hex round-trip the blob filenames rely on.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/sha256.hpp"

namespace asyncml::support {
namespace {

std::span<const std::uint8_t> bytes_of(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

std::string hex_of(const std::string& s) { return sha256_hex(sha256(bytes_of(s))); }

// NIST FIPS 180-4 (and SHA-2 test-vector appendix) known answers.
TEST(Sha256, FipsKnownAnswerVectors) {
  EXPECT_EQ(hex_of(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex_of("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  // Two-block message ("abcdbcde...nopq", 448 bits).
  EXPECT_EQ(hex_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // 896-bit message spanning the padding boundary.
  EXPECT_EQ(hex_of("abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                   "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1");
}

TEST(Sha256, MillionRepeatedAs) {
  const std::string a(1'000'000, 'a');
  EXPECT_EQ(hex_of(a),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// Every message length crossing the 64-byte block boundary digests the same
// whether fed whole or split at any point — chunking must be invisible.
TEST(Sha256, IncrementalSplitsMatchOneShot) {
  std::vector<std::uint8_t> data(200);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  for (std::size_t len : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 127u, 128u, 200u}) {
    const std::span<const std::uint8_t> msg(data.data(), len);
    const Sha256Digest oneshot = sha256(msg);
    for (std::size_t cut = 0; cut <= len; cut += (len < 8 ? 1 : 7)) {
      Sha256 h;
      h.update(msg.subspan(0, cut));
      h.update(msg.subspan(cut));
      EXPECT_EQ(h.finalize(), oneshot) << "len " << len << " cut " << cut;
    }
  }
}

TEST(Sha256, ResetReusesAnInstance) {
  Sha256 h;
  h.update(bytes_of("abc"));
  const Sha256Digest first = h.finalize();
  h.reset();
  h.update(bytes_of("abc"));
  EXPECT_EQ(h.finalize(), first);
  h.reset();
  h.update(bytes_of("abd"));
  EXPECT_NE(h.finalize(), first);
}

TEST(Sha256, HexRoundTrip) {
  const Sha256Digest digest = sha256(bytes_of("round trip"));
  const std::string hex = sha256_hex(digest);
  ASSERT_EQ(hex.size(), 64u);
  const auto parsed = sha256_from_hex(hex);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, digest);
}

TEST(Sha256, FromHexRejectsMalformedInput) {
  EXPECT_FALSE(sha256_from_hex("").has_value());
  EXPECT_FALSE(sha256_from_hex("abc").has_value());
  EXPECT_FALSE(sha256_from_hex(std::string(63, 'a')).has_value());
  EXPECT_FALSE(sha256_from_hex(std::string(65, 'a')).has_value());
  std::string bad(64, 'a');
  bad[10] = 'g';  // non-hex character
  EXPECT_FALSE(sha256_from_hex(bad).has_value());
}

TEST(Sha256, ZeroSentinel) {
  Sha256Digest zero{};
  EXPECT_TRUE(sha256_is_zero(zero));
  zero[31] = 1;
  EXPECT_FALSE(sha256_is_zero(zero));
  EXPECT_FALSE(sha256_is_zero(sha256(bytes_of(""))));
}

}  // namespace
}  // namespace asyncml::support
