#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace asyncml::support {
namespace {

TEST(RngStream, DeterministicForSameSeed) {
  RngStream a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngStream, DifferentSeedsDiffer) {
  RngStream a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(RngStream, SubstreamIsDeterministic) {
  RngStream root(7);
  RngStream s1 = root.substream(3);
  RngStream s2 = RngStream(7).substream(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(s1(), s2());
}

TEST(RngStream, SubstreamIndependentOfParentConsumption) {
  // Deriving a substream depends only on the seed path, not on how many
  // numbers the parent has produced.
  RngStream a(9);
  (void)a();
  (void)a();
  RngStream b(9);
  EXPECT_EQ(a.substream(5)(), b.substream(5)());
}

TEST(RngStream, AdjacentSubstreamsDiffer) {
  RngStream root(1234);
  RngStream s0 = root.substream(0);
  RngStream s1 = root.substream(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (s0() == s1()) ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(RngStream, NestedSubstreamPathsAreOrderSensitive) {
  RngStream root(5);
  RngStream ab = root.substream(1).substream(2);
  RngStream ba = root.substream(2).substream(1);
  EXPECT_NE(ab(), ba());
}

TEST(RngStream, NextDoubleInUnitInterval) {
  RngStream rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngStream, NextDoubleMeanNearHalf) {
  RngStream rng(13);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngStream, UniformRespectsBounds) {
  RngStream rng(17);
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.uniform(1.5, 2.5);
    EXPECT_GE(x, 1.5);
    EXPECT_LT(x, 2.5);
  }
}

TEST(RngStream, NextBelowInRange) {
  RngStream rng(19);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
  }
}

TEST(RngStream, NextBelowCoversAllValues) {
  RngStream rng(23);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngStream, GaussianMomentsRoughlyStandard) {
  RngStream rng(29);
  const int n = 100'000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngStream, BernoulliFrequencyMatchesProbability) {
  RngStream rng(31);
  const int n = 100'000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.1) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.1, 0.01);
}

TEST(SampleWithoutReplacement, ReturnsDistinctInRange) {
  RngStream rng(37);
  const auto sample = sample_without_replacement(rng, 100, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(SampleWithoutReplacement, KEqualsNReturnsEverything) {
  RngStream rng(41);
  const auto sample = sample_without_replacement(rng, 10, 10);
  ASSERT_EQ(sample.size(), 10u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(SampleWithoutReplacement, KGreaterThanNClampsToN) {
  RngStream rng(43);
  EXPECT_EQ(sample_without_replacement(rng, 5, 50).size(), 5u);
}

TEST(SampleWithoutReplacement, UniformCoverage) {
  // Every index should be picked roughly equally often over many draws.
  RngStream rng(47);
  std::vector<int> counts(20, 0);
  const int trials = 20'000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t idx : sample_without_replacement(rng, 20, 5)) counts[idx] += 1;
  }
  const double expected = trials * 5.0 / 20.0;
  for (int c : counts) EXPECT_NEAR(c, expected, expected * 0.1);
}

TEST(SplitMix, DeriveSeedOrderSensitive) {
  EXPECT_NE(derive_seed(derive_seed(1, 2), 3), derive_seed(derive_seed(1, 3), 2));
}

}  // namespace
}  // namespace asyncml::support
