#include "support/ewma.hpp"

#include <gtest/gtest.h>

namespace asyncml::support {
namespace {

TEST(Ewma, FirstObservationSetsValue) {
  Ewma e(0.2);
  e.observe(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  EXPECT_DOUBLE_EQ(e.mean(), 10.0);
}

TEST(Ewma, BlendsTowardNewObservations) {
  Ewma e(0.5);
  e.observe(0.0);
  e.observe(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.observe(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(Ewma, MeanIsPlainAverage) {
  Ewma e(0.1);
  e.observe(1.0);
  e.observe(2.0);
  e.observe(3.0);
  EXPECT_DOUBLE_EQ(e.mean(), 2.0);
  EXPECT_EQ(e.count(), 3);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.3);
  for (int i = 0; i < 100; ++i) e.observe(4.2);
  EXPECT_NEAR(e.value(), 4.2, 1e-9);
}

TEST(Ewma, TracksRegimeChangeFasterThanMean) {
  // A worker that *becomes* a straggler: EWMA should approach the new level
  // while the plain mean lags — the reason STAT uses EWMA.
  Ewma e(0.3);
  for (int i = 0; i < 50; ++i) e.observe(1.0);
  for (int i = 0; i < 20; ++i) e.observe(10.0);
  EXPECT_GT(e.value(), 9.0);
  EXPECT_LT(e.mean(), 4.5);
}

TEST(Ewma, ResetRestoresInitialState) {
  Ewma e(0.2);
  e.observe(5.0);
  e.reset();
  EXPECT_EQ(e.count(), 0);
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
  EXPECT_DOUBLE_EQ(e.mean(), 0.0);
}

}  // namespace
}  // namespace asyncml::support
