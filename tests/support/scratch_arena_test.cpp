// ScratchArena: per-thread buffer reuse for the fused batch kernels.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "support/scratch_arena.hpp"

namespace asyncml::support {
namespace {

TEST(ScratchArena, ReusesReturnedBuffers) {
  ScratchArena arena;
  {
    auto a = arena.doubles(128);
    EXPECT_EQ(a.span().size(), 128u);
  }  // returned to the pool here
  const std::uint64_t leases_before = arena.stats().leases;
  const std::uint64_t hits_before = arena.stats().pool_hits;
  {
    auto b = arena.doubles(64);
    EXPECT_EQ(b.span().size(), 64u);
  }
  EXPECT_EQ(arena.stats().leases, leases_before + 1);
  EXPECT_EQ(arena.stats().pool_hits, hits_before + 1);  // no fresh allocation
}

TEST(ScratchArena, NestedLeasesGetDistinctBuffers) {
  ScratchArena arena;
  auto a = arena.zeroed_doubles(32);
  auto b = arena.zeroed_doubles(32);  // taken while `a` is live
  EXPECT_NE(a.span().data(), b.span().data());
  a.span()[0] = 1.0;
  EXPECT_EQ(b.span()[0], 0.0);
}

TEST(ScratchArena, ZeroedDoublesAreZeroAfterReuse) {
  ScratchArena arena;
  {
    auto dirty = arena.doubles(16);
    for (double& v : dirty.vec()) v = 42.0;
  }
  auto clean = arena.zeroed_doubles(16);
  for (double v : clean.span()) EXPECT_EQ(v, 0.0);
}

TEST(ScratchArena, IndicesLeaseStartsEmptyWithCapacity) {
  ScratchArena arena;
  {
    auto idx = arena.indices(100);
    for (std::uint32_t i = 0; i < 50; ++i) idx.vec().push_back(i);
  }
  auto again = arena.indices(10);
  EXPECT_TRUE(again.vec().empty());
  EXPECT_GE(again.vec().capacity(), 10u);
}

TEST(ScratchArena, MoveTransfersOwnership) {
  ScratchArena arena;
  auto a = arena.doubles(8);
  auto b = std::move(a);
  EXPECT_EQ(b.span().size(), 8u);
  // `a` must not return its (moved-from) buffer; only one return happens.
  const std::uint64_t leases = arena.stats().leases;
  EXPECT_EQ(leases, 1u);
}

// TSan-facing reuse test: arenas are thread_local, so hammering
// ScratchArena::local() from many threads concurrently must be race-free
// and every thread must see its own buffers.
TEST(ScratchArena, ThreadLocalArenasAreIndependent) {
  constexpr int kThreads = 4;
  constexpr int kIterations = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failures] {
      for (int it = 0; it < kIterations; ++it) {
        auto buf = ScratchArena::local().zeroed_doubles(256);
        const double mark = static_cast<double>(t * 1'000 + it);
        for (double& v : buf.vec()) v = mark;
        for (double v : buf.span()) {
          if (v != mark) failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (ScratchArena::local().stats().pool_hits + 1 <
          ScratchArena::local().stats().leases) {
        failures.fetch_add(1, std::memory_order_relaxed);  // reuse must kick in
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace asyncml::support
