#include "optim/objective.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "linalg/solve.hpp"

namespace asyncml::optim {
namespace {

TEST(FullObjective, ZeroAtTrueParameterNoiseless) {
  const auto problem = data::synthetic::tiny(50, 6, 0.0, 1);
  LeastSquaresLoss loss;
  EXPECT_NEAR(full_objective(problem.dataset, loss, problem.w_star), 0.0, 1e-18);
}

TEST(FullObjective, PositiveAwayFromOptimum) {
  const auto problem = data::synthetic::tiny(50, 6, 0.0, 1);
  LeastSquaresLoss loss;
  linalg::DenseVector w(6);  // zero vector
  EXPECT_GT(full_objective(problem.dataset, loss, w), 0.1);
}

TEST(FullObjective, HandMadeExample) {
  // Two points: x = [1], labels 1 and 3; w = [2] -> mean of (2-1)^2,(2-3)^2 = 1.
  linalg::DenseMatrix x(2, 1);
  x.at(0, 0) = 1.0;
  x.at(1, 0) = 1.0;
  data::Dataset d("hand", std::move(x), linalg::DenseVector{1.0, 3.0});
  LeastSquaresLoss loss;
  EXPECT_DOUBLE_EQ(full_objective(d, loss, linalg::DenseVector{2.0}), 1.0);
}

TEST(FullGradient, ZeroAtLeastSquaresOptimum) {
  const auto problem = data::synthetic::tiny(60, 5, 0.1, 2);  // noisy
  const auto w_opt = linalg::least_squares_optimum(
      problem.dataset.dense_features(), problem.dataset.labels(), 0.0);
  ASSERT_TRUE(w_opt.is_ok());
  LeastSquaresLoss loss;
  const linalg::DenseVector g = full_gradient(problem.dataset, loss, w_opt.value());
  EXPECT_LT(linalg::nrm2(g.span()), 1e-8);
}

TEST(FullGradient, MatchesFiniteDifferenceOfObjective) {
  const auto problem = data::synthetic::tiny(30, 4, 0.2, 3);
  LogisticLoss loss;  // use a nonlinear loss for a stronger check
  // Binarize labels for logistic.
  linalg::DenseVector labels(problem.dataset.rows());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = problem.dataset.labels()[i] >= 0 ? 1.0 : -1.0;
  }
  data::Dataset d("logit", problem.dataset.dense_features(), labels);

  linalg::DenseVector w(4);
  w[0] = 0.3;
  w[2] = -0.7;
  const linalg::DenseVector g = full_gradient(d, loss, w);
  const double eps = 1e-6;
  for (std::size_t j = 0; j < 4; ++j) {
    linalg::DenseVector wp = w, wm = w;
    wp[j] += eps;
    wm[j] -= eps;
    const double fd = (full_objective(d, loss, wp) - full_objective(d, loss, wm)) /
                      (2 * eps);
    EXPECT_NEAR(g[j], fd, 1e-5);
  }
}

}  // namespace
}  // namespace asyncml::optim
