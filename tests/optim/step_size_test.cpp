#include "optim/step_size.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace asyncml::optim {
namespace {

TEST(ConstantStep, AlwaysSame) {
  const StepSchedule s = constant_step(0.3);
  EXPECT_DOUBLE_EQ(s(0), 0.3);
  EXPECT_DOUBLE_EQ(s(1'000'000), 0.3);
}

TEST(InverseDecay, MatchesFormula) {
  const StepSchedule s = inverse_decay_step(1.0, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(s(0), 0.5);
  EXPECT_DOUBLE_EQ(s(4), 1.0 / 4.0);
}

TEST(InvSqrt, MatchesMllibDecay) {
  const StepSchedule s = inv_sqrt_step(2.0);
  EXPECT_DOUBLE_EQ(s(0), 2.0);
  EXPECT_DOUBLE_EQ(s(3), 1.0);
  EXPECT_NEAR(s(99), 0.2, 1e-12);
}

TEST(Schedules, MonotoneNonIncreasing) {
  for (const StepSchedule& s :
       {inverse_decay_step(1.0, 1.0, 0.1), inv_sqrt_step(1.0)}) {
    double prev = s(0);
    for (std::uint64_t k = 1; k < 200; k += 7) {
      const double cur = s(k);
      EXPECT_LE(cur, prev + 1e-15);
      prev = cur;
    }
  }
}

TEST(Schedules, AlwaysPositive) {
  const StepSchedule s = inv_sqrt_step(0.5);
  for (std::uint64_t k = 0; k < 10'000; k += 97) EXPECT_GT(s(k), 0.0);
}

}  // namespace
}  // namespace asyncml::optim
