#include "optim/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace asyncml::optim {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Checkpoint, RoundTripModelAndAux) {
  SolverCheckpoint cp;
  cp.update_index = 1234;
  cp.model = linalg::DenseVector{1.0, -2.5, 3.25};
  cp.aux["alpha_bar"] = linalg::DenseVector{0.5, 0.5, 0.5};
  cp.aux["momentum"] = linalg::DenseVector{9.0};

  const std::string path = temp_path("asyncml_ckpt_roundtrip.bin");
  ASSERT_TRUE(save_checkpoint(path, cp).is_ok());

  const auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.is_ok());
  const SolverCheckpoint& back = loaded.value();
  EXPECT_EQ(back.update_index, 1234u);
  EXPECT_EQ(back.model, cp.model);
  ASSERT_EQ(back.aux.size(), 2u);
  EXPECT_EQ(back.aux.at("alpha_bar"), cp.aux.at("alpha_bar"));
  EXPECT_EQ(back.aux.at("momentum"), cp.aux.at("momentum"));
  std::filesystem::remove(path);
}

TEST(Checkpoint, EmptyAuxAllowed) {
  SolverCheckpoint cp;
  cp.model = linalg::DenseVector{42.0};
  const std::string path = temp_path("asyncml_ckpt_noaux.bin");
  ASSERT_TRUE(save_checkpoint(path, cp).is_ok());
  const auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_TRUE(loaded.value().aux.empty());
  std::filesystem::remove(path);
}

TEST(Checkpoint, ReservedAuxNameRejected) {
  SolverCheckpoint cp;
  cp.model = linalg::DenseVector{1.0};
  cp.aux["model"] = linalg::DenseVector{2.0};
  EXPECT_FALSE(save_checkpoint(temp_path("asyncml_ckpt_bad.bin"), cp).is_ok());
}

TEST(Checkpoint, MissingFileIsNotFound) {
  const auto loaded = load_checkpoint("/nonexistent/dir/ckpt.bin");
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), support::StatusCode::kNotFound);
}

TEST(Checkpoint, BadMagicRejected) {
  const std::string path = temp_path("asyncml_ckpt_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint at all";
  }
  const auto loaded = load_checkpoint(path);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), support::StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(Checkpoint, TruncatedFileRejected) {
  SolverCheckpoint cp;
  cp.update_index = 7;
  cp.model = linalg::DenseVector(64, 1.0);
  const std::string path = temp_path("asyncml_ckpt_trunc.bin");
  ASSERT_TRUE(save_checkpoint(path, cp).is_ok());
  // Truncate mid-vector.
  std::filesystem::resize_file(path, 40);
  EXPECT_FALSE(load_checkpoint(path).is_ok());
  std::filesystem::remove(path);
}

TEST(Checkpoint, V2RoundTripCarriesVersionRoundAndCounters) {
  SolverCheckpoint cp;
  cp.update_index = 100;
  cp.model_version = 97;
  cp.round = 412;
  cp.model = linalg::DenseVector{1.0, 2.0};
  cp.counters["tasks_completed"] = 1234;
  cp.counters["retries"] = 7;

  const std::string path = temp_path("asyncml_ckpt_v2.bin");
  ASSERT_TRUE(save_checkpoint(path, cp).is_ok());
  const auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value().model_version, 97u);
  EXPECT_EQ(loaded.value().round, 412u);
  ASSERT_EQ(loaded.value().counters.size(), 2u);
  EXPECT_EQ(loaded.value().counters.at("tasks_completed"), 1234u);
  EXPECT_EQ(loaded.value().counters.at("retries"), 7u);
  std::filesystem::remove(path);
}

namespace raw {

void u32(std::ofstream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void u64(std::ofstream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void name(std::ofstream& out, const std::string& s) {
  u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}
/// Magic + v2 header (update index, model version, round, 0 counters).
void v2_header(std::ofstream& out) {
  out.write("AMLCKPT2", 8);
  u64(out, 1);
  u64(out, 1);
  u64(out, 1);
  u32(out, 0);
}

}  // namespace raw

TEST(Checkpoint, V1FileStillLoads) {
  const std::string path = temp_path("asyncml_ckpt_v1.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("AMLCKPT1", 8);
    raw::u64(out, 55);  // update index; v1 has no version/round/counters
    raw::u32(out, 1);
    raw::name(out, "model");
    raw::u64(out, 2);
    const double values[2] = {4.0, 8.0};
    out.write(reinterpret_cast<const char*>(values), sizeof(values));
  }
  const auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().update_index, 55u);
  EXPECT_EQ(loaded.value().model_version, 0u);  // v2-only fields come back zero
  EXPECT_EQ(loaded.value().round, 0u);
  EXPECT_TRUE(loaded.value().counters.empty());
  EXPECT_EQ(loaded.value().model, (linalg::DenseVector{4.0, 8.0}));
  std::filesystem::remove(path);
}

TEST(Checkpoint, VectorLengthOverrunningFileRejectedWithoutAllocating) {
  // A corrupted dim within the sanity bound but far past end-of-file must be
  // caught by the bytes-remaining check, not by attempting the allocation.
  const std::string path = temp_path("asyncml_ckpt_overrun.bin");
  {
    std::ofstream out(path, std::ios::binary);
    raw::v2_header(out);
    raw::u32(out, 1);
    raw::name(out, "model");
    raw::u64(out, 1ULL << 31);  // claims 16 GiB of doubles; file holds none
  }
  const auto loaded = load_checkpoint(path);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), support::StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(Checkpoint, AbsurdVectorDimRejected) {
  const std::string path = temp_path("asyncml_ckpt_absurd.bin");
  {
    std::ofstream out(path, std::ios::binary);
    raw::v2_header(out);
    raw::u32(out, 1);
    raw::name(out, "model");
    raw::u64(out, (1ULL << 32) + 1);
  }
  EXPECT_FALSE(load_checkpoint(path).is_ok());
  std::filesystem::remove(path);
}

TEST(Checkpoint, AbsurdCounterCountRejected) {
  const std::string path = temp_path("asyncml_ckpt_counters.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("AMLCKPT2", 8);
    raw::u64(out, 1);
    raw::u64(out, 1);
    raw::u64(out, 1);
    raw::u32(out, 50'000);  // > the 10'000 sanity cap
  }
  EXPECT_FALSE(load_checkpoint(path).is_ok());
  std::filesystem::remove(path);
}

TEST(Checkpoint, MissingModelVectorRejected) {
  const std::string path = temp_path("asyncml_ckpt_nomodel.bin");
  {
    std::ofstream out(path, std::ios::binary);
    raw::v2_header(out);
    raw::u32(out, 1);
    raw::name(out, "alpha_bar");  // aux only; "model" never appears
    raw::u64(out, 1);
    const double value = 1.0;
    out.write(reinterpret_cast<const char*>(&value), sizeof(value));
  }
  const auto loaded = load_checkpoint(path);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), support::StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(Checkpoint, ResumeReproducesContinuation) {
  // The intended workflow: run K updates, checkpoint, restart from the file,
  // continue — the continued state matches an uninterrupted run because the
  // checkpoint carries everything the serial SAGA server owns.
  // (Serial stand-in for the driver loop; the distributed solvers' server
  // state is exactly {w, alpha_bar, update index}.)
  linalg::DenseVector w{1.0, 2.0};
  linalg::DenseVector aux{0.1, 0.2};
  for (int k = 0; k < 5; ++k) {
    w[0] -= 0.1 * aux[0];
    aux[1] += 0.01;
  }

  SolverCheckpoint cp;
  cp.update_index = 5;
  cp.model = w;
  cp.aux["state"] = aux;
  const std::string path = temp_path("asyncml_ckpt_resume.bin");
  ASSERT_TRUE(save_checkpoint(path, cp).is_ok());

  auto restored = load_checkpoint(path);
  ASSERT_TRUE(restored.is_ok());
  linalg::DenseVector w2 = restored.value().model;
  linalg::DenseVector aux2 = restored.value().aux.at("state");
  for (std::uint64_t k = restored.value().update_index; k < 10; ++k) {
    w2[0] -= 0.1 * aux2[0];
    aux2[1] += 0.01;
  }

  // Uninterrupted reference.
  linalg::DenseVector w_ref{1.0, 2.0};
  linalg::DenseVector aux_ref{0.1, 0.2};
  for (int k = 0; k < 10; ++k) {
    w_ref[0] -= 0.1 * aux_ref[0];
    aux_ref[1] += 0.01;
  }
  EXPECT_EQ(w2, w_ref);
  EXPECT_EQ(aux2, aux_ref);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace asyncml::optim
