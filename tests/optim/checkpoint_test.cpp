#include "optim/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace asyncml::optim {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Checkpoint, RoundTripModelAndAux) {
  SolverCheckpoint cp;
  cp.update_index = 1234;
  cp.model = linalg::DenseVector{1.0, -2.5, 3.25};
  cp.aux["alpha_bar"] = linalg::DenseVector{0.5, 0.5, 0.5};
  cp.aux["momentum"] = linalg::DenseVector{9.0};

  const std::string path = temp_path("asyncml_ckpt_roundtrip.bin");
  ASSERT_TRUE(save_checkpoint(path, cp).is_ok());

  const auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.is_ok());
  const SolverCheckpoint& back = loaded.value();
  EXPECT_EQ(back.update_index, 1234u);
  EXPECT_EQ(back.model, cp.model);
  ASSERT_EQ(back.aux.size(), 2u);
  EXPECT_EQ(back.aux.at("alpha_bar"), cp.aux.at("alpha_bar"));
  EXPECT_EQ(back.aux.at("momentum"), cp.aux.at("momentum"));
  std::filesystem::remove(path);
}

TEST(Checkpoint, EmptyAuxAllowed) {
  SolverCheckpoint cp;
  cp.model = linalg::DenseVector{42.0};
  const std::string path = temp_path("asyncml_ckpt_noaux.bin");
  ASSERT_TRUE(save_checkpoint(path, cp).is_ok());
  const auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_TRUE(loaded.value().aux.empty());
  std::filesystem::remove(path);
}

TEST(Checkpoint, ReservedAuxNameRejected) {
  SolverCheckpoint cp;
  cp.model = linalg::DenseVector{1.0};
  cp.aux["model"] = linalg::DenseVector{2.0};
  EXPECT_FALSE(save_checkpoint(temp_path("asyncml_ckpt_bad.bin"), cp).is_ok());
}

TEST(Checkpoint, MissingFileIsNotFound) {
  const auto loaded = load_checkpoint("/nonexistent/dir/ckpt.bin");
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), support::StatusCode::kNotFound);
}

TEST(Checkpoint, BadMagicRejected) {
  const std::string path = temp_path("asyncml_ckpt_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint at all";
  }
  const auto loaded = load_checkpoint(path);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), support::StatusCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(Checkpoint, TruncatedFileRejected) {
  SolverCheckpoint cp;
  cp.update_index = 7;
  cp.model = linalg::DenseVector(64, 1.0);
  const std::string path = temp_path("asyncml_ckpt_trunc.bin");
  ASSERT_TRUE(save_checkpoint(path, cp).is_ok());
  // Truncate mid-vector.
  std::filesystem::resize_file(path, 40);
  EXPECT_FALSE(load_checkpoint(path).is_ok());
  std::filesystem::remove(path);
}

TEST(Checkpoint, ResumeReproducesContinuation) {
  // The intended workflow: run K updates, checkpoint, restart from the file,
  // continue — the continued state matches an uninterrupted run because the
  // checkpoint carries everything the serial SAGA server owns.
  // (Serial stand-in for the driver loop; the distributed solvers' server
  // state is exactly {w, alpha_bar, update index}.)
  linalg::DenseVector w{1.0, 2.0};
  linalg::DenseVector aux{0.1, 0.2};
  for (int k = 0; k < 5; ++k) {
    w[0] -= 0.1 * aux[0];
    aux[1] += 0.01;
  }

  SolverCheckpoint cp;
  cp.update_index = 5;
  cp.model = w;
  cp.aux["state"] = aux;
  const std::string path = temp_path("asyncml_ckpt_resume.bin");
  ASSERT_TRUE(save_checkpoint(path, cp).is_ok());

  auto restored = load_checkpoint(path);
  ASSERT_TRUE(restored.is_ok());
  linalg::DenseVector w2 = restored.value().model;
  linalg::DenseVector aux2 = restored.value().aux.at("state");
  for (std::uint64_t k = restored.value().update_index; k < 10; ++k) {
    w2[0] -= 0.1 * aux2[0];
    aux2[1] += 0.01;
  }

  // Uninterrupted reference.
  linalg::DenseVector w_ref{1.0, 2.0};
  linalg::DenseVector aux_ref{0.1, 0.2};
  for (int k = 0; k < 10; ++k) {
    w_ref[0] -= 0.1 * aux_ref[0];
    aux_ref[1] += 0.01;
  }
  EXPECT_EQ(w2, w_ref);
  EXPECT_EQ(aux2, aux_ref);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace asyncml::optim
