#include "optim/serial.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "optim/objective.hpp"

namespace asyncml::optim {
namespace {

TEST(SerialSgd, ReducesObjectiveOnNoiselessProblem) {
  const auto problem = data::synthetic::tiny(200, 8, 0.0, 1);
  LeastSquaresLoss loss;
  const auto w = serial_sgd(problem.dataset, loss, 300, 0.2,
                            inverse_decay_step(0.05, 1.0, 0.01), 7);
  EXPECT_LT(full_objective(problem.dataset, loss, w), 0.05);
}

TEST(SerialSgd, DeterministicPerSeed) {
  const auto problem = data::synthetic::tiny(50, 4, 0.0, 2);
  LeastSquaresLoss loss;
  const auto a = serial_sgd(problem.dataset, loss, 50, 0.3, constant_step(0.05), 9);
  const auto b = serial_sgd(problem.dataset, loss, 50, 0.3, constant_step(0.05), 9);
  EXPECT_EQ(a, b);
}

TEST(SerialSaga, LinearConvergenceOnNoiselessProblem) {
  // SAGA with a constant step converges to the exact optimum on smooth
  // strongly convex problems — the variance-reduction property itself.
  const auto problem = data::synthetic::tiny(150, 6, 0.0, 3);
  LeastSquaresLoss loss;
  const auto w = serial_saga(problem.dataset, loss, 600, 0.2, 0.02, 11);
  EXPECT_LT(full_objective(problem.dataset, loss, w), 1e-6);
}

TEST(SerialSaga, BeatsSgdAtEqualBudget) {
  const auto problem = data::synthetic::tiny(150, 6, 0.0, 4);
  LeastSquaresLoss loss;
  const auto w_saga = serial_saga(problem.dataset, loss, 400, 0.2, 0.02, 13);
  const auto w_sgd = serial_sgd(problem.dataset, loss, 400, 0.2,
                                inverse_decay_step(0.02, 1.0, 0.01), 13);
  EXPECT_LT(full_objective(problem.dataset, loss, w_saga),
            full_objective(problem.dataset, loss, w_sgd));
}

}  // namespace
}  // namespace asyncml::optim
