#include "optim/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace asyncml::optim {
namespace {

TEST(LeastSquares, ValueAndDerivative) {
  LeastSquaresLoss loss;
  EXPECT_DOUBLE_EQ(loss.value(3.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(loss.derivative(3.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(loss.value(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(loss.derivative(1.0, 1.0), 0.0);
}

TEST(Logistic, ValueAtZeroMarginIsLog2) {
  LogisticLoss loss;
  EXPECT_NEAR(loss.value(0.0, 1.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(loss.value(0.0, -1.0), std::log(2.0), 1e-12);
}

TEST(Logistic, CorrectConfidentPredictionLowLoss) {
  LogisticLoss loss;
  EXPECT_LT(loss.value(10.0, 1.0), 1e-4);
  EXPECT_GT(loss.value(-10.0, 1.0), 9.0);
}

TEST(Logistic, DerivativeSignOpposesLabel) {
  LogisticLoss loss;
  EXPECT_LT(loss.derivative(0.0, 1.0), 0.0);   // push margin up
  EXPECT_GT(loss.derivative(0.0, -1.0), 0.0);  // push margin down
}

TEST(Logistic, StableAtExtremeMargins) {
  LogisticLoss loss;
  EXPECT_TRUE(std::isfinite(loss.value(1e3, -1.0)));
  EXPECT_TRUE(std::isfinite(loss.value(-1e3, -1.0)));
  EXPECT_TRUE(std::isfinite(loss.derivative(1e3, -1.0)));
  EXPECT_NEAR(loss.derivative(1e3, 1.0), 0.0, 1e-12);
}

TEST(SquaredHinge, ZeroBeyondMargin) {
  SquaredHingeLoss loss;
  EXPECT_DOUBLE_EQ(loss.value(2.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(loss.derivative(2.0, 1.0), 0.0);
}

TEST(SquaredHinge, QuadraticInsideMargin) {
  SquaredHingeLoss loss;
  EXPECT_DOUBLE_EQ(loss.value(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(loss.derivative(0.0, 1.0), -2.0);
  EXPECT_DOUBLE_EQ(loss.value(0.5, 1.0), 0.25);
}

TEST(Factories, ProduceNamedLosses) {
  EXPECT_EQ(make_least_squares()->name(), "least_squares");
  EXPECT_EQ(make_logistic()->name(), "logistic");
  EXPECT_EQ(make_squared_hinge()->name(), "squared_hinge");
}

// Finite-difference check: derivative(m, y) ≈ dℓ/dm for all losses.
class LossGradientCheck : public ::testing::TestWithParam<const char*> {};

TEST_P(LossGradientCheck, MatchesFiniteDifference) {
  std::shared_ptr<const Loss> loss;
  const std::string which = GetParam();
  if (which == "ls") loss = make_least_squares();
  if (which == "logistic") loss = make_logistic();
  if (which == "hinge") loss = make_squared_hinge();
  ASSERT_NE(loss, nullptr);

  const double eps = 1e-6;
  for (double margin : {-2.0, -0.5, 0.0, 0.3, 1.7}) {
    for (double label : {-1.0, 1.0, 2.5}) {
      const double fd =
          (loss->value(margin + eps, label) - loss->value(margin - eps, label)) /
          (2 * eps);
      EXPECT_NEAR(loss->derivative(margin, label), fd, 1e-5)
          << which << " margin=" << margin << " label=" << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLosses, LossGradientCheck,
                         ::testing::Values("ls", "logistic", "hinge"));

TEST(LossKindDispatch, ConcreteLossesReportTheirKind) {
  EXPECT_EQ(make_least_squares()->kind(), LossKind::kLeastSquares);
  EXPECT_EQ(make_logistic()->kind(), LossKind::kLogistic);
  EXPECT_EQ(make_squared_hinge()->kind(), LossKind::kSquaredHinge);
}

TEST(LossKindDispatch, DerivativeBatchBitMatchesVirtualScalar) {
  std::vector<double> margins, labels;
  for (double m : {-37.5, -2.0, -0.5, -0.0, 0.0, 0.3, 1.0, 1.7, 40.0}) {
    for (double y : {-1.0, 1.0, 0.5, 2.5}) {
      margins.push_back(m);
      labels.push_back(y);
    }
  }
  for (const auto& loss :
       {make_least_squares(), make_logistic(), make_squared_hinge()}) {
    std::vector<double> coeffs(margins.size());
    derivative_batch(*loss, margins, labels, coeffs);
    for (std::size_t i = 0; i < margins.size(); ++i) {
      const double scalar = loss->derivative(margins[i], labels[i]);
      EXPECT_EQ(coeffs[i], scalar) << loss->name() << " margin=" << margins[i]
                                   << " label=" << labels[i];
    }
  }
}

TEST(LossKindDispatch, CustomLossFallsBackToVirtualPath) {
  struct ShiftedLoss final : Loss {
    [[nodiscard]] double value(double margin, double label) const override {
      return margin - label + 1.0;
    }
    [[nodiscard]] double derivative(double, double) const override { return 3.5; }
    [[nodiscard]] std::string name() const override { return "shifted"; }
  };
  const ShiftedLoss loss;
  EXPECT_EQ(loss.kind(), LossKind::kCustom);
  std::vector<double> margins = {0.0, 1.0};
  std::vector<double> labels = {1.0, -1.0};
  std::vector<double> coeffs(2);
  derivative_batch(loss, margins, labels, coeffs);
  EXPECT_EQ(coeffs[0], 3.5);
  EXPECT_EQ(coeffs[1], 3.5);
}

}  // namespace
}  // namespace asyncml::optim
