// Seeded chaos properties (docs/FAULTS.md): randomized-but-reproducible
// FaultPlans drawn from ASYNCML_CHAOS_SEED (default 1; the CI chaos job runs
// several seeds). The headline property is the determinism contract: for the
// synchronous scheduled solver, transient task failures, staged delays, and
// even a fail-stop worker crash change *where and when* work runs but never
// the bits of the iterate sequence — a retry or failover recomputes the same
// (seed, partition, seq) mini-batch, and results combine in partition order.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>

#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "optim/asgd.hpp"
#include "optim/objective.hpp"
#include "optim/sgd.hpp"

namespace asyncml::optim {
namespace {

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("ASYNCML_CHAOS_SEED"); env != nullptr) {
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 1;
}

Workload chaos_workload() {
  const auto problem = data::synthetic::tiny(120, 6, 0.0, /*seed=*/9);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  return Workload::create(dataset, 4, make_least_squares());
}

engine::Cluster::Config quiet_config(int workers) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 1;
  config.network.time_scale = 0.0;
  return config;
}

SolverConfig solver_config(std::uint64_t updates) {
  SolverConfig config;
  config.updates = updates;
  config.batch_fraction = 0.3;
  config.step = inverse_decay_step(0.05, 1.0, 0.01);
  config.service_floor_ms = 0.0;
  config.eval_every = updates;
  config.seed = 13;
  return config;
}

/// Draws a transient-chaos plan: task failures and small delays with random
/// keys and occurrence windows, plus (sometimes) one fail-stop crash. No
/// result drops and no submit rejections: those change *which* tasks make up
/// a synchronous round, which is outside the bit-identical contract.
engine::FaultPlan draw_transient_plan(std::mt19937_64& rng, int workers) {
  engine::FaultPlan plan;
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<std::uint64_t> times(1, 3);
  std::uniform_int_distribution<std::uint64_t> after(0, 6);
  std::uniform_int_distribution<int> worker(0, workers - 1);
  std::uniform_int_distribution<int> partition(0, 3);

  // One wildcard failure burst and one keyed one.
  plan.fail_task({}, times(rng), after(rng));
  plan.fail_task({.worker = worker(rng), .partition = partition(rng)},
                 times(rng), after(rng));
  // Small compute delay (real sleep: keep it tiny).
  plan.delay(engine::FaultStage::kCompute, 1.0, {.worker = worker(rng)},
             /*times=*/2, after(rng));
  if (coin(rng) == 1) {
    // A fail-stop crash mid-run; failover retries keep the round complete.
    std::uniform_int_distribution<std::uint64_t> at_task(3, 12);
    plan.crash_worker(worker(rng), at_task(rng));
  }
  return plan;
}

TEST(ChaosProperty, SyncSgdIsBitIdenticalUnderSeededTransientChaos) {
  const std::uint64_t seed = chaos_seed();
  std::printf("ASYNCML_CHAOS_SEED=%llu\n", static_cast<unsigned long long>(seed));
  const Workload workload = chaos_workload();
  const SolverConfig config = solver_config(15);

  engine::Cluster clean(quiet_config(3));
  const RunResult reference = ScheduledSgdSolver::run(clean, workload, config);

  for (int trial = 0; trial < 3; ++trial) {
    std::mt19937_64 rng(seed * 7919 + static_cast<std::uint64_t>(trial));
    engine::Cluster::Config faulty = quiet_config(3);
    faulty.faults = draw_transient_plan(rng, 3);
    engine::Cluster cluster(faulty);
    const RunResult chaotic = ScheduledSgdSolver::run(cluster, workload, config);

    ASSERT_EQ(chaotic.final_w.size(), reference.final_w.size());
    EXPECT_EQ(linalg::max_abs_diff(chaotic.final_w.span(), reference.final_w.span()),
              0.0)
        << "trial " << trial << " diverged under seed " << seed;
    EXPECT_DOUBLE_EQ(chaotic.final_error(), reference.final_error());
  }
}

TEST(ChaosProperty, AsgdRescuesDroppedResultsAndConverges) {
  // A dropped result is the nastiest injection: the task ran, the worker is
  // healthy, and no failure ever surfaces — only the lost-task sweep
  // (SchedulerPolicy::lost_task_factor) can un-wedge the partition.
  const Workload workload = chaos_workload();

  engine::Cluster::Config config = quiet_config(2);
  config.faults.drop_result({.partition = 1}, /*times=*/2, /*after=*/1);
  engine::Cluster cluster(config);

  SolverConfig solver = solver_config(100);
  solver.service_floor_ms = 0.5;  // a stable EWMA median for the horizon
  solver.lost_task_factor = 5.0;  // ~2.5 ms horizon: well inside the run
  const RunResult result = AsgdSolver::run(cluster, workload, solver);

  EXPECT_EQ(result.updates, 100u);
  EXPECT_LT(result.final_error(), 0.5);
  ASSERT_NE(cluster.faults(), nullptr);
  EXPECT_EQ(cluster.faults()->stats().results_dropped, 2u);
  // Each swallowed result was eventually written off and re-dispatched.
  EXPECT_GE(cluster.metrics().tasks_speculated.load(), 2u);
}

TEST(ChaosProperty, SyncSgdSurvivesSubmitRejectionWithoutWedging) {
  // A rejected submit unwinds its registration (scheduler dispatch paths):
  // the round simply runs one task short instead of pinning `outstanding`
  // forever and tripping the collect deadlock guard.
  const Workload workload = chaos_workload();
  engine::Cluster::Config config = quiet_config(2);
  config.faults.reject_submit({}, /*times=*/3, /*after=*/2);
  engine::Cluster cluster(config);

  const RunResult result = ScheduledSgdSolver::run(cluster, workload, solver_config(15));
  EXPECT_EQ(result.updates, 15u);
  EXPECT_LT(result.final_error(), 1.0);
  EXPECT_EQ(cluster.faults()->stats().submits_rejected, 3u);
}

}  // namespace
}  // namespace asyncml::optim
