// Elastic membership through the full AsyncContext stack: a dormant worker
// joins mid-run at its FaultPlan version and inherits its fair share of
// partitions; a crashed member is evicted and its partitions fail over to
// the survivors; an asynchronous solver rides through both.

#include <gtest/gtest.h>

#include <memory>

#include "core/async_context.hpp"
#include "data/synthetic.hpp"
#include "engine/cluster.hpp"
#include "optim/asgd.hpp"
#include "optim/objective.hpp"

namespace asyncml::core {
namespace {

engine::Cluster::Config quiet_config(int workers) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 1;
  config.network.time_scale = 0.0;
  return config;
}

std::shared_ptr<const engine::TaskFn> trivial_fn() {
  return std::make_shared<const engine::TaskFn>(
      [](engine::TaskContext& ctx) -> support::StatusOr<engine::Payload> {
        return engine::Payload::wrap<int>(ctx.partition);
      });
}

int total_owned(const AsyncScheduler& scheduler, int workers) {
  int total = 0;
  for (int w = 0; w < workers; ++w) {
    total += static_cast<int>(scheduler.partitions_of(w).size());
  }
  return total;
}

TEST(ElasticJoin, DormantWorkerIsAdmittedAtItsJoinVersion) {
  engine::Cluster::Config config = quiet_config(3);
  config.faults.join_worker(/*worker=*/2, /*at_version=*/5);
  engine::Cluster cluster(config);
  AsyncContext ac(cluster, /*num_partitions=*/6);

  // Before the join version: worker 2 is outside the member set, owns
  // nothing, and the six partitions are spread over the two live members.
  EXPECT_FALSE(ac.scheduler().is_member(2));
  EXPECT_TRUE(ac.scheduler().partitions_of(2).empty());
  EXPECT_EQ(ac.scheduler().partitions_of(0).size(), 3u);
  EXPECT_EQ(ac.scheduler().partitions_of(1).size(), 3u);
  EXPECT_EQ(ac.scheduler().member_count(), 2);

  const auto fn = trivial_fn();
  for (int round = 0; round < 10; ++round) {
    auto results = ac.sync_round_fn(fn, SubmitOptions{});
    ASSERT_EQ(results.size(), 6u);
    ac.advance_version();
  }

  // The membership poll admitted worker 2 once the version crossed 5 and
  // topped it up to its fair share (⌊6 / 3⌋ = 2) as partitions went idle.
  EXPECT_TRUE(ac.scheduler().is_member(2));
  EXPECT_EQ(ac.scheduler().member_count(), 3);
  EXPECT_EQ(ac.scheduler().partitions_of(2).size(), 2u);
  EXPECT_EQ(total_owned(ac.scheduler(), 3), 6);

  // And it is genuinely pulling its weight, not just holding ownership.
  const StatSnapshot stat = ac.stat();
  EXPECT_GT(stat.workers[2].tasks_completed, 0u);
}

TEST(ElasticJoin, CrashedMemberFailsOverToSurvivors) {
  engine::Cluster::Config config = quiet_config(2);
  // Worker 1 dies at its third dequeue: mid-way through the second round.
  config.faults.crash_worker(/*worker=*/1, /*at_task=*/3);
  engine::Cluster cluster(config);
  AsyncContext ac(cluster, /*num_partitions=*/4);

  const auto fn = trivial_fn();
  for (int round = 0; round < 6; ++round) {
    // Every round still completes: the crash-synthesized kUnavailable
    // failures ride the retry path onto the surviving worker.
    auto results = ac.sync_round_fn(fn, SubmitOptions{});
    ASSERT_EQ(results.size(), 4u) << "round " << round;
    for (const TaggedResult& r : results) {
      EXPECT_TRUE(r.result.ok());
    }
    ac.advance_version();
  }

  EXPECT_FALSE(cluster.worker_alive(1));
  EXPECT_FALSE(ac.scheduler().is_member(1));
  EXPECT_EQ(ac.scheduler().member_count(), 1);
  // Every partition failed over to the survivor.
  EXPECT_EQ(ac.scheduler().partitions_of(0).size(), 4u);
  EXPECT_TRUE(ac.scheduler().partitions_of(1).empty());
  EXPECT_GT(ac.retries(), 0u);
  ASSERT_NE(cluster.faults(), nullptr);
  EXPECT_EQ(cluster.faults()->stats().workers_crashed, 1u);
}

TEST(ElasticJoin, AsgdRunsThroughACrashAndALateJoin) {
  // Acceptance-style end-to-end: one worker dies early, a spare joins later,
  // and ASGD still spends its full update budget and converges.
  const auto problem = data::synthetic::tiny(120, 6, 0.0, /*seed=*/21);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  const optim::Workload workload =
      optim::Workload::create(dataset, 4, optim::make_least_squares());

  engine::Cluster::Config config = quiet_config(3);
  config.faults.crash_worker(/*worker=*/0, /*at_task=*/10)
      .join_worker(/*worker=*/2, /*at_version=*/15);
  engine::Cluster cluster(config);

  optim::SolverConfig solver;
  solver.updates = 80;
  solver.batch_fraction = 0.3;
  solver.step = optim::inverse_decay_step(0.05, 1.0, 0.01);
  solver.service_floor_ms = 0.0;
  solver.eval_every = 20;
  solver.seed = 7;
  const optim::RunResult result = optim::AsgdSolver::run(cluster, workload, solver);

  EXPECT_EQ(result.updates, 80u);
  EXPECT_LT(result.final_error(), 0.5);
  EXPECT_FALSE(cluster.worker_alive(0));
  EXPECT_TRUE(cluster.worker_alive(2));
  EXPECT_EQ(cluster.faults()->stats().workers_crashed, 1u);
}

}  // namespace
}  // namespace asyncml::core
