// Kill-and-restore acceptance (docs/FAULTS.md): a run checkpointed at update
// K and resumed in a *fresh process image* (new Cluster, new AsyncContext)
// must rejoin the uninterrupted run's trajectory — bit-exactly for the
// synchronous solvers, trajectory-equivalently for the asynchronous ones.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "data/synthetic.hpp"
#include "linalg/blas.hpp"
#include "optim/asgd.hpp"
#include "optim/checkpoint.hpp"
#include "optim/objective.hpp"
#include "optim/saga.hpp"
#include "optim/sgd.hpp"

namespace asyncml::optim {
namespace {

Workload tiny_workload(std::uint64_t seed) {
  const auto problem = data::synthetic::tiny(120, 6, 0.0, seed);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  return Workload::create(dataset, 4, make_least_squares());
}

engine::Cluster::Config quiet_config(int workers) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 1;
  config.network.time_scale = 0.0;
  return config;
}

SolverConfig base_config(std::uint64_t updates) {
  SolverConfig config;
  config.updates = updates;
  config.batch_fraction = 0.3;
  config.step = inverse_decay_step(0.05, 1.0, 0.01);
  config.service_floor_ms = 0.0;
  config.eval_every = 10;
  config.seed = 11;
  return config;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(CheckpointRestore, ScheduledSgdResumesBitExactly) {
  const Workload workload = tiny_workload(1);
  const std::string path = temp_path("sgd_restore.ckpt");

  // Reference: one uninterrupted 30-update run.
  engine::Cluster c_ref(quiet_config(2));
  const RunResult uninterrupted =
      ScheduledSgdSolver::run(c_ref, workload, base_config(30));

  // "Kill" at update 16: the first leg stops there, its last checkpoint
  // (cadence 8 → written at 8 and 16) is what survives the crash.
  SolverConfig leg1 = base_config(16);
  leg1.checkpoint_every = 8;
  leg1.checkpoint_path = path;
  engine::Cluster c1(quiet_config(2));
  (void)ScheduledSgdSolver::run(c1, workload, leg1);

  // Restore into a fresh cluster and finish the budget.
  SolverConfig leg2 = base_config(30);
  leg2.resume_from = path;
  engine::Cluster c2(quiet_config(2));
  const RunResult resumed = ScheduledSgdSolver::run(c2, workload, leg2);

  // Sync resume is bit-exact: same iterate stream, same final model bits.
  ASSERT_EQ(resumed.final_w.size(), uninterrupted.final_w.size());
  EXPECT_EQ(linalg::max_abs_diff(resumed.final_w.span(), uninterrupted.final_w.span()),
            0.0);
  EXPECT_DOUBLE_EQ(resumed.final_error(), uninterrupted.final_error());
  std::remove(path.c_str());
}

TEST(CheckpointRestore, CheckpointCarriesVersionRoundAndCounters) {
  const Workload workload = tiny_workload(2);
  const std::string path = temp_path("sgd_counters.ckpt");
  SolverConfig config = base_config(12);
  config.checkpoint_every = 12;
  config.checkpoint_path = path;
  engine::Cluster cluster(quiet_config(2));
  (void)ScheduledSgdSolver::run(cluster, workload, config);

  auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().to_string();
  const SolverCheckpoint& cp = loaded.value();
  EXPECT_EQ(cp.update_index, 12u);
  EXPECT_EQ(cp.model_version, 12u);  // sync SGD: one version bump per update
  EXPECT_GE(cp.round, 12u);          // at least one dispatch round per update
  ASSERT_TRUE(cp.counters.contains("tasks_completed"));
  EXPECT_GT(cp.counters.at("tasks_completed"), 0u);
  ASSERT_TRUE(cp.counters.contains("tasks_failed"));
  ASSERT_TRUE(cp.counters.contains("duplicates_dropped"));
  ASSERT_TRUE(cp.counters.contains("retries"));
  std::remove(path.c_str());
}

TEST(CheckpointRestore, AsgdResumeContinuesTheBudgetAndConverges) {
  const Workload workload = tiny_workload(3);
  const std::string path = temp_path("asgd_restore.ckpt");

  SolverConfig leg1 = base_config(40);
  leg1.checkpoint_every = 20;
  leg1.checkpoint_path = path;
  engine::Cluster c1(quiet_config(2));
  (void)AsgdSolver::run(c1, workload, leg1);

  SolverConfig leg2 = base_config(80);
  leg2.resume_from = path;
  engine::Cluster c2(quiet_config(2));
  const RunResult resumed = AsgdSolver::run(c2, workload, leg2);

  // Async resume is trajectory-equivalent, not bit-exact: the budget picks
  // up where the checkpoint left off and the combined run still converges.
  EXPECT_EQ(resumed.updates, 80u);
  EXPECT_LT(resumed.final_error(), 0.5);
  std::remove(path.c_str());
}

TEST(CheckpointRestore, SagaResumeWarmStartsTheModel) {
  const Workload workload = tiny_workload(4);
  const std::string path = temp_path("saga_restore.ckpt");

  SolverConfig leg1 = base_config(30);
  leg1.step = constant_step(0.05);
  leg1.checkpoint_every = 30;
  leg1.checkpoint_path = path;
  engine::Cluster c1(quiet_config(2));
  const RunResult first = SagaSolver::run(c1, workload, leg1);

  // The checkpoint carries alpha_bar for inspection even though the resumed
  // run restarts it cold (documented SAGA resume semantics).
  auto loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.is_ok());
  ASSERT_TRUE(loaded.value().aux.contains("alpha_bar"));
  EXPECT_EQ(loaded.value().aux.at("alpha_bar").size(), workload.dim());

  SolverConfig leg2 = base_config(60);
  leg2.step = constant_step(0.05);
  leg2.resume_from = path;
  engine::Cluster c2(quiet_config(2));
  const RunResult resumed = SagaSolver::run(c2, workload, leg2);

  // Warm start from the leg-1 iterate: the resumed run must not be worse
  // than where the first leg ended (plain-SAGA restart is unbiased).
  EXPECT_EQ(resumed.updates, 60u);
  EXPECT_LE(resumed.final_error(), first.final_error() + 1e-9);
  std::remove(path.c_str());
}

using CheckpointRestoreDeathTest = ::testing::Test;

TEST(CheckpointRestoreDeathTest, MalformedResumeFileAbortsLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = temp_path("corrupt.ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "AMLCKPT2 but then garbage";
  }
  const Workload workload = tiny_workload(5);
  SolverConfig config = base_config(5);
  config.resume_from = path;
  EXPECT_DEATH(
      {
        engine::Cluster cluster(quiet_config(1));
        (void)ScheduledSgdSolver::run(cluster, workload, config);
      },
      "cannot resume");
  std::remove(path.c_str());
}

TEST(CheckpointRestoreDeathTest, MissingResumeFileAbortsLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Workload workload = tiny_workload(6);
  SolverConfig config = base_config(5);
  config.resume_from = temp_path("does_not_exist.ckpt");
  EXPECT_DEATH(
      {
        engine::Cluster cluster(quiet_config(1));
        (void)ScheduledSgdSolver::run(cluster, workload, config);
      },
      "cannot resume");
}

}  // namespace
}  // namespace asyncml::optim
