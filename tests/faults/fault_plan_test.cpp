// FaultPlan / FaultState unit semantics: declarative events, wildcard keys,
// occurrence windows, and the membership (join) queries. Everything here is
// pure matching logic — no cluster, no threads — so it pins the replayable
// contract the chaos suite builds on (docs/FAULTS.md).

#include "engine/fault.hpp"

#include <gtest/gtest.h>

#include "engine/task.hpp"

namespace asyncml::engine {
namespace {

TaskSpec spec_of(PartitionId partition, std::uint64_t seq) {
  TaskSpec spec;
  spec.partition = partition;
  spec.seq = seq;
  return spec;
}

TEST(FaultPlan, EmptyPlanMatchesNothing) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  FaultState state(plan);
  EXPECT_FALSE(state.should_fail_task(0, spec_of(0, 0)));
  EXPECT_FALSE(state.should_crash(0, spec_of(0, 0)));
  EXPECT_FALSE(state.should_drop_result(0, spec_of(0, 0)));
  EXPECT_FALSE(state.should_duplicate_result(0, spec_of(0, 0)));
  EXPECT_FALSE(state.should_reject_submit(0, spec_of(0, 0)));
  EXPECT_EQ(state.stage_delay_ms(FaultStage::kCompute, 0, spec_of(0, 0)), 0.0);
}

TEST(FaultPlan, WindowSkipsAfterThenFiresTimes) {
  FaultPlan plan;
  plan.fail_task({}, /*times=*/2, /*after=*/3);  // matches 4 and 5 fire
  FaultState state(plan);
  int fired = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    fired += state.should_fail_task(0, spec_of(0, s)) ? 1 : 0;
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(state.stats().tasks_failed, 2u);
}

TEST(FaultPlan, TimesZeroFiresForever) {
  FaultPlan plan;
  plan.fail_task({}, /*times=*/0, /*after=*/2);
  FaultState state(plan);
  int fired = 0;
  for (std::uint64_t s = 0; s < 8; ++s) {
    fired += state.should_fail_task(0, spec_of(0, s)) ? 1 : 0;
  }
  EXPECT_EQ(fired, 6);  // everything past the first two matches
}

TEST(FaultPlan, FullyKeyedEventFiresOnExactTaskOnly) {
  FaultPlan plan;
  FaultKey key;
  key.worker = 1;
  key.partition = 2;
  key.seq = 5;
  plan.fail_task(key, /*times=*/1);
  FaultState state(plan);
  EXPECT_FALSE(state.should_fail_task(0, spec_of(2, 5)));  // wrong worker
  EXPECT_FALSE(state.should_fail_task(1, spec_of(3, 5)));  // wrong partition
  EXPECT_FALSE(state.should_fail_task(1, spec_of(2, 4)));  // wrong seq
  EXPECT_TRUE(state.should_fail_task(1, spec_of(2, 5)));
  EXPECT_FALSE(state.should_fail_task(1, spec_of(2, 5)));  // window exhausted
}

TEST(FaultPlan, WildcardWorkerCountsAcrossWorkers) {
  FaultPlan plan;
  plan.fail_task({.partition = 0}, /*times=*/2);
  FaultState state(plan);
  // Matching is keyed on the partition alone; the two firings may land on
  // different workers.
  EXPECT_TRUE(state.should_fail_task(0, spec_of(0, 0)));
  EXPECT_FALSE(state.should_fail_task(1, spec_of(1, 1)));  // partition mismatch
  EXPECT_TRUE(state.should_fail_task(1, spec_of(0, 1)));
  EXPECT_FALSE(state.should_fail_task(0, spec_of(0, 2)));
}

TEST(FaultPlan, CrashWorkerAtTaskIsPermanentFailStop) {
  FaultPlan plan;
  plan.crash_worker(/*worker=*/1, /*at_task=*/3);
  FaultState state(plan);
  // Worker 1's first two dequeues pass; the third and every later one match.
  EXPECT_FALSE(state.should_crash(1, spec_of(0, 0)));
  EXPECT_FALSE(state.should_crash(1, spec_of(0, 1)));
  EXPECT_TRUE(state.should_crash(1, spec_of(0, 2)));
  EXPECT_TRUE(state.should_crash(1, spec_of(0, 3)));  // fail-stop: stays down
  // Other workers never match.
  EXPECT_FALSE(state.should_crash(0, spec_of(0, 4)));
}

TEST(FaultPlan, DelaysSumAcrossMatchingEvents) {
  FaultPlan plan;
  plan.delay(FaultStage::kNetwork, 4.0, {.worker = 0})
      .delay(FaultStage::kNetwork, 6.0, {})
      .delay(FaultStage::kCompute, 9.0, {});
  FaultState state(plan);
  EXPECT_DOUBLE_EQ(state.stage_delay_ms(FaultStage::kNetwork, 0, spec_of(0, 0)),
                   10.0);
  EXPECT_DOUBLE_EQ(state.stage_delay_ms(FaultStage::kNetwork, 1, spec_of(0, 1)),
                   6.0);
  EXPECT_DOUBLE_EQ(state.stage_delay_ms(FaultStage::kQueue, 0, spec_of(0, 2)), 0.0);
  // One count per *delayed task*, not per matched event: the first query
  // summed two events but counts once, the third query injected nothing.
  EXPECT_EQ(state.stats().delays_injected, 2u);
}

TEST(FaultPlan, JoinWorkerStartsDormantWithVersion) {
  FaultPlan plan;
  plan.join_worker(/*worker=*/2, /*at_version=*/40);
  FaultState state(plan);
  EXPECT_TRUE(state.starts_dormant(2));
  EXPECT_FALSE(state.starts_dormant(0));
  ASSERT_TRUE(state.join_version(2).has_value());
  EXPECT_EQ(*state.join_version(2), 40u);
  EXPECT_FALSE(state.join_version(0).has_value());
}

TEST(FaultPlan, StatsCountEachKind) {
  FaultPlan plan;
  plan.fail_task({}, 1)
      .reject_submit({}, 1)
      .drop_result({}, 1)
      .duplicate_result({}, 1);
  FaultState state(plan);
  EXPECT_TRUE(state.should_fail_task(0, spec_of(0, 0)));
  EXPECT_TRUE(state.should_reject_submit(0, spec_of(0, 1)));
  EXPECT_TRUE(state.should_drop_result(0, spec_of(0, 2)));
  EXPECT_TRUE(state.should_duplicate_result(0, spec_of(0, 3)));
  state.count_crash();
  const FaultStats stats = state.stats();
  EXPECT_EQ(stats.tasks_failed, 1u);
  EXPECT_EQ(stats.submits_rejected, 1u);
  EXPECT_EQ(stats.results_dropped, 1u);
  EXPECT_EQ(stats.results_duplicated, 1u);
  EXPECT_EQ(stats.workers_crashed, 1u);
}

TEST(FaultPlan, IndependentEventsKeepIndependentWindows) {
  // Two fail events with disjoint keys each get their own counter: firing
  // one must not consume the other's window.
  FaultPlan plan;
  plan.fail_task({.worker = 0}, /*times=*/1).fail_task({.worker = 1}, /*times=*/1);
  FaultState state(plan);
  EXPECT_TRUE(state.should_fail_task(0, spec_of(0, 0)));
  EXPECT_TRUE(state.should_fail_task(1, spec_of(0, 1)));
  EXPECT_EQ(state.stats().tasks_failed, 2u);
}

}  // namespace
}  // namespace asyncml::engine
