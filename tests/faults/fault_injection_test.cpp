// Engine-level fault injection through a real Cluster: fail-stop worker
// crashes, result drop / duplication, staged delays, and submit rejection.
// Each scenario checks both the observable behaviour (what arrives on the
// result channel) and the FaultState counters (what actually fired).

#include <gtest/gtest.h>

#include "engine/cluster.hpp"
#include "support/stopwatch.hpp"

namespace asyncml::engine {
namespace {

Cluster::Config quiet_config(int workers, int cores = 1) {
  Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = cores;
  config.network.time_scale = 0.0;
  return config;
}

TaskSpec make_task(Cluster& cluster, PartitionId p, std::uint64_t seq = 0) {
  TaskSpec spec;
  spec.id = cluster.next_task_id();
  spec.partition = p;
  spec.seq = seq;
  spec.fn = std::make_shared<const TaskFn>(
      [](TaskContext& ctx) -> support::StatusOr<Payload> {
        return Payload::wrap<int>(ctx.partition);
      });
  return spec;
}

TEST(FaultInjection, DroppedResultNeverLeavesTheWorker) {
  Cluster::Config config = quiet_config(1);
  config.faults.drop_result({.partition = 0}, /*times=*/1);
  Cluster cluster(config);
  ASSERT_TRUE(cluster.submit(0, make_task(cluster, 0)));
  ASSERT_TRUE(cluster.submit(0, make_task(cluster, 1)));
  // Only partition 1's result can arrive; partition 0's was computed and
  // then swallowed (permanent non-delivery, not a failure).
  auto results = cluster.collect_n(1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].partition, 1);
  EXPECT_TRUE(results[0].ok());
  ASSERT_NE(cluster.faults(), nullptr);
  EXPECT_EQ(cluster.faults()->stats().results_dropped, 1u);
  // The drop is invisible to the failure counters: the task ran fine.
  EXPECT_EQ(cluster.metrics().tasks_completed.load(), 2u);
}

TEST(FaultInjection, DuplicatedResultArrivesTwiceBitIdentical) {
  Cluster::Config config = quiet_config(1);
  config.faults.duplicate_result({.partition = 3}, /*times=*/1);
  Cluster cluster(config);
  ASSERT_TRUE(cluster.submit(0, make_task(cluster, 3, /*seq=*/7)));
  auto results = cluster.collect_n(2);
  ASSERT_EQ(results.size(), 2u);
  for (const TaskResult& r : results) {
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.partition, 3);
    EXPECT_EQ(r.seq, 7u);
    EXPECT_EQ(r.payload.get<int>(), 3);
  }
  EXPECT_EQ(results[0].id, results[1].id);
  EXPECT_EQ(cluster.faults()->stats().results_duplicated, 1u);
}

TEST(FaultInjection, CrashedWorkerIsFailStop) {
  Cluster::Config config = quiet_config(2);
  config.faults.crash_worker(/*worker=*/0, /*at_task=*/1);
  Cluster cluster(config);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.submit(0, make_task(cluster, i)));
  }
  // Every task the dead worker held surfaces as a synthesized kUnavailable
  // failure — the transport noticing the dead executor — so the loss rides
  // the coordinator's normal retry path instead of hanging a collect.
  auto results = cluster.collect_n(3);
  ASSERT_EQ(results.size(), 3u);
  for (const TaskResult& r : results) {
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status.code(), support::StatusCode::kUnavailable);
  }
  EXPECT_FALSE(cluster.worker_alive(0));
  EXPECT_TRUE(cluster.worker_alive(1));
  EXPECT_EQ(cluster.faults()->stats().workers_crashed, 1u);

  // Fail-stop is permanent: later submits are still accepted (the transport
  // cannot know) but bounce straight back as failures.
  ASSERT_TRUE(cluster.submit(0, make_task(cluster, 9)));
  auto late = cluster.collect_n(1);
  ASSERT_EQ(late.size(), 1u);
  EXPECT_FALSE(late[0].ok());

  // The sibling worker is unaffected.
  ASSERT_TRUE(cluster.submit(1, make_task(cluster, 4)));
  auto alive = cluster.collect_n(1);
  ASSERT_EQ(alive.size(), 1u);
  EXPECT_TRUE(alive[0].ok());
}

TEST(FaultInjection, CrashFiresBeforeTheTaskFunction) {
  // The crash replaces the matching task's execution entirely: stateful
  // closures are never half-applied (the SAGA idempotency contract).
  Cluster::Config config = quiet_config(1);
  config.faults.crash_worker(/*worker=*/0, /*at_task=*/1);
  Cluster cluster(config);
  int executions = 0;
  TaskSpec spec;
  spec.id = cluster.next_task_id();
  spec.partition = 0;
  spec.fn = std::make_shared<const TaskFn>(
      [&executions](TaskContext&) -> support::StatusOr<Payload> {
        ++executions;
        return Payload::wrap<int>(0);
      });
  ASSERT_TRUE(cluster.submit(0, std::move(spec)));
  auto results = cluster.collect_n(1);
  EXPECT_FALSE(results[0].ok());
  EXPECT_EQ(executions, 0);
}

TEST(FaultInjection, RejectedSubmitLooksLikeShutdown) {
  Cluster::Config config = quiet_config(1);
  config.faults.reject_submit({}, /*times=*/1);
  Cluster cluster(config);
  EXPECT_FALSE(cluster.submit(0, make_task(cluster, 0)));
  EXPECT_TRUE(cluster.submit(0, make_task(cluster, 1)));
  auto results = cluster.collect_n(1);
  EXPECT_EQ(results[0].partition, 1);
  EXPECT_EQ(cluster.faults()->stats().submits_rejected, 1u);
}

TEST(FaultInjection, ComputeDelayStretchesServiceTime) {
  Cluster::Config config = quiet_config(1);
  config.faults.delay(FaultStage::kCompute, 8.0, {}, /*times=*/1);
  Cluster cluster(config);
  ASSERT_TRUE(cluster.submit(0, make_task(cluster, 0)));
  auto results = cluster.collect_n(1);
  EXPECT_GE(results[0].service_ms, 7.5);  // inside the measured window
  ASSERT_TRUE(cluster.submit(0, make_task(cluster, 1)));
  auto clean = cluster.collect_n(1);
  EXPECT_LT(clean[0].service_ms, 7.5);  // window exhausted
  EXPECT_EQ(cluster.faults()->stats().delays_injected, 1u);
}

TEST(FaultInjection, QueueAndNetworkDelaysAddWallClockOnly) {
  Cluster::Config config = quiet_config(1);
  config.faults.delay(FaultStage::kQueue, 3.0, {}, /*times=*/1)
      .delay(FaultStage::kNetwork, 3.0, {}, /*times=*/1);
  Cluster cluster(config);
  support::Stopwatch watch;
  ASSERT_TRUE(cluster.submit(0, make_task(cluster, 0)));
  auto results = cluster.collect_n(1);
  EXPECT_GE(watch.elapsed_ms(), 5.5);  // both sleeps happened
  // Neither stage is part of the measured task time.
  EXPECT_LT(results[0].service_ms, 3.0);
  EXPECT_EQ(cluster.faults()->stats().delays_injected, 2u);
}

}  // namespace
}  // namespace asyncml::engine
