// Fault plane × real wire (ISSUE 9 satellite): the declarative FaultPlan
// machinery must behave identically when the cluster runs over the
// Unix-socket backend — crash_worker fail-stop, drop_result, and
// kNetwork-stage delays all compose with genuine frame traffic — and a
// *real* SIGKILL of a worker's wire process (Cluster::transport().
// kill_worker) must ride the same failover path as an injected crash.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "core/async_context.hpp"
#include "data/synthetic.hpp"
#include "engine/cluster.hpp"
#include "optim/asgd.hpp"
#include "optim/objective.hpp"

namespace asyncml::core {
namespace {

engine::Cluster::Config socket_config(int workers) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 1;
  config.network.time_scale = 0.0;
  config.transport.backend = transport::Backend::kUnixSocket;
  return config;
}

std::shared_ptr<const engine::TaskFn> trivial_fn() {
  return std::make_shared<const engine::TaskFn>(
      [](engine::TaskContext& ctx) -> support::StatusOr<engine::Payload> {
        return engine::Payload::wrap<int>(ctx.partition);
      });
}

// An injected kCrashWorker over the socket backend: the worker fail-stops,
// its in-flight tasks come back as synthesized kUnavailable, and the
// scheduler fails its partitions over to the survivor — same contract as
// the in-process plan, now with the dead worker's frames never shipped.
TEST(SocketChaos, InjectedCrashFailsOverLikeInProcess) {
  engine::Cluster::Config config = socket_config(2);
  config.faults.crash_worker(/*worker=*/1, /*at_task=*/3);
  engine::Cluster cluster(config);
  AsyncContext ac(cluster, /*num_partitions=*/4);

  const auto fn = trivial_fn();
  for (int round = 0; round < 6; ++round) {
    auto results = ac.sync_round_fn(fn, SubmitOptions{});
    ASSERT_EQ(results.size(), 4u) << "round " << round;
    for (const TaggedResult& r : results) {
      EXPECT_TRUE(r.result.ok());
    }
    ac.advance_version();
  }

  EXPECT_FALSE(cluster.worker_alive(1));
  EXPECT_FALSE(ac.scheduler().is_member(1));
  EXPECT_EQ(ac.scheduler().partitions_of(0).size(), 4u);
  EXPECT_GT(ac.retries(), 0u);
  EXPECT_EQ(cluster.faults()->stats().workers_crashed, 1u);
}

// The real thing: SIGKILL the wire process of a worker mid-run. The channel
// discovers the death on its next round trip, the worker fail-stops exactly
// like an injected crash, and the rounds keep completing on the survivor.
TEST(SocketChaos, RealSigkillOfTheWireProcessFailsOver) {
  engine::Cluster cluster(socket_config(2));
  AsyncContext ac(cluster, /*num_partitions=*/4);

  const auto fn = trivial_fn();
  // A clean round first: both workers pulling their weight over the wire.
  auto results = ac.sync_round_fn(fn, SubmitOptions{});
  ASSERT_EQ(results.size(), 4u);
  ac.advance_version();

  cluster.transport().kill_worker(1);  // SIGKILL, not a simulation

  for (int round = 0; round < 5; ++round) {
    results = ac.sync_round_fn(fn, SubmitOptions{});
    ASSERT_EQ(results.size(), 4u) << "round " << round;
    for (const TaggedResult& r : results) {
      EXPECT_TRUE(r.result.ok());
    }
    ac.advance_version();
  }

  EXPECT_FALSE(cluster.worker_alive(1));
  EXPECT_FALSE(ac.scheduler().is_member(1));
  EXPECT_EQ(ac.scheduler().partitions_of(0).size(), 4u);
  EXPECT_TRUE(cluster.worker_alive(0));
  EXPECT_GT(ac.retries(), 0u);
}

// drop_result over the wire: the result frame round-trips (the ship happens
// before the driver-side fault plane swallows the payload), the worker stays
// healthy, and — exactly as in-process — only the lost-task rescue sweep can
// un-wedge the partition. The rescue itself then rides the socket too.
TEST(SocketChaos, DroppedResultsAreRescuedOverTheWire) {
  engine::Cluster::Config config = socket_config(2);
  config.faults.drop_result({.partition = 1}, /*times=*/2);
  engine::Cluster cluster(config);
  AsyncContext ac(cluster, /*num_partitions=*/4);

  SchedulerPolicy policy;
  policy.lost_task_factor = 5.0;  // well inside the round with a ~1 ms median
  ac.scheduler().set_policy(policy);

  // A task long enough for the EWMA median to be nonzero, so the lost-task
  // horizon actually arms.
  const auto fn = std::make_shared<const engine::TaskFn>(
      [](engine::TaskContext& ctx) -> support::StatusOr<engine::Payload> {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return engine::Payload::wrap<int>(ctx.partition);
      });
  for (int round = 0; round < 3; ++round) {
    auto results = ac.sync_round_fn(fn, SubmitOptions{});
    ASSERT_EQ(results.size(), 4u) << "round " << round;
    ac.advance_version();
  }
  EXPECT_EQ(cluster.faults()->stats().results_dropped, 2u);
  EXPECT_GE(cluster.metrics().tasks_speculated.load(), 2u);
  EXPECT_TRUE(cluster.worker_alive(0));
  EXPECT_TRUE(cluster.worker_alive(1));
}

// kNetwork-stage delays stay a *local modeled sleep* on every backend — they
// stack on top of the real wire time instead of replacing it, so a fault
// plan tuned in-process keeps its meaning over sockets.
TEST(SocketChaos, NetworkStageDelaysApplyOnTopOfRealWireTime) {
  engine::Cluster::Config config = socket_config(1);
  config.faults.delay(engine::FaultStage::kNetwork, /*delay_ms=*/5.0,
                      {.worker = 0}, /*times=*/2);
  engine::Cluster cluster(config);
  AsyncContext ac(cluster, /*num_partitions=*/2);

  const auto fn = trivial_fn();
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < 2; ++round) {
    auto results = ac.sync_round_fn(fn, SubmitOptions{});
    ASSERT_EQ(results.size(), 2u);
    ac.advance_version();
  }
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed_ms, 10.0) << "two 5 ms injected delays must be observable";
  EXPECT_EQ(cluster.faults()->stats().delays_injected, 2u);
}

// End-to-end acceptance: ASGD over the socket backend rides through an
// injected crash AND a real SIGKILL of a different worker, still spends its
// full update budget, and converges.
TEST(SocketChaos, AsgdSurvivesInjectedAndRealCrashesOverTheWire) {
  const auto problem = data::synthetic::tiny(120, 6, 0.0, /*seed=*/21);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  const optim::Workload workload =
      optim::Workload::create(dataset, 4, optim::make_least_squares());

  engine::Cluster::Config config = socket_config(3);
  config.faults.crash_worker(/*worker=*/0, /*at_task=*/10);
  engine::Cluster cluster(config);

  optim::SolverConfig solver;
  solver.updates = 80;
  solver.batch_fraction = 0.3;
  solver.step = optim::inverse_decay_step(0.05, 1.0, 0.01);
  solver.service_floor_ms = 0.0;
  solver.eval_every = 20;
  solver.seed = 7;

  // Kill worker 2's wire process for real, shortly into the run, from a
  // separate thread — the race against dispatch is the point.
  std::thread killer([&cluster] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cluster.transport().kill_worker(2);
  });
  const optim::RunResult result = optim::AsgdSolver::run(cluster, workload, solver);
  killer.join();

  EXPECT_EQ(result.updates, 80u);
  EXPECT_LT(result.final_error(), 0.5);
  EXPECT_FALSE(cluster.worker_alive(0));
  EXPECT_FALSE(cluster.worker_alive(2));
  EXPECT_EQ(cluster.faults()->stats().workers_crashed, 1u);
}

}  // namespace
}  // namespace asyncml::core
