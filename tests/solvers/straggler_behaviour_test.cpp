// Integration tests for the paper's core claims about stragglers:
// synchronous wait time grows with delay intensity while asynchronous wait
// time stays flat (Figures 4/6), and async solvers finish faster under
// delay (Figures 3/5).  Uses small budgets: we assert ordering relations,
// not absolute times, so scheduler noise cannot flake the suite.

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "optim/asgd.hpp"
#include "optim/sgd.hpp"
#include "straggler/controlled_delay.hpp"
#include "straggler/production_cluster.hpp"

namespace asyncml::optim {
namespace {

engine::Cluster::Config delayed_config(int workers,
                                       std::shared_ptr<const engine::DelayModel> delay) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 2;
  config.network.time_scale = 0.0;
  config.delay = std::move(delay);
  return config;
}

Workload tiny_workload(std::uint64_t seed, int partitions = 8) {
  const auto problem = data::synthetic::tiny(160, 8, 0.0, seed);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  return Workload::create(dataset, partitions, make_least_squares());
}

SolverConfig timed_config(std::uint64_t updates, double service_ms) {
  SolverConfig config;
  config.updates = updates;
  config.batch_fraction = 0.3;
  config.step = inverse_decay_step(0.05, 1.0, 0.01);
  config.service_floor_ms = service_ms;
  config.eval_every = 10;
  return config;
}

TEST(StragglerBehaviour, SyncWallTimeGrowsWithDelay) {
  // 4 ms floors push the modeled service well above host scheduling noise;
  // the nominal growth at 100% delay is ~1.6x, so the 1.25x bound leaves
  // ~20% headroom for jitter on loaded CI machines.
  const Workload workload = tiny_workload(1);
  const SolverConfig config = timed_config(30, 4.0);

  engine::Cluster fast(delayed_config(4, nullptr));
  const RunResult no_delay = SgdSolver::run(fast, workload, config);

  engine::Cluster slow(delayed_config(
      4, std::make_shared<straggler::ControlledDelay>(0, /*intensity=*/1.0)));
  const RunResult with_delay = SgdSolver::run(slow, workload, config);

  // Every BSP iteration waits for the straggler: wall time must grow.
  EXPECT_GT(with_delay.wall_ms, no_delay.wall_ms * 1.25);
}

TEST(StragglerBehaviour, SyncWaitTimeGrowsWithDelay) {
  const Workload workload = tiny_workload(2);
  const SolverConfig config = timed_config(25, 2.0);

  engine::Cluster fast(delayed_config(4, nullptr));
  const RunResult no_delay = SgdSolver::run(fast, workload, config);

  engine::Cluster slow(delayed_config(
      4, std::make_shared<straggler::ControlledDelay>(0, 1.0)));
  const RunResult with_delay = SgdSolver::run(slow, workload, config);

  EXPECT_GT(with_delay.mean_wait_ms, no_delay.mean_wait_ms * 1.3);
}

TEST(StragglerBehaviour, AsyncWaitTimeFlatAcrossDelays) {
  const Workload workload = tiny_workload(3);
  const SolverConfig config = timed_config(120, 2.0);

  engine::Cluster fast(delayed_config(4, nullptr));
  const RunResult no_delay = AsgdSolver::run(fast, workload, config);

  engine::Cluster slow(delayed_config(
      4, std::make_shared<straggler::ControlledDelay>(0, 1.0)));
  const RunResult with_delay = AsgdSolver::run(slow, workload, config);

  // The paper's Figure 4: ASGD's wait does not grow with delay intensity.
  // Allow generous noise but demand it stays within 2x.
  EXPECT_LT(with_delay.mean_wait_ms, no_delay.mean_wait_ms * 2.0 + 1.0);
}

TEST(StragglerBehaviour, AsyncBeatsSyncWallClockUnderDelay) {
  // Same update budget per paradigm pair, one worker at half speed: the
  // sync run pays the straggler every iteration, the async run doesn't.
  const Workload workload = tiny_workload(4);
  auto delay = std::make_shared<straggler::ControlledDelay>(0, 1.0);

  // 24 sync iterations x 8 partitions = 192 tasks; 192 async updates = same
  // task count, so the comparison is budget-fair.
  engine::Cluster sync_cluster(delayed_config(4, delay));
  const RunResult sync = SgdSolver::run(sync_cluster, workload, timed_config(24, 2.0));

  engine::Cluster async_cluster(delayed_config(4, delay));
  const RunResult async_run =
      AsgdSolver::run(async_cluster, workload, timed_config(192, 2.0));

  EXPECT_LT(async_run.wall_ms, sync.wall_ms);
}

TEST(StragglerBehaviour, PcsSlowsSyncMoreThanAsync) {
  // Production-cluster pattern on 8 workers: sync pays the slowest machine
  // every round; async throughput tracks the healthy majority.
  const Workload workload = tiny_workload(5);
  auto pcs = std::make_shared<straggler::ProductionCluster>(8, /*seed=*/3);

  engine::Cluster sync_cluster(delayed_config(8, pcs));
  const RunResult sync = SgdSolver::run(sync_cluster, workload, timed_config(16, 2.0));

  engine::Cluster async_cluster(delayed_config(8, pcs));
  const RunResult async_run =
      AsgdSolver::run(async_cluster, workload, timed_config(128, 2.0));

  EXPECT_LT(async_run.wall_ms, sync.wall_ms);
  EXPECT_LT(async_run.mean_wait_ms, sync.mean_wait_ms);
}

TEST(StragglerBehaviour, DelayDoesNotChangeSyncTrajectory) {
  // The straggler slows wall clock but must not change the math: same seeds
  // mean identical batches, so final error matches the no-delay run.
  const Workload workload = tiny_workload(6);
  const SolverConfig config = timed_config(20, 1.0);

  engine::Cluster fast(delayed_config(4, nullptr));
  const RunResult a = SgdSolver::run(fast, workload, config);
  engine::Cluster slow(delayed_config(
      4, std::make_shared<straggler::ControlledDelay>(1, 1.0)));
  const RunResult b = SgdSolver::run(slow, workload, config);

  EXPECT_NEAR(a.final_error(), b.final_error(), 1e-9);
}

}  // namespace
}  // namespace asyncml::optim
