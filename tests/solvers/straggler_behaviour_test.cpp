// Integration tests for the paper's core claims about stragglers:
// synchronous wait time grows with delay intensity while asynchronous wait
// time stays flat (Figures 4/6), and async solvers finish faster under
// delay (Figures 3/5).  Uses small budgets: we assert ordering relations,
// not absolute times, so scheduler noise cannot flake the suite.

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "optim/asgd.hpp"
#include "optim/sgd.hpp"
#include "straggler/controlled_delay.hpp"
#include "straggler/production_cluster.hpp"

namespace asyncml::optim {
namespace {

engine::Cluster::Config delayed_config(int workers,
                                       std::shared_ptr<const engine::DelayModel> delay) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 2;
  config.network.time_scale = 0.0;
  config.delay = std::move(delay);
  return config;
}

Workload tiny_workload(std::uint64_t seed, int partitions = 8) {
  const auto problem = data::synthetic::tiny(160, 8, 0.0, seed);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  return Workload::create(dataset, partitions, make_least_squares());
}

SolverConfig timed_config(std::uint64_t updates, double service_ms) {
  SolverConfig config;
  config.updates = updates;
  config.batch_fraction = 0.3;
  config.step = inverse_decay_step(0.05, 1.0, 0.01);
  config.service_floor_ms = service_ms;
  config.eval_every = 10;
  return config;
}

TEST(StragglerBehaviour, SyncWallTimeGrowsWithDelay) {
  // 4 ms floors push the modeled service well above host scheduling noise;
  // the nominal growth at 100% delay is ~1.6x, so the 1.25x bound leaves
  // ~20% headroom for jitter on loaded CI machines.
  const Workload workload = tiny_workload(1);
  const SolverConfig config = timed_config(30, 4.0);

  engine::Cluster fast(delayed_config(4, nullptr));
  const RunResult no_delay = SgdSolver::run(fast, workload, config);

  engine::Cluster slow(delayed_config(
      4, std::make_shared<straggler::ControlledDelay>(0, /*intensity=*/1.0)));
  const RunResult with_delay = SgdSolver::run(slow, workload, config);

  // Every BSP iteration waits for the straggler: wall time must grow.
  EXPECT_GT(with_delay.wall_ms, no_delay.wall_ms * 1.25);
}

TEST(StragglerBehaviour, SyncWaitTimeGrowsWithDelay) {
  const Workload workload = tiny_workload(2);
  const SolverConfig config = timed_config(25, 2.0);

  engine::Cluster fast(delayed_config(4, nullptr));
  const RunResult no_delay = SgdSolver::run(fast, workload, config);

  engine::Cluster slow(delayed_config(
      4, std::make_shared<straggler::ControlledDelay>(0, 1.0)));
  const RunResult with_delay = SgdSolver::run(slow, workload, config);

  EXPECT_GT(with_delay.mean_wait_ms, no_delay.mean_wait_ms * 1.3);
}

TEST(StragglerBehaviour, AsyncWaitTimeFlatAcrossDelays) {
  const Workload workload = tiny_workload(3);
  const SolverConfig config = timed_config(120, 2.0);

  engine::Cluster fast(delayed_config(4, nullptr));
  const RunResult no_delay = AsgdSolver::run(fast, workload, config);

  engine::Cluster slow(delayed_config(
      4, std::make_shared<straggler::ControlledDelay>(0, 1.0)));
  const RunResult with_delay = AsgdSolver::run(slow, workload, config);

  // The paper's Figure 4: ASGD's wait does not grow with delay intensity.
  // Allow generous noise but demand it stays within 2x.
  EXPECT_LT(with_delay.mean_wait_ms, no_delay.mean_wait_ms * 2.0 + 1.0);
}

TEST(StragglerBehaviour, AsyncBeatsSyncWallClockUnderDelay) {
  // Same update budget per paradigm pair, one worker at half speed: the
  // sync run pays the straggler every iteration, the async run doesn't.
  const Workload workload = tiny_workload(4);
  auto delay = std::make_shared<straggler::ControlledDelay>(0, 1.0);

  // 24 sync iterations x 8 partitions = 192 tasks; 192 async updates = same
  // task count, so the comparison is budget-fair.
  engine::Cluster sync_cluster(delayed_config(4, delay));
  const RunResult sync = SgdSolver::run(sync_cluster, workload, timed_config(24, 2.0));

  engine::Cluster async_cluster(delayed_config(4, delay));
  const RunResult async_run =
      AsgdSolver::run(async_cluster, workload, timed_config(192, 2.0));

  EXPECT_LT(async_run.wall_ms, sync.wall_ms);
}

TEST(StragglerBehaviour, PcsSlowsSyncMoreThanAsync) {
  // Production-cluster pattern on 8 workers: sync pays the slowest machine
  // every round; async throughput tracks the healthy majority.
  const Workload workload = tiny_workload(5);
  auto pcs = std::make_shared<straggler::ProductionCluster>(8, /*seed=*/3);

  engine::Cluster sync_cluster(delayed_config(8, pcs));
  const RunResult sync = SgdSolver::run(sync_cluster, workload, timed_config(16, 2.0));

  engine::Cluster async_cluster(delayed_config(8, pcs));
  const RunResult async_run =
      AsgdSolver::run(async_cluster, workload, timed_config(128, 2.0));

  EXPECT_LT(async_run.wall_ms, sync.wall_ms);
  EXPECT_LT(async_run.mean_wait_ms, sync.mean_wait_ms);
}

TEST(StragglerBehaviour, StealingAndSpeculationCutBarrierWaitWallClock) {
  // Barrier-wait SGD through the scheduler, one worker at half speed owning
  // 3 of 12 partitions (two waves on its 2 cores -> 20 ms rounds vs 10 ms
  // healthy). Stealing sheds a partition once the EWMA knows the straggler,
  // cutting the round to ~10 ms; the trajectory stays bit-identical (same
  // (seed, partition, seq) batches, partition-ordered combine).
  const Workload workload = tiny_workload(7, /*partitions=*/12);
  auto delay = std::make_shared<straggler::ControlledDelay>(0, /*intensity=*/1.0);
  SolverConfig off = timed_config(12, 5.0);

  engine::Cluster off_cluster(delayed_config(4, delay));
  const RunResult fixed = ScheduledSgdSolver::run(off_cluster, workload, off);

  SolverConfig on = off;
  on.steal_mode = core::StealMode::kLocality;
  on.speculation_factor = 2.0;
  engine::Cluster on_cluster(delayed_config(4, delay));
  const RunResult dynamic = ScheduledSgdSolver::run(on_cluster, workload, on);

  EXPECT_GE(dynamic.partitions_stolen, 1u);
  // Nominal ratio ~1.85x (20 ms rounds -> 10 ms after the steal); 1.3x
  // leaves headroom for jitter on loaded CI machines.
  EXPECT_GT(fixed.wall_ms, dynamic.wall_ms * 1.3);
  EXPECT_TRUE(linalg::bitwise_equal(fixed.final_w, dynamic.final_w));
}

TEST(StragglerBehaviour, SpeculativeDuplicatesAreNotDoubleCounted) {
  // 3 partitions per worker queue up each round, so the straggler's last
  // task is predictably overdue and gets a replica. First-result-wins must
  // deliver exactly one result per (partition, seq): the update count, the
  // per-round task count, and the iterates all match the replica-free run.
  const Workload workload = tiny_workload(8, /*partitions=*/12);
  auto delay = std::make_shared<straggler::ControlledDelay>(0, 1.0);
  SolverConfig off = timed_config(10, 4.0);

  engine::Cluster off_cluster(delayed_config(4, delay));
  const RunResult plain = ScheduledSgdSolver::run(off_cluster, workload, off);

  SolverConfig on = off;
  on.speculation_factor = 2.0;  // speculation only: isolate the dedup path
  engine::Cluster on_cluster(delayed_config(4, delay));
  const RunResult spec = ScheduledSgdSolver::run(on_cluster, workload, on);

  EXPECT_GE(spec.tasks_speculated, 1u);
  // Every replica that completed after its original was dropped, never
  // delivered: the solver consumed exactly one result per dispatched task.
  EXPECT_EQ(spec.tasks, plain.tasks);
  EXPECT_EQ(spec.tasks, spec.updates * 12);
  EXPECT_EQ(spec.updates, plain.updates);
  EXPECT_TRUE(linalg::bitwise_equal(plain.final_w, spec.final_w));
}

TEST(StragglerBehaviour, NoDelayKeepsFixedPlacementBitIdentical) {
  // With no delay model installed the hysteresis margin and the predictive
  // speculation trigger must keep both features dormant: zero steals, zero
  // replicas, and a trajectory bit-identical to the fixed-placement run.
  const Workload workload = tiny_workload(9, /*partitions=*/8);
  SolverConfig off = timed_config(10, 2.0);

  engine::Cluster off_cluster(delayed_config(4, nullptr));
  const RunResult fixed = ScheduledSgdSolver::run(off_cluster, workload, off);

  SolverConfig on = off;
  on.steal_mode = core::StealMode::kLocality;
  on.speculation_factor = 2.0;
  engine::Cluster on_cluster(delayed_config(4, nullptr));
  const RunResult dynamic = ScheduledSgdSolver::run(on_cluster, workload, on);

  EXPECT_EQ(dynamic.partitions_stolen, 0u);
  EXPECT_EQ(dynamic.tasks_speculated, 0u);
  EXPECT_EQ(dynamic.migration_bytes, 0u);
  EXPECT_TRUE(linalg::bitwise_equal(fixed.final_w, dynamic.final_w));
}

TEST(StragglerBehaviour, DelayDoesNotChangeSyncTrajectory) {
  // The straggler slows wall clock but must not change the math: same seeds
  // mean identical batches, so final error matches the no-delay run.
  const Workload workload = tiny_workload(6);
  const SolverConfig config = timed_config(20, 1.0);

  engine::Cluster fast(delayed_config(4, nullptr));
  const RunResult a = SgdSolver::run(fast, workload, config);
  engine::Cluster slow(delayed_config(
      4, std::make_shared<straggler::ControlledDelay>(1, 1.0)));
  const RunResult b = SgdSolver::run(slow, workload, config);

  EXPECT_NEAR(a.final_error(), b.final_error(), 1e-9);
}

}  // namespace
}  // namespace asyncml::optim
