// Integration tests: asynchronous solvers (ASGD, ASAGA, staleness-aware ASGD,
// epoch-based VR) on the threaded cluster.

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "optim/asaga.hpp"
#include "optim/asgd.hpp"
#include "optim/epoch_vr.hpp"
#include "optim/objective.hpp"
#include "optim/sgd.hpp"

namespace asyncml::optim {
namespace {

engine::Cluster::Config quiet_config(int workers) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 2;
  config.network.time_scale = 0.0;
  return config;
}

Workload tiny_workload(std::uint64_t seed, int partitions = 8) {
  const auto problem = data::synthetic::tiny(240, 10, 0.0, seed);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  return Workload::create(dataset, partitions, make_least_squares());
}

SolverConfig fast_config() {
  SolverConfig config;
  config.updates = 300;
  config.batch_fraction = 0.3;
  config.step = inverse_decay_step(0.05, 1.0, 0.005);
  config.service_floor_ms = 0.1;
  config.eval_every = 30;
  return config;
}

TEST(AsgdSolver, ConvergesUnderAsp) {
  engine::Cluster cluster(quiet_config(4));
  const Workload workload = tiny_workload(1);
  const RunResult result = AsgdSolver::run(cluster, workload, fast_config());
  EXPECT_EQ(result.algorithm, "ASGD");
  EXPECT_EQ(result.updates, 300u);
  EXPECT_LT(result.final_error(), 0.2);
  EXPECT_LT(result.trace.back().error, result.trace.front().error * 0.3);
}

TEST(AsgdSolver, ConvergesUnderSsp) {
  engine::Cluster cluster(quiet_config(4));
  const Workload workload = tiny_workload(2);
  SolverConfig config = fast_config();
  config.barrier = core::barriers::ssp(8);
  const RunResult result = AsgdSolver::run(cluster, workload, config);
  EXPECT_LT(result.final_error(), 0.2);
}

TEST(AsgdSolver, ConvergesUnderBspGate) {
  engine::Cluster cluster(quiet_config(4));
  const Workload workload = tiny_workload(3);
  SolverConfig config = fast_config();
  config.barrier = core::barriers::bsp();
  config.updates = 160;  // BSP rounds are slower; keep the test quick
  const RunResult result = AsgdSolver::run(cluster, workload, config);
  EXPECT_LT(result.final_error(), 0.4);
}

TEST(AsgdSolver, ConvergesUnderAvailableFraction) {
  engine::Cluster cluster(quiet_config(4));
  const Workload workload = tiny_workload(4);
  SolverConfig config = fast_config();
  config.barrier = core::barriers::available_fraction(0.5);  // the §5.2 example
  const RunResult result = AsgdSolver::run(cluster, workload, config);
  EXPECT_LT(result.final_error(), 0.2);
}

TEST(AsgdSolver, StalenessAdaptiveLrConverges) {
  engine::Cluster cluster(quiet_config(4));
  const Workload workload = tiny_workload(5);
  SolverConfig config = fast_config();
  config.staleness_adaptive_lr = true;  // Listing 1
  const RunResult result = AsgdSolver::run(cluster, workload, config);
  EXPECT_EQ(result.algorithm, "ASGD-staleness");
  EXPECT_LT(result.final_error(), 0.3);
}

TEST(AsgdSolver, AsyncStepScaleHeuristicApplied) {
  // With async_step_scale forced to ~0, the model should barely move.
  engine::Cluster cluster(quiet_config(4));
  const Workload workload = tiny_workload(6);
  SolverConfig config = fast_config();
  config.updates = 50;
  config.async_step_scale = 1e-9;
  const RunResult result = AsgdSolver::run(cluster, workload, config);
  EXPECT_NEAR(result.final_error(), result.trace.front().error, 1e-3);
}

TEST(AsagaSolver, ConvergesToHighAccuracy) {
  engine::Cluster cluster(quiet_config(4));
  const Workload workload = tiny_workload(7);
  SolverConfig config = fast_config();
  config.updates = 900;
  config.step = constant_step(0.02);
  config.eval_every = 100;
  const RunResult result = AsagaSolver::run(cluster, workload, config);
  EXPECT_EQ(result.algorithm, "ASAGA");
  EXPECT_LT(result.final_error(), 1e-3);
}

TEST(AsagaSolver, HistoryBroadcastBytesStayLinear) {
  // Per-update traffic must be O(d): each worker fetches each version at most
  // once, so total fetched bytes <= updates × d × 8 × small-constant.
  engine::Cluster cluster(quiet_config(4));
  const Workload workload = tiny_workload(8);
  SolverConfig config = fast_config();
  config.updates = 200;
  config.step = constant_step(0.02);
  const RunResult result = AsagaSolver::run(cluster, workload, config);
  const std::uint64_t d_bytes = workload.dim() * sizeof(double);
  EXPECT_LT(result.broadcast_bytes, (result.updates + 10) * d_bytes * 3);
  EXPECT_GT(result.broadcast_hits, 0u);
}

TEST(EpochVrSolver, ConvergesWithPeriodicSynchronization) {
  engine::Cluster cluster(quiet_config(4));
  const Workload workload = tiny_workload(9);
  SolverConfig config = fast_config();
  config.updates = 200;
  config.epoch_inner_updates = 50;
  config.step = constant_step(0.05);
  const RunResult result = EpochVrSolver::run(cluster, workload, config);
  EXPECT_EQ(result.algorithm, "EpochVR");
  EXPECT_GE(result.updates, 200u);
  EXPECT_LT(result.final_error(), 1e-2);
}

TEST(AsyncSolvers, UpdatesEqualCollectedTasks) {
  engine::Cluster cluster(quiet_config(2));
  const Workload workload = tiny_workload(10, 4);
  SolverConfig config = fast_config();
  config.updates = 40;
  const RunResult result = AsgdSolver::run(cluster, workload, config);
  EXPECT_EQ(result.updates, result.tasks);
  EXPECT_EQ(result.updates, 40u);
}

TEST(AsyncSolvers, StalenessObservedUnderAsp) {
  // With multiple workers updating one model, some results must arrive stale.
  // We detect it through convergence semantics: run ASGD and check the run's
  // version count matches updates (each result advanced the version exactly
  // once), which together with >1 workers implies interleaving.
  engine::Cluster cluster(quiet_config(4));
  const Workload workload = tiny_workload(11);
  SolverConfig config = fast_config();
  config.updates = 100;
  const RunResult result = AsgdSolver::run(cluster, workload, config);
  EXPECT_EQ(result.updates, 100u);
}

}  // namespace
}  // namespace asyncml::optim
