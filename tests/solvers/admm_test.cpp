// Asynchronous consensus ADMM: primal-dual updates hosted on the ASYNC
// machinery (worker-resident x_p/u_p state, history-broadcast consensus z).

#include "optim/admm.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "optim/objective.hpp"
#include "straggler/controlled_delay.hpp"

namespace asyncml::optim {
namespace {

engine::Cluster::Config quiet_config(int workers) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 2;
  config.network.time_scale = 0.0;
  return config;
}

Workload tiny_workload(std::uint64_t seed, int partitions = 4) {
  const auto problem = data::synthetic::tiny(160, 8, 0.0, seed);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  return Workload::create(dataset, partitions, make_least_squares());
}

AdmmConfig fast_config(std::uint64_t updates) {
  AdmmConfig config;
  config.updates = updates;
  config.rho = 1.0;
  config.local_gd_steps = 8;
  config.service_floor_ms = 0.1;
  config.eval_every = 20;
  return config;
}

TEST(AsyncAdmm, ConvergesOnNoiselessLeastSquares) {
  engine::Cluster cluster(quiet_config(2));
  const Workload workload = tiny_workload(1);
  const RunResult result = AsyncAdmmSolver::run(cluster, workload, fast_config(240));
  EXPECT_EQ(result.algorithm, "AsyncADMM");
  EXPECT_EQ(result.updates, 240u);
  EXPECT_LT(result.final_error(), 1e-2);
  EXPECT_LT(result.trace.back().error, result.trace.front().error * 0.05);
}

TEST(AsyncAdmm, ErrorDecreasesMonotonicallyAtTail) {
  engine::Cluster cluster(quiet_config(2));
  const Workload workload = tiny_workload(2);
  const RunResult result = AsyncAdmmSolver::run(cluster, workload, fast_config(300));
  // Consensus ADMM is not strictly monotone early, but the tail must settle.
  const auto& trace = result.trace;
  ASSERT_GE(trace.size(), 4u);
  EXPECT_LT(trace.back().error, trace[trace.size() / 2].error);
}

TEST(AsyncAdmm, ConvergesUnderStraggler) {
  engine::Cluster::Config config = quiet_config(4);
  config.delay = std::make_shared<straggler::ControlledDelay>(0, 1.0);
  engine::Cluster cluster(config);
  const Workload workload = tiny_workload(3, 8);
  AdmmConfig admm = fast_config(400);
  admm.service_floor_ms = 1.0;
  const RunResult result = AsyncAdmmSolver::run(cluster, workload, admm);
  EXPECT_LT(result.final_error(), 5e-2);
}

TEST(AsyncAdmm, RhoControlsConsensusTightness) {
  // Larger rho pulls the local models toward z harder; both settings must
  // converge on a well-conditioned problem.
  const Workload workload = tiny_workload(4);
  AdmmConfig soft = fast_config(240);
  soft.rho = 0.3;
  AdmmConfig hard = fast_config(240);
  hard.rho = 3.0;

  engine::Cluster c1(quiet_config(2));
  const RunResult a = AsyncAdmmSolver::run(c1, workload, soft);
  engine::Cluster c2(quiet_config(2));
  const RunResult b = AsyncAdmmSolver::run(c2, workload, hard);
  EXPECT_LT(a.final_error(), 0.1);
  EXPECT_LT(b.final_error(), 0.1);
}

TEST(AsyncAdmm, WorksWithBspBarrier) {
  engine::Cluster cluster(quiet_config(2));
  const Workload workload = tiny_workload(5);
  AdmmConfig config = fast_config(160);
  config.barrier = core::barriers::bsp();
  const RunResult result = AsyncAdmmSolver::run(cluster, workload, config);
  EXPECT_LT(result.final_error(), 5e-2);
}

}  // namespace
}  // namespace asyncml::optim
