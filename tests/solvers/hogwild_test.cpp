// Hogwild shared-memory baseline: lock-free multi-threaded SGD must converge
// despite genuine data races on the model (the algorithm's defining claim).

#include "optim/hogwild.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "optim/objective.hpp"

namespace asyncml::optim {
namespace {

TEST(Hogwild, SingleThreadMatchesPlainSgdBehaviour) {
  const auto problem = data::synthetic::tiny(200, 8, 0.0, 1);
  LeastSquaresLoss loss;
  HogwildConfig config;
  config.threads = 1;
  config.updates_per_thread = 400;
  config.batch_size = 8;
  config.step = constant_step(0.02);
  const RunResult result = HogwildSolver::run(problem.dataset, loss, config);
  EXPECT_EQ(result.algorithm, "Hogwild");
  EXPECT_EQ(result.updates, 400u);
  EXPECT_LT(result.final_error(), 0.05);
}

TEST(Hogwild, ConvergesWithRacingThreads) {
  const auto problem = data::synthetic::tiny(400, 10, 0.0, 2);
  LeastSquaresLoss loss;
  HogwildConfig config;
  config.threads = 4;
  config.updates_per_thread = 300;
  config.batch_size = 8;
  config.step = constant_step(0.01);
  const RunResult result = HogwildSolver::run(problem.dataset, loss, config);
  EXPECT_EQ(result.updates, 4u * 300u);
  EXPECT_LT(result.final_error(), 0.05);
}

TEST(Hogwild, SparseDataPath) {
  const auto problem = data::synthetic::make_sparse(
      data::synthetic::SparseSpec{
          .rows = 300, .cols = 60, .density = 0.1, .normalize_rows = false},
      3);
  LeastSquaresLoss loss;
  HogwildConfig config;
  config.threads = 3;
  config.updates_per_thread = 400;
  config.batch_size = 8;
  config.step = constant_step(0.02);
  const RunResult result = HogwildSolver::run(problem.dataset, loss, config);
  EXPECT_LT(result.final_error(),
            full_objective(problem.dataset, loss, linalg::DenseVector(60)) * 0.1);
}

TEST(Hogwild, TraceIsMonotoneInTimeAndRecordsProgress) {
  const auto problem = data::synthetic::tiny(200, 6, 0.0, 4);
  LeastSquaresLoss loss;
  HogwildConfig config;
  config.threads = 2;
  config.updates_per_thread = 250;
  config.batch_size = 8;
  config.step = constant_step(0.02);
  config.eval_every = 50;
  const RunResult result = HogwildSolver::run(problem.dataset, loss, config);
  ASSERT_GE(result.trace.size(), 3u);
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_LE(result.trace[i - 1].time_ms, result.trace[i].time_ms);
  }
  EXPECT_LT(result.trace.back().error, result.trace.front().error);
}

TEST(Hogwild, MoreThreadsMoreTotalUpdates) {
  const auto problem = data::synthetic::tiny(100, 5, 0.0, 5);
  LeastSquaresLoss loss;
  HogwildConfig config;
  config.updates_per_thread = 100;
  config.threads = 1;
  const RunResult one = HogwildSolver::run(problem.dataset, loss, config);
  config.threads = 3;
  const RunResult three = HogwildSolver::run(problem.dataset, loss, config);
  EXPECT_EQ(one.updates, 100u);
  EXPECT_EQ(three.updates, 300u);
}

}  // namespace
}  // namespace asyncml::optim
