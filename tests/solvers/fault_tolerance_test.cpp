// Fault-tolerance integration: injected task failures must be retried
// (Spark semantics) and must not change results beyond floating-point noise.
//
// kFailTask fires *before* the task function runs, so stateful map closures
// (SAGA's version table) are never half-applied — matching the documented
// idempotency contract.

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "engine/fault.hpp"
#include "optim/asgd.hpp"
#include "optim/objective.hpp"
#include "optim/sgd.hpp"

namespace asyncml::optim {
namespace {

Workload tiny_workload(std::uint64_t seed) {
  const auto problem = data::synthetic::tiny(120, 6, 0.0, seed);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  return Workload::create(dataset, 4, make_least_squares());
}

SolverConfig fast_config(std::uint64_t updates) {
  SolverConfig config;
  config.updates = updates;
  config.batch_fraction = 0.3;
  config.step = inverse_decay_step(0.05, 1.0, 0.01);
  config.service_floor_ms = 0.1;
  config.eval_every = 10;
  return config;
}

engine::Cluster::Config faulty_config(int workers, engine::FaultPlan faults = {}) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 1;
  config.network.time_scale = 0.0;
  config.faults = std::move(faults);
  return config;
}

TEST(FaultTolerance, SyncSgdSurvivesTransientFaults) {
  engine::FaultPlan plan;
  plan.fail_task({}, /*times=*/5);  // first five tasks fail
  engine::Cluster cluster(faulty_config(2, plan));
  const Workload workload = tiny_workload(1);
  const RunResult result = SgdSolver::run(cluster, workload, fast_config(30));
  EXPECT_LT(result.final_error(), 0.5);
  EXPECT_EQ(cluster.metrics().tasks_failed.load(), 5u);
}

TEST(FaultTolerance, SyncResultIdenticalWithAndWithoutFaults) {
  // Retries recompute the same deterministic batch, so the trajectory is
  // bit-identical to a failure-free run.
  const Workload workload = tiny_workload(2);
  const SolverConfig config = fast_config(20);

  engine::Cluster clean(faulty_config(2));
  const RunResult a = SgdSolver::run(clean, workload, config);

  engine::FaultPlan plan;
  plan.fail_task({}, /*times=*/3);
  engine::Cluster faulty(faulty_config(2, plan));
  const RunResult b = SgdSolver::run(faulty, workload, config);

  EXPECT_DOUBLE_EQ(a.final_error(), b.final_error());
}

TEST(FaultTolerance, AsgdRetriesFailedTasks) {
  engine::FaultPlan plan;
  plan.fail_task({}, /*times=*/4);
  engine::Cluster cluster(faulty_config(2, plan));
  const Workload workload = tiny_workload(3);
  const RunResult result = AsgdSolver::run(cluster, workload, fast_config(60));
  EXPECT_EQ(result.updates, 60u);  // budget still met despite failures
  EXPECT_EQ(cluster.metrics().tasks_failed.load(), 4u);
  EXPECT_LT(result.final_error(), 0.5);
}

TEST(FaultTolerance, PersistentSingleWorkerFaultHandledByRetryHop) {
  // Worker 0 never succeeds; retries hop to worker 1 and the job completes.
  engine::FaultPlan plan;
  plan.fail_task({.worker = 0}, /*times=*/0);  // 0 = every match, forever
  engine::Cluster cluster(faulty_config(2, plan));
  const Workload workload = tiny_workload(4);
  SolverConfig config = fast_config(10);
  const RunResult result = SgdSolver::run(cluster, workload, config);
  EXPECT_LT(result.final_error(), 1.0);
  EXPECT_GT(cluster.metrics().tasks_failed.load(), 0u);
}

}  // namespace
}  // namespace asyncml::optim
