// Integration tests: synchronous solvers (SGD, MLlib-SGD, SAGA, NaiveSAGA)
// on the threaded cluster, verified against the problem's known optimum.

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "optim/mllib_sgd.hpp"
#include "optim/naive_saga.hpp"
#include "optim/objective.hpp"
#include "optim/saga.hpp"
#include "optim/sgd.hpp"

namespace asyncml::optim {
namespace {

engine::Cluster::Config quiet_config(int workers) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 2;
  config.network.time_scale = 0.0;
  return config;
}

Workload tiny_workload(std::uint64_t seed, int partitions = 8,
                       std::size_t rows = 240, std::size_t cols = 10) {
  const auto problem = data::synthetic::tiny(rows, cols, 0.0, seed);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  return Workload::create(dataset, partitions, make_least_squares());
}

SolverConfig fast_config() {
  SolverConfig config;
  config.updates = 120;
  config.batch_fraction = 0.3;
  config.step = inverse_decay_step(0.05, 1.0, 0.01);
  config.service_floor_ms = 0.1;
  config.eval_every = 20;
  return config;
}

TEST(SgdSolver, ConvergesTowardOptimum) {
  engine::Cluster cluster(quiet_config(4));
  const Workload workload = tiny_workload(1);
  const RunResult result = SgdSolver::run(cluster, workload, fast_config());
  EXPECT_EQ(result.algorithm, "SGD");
  EXPECT_EQ(result.updates, 120u);
  EXPECT_LT(result.final_error(), 0.1);
  // Error decreased substantially from the start.
  EXPECT_LT(result.trace.back().error, result.trace.front().error * 0.2);
}

TEST(SgdSolver, TraceIsTimeOrdered) {
  engine::Cluster cluster(quiet_config(2));
  const Workload workload = tiny_workload(2, 4);
  const RunResult result = SgdSolver::run(cluster, workload, fast_config());
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_LE(result.trace[i - 1].time_ms, result.trace[i].time_ms);
    EXPECT_LE(result.trace[i - 1].update, result.trace[i].update);
  }
}

TEST(SgdSolver, TasksEqualUpdatesTimesPartitions) {
  engine::Cluster cluster(quiet_config(4));
  const Workload workload = tiny_workload(3, 8);
  SolverConfig config = fast_config();
  config.updates = 10;
  const RunResult result = SgdSolver::run(cluster, workload, config);
  EXPECT_EQ(result.tasks, 10u * 8u);
}

TEST(MllibSgdSolver, MatchesSgdTrajectoryShape) {
  // Figure 2's claim: ASYNC's SGD ≈ MLlib's SGD. With identical seeds the
  // two differ only in reduction topology, so final errors should be close.
  const Workload workload = tiny_workload(4);
  SolverConfig config = fast_config();
  config.step = inv_sqrt_step(0.05);

  engine::Cluster c1(quiet_config(4));
  const RunResult sgd = SgdSolver::run(c1, workload, config);
  engine::Cluster c2(quiet_config(4));
  const RunResult mllib = MllibSgdSolver::run(c2, workload, config);

  EXPECT_EQ(mllib.algorithm, "MLlib-SGD");
  EXPECT_LT(mllib.final_error(), 0.5);
  const double ratio = (sgd.final_error() + 1e-12) / (mllib.final_error() + 1e-12);
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 5.0);
}

TEST(MllibSgdSolver, IdenticalSumsToFlatAggregate) {
  // treeAggregate must not change the mathematical result: with the same
  // seed both solvers see identical batches, so trajectories coincide up to
  // floating-point reassociation.
  const Workload workload = tiny_workload(5, 8);
  SolverConfig config = fast_config();
  config.updates = 20;

  engine::Cluster c1(quiet_config(4));
  const RunResult flat = SgdSolver::run(c1, workload, config);
  engine::Cluster c2(quiet_config(4));
  const RunResult tree = MllibSgdSolver::run(c2, workload, config);
  EXPECT_NEAR(flat.final_error(), tree.final_error(), 1e-9);
}

TEST(SagaSolver, ConvergesLinearlbyOnNoiselessProblem) {
  engine::Cluster cluster(quiet_config(4));
  const Workload workload = tiny_workload(6);
  SolverConfig config = fast_config();
  config.updates = 250;
  config.step = constant_step(0.02);
  const RunResult result = SagaSolver::run(cluster, workload, config);
  EXPECT_EQ(result.algorithm, "SAGA");
  EXPECT_LT(result.final_error(), 1e-3);
}

TEST(SagaSolver, VarianceReductionBeatsSgd) {
  // The regime where variance reduction matters: *noisy* labels (so
  // per-sample gradients do not vanish at the optimum), small mini-batches,
  // and a constant step. SGD's gradient noise leaves it at a plateau above
  // the optimum while SAGA keeps descending toward it.
  const auto problem = data::synthetic::tiny(240, 10, /*noise_std=*/0.5, 7);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  const Workload workload = Workload::create(dataset, 8, make_least_squares());

  SolverConfig config = fast_config();
  config.updates = 300;
  config.batch_fraction = 0.05;
  config.step = constant_step(0.02);

  engine::Cluster c1(quiet_config(4));
  const RunResult sgd = SgdSolver::run(c1, workload, config);
  engine::Cluster c2(quiet_config(4));
  const RunResult saga = SagaSolver::run(c2, workload, config);
  // Errors here are raw objectives (baseline 0); both sit above the true
  // noise floor, SAGA strictly closer.
  EXPECT_LT(saga.final_error(), sgd.final_error());
}

TEST(NaiveSagaSolver, SameMathAsSagaShortHorizon) {
  // Same batches, same update rule -> same trajectory. Compared over a short
  // horizon because the two paths combine partition results in different
  // orders; the ~1e-16 reassociation difference grows exponentially through
  // locally-expansive stochastic rounds, so bit-level agreement is only a
  // meaningful invariant before that amplification kicks in.
  const Workload workload = tiny_workload(8, 4);
  SolverConfig config = fast_config();
  config.updates = 5;
  config.step = constant_step(0.02);

  engine::Cluster c1(quiet_config(2));
  const RunResult saga = SagaSolver::run(c1, workload, config);
  engine::Cluster c2(quiet_config(2));
  const RunResult naive = NaiveSagaSolver::run(c2, workload, config);
  EXPECT_NEAR(saga.final_error(), naive.final_error(), 1e-9);
}

TEST(NaiveSagaSolver, SameConvergenceAsSagaLongHorizon) {
  // Over a long run the two implementations must agree qualitatively: both
  // converge, to errors within a small factor of each other.
  const Workload workload = tiny_workload(8, 4);
  SolverConfig config = fast_config();
  config.updates = 120;
  config.step = constant_step(0.02);

  engine::Cluster c1(quiet_config(2));
  const RunResult saga = SagaSolver::run(c1, workload, config);
  engine::Cluster c2(quiet_config(2));
  const RunResult naive = NaiveSagaSolver::run(c2, workload, config);
  EXPECT_LT(saga.final_error(), 0.05);
  EXPECT_LT(naive.final_error(), 0.05);
  const double ratio = (saga.final_error() + 1e-12) / (naive.final_error() + 1e-12);
  EXPECT_GT(ratio, 0.05);
  EXPECT_LT(ratio, 20.0);
}

TEST(NaiveSagaSolver, BroadcastBytesGrowQuadratically) {
  // Total naive traffic after k rounds ~ sum of i*d = O(k²d); ASYNC's stays
  // O(k·d). Verify the naive solver ships far more bytes.
  const Workload workload = tiny_workload(9, 4);
  SolverConfig config = fast_config();
  config.updates = 40;
  config.step = constant_step(0.02);

  engine::Cluster c1(quiet_config(2));
  const RunResult saga = SagaSolver::run(c1, workload, config);
  engine::Cluster c2(quiet_config(2));
  const RunResult naive = NaiveSagaSolver::run(c2, workload, config);
  EXPECT_GT(naive.broadcast_bytes, saga.broadcast_bytes * 4);
}

TEST(SyncSolvers, WaitTimesRecorded) {
  engine::Cluster cluster(quiet_config(4));
  const Workload workload = tiny_workload(10);
  SolverConfig config = fast_config();
  config.updates = 30;
  const RunResult result = SgdSolver::run(cluster, workload, config);
  EXPECT_GE(result.mean_wait_ms, 0.0);
  EXPECT_GT(cluster.metrics().total_wait_histogram().count(), 0u);
}

}  // namespace
}  // namespace asyncml::optim
