#include "engine/payload.hpp"

#include <gtest/gtest.h>

#include <string>

#include "linalg/dense_vector.hpp"

namespace asyncml::engine {
namespace {

TEST(Payload, EmptyHasNoValue) {
  Payload p;
  EXPECT_FALSE(p.has_value());
  EXPECT_EQ(p.bytes(), 0u);
}

TEST(Payload, WrapAndGet) {
  Payload p = Payload::wrap<int>(42);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p.get<int>(), 42);
  EXPECT_EQ(p.bytes(), sizeof(int));
}

TEST(Payload, ExplicitByteSize) {
  linalg::DenseVector v(10);
  Payload p = Payload::wrap<linalg::DenseVector>(v, v.size_bytes());
  EXPECT_EQ(p.bytes(), 80u);
}

TEST(Payload, HoldsChecksType) {
  Payload p = Payload::wrap<int>(1);
  EXPECT_TRUE(p.holds<int>());
  EXPECT_FALSE(p.holds<double>());
  EXPECT_FALSE(Payload{}.holds<int>());
}

TEST(Payload, SharedAcrossCopies) {
  // Container-backed payloads must pass their real serialized size; the
  // sizeof-defaulting overload is compile-time restricted to trivially
  // copyable types.
  static_assert(!std::is_trivially_copyable_v<std::string>);
  Payload a = Payload::wrap<std::string>(std::string("hello"), 5);
  Payload b = a;  // shares the underlying value
  EXPECT_EQ(&a.get<std::string>(), &b.get<std::string>());
  EXPECT_EQ(b.bytes(), 5u);
}

TEST(Payload, MovePreservesValue) {
  Payload a = Payload::wrap<std::string>(std::string("xyz"), 3);
  Payload b = std::move(a);
  EXPECT_EQ(b.get<std::string>(), "xyz");
  EXPECT_EQ(b.bytes(), 3u);
}

}  // namespace
}  // namespace asyncml::engine
