#include "engine/cluster.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "straggler/controlled_delay.hpp"

namespace asyncml::engine {
namespace {

Cluster::Config quiet_config(int workers, int cores = 1) {
  Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = cores;
  config.network.time_scale = 0.0;  // no charged communication in unit tests
  return config;
}

TaskSpec make_task(Cluster& cluster, PartitionId p, TaskFn fn,
                   double service_ms = 0.0) {
  TaskSpec spec;
  spec.id = cluster.next_task_id();
  spec.partition = p;
  spec.fn = std::make_shared<const TaskFn>(std::move(fn));
  spec.service_floor_ms = service_ms;
  return spec;
}

TEST(Cluster, ConfigValidationRejectsNonPositiveSizes) {
  // Explicit std::invalid_argument (not an assert): a zero-worker cluster
  // from un-sanitized input must fail loudly in Release builds too.
  EXPECT_THROW(Cluster(quiet_config(0)), std::invalid_argument);
  EXPECT_THROW(Cluster(quiet_config(-3)), std::invalid_argument);
  EXPECT_THROW(Cluster(quiet_config(2, 0)), std::invalid_argument);
  try {
    Cluster cluster(quiet_config(2, -1));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cores_per_worker"), std::string::npos)
        << e.what();
  }
}

TEST(Cluster, ExecutesTaskAndReturnsResult) {
  Cluster cluster(quiet_config(2));
  auto spec = make_task(cluster, 0, [](TaskContext& ctx) -> support::StatusOr<Payload> {
    return Payload::wrap<int>(ctx.worker + 100);
  });
  ASSERT_TRUE(cluster.submit(1, std::move(spec)));
  auto results = cluster.collect_n(1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[0].worker, 1);
  EXPECT_EQ(results[0].payload.get<int>(), 101);
}

TEST(Cluster, TaskIdsMonotonic) {
  Cluster cluster(quiet_config(1));
  const TaskId a = cluster.next_task_id();
  const TaskId b = cluster.next_task_id();
  EXPECT_LT(a, b);
}

TEST(Cluster, ManyTasksAllComplete) {
  Cluster cluster(quiet_config(4, 2));
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    auto spec = make_task(cluster, i, [i](TaskContext&) -> support::StatusOr<Payload> {
      return Payload::wrap<int>(i);
    });
    cluster.submit(i % 4, std::move(spec));
  }
  auto results = cluster.collect_n(kTasks);
  ASSERT_EQ(results.size(), static_cast<std::size_t>(kTasks));
  std::set<int> values;
  for (const TaskResult& r : results) values.insert(r.payload.get<int>());
  EXPECT_EQ(values.size(), static_cast<std::size_t>(kTasks));
  EXPECT_EQ(cluster.metrics().tasks_completed.load(), static_cast<std::uint64_t>(kTasks));
}

TEST(Cluster, TaskExceptionBecomesErrorResult) {
  Cluster cluster(quiet_config(1));
  auto spec = make_task(cluster, 0, [](TaskContext&) -> support::StatusOr<Payload> {
    throw std::runtime_error("boom");
  });
  cluster.submit(0, std::move(spec));
  auto results = cluster.collect_n(1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_NE(results[0].status.message().find("boom"), std::string::npos);
  EXPECT_EQ(cluster.metrics().tasks_failed.load(), 1u);
}

TEST(Cluster, TaskStatusErrorPropagates) {
  Cluster cluster(quiet_config(1));
  auto spec = make_task(cluster, 0, [](TaskContext&) -> support::StatusOr<Payload> {
    return support::Status(support::StatusCode::kUnavailable, "no data");
  });
  cluster.submit(0, std::move(spec));
  auto results = cluster.collect_n(1);
  EXPECT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].status.code(), support::StatusCode::kUnavailable);
}

TEST(Cluster, MissingFunctionRejected) {
  Cluster cluster(quiet_config(1));
  TaskSpec spec;
  spec.id = cluster.next_task_id();
  cluster.submit(0, std::move(spec));
  auto results = cluster.collect_n(1);
  EXPECT_FALSE(results[0].ok());
}

TEST(Cluster, FaultPlanForcesFailure) {
  Cluster::Config config = quiet_config(1);
  config.faults.fail_task({}, /*times=*/1);  // fail only the first task
  Cluster cluster(config);
  for (int i = 0; i < 2; ++i) {
    auto spec = make_task(cluster, i, [](TaskContext&) -> support::StatusOr<Payload> {
      return Payload::wrap<int>(1);
    });
    cluster.submit(0, std::move(spec));
  }
  auto results = cluster.collect_n(2);
  int failures = 0;
  for (const TaskResult& r : results) failures += r.ok() ? 0 : 1;
  EXPECT_EQ(failures, 1);
  ASSERT_NE(cluster.faults(), nullptr);
  EXPECT_EQ(cluster.faults()->stats().tasks_failed, 1u);
}

TEST(Cluster, ServiceFloorPadsExecution) {
  Cluster cluster(quiet_config(1));
  auto spec = make_task(
      cluster, 0,
      [](TaskContext&) -> support::StatusOr<Payload> { return Payload::wrap<int>(0); },
      /*service_ms=*/8.0);
  cluster.submit(0, std::move(spec));
  auto results = cluster.collect_n(1);
  EXPECT_GE(results[0].service_ms, 7.5);
  EXPECT_GE(results[0].service_ms, results[0].compute_ms);
}

TEST(Cluster, DelayModelMultipliesServiceTime) {
  Cluster::Config config = quiet_config(2);
  config.delay = std::make_shared<straggler::ControlledDelay>(/*straggler=*/1,
                                                              /*intensity=*/1.0);
  Cluster cluster(config);
  for (WorkerId w = 0; w < 2; ++w) {
    auto spec = make_task(
        cluster, w,
        [](TaskContext&) -> support::StatusOr<Payload> { return Payload::wrap<int>(0); },
        /*service_ms=*/6.0);
    cluster.submit(w, std::move(spec));
  }
  auto results = cluster.collect_n(2);
  double fast = 0.0, slow = 0.0;
  for (const TaskResult& r : results) {
    (r.worker == 1 ? slow : fast) = r.service_ms;
  }
  EXPECT_GE(fast, 5.5);
  EXPECT_LT(fast, 10.0);
  EXPECT_GE(slow, 11.0);  // 2x service
}

TEST(Cluster, TaskRngDeterministicPerPartitionSeq) {
  Cluster cluster(quiet_config(2, 2));
  auto grab_rng = [](TaskContext& ctx) -> support::StatusOr<Payload> {
    return Payload::wrap<std::uint64_t>(ctx.rng());
  };
  auto submit = [&](WorkerId w, PartitionId p, std::uint64_t seq, std::uint64_t seed) {
    TaskSpec spec = make_task(cluster, p, grab_rng);
    spec.seq = seq;
    spec.rng_seed = seed;
    cluster.submit(w, std::move(spec));
  };
  // Same (seed, partition, seq) on different workers -> same stream.
  submit(0, 3, 7, 42);
  submit(1, 3, 7, 42);
  // Different partition or seq -> different stream.
  submit(0, 4, 7, 42);
  submit(1, 3, 8, 42);
  auto results = cluster.collect_n(4);
  std::uint64_t same_a = 0, same_b = 0;
  std::set<std::uint64_t> all;
  int matched = 0;
  for (const TaskResult& r : results) {
    const auto v = r.payload.get<std::uint64_t>();
    all.insert(v);
    if (r.partition == 3 && r.seq == 7) {
      (matched++ == 0 ? same_a : same_b) = v;
    }
  }
  EXPECT_EQ(same_a, same_b);
  EXPECT_EQ(all.size(), 3u);  // {same pair, partition-4, seq-8}
}

TEST(Cluster, ShutdownRefusesNewTasks) {
  Cluster cluster(quiet_config(1));
  cluster.shutdown();
  auto spec = make_task(cluster, 0, [](TaskContext&) -> support::StatusOr<Payload> {
    return Payload::wrap<int>(0);
  });
  EXPECT_FALSE(cluster.submit(0, std::move(spec)));
}

TEST(Cluster, WaitTimeRecordedBetweenTasks) {
  Cluster cluster(quiet_config(1, 1));
  for (int i = 0; i < 3; ++i) {
    auto spec = make_task(cluster, i, [](TaskContext&) -> support::StatusOr<Payload> {
      return Payload::wrap<int>(0);
    });
    cluster.submit(0, std::move(spec));
  }
  (void)cluster.collect_n(3);
  // First task has no predecessor; the remaining two record waits.
  EXPECT_EQ(cluster.metrics().wait_histogram(0).count(), 2u);
}

}  // namespace
}  // namespace asyncml::engine
