#include "engine/broadcast.hpp"

#include <gtest/gtest.h>

#include "linalg/dense_vector.hpp"

namespace asyncml::engine {
namespace {

TEST(BroadcastStore, PutGetRoundTrip) {
  BroadcastStore store;
  const BroadcastId id = store.put(Payload::wrap<int>(7));
  EXPECT_EQ(store.get(id).get<int>(), 7);
  EXPECT_EQ(store.size(), 1u);
}

TEST(BroadcastStore, IdsAreUniqueAndIncreasing) {
  BroadcastStore store;
  const BroadcastId a = store.put(Payload::wrap<int>(1));
  const BroadcastId b = store.put(Payload::wrap<int>(2));
  EXPECT_LT(a, b);
}

TEST(BroadcastStore, MissingIdReturnsEmpty) {
  BroadcastStore store;
  EXPECT_FALSE(store.get(999).has_value());
}

TEST(BroadcastStore, EraseRemovesEntry) {
  BroadcastStore store;
  const BroadcastId id = store.put(Payload::wrap<int>(1));
  store.erase(id);
  EXPECT_FALSE(store.get(id).has_value());
  store.erase(id);  // idempotent
}

TEST(BroadcastStore, EraseTargetsExactIdOnly) {
  // Eviction is by exact id: ids are registration-ordered, not version-
  // ordered, so a foreign broadcast registered between two model versions
  // must survive the models being dropped around it.
  BroadcastStore store;
  const BroadcastId old_model = store.put(Payload::wrap<int>(1));
  const BroadcastId foreign = store.put(Payload::wrap<int>(42));
  const BroadcastId new_model = store.put(Payload::wrap<int>(2));
  store.erase(old_model);
  EXPECT_FALSE(store.get(old_model).has_value());
  EXPECT_TRUE(store.get(foreign).has_value());
  EXPECT_TRUE(store.get(new_model).has_value());
}

TEST(BroadcastCache, FetchThroughCachesValue) {
  BroadcastStore store;
  NetworkModel net;
  net.time_scale = 0.0;  // no sleeps in unit tests
  ClusterMetrics metrics(1);
  BroadcastCache cache(&store, &net, &metrics);

  const BroadcastId id = store.put(Payload::wrap<int>(5));
  EXPECT_FALSE(cache.contains(id));
  EXPECT_EQ(cache.get_or_fetch(id).get<int>(), 5);
  EXPECT_TRUE(cache.contains(id));
  EXPECT_EQ(metrics.broadcast_fetches.load(), 1u);

  // Second access is a hit: no new fetch, no new bytes.
  const std::uint64_t bytes_after_first = metrics.broadcast_bytes.load();
  EXPECT_EQ(cache.get_or_fetch(id).get<int>(), 5);
  EXPECT_EQ(metrics.broadcast_fetches.load(), 1u);
  EXPECT_EQ(metrics.broadcast_hits.load(), 1u);
  EXPECT_EQ(metrics.broadcast_bytes.load(), bytes_after_first);
}

TEST(BroadcastCache, MissOnUnknownIdDoesNotCache) {
  BroadcastStore store;
  NetworkModel net;
  net.time_scale = 0.0;
  BroadcastCache cache(&store, &net, nullptr);
  EXPECT_FALSE(cache.get_or_fetch(123).has_value());
  EXPECT_FALSE(cache.contains(123));
}

TEST(BroadcastCache, EraseDropsExactEntry) {
  BroadcastStore store;
  NetworkModel net;
  net.time_scale = 0.0;
  BroadcastCache cache(&store, &net, nullptr);
  const BroadcastId a = store.put(Payload::wrap<int>(1));
  const BroadcastId b = store.put(Payload::wrap<int>(2));
  (void)cache.get_or_fetch(a);
  (void)cache.get_or_fetch(b);
  EXPECT_EQ(cache.size(), 2u);
  cache.erase(a);
  EXPECT_FALSE(cache.contains(a));
  EXPECT_TRUE(cache.contains(b));
  cache.erase(a);  // idempotent
  EXPECT_EQ(cache.size(), 1u);
}

TEST(BroadcastCache, AdmitChargesOnMissAndIsFreeOnHit) {
  BroadcastStore store;
  NetworkModel net;
  net.time_scale = 0.0;
  ClusterMetrics metrics(1);
  BroadcastCache cache(&store, &net, &metrics);

  // Admit a payload the caller already holds (a pinned chain link): the id
  // need not be resolvable through the store anymore.
  const BroadcastId id = store.put(Payload::wrap<int>(5, 64));
  const Payload pinned = store.get(id);
  store.erase(id);

  EXPECT_EQ(cache.admit(id, pinned, BroadcastClass::kDelta).get<int>(), 5);
  EXPECT_EQ(metrics.broadcast_fetches.load(), 1u);
  EXPECT_EQ(metrics.broadcast_bytes.load(), 64u);
  EXPECT_EQ(metrics.broadcast_delta_bytes.load(), 64u);
  EXPECT_EQ(metrics.broadcast_base_bytes.load(), 0u);

  // Second admit of the same id is a hit: no new bytes.
  EXPECT_EQ(cache.admit(id, pinned, BroadcastClass::kDelta).get<int>(), 5);
  EXPECT_EQ(metrics.broadcast_fetches.load(), 1u);
  EXPECT_EQ(metrics.broadcast_hits.load(), 1u);
  EXPECT_EQ(metrics.broadcast_bytes.load(), 64u);
}

TEST(BroadcastCache, FetchClassSplitsByteAccounting) {
  BroadcastStore store;
  NetworkModel net;
  net.time_scale = 0.0;
  ClusterMetrics metrics(1);
  BroadcastCache cache(&store, &net, &metrics);
  const BroadcastId snap = store.put(Payload::wrap<int>(1, 100));
  const BroadcastId delta = store.put(Payload::wrap<int>(2, 12));
  (void)cache.get_or_fetch(snap, BroadcastClass::kSnapshot);
  (void)cache.get_or_fetch(delta, BroadcastClass::kDelta);
  EXPECT_EQ(metrics.broadcast_base_bytes.load(), 100u);
  EXPECT_EQ(metrics.broadcast_delta_bytes.load(), 12u);
  EXPECT_EQ(metrics.broadcast_bytes.load(), 112u);
}

TEST(BroadcastHandle, DriverSideValueReadsStore) {
  BroadcastStore store;
  const BroadcastId id =
      store.put(Payload::wrap<linalg::DenseVector>(linalg::DenseVector{1, 2}, 16));
  Broadcast<linalg::DenseVector> handle(id, &store);
  ASSERT_TRUE(handle.valid());
  EXPECT_DOUBLE_EQ(handle.value()[1], 2.0);
}

TEST(BroadcastHandle, WorkerSideValueGoesThroughCache) {
  BroadcastStore store;
  NetworkModel net;
  net.time_scale = 0.0;
  ClusterMetrics metrics(1);
  BroadcastCache cache(&store, &net, &metrics);
  const BroadcastId id = store.put(Payload::wrap<int>(9));
  Broadcast<int> handle(id, &store);

  WorkerEnv env{0, &cache};
  set_current_worker_env(&env);
  EXPECT_EQ(handle.value(), 9);
  set_current_worker_env(nullptr);

  EXPECT_TRUE(cache.contains(id));
  EXPECT_EQ(metrics.broadcast_fetches.load(), 1u);
}

TEST(NetworkModel, TransferTimeScalesWithBytes) {
  NetworkModel net;
  net.latency_ms = 1.0;
  net.bandwidth_MBps = 1.0;  // 1 MB/s => 1 MB takes 1000 ms
  net.time_scale = 1.0;
  EXPECT_NEAR(net.transfer_ms(0), 1.0, 1e-9);
  EXPECT_NEAR(net.transfer_ms(1024 * 1024), 1001.0, 1e-6);
}

TEST(NetworkModel, ZeroScaleDisablesCharging) {
  NetworkModel net;
  net.time_scale = 0.0;
  EXPECT_DOUBLE_EQ(net.transfer_ms(1024 * 1024 * 100), 0.0);
}

}  // namespace
}  // namespace asyncml::engine
