#include "engine/actions.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace asyncml::engine {
namespace {

Cluster::Config quiet_config(int workers, int cores = 2) {
  Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = cores;
  config.network.time_scale = 0.0;
  return config;
}

TEST(AggregateSync, SumsAcrossPartitions) {
  Cluster cluster(quiet_config(3));
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 1);  // 1..100
  const Rdd<int> rdd = make_vector_rdd(values, 6);
  const long total = aggregate_sync(
      cluster, rdd, 0L, [](long acc, const int& x) { return acc + x; },
      [](long a, const long& b) { return a + b; }, StageOptions{});
  EXPECT_EQ(total, 5050L);
}

TEST(AggregateSync, MorePartitionsThanWorkers) {
  Cluster cluster(quiet_config(2, 1));
  const Rdd<int> rdd = make_vector_rdd(std::vector<int>(40, 1), 10);
  const long total = aggregate_sync(
      cluster, rdd, 0L, [](long acc, const int& x) { return acc + x; },
      [](long a, const long& b) { return a + b; }, StageOptions{});
  EXPECT_EQ(total, 40L);
}

TEST(ReduceSync, FoldsWithoutExplicitZero) {
  Cluster cluster(quiet_config(2));
  const Rdd<int> rdd = make_vector_rdd(std::vector<int>{3, 1, 4, 1, 5}, 3);
  const int max_value = reduce_sync(
      cluster, rdd, [](int a, const int& b) { return std::max(a, b); }, StageOptions{});
  EXPECT_EQ(max_value, 5);
}

TEST(TreeAggregateSync, MatchesFlatAggregate) {
  Cluster cluster(quiet_config(4));
  std::vector<int> values(1'000);
  std::iota(values.begin(), values.end(), 0);
  const Rdd<int> rdd = make_vector_rdd(values, 16);
  const auto seq = [](long acc, const int& x) { return acc + x; };
  const auto comb = [](long a, const long& b) { return a + b; };
  const long flat = aggregate_sync(cluster, rdd, 0L, seq, comb, StageOptions{});
  const long tree = tree_aggregate_sync(cluster, rdd, 0L, seq, comb, StageOptions{},
                                        /*fanout=*/4);
  EXPECT_EQ(flat, tree);
  EXPECT_EQ(flat, 499'500L);
}

TEST(TreeAggregateSync, FanoutLargerThanPartitions) {
  Cluster cluster(quiet_config(2));
  const Rdd<int> rdd = make_vector_rdd(std::vector<int>{1, 2, 3}, 3);
  const long total = tree_aggregate_sync(
      cluster, rdd, 0L, [](long acc, const int& x) { return acc + x; },
      [](long a, const long& b) { return a + b; }, StageOptions{}, /*fanout=*/16);
  EXPECT_EQ(total, 6L);
}

TEST(RunTasksSync, RetriesInjectedFaultOnAnotherWorker) {
  Cluster::Config config = quiet_config(2, 1);
  // Worker 0 always fails; worker 1 succeeds — retry must hop workers.
  config.faults.fail_task({.worker = 0}, /*times=*/0);
  Cluster cluster(config);
  const Rdd<int> rdd = make_vector_rdd(std::vector<int>{7}, 1);
  StageOptions options;
  options.max_retries = 2;
  const long total = aggregate_sync(
      cluster, rdd, 0L, [](long acc, const int& x) { return acc + x; },
      [](long a, const long& b) { return a + b; }, options);
  EXPECT_EQ(total, 7L);
  ASSERT_NE(cluster.faults(), nullptr);
  EXPECT_GE(cluster.faults()->stats().tasks_failed, 1u);
}

TEST(RunTasksSync, ResultsOrderedBySubmissionSlot) {
  Cluster cluster(quiet_config(3, 1));
  std::vector<std::pair<WorkerId, TaskSpec>> tasks;
  for (int i = 0; i < 6; ++i) {
    TaskSpec spec;
    spec.id = cluster.next_task_id();
    spec.partition = i;
    spec.fn = std::make_shared<const TaskFn>(
        [i](TaskContext&) -> support::StatusOr<Payload> { return Payload::wrap<int>(i); });
    // Stagger service times so completion order differs from submission order.
    spec.service_floor_ms = (6 - i) * 1.0;
    tasks.emplace_back(i % 3, std::move(spec));
  }
  const auto results = run_tasks_sync(cluster, std::move(tasks), 0);
  ASSERT_EQ(results.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(results[i].payload.get<int>(), i);
}

TEST(AggregateSync, SamplingVariesWithSeq) {
  Cluster cluster(quiet_config(2));
  std::vector<int> values(1'000);
  std::iota(values.begin(), values.end(), 0);
  const Rdd<int> sampled = make_vector_rdd(values, 4).sample(0.05);
  const auto seq_op = [](long acc, const int& x) { return acc + x; };
  const auto comb = [](long a, const long& b) { return a + b; };
  StageOptions o1;
  o1.seq = 1;
  StageOptions o2;
  o2.seq = 2;
  const long s1 = aggregate_sync(cluster, sampled, 0L, seq_op, comb, o1);
  const long s1_again = aggregate_sync(cluster, sampled, 0L, seq_op, comb, o1);
  const long s2 = aggregate_sync(cluster, sampled, 0L, seq_op, comb, o2);
  EXPECT_EQ(s1, s1_again);  // deterministic per seq
  EXPECT_NE(s1, s2);        // fresh batch per round
}

TEST(PayloadSizeBytes, DenseVectorOverloadUsed) {
  linalg::DenseVector v(32);
  EXPECT_EQ(payload_size_bytes(v), 256u);
  EXPECT_EQ(payload_size_bytes(42), sizeof(int));
}

}  // namespace
}  // namespace asyncml::engine
