#include "engine/rdd.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "data/synthetic.hpp"

namespace asyncml::engine {
namespace {

TaskContext make_ctx(PartitionId p, std::uint64_t seq = 0, std::uint64_t seed = 1) {
  TaskContext ctx;
  ctx.partition = p;
  ctx.seq = seq;
  ctx.rng = support::RngStream(seed).substream(p + 1).substream(seq);
  return ctx;
}

template <typename T>
std::vector<T> materialize(const Rdd<T>& rdd, PartitionId p, std::uint64_t seq = 0) {
  TaskContext ctx = make_ctx(p, seq);
  std::vector<T> out;
  rdd.foreach_partition(p, ctx, [&](const T& t) { out.push_back(t); });
  return out;
}

TEST(VectorRdd, PartitionsCoverAllElements) {
  std::vector<int> values(10);
  std::iota(values.begin(), values.end(), 0);
  const Rdd<int> rdd = make_vector_rdd(values, 3);
  ASSERT_EQ(rdd.num_partitions(), 3);
  std::vector<int> all;
  for (int p = 0; p < 3; ++p) {
    for (int v : materialize(rdd, p)) all.push_back(v);
  }
  EXPECT_EQ(all, values);
}

TEST(Rdd, MapTransformsElements) {
  const Rdd<int> rdd = make_vector_rdd(std::vector<int>{1, 2, 3}, 1);
  const auto doubled = rdd.map([](const int& x) { return x * 2; });
  EXPECT_EQ(materialize(doubled, 0), (std::vector<int>{2, 4, 6}));
}

TEST(Rdd, MapChangesElementType) {
  const Rdd<int> rdd = make_vector_rdd(std::vector<int>{1, 2}, 1);
  const auto as_double = rdd.map([](const int& x) { return x + 0.5; });
  EXPECT_EQ(materialize(as_double, 0), (std::vector<double>{1.5, 2.5}));
}

TEST(Rdd, FilterDropsElements) {
  const Rdd<int> rdd = make_vector_rdd(std::vector<int>{1, 2, 3, 4, 5}, 1);
  const auto evens = rdd.filter([](const int& x) { return x % 2 == 0; });
  EXPECT_EQ(materialize(evens, 0), (std::vector<int>{2, 4}));
}

TEST(Rdd, TransformationsCompose) {
  const Rdd<int> rdd = make_vector_rdd(std::vector<int>{1, 2, 3, 4}, 2);
  const auto chain =
      rdd.filter([](const int& x) { return x > 1; }).map([](const int& x) {
        return x * 10;
      });
  std::vector<int> all;
  for (int p = 0; p < 2; ++p) {
    for (int v : materialize(chain, p)) all.push_back(v);
  }
  EXPECT_EQ(all, (std::vector<int>{20, 30, 40}));
}

TEST(Rdd, TransformationsAreLazyAndReusable) {
  // The same lineage evaluated twice yields the same elements (no hidden
  // state consumed by iteration).
  const Rdd<int> rdd = make_vector_rdd(std::vector<int>{5, 6}, 1);
  const auto mapped = rdd.map([](const int& x) { return x + 1; });
  EXPECT_EQ(materialize(mapped, 0), materialize(mapped, 0));
}

TEST(Rdd, SampleFractionZeroIsEmpty) {
  const Rdd<int> rdd = make_vector_rdd(std::vector<int>(100, 1), 1);
  EXPECT_TRUE(materialize(rdd.sample(0.0), 0).empty());
}

TEST(Rdd, SampleFractionOneKeepsEverything) {
  const Rdd<int> rdd = make_vector_rdd(std::vector<int>(100, 1), 1);
  EXPECT_EQ(materialize(rdd.sample(1.0), 0).size(), 100u);
}

TEST(Rdd, SampleDeterministicPerSeq) {
  std::vector<int> values(1'000);
  std::iota(values.begin(), values.end(), 0);
  const Rdd<int> rdd = make_vector_rdd(values, 1);
  const auto sampled = rdd.sample(0.1);
  EXPECT_EQ(materialize(sampled, 0, 5), materialize(sampled, 0, 5));
  EXPECT_NE(materialize(sampled, 0, 5), materialize(sampled, 0, 6));
}

TEST(Rdd, SampleSizeNearExpectation) {
  std::vector<int> values(10'000, 1);
  const Rdd<int> rdd = make_vector_rdd(values, 1);
  const auto sampled = materialize(rdd.sample(0.1), 0);
  EXPECT_NEAR(static_cast<double>(sampled.size()), 1'000.0, 120.0);
}

TEST(PointsRdd, StreamsDatasetRowsPerPartition) {
  const auto problem = data::synthetic::tiny(10, 3, 0.0, 2);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  const auto parts = data::contiguous_partitions(10, 2);
  const Rdd<data::LabeledPoint> points = make_points_rdd(dataset, parts);

  ASSERT_EQ(points.num_partitions(), 2);
  const auto p0 = materialize(points, 0);
  const auto p1 = materialize(points, 1);
  ASSERT_EQ(p0.size(), 5u);
  ASSERT_EQ(p1.size(), 5u);
  EXPECT_EQ(p0.front().index, 0u);
  EXPECT_EQ(p1.front().index, 5u);
  EXPECT_DOUBLE_EQ(p0[2].label, dataset->labels()[2]);
}

TEST(PointsRdd, GlobalIndicesSurviveSampling) {
  const auto problem = data::synthetic::tiny(100, 3, 0.0, 2);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  const auto parts = data::contiguous_partitions(100, 4);
  const auto sampled = make_points_rdd(dataset, parts).sample(0.3);
  for (int p = 0; p < 4; ++p) {
    for (const auto& point : materialize(sampled, p)) {
      EXPECT_GE(point.index, parts[p].begin);
      EXPECT_LT(point.index, parts[p].end);
    }
  }
}

}  // namespace
}  // namespace asyncml::engine
