// TraceRing unit tests: pack/unpack fidelity, drop-OLDEST overwrite
// semantics, incremental drains, and data-race-free concurrent
// record/harvest (the TSan CI leg runs this module).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "telemetry/ring.hpp"

namespace asyncml::telemetry {
namespace {

TaskTrace make_trace(std::uint64_t seq) {
  TaskTrace trace;
  trace.worker = 3;
  trace.partition = 7;
  trace.seq = seq;
  trace.model_version = seq * 2;
  for (std::size_t s = 0; s < kNumStages; ++s) {
    trace.stage_ns[s] = seq * 100 + s;
  }
  return trace;
}

TEST(TraceRing, PackUnpackRoundTrip) {
  TraceRing ring(4);
  TaskTrace in = make_trace(42);
  in.worker = -1;     // negative ids survive the 32-bit packing
  in.partition = -2;
  ring.push(in);

  std::vector<TaskTrace> out;
  const auto stats = ring.drain([&](const TaskTrace& t) { out.push_back(t); });
  ASSERT_EQ(stats.drained, 1u);
  EXPECT_EQ(stats.dropped, 0u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].worker, -1);
  EXPECT_EQ(out[0].partition, -2);
  EXPECT_EQ(out[0].seq, 42u);
  EXPECT_EQ(out[0].model_version, 84u);
  for (std::size_t s = 0; s < kNumStages; ++s) {
    EXPECT_EQ(out[0].stage_ns[s], 4200u + s);
  }
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 1u);
  EXPECT_EQ(TraceRing(3).capacity(), 4u);
  EXPECT_EQ(TraceRing(1000).capacity(), 1024u);
}

TEST(TraceRing, WraparoundDropsOldestNotNewest) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) ring.push(make_trace(i));

  std::vector<std::uint64_t> seqs;
  const auto stats = ring.drain([&](const TaskTrace& t) { seqs.push_back(t.seq); });
  // Capacity 4: the newest four records (6..9) survive, the oldest six are
  // counted as dropped — never the other way around.
  EXPECT_EQ(stats.dropped, 6u);
  ASSERT_EQ(stats.drained, 4u);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{6, 7, 8, 9}));
}

TEST(TraceRing, IncrementalDrainsDeliverOnlyNewRecords) {
  TraceRing ring(8);
  ring.push(make_trace(0));
  ring.push(make_trace(1));
  EXPECT_EQ(ring.drain([](const TaskTrace&) {}).drained, 2u);

  ring.push(make_trace(2));
  std::vector<std::uint64_t> seqs;
  const auto stats = ring.drain([&](const TaskTrace& t) { seqs.push_back(t.seq); });
  EXPECT_EQ(stats.drained, 1u);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{2}));

  // Nothing new: drain is a no-op.
  EXPECT_EQ(ring.drain([](const TaskTrace&) {}).drained, 0u);
}

TEST(TraceRing, PushedCountsEveryPush) {
  TraceRing ring(2);
  for (std::uint64_t i = 0; i < 5; ++i) ring.push(make_trace(i));
  EXPECT_EQ(ring.pushed(), 5u);
}

TEST(TraceRing, ConcurrentPushAndDrainLosesNothingUntorn) {
  // One producer, one consumer, small ring: every pushed record is either
  // drained intact or counted dropped — never torn, never double-counted.
  constexpr std::uint64_t kPushes = 20'000;
  TraceRing ring(64);
  std::atomic<bool> done{false};

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kPushes; ++i) ring.push(make_trace(i));
    done.store(true, std::memory_order_release);
  });

  std::uint64_t drained = 0;
  std::uint64_t dropped = 0;
  const auto check = [&](const TaskTrace& t) {
    // Torn records would break the seq-derived invariants.
    EXPECT_EQ(t.model_version, t.seq * 2);
    EXPECT_EQ(t.stage_ns[0], t.seq * 100);
    ++drained;
  };
  while (!done.load(std::memory_order_acquire)) {
    dropped += ring.drain(check).dropped;
  }
  producer.join();
  dropped += ring.drain(check).dropped;

  EXPECT_EQ(drained + dropped, kPushes);
  EXPECT_GT(drained, 0u);
}

}  // namespace
}  // namespace asyncml::telemetry
