// Harvest-cycle tests: cadence, reservoir determinism, recorder
// concurrency, and the end-to-end reconciliation invariants through real
// solver runs (stage sums partition the measured task compute time; the
// disabled path leaves the trajectory bit-identical).

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "optim/asgd.hpp"
#include "optim/objective.hpp"
#include "optim/sgd.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/report.hpp"
#include "telemetry/store.hpp"

namespace asyncml::telemetry {
namespace {

TaskTrace make_trace(std::uint64_t seq) {
  TaskTrace trace;
  trace.worker = 0;
  trace.partition = static_cast<std::int32_t>(seq % 4);
  trace.seq = seq;
  trace.stage_ns[static_cast<std::size_t>(Stage::kCompute)] = 1000 + seq;
  return trace;
}

std::vector<std::uint64_t> reservoir_seqs(std::uint64_t seed) {
  TelemetryStore store(1);
  store.reset(/*reservoir_capacity=*/8, seed);
  for (std::uint64_t i = 0; i < 500; ++i) store.absorb(make_trace(i));
  std::vector<std::uint64_t> seqs;
  for (const TaskTrace& t : store.snapshot().samples) seqs.push_back(t.seq);
  return seqs;
}

TEST(TelemetryStore, ReservoirIsSeedDeterministic) {
  const auto a = reservoir_seqs(42);
  const auto b = reservoir_seqs(42);
  ASSERT_EQ(a.size(), 8u);
  EXPECT_EQ(a, b);  // same seed + same arrival order => same retained sample
  EXPECT_NE(a, reservoir_seqs(43));
}

TEST(TelemetryStore, ReservoirKeepsEverythingBelowCapacity) {
  TelemetryStore store(1);
  store.reset(/*reservoir_capacity=*/16, /*seed=*/1);
  for (std::uint64_t i = 0; i < 10; ++i) store.absorb(make_trace(i));
  const auto snap = store.snapshot();
  EXPECT_EQ(snap.samples.size(), 10u);
  EXPECT_EQ(snap.records, 10u);
}

TEST(TelemetryStore, AggregatesPerWorkerAndPerStage) {
  TelemetryStore store(2);
  store.reset(4, 1);
  TaskTrace t = make_trace(0);
  t.worker = 1;
  t.stage_ns[static_cast<std::size_t>(Stage::kQueueWait)] = 500;
  store.absorb(t);
  const auto snap = store.snapshot();
  const auto queue = static_cast<std::size_t>(Stage::kQueueWait);
  EXPECT_EQ(snap.stages[queue].count(), 1u);
  EXPECT_EQ(snap.workers[1][queue].count(), 1u);
  EXPECT_EQ(snap.workers[0][queue].count(), 0u);
}

TEST(TelemetryRecorder, HarvestCadenceFiresEveryN) {
  TelemetryRecorder recorder(1, 1);
  TelemetryConfig config;
  config.enabled = true;
  config.harvest_every = 4;
  recorder.configure(config);

  for (std::uint64_t i = 0; i < 8; ++i) {
    recorder.record(0, 0, make_trace(i));
    recorder.on_result_processed();
  }
  const auto snap = recorder.store().snapshot();
  EXPECT_EQ(snap.harvests, 2u);  // results 4 and 8 triggered cycles
  EXPECT_EQ(snap.records, 8u);
}

TEST(TelemetryRecorder, FinishSweepsAndDisables) {
  TelemetryRecorder recorder(1, 1);
  TelemetryConfig config;
  config.enabled = true;
  config.harvest_every = 1000;  // cadence never fires; finish must sweep
  recorder.configure(config);
  ASSERT_TRUE(recorder.enabled());

  for (std::uint64_t i = 0; i < 5; ++i) recorder.record(0, 0, make_trace(i));
  const auto report = recorder.finish();
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->records, 5u);
  EXPECT_FALSE(recorder.enabled());
}

TEST(TelemetryRecorder, ConcurrentRecordAndHarvestAccountsEveryPush) {
  // Two executor threads record into their own rings while harvests run
  // concurrently: the run-level totals must balance (drained + dropped ==
  // pushed), and TSan must stay quiet (the CI TSan leg runs this module).
  constexpr std::uint64_t kPerThread = 5'000;
  TelemetryRecorder recorder(1, 2);
  TelemetryConfig config;
  config.enabled = true;
  config.ring_capacity = 64;  // force overwrite pressure
  recorder.configure(config);

  std::vector<std::thread> producers;
  for (std::size_t core = 0; core < 2; ++core) {
    producers.emplace_back([&recorder, core] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        recorder.record(0, core, make_trace(i));
      }
    });
  }
  for (int sweep = 0; sweep < 200; ++sweep) recorder.harvest();
  for (auto& t : producers) t.join();
  recorder.harvest();

  const auto snap = recorder.store().snapshot();
  EXPECT_EQ(snap.records + snap.dropped, 2 * kPerThread);
}

// ---- End-to-end through real solver runs --------------------------------

engine::Cluster::Config quiet_config(int workers) {
  engine::Cluster::Config config;
  config.num_workers = workers;
  config.cores_per_worker = 2;
  config.network.time_scale = 0.0;
  return config;
}

optim::Workload tiny_workload(std::uint64_t seed) {
  const auto problem = data::synthetic::tiny(240, 10, 0.0, seed);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  return optim::Workload::create(dataset, 8, optim::make_least_squares());
}

optim::SolverConfig traced_config() {
  optim::SolverConfig config;
  config.updates = 20;
  config.batch_fraction = 0.3;
  config.service_floor_ms = 0.1;
  config.eval_every = 10;
  config.telemetry.enabled = true;
  config.telemetry.ring_capacity = 4096;  // no overwrite in a 160-task run
  return config;
}

const StageSummary* find_stage(const TelemetryReport& report, const char* name) {
  for (const StageSummary& s : report.stages) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(TelemetryEndToEnd, SyncSgdStageSumsReconcileWithTaskComputeNs) {
  engine::Cluster cluster(quiet_config(4));
  const optim::Workload workload = tiny_workload(1);
  const optim::RunResult result =
      optim::SgdSolver::run(cluster, workload, traced_config());

  ASSERT_NE(result.telemetry, nullptr);
  const TelemetryReport& report = *result.telemetry;
  // Synchronous rounds, no faults: every task is delivered and recorded.
  EXPECT_EQ(report.records, result.tasks);
  EXPECT_EQ(report.dropped, 0u);

  // The reconciliation invariant: model-fetch + compute + serialize
  // partition each task's measured function time, so the run-level sums
  // match the engine's task_compute_ns counter up to fp noise.
  const auto* fetch = find_stage(report, "model_fetch");
  const auto* compute = find_stage(report, "compute");
  const auto* serialize = find_stage(report, "serialize");
  ASSERT_NE(fetch, nullptr);
  ASSERT_NE(compute, nullptr);
  ASSERT_NE(serialize, nullptr);
  const double stage_sum = fetch->sum_ns + compute->sum_ns + serialize->sum_ns;
  const double engine_sum =
      static_cast<double>(cluster.metrics().task_compute_ns.load());
  EXPECT_NEAR(stage_sum, engine_sum, 1e-3 * engine_sum + 1.0);
}

TEST(TelemetryEndToEnd, AsgdReportCarriesStalenessAndDriverStages) {
  engine::Cluster cluster(quiet_config(4));
  const optim::Workload workload = tiny_workload(2);
  optim::SolverConfig config = traced_config();
  config.updates = 60;
  const optim::RunResult result =
      optim::AsgdSolver::run(cluster, workload, config);

  ASSERT_NE(result.telemetry, nullptr);
  const TelemetryReport& report = *result.telemetry;
  // Every collected update was processed by the coordinator first.
  EXPECT_GE(report.staleness.count, config.updates);
  // One publish per update plus the initial pre-loop broadcast.
  EXPECT_GE(report.updates, config.updates);

  const auto* publish = find_stage(report, "broadcast_publish");
  ASSERT_NE(publish, nullptr);
  EXPECT_GE(publish->count, config.updates);
  const auto* accumulate = find_stage(report, "accumulate");
  ASSERT_NE(accumulate, nullptr);
  EXPECT_GT(accumulate->count, 0u);
  EXPECT_FALSE(report.samples.empty());
}

TEST(TelemetryEndToEnd, DisabledRunLeavesTrajectoryBitIdentical) {
  // Telemetry off must be indistinguishable from not having the subsystem;
  // the sync path is deterministic, so the final model pins it bit-for-bit.
  const auto run_once = [](bool enabled) {
    engine::Cluster cluster(quiet_config(4));
    optim::SolverConfig config;
    config.updates = 15;
    config.batch_fraction = 0.3;
    config.service_floor_ms = 0.1;
    config.telemetry.enabled = enabled;
    return optim::SgdSolver::run(cluster, tiny_workload(3), config);
  };
  const optim::RunResult off = run_once(false);
  const optim::RunResult on = run_once(true);
  EXPECT_EQ(off.telemetry, nullptr);
  ASSERT_NE(on.telemetry, nullptr);
  ASSERT_EQ(off.final_w.size(), on.final_w.size());
  for (std::size_t i = 0; i < off.final_w.size(); ++i) {
    EXPECT_EQ(off.final_w[i], on.final_w[i]) << "component " << i;
  }
}

TEST(TelemetryEndToEnd, SharesSumToOneAcrossStages) {
  engine::Cluster cluster(quiet_config(2));
  const optim::Workload workload = tiny_workload(4);
  const optim::RunResult result =
      optim::SgdSolver::run(cluster, workload, traced_config());
  ASSERT_NE(result.telemetry, nullptr);
  double total_share = 0.0;
  for (const StageSummary& s : result.telemetry->stages) total_share += s.share;
  EXPECT_NEAR(total_share, 1.0, 1e-9);
}

}  // namespace
}  // namespace asyncml::telemetry
