// Fault-stage -> telemetry-segment attribution: a seeded FaultPlan delay at
// each injection stage must surface in the matching span segment and nowhere
// else (docs/TELEMETRY.md, "Fault attribution").

#include <gtest/gtest.h>

#include <array>

#include "engine/cluster.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/store.hpp"

namespace asyncml::engine {
namespace {

using telemetry::Stage;

Cluster::Config quiet_config() {
  Cluster::Config config;
  config.num_workers = 1;
  config.cores_per_worker = 1;
  config.network.time_scale = 0.0;
  return config;
}

TaskSpec make_task(Cluster& cluster, PartitionId p) {
  TaskSpec spec;
  spec.id = cluster.next_task_id();
  spec.partition = p;
  spec.fn = std::make_shared<const TaskFn>(
      [](TaskContext& ctx) -> support::StatusOr<Payload> {
        return Payload::wrap<int>(ctx.partition);
      });
  return spec;
}

/// Runs one task through a telemetry-armed cluster and returns the
/// harvested per-stage sums in ns.
std::array<double, telemetry::kNumStages> run_one_task(Cluster& cluster) {
  telemetry::TelemetryConfig config;
  config.enabled = true;
  cluster.telemetry().configure(config);

  EXPECT_TRUE(cluster.submit(0, make_task(cluster, 0)));
  const auto results = cluster.collect_n(1);
  EXPECT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ok());

  cluster.telemetry().harvest();
  const auto snap = cluster.telemetry().store().snapshot();
  EXPECT_EQ(snap.records, 1u);
  std::array<double, telemetry::kNumStages> sums{};
  for (std::size_t s = 0; s < telemetry::kNumStages; ++s) {
    sums[s] = snap.stages[s].count() > 0
                  ? snap.stages[s].mean_ns() *
                        static_cast<double>(snap.stages[s].count())
                  : 0.0;
  }
  return sums;
}

double ns(Stage stage, const std::array<double, telemetry::kNumStages>& sums) {
  return sums[static_cast<std::size_t>(stage)];
}

TEST(FaultAttribution, ResultChannelDelayLandsInResultChannelSegment) {
  Cluster::Config config = quiet_config();
  // FaultStage::kResultChannel is the documented alias of kNetwork.
  config.faults.delay(FaultStage::kResultChannel, 8.0, {}, /*times=*/1);
  Cluster cluster(config);
  const auto sums = run_one_task(cluster);
  EXPECT_GE(ns(Stage::kResultChannel, sums), 7.5e6);
  EXPECT_LT(ns(Stage::kSerialize, sums), 2e6);
  EXPECT_LT(ns(Stage::kCompute, sums), 2e6);
}

TEST(FaultAttribution, QueueDelayLandsInQueueWaitNotDequeueDelay) {
  Cluster::Config config = quiet_config();
  config.faults.delay(FaultStage::kQueue, 6.0, {}, /*times=*/1);
  Cluster cluster(config);
  const auto sums = run_one_task(cluster);
  EXPECT_GE(ns(Stage::kQueueWait, sums), 5.5e6);
  // The stall is kept out of the pickup->start window.
  EXPECT_LT(ns(Stage::kDequeueDelay, sums), 2e6);
  EXPECT_LT(ns(Stage::kResultChannel, sums), 2e6);
}

TEST(FaultAttribution, SerializeDelayLandsInSerializeNotCompute) {
  Cluster::Config config = quiet_config();
  config.faults.delay(FaultStage::kSerialize, 6.0, {}, /*times=*/1);
  Cluster cluster(config);
  const auto sums = run_one_task(cluster);
  EXPECT_GE(ns(Stage::kSerialize, sums), 5.5e6);
  EXPECT_LT(ns(Stage::kCompute, sums), 2e6);
}

TEST(FaultAttribution, ComputeDelayLandsInComputeSegment) {
  Cluster::Config config = quiet_config();
  config.faults.delay(FaultStage::kCompute, 8.0, {}, /*times=*/1);
  Cluster cluster(config);
  const auto sums = run_one_task(cluster);
  EXPECT_GE(ns(Stage::kCompute, sums), 7.5e6);
  EXPECT_LT(ns(Stage::kSerialize, sums), 2e6);
  EXPECT_LT(ns(Stage::kQueueWait, sums), 2e6);
}

TEST(FaultAttribution, CleanTaskChargesNoFaultSegments) {
  Cluster cluster(quiet_config());
  const auto sums = run_one_task(cluster);
  // No faults, zero-cost network, no service floor: everything is micro-scale.
  EXPECT_LT(ns(Stage::kQueueWait, sums), 2e6);
  EXPECT_LT(ns(Stage::kResultChannel, sums), 2e6);
  EXPECT_LT(ns(Stage::kServicePad, sums), 2e6);
}

TEST(FaultAttribution, DisabledRecorderRecordsNothing) {
  Cluster::Config config = quiet_config();
  config.faults.delay(FaultStage::kNetwork, 2.0, {}, /*times=*/1);
  Cluster cluster(config);
  ASSERT_FALSE(cluster.telemetry().enabled());
  ASSERT_TRUE(cluster.submit(0, make_task(cluster, 0)));
  ASSERT_EQ(cluster.collect_n(1).size(), 1u);
  cluster.telemetry().harvest();
  EXPECT_EQ(cluster.telemetry().store().snapshot().records, 0u);
}

}  // namespace
}  // namespace asyncml::engine
