// In-tree LZ4 block codec (ISSUE 9): round trips across input shapes, real
// compression on repetitive data, and a strictly bounds-checked decompressor
// that fails malformed blocks without touching memory out of range.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "transport/lz4.hpp"

namespace asyncml::transport {
namespace {

std::vector<std::uint8_t> roundtrip(const std::vector<std::uint8_t>& src) {
  const auto block = lz4_compress(src);
  EXPECT_LE(block.size(), lz4_compress_bound(src.size()));
  std::vector<std::uint8_t> out(src.size());
  EXPECT_TRUE(lz4_decompress(block, out).is_ok());
  return out;
}

std::vector<std::uint8_t> prng_bytes(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> out(n);
  std::uint64_t x = seed | 1;
  for (auto& b : out) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  return out;
}

TEST(Lz4, RoundTripsEmpty) {
  const std::vector<std::uint8_t> src;
  EXPECT_EQ(roundtrip(src), src);
}

TEST(Lz4, RoundTripsTinyInputs) {
  // Below the matcher's minimum match window everything ships as literals.
  for (std::size_t n = 1; n <= 16; ++n) {
    const auto src = prng_bytes(n, n);
    EXPECT_EQ(roundtrip(src), src) << "n=" << n;
  }
}

TEST(Lz4, CompressesRepetitiveData) {
  std::vector<std::uint8_t> src(16384);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i % 11);
  }
  const auto block = lz4_compress(src);
  EXPECT_LT(block.size(), src.size() / 4) << "period-11 data should compress hard";
  std::vector<std::uint8_t> out(src.size());
  ASSERT_TRUE(lz4_decompress(block, out).is_ok());
  EXPECT_EQ(out, src);
}

TEST(Lz4, RoundTripsAllSameByte) {
  // Maximal-length match runs exercise the 255-extension length encoding.
  const std::vector<std::uint8_t> src(100000, 0xAB);
  EXPECT_EQ(roundtrip(src), src);
}

TEST(Lz4, RoundTripsIncompressibleData) {
  const auto src = prng_bytes(8192, 42);
  const auto block = lz4_compress(src);
  EXPECT_GE(block.size(), src.size());  // literals-only, slight overhead
  std::vector<std::uint8_t> out(src.size());
  ASSERT_TRUE(lz4_decompress(block, out).is_ok());
  EXPECT_EQ(out, src);
}

TEST(Lz4, RoundTripsMixedStructure) {
  // Sparse-delta-like shape: runs of zeros with scattered payload bytes —
  // the actual traffic pattern of the model-delta channel.
  std::vector<std::uint8_t> src(32768, 0);
  std::uint64_t x = 7;
  for (int k = 0; k < 500; ++k) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    src[(x >> 16) % src.size()] = static_cast<std::uint8_t>(x);
  }
  EXPECT_EQ(roundtrip(src), src);
}

TEST(Lz4, DeterministicForAGivenInput) {
  const auto src = prng_bytes(4096, 99);
  EXPECT_EQ(lz4_compress(src), lz4_compress(src));
}

TEST(Lz4, TruncatedBlockFails) {
  std::vector<std::uint8_t> src(2048, 3);
  const auto block = lz4_compress(src);
  std::vector<std::uint8_t> out(src.size());
  for (std::size_t cut = 0; cut < block.size(); ++cut) {
    EXPECT_FALSE(lz4_decompress({block.data(), cut}, out).is_ok())
        << "cut at " << cut;
  }
}

TEST(Lz4, WrongDestinationSizeFails) {
  std::vector<std::uint8_t> src(1024, 5);
  const auto block = lz4_compress(src);
  std::vector<std::uint8_t> small(src.size() - 1);
  EXPECT_FALSE(lz4_decompress(block, small).is_ok());
  std::vector<std::uint8_t> big(src.size() + 1);
  EXPECT_FALSE(lz4_decompress(block, big).is_ok());
}

TEST(Lz4, OffsetPastWrittenPrefixFails) {
  // Hand-crafted block: one literal, then a match whose 16-bit offset points
  // before the start of the output — a classic lz4 CVE shape. Must fail, not
  // read out of bounds.
  const std::vector<std::uint8_t> block = {
      0x14,        // token: 1 literal, match len 4+4
      0x41,        // the literal
      0x10, 0x00,  // offset 16 — only 1 byte has been written
  };
  std::vector<std::uint8_t> out(16);
  EXPECT_FALSE(lz4_decompress(block, out).is_ok());
}

TEST(Lz4, ZeroOffsetFails) {
  const std::vector<std::uint8_t> block = {
      0x14, 0x41, 0x00, 0x00,  // offset 0 is invalid in the block format
  };
  std::vector<std::uint8_t> out(16);
  EXPECT_FALSE(lz4_decompress(block, out).is_ok());
}

TEST(Lz4, GarbageInputNeverCrashes) {
  std::vector<std::uint8_t> out(4096);
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto garbage = prng_bytes(64 + seed % 512, seed);
    (void)lz4_decompress(garbage, out);  // any Status is fine; no crash, no UB
  }
  SUCCEED();
}

}  // namespace
}  // namespace asyncml::transport
