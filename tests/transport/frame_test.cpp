// Frame layer (ISSUE 9): length-prefixed encode/decode, incremental reads in
// every split/coalesce pattern, torn frames, header validation *before* body
// allocation, and permanent poisoning on malformed input.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "transport/frame.hpp"

namespace asyncml::transport {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> init) {
  std::vector<std::uint8_t> out;
  out.reserve(init.size());
  for (int v : init) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(Frame, RoundTripsASingleFrame) {
  const std::vector<std::uint8_t> body = bytes({1, 2, 3, 4, 5});
  const auto wire = encode_frame(static_cast<std::uint8_t>(FrameKind::kTaskSpec), body);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + body.size());

  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(decoder.feed(wire, frames).is_ok());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].kind(), FrameKind::kTaskSpec);
  EXPECT_FALSE(frames[0].is_ack());
  EXPECT_FALSE(frames[0].compressed());
  EXPECT_EQ(frames[0].body, body);
  EXPECT_EQ(frames[0].raw_len, body.size());
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(Frame, AckBitRoundTrips) {
  const auto wire = encode_frame(ack_type(FrameKind::kTaskResult), {});
  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(decoder.feed(wire, frames).is_ok());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].is_ack());
  EXPECT_EQ(frames[0].kind(), FrameKind::kTaskResult);
  EXPECT_TRUE(frames[0].body.empty());
}

// The decoder accepts arbitrary read boundaries: byte-at-a-time is the
// pathological split pattern (every header field and the body arrive torn).
TEST(Frame, ByteAtATimeSplitReads) {
  std::vector<std::uint8_t> body(97);
  std::iota(body.begin(), body.end(), std::uint8_t{0});
  const auto wire = encode_frame(static_cast<std::uint8_t>(FrameKind::kOpaque), body);

  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    ASSERT_TRUE(decoder.feed({&wire[i], 1}, frames).is_ok()) << "byte " << i;
    if (i + 1 < wire.size()) {
      EXPECT_TRUE(frames.empty());
      EXPECT_TRUE(decoder.mid_frame());
    }
  }
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].body, body);
  EXPECT_FALSE(decoder.mid_frame());
}

// Coalesced reads: three frames plus the torn prefix of a fourth in one feed.
TEST(Frame, CoalescedReadsEmitEveryCompleteFrame) {
  std::vector<std::uint8_t> stream;
  for (int i = 1; i <= 3; ++i) {
    std::vector<std::uint8_t> body(static_cast<std::size_t>(i) * 7,
                                   static_cast<std::uint8_t>(i));
    const auto wire = encode_frame(static_cast<std::uint8_t>(FrameKind::kHello), body);
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  const auto fourth =
      encode_frame(static_cast<std::uint8_t>(FrameKind::kShutdown), bytes({9, 9}));
  stream.insert(stream.end(), fourth.begin(), fourth.end() - 5);

  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(decoder.feed(stream, frames).is_ok());
  ASSERT_EQ(frames.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(frames[i].body.size(), (i + 1) * 7);
  }
  EXPECT_TRUE(decoder.mid_frame());  // the torn fourth frame is pending

  ASSERT_TRUE(decoder.feed({fourth.data() + fourth.size() - 5, 5}, frames).is_ok());
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[3].kind(), FrameKind::kShutdown);
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(Frame, TornHeaderReportsMidFrame) {
  const auto wire = encode_frame(static_cast<std::uint8_t>(FrameKind::kHello), {});
  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(decoder.feed({wire.data(), kFrameHeaderBytes - 1}, frames).is_ok());
  EXPECT_TRUE(frames.empty());
  EXPECT_TRUE(decoder.mid_frame());
  EXPECT_EQ(decoder.buffered_bytes(), kFrameHeaderBytes - 1);
}

// A length field claiming a huge body must be rejected from the header alone
// — before any body-sized allocation. The declared length here (~4 GiB)
// would OOM the test if the decoder allocated first.
TEST(Frame, OversizedLengthRejectedBeforeAllocation) {
  auto wire = encode_frame(static_cast<std::uint8_t>(FrameKind::kTaskResult),
                           bytes({1, 2, 3}));
  const std::uint32_t huge = 0xFFFFFFF0u;
  std::memcpy(wire.data() + 8, &huge, sizeof(huge));   // body_len (LE host assumed)
  std::memcpy(wire.data() + 12, &huge, sizeof(huge));  // raw_len

  FrameDecoder decoder(/*max_frame_bytes=*/1 << 16);
  std::vector<Frame> frames;
  const auto status = decoder.feed({wire.data(), kFrameHeaderBytes}, frames);
  EXPECT_FALSE(status.is_ok());
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_TRUE(frames.empty());
}

TEST(Frame, RawLenOverMaxRejectedEvenWhenBodyFits) {
  // A compressed frame whose *decompressed* size lies past the cap: body_len
  // is small, raw_len is not. Must fail at the header.
  const auto body = bytes({0, 0, 0});
  const auto wire = encode_frame(static_cast<std::uint8_t>(FrameKind::kModelDelta) ,
                                 kFlagLz4, body, /*raw_len=*/1u << 30);
  FrameDecoder decoder(/*max_frame_bytes=*/1 << 16);
  std::vector<Frame> frames;
  EXPECT_FALSE(decoder.feed(wire, frames).is_ok());
  EXPECT_TRUE(decoder.poisoned());
}

TEST(Frame, BadMagicPoisons) {
  auto wire = encode_frame(static_cast<std::uint8_t>(FrameKind::kHello), {});
  wire[0] = 'X';
  FrameDecoder decoder;
  std::vector<Frame> frames;
  EXPECT_FALSE(decoder.feed(wire, frames).is_ok());
  EXPECT_TRUE(decoder.poisoned());
}

TEST(Frame, UnknownKindPoisons) {
  for (std::uint8_t type : {std::uint8_t{0}, std::uint8_t{9}, std::uint8_t{0x7F}}) {
    auto wire = encode_frame(static_cast<std::uint8_t>(FrameKind::kHello), {});
    wire[4] = type;
    // Type is covered by crc? No: crc covers the body only — the header is
    // validated field by field, so a corrupt type byte must fail on its own.
    FrameDecoder decoder;
    std::vector<Frame> frames;
    EXPECT_FALSE(decoder.feed(wire, frames).is_ok()) << "type " << int(type);
  }
}

TEST(Frame, UnknownFlagBitsPoison) {
  auto wire = encode_frame(static_cast<std::uint8_t>(FrameKind::kHello), {});
  wire[5] = 0x02;  // only bit 0 (lz4) is defined
  FrameDecoder decoder;
  std::vector<Frame> frames;
  EXPECT_FALSE(decoder.feed(wire, frames).is_ok());
}

TEST(Frame, NonzeroReservedPoisons) {
  auto wire = encode_frame(static_cast<std::uint8_t>(FrameKind::kHello), {});
  wire[6] = 1;
  FrameDecoder decoder;
  std::vector<Frame> frames;
  EXPECT_FALSE(decoder.feed(wire, frames).is_ok());
}

TEST(Frame, RawLenMismatchOnUncompressedFramePoisons) {
  const auto body = bytes({1, 2, 3, 4});
  auto wire = encode_frame(static_cast<std::uint8_t>(FrameKind::kOpaque), body);
  wire[12] = 99;  // raw_len must equal body_len when the lz4 flag is clear
  FrameDecoder decoder;
  std::vector<Frame> frames;
  EXPECT_FALSE(decoder.feed(wire, frames).is_ok());
}

TEST(Frame, CrcMismatchPoisons) {
  const auto body = bytes({1, 2, 3, 4, 5, 6});
  auto wire = encode_frame(static_cast<std::uint8_t>(FrameKind::kTaskSpec), body);
  wire[kFrameHeaderBytes + 2] ^= 0x40;  // flip one body bit; crc now stale
  FrameDecoder decoder;
  std::vector<Frame> frames;
  EXPECT_FALSE(decoder.feed(wire, frames).is_ok());
  EXPECT_TRUE(decoder.poisoned());
}

// Framing is unrecoverable once lost: after poisoning, even a pristine frame
// is refused (the socket layer tears the connection down instead).
TEST(Frame, PoisonIsPermanent) {
  auto bad = encode_frame(static_cast<std::uint8_t>(FrameKind::kHello), {});
  bad[0] = 0;
  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_FALSE(decoder.feed(bad, frames).is_ok());

  const auto good = encode_frame(static_cast<std::uint8_t>(FrameKind::kHello), {});
  const auto again = decoder.feed(good, frames);
  EXPECT_FALSE(again.is_ok());
  EXPECT_EQ(again.code(), support::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(frames.empty());
}

TEST(Frame, Lz4FrameRoundTripsThroughMessageBytes) {
  // Repetitive body compresses; the frame must carry the flag and decode back
  // to the original bytes.
  std::vector<std::uint8_t> body(4096);
  for (std::size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<std::uint8_t>(i % 7);
  }
  const auto wire =
      encode_frame_lz4(static_cast<std::uint8_t>(FrameKind::kModelDelta), body);
  ASSERT_LT(wire.size(), kFrameHeaderBytes + body.size());

  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(decoder.feed(wire, frames).is_ok());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].compressed());
  EXPECT_EQ(frames[0].raw_len, body.size());

  auto decoded = frames[0].message_bytes();
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), body);
}

TEST(Frame, Lz4EncoderShipsIncompressibleBodiesRaw) {
  // A pseudo-random body the greedy matcher cannot shrink must ship without
  // the flag — the decoder then never runs lz4 on it.
  std::vector<std::uint8_t> body(512);
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (auto& b : body) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  const auto wire =
      encode_frame_lz4(static_cast<std::uint8_t>(FrameKind::kModelDelta), body);
  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(decoder.feed(wire, frames).is_ok());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_FALSE(frames[0].compressed());
  EXPECT_EQ(frames[0].body, body);
}

TEST(Frame, CorruptLz4BodyFailsMessageBytesNotFeed) {
  // A bit flip *with a recomputed crc* passes framing (the wire was
  // consistent) but must still fail strictly at lz4 decode.
  std::vector<std::uint8_t> body(2048, 0x55);
  auto wire = encode_frame_lz4(static_cast<std::uint8_t>(FrameKind::kModelDelta), body);
  ASSERT_EQ(wire[5] & kFlagLz4, kFlagLz4);
  std::vector<std::uint8_t> corrupt_body(wire.begin() + kFrameHeaderBytes, wire.end());
  corrupt_body[corrupt_body.size() / 2] ^= 0xFF;
  auto corrupt = encode_frame(wire[4], kFlagLz4, corrupt_body,
                              static_cast<std::uint32_t>(body.size()));

  FrameDecoder decoder;
  std::vector<Frame> frames;
  ASSERT_TRUE(decoder.feed(corrupt, frames).is_ok());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_FALSE(frames[0].message_bytes().is_ok());
}

TEST(Frame, Crc32MatchesKnownVector) {
  // IEEE CRC-32 of "123456789" — the standard check value.
  const char* s = "123456789";
  const std::uint32_t crc = crc32(
      {reinterpret_cast<const std::uint8_t*>(s), 9});
  EXPECT_EQ(crc, 0xCBF43926u);
}

}  // namespace
}  // namespace asyncml::transport
