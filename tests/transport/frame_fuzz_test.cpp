// Frame-corpus fuzzing (ISSUE 9 satellite): ≥1000 seeded deterministic
// mutations — bit flips, truncations, length-field lies, splices — applied
// to *recorded real frames* (a task spec, a gradient-bearing result, an
// lz4 model delta, a hello), driven through the full decode path. The
// invariant is absolute: no crash, no out-of-bounds, and anything the
// decoder does emit either decodes cleanly or fails with a Status.
//
// Allocation guard: decoders run with a small max_frame_bytes, so a mutated
// length field can never drive a large allocation — a lying header must be
// rejected before body storage is reserved.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "linalg/grad_vector.hpp"
#include "optim/payloads.hpp"
#include "store/model_delta.hpp"
#include "transport/frame.hpp"
#include "transport/wire.hpp"

namespace asyncml::transport {
namespace {

// xorshift64* — deterministic across platforms, seeded per mutation.
struct Rng {
  std::uint64_t x;
  explicit Rng(std::uint64_t seed) : x(seed * 2685821657736338717ull | 1) {}
  std::uint64_t next() {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    return x * 2685821657736338717ull;
  }
  std::size_t below(std::size_t n) { return static_cast<std::size_t>(next() % n); }
};

// The corpus: real frames as the driver actually emits them.
std::vector<std::vector<std::uint8_t>> record_corpus() {
  std::vector<std::vector<std::uint8_t>> corpus;

  corpus.push_back(encode_frame(static_cast<std::uint8_t>(FrameKind::kHello),
                                encode_hello(HelloMsg{kProtocolVersion, 2})));

  engine::TaskSpec spec;
  spec.id = 41;
  spec.partition = 3;
  spec.seq = 12;
  spec.model_version = 7;
  spec.service_floor_ms = 2.0;
  spec.rng_seed = 0xFEEDull;
  corpus.push_back(encode_frame(static_cast<std::uint8_t>(FrameKind::kTaskSpec),
                                encode_task_spec(to_wire(spec))));

  engine::TaskResult result;
  result.id = 41;
  result.worker = 2;
  result.partition = 3;
  result.seq = 12;
  result.model_version = 7;
  optim::GradCount gc;
  gc.grad = linalg::GradVector(linalg::GradVectorConfig(512, 0.9, false));
  for (std::uint32_t i = 0; i < 40; ++i) {
    gc.grad.set(i * 12 + 1, 0.25 * static_cast<double>(i) - 2.0);
  }
  gc.count = 40;
  result.payload = engine::Payload::wrap(std::move(gc), 488);
  result.compute_ms = 0.7;
  result.service_ms = 2.0;
  corpus.push_back(encode_frame(static_cast<std::uint8_t>(FrameKind::kTaskResult),
                                encode_task_result(to_wire(result))));

  store::ModelDelta delta;
  delta.parent = 6;
  delta.values = linalg::GradVector(linalg::GradVectorConfig(2048, 0.9, false));
  for (std::uint32_t i = 0; i < 64; ++i) {
    delta.values.set(i * 31 + 5, 1.0 / (1.0 + static_cast<double>(i)));
  }
  const std::size_t modeled = delta.wire_bytes();
  const auto env = encode_payload_envelope(engine::Payload::wrap(std::move(delta), modeled));
  corpus.push_back(
      encode_frame_lz4(static_cast<std::uint8_t>(FrameKind::kModelDelta), env));

  return corpus;
}

FrameKind corpus_kind(std::size_t i) {
  static const FrameKind kinds[] = {FrameKind::kHello, FrameKind::kTaskSpec,
                                    FrameKind::kTaskResult, FrameKind::kModelDelta};
  return kinds[i];
}

std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& frame, Rng& rng) {
  std::vector<std::uint8_t> m = frame;
  switch (rng.below(6)) {
    case 0:  // single bit flip
      m[rng.below(m.size())] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    case 1: {  // burst of byte rewrites
      const std::size_t n = 1 + rng.below(8);
      for (std::size_t k = 0; k < n; ++k) {
        m[rng.below(m.size())] = static_cast<std::uint8_t>(rng.next());
      }
      break;
    }
    case 2:  // truncate
      m.resize(rng.below(m.size()));
      break;
    case 3: {  // length-field lie: rewrite body_len / raw_len with junk
      const std::size_t off = rng.below(2) == 0 ? 8 : 12;
      for (std::size_t k = 0; k < 4; ++k) {
        m[off + k] = static_cast<std::uint8_t>(rng.next());
      }
      break;
    }
    case 4: {  // splice: prepend the tail of another copy (mis-framed stream)
      std::vector<std::uint8_t> tail(frame.end() - static_cast<std::ptrdiff_t>(
                                                       1 + rng.below(frame.size() - 1)),
                                     frame.end());
      tail.insert(tail.end(), m.begin(), m.end());
      m = std::move(tail);
      break;
    }
    default: {  // grow: append junk past the frame boundary
      const std::size_t n = 1 + rng.below(64);
      for (std::size_t k = 0; k < n; ++k) {
        m.push_back(static_cast<std::uint8_t>(rng.next()));
      }
      break;
    }
  }
  return m;
}

// Drives one mutated byte string through the exact path the socket layer
// uses: incremental decode (in two random splits, like real reads), then
// message_bytes + typed re-encode for every frame that survives framing.
void drive(const std::vector<std::uint8_t>& data, FrameKind kind, Rng& rng) {
  FrameDecoder decoder(/*max_frame_bytes=*/1 << 16);  // allocation guard
  std::vector<Frame> frames;
  const std::size_t cut = data.empty() ? 0 : rng.below(data.size() + 1);
  support::Status status = decoder.feed({data.data(), cut}, frames);
  if (status.is_ok()) {
    status = decoder.feed({data.data() + cut, data.size() - cut}, frames);
  }
  if (!status.is_ok()) {
    EXPECT_TRUE(decoder.poisoned());
    return;  // framing rejected the mutation — the expected common case
  }
  for (const Frame& f : frames) {
    auto msg = f.message_bytes();
    if (!msg.is_ok()) continue;  // corrupt lz4 body caught at decompression
    // Rarely a mutation survives crc (e.g. junk appended after a valid
    // frame): the typed layer must then either decode or return Status.
    (void)reencode_message(kind, msg.value());
  }
}

TEST(FrameFuzz, ThousandsOfSeededMutationsNeverCrash) {
  const auto corpus = record_corpus();
  ASSERT_EQ(corpus.size(), 4u);

  std::size_t mutations = 0;
  for (std::size_t c = 0; c < corpus.size(); ++c) {
    for (std::uint64_t seed = 1; seed <= 400; ++seed) {
      Rng rng(seed * 1000003ull + c);
      const auto mutated = mutate(corpus[c], rng);
      drive(mutated, corpus_kind(c), rng);
      ++mutations;
    }
  }
  EXPECT_GE(mutations, 1000u);
}

// Every single-bit flip of a complete frame is caught somewhere: header
// flips fail field validation, body flips fail crc, length flips either
// fail validation or leave the decoder waiting for bytes that never come.
// The only flips that may emit a complete frame are in the type/flags bytes
// where the result is a *different valid* (type, flags) combination — those
// framing cannot distinguish from a legitimate frame, and the request/ack
// protocol layer rejects them as kind mismatches. Exhaustive over the
// (small) hello frame — no bit is silently absorbed.
TEST(FrameFuzz, EverySingleBitFlipOfAHelloFrameIsCaught) {
  const auto frame = encode_frame(static_cast<std::uint8_t>(FrameKind::kHello),
                                  encode_hello(HelloMsg{}));
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto m = frame;
      m[byte] ^= static_cast<std::uint8_t>(1 << bit);
      FrameDecoder decoder;
      std::vector<Frame> frames;
      const auto status = decoder.feed(m, frames);
      if (!status.is_ok() || frames.empty()) continue;  // rejected or torn
      ASSERT_EQ(frames.size(), 1u);
      const bool type_or_flags_changed =
          frames[0].type != frame[4] || frames[0].flags != frame[5];
      EXPECT_TRUE(type_or_flags_changed && (byte == 4 || byte == 5))
          << "byte " << byte << " bit " << bit
          << " produced a frame indistinguishable from the original";
    }
  }
}

// The allocation guard, pinned directly: a frame header claiming a body of
// ~4 GiB against a 64 KiB decoder must fail before reserving body storage.
// (If the decoder allocated first, this test would OOM the runner, not just
// fail.)
TEST(FrameFuzz, LyingLengthHeaderCannotDriveAllocation) {
  for (std::uint32_t lie : {0x7FFFFFFFu, 0xFFFFFFF0u, 0x00100001u}) {
    auto frame = encode_frame(static_cast<std::uint8_t>(FrameKind::kTaskResult),
                              std::vector<std::uint8_t>(64, 1));
    frame[8] = static_cast<std::uint8_t>(lie);
    frame[9] = static_cast<std::uint8_t>(lie >> 8);
    frame[10] = static_cast<std::uint8_t>(lie >> 16);
    frame[11] = static_cast<std::uint8_t>(lie >> 24);
    FrameDecoder decoder(/*max_frame_bytes=*/1 << 16);
    std::vector<Frame> frames;
    EXPECT_FALSE(decoder.feed({frame.data(), kFrameHeaderBytes}, frames).is_ok())
        << "lie " << lie;
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

}  // namespace
}  // namespace asyncml::transport
