// Socket backends against real worker processes (ISSUE 9): Unix-socket and
// TCP transports spawn tools/asyncml_worker, handshake, and relay every
// message kind through a genuine serialize → socket → decode → re-encode →
// ack round trip. Both backends run the same parameterized suite.
//
// Flake guard: every wait in here is deadline-bounded (transport
// io_deadline_ms riding on poll()) — there are no raw sleeps — and TCP binds
// ephemeral loopback ports, so parallel test runs cannot collide.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "engine/metrics.hpp"
#include "linalg/grad_vector.hpp"
#include "optim/payloads.hpp"
#include "store/model_delta.hpp"
#include "transport/frame.hpp"
#include "transport/transport.hpp"

namespace asyncml::transport {
namespace {

TransportConfig socket_config(Backend backend) {
  TransportConfig config;
  config.backend = backend;
  // Generous for CI schedulers, but every wait is bounded by it: a hung
  // endpoint fails the test in finite time instead of wedging the runner.
  config.io_deadline_ms = 15000.0;
  return config;
}

engine::TaskResult make_result(engine::WorkerId worker) {
  engine::TaskResult result;
  result.id = 101;
  result.worker = worker;
  result.partition = 4;
  result.seq = 9;
  result.model_version = 3;
  optim::GradCount gc;
  gc.grad = linalg::GradVector(linalg::GradVectorConfig(256, 0.9, false));
  for (std::uint32_t i = 0; i < 20; ++i) {
    gc.grad.set(i * 11 + 2, 1.5 * static_cast<double>(i) - 7.0);
  }
  gc.count = 20;
  const std::size_t modeled = optim::payload_size_bytes(gc);
  result.payload = engine::Payload::wrap(std::move(gc), modeled);
  result.compute_ms = 0.5;
  result.service_ms = 1.5;
  return result;
}

class SocketTransportTest : public ::testing::TestWithParam<Backend> {};

TEST_P(SocketTransportTest, StartsHandshakesAndStops) {
  engine::ClusterMetrics metrics(3);
  auto transport = make_transport(socket_config(GetParam()), 3, nullptr, &metrics);
  ASSERT_TRUE(transport->start().is_ok());
  EXPECT_EQ(transport->backend(), GetParam());
  for (engine::WorkerId w = 0; w < 3; ++w) {
    EXPECT_TRUE(transport->channel(w).alive());
    EXPECT_TRUE(transport->channel(w).is_wire());
    EXPECT_EQ(transport->channel(w).worker(), w);
  }
  // The hello handshake is control traffic, and it is *measured*:
  const auto& control = metrics.wire(engine::WireChannel::kControl);
  EXPECT_EQ(control.frames.load(), 3u);
  EXPECT_GT(control.bytes_sent.load(), 0u);
  EXPECT_GT(control.bytes_received.load(), 0u);
  transport->stop();
  transport->stop();  // idempotent
}

TEST_P(SocketTransportTest, TaskSpecRoundTripsThroughTheEndpoint) {
  auto transport = make_transport(socket_config(GetParam()), 1, nullptr, nullptr);
  ASSERT_TRUE(transport->start().is_ok());

  engine::TaskSpec spec;
  spec.id = 55;
  spec.partition = 2;
  spec.seq = 7;
  spec.model_version = 4;
  spec.service_floor_ms = 3.5;
  spec.rng_seed = 0xABCDEFull;
  spec.migration_ms = 0.25;
  ASSERT_TRUE(transport->channel(0).ship_task(spec).is_ok());
  // The decoded echo overwrote the wire fields — verbatim for a clean codec.
  EXPECT_EQ(spec.id, 55u);
  EXPECT_EQ(spec.partition, 2);
  EXPECT_EQ(spec.seq, 7u);
  EXPECT_EQ(spec.model_version, 4u);
  EXPECT_EQ(spec.service_floor_ms, 3.5);
  EXPECT_EQ(spec.rng_seed, 0xABCDEFull);
  EXPECT_EQ(spec.migration_ms, 0.25);
  transport->stop();
}

TEST_P(SocketTransportTest, ResultShipReturnsTheDecodedEcho) {
  auto transport = make_transport(socket_config(GetParam()), 1, nullptr, nullptr);
  ASSERT_TRUE(transport->start().is_ok());

  const engine::TaskResult original = make_result(0);
  const std::size_t modeled = original.payload.bytes();
  auto shipped = transport->channel(0).ship_result(original);
  ASSERT_TRUE(shipped.is_ok());
  EXPECT_EQ(shipped.value().charge_ms, 0.0);  // real I/O: wall time, no charge
  EXPECT_GT(shipped.value().wire_ns, 0u);

  const engine::TaskResult& echoed = shipped.value().result;
  EXPECT_EQ(echoed.id, original.id);
  EXPECT_EQ(echoed.seq, original.seq);
  EXPECT_EQ(echoed.payload.bytes(), modeled) << "charged bytes are backend-invariant";
  const auto& in = original.payload.get<optim::GradCount>();
  const auto& out = echoed.payload.get<optim::GradCount>();
  EXPECT_EQ(out.count, in.count);
  EXPECT_TRUE(linalg::bitwise_equal(in.grad.to_dense(), out.grad.to_dense()));
  transport->stop();
}

TEST_P(SocketTransportTest, ModelDeltaFetchRoundTripsCompressed) {
  engine::ClusterMetrics metrics(1);
  auto transport = make_transport(socket_config(GetParam()), 1, nullptr, &metrics);
  ASSERT_TRUE(transport->start().is_ok());

  store::ModelDelta delta;
  delta.parent = 30;
  delta.values = linalg::GradVector(linalg::GradVectorConfig(8192, 0.9, false));
  for (std::uint32_t i = 0; i < 200; ++i) {
    delta.values.set(i * 40 + 1, 0.001 * static_cast<double>(i));
  }
  const std::size_t modeled = delta.wire_bytes();
  const engine::Payload payload = engine::Payload::wrap(std::move(delta), modeled);

  auto fetched =
      transport->channel(0).fetch_payload(payload, engine::BroadcastClass::kDelta);
  ASSERT_TRUE(fetched.is_ok());
  EXPECT_EQ(fetched.value().charge_ms, 0.0);
  const auto& out = fetched.value().payload.get<store::ModelDelta>();
  EXPECT_EQ(out.parent, 30u);
  EXPECT_TRUE(linalg::bitwise_equal(payload.get<store::ModelDelta>().values.to_dense(),
                                    out.values.to_dense()));
  EXPECT_EQ(fetched.value().payload.bytes(), modeled);

  // Measured bytes on the model channel: lz4 on the delta chain should move
  // fewer wire bytes than the modeled payload size.
  const auto& model = metrics.wire(engine::WireChannel::kModel);
  EXPECT_EQ(model.frames.load(), 1u);
  EXPECT_GT(model.bytes_sent.load(), 0u);
  EXPECT_LT(model.bytes_sent.load(), modeled + 256) << "delta frame failed to compress";
  transport->stop();
}

TEST_P(SocketTransportTest, WireMetricsCountEveryChannel) {
  engine::ClusterMetrics metrics(1);
  auto transport = make_transport(socket_config(GetParam()), 1, nullptr, &metrics);
  ASSERT_TRUE(transport->start().is_ok());

  engine::TaskSpec spec;
  spec.id = 1;
  ASSERT_TRUE(transport->channel(0).ship_task(spec).is_ok());
  ASSERT_TRUE(transport->channel(0).ship_result(make_result(0)).is_ok());

  const auto& task = metrics.wire(engine::WireChannel::kTask);
  EXPECT_EQ(task.frames.load(), 1u);
  EXPECT_GT(task.bytes_sent.load(), kFrameHeaderBytes);
  const auto& result = metrics.wire(engine::WireChannel::kResult);
  EXPECT_EQ(result.frames.load(), 1u);
  EXPECT_GT(result.bytes_sent.load(), result.bytes_received.load() / 2);
  transport->stop();
}

// Hard-killing the worker process mid-session: the next round trip fails
// with kUnavailable within the I/O deadline, the channel goes (and stays)
// dead, and the other workers' channels are untouched.
TEST_P(SocketTransportTest, KilledPeerSynthesizesUnavailableAndStaysDead) {
  auto transport = make_transport(socket_config(GetParam()), 2, nullptr, nullptr);
  ASSERT_TRUE(transport->start().is_ok());

  transport->kill_worker(0);
  const auto t0 = std::chrono::steady_clock::now();
  auto shipped = transport->channel(0).ship_result(make_result(0));
  const double waited_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_FALSE(shipped.is_ok());
  EXPECT_EQ(shipped.status().code(), support::StatusCode::kUnavailable);
  EXPECT_LT(waited_ms, 15000.0) << "death must be discovered within the deadline";
  EXPECT_FALSE(transport->channel(0).alive());

  // Dead is forever — and cheap: no I/O is attempted on a dead channel.
  engine::TaskSpec spec;
  EXPECT_FALSE(transport->channel(0).ship_task(spec).is_ok());
  EXPECT_FALSE(transport->channel(0).alive());

  // The survivor is unaffected.
  EXPECT_TRUE(transport->channel(1).alive());
  auto ok = transport->channel(1).ship_result(make_result(1));
  EXPECT_TRUE(ok.is_ok());
  transport->stop();
}

// A frame larger than the endpoint's cap: the endpoint's decoder rejects it
// at the header, tears the stream down, and the driver sees a dead channel —
// never a hang, never a giant allocation.
TEST_P(SocketTransportTest, OversizedFrameKillsTheChannelNotTheRunner) {
  TransportConfig config = socket_config(GetParam());
  config.max_frame_bytes = 1 << 12;  // 4 KiB cap, both sides
  auto transport = make_transport(config, 1, nullptr, nullptr);
  ASSERT_TRUE(transport->start().is_ok());

  engine::TaskResult big;
  big.id = 9;
  optim::GradCount gc;
  gc.grad = linalg::GradVector(linalg::GradVectorConfig(100000, 0.9, false));
  for (std::uint32_t i = 0; i < 2000; ++i) {
    gc.grad.set(i * 50 + 3, static_cast<double>(i));
  }
  gc.count = 2000;
  const std::size_t modeled = optim::payload_size_bytes(gc);
  ASSERT_GT(modeled, config.max_frame_bytes);
  big.payload = engine::Payload::wrap(std::move(gc), modeled);

  auto shipped = transport->channel(0).ship_result(std::move(big));
  EXPECT_FALSE(shipped.is_ok());
  EXPECT_FALSE(transport->channel(0).alive());
  transport->stop();
}

INSTANTIATE_TEST_SUITE_P(Backends, SocketTransportTest,
                         ::testing::Values(Backend::kUnixSocket, Backend::kTcp),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           std::string name = backend_name(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(SocketTransport, MissingWorkerBinaryFailsLoudlyAtStart) {
  TransportConfig config = socket_config(Backend::kUnixSocket);
  config.worker_binary = "/nonexistent/asyncml_worker";
  auto transport = make_transport(config, 1, nullptr, nullptr);
  const auto status = transport->start();
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), support::StatusCode::kFailedPrecondition);
  transport->stop();  // safe after failed start
}

// Ephemeral-port flake guard: several TCP transports may listen concurrently
// — the kernel hands each its own port, so parallel CI shards never collide.
TEST(SocketTransport, ConcurrentTcpTransportsGetDistinctPorts) {
  std::vector<std::unique_ptr<Transport>> transports;
  for (int i = 0; i < 3; ++i) {
    transports.push_back(
        make_transport(socket_config(Backend::kTcp), 1, nullptr, nullptr));
    ASSERT_TRUE(transports.back()->start().is_ok()) << "instance " << i;
  }
  for (auto& t : transports) {
    engine::TaskSpec spec;
    spec.id = 3;
    EXPECT_TRUE(t->channel(0).ship_task(spec).is_ok());
    t->stop();
  }
}

// The in-process reference implements the same Channel contract with modeled
// charges instead of I/O — pinned here so the seam stays symmetric.
TEST(InProcessTransport, ReturnsModeledChargesAndNeverTouchesTheSpec) {
  engine::NetworkModel network;
  network.time_scale = 1.0;
  engine::ClusterMetrics metrics(1);
  TransportConfig config;  // kInProcess
  auto transport = make_transport(config, 1, &network, &metrics);
  ASSERT_TRUE(transport->start().is_ok());
  EXPECT_FALSE(transport->channel(0).is_wire());

  engine::TaskResult result = make_result(0);
  const std::size_t modeled = result.payload.bytes();
  auto shipped = transport->channel(0).ship_result(std::move(result));
  ASSERT_TRUE(shipped.is_ok());
  EXPECT_EQ(shipped.value().wire_ns, 0u);
  EXPECT_EQ(shipped.value().charge_ms,
            network.transfer_ms(modeled));  // the modeled charge, exactly
  const auto& wire = metrics.wire(engine::WireChannel::kResult);
  EXPECT_EQ(wire.bytes_sent.load(), modeled);  // charged bytes, not frame bytes
  EXPECT_EQ(wire.bytes_received.load(), 0u);   // no ack exists in-process
  transport->stop();
}

}  // namespace
}  // namespace asyncml::transport
