// Cross-transport conformance (ISSUE 9 tentpole acceptance): the transport
// backend is a *wiring* knob, not a *math* knob. The same seeded run must
// produce the same trajectory whether frames stay in-process or genuinely
// cross a Unix socket / TCP loopback to a worker process and come back as
// decoded echoes:
//
//   - ScheduledSgd (synchronous, placement-independent): bit-identical
//     final model and trace across all three backends.
//   - ASGD at 1 worker × 1 core (serial, deterministic): objective within
//     1e-8 of the in-process oracle (bitwise in practice).
//
// Because the socket backends re-encode every payload at the endpoint and
// the driver consumes the decoded bytes, any codec non-canonicality or
// precision loss shows up here as a trajectory divergence.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "data/synthetic.hpp"
#include "optim/asgd.hpp"
#include "optim/objective.hpp"
#include "optim/sgd.hpp"
#include "transport/frame.hpp"

namespace asyncml::optim {
namespace {

data::synthetic::Problem sparse_problem(double density) {
  data::synthetic::SparseSpec spec;
  spec.rows = 160;
  spec.cols = 96;
  spec.density = density;
  spec.noise_std = 0.0;
  return data::synthetic::make_sparse(spec, /*seed=*/41);
}

RunResult run_scheduled_sgd(const std::shared_ptr<const data::Dataset>& dataset,
                            transport::Backend backend) {
  const Workload workload = Workload::create(dataset, 8, make_least_squares());

  engine::Cluster::Config cluster_config;
  cluster_config.num_workers = 4;
  cluster_config.cores_per_worker = 2;
  cluster_config.network.time_scale = 0.0;
  cluster_config.transport.backend = backend;
  engine::Cluster cluster(cluster_config);

  SolverConfig config;
  config.updates = 24;
  config.batch_fraction = 0.25;
  config.service_floor_ms = 0.1;
  config.eval_every = 8;
  config.seed = 23;
  config.step = inverse_decay_step(0.05, 1.0, 0.01);
  return ScheduledSgdSolver::run(cluster, workload, config);
}

RunResult run_asgd_serial(const std::shared_ptr<const data::Dataset>& dataset,
                          transport::Backend backend) {
  const Workload workload = Workload::create(dataset, 8, make_least_squares());

  engine::Cluster::Config cluster_config;
  // One worker, one core: tasks execute serially, so the staleness pattern —
  // and with it the trajectory — is deterministic and comparable bit-level
  // across backends.
  cluster_config.num_workers = 1;
  cluster_config.cores_per_worker = 1;
  cluster_config.network.time_scale = 0.0;
  cluster_config.transport.backend = backend;
  engine::Cluster cluster(cluster_config);

  SolverConfig config;
  config.updates = 96;
  config.batch_fraction = 0.25;
  config.service_floor_ms = 0.1;
  config.eval_every = 32;
  config.seed = 23;
  config.step = inverse_decay_step(0.05, 1.0, 0.01);
  return AsgdSolver::run(cluster, workload, config);
}

using Param = std::tuple<double /*density*/, transport::Backend>;

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name = std::to_string(std::get<0>(info.param)) + "_" +
                     transport::backend_name(std::get<1>(info.param));
  for (char& c : name) {
    if (c == '.') c = 'p';
    if (c == '-') c = '_';
  }
  return "density_" + name;
}

class TransportConformance : public ::testing::TestWithParam<Param> {};

// Synchronous path: every backend must reproduce the in-process oracle's
// final model bit for bit and its error trace exactly.
TEST_P(TransportConformance, ScheduledSgdIsBitIdenticalToTheInProcessOracle) {
  const auto [density, backend] = GetParam();
  const auto problem = sparse_problem(density);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);

  const RunResult oracle =
      run_scheduled_sgd(dataset, transport::Backend::kInProcess);
  ASSERT_EQ(oracle.updates, 24u);

  const RunResult over_wire = run_scheduled_sgd(dataset, backend);
  EXPECT_EQ(over_wire.updates, oracle.updates);
  EXPECT_TRUE(linalg::bitwise_equal(oracle.final_w, over_wire.final_w))
      << "backend " << transport::backend_name(backend) << " density " << density;
  ASSERT_EQ(over_wire.trace.size(), oracle.trace.size());
  for (std::size_t i = 0; i < oracle.trace.size(); ++i) {
    EXPECT_EQ(over_wire.trace[i].error, oracle.trace[i].error)
        << "trace point " << i;
    EXPECT_EQ(over_wire.trace[i].update, oracle.trace[i].update);
  }
}

// Async path, serialized: the objective agrees to ≤ 1e-8 (bitwise in
// practice — the decoded echo carries the exact float64 bit patterns).
TEST_P(TransportConformance, SerialAsgdObjectiveMatchesTheInProcessOracle) {
  const auto [density, backend] = GetParam();
  const auto problem = sparse_problem(density);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);

  const RunResult oracle = run_asgd_serial(dataset, transport::Backend::kInProcess);
  const RunResult over_wire = run_asgd_serial(dataset, backend);
  EXPECT_EQ(over_wire.updates, oracle.updates);
  EXPECT_NEAR(over_wire.final_error(), oracle.final_error(), 1e-8)
      << "backend " << transport::backend_name(backend) << " density " << density;
}

INSTANTIATE_TEST_SUITE_P(
    DensitiesTimesBackends, TransportConformance,
    ::testing::Combine(::testing::Values(0.01, 1.0),
                       ::testing::Values(transport::Backend::kUnixSocket,
                                         transport::Backend::kTcp)),
    param_name);

// The wire counters of a socket run measure real frames: a ScheduledSgd run
// over the Unix socket must record traffic on the task, result and model
// channels — the proof that the trajectory above actually crossed a socket.
TEST(TransportConformance, SocketRunsActuallyMoveFrames) {
  const auto problem = sparse_problem(0.01);
  auto dataset = std::make_shared<const data::Dataset>(problem.dataset);
  const RunResult r = run_scheduled_sgd(dataset, transport::Backend::kUnixSocket);

  const auto& task = r.wire[static_cast<std::size_t>(engine::WireChannel::kTask)];
  const auto& result = r.wire[static_cast<std::size_t>(engine::WireChannel::kResult)];
  const auto& model = r.wire[static_cast<std::size_t>(engine::WireChannel::kModel)];
  EXPECT_GT(task.frames, 0u);
  EXPECT_GT(task.bytes_sent, task.frames * transport::kFrameHeaderBytes);
  EXPECT_GT(result.frames, 0u);
  EXPECT_GT(result.bytes_sent, 0u);
  EXPECT_GT(model.frames, 0u);
  EXPECT_GT(model.bytes_sent, 0u);

  // …while the in-process oracle reports charged bytes with no ack traffic.
  const RunResult local = run_scheduled_sgd(dataset, transport::Backend::kInProcess);
  const auto& local_result =
      local.wire[static_cast<std::size_t>(engine::WireChannel::kResult)];
  EXPECT_GT(local_result.frames, 0u);
  EXPECT_EQ(local_result.bytes_received, 0u);
}

}  // namespace
}  // namespace asyncml::optim
