// Mini-msgpack codec (ISSUE 9): shortest-form spec-conformant encodings at
// every width boundary, and a strict reader that bounds-checks before every
// access — truncation and type confusion return Status, never UB.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "transport/msgpack.hpp"

namespace asyncml::transport {
namespace {

TEST(Msgpack, UintBoundariesRoundTripShortestForm) {
  // (value, encoded length): msgpack's shortest-form widths at each boundary.
  const std::pair<std::uint64_t, std::size_t> cases[] = {
      {0, 1},          {127, 1},                      // positive fixint
      {128, 2},        {255, 2},                      // uint8
      {256, 3},        {65535, 3},                    // uint16
      {65536, 5},      {0xFFFFFFFFull, 5},            // uint32
      {0x100000000ull, 9},
      {std::numeric_limits<std::uint64_t>::max(), 9},  // uint64
  };
  for (const auto& [value, encoded_len] : cases) {
    MsgWriter w;
    w.write_uint(value);
    ASSERT_EQ(w.bytes().size(), encoded_len) << value;
    MsgReader r(w.bytes());
    std::uint64_t out = 1;
    ASSERT_TRUE(r.read_uint(out).is_ok()) << value;
    EXPECT_EQ(out, value);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Msgpack, IntBoundariesRoundTrip) {
  const std::int64_t cases[] = {
      0,    -1,     -32,                         // negative fixint
      -33,  -128,                                // int8
      -129, -32768,                              // int16
      -32769,
      std::numeric_limits<std::int32_t>::min(),  // int32
      static_cast<std::int64_t>(std::numeric_limits<std::int32_t>::min()) - 1,
      std::numeric_limits<std::int64_t>::min(),  // int64
      127,  128,    65536,
      std::numeric_limits<std::int64_t>::max(),
  };
  for (std::int64_t value : cases) {
    MsgWriter w;
    w.write_int(value);
    MsgReader r(w.bytes());
    std::int64_t out = 1;
    ASSERT_TRUE(r.read_int(out).is_ok()) << value;
    EXPECT_EQ(out, value) << value;
  }
}

// Non-negative write_int emits unsigned encodings; read_int must accept them
// (the wire schema writes some fields with write_uint and reads with
// read_int when the domain is signed).
TEST(Msgpack, ReadIntAcceptsUnsignedEncodingsThatFit) {
  MsgWriter w;
  w.write_uint(300);
  MsgReader r(w.bytes());
  std::int64_t out = 0;
  ASSERT_TRUE(r.read_int(out).is_ok());
  EXPECT_EQ(out, 300);

  // …but an unsigned value past int64 range must be refused, not wrapped.
  MsgWriter w2;
  w2.write_uint(std::numeric_limits<std::uint64_t>::max());
  MsgReader r2(w2.bytes());
  EXPECT_FALSE(r2.read_int(out).is_ok());
}

TEST(Msgpack, DoublePreservesExactBits) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.5,
                          3.141592653589793,
                          std::numeric_limits<double>::min(),
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::quiet_NaN()};
  for (double value : cases) {
    MsgWriter w;
    w.write_double(value);
    ASSERT_EQ(w.bytes().size(), 9u);  // always float64, never truncated
    MsgReader r(w.bytes());
    double out = 0;
    ASSERT_TRUE(r.read_double(out).is_ok());
    std::uint64_t in_bits = 0;
    std::uint64_t out_bits = 0;
    std::memcpy(&in_bits, &value, 8);
    std::memcpy(&out_bits, &out, 8);
    EXPECT_EQ(in_bits, out_bits) << value;
  }
}

TEST(Msgpack, StrAndBinRoundTrip) {
  const std::string strs[] = {"", "x", std::string(31, 'a'), std::string(32, 'b'),
                              std::string(300, 'c')};
  for (const auto& s : strs) {
    MsgWriter w;
    w.write_str(s);
    MsgReader r(w.bytes());
    std::string out;
    ASSERT_TRUE(r.read_str(out).is_ok());
    EXPECT_EQ(out, s);
  }

  for (std::size_t n : {std::size_t{0}, std::size_t{255}, std::size_t{256},
                        std::size_t{70000}}) {
    std::vector<std::uint8_t> data(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<std::uint8_t>(i);
    MsgWriter w;
    w.write_bin(data);
    MsgReader r(w.bytes());
    std::span<const std::uint8_t> out;
    ASSERT_TRUE(r.read_bin(out).is_ok());
    ASSERT_EQ(out.size(), n);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));
  }
}

TEST(Msgpack, ArrayHeadersRoundTrip) {
  for (std::size_t n : {std::size_t{0}, std::size_t{15}, std::size_t{16},
                        std::size_t{65535}, std::size_t{65536}}) {
    MsgWriter w;
    w.begin_array(n);
    MsgReader r(w.bytes());
    std::size_t out = 0;
    ASSERT_TRUE(r.read_array(out).is_ok()) << n;
    EXPECT_EQ(out, n);
  }
}

TEST(Msgpack, NilAndBoolRoundTrip) {
  MsgWriter w;
  w.write_nil();
  w.write_bool(true);
  w.write_bool(false);
  MsgReader r(w.bytes());
  bool b = false;
  ASSERT_TRUE(r.read_nil().is_ok());
  ASSERT_TRUE(r.read_bool(b).is_ok());
  EXPECT_TRUE(b);
  ASSERT_TRUE(r.read_bool(b).is_ok());
  EXPECT_FALSE(b);
  EXPECT_TRUE(r.at_end());
}

TEST(Msgpack, TypeMismatchReturnsStatus) {
  MsgWriter w;
  w.write_str("hello");
  MsgReader r(w.bytes());
  std::uint64_t u = 0;
  EXPECT_FALSE(r.read_uint(u).is_ok());

  MsgWriter w2;
  w2.write_uint(7);
  MsgReader r2(w2.bytes());
  double d = 0;
  EXPECT_FALSE(r2.read_double(d).is_ok());
}

TEST(Msgpack, TruncationAtEveryPrefixReturnsStatus) {
  // A buffer cut at any byte must fail cleanly on whichever read hits the
  // cut; no read may fabricate data or scan past the end.
  MsgWriter w;
  w.write_uint(1234567);
  w.write_double(2.5);
  w.write_str("abcdef");
  w.write_bin(std::vector<std::uint8_t>{9, 8, 7});
  const auto& full = w.bytes();

  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    MsgReader r({full.data(), cut});
    std::uint64_t u = 0;
    double d = 0;
    std::string s;
    std::span<const std::uint8_t> bin;
    const bool ok = r.read_uint(u).is_ok() && r.read_double(d).is_ok() &&
                    r.read_str(s).is_ok() && r.read_bin(bin).is_ok();
    EXPECT_FALSE(ok) << "cut at " << cut;
  }
}

TEST(Msgpack, ReadPastEndFails) {
  MsgReader r(std::span<const std::uint8_t>{});
  std::uint64_t u = 0;
  EXPECT_FALSE(r.read_uint(u).is_ok());
  EXPECT_TRUE(r.at_end());
}

// A bin length field lying past the remaining buffer must fail without
// allocating or forming a span past the end.
TEST(Msgpack, BinLengthLieFails) {
  std::vector<std::uint8_t> buf = {0xC4, 0xFF, 1, 2, 3};  // bin8 claiming 255 bytes
  MsgReader r(buf);
  std::span<const std::uint8_t> out;
  EXPECT_FALSE(r.read_bin(out).is_ok());
}

}  // namespace
}  // namespace asyncml::transport
