// Typed wire schema (ISSUE 9): every message that crosses a channel must
// round-trip value-exactly, and encodings must be *canonical* — for each
// value, encode∘decode∘encode is byte-identical. The endpoint relay
// re-encodes everything it receives, so canonicality is what makes the
// socket backends bit-compatible with the in-process oracle.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "linalg/grad_vector.hpp"
#include "optim/payloads.hpp"
#include "store/model_delta.hpp"
#include "transport/wire.hpp"

namespace asyncml::transport {
namespace {

linalg::GradVector sparse_grad(std::size_t dim, std::initializer_list<std::uint32_t> idx) {
  linalg::GradVector g(linalg::GradVectorConfig(dim, /*threshold=*/0.9,
                                                /*dense_start=*/false));
  double v = 0.5;
  for (std::uint32_t i : idx) {
    g.set(i, v);
    v = v * 1.7 + 0.1;
  }
  return g;
}

linalg::GradVector dense_grad(std::size_t dim) {
  linalg::GradVector g(linalg::GradVectorConfig(dim, /*threshold=*/0.1,
                                                /*dense_start=*/true));
  std::vector<double> vals(dim);
  for (std::size_t i = 0; i < dim; ++i) vals[i] = 0.25 * static_cast<double>(i) - 3.0;
  g.assign_dense(vals);
  return g;
}

void expect_bitwise_equal(const linalg::GradVector& a, const linalg::GradVector& b) {
  ASSERT_EQ(a.dim(), b.dim());
  EXPECT_EQ(a.is_dense(), b.is_dense()) << "representation must be preserved";
  EXPECT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.size_bytes(), b.size_bytes()) << "modeled wire size must be preserved";
  EXPECT_TRUE(linalg::bitwise_equal(a.to_dense(), b.to_dense()));
}

// ---------------------------------------------------------------------------
// Control messages.

TEST(Wire, HelloRoundTrips) {
  HelloMsg in;
  in.worker = 7;
  const auto bytes = encode_hello(in);
  HelloMsg out;
  out.worker = -1;
  ASSERT_TRUE(decode_hello(bytes, out).is_ok());
  EXPECT_EQ(out.protocol, kProtocolVersion);
  EXPECT_EQ(out.worker, 7);
  EXPECT_EQ(encode_hello(out), bytes);  // canonical
}

TEST(Wire, ErrorRoundTripsAndMaterializes) {
  ErrorMsg in;
  in.code = static_cast<std::uint32_t>(support::StatusCode::kInvalidArgument);
  in.message = "bad frame body";
  const auto bytes = encode_error(in);
  ErrorMsg out;
  ASSERT_TRUE(decode_error(bytes, out).is_ok());
  EXPECT_EQ(out.code, in.code);
  EXPECT_EQ(out.message, in.message);

  const support::Status s = error_to_status(out);
  EXPECT_EQ(s.code(), support::StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad frame body");

  ErrorMsg junk;
  junk.code = 250;  // not a StatusCode — degrade, don't fail
  EXPECT_EQ(error_to_status(junk).code(), support::StatusCode::kInternal);
}

TEST(Wire, DecodingTruncatedControlMessagesFails) {
  const auto hello = encode_hello(HelloMsg{});
  HelloMsg out;
  for (std::size_t cut = 0; cut < hello.size(); ++cut) {
    EXPECT_FALSE(decode_hello({hello.data(), cut}, out).is_ok()) << cut;
  }
}

// ---------------------------------------------------------------------------
// Dispatch plane.

TEST(Wire, TaskSpecRoundTripsAndIsCanonical) {
  engine::TaskSpec spec;
  spec.id = 0x1234567890ull;
  spec.partition = 17;
  spec.seq = 42;
  spec.model_version = 9;
  spec.service_floor_ms = 6.25;
  spec.rng_seed = 0xDEADBEEFCAFEull;
  spec.migration_ms = 0.125;

  const TaskSpecMsg msg = to_wire(spec);
  const auto bytes = encode_task_spec(msg);
  TaskSpecMsg decoded;
  ASSERT_TRUE(decode_task_spec(bytes, decoded).is_ok());
  EXPECT_EQ(encode_task_spec(decoded), bytes);

  engine::TaskSpec rebuilt;
  apply_wire(decoded, rebuilt);
  EXPECT_EQ(rebuilt.id, spec.id);
  EXPECT_EQ(rebuilt.partition, spec.partition);
  EXPECT_EQ(rebuilt.seq, spec.seq);
  EXPECT_EQ(rebuilt.model_version, spec.model_version);
  EXPECT_EQ(rebuilt.service_floor_ms, spec.service_floor_ms);
  EXPECT_EQ(rebuilt.rng_seed, spec.rng_seed);
  EXPECT_EQ(rebuilt.migration_ms, spec.migration_ms);
}

// ---------------------------------------------------------------------------
// Payload codecs.

TEST(Wire, GradCountPayloadRoundTripsSparse) {
  optim::GradCount gc;
  gc.grad = sparse_grad(1000, {3, 999, 17, 501, 4});
  gc.count = 32;
  const std::size_t modeled = optim::payload_size_bytes(gc);
  const engine::Payload payload = engine::Payload::wrap(std::move(gc), modeled);

  const EncodedPayload enc = encode_payload(payload);
  ASSERT_EQ(enc.kind, PayloadKind::kGradCount);
  EXPECT_EQ(enc.modeled_bytes, modeled);

  auto decoded = decode_payload(enc.kind, enc.body, enc.modeled_bytes, nullptr);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().bytes(), modeled) << "charged bytes are backend-invariant";
  const auto& out = decoded.value().get<optim::GradCount>();
  EXPECT_EQ(out.count, 32u);
  expect_bitwise_equal(payload.get<optim::GradCount>().grad, out.grad);

  // Canonical: re-encoding the decoded value reproduces the bytes.
  EXPECT_EQ(encode_payload(decoded.value()).body, enc.body);
}

TEST(Wire, GradHistPayloadRoundTripsDense) {
  optim::GradHist gh;
  gh.grad = dense_grad(64);
  gh.hist = sparse_grad(64, {1, 2, 63});
  gh.count = 8;
  const std::size_t modeled = optim::payload_size_bytes(gh);
  const engine::Payload payload = engine::Payload::wrap(std::move(gh), modeled);

  const EncodedPayload enc = encode_payload(payload);
  ASSERT_EQ(enc.kind, PayloadKind::kGradHist);
  auto decoded = decode_payload(enc.kind, enc.body, enc.modeled_bytes, nullptr);
  ASSERT_TRUE(decoded.is_ok());
  const auto& out = decoded.value().get<optim::GradHist>();
  expect_bitwise_equal(payload.get<optim::GradHist>().grad, out.grad);
  expect_bitwise_equal(payload.get<optim::GradHist>().hist, out.hist);
  EXPECT_EQ(encode_payload(decoded.value()).body, enc.body);
}

TEST(Wire, ModelDeltaEnvelopeIsCanonicalAndCompressible) {
  store::ModelDelta delta;
  delta.parent = 12;
  delta.values = sparse_grad(4096, {9, 4000, 77, 2048, 3, 100});
  const std::size_t modeled = delta.wire_bytes();
  const engine::Payload payload = engine::Payload::wrap(std::move(delta), modeled);

  EXPECT_EQ(envelope_frame_kind(payload), FrameKind::kModelDelta);
  const auto env = encode_payload_envelope(payload);
  auto decoded = decode_payload_envelope(env, nullptr);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().bytes(), modeled);
  const auto& out = decoded.value().get<store::ModelDelta>();
  EXPECT_EQ(out.parent, 12u);
  expect_bitwise_equal(payload.get<store::ModelDelta>().values, out.values);
  EXPECT_EQ(encode_payload_envelope(decoded.value()), env);
}

TEST(Wire, DenseVectorEnvelopeIsBase) {
  linalg::DenseVector w(128);
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = 1.0 / (1.0 + double(i));
  const std::size_t modeled = w.size() * sizeof(double);
  const engine::Payload payload = engine::Payload::wrap(std::move(w), modeled);

  EXPECT_EQ(envelope_frame_kind(payload), FrameKind::kModelBase);
  const auto env = encode_payload_envelope(payload);
  auto decoded = decode_payload_envelope(env, nullptr);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_TRUE(linalg::bitwise_equal(payload.get<linalg::DenseVector>(),
                                    decoded.value().get<linalg::DenseVector>()));
  EXPECT_EQ(encode_payload_envelope(decoded.value()), env);
}

TEST(Wire, OpaquePayloadNeedsLocalSource) {
  // An unregistered type crosses as metadata only; reconstruction requires
  // the local original, and honestly fails without one.
  struct Unregistered {
    int x = 5;
  };
  const engine::Payload payload = engine::Payload::wrap(Unregistered{}, 4096);
  const EncodedPayload enc = encode_payload(payload);
  EXPECT_EQ(enc.kind, PayloadKind::kOpaque);
  EXPECT_EQ(enc.modeled_bytes, 4096u);
  EXPECT_TRUE(enc.body.empty());

  EXPECT_FALSE(decode_payload(enc.kind, enc.body, enc.modeled_bytes, nullptr).is_ok());

  auto decoded = decode_payload(enc.kind, enc.body, enc.modeled_bytes, &payload);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().get<Unregistered>().x, 5);
  EXPECT_EQ(decoded.value().bytes(), 4096u);
}

TEST(Wire, EmptyPayloadRoundTripsAsNone) {
  const engine::Payload empty;
  const EncodedPayload enc = encode_payload(empty);
  EXPECT_EQ(enc.kind, PayloadKind::kNone);
  auto decoded = decode_payload(enc.kind, enc.body, enc.modeled_bytes, nullptr);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_FALSE(decoded.value().has_value());
}

// ---------------------------------------------------------------------------
// Result plane.

TEST(Wire, TaskResultRoundTripsWithPayloadAndStatus) {
  engine::TaskResult result;
  result.id = 77;
  result.worker = 3;
  result.partition = 12;
  result.seq = 5;
  result.model_version = 21;
  result.status = support::Status(support::StatusCode::kCancelled, "dropped by fault");
  optim::GradCount gc;
  gc.grad = sparse_grad(256, {0, 128, 255});
  gc.count = 16;
  result.payload = engine::Payload::wrap(std::move(gc), 44);
  result.compute_ms = 1.5;
  result.service_ms = 6.0;

  const TaskResultMsg msg = to_wire(result);
  const auto bytes = encode_task_result(msg);
  TaskResultMsg decoded_msg;
  ASSERT_TRUE(decode_task_result(bytes, decoded_msg).is_ok());
  EXPECT_EQ(encode_task_result(decoded_msg), bytes);  // canonical

  auto rebuilt = from_wire(decoded_msg, nullptr);
  ASSERT_TRUE(rebuilt.is_ok());
  const engine::TaskResult& out = rebuilt.value();
  EXPECT_EQ(out.id, result.id);
  EXPECT_EQ(out.worker, result.worker);
  EXPECT_EQ(out.partition, result.partition);
  EXPECT_EQ(out.seq, result.seq);
  EXPECT_EQ(out.model_version, result.model_version);
  EXPECT_EQ(out.status.code(), support::StatusCode::kCancelled);
  EXPECT_EQ(out.status.message(), "dropped by fault");
  EXPECT_EQ(out.compute_ms, result.compute_ms);
  EXPECT_EQ(out.service_ms, result.service_ms);
  EXPECT_EQ(out.payload.bytes(), 44u);
  expect_bitwise_equal(result.payload.get<optim::GradCount>().grad,
                       out.payload.get<optim::GradCount>().grad);
}

// ---------------------------------------------------------------------------
// Endpoint relay.

TEST(Wire, ReencodeMessageIsIdentityForEveryKind) {
  // The relay's contract: decode + canonical re-encode echoes the bytes.
  engine::TaskSpec spec;
  spec.id = 5;
  spec.rng_seed = 99;
  const auto spec_bytes = encode_task_spec(to_wire(spec));
  auto r1 = reencode_message(FrameKind::kTaskSpec, spec_bytes);
  ASSERT_TRUE(r1.is_ok());
  EXPECT_EQ(r1.value(), spec_bytes);

  engine::TaskResult result;
  result.id = 6;
  optim::GradCount gc;
  gc.grad = sparse_grad(64, {2, 61});
  result.payload = engine::Payload::wrap(std::move(gc), 32);
  const auto result_bytes = encode_task_result(to_wire(result));
  auto r2 = reencode_message(FrameKind::kTaskResult, result_bytes);
  ASSERT_TRUE(r2.is_ok());
  EXPECT_EQ(r2.value(), result_bytes);

  store::ModelDelta delta;
  delta.parent = 2;
  delta.values = sparse_grad(512, {100, 5});
  const std::size_t modeled = delta.wire_bytes();
  const auto env = encode_payload_envelope(engine::Payload::wrap(std::move(delta), modeled));
  auto r3 = reencode_message(FrameKind::kModelDelta, env);
  ASSERT_TRUE(r3.is_ok());
  EXPECT_EQ(r3.value(), env);

  const auto hello = encode_hello(HelloMsg{});
  auto r4 = reencode_message(FrameKind::kHello, hello);
  ASSERT_TRUE(r4.is_ok());
  EXPECT_EQ(r4.value(), hello);
}

TEST(Wire, ReencodeMessageRejectsGarbage) {
  const std::vector<std::uint8_t> garbage = {0xFF, 0x00, 0x13, 0x37};
  EXPECT_FALSE(reencode_message(FrameKind::kTaskSpec, garbage).is_ok());
  EXPECT_FALSE(reencode_message(FrameKind::kTaskResult, garbage).is_ok());
  EXPECT_FALSE(reencode_message(FrameKind::kModelDelta, garbage).is_ok());
}

// Sparse entries are emitted in ascending index order regardless of the hash
// table's iteration order — two equal-valued vectors built in different
// insertion orders must encode identically.
TEST(Wire, SparseEncodingIsInsertionOrderIndependent) {
  linalg::GradVector a(linalg::GradVectorConfig(100, 0.9, false));
  linalg::GradVector b(linalg::GradVectorConfig(100, 0.9, false));
  a.set(3, 1.0);
  a.set(50, 2.0);
  a.set(99, 3.0);
  b.set(99, 3.0);
  b.set(3, 1.0);
  b.set(50, 2.0);

  optim::GradCount ga{std::move(a), 1};
  optim::GradCount gb{std::move(b), 1};
  const auto ea = encode_payload(engine::Payload::wrap(std::move(ga), 44));
  const auto eb = encode_payload(engine::Payload::wrap(std::move(gb), 44));
  EXPECT_EQ(ea.body, eb.body);
}

}  // namespace
}  // namespace asyncml::transport
