#pragma once

// Convergence traces: (wall time, update index, objective error) series —
// the data behind every error-vs-time figure in the paper.
//
// To keep objective evaluation out of the timed path (the paper's
// measurements exclude it too), the recorder snapshots (elapsed_ms, w) pairs
// during the run and the errors are computed afterwards by finalize().

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "linalg/dense_vector.hpp"

namespace asyncml::metrics {

struct TracePoint {
  double time_ms = 0.0;
  std::uint64_t update = 0;
  double error = 0.0;
};

using Trace = std::vector<TracePoint>;

class TraceRecorder {
 public:
  /// Snapshot every `every` updates (update 0 is always recorded).
  explicit TraceRecorder(std::uint64_t every = 10) : every_(every == 0 ? 1 : every) {}

  /// Pre-sizes snapshot storage for a run of `max_updates` updates so the
  /// timed path never touches the allocator while the stopwatch runs
  /// (snapshot growth moves, so reallocation was amortized-cheap — the
  /// reservation removes the allocator spikes, not an asymptotic cost). The
  /// +2 covers update 0 and the final unconditional snapshot. Measured cost
  /// of a sampled snapshot: docs/BENCHMARKS.md ("Convergence-trace snapshot
  /// cost").
  void reserve_for(std::uint64_t max_updates) {
    snapshots_.reserve(static_cast<std::size_t>(max_updates / every_ + 2));
  }

  /// Called from the server loop after update `update` at `elapsed_ms`.
  /// Copies `w` only on sampled updates.
  void maybe_snapshot(std::uint64_t update, double elapsed_ms,
                      const linalg::DenseVector& w) {
    if (update % every_ != 0) return;
    snapshots_.push_back(Snapshot{elapsed_ms, update, w});
  }

  /// Unconditional snapshot (used for the final model).
  void snapshot(std::uint64_t update, double elapsed_ms, const linalg::DenseVector& w) {
    snapshots_.push_back(Snapshot{elapsed_ms, update, w});
  }

  /// Evaluates `objective` on every snapshot; error = objective(w) − `baseline`.
  [[nodiscard]] Trace finalize(
      const std::function<double(const linalg::DenseVector&)>& objective,
      double baseline = 0.0) const;

  [[nodiscard]] std::size_t num_snapshots() const noexcept { return snapshots_.size(); }

 private:
  struct Snapshot {
    double time_ms;
    std::uint64_t update;
    linalg::DenseVector w;
  };
  std::uint64_t every_;
  std::vector<Snapshot> snapshots_;
};

/// First time at which the trace error drops to <= target; nullopt if never.
[[nodiscard]] std::optional<double> time_to_target(const Trace& trace, double target);

/// Final (smallest-time-last) error of a trace; +inf for an empty trace.
[[nodiscard]] double final_error(const Trace& trace);

/// speedup = time_to_target(baseline) / time_to_target(contender) at the
/// tightest error both traces reach; nullopt when either never converges.
[[nodiscard]] std::optional<double> speedup_at_common_target(const Trace& baseline,
                                                             const Trace& contender);

}  // namespace asyncml::metrics
