#pragma once

// Experiment output: CSV series (one row per trace point) and fixed-width
// console tables, so each bench binary prints both the machine-readable data
// behind a figure and a human-readable summary of the paper-vs-measured
// comparison.

#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/trace.hpp"

namespace asyncml::metrics {

/// Writes `trace` as CSV rows: series,time_ms,update,error
void write_trace_csv(std::ostream& out, const std::string& series, const Trace& trace);

/// CSV header matching write_trace_csv.
void write_trace_csv_header(std::ostream& out);

/// Simple fixed-width table for console summaries.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& out) const;

  /// Formats a double with `precision` significant digits.
  [[nodiscard]] static std::string num(double v, int precision = 4);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace asyncml::metrics
