#include "metrics/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace asyncml::metrics {

void write_trace_csv_header(std::ostream& out) { out << "series,time_ms,update,error\n"; }

void write_trace_csv(std::ostream& out, const std::string& series, const Trace& trace) {
  for (const TracePoint& p : trace) {
    out << series << ',' << p.time_ms << ',' << p.update << ',' << p.error << '\n';
  }
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    out << "  ";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    out << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += std::string(widths[c] + 2, '-');
  out << "  " << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace asyncml::metrics
