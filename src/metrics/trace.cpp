#include "metrics/trace.hpp"

#include <algorithm>
#include <limits>
#include <optional>

namespace asyncml::metrics {

Trace TraceRecorder::finalize(
    const std::function<double(const linalg::DenseVector&)>& objective,
    double baseline) const {
  Trace out;
  out.reserve(snapshots_.size());
  for (const Snapshot& s : snapshots_) {
    out.push_back(TracePoint{s.time_ms, s.update, objective(s.w) - baseline});
  }
  return out;
}

std::optional<double> time_to_target(const Trace& trace, double target) {
  for (const TracePoint& p : trace) {
    if (p.error <= target) return p.time_ms;
  }
  return std::nullopt;
}

double final_error(const Trace& trace) {
  if (trace.empty()) return std::numeric_limits<double>::infinity();
  return trace.back().error;
}

std::optional<double> speedup_at_common_target(const Trace& baseline,
                                               const Trace& contender) {
  if (baseline.empty() || contender.empty()) return std::nullopt;
  // The tightest error both runs reach; add 10% slack so float noise at the
  // very last point does not disqualify a trace.
  double best_baseline = std::numeric_limits<double>::infinity();
  for (const TracePoint& p : baseline) best_baseline = std::min(best_baseline, p.error);
  double best_contender = std::numeric_limits<double>::infinity();
  for (const TracePoint& p : contender) best_contender = std::min(best_contender, p.error);
  const double target = 1.1 * std::max(best_baseline, best_contender);

  const auto tb = time_to_target(baseline, target);
  const auto tc = time_to_target(contender, target);
  if (!tb.has_value() || !tc.has_value() || *tc <= 0.0) return std::nullopt;
  return *tb / *tc;
}

}  // namespace asyncml::metrics
