#pragma once

// Broadcast machinery: driver-side store, worker-side cache, typed handle.
//
// Mirrors Spark's broadcast-variable design: the driver registers a value
// under a unique id; tasks carry only the id; the first access on a worker
// fetches the value (charged to the network model) and caches it, so repeated
// accesses are free.  The ASYNCbroadcaster of the paper builds on this by
// keying history entries as (broadcast id, version) pairs — see
// core/history.hpp.

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "engine/metrics.hpp"
#include "engine/network.hpp"
#include "engine/payload.hpp"
#include "engine/types.hpp"

namespace asyncml::engine {

/// Driver-side authoritative map id -> payload. Thread-safe.
class BroadcastStore {
 public:
  /// Registers a payload and returns its id.
  BroadcastId put(Payload payload);

  /// Looks up a payload; returns an empty payload when absent.
  [[nodiscard]] Payload get(BroadcastId id) const;

  /// Removes entries with id < `min_id` (history pruning).
  void prune_below(BroadcastId min_id);

  /// Removes one entry; no-op if absent.
  void erase(BroadcastId id);

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<BroadcastId, Payload> entries_;
  BroadcastId next_id_ = 1;
};

/// Per-worker cache with fetch-through to the store. A miss charges the
/// network model (sleep) and counts fetched bytes; a hit is free — this is
/// exactly the saving the ASYNCbroadcaster exploits for historical gradients.
class BroadcastCache {
 public:
  BroadcastCache(const BroadcastStore* store, const NetworkModel* net,
                 ClusterMetrics* metrics)
      : store_(store), net_(net), metrics_(metrics) {}

  /// Returns the payload for `id`, fetching and caching on first access.
  [[nodiscard]] Payload get_or_fetch(BroadcastId id);

  /// True if `id` is locally cached (no fetch).
  [[nodiscard]] bool contains(BroadcastId id) const;

  /// Drops cached entries with id < `min_id`.
  void prune_below(BroadcastId min_id);

  [[nodiscard]] std::size_t size() const;

 private:
  const BroadcastStore* store_;
  const NetworkModel* net_;
  ClusterMetrics* metrics_;
  mutable std::mutex mutex_;
  std::unordered_map<BroadcastId, Payload> cache_;
};

// Thread-local pointer to the executing worker's environment; set by the
// worker loop for the duration of a task. Broadcast handles use it to route
// value() through the worker's cache when called from task code.
struct WorkerEnv {
  WorkerId id = -1;
  BroadcastCache* cache = nullptr;
};

[[nodiscard]] WorkerEnv* current_worker_env() noexcept;
void set_current_worker_env(WorkerEnv* env) noexcept;

/// Typed broadcast handle, copyable into task closures (like Spark's
/// `Broadcast[T]`). On the driver, value() reads the store directly; inside a
/// task it goes through the worker's cache.
template <typename T>
class Broadcast {
 public:
  Broadcast() = default;
  Broadcast(BroadcastId id, const BroadcastStore* store) : id_(id), store_(store) {}

  [[nodiscard]] BroadcastId id() const noexcept { return id_; }
  [[nodiscard]] bool valid() const noexcept { return store_ != nullptr; }

  [[nodiscard]] const T& value() const {
    if (WorkerEnv* env = current_worker_env(); env != nullptr && env->cache != nullptr) {
      // Payloads are shared_ptr-backed; the cache keeps the object alive for
      // the worker's lifetime, so returning a reference is safe.
      return env->cache->get_or_fetch(id_).template get<T>();
    }
    return store_->get(id_).template get<T>();
  }

 private:
  BroadcastId id_ = 0;
  const BroadcastStore* store_ = nullptr;
};

}  // namespace asyncml::engine
