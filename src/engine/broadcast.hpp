#pragma once

// Broadcast machinery: driver-side store, worker-side cache, typed handle.
//
// Mirrors Spark's broadcast-variable design: the driver registers a value
// under a unique id; tasks carry only the id; the first access on a worker
// fetches the value (charged to the network model) and caches it, so repeated
// accesses are free.  The ASYNCbroadcaster of the paper builds on this by
// keying history entries as (broadcast id, version) pairs — see
// core/history.hpp.

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "engine/metrics.hpp"
#include "engine/network.hpp"
#include "engine/payload.hpp"
#include "engine/types.hpp"

namespace asyncml::transport {
class Channel;
}  // namespace asyncml::transport

namespace asyncml::engine {

/// Driver-side authoritative map id -> payload. Thread-safe.
class BroadcastStore {
 public:
  /// Registers a payload and returns its id.
  BroadcastId put(Payload payload);

  /// Looks up a payload; returns an empty payload when absent.
  [[nodiscard]] Payload get(BroadcastId id) const;

  /// Removes one entry; no-op if absent. There is deliberately no id-threshold
  /// prune: broadcast-id order is registration order, not version order, so a
  /// threshold would erase unrelated broadcasts that happen to have been
  /// registered mid-run — owners erase their exact ids instead.
  void erase(BroadcastId id);

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<BroadcastId, Payload> entries_;
  BroadcastId next_id_ = 1;
};

/// Per-worker cache with fetch-through to the store. A miss charges the
/// network model (sleep) and counts fetched bytes; a hit is free — this is
/// exactly the saving the ASYNCbroadcaster exploits for historical gradients.
///
/// With a transport channel attached, a miss instead round-trips the payload
/// over the worker's wire (transport/transport.hpp): the in-process backend
/// returns the same modeled charge to sleep, the socket backends spend real
/// wall time and hand back the decoded echo, which is what gets cached.
class BroadcastCache {
 public:
  BroadcastCache(const BroadcastStore* store, const NetworkModel* net,
                 ClusterMetrics* metrics, transport::Channel* channel = nullptr)
      : store_(store), net_(net), metrics_(metrics), channel_(channel) {}

  /// Returns the payload for `id`, fetching and caching on first access.
  /// `cls` labels the charged bytes for the base/delta traffic split.
  [[nodiscard]] Payload get_or_fetch(BroadcastId id,
                                     BroadcastClass cls = BroadcastClass::kSnapshot);

  /// Caches a payload the caller already holds (a chain link snapshotted by
  /// the model store): a hit is free, a miss charges the transfer exactly
  /// like get_or_fetch but without re-reading the driver store — so a payload
  /// pinned before a concurrent GC still resolves. Returns the cached copy.
  /// When `charged_bytes` is non-null it receives the modeled bytes this call
  /// put on the wire (0 on a cache hit) — the hook per-shard byte accounting
  /// charges from.
  [[nodiscard]] Payload admit(BroadcastId id, const Payload& payload,
                              BroadcastClass cls = BroadcastClass::kSnapshot,
                              std::size_t* charged_bytes = nullptr);

  /// True if `id` is locally cached (no fetch).
  [[nodiscard]] bool contains(BroadcastId id) const;

  /// Drops one cached entry; no-op if absent. Exact-id eviction for the same
  /// reason BroadcastStore has no threshold prune (ids are not version-ordered).
  void erase(BroadcastId id);

  [[nodiscard]] std::size_t size() const;

 private:
  /// Charges and inserts `payload` under `id` unless already cached.
  Payload charge_and_cache(BroadcastId id, Payload payload, BroadcastClass cls);

  const BroadcastStore* store_;
  const NetworkModel* net_;
  ClusterMetrics* metrics_;
  transport::Channel* channel_;
  mutable std::mutex mutex_;
  std::unordered_map<BroadcastId, Payload> cache_;
};

// Thread-local pointer to the executing worker's environment; set by the
// worker loop for the duration of a task. Broadcast handles use it to route
// value() through the worker's cache when called from task code; the model
// store uses it to find the worker's versioned model cache and metrics.
struct WorkerEnv {
  WorkerId id = -1;
  BroadcastCache* cache = nullptr;
  ClusterMetrics* metrics = nullptr;
};

[[nodiscard]] WorkerEnv* current_worker_env() noexcept;
void set_current_worker_env(WorkerEnv* env) noexcept;

/// Typed broadcast handle, copyable into task closures (like Spark's
/// `Broadcast[T]`). On the driver, value() reads the store directly; inside a
/// task it goes through the worker's cache.
template <typename T>
class Broadcast {
 public:
  Broadcast() = default;
  Broadcast(BroadcastId id, const BroadcastStore* store) : id_(id), store_(store) {}

  [[nodiscard]] BroadcastId id() const noexcept { return id_; }
  [[nodiscard]] bool valid() const noexcept { return store_ != nullptr; }

  [[nodiscard]] const T& value() const {
    if (WorkerEnv* env = current_worker_env(); env != nullptr && env->cache != nullptr) {
      // Payloads are shared_ptr-backed; the cache keeps the object alive for
      // the worker's lifetime, so returning a reference is safe.
      return env->cache->get_or_fetch(id_).template get<T>();
    }
    return store_->get(id_).template get<T>();
  }

 private:
  BroadcastId id_ = 0;
  const BroadcastStore* store_ = nullptr;
};

}  // namespace asyncml::engine
