#include "engine/actions.hpp"

#include <cstdio>
#include <cstdlib>
#include <unordered_map>

namespace asyncml::engine {

std::vector<TaskResult> run_tasks_sync(Cluster& cluster,
                                       std::vector<std::pair<WorkerId, TaskSpec>> tasks,
                                       int max_retries) {
  struct Slot {
    std::size_t index;
    WorkerId last_worker;
    TaskSpec spec;  // retained for resubmission
    int attempts = 0;
  };
  std::unordered_map<TaskId, Slot> in_flight;
  in_flight.reserve(tasks.size());

  std::vector<TaskResult> out(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    auto& [worker, spec] = tasks[i];
    const TaskId id = spec.id;
    in_flight.emplace(id, Slot{i, worker, spec, 1});
    cluster.submit(worker, std::move(spec));
  }

  std::size_t done = 0;
  while (done < out.size()) {
    auto popped = cluster.results().pop();
    if (!popped.has_value()) {
      std::fprintf(stderr, "run_tasks_sync: cluster shut down mid-stage\n");
      std::abort();
    }
    TaskResult result = std::move(*popped);
    const auto it = in_flight.find(result.id);
    if (it == in_flight.end()) continue;  // stale retry duplicate; drop

    if (!result.ok()) {
      Slot& slot = it->second;
      if (slot.attempts <= max_retries) {
        // Spark-style retry: resubmit under a fresh id on the next worker.
        slot.attempts += 1;
        slot.last_worker = (slot.last_worker + 1) % cluster.num_workers();
        slot.spec.id = cluster.next_task_id();
        Slot moved = slot;
        in_flight.erase(it);
        const TaskId new_id = moved.spec.id;
        TaskSpec spec = moved.spec;
        const WorkerId target = moved.last_worker;
        in_flight.emplace(new_id, std::move(moved));
        cluster.submit(target, std::move(spec));
        continue;
      }
      std::fprintf(stderr, "run_tasks_sync: task for partition %d failed after %d attempts: %s\n",
                   result.partition, slot.attempts, result.status.to_string().c_str());
      std::abort();
    }

    out[it->second.index] = std::move(result);
    in_flight.erase(it);
    ++done;
  }
  return out;
}

}  // namespace asyncml::engine
