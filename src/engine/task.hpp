#pragma once

// Task descriptors: what the driver ships to workers and what comes back.

#include <functional>
#include <memory>

#include "engine/payload.hpp"
#include "engine/types.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "support/stopwatch.hpp"

namespace asyncml::engine {

/// Per-execution context handed to the task function on the worker thread.
struct TaskContext {
  WorkerId worker = 0;
  PartitionId partition = kNoPartition;
  std::uint64_t seq = 0;      ///< dispatch round / iteration the task belongs to
  support::RngStream rng;     ///< deterministic: substream of (seed, partition, seq)
};

/// The unit of work. Returns the result payload or an error Status; errors
/// are materialized into TaskResult (never thrown across the thread boundary).
using TaskFn = std::function<support::StatusOr<Payload>(TaskContext&)>;

struct TaskSpec {
  TaskId id = 0;
  PartitionId partition = kNoPartition;
  std::uint64_t seq = 0;
  Version model_version = 0;  ///< version of the model this task reads
  std::shared_ptr<const TaskFn> fn;
  /// Base service time in ms; the worker pads execution to
  /// `service_floor_ms × DelayModel::multiplier(worker, seq)`.
  double service_floor_ms = 0.0;
  /// Deterministic sampling seed; the worker derives the task RNG from
  /// (rng_seed, partition, seq).
  std::uint64_t rng_seed = 0;
  /// One-time data-migration charge in ms, paid before the task runs. The
  /// scheduler sets it on the first task a worker executes against a stolen
  /// partition (and on speculative replicas, which read the partition
  /// remotely). Unlike the service floor it is NOT scaled by the delay
  /// model: it models the network, not the machine.
  double migration_ms = 0.0;
  /// Submit timestamp for the telemetry queue-wait segment. Stamped by
  /// Cluster::submit only while telemetry is enabled; the epoch default
  /// means "unstamped" and the worker records no queue wait.
  support::TimePoint enqueued_at{};
};

struct TaskResult {
  TaskId id = 0;
  WorkerId worker = 0;
  PartitionId partition = kNoPartition;
  std::uint64_t seq = 0;
  Version model_version = 0;
  support::Status status;
  Payload payload;
  /// Milliseconds actually spent in the task function.
  double compute_ms = 0.0;
  /// Total execution time after service-floor padding.
  double service_ms = 0.0;
  support::TimePoint finished_at{};

  [[nodiscard]] bool ok() const { return status.is_ok(); }
};

}  // namespace asyncml::engine
