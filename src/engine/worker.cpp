#include "engine/worker.hpp"

#include <optional>

#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_util.hpp"
#include "telemetry/recorder.hpp"
#include "transport/transport.hpp"

namespace asyncml::engine {

using support::Clock;
using support::Status;
using support::StatusCode;

namespace {

std::uint64_t ns_between(support::TimePoint from, support::TimePoint to) {
  return to > from ? static_cast<std::uint64_t>((to - from).count()) : 0;
}

std::uint64_t ms_to_ns(double ms) {
  return ms > 0.0 ? static_cast<std::uint64_t>(ms * 1e6) : 0;
}

}  // namespace

Worker::Worker(WorkerId id, int cores, Deps deps)
    : id_(id),
      deps_(deps),
      cache_(deps.store, deps.network, deps.metrics, deps.channel) {
  threads_.reserve(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    threads_.emplace_back([this, c] { executor_loop(c); });
  }
}

Worker::~Worker() { stop(); }

bool Worker::submit(TaskSpec spec) {
  if (deps_.metrics != nullptr) deps_.metrics->task_messages.add(1);
  return mailbox_.push(std::move(spec));
}

bool Worker::alive() const noexcept {
  if (dead_.load(std::memory_order_acquire)) return false;
  return deps_.channel == nullptr || deps_.channel->alive();
}

void Worker::stop() {
  mailbox_.close();
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void Worker::bounce(const TaskSpec& spec) {
  TaskResult result;
  result.id = spec.id;
  result.worker = id_;
  result.partition = spec.partition;
  result.seq = spec.seq;
  result.model_version = spec.model_version;
  result.status = Status(StatusCode::kUnavailable, "worker crashed");
  result.finished_at = Clock::now();
  if (deps_.metrics != nullptr) deps_.metrics->tasks_failed.add(1);
  deps_.results->push(std::move(result));
}

void Worker::executor_loop(int core) {
  support::set_current_thread_name("worker-" + std::to_string(id_));
  WorkerEnv env{id_, &cache_, deps_.metrics};
  set_current_worker_env(&env);

  // Wait-time bookkeeping is per executor thread: "wait" is the stretch from
  // pushing a result to dequeuing the next task (the paper's definition).
  std::optional<support::TimePoint> last_submit;

  while (auto msg = mailbox_.pop()) {
    TaskSpec spec = std::move(*msg);

    // Fail-stop: a dead worker computes nothing; every dequeued task bounces
    // straight back as a transport-level failure (no sleeps, no side effects).
    // A dead wire (killed peer process, I/O failure) is the same condition
    // discovered from the other end.
    if (deps_.channel != nullptr && !deps_.channel->alive()) {
      dead_.store(true, std::memory_order_release);
    }
    if (dead_.load(std::memory_order_acquire)) {
      bounce(spec);
      continue;
    }

    const auto received = Clock::now();
    if (last_submit.has_value() && deps_.metrics != nullptr) {
      deps_.metrics->record_wait(
          id_, static_cast<double>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(received -
                                                                        *last_submit)
                       .count()));
    }

    // Telemetry gate: one relaxed atomic load per task when disabled; every
    // trace touch below sits behind `traced`.
    telemetry::TelemetryRecorder* const recorder = deps_.telemetry;
    const bool traced = recorder != nullptr && recorder->enabled();
    telemetry::TaskTrace trace;
    if (traced && spec.enqueued_at.time_since_epoch().count() != 0) {
      trace.charge(telemetry::Stage::kQueueWait,
                   ns_between(spec.enqueued_at, received));
    }

    // Injected queue-stage stall (the task sat in the mailbox "longer").
    std::uint64_t queue_fault_ns = 0;
    if (deps_.faults != nullptr) {
      const double queue_ms =
          deps_.faults->stage_delay_ms(FaultStage::kQueue, id_, spec);
      if (queue_ms > 0.0) {
        support::precise_sleep_ms(queue_ms);
        // Attributed to queue-wait: the fault models a task that sat in the
        // mailbox longer, and kept out of the dequeue-delay window below.
        queue_fault_ns = ms_to_ns(queue_ms);
        if (traced) trace.charge(telemetry::Stage::kQueueWait, queue_fault_ns);
      }
    }

    // Crash point: fires at dequeue, before any work — stateful closures
    // (SAGA's version table) are never half-applied by a crash.
    if (deps_.faults != nullptr && deps_.faults->should_crash(id_, spec)) {
      if (!dead_.exchange(true, std::memory_order_acq_rel)) {
        deps_.faults->count_crash();
      }
      bounce(spec);
      continue;
    }

    TaskResult result;
    result.id = spec.id;
    result.worker = id_;
    result.partition = spec.partition;
    result.seq = spec.seq;
    result.model_version = spec.model_version;

    // One-time data-migration charge (stolen partition or speculative
    // replica): the partition's rows travel before the task can start.
    // Charged outside the service stopwatch so it never pollutes the EWMA
    // service times that steer stealing and speculation.
    if (spec.migration_ms > 0.0) {
      support::precise_sleep_ms(spec.migration_ms);
    }

    support::Stopwatch watch;
    if (traced) {
      // Pickup -> task start: scheduling/migration latency on this side of
      // the mailbox. The injected queue stall was charged to queue-wait
      // above, so it is excluded here.
      const std::uint64_t since_pickup = ns_between(received, watch.start());
      trace.set(telemetry::Stage::kDequeueDelay,
                since_pickup > queue_fault_ns ? since_pickup - queue_fault_ns
                                              : 0);
    }
    if (deps_.faults != nullptr && deps_.faults->should_fail_task(id_, spec)) {
      result.status = Status(StatusCode::kInternal, "injected fault");
    } else if (!spec.fn) {
      result.status = Status(StatusCode::kInvalidArgument, "task has no function");
    } else {
      TaskContext ctx;
      ctx.worker = id_;
      ctx.partition = spec.partition;
      ctx.seq = spec.seq;
      ctx.rng = support::RngStream(spec.rng_seed)
                    .substream(static_cast<std::uint64_t>(spec.partition) + 1)
                    .substream(spec.seq);
      // The task function materializes the model and wraps the payload deep
      // inside store/optim code; the thread-local hook lets those callees
      // charge kModelFetch/kSerialize without a recorder parameter.
      if (traced) telemetry::set_active_trace(&trace);
      try {
        auto out = (*spec.fn)(ctx);
        if (out.is_ok()) {
          result.payload = std::move(out).value();
        } else {
          result.status = out.status();
        }
      } catch (const std::exception& e) {
        result.status = Status(StatusCode::kInternal, std::string("task threw: ") + e.what());
      } catch (...) {
        result.status = Status(StatusCode::kInternal, "task threw unknown exception");
      }
      if (traced) telemetry::set_active_trace(nullptr);
      // Injected compute-stage stall lands inside the measured task time.
      if (deps_.faults != nullptr) {
        const double compute_ms =
            deps_.faults->stage_delay_ms(FaultStage::kCompute, id_, spec);
        if (compute_ms > 0.0) support::precise_sleep_ms(compute_ms);
      }
    }
    result.compute_ms = watch.elapsed_ms();
    if (traced) {
      // Compute = task-function time minus what the hook attributed to model
      // fetch and in-function serialization, so the three stages partition
      // compute_ms exactly (the reconciliation invariant tests rely on).
      const std::uint64_t fn_ns = ms_to_ns(result.compute_ms);
      const std::uint64_t inner = trace.ns(telemetry::Stage::kModelFetch) +
                                  trace.ns(telemetry::Stage::kSerialize);
      trace.set(telemetry::Stage::kCompute, fn_ns > inner ? fn_ns - inner : 0);
    }

    // Pad to the straggler-scaled service floor: this is where a slow machine
    // becomes slow. Computed *after* the real work so fast math on scaled-down
    // data still yields paper-shaped service times.
    const double multiplier =
        deps_.delay != nullptr ? deps_.delay->multiplier(id_, spec.seq) : 1.0;
    const double target_ms = spec.service_floor_ms * multiplier;
    if (target_ms > result.compute_ms) {
      support::precise_sleep_ms(target_ms - result.compute_ms);
    }
    result.service_ms = watch.elapsed_ms();
    if (traced) {
      trace.set(telemetry::Stage::kServicePad,
                ms_to_ns(result.service_ms - result.compute_ms));
    }

    // Injected serialize-stage stall: after compute, before the wire.
    if (deps_.faults != nullptr) {
      const double serialize_ms =
          deps_.faults->stage_delay_ms(FaultStage::kSerialize, id_, spec);
      if (serialize_ms > 0.0) {
        support::precise_sleep_ms(serialize_ms);
        if (traced) {
          trace.charge(telemetry::Stage::kSerialize, ms_to_ns(serialize_ms));
        }
      }
    }

    // Ship the result over the worker's wire and charge the transfer (plus
    // any injected network-stage stall — FaultStage::kNetwork/kResultChannel
    // — which by contract lands in the result-channel segment and stays a
    // local sleep on every backend). The in-process channel hands back the
    // modeled transfer to sleep, bit-identical to the channel-less path;
    // socket channels spend real wall time on the round trip and return the
    // decoded echo, which is what the driver consumes. A failed ship means
    // the result never left the machine: fail-stop, synthesized kUnavailable.
    double transfer_ms = 0.0;
    std::uint64_t wire_ns = 0;
    if (deps_.channel != nullptr) {
      support::StatusOr<transport::ShipReceipt> shipped =
          deps_.channel->ship_result(result);
      if (shipped.is_ok()) {
        transfer_ms += shipped.value().charge_ms;
        wire_ns = shipped.value().wire_ns;
        result = std::move(shipped.value().result);
      } else {
        dead_.store(true, std::memory_order_release);
        result.status = Status(StatusCode::kUnavailable, "worker crashed");
        result.payload = Payload();
      }
    } else if (deps_.network != nullptr && result.payload.has_value()) {
      transfer_ms += deps_.network->transfer_ms(result.payload.bytes());
    }
    if (deps_.faults != nullptr) {
      transfer_ms += deps_.faults->stage_delay_ms(FaultStage::kNetwork, id_, spec);
    }
    if (transfer_ms > 0.0) {
      support::precise_sleep_ms(transfer_ms);
    }
    if (traced && (transfer_ms > 0.0 || wire_ns > 0)) {
      trace.charge(telemetry::Stage::kResultChannel,
                   ms_to_ns(transfer_ms) + wire_ns);
    }

    // A sibling executor may have crashed this worker while we were mid-task:
    // fail-stop means our result never made it off the machine either.
    if (dead_.load(std::memory_order_acquire)) {
      result.status = Status(StatusCode::kUnavailable, "worker crashed");
      result.payload = Payload();
    }

    if (deps_.metrics != nullptr) {
      if (result.ok()) {
        deps_.metrics->tasks_completed.add(1);
        // Completed tasks only: the mean divides by tasks_completed, so
        // compute burnt by failed attempts must not inflate it.
        deps_.metrics->task_compute_ns.add(
            static_cast<std::uint64_t>(result.compute_ms * 1e6));
      } else {
        deps_.metrics->tasks_failed.add(1);
      }
      deps_.metrics->result_bytes.add(result.payload.bytes());
    }

    // Permanent non-delivery: the task ran, the result vanishes in flight.
    // Only a speculative replica (or presumed-lost re-speculation) recovers
    // it. Crash-synthesized failures are never dropped — they ARE the
    // delivery-failure notification.
    const bool alive = !dead_.load(std::memory_order_acquire);
    if (alive && deps_.faults != nullptr &&
        deps_.faults->should_drop_result(id_, spec)) {
      last_submit = Clock::now();
      continue;
    }

    const bool duplicate = alive && deps_.faults != nullptr &&
                           deps_.faults->should_duplicate_result(id_, spec);

    // Delivered, successful results only: the trace partitions compute_ms,
    // and task_compute_ns counts completed tasks — recording failures would
    // break the sums-reconcile invariant the telemetry tests pin.
    if (traced && result.ok()) {
      trace.worker = id_;
      trace.partition = spec.partition;
      trace.seq = spec.seq;
      trace.model_version = spec.model_version;
      recorder->record(static_cast<std::size_t>(id_),
                       static_cast<std::size_t>(core), trace);
    }

    result.finished_at = Clock::now();
    if (duplicate) {
      TaskResult copy = result;  // payload is shared_ptr-backed, cheap to copy
      deps_.results->push(std::move(copy));
    }
    deps_.results->push(std::move(result));
    last_submit = Clock::now();
  }

  set_current_worker_env(nullptr);
}

}  // namespace asyncml::engine
