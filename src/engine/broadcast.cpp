#include "engine/broadcast.hpp"

#include "support/thread_util.hpp"
#include "telemetry/telemetry.hpp"
#include "transport/transport.hpp"

namespace asyncml::engine {

BroadcastId BroadcastStore::put(Payload payload) {
  std::lock_guard lock(mutex_);
  const BroadcastId id = next_id_++;
  entries_.emplace(id, std::move(payload));
  return id;
}

Payload BroadcastStore::get(BroadcastId id) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(id);
  return it == entries_.end() ? Payload{} : it->second;
}

void BroadcastStore::erase(BroadcastId id) {
  std::lock_guard lock(mutex_);
  entries_.erase(id);
}

std::size_t BroadcastStore::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

Payload BroadcastCache::get_or_fetch(BroadcastId id, BroadcastClass cls) {
  // Fetch-through from task code (data partitions, history payloads) counts
  // as the calling task's model-fetch/materialize segment. The model chain
  // walk charges through admit() under VersionedModelCache::value_at's own
  // timer, so this never double-counts.
  telemetry::ScopedStageTimer fetch_timer(telemetry::Stage::kModelFetch);
  {
    std::lock_guard lock(mutex_);
    if (const auto it = cache_.find(id); it != cache_.end()) {
      if (metrics_ != nullptr) metrics_->broadcast_hits.add(1);
      return it->second;
    }
  }
  // Miss: fetch from the driver store, charging transfer time. The fetch is
  // done outside the cache lock so slow transfers don't serialize the other
  // executor thread of this worker.
  Payload payload = store_->get(id);
  if (!payload.has_value()) return payload;
  return charge_and_cache(id, std::move(payload), cls);
}

Payload BroadcastCache::admit(BroadcastId id, const Payload& payload,
                              BroadcastClass cls, std::size_t* charged_bytes) {
  if (charged_bytes != nullptr) *charged_bytes = 0;
  {
    std::lock_guard lock(mutex_);
    if (const auto it = cache_.find(id); it != cache_.end()) {
      if (metrics_ != nullptr) metrics_->broadcast_hits.add(1);
      return it->second;
    }
  }
  if (!payload.has_value()) return payload;
  if (charged_bytes != nullptr) *charged_bytes = payload.bytes();
  return charge_and_cache(id, payload, cls);
}

Payload BroadcastCache::charge_and_cache(BroadcastId id, Payload payload,
                                         BroadcastClass cls) {
  if (channel_ != nullptr) {
    // Round-trip through the worker's wire. The in-process backend hands back
    // the modeled charge to sleep (bit-identical to the legacy path below);
    // socket backends spend real wall time and return the decoded echo,
    // which is what gets cached. A dead wire keeps the local copy — the
    // values are identical either way, and the worker fail-stops on its next
    // result ship.
    support::StatusOr<transport::FetchReceipt> fetched =
        channel_->fetch_payload(payload, cls);
    if (fetched.is_ok()) {
      payload = std::move(fetched.value().payload);
      if (fetched.value().charge_ms > 0.0) {
        support::precise_sleep_ms(fetched.value().charge_ms);
      }
    } else if (net_ != nullptr) {
      support::precise_sleep_ms(net_->transfer_ms(payload.bytes()));
    }
  } else if (net_ != nullptr) {
    support::precise_sleep_ms(net_->transfer_ms(payload.bytes()));
  }
  if (metrics_ != nullptr) metrics_->count_broadcast_fetch(cls, payload.bytes());
  std::lock_guard lock(mutex_);
  // A concurrent fetch of the same id may have landed first; keep the
  // existing entry (identical content) so references into it stay valid.
  return cache_.emplace(id, std::move(payload)).first->second;
}

bool BroadcastCache::contains(BroadcastId id) const {
  std::lock_guard lock(mutex_);
  return cache_.contains(id);
}

void BroadcastCache::erase(BroadcastId id) {
  std::lock_guard lock(mutex_);
  cache_.erase(id);
}

std::size_t BroadcastCache::size() const {
  std::lock_guard lock(mutex_);
  return cache_.size();
}

namespace {
thread_local WorkerEnv* t_worker_env = nullptr;
}  // namespace

WorkerEnv* current_worker_env() noexcept { return t_worker_env; }
void set_current_worker_env(WorkerEnv* env) noexcept { t_worker_env = env; }

}  // namespace asyncml::engine
