#pragma once

// Network cost model.
//
// The engine runs in one address space, so communication cost is *charged*
// rather than incurred: a transfer of B bytes sleeps the sending thread for
// `latency + B / bandwidth`, scaled by `time_scale` (the same knob that
// scales task service times, letting whole experiments shrink).  Setting
// `time_scale = 0` disables charging (useful in unit tests).

#include <cstddef>

namespace asyncml::engine {

struct NetworkModel {
  /// One-way message latency in milliseconds.
  double latency_ms = 0.02;
  /// Link bandwidth in megaBYTES per second (per worker NIC).  Named MBps
  /// explicitly: the formula divides mebibytes by this, so a megabits
  /// reading would mis-model transfers by 8x.
  double bandwidth_MBps = 2000.0;
  /// Global scale on charged time; 0 disables network charging entirely.
  double time_scale = 1.0;

  [[nodiscard]] double transfer_ms(std::size_t bytes) const {
    if (time_scale <= 0.0) return 0.0;
    const double mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
    return time_scale * (latency_ms + 1e3 * mb / bandwidth_MBps);
  }
};

}  // namespace asyncml::engine
