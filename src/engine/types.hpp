#pragma once

// Shared identifier types of the engine layer.

#include <cstdint>

namespace asyncml::engine {

using WorkerId = int;
using PartitionId = int;
using TaskId = std::uint64_t;
using BroadcastId = std::uint64_t;

/// Monotonically increasing model-parameter version. Version 0 is the initial
/// model; every server-side update bumps it. Staleness of a task result is
/// (version at collection) − (version the task computed against).
using Version = std::uint64_t;

/// Sentinel partition id for tasks that do not read a data partition
/// (e.g. treeAggregate combine stages).
inline constexpr PartitionId kNoPartition = -1;

}  // namespace asyncml::engine
