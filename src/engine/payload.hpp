#pragma once

// Type-erased, immutable task/broadcast payload with byte accounting.
//
// Results and broadcast values cross the (simulated) wire, so every payload
// carries its serialized size; the NetworkModel charges transfer time from it
// and the metrics counters accumulate it.  Payloads are shared_ptr-backed and
// immutable after construction, hence safe to share across threads.

#include <cassert>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <typeindex>
#include <typeinfo>
#include <utility>

namespace asyncml::engine {

class Payload {
 public:
  Payload() : type_(typeid(void)) {}

  /// Wraps a trivially-copyable `value`; the modeled wire size is sizeof(T).
  /// Container-backed payloads (vectors, strings, gradient accumulators)
  /// must use the two-argument overload — sizeof() sees only the handle and
  /// would silently under-charge the transfer.
  template <typename T>
  [[nodiscard]] static Payload wrap(T value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Payload::wrap(value): non-trivially-copyable payloads have "
                  "a dynamic wire size; pass it explicitly via "
                  "wrap(value, bytes)");
    return wrap(std::move(value), sizeof(T));
  }

  /// Wraps `value` with an explicit modeled serialized size.
  template <typename T>
  [[nodiscard]] static Payload wrap(T value, std::size_t bytes) {
    Payload p;
    p.data_ = std::make_shared<const T>(std::move(value));
    p.bytes_ = bytes;
    p.type_ = typeid(T);
    return p;
  }

  [[nodiscard]] bool has_value() const noexcept { return data_ != nullptr; }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

  template <typename T>
  [[nodiscard]] const T& get() const {
    assert(has_value() && type_ == std::type_index(typeid(T)) &&
           "Payload::get<T>: type mismatch");
    return *static_cast<const T*>(data_.get());
  }

  template <typename T>
  [[nodiscard]] bool holds() const noexcept {
    return has_value() && type_ == std::type_index(typeid(T));
  }

  /// Shares ownership of the wrapped value (aliasing shared_ptr). Lets a
  /// cache keep the value alive after the payload is erased from every store
  /// — the delta store aliases base snapshots this way instead of copying.
  template <typename T>
  [[nodiscard]] std::shared_ptr<const T> share() const {
    assert(has_value() && type_ == std::type_index(typeid(T)) &&
           "Payload::share<T>: type mismatch");
    return std::shared_ptr<const T>(data_, static_cast<const T*>(data_.get()));
  }

 private:
  std::shared_ptr<const void> data_;
  std::size_t bytes_ = 0;
  std::type_index type_;
};

}  // namespace asyncml::engine
