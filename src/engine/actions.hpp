#pragma once

// Synchronous (BSP) actions over RDDs: Spark's `aggregate`, `reduce`, and
// MLlib's `treeAggregate`, executed as one stage of per-partition tasks with
// task-retry fault tolerance.
//
// These are the deterministic bulk-synchronous primitives the paper contrasts
// ASYNC against: the driver blocks until *every* partition's task returns, so
// one straggler stalls the whole stage.  The asynchronous counterparts
// (ASYNCreduce / ASYNCaggregate) live in src/core and reuse the same task
// builders but return immediately.

#include <utility>
#include <vector>

#include "engine/cluster.hpp"
#include "engine/rdd.hpp"
#include "linalg/dense_vector.hpp"
#include "linalg/grad_vector.hpp"

namespace asyncml::engine {

/// Modeled wire size of a payload value. Overload for types whose size is
/// dynamic; the generic fallback is sizeof(U).
template <typename U>
[[nodiscard]] std::size_t payload_size_bytes(const U&) {
  return sizeof(U);
}
[[nodiscard]] inline std::size_t payload_size_bytes(const linalg::DenseVector& v) {
  return v.size_bytes();
}
[[nodiscard]] inline std::size_t payload_size_bytes(const linalg::GradVector& v) {
  return v.size_bytes();
}

struct StageOptions {
  std::uint64_t seq = 0;           ///< dispatch round (drives sampling RNG)
  Version model_version = 0;       ///< version tag carried by the tasks
  double service_floor_ms = 0.0;   ///< base service time per task
  std::uint64_t rng_seed = 1;      ///< experiment seed for sampling
  int max_retries = 2;             ///< per-task retry budget on failure
};

/// Builds the worker-side function of an aggregate task over one partition:
/// acc = zero; for each element: acc = seq_op(acc, element); return acc.
template <typename T, typename U, typename SeqOp>
[[nodiscard]] std::shared_ptr<const TaskFn> make_aggregate_fn(Rdd<T> rdd, U zero,
                                                              SeqOp seq_op) {
  return std::make_shared<const TaskFn>(
      [rdd = std::move(rdd), zero = std::move(zero),
       seq_op = std::move(seq_op)](TaskContext& ctx) -> support::StatusOr<Payload> {
        U acc = zero;
        rdd.foreach_partition(ctx.partition, ctx,
                              [&](const T& element) { acc = seq_op(std::move(acc), element); });
        const std::size_t bytes = payload_size_bytes(acc);
        return Payload::wrap<U>(std::move(acc), bytes);
      });
}

/// Builds a combine task over already-aggregated values (treeAggregate's
/// intermediate stage): folds `values` with comb_op on a worker.
template <typename U, typename CombOp>
[[nodiscard]] std::shared_ptr<const TaskFn> make_combine_fn(std::vector<U> values,
                                                            CombOp comb_op) {
  return std::make_shared<const TaskFn>(
      [values = std::move(values),
       comb_op = std::move(comb_op)](TaskContext&) -> support::StatusOr<Payload> {
        U acc = values.front();
        for (std::size_t i = 1; i < values.size(); ++i) acc = comb_op(std::move(acc), values[i]);
        const std::size_t bytes = payload_size_bytes(acc);
        return Payload::wrap<U>(std::move(acc), bytes);
      });
}

/// Runs prepared (worker, spec) pairs to completion, blocking on the
/// cluster's result queue. Failed tasks are retried on the next worker
/// (round-robin) up to `max_retries` times; a task that exhausts its budget
/// aborts the program (matching Spark's job-failure semantics — the paper's
/// algorithms never continue past a lost partition).
///
/// Returns results ordered by submission slot. Must not run concurrently
/// with any other consumer of cluster.results().
[[nodiscard]] std::vector<TaskResult> run_tasks_sync(
    Cluster& cluster, std::vector<std::pair<WorkerId, TaskSpec>> tasks, int max_retries);

/// One stage task for partition `p` built from a prepared task function.
[[nodiscard]] inline TaskSpec make_stage_spec(Cluster& cluster, PartitionId p,
                                              std::shared_ptr<const TaskFn> fn,
                                              const StageOptions& options) {
  TaskSpec spec;
  spec.id = cluster.next_task_id();
  spec.partition = p;
  spec.seq = options.seq;
  spec.model_version = options.model_version;
  spec.fn = std::move(fn);
  spec.service_floor_ms = options.service_floor_ms;
  spec.rng_seed = options.rng_seed;
  return spec;
}

/// `aggregate` over a prebuilt per-partition task function (the fused batch
/// gradient bodies enter here): one task per partition, combined on the
/// driver. Partition p runs on worker p % num_workers (fixed placement).
template <typename U, typename CombOp>
[[nodiscard]] U aggregate_sync_fn(Cluster& cluster, std::shared_ptr<const TaskFn> fn,
                                  int parts, U zero, CombOp comb_op,
                                  const StageOptions& options) {
  std::vector<std::pair<WorkerId, TaskSpec>> tasks;
  tasks.reserve(static_cast<std::size_t>(parts));
  for (PartitionId p = 0; p < parts; ++p) {
    tasks.emplace_back(p % cluster.num_workers(),
                       make_stage_spec(cluster, p, fn, options));
  }
  std::vector<TaskResult> results =
      run_tasks_sync(cluster, std::move(tasks), options.max_retries);
  U acc = std::move(zero);
  for (TaskResult& r : results) acc = comb_op(std::move(acc), r.payload.get<U>());
  return acc;
}

/// Spark `aggregate`: one task per partition, combined on the driver.
template <typename T, typename U, typename SeqOp, typename CombOp>
[[nodiscard]] U aggregate_sync(Cluster& cluster, const Rdd<T>& rdd, U zero, SeqOp seq_op,
                               CombOp comb_op, const StageOptions& options) {
  auto fn = make_aggregate_fn<T, U, SeqOp>(rdd, zero, std::move(seq_op));
  return aggregate_sync_fn(cluster, std::move(fn), rdd.num_partitions(),
                           std::move(zero), std::move(comb_op), options);
}

/// Spark `reduce` specialization: zero-less fold where U == T accumulations
/// start from the first element. Implemented via aggregate with an engaged
/// flag to avoid requiring a monoid identity.
template <typename T, typename Op>
[[nodiscard]] T reduce_sync(Cluster& cluster, const Rdd<T>& rdd, Op op,
                            const StageOptions& options) {
  struct Acc {
    T value{};
    bool engaged = false;
  };
  Acc out = aggregate_sync<T, Acc>(
      cluster, rdd, Acc{},
      [op](Acc acc, const T& t) {
        if (!acc.engaged) {
          acc.value = t;
          acc.engaged = true;
        } else {
          acc.value = op(std::move(acc.value), t);
        }
        return acc;
      },
      [op](Acc a, const Acc& b) {
        if (!b.engaged) return a;
        if (!a.engaged) return Acc{b.value, true};
        return Acc{op(std::move(a.value), b.value), true};
      },
      options);
  return std::move(out.value);
}

/// MLlib-style treeAggregate over a prebuilt per-partition task function:
/// per-partition aggregation, then log-depth combine stages executed as
/// worker tasks (fan-in `fanout`), final combine on the driver. This is the
/// reduction MLlib's mini-batch SGD uses and is the baseline of the paper's
/// Figure 2.
template <typename U, typename CombOp>
[[nodiscard]] U tree_aggregate_sync_fn(Cluster& cluster,
                                       std::shared_ptr<const TaskFn> fn, int parts,
                                       U zero, CombOp comb_op,
                                       const StageOptions& options, int fanout = 4) {
  std::vector<std::pair<WorkerId, TaskSpec>> tasks;
  for (PartitionId p = 0; p < parts; ++p) {
    tasks.emplace_back(p % cluster.num_workers(),
                       make_stage_spec(cluster, p, fn, options));
  }
  std::vector<TaskResult> results =
      run_tasks_sync(cluster, std::move(tasks), options.max_retries);

  std::vector<U> level;
  level.reserve(results.size());
  for (TaskResult& r : results) level.push_back(r.payload.get<U>());

  // Combine stages on workers until one worker-task's worth remains.
  int combine_worker = 0;
  while (static_cast<int>(level.size()) > fanout) {
    std::vector<std::pair<WorkerId, TaskSpec>> combine_tasks;
    for (std::size_t group = 0; group * fanout < level.size(); ++group) {
      const std::size_t begin = group * fanout;
      const std::size_t end = std::min(level.size(), begin + fanout);
      std::vector<U> chunk(level.begin() + static_cast<std::ptrdiff_t>(begin),
                           level.begin() + static_cast<std::ptrdiff_t>(end));
      TaskSpec spec;
      spec.id = cluster.next_task_id();
      spec.partition = kNoPartition;
      spec.seq = options.seq;
      spec.model_version = options.model_version;
      spec.fn = make_combine_fn<U, CombOp>(std::move(chunk), comb_op);
      spec.service_floor_ms = 0.0;  // combine cost is the real fold time
      spec.rng_seed = options.rng_seed;
      combine_tasks.emplace_back(combine_worker % cluster.num_workers(), std::move(spec));
      ++combine_worker;
    }
    std::vector<TaskResult> combined =
        run_tasks_sync(cluster, std::move(combine_tasks), options.max_retries);
    level.clear();
    for (TaskResult& r : combined) level.push_back(r.payload.get<U>());
  }

  U acc = std::move(zero);
  for (U& u : level) acc = comb_op(std::move(acc), u);
  return acc;
}

/// treeAggregate over an RDD + seq op (lowered to the fn-based variant).
template <typename T, typename U, typename SeqOp, typename CombOp>
[[nodiscard]] U tree_aggregate_sync(Cluster& cluster, const Rdd<T>& rdd, U zero,
                                    SeqOp seq_op, CombOp comb_op,
                                    const StageOptions& options, int fanout = 4) {
  auto fn = make_aggregate_fn<T, U, SeqOp>(rdd, zero, std::move(seq_op));
  return tree_aggregate_sync_fn(cluster, std::move(fn), rdd.num_partitions(),
                                std::move(zero), std::move(comb_op), options, fanout);
}

}  // namespace asyncml::engine
