#pragma once

// Resilient-distributed-dataset abstraction (lazy, partitioned, immutable).
//
// An Rdd<T> is a lineage of transformations over partitioned data, evaluated
// per partition *on the worker* when an action's task runs.  Iteration is
// push-based: `foreach_partition(p, ctx, sink)` streams the partition's
// elements through the composed transformation chain into `sink`, so no
// intermediate collections are materialized (map/filter/sample fuse).
//
// Determinism: stochastic transformations (sample) draw from ctx.rng, which
// the worker seeds from (rng_seed, partition, seq) — re-running a task for
// the same round reproduces the same mini-batch, which is what makes Spark's
// recompute-on-failure semantics (and ours) sound.

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "engine/task.hpp"
#include "engine/types.hpp"

namespace asyncml::engine {

template <typename T>
class Rdd {
 public:
  using Element = T;
  using Sink = std::function<void(const T&)>;

  class Impl {
   public:
    virtual ~Impl() = default;
    virtual void foreach(PartitionId p, TaskContext& ctx, const Sink& sink) const = 0;
    [[nodiscard]] virtual int num_partitions() const = 0;
  };

  Rdd() = default;
  explicit Rdd(std::shared_ptr<const Impl> impl) : impl_(std::move(impl)) {}

  [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
  [[nodiscard]] int num_partitions() const { return impl_->num_partitions(); }

  void foreach_partition(PartitionId p, TaskContext& ctx, const Sink& sink) const {
    impl_->foreach(p, ctx, sink);
  }

  /// Lazy element-wise transformation (Spark `map`).
  template <typename F>
  [[nodiscard]] auto map(F f) const {
    using U = std::invoke_result_t<F, const T&>;
    struct MapImpl final : Rdd<U>::Impl {
      std::shared_ptr<const Impl> parent;
      F fn;
      MapImpl(std::shared_ptr<const Impl> p, F g) : parent(std::move(p)), fn(std::move(g)) {}
      void foreach(PartitionId p, TaskContext& ctx,
                   const typename Rdd<U>::Sink& sink) const override {
        parent->foreach(p, ctx, [&](const T& t) { sink(fn(t)); });
      }
      [[nodiscard]] int num_partitions() const override { return parent->num_partitions(); }
    };
    return Rdd<U>(std::make_shared<const MapImpl>(impl_, std::move(f)));
  }

  /// Lazy predicate filter (Spark `filter`).
  template <typename F>
  [[nodiscard]] Rdd<T> filter(F f) const {
    struct FilterImpl final : Impl {
      std::shared_ptr<const Impl> parent;
      F fn;
      FilterImpl(std::shared_ptr<const Impl> p, F g)
          : parent(std::move(p)), fn(std::move(g)) {}
      void foreach(PartitionId p, TaskContext& ctx, const Sink& sink) const override {
        parent->foreach(p, ctx, [&](const T& t) {
          if (fn(t)) sink(t);
        });
      }
      [[nodiscard]] int num_partitions() const override { return parent->num_partitions(); }
    };
    return Rdd<T>(std::make_shared<const FilterImpl>(impl_, std::move(f)));
  }

  /// Bernoulli sampling with probability `fraction` per element — Spark's
  /// `sample(withReplacement = false, fraction)`, the mini-batch operator of
  /// Algorithms 1–4. Draws from the task RNG (deterministic per round).
  [[nodiscard]] Rdd<T> sample(double fraction) const {
    struct SampleImpl final : Impl {
      std::shared_ptr<const Impl> parent;
      double fraction;
      SampleImpl(std::shared_ptr<const Impl> p, double f)
          : parent(std::move(p)), fraction(f) {}
      void foreach(PartitionId p, TaskContext& ctx, const Sink& sink) const override {
        parent->foreach(p, ctx, [&](const T& t) {
          if (ctx.rng.bernoulli(fraction)) sink(t);
        });
      }
      [[nodiscard]] int num_partitions() const override { return parent->num_partitions(); }
    };
    return Rdd<T>(std::make_shared<const SampleImpl>(impl_, fraction));
  }

 private:
  std::shared_ptr<const Impl> impl_;
};

/// Source RDD over a partitioned dataset: the distributed `points` collection
/// of the paper's algorithms. The dataset is shared immutable state (our
/// stand-in for data resident on executors).
[[nodiscard]] inline Rdd<data::LabeledPoint> make_points_rdd(
    data::DatasetPtr dataset, std::vector<data::RowRange> partitions) {
  struct SourceImpl final : Rdd<data::LabeledPoint>::Impl {
    data::DatasetPtr dataset;
    std::vector<data::RowRange> parts;
    SourceImpl(data::DatasetPtr d, std::vector<data::RowRange> p)
        : dataset(std::move(d)), parts(std::move(p)) {}
    void foreach(PartitionId p, TaskContext&,
                 const Rdd<data::LabeledPoint>::Sink& sink) const override {
      const data::RowRange range = parts.at(static_cast<std::size_t>(p));
      for (std::size_t r = range.begin; r < range.end; ++r) sink(dataset->point(r));
    }
    [[nodiscard]] int num_partitions() const override {
      return static_cast<int>(parts.size());
    }
  };
  return Rdd<data::LabeledPoint>(
      std::make_shared<const SourceImpl>(std::move(dataset), std::move(partitions)));
}

/// Source RDD over an in-memory vector split into `parts` contiguous ranges
/// (handy in tests and micro-benchmarks).
template <typename T>
[[nodiscard]] Rdd<T> make_vector_rdd(std::vector<T> values, int parts) {
  struct VecImpl final : Rdd<T>::Impl {
    std::vector<T> values;
    std::vector<data::RowRange> ranges;
    VecImpl(std::vector<T> v, int p)
        : values(std::move(v)),
          ranges(data::contiguous_partitions(values.size(), static_cast<std::size_t>(p))) {}
    void foreach(PartitionId p, TaskContext&,
                 const typename Rdd<T>::Sink& sink) const override {
      const data::RowRange range = ranges.at(static_cast<std::size_t>(p));
      for (std::size_t i = range.begin; i < range.end; ++i) sink(values[i]);
    }
    [[nodiscard]] int num_partitions() const override {
      return static_cast<int>(ranges.size());
    }
  };
  return Rdd<T>(std::make_shared<const VecImpl>(std::move(values), parts));
}

}  // namespace asyncml::engine
