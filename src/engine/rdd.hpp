#pragma once

// Resilient-distributed-dataset abstraction (lazy, partitioned, immutable).
//
// An Rdd<T> is a lineage of transformations over partitioned data, evaluated
// per partition *on the worker* when an action's task runs.  Iteration is
// push-based: `foreach_partition(p, ctx, sink)` streams the partition's
// elements through the composed transformation chain into `sink`, so no
// intermediate collections are materialized (map/filter/sample fuse).
//
// Determinism: stochastic transformations (sample) draw from ctx.rng, which
// the worker seeds from (rng_seed, partition, seq) — re-running a task for
// the same round reproduces the same mini-batch, which is what makes Spark's
// recompute-on-failure semantics (and ours) sound.

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <type_traits>
#include <utility>

#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "engine/task.hpp"
#include "engine/types.hpp"

namespace asyncml::engine {

// Mini-batch sampling kernels shared by the streaming Rdd::sample and the
// fused batch gradient path (sample_partition_rows). Whatever scheme one
// side uses, the other replays draw-for-draw — the two mini-batches are the
// SAME RNG realization, which is what keeps the fused and per-row gradient
// pipelines bit-identical.
namespace sampling {

/// Below this fraction, selection uses gap sampling (Spark's
/// GapSamplingIterator): draw the geometric run of rejections to the next
/// accepted element — one RNG draw per *selected* element instead of one
/// Bernoulli draw per element. The realized subsets differ from per-element
/// draws, but the process is the identical i.i.d. Bernoulli(p); above the
/// threshold per-element draws are cheaper (and exactly the historical
/// behaviour).
inline constexpr double kGapThreshold = 0.4;

[[nodiscard]] inline bool use_gap(double fraction) noexcept {
  return fraction < kGapThreshold;
}

/// Number of rejections before the next acceptance of a Bernoulli(p)
/// process, p in (0, kGapThreshold): floor(log(U)/log(1-p)) for U in (0,1].
[[nodiscard]] inline std::uint64_t next_gap(support::RngStream& rng, double p) {
  const double u = 1.0 - rng.next_double();  // (0, 1]
  const double gap = std::floor(std::log(u) / std::log1p(-p));
  if (!(gap < 9.0e18)) return std::numeric_limits<std::uint64_t>::max();
  return static_cast<std::uint64_t>(gap);
}

}  // namespace sampling

template <typename T>
class Rdd {
 public:
  using Element = T;
  using Sink = std::function<void(const T&)>;

  class Impl {
   public:
    virtual ~Impl() = default;
    virtual void foreach(PartitionId p, TaskContext& ctx, const Sink& sink) const = 0;
    [[nodiscard]] virtual int num_partitions() const = 0;
  };

  Rdd() = default;
  explicit Rdd(std::shared_ptr<const Impl> impl) : impl_(std::move(impl)) {}

  [[nodiscard]] bool valid() const noexcept { return impl_ != nullptr; }
  [[nodiscard]] int num_partitions() const { return impl_->num_partitions(); }

  void foreach_partition(PartitionId p, TaskContext& ctx, const Sink& sink) const {
    impl_->foreach(p, ctx, sink);
  }

  /// Lazy element-wise transformation (Spark `map`).
  template <typename F>
  [[nodiscard]] auto map(F f) const {
    using U = std::invoke_result_t<F, const T&>;
    struct MapImpl final : Rdd<U>::Impl {
      std::shared_ptr<const Impl> parent;
      F fn;
      MapImpl(std::shared_ptr<const Impl> p, F g) : parent(std::move(p)), fn(std::move(g)) {}
      void foreach(PartitionId p, TaskContext& ctx,
                   const typename Rdd<U>::Sink& sink) const override {
        parent->foreach(p, ctx, [&](const T& t) { sink(fn(t)); });
      }
      [[nodiscard]] int num_partitions() const override { return parent->num_partitions(); }
    };
    return Rdd<U>(std::make_shared<const MapImpl>(impl_, std::move(f)));
  }

  /// Lazy predicate filter (Spark `filter`).
  template <typename F>
  [[nodiscard]] Rdd<T> filter(F f) const {
    struct FilterImpl final : Impl {
      std::shared_ptr<const Impl> parent;
      F fn;
      FilterImpl(std::shared_ptr<const Impl> p, F g)
          : parent(std::move(p)), fn(std::move(g)) {}
      void foreach(PartitionId p, TaskContext& ctx, const Sink& sink) const override {
        parent->foreach(p, ctx, [&](const T& t) {
          if (fn(t)) sink(t);
        });
      }
      [[nodiscard]] int num_partitions() const override { return parent->num_partitions(); }
    };
    return Rdd<T>(std::make_shared<const FilterImpl>(impl_, std::move(f)));
  }

  /// Bernoulli sampling with probability `fraction` per element — Spark's
  /// `sample(withReplacement = false, fraction)`, the mini-batch operator of
  /// Algorithms 1–4. Draws from the task RNG (deterministic per round).
  /// Small fractions use gap sampling (sampling::next_gap) — same i.i.d.
  /// Bernoulli(p) process, O(selected) draws instead of O(elements).
  ///
  /// RNG contract: the draw sequence (per-element Bernoulli above the gap
  /// threshold, one geometric gap per selection below it, no draws at
  /// fraction 0 or >= 1) is replayed exactly by `sample_partition_rows` for
  /// the fused batch kernels — changing either side breaks the
  /// bit-compatibility between the streaming and batch gradient paths
  /// (tests/properties/batch_equivalence_test.cpp pins it).
  [[nodiscard]] Rdd<T> sample(double fraction) const {
    struct SampleImpl final : Impl {
      std::shared_ptr<const Impl> parent;
      double fraction;
      SampleImpl(std::shared_ptr<const Impl> p, double f)
          : parent(std::move(p)), fraction(f) {}
      void foreach(PartitionId p, TaskContext& ctx, const Sink& sink) const override {
        if (fraction >= 1.0) {
          parent->foreach(p, ctx, sink);
          return;
        }
        if (fraction <= 0.0) return;
        if (sampling::use_gap(fraction)) {
          std::uint64_t skip = sampling::next_gap(ctx.rng, fraction);
          parent->foreach(p, ctx, [&](const T& t) {
            if (skip == 0) {
              sink(t);
              skip = sampling::next_gap(ctx.rng, fraction);
            } else {
              --skip;
            }
          });
          return;
        }
        parent->foreach(p, ctx, [&](const T& t) {
          if (ctx.rng.bernoulli(fraction)) sink(t);
        });
      }
      [[nodiscard]] int num_partitions() const override { return parent->num_partitions(); }
    };
    return Rdd<T>(std::make_shared<const SampleImpl>(impl_, fraction));
  }

 private:
  std::shared_ptr<const Impl> impl_;
};

/// Source RDD over a partitioned dataset: the distributed `points` collection
/// of the paper's algorithms. The dataset is shared immutable state (our
/// stand-in for data resident on executors).
[[nodiscard]] inline Rdd<data::LabeledPoint> make_points_rdd(
    data::DatasetPtr dataset, std::vector<data::RowRange> partitions) {
  struct SourceImpl final : Rdd<data::LabeledPoint>::Impl {
    data::DatasetPtr dataset;
    std::vector<data::RowRange> parts;
    SourceImpl(data::DatasetPtr d, std::vector<data::RowRange> p)
        : dataset(std::move(d)), parts(std::move(p)) {}
    void foreach(PartitionId p, TaskContext&,
                 const Rdd<data::LabeledPoint>::Sink& sink) const override {
      const data::RowRange range = parts.at(static_cast<std::size_t>(p));
      for (std::size_t r = range.begin; r < range.end; ++r) sink(dataset->point(r));
    }
    [[nodiscard]] int num_partitions() const override {
      return static_cast<int>(parts.size());
    }
  };
  return Rdd<data::LabeledPoint>(
      std::make_shared<const SourceImpl>(std::move(dataset), std::move(partitions)));
}

/// Draws the Bernoulli mini-batch of one partition, appending the selected
/// *local* row offsets to `out` — exactly the draw sequence (and therefore
/// exactly the selections) of make_points_rdd(...).sample(fraction)
/// streaming that partition.  The fused batch gradient path samples through
/// this so its mini-batches are bit-identical to the per-row streaming
/// path's; in gap-sampling mode it additionally skips unselected rows in
/// O(1) instead of streaming them.
template <typename RowIdVector>
inline void sample_partition_rows(std::size_t range_size, double fraction,
                                  support::RngStream& rng, RowIdVector& out) {
  if (fraction >= 1.0) {
    for (std::size_t local = 0; local < range_size; ++local) {
      out.push_back(static_cast<std::uint32_t>(local));
    }
    return;
  }
  if (fraction <= 0.0) return;
  if (sampling::use_gap(fraction)) {
    std::uint64_t skip = sampling::next_gap(rng, fraction);
    std::size_t local = 0;
    while (local < range_size) {
      if (skip == 0) {
        out.push_back(static_cast<std::uint32_t>(local));
        ++local;
        skip = sampling::next_gap(rng, fraction);
      } else {
        const std::uint64_t step =
            std::min<std::uint64_t>(skip, range_size - local);
        local += static_cast<std::size_t>(step);
        skip -= step;
      }
    }
    return;
  }
  for (std::size_t local = 0; local < range_size; ++local) {
    if (rng.bernoulli(fraction)) out.push_back(static_cast<std::uint32_t>(local));
  }
}

/// Source RDD over an in-memory vector split into `parts` contiguous ranges
/// (handy in tests and micro-benchmarks).
template <typename T>
[[nodiscard]] Rdd<T> make_vector_rdd(std::vector<T> values, int parts) {
  struct VecImpl final : Rdd<T>::Impl {
    std::vector<T> values;
    std::vector<data::RowRange> ranges;
    VecImpl(std::vector<T> v, int p)
        : values(std::move(v)),
          ranges(data::contiguous_partitions(values.size(), static_cast<std::size_t>(p))) {}
    void foreach(PartitionId p, TaskContext&,
                 const typename Rdd<T>::Sink& sink) const override {
      const data::RowRange range = ranges.at(static_cast<std::size_t>(p));
      for (std::size_t i = range.begin; i < range.end; ++i) sink(values[i]);
    }
    [[nodiscard]] int num_partitions() const override {
      return static_cast<int>(ranges.size());
    }
  };
  return Rdd<T>(std::make_shared<const VecImpl>(std::move(values), parts));
}

}  // namespace asyncml::engine
