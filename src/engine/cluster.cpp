#include "engine/cluster.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace asyncml::engine {

namespace {
void validate(const Cluster::Config& config) {
  // Explicit validation rather than assert(): a zero-worker cluster built
  // from un-sanitized user input must fail loudly in Release builds too.
  if (config.num_workers <= 0) {
    throw std::invalid_argument("Cluster::Config: num_workers must be > 0 (got " +
                                std::to_string(config.num_workers) + ")");
  }
  if (config.cores_per_worker <= 0) {
    throw std::invalid_argument("Cluster::Config: cores_per_worker must be > 0 (got " +
                                std::to_string(config.cores_per_worker) + ")");
  }
}
}  // namespace

Cluster::Cluster(Config config)
    : config_((validate(config), std::move(config))),
      faults_(config_.faults.empty()
                  ? nullptr
                  : std::make_unique<FaultState>(config_.faults)),
      telemetry_(std::make_unique<telemetry::TelemetryRecorder>(
          static_cast<std::size_t>(config_.num_workers),
          static_cast<std::size_t>(config_.cores_per_worker))),
      metrics_(std::make_unique<ClusterMetrics>(config_.num_workers)),
      transport_(transport::make_transport(config_.transport, config_.num_workers,
                                           &config_.network, metrics_.get())),
      delay_owned_(config_.delay ? config_.delay : std::make_shared<const NoDelay>()) {
  // Bring the wire up before any worker exists: socket backends spawn and
  // handshake one endpoint process per worker here. Failure is loud — a
  // cluster without its wire is unusable.
  if (support::Status s = transport_->start(); !s.is_ok()) {
    throw std::runtime_error("Cluster: transport start failed: " + s.to_string());
  }
  workers_.reserve(static_cast<std::size_t>(config_.num_workers));
  for (WorkerId w = 0; w < config_.num_workers; ++w) {
    Worker::Deps deps;
    deps.store = &store_;
    deps.network = &config_.network;
    deps.delay = delay_owned_.get();
    deps.metrics = metrics_.get();
    deps.results = &results_;
    deps.faults = faults_.get();
    deps.telemetry = telemetry_.get();
    deps.channel = &transport_->channel(w);
    workers_.push_back(std::make_unique<Worker>(w, config_.cores_per_worker, deps));
  }
}

Cluster::~Cluster() { shutdown(); }

bool Cluster::submit(WorkerId worker, TaskSpec spec) {
  if (shut_down_.load(std::memory_order_acquire)) return false;
  assert(worker >= 0 && worker < config_.num_workers);
  // Injected dispatch failure: reported exactly like shutdown so callers run
  // their real abort/unwind path (the scheduler's on_dispatch_aborted).
  if (faults_ != nullptr && faults_->should_reject_submit(worker, spec)) {
    return false;
  }
  // Dispatch-plane round trip: the spec's wire header travels to the
  // worker's endpoint and the decoded echo overwrites it (socket backends);
  // the in-process channel is a no-op. A failed ship still delivers the spec
  // — the worker sees its dead wire and bounces it as kUnavailable, which is
  // how callers that raced the death learn about it.
  (void)transport_->channel(worker).ship_task(spec);
  // Queue-wait anchor: stamped only while telemetry is armed so the disabled
  // path never reads the clock here. After the wire round trip so transit
  // never counts as queue wait.
  if (telemetry_->enabled()) {
    spec.enqueued_at = support::Clock::now();
  }
  return workers_[static_cast<std::size_t>(worker)]->submit(std::move(spec));
}

std::vector<TaskResult> Cluster::collect_n(std::size_t n) {
  std::vector<TaskResult> out;
  out.reserve(n);
  while (out.size() < n) {
    auto result = results_.pop();
    if (!result.has_value()) break;  // queue closed during shutdown
    out.push_back(std::move(*result));
  }
  return out;
}

void Cluster::shutdown() {
  if (shut_down_.exchange(true)) return;
  // Workers first (their channels must stay valid while executor threads
  // drain), then the wire, then the result queue.
  for (auto& worker : workers_) worker->stop();
  transport_->stop();
  results_.close();
}

}  // namespace asyncml::engine
