#include "engine/cluster.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace asyncml::engine {

namespace {
void validate(const Cluster::Config& config) {
  // Explicit validation rather than assert(): a zero-worker cluster built
  // from un-sanitized user input must fail loudly in Release builds too.
  if (config.num_workers <= 0) {
    throw std::invalid_argument("Cluster::Config: num_workers must be > 0 (got " +
                                std::to_string(config.num_workers) + ")");
  }
  if (config.cores_per_worker <= 0) {
    throw std::invalid_argument("Cluster::Config: cores_per_worker must be > 0 (got " +
                                std::to_string(config.cores_per_worker) + ")");
  }
}
}  // namespace

Cluster::Cluster(Config config)
    : config_((validate(config), std::move(config))),
      faults_(config_.faults.empty()
                  ? nullptr
                  : std::make_unique<FaultState>(config_.faults)),
      telemetry_(std::make_unique<telemetry::TelemetryRecorder>(
          static_cast<std::size_t>(config_.num_workers),
          static_cast<std::size_t>(config_.cores_per_worker))),
      metrics_(std::make_unique<ClusterMetrics>(config_.num_workers)),
      delay_owned_(config_.delay ? config_.delay : std::make_shared<const NoDelay>()) {
  workers_.reserve(static_cast<std::size_t>(config_.num_workers));
  for (WorkerId w = 0; w < config_.num_workers; ++w) {
    Worker::Deps deps;
    deps.store = &store_;
    deps.network = &config_.network;
    deps.delay = delay_owned_.get();
    deps.metrics = metrics_.get();
    deps.results = &results_;
    deps.faults = faults_.get();
    deps.telemetry = telemetry_.get();
    workers_.push_back(std::make_unique<Worker>(w, config_.cores_per_worker, deps));
  }
}

Cluster::~Cluster() { shutdown(); }

bool Cluster::submit(WorkerId worker, TaskSpec spec) {
  if (shut_down_.load(std::memory_order_acquire)) return false;
  assert(worker >= 0 && worker < config_.num_workers);
  // Injected dispatch failure: reported exactly like shutdown so callers run
  // their real abort/unwind path (the scheduler's on_dispatch_aborted).
  if (faults_ != nullptr && faults_->should_reject_submit(worker, spec)) {
    return false;
  }
  // Queue-wait anchor: stamped only while telemetry is armed so the disabled
  // path never reads the clock here.
  if (telemetry_->enabled()) {
    spec.enqueued_at = support::Clock::now();
  }
  return workers_[static_cast<std::size_t>(worker)]->submit(std::move(spec));
}

std::vector<TaskResult> Cluster::collect_n(std::size_t n) {
  std::vector<TaskResult> out;
  out.reserve(n);
  while (out.size() < n) {
    auto result = results_.pop();
    if (!result.has_value()) break;  // queue closed during shutdown
    out.push_back(std::move(*result));
  }
  return out;
}

void Cluster::shutdown() {
  if (shut_down_.exchange(true)) return;
  for (auto& worker : workers_) worker->stop();
  results_.close();
}

}  // namespace asyncml::engine
