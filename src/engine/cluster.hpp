#pragma once

// The cluster: driver-side facade owning workers, the broadcast store, the
// result channel, and instrumentation.
//
// The Cluster is deliberately mode-agnostic: it only ships tasks and exposes
// the result queue.  Synchronous (BSP) stage execution and the asynchronous
// ASYNC path are both built on top — the former via collect_n(), the latter
// via the coordinator in src/core which continuously drains results().

#include <atomic>
#include <memory>
#include <vector>

#include "engine/broadcast.hpp"
#include "engine/delay_model.hpp"
#include "engine/fault.hpp"
#include "engine/metrics.hpp"
#include "engine/network.hpp"
#include "engine/task.hpp"
#include "engine/worker.hpp"
#include "support/blocking_queue.hpp"
#include "telemetry/recorder.hpp"
#include "transport/transport.hpp"

namespace asyncml::engine {

class Cluster {
 public:
  struct Config {
    int num_workers = 4;
    /// Executor threads per worker; the paper's setup runs 2-core executors.
    int cores_per_worker = 2;
    NetworkModel network;
    /// Straggler behaviour; null means no delay.
    std::shared_ptr<const DelayModel> delay;
    /// Declarative failure schedule (crashes, drops, delays, joins); an empty
    /// plan costs nothing at runtime. See engine/fault.hpp.
    FaultPlan faults;
    /// Which wire the cluster runs on (docs/TRANSPORT.md). The default
    /// in-process backend reproduces the pre-seam engine bit for bit; the
    /// Unix-socket and TCP backends spawn one wire-endpoint process per
    /// worker and move every frame for real.
    transport::TransportConfig transport;
  };

  explicit Cluster(Config config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] int num_workers() const noexcept { return config_.num_workers; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Registers a broadcast value of modeled size `bytes` and returns a typed
  /// handle that task closures may capture.
  template <typename T>
  [[nodiscard]] Broadcast<T> broadcast(T value, std::size_t bytes) {
    const BroadcastId id = store_.put(Payload::wrap<T>(std::move(value), bytes));
    return Broadcast<T>(id, &store_);
  }

  [[nodiscard]] BroadcastStore& store() noexcept { return store_; }
  [[nodiscard]] ClusterMetrics& metrics() noexcept { return *metrics_; }
  [[nodiscard]] const NetworkModel& network() const noexcept { return config_.network; }

  /// Fresh unique task id.
  [[nodiscard]] TaskId next_task_id() noexcept { return next_task_id_.fetch_add(1); }

  /// Ships a task to a worker's mailbox. Returns false if shut down or if a
  /// kRejectSubmit fault fires for this (worker, task) — indistinguishable to
  /// callers, which is the point: the dispatch-abort unwind path is the same.
  bool submit(WorkerId worker, TaskSpec spec);

  /// False once a kCrashWorker fault has felled `worker` (fail-stop).
  [[nodiscard]] bool worker_alive(WorkerId worker) const {
    return workers_.at(static_cast<std::size_t>(worker))->alive();
  }

  /// The compiled fault plan, or nullptr when the plan is empty.
  [[nodiscard]] FaultState* faults() noexcept { return faults_.get(); }

  /// The transport backing this cluster (chaos tests use kill_worker to
  /// SIGKILL a socket worker's wire process for real).
  [[nodiscard]] transport::Transport& transport() noexcept { return *transport_; }

  /// The cluster-wide span recorder. Always constructed (workers hold a
  /// stable pointer) but inert until a solver arms it from
  /// SolverConfig::telemetry; disabled it costs one relaxed load per task.
  [[nodiscard]] telemetry::TelemetryRecorder& telemetry() noexcept {
    return *telemetry_;
  }

  /// Result channel: every completed task lands here exactly once.
  [[nodiscard]] support::BlockingQueue<TaskResult>& results() noexcept { return results_; }

  /// Convenience for BSP-style callers and tests: pops exactly `n` results
  /// (blocking). Only valid when no other thread is draining results().
  [[nodiscard]] std::vector<TaskResult> collect_n(std::size_t n);

  /// Direct access to a worker (cache inspection in tests).
  [[nodiscard]] Worker& worker(WorkerId id) { return *workers_.at(static_cast<std::size_t>(id)); }

  /// Stops all workers and closes the result channel. Idempotent; the
  /// destructor calls it.
  void shutdown();

 private:
  Config config_;
  std::unique_ptr<FaultState> faults_;
  std::unique_ptr<telemetry::TelemetryRecorder> telemetry_;
  BroadcastStore store_;
  std::unique_ptr<ClusterMetrics> metrics_;
  /// Constructed after metrics_ (channels count into it) and destroyed after
  /// workers_ (their channels point into it).
  std::unique_ptr<transport::Transport> transport_;
  support::BlockingQueue<TaskResult> results_;
  std::shared_ptr<const DelayModel> delay_owned_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<TaskId> next_task_id_{1};
  std::atomic<bool> shut_down_{false};
};

}  // namespace asyncml::engine
