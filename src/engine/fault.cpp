#include "engine/fault.hpp"

#include "engine/task.hpp"

namespace asyncml::engine {

namespace {

bool key_matches(const FaultKey& key, WorkerId worker, const TaskSpec& spec) {
  if (key.worker.has_value() && *key.worker != worker) return false;
  if (key.partition.has_value() && *key.partition != spec.partition) return false;
  if (key.seq.has_value() && *key.seq != spec.seq) return false;
  return true;
}

bool in_window(const FaultEvent& event, std::uint64_t match_index) {
  if (match_index <= event.after) return false;
  return event.times == 0 || match_index <= event.after + event.times;
}

}  // namespace

FaultPlan& FaultPlan::fail_task(FaultKey key, std::uint64_t times, std::uint64_t after) {
  return add({.kind = FaultKind::kFailTask, .key = key, .after = after, .times = times});
}

FaultPlan& FaultPlan::reject_submit(FaultKey key, std::uint64_t times,
                                    std::uint64_t after) {
  return add(
      {.kind = FaultKind::kRejectSubmit, .key = key, .after = after, .times = times});
}

FaultPlan& FaultPlan::crash_worker(WorkerId worker, std::uint64_t at_task) {
  // Fail-stop is permanent: from the at_task-th dequeue onwards (the worker
  // flips dead at the first firing anyway).
  FaultKey key;
  key.worker = worker;
  return add({.kind = FaultKind::kCrashWorker,
              .key = key,
              .after = at_task > 0 ? at_task - 1 : 0,
              .times = 0});
}

FaultPlan& FaultPlan::drop_result(FaultKey key, std::uint64_t times,
                                  std::uint64_t after) {
  return add(
      {.kind = FaultKind::kDropResult, .key = key, .after = after, .times = times});
}

FaultPlan& FaultPlan::duplicate_result(FaultKey key, std::uint64_t times,
                                       std::uint64_t after) {
  return add(
      {.kind = FaultKind::kDuplicateResult, .key = key, .after = after, .times = times});
}

FaultPlan& FaultPlan::delay(FaultStage stage, double delay_ms, FaultKey key,
                            std::uint64_t times, std::uint64_t after) {
  return add({.kind = FaultKind::kDelay,
              .key = key,
              .after = after,
              .times = times,
              .stage = stage,
              .delay_ms = delay_ms});
}

FaultPlan& FaultPlan::join_worker(WorkerId worker, Version at_version) {
  FaultKey key;
  key.worker = worker;
  return add({.kind = FaultKind::kJoinWorker, .key = key, .join_version = at_version});
}

FaultPlan& FaultPlan::fail_write(std::uint64_t times, std::uint64_t after) {
  return add({.kind = FaultKind::kDiskFailWrite, .key = {}, .after = after, .times = times});
}

FaultPlan& FaultPlan::torn_write(std::uint64_t times, std::uint64_t after) {
  return add({.kind = FaultKind::kDiskTornWrite, .key = {}, .after = after, .times = times});
}

FaultPlan& FaultPlan::corrupt_blob(std::uint64_t times, std::uint64_t after) {
  return add({.kind = FaultKind::kDiskCorruptBlob, .key = {}, .after = after, .times = times});
}

FaultPlan& FaultPlan::fail_read(std::uint64_t times, std::uint64_t after) {
  return add({.kind = FaultKind::kDiskFailRead, .key = {}, .after = after, .times = times});
}

FaultPlan& FaultPlan::add(FaultEvent event) {
  events_.push_back(event);
  return *this;
}

FaultState::FaultState(FaultPlan plan)
    : plan_(std::move(plan)), matches_(plan_.events().size(), 0) {}

bool FaultState::fire(FaultKind kind, WorkerId worker, const TaskSpec& spec) {
  bool fired = false;
  std::lock_guard lock(mutex_);
  const auto& events = plan_.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    if (event.kind != kind) continue;
    if (!key_matches(event.key, worker, spec)) continue;
    matches_[i] += 1;
    fired = fired || in_window(event, matches_[i]);
  }
  return fired;
}

void FaultState::stats_lock_add(std::uint64_t FaultStats::* field) {
  std::lock_guard lock(mutex_);
  stats_.*field += 1;
}

bool FaultState::should_fail_task(WorkerId worker, const TaskSpec& spec) {
  const bool fired = fire(FaultKind::kFailTask, worker, spec);
  if (fired) stats_lock_add(&FaultStats::tasks_failed);
  return fired;
}

bool FaultState::should_reject_submit(WorkerId worker, const TaskSpec& spec) {
  const bool fired = fire(FaultKind::kRejectSubmit, worker, spec);
  if (fired) stats_lock_add(&FaultStats::submits_rejected);
  return fired;
}

bool FaultState::should_crash(WorkerId worker, const TaskSpec& spec) {
  return fire(FaultKind::kCrashWorker, worker, spec);
}

bool FaultState::should_drop_result(WorkerId worker, const TaskSpec& spec) {
  const bool fired = fire(FaultKind::kDropResult, worker, spec);
  if (fired) stats_lock_add(&FaultStats::results_dropped);
  return fired;
}

bool FaultState::should_duplicate_result(WorkerId worker, const TaskSpec& spec) {
  const bool fired = fire(FaultKind::kDuplicateResult, worker, spec);
  if (fired) stats_lock_add(&FaultStats::results_duplicated);
  return fired;
}

double FaultState::stage_delay_ms(FaultStage stage, WorkerId worker,
                                  const TaskSpec& spec) {
  double total = 0.0;
  bool fired = false;
  {
    std::lock_guard lock(mutex_);
    const auto& events = plan_.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      const FaultEvent& event = events[i];
      if (event.kind != FaultKind::kDelay || event.stage != stage) continue;
      if (!key_matches(event.key, worker, spec)) continue;
      matches_[i] += 1;
      if (in_window(event, matches_[i])) {
        total += event.delay_ms;
        fired = true;
      }
    }
    if (fired) stats_.delays_injected += 1;
  }
  return total;
}

DiskWriteFault FaultState::next_disk_write_fault() {
  // One blob write advances the occurrence counter of EVERY disk-write event
  // (the seams are keyless: the window counts write operations). Priority
  // when several fire on the same write: fail > torn > corrupt.
  bool fail = false;
  bool torn = false;
  bool corrupt = false;
  {
    std::lock_guard lock(mutex_);
    const auto& events = plan_.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      const FaultEvent& event = events[i];
      if (event.kind != FaultKind::kDiskFailWrite &&
          event.kind != FaultKind::kDiskTornWrite &&
          event.kind != FaultKind::kDiskCorruptBlob) {
        continue;
      }
      matches_[i] += 1;
      if (!in_window(event, matches_[i])) continue;
      if (event.kind == FaultKind::kDiskFailWrite) fail = true;
      if (event.kind == FaultKind::kDiskTornWrite) torn = true;
      if (event.kind == FaultKind::kDiskCorruptBlob) corrupt = true;
    }
    if (fail) {
      stats_.disk_writes_failed += 1;
    } else if (torn) {
      stats_.disk_writes_torn += 1;
    } else if (corrupt) {
      stats_.blobs_corrupted += 1;
    }
  }
  if (fail) return DiskWriteFault::kFail;
  if (torn) return DiskWriteFault::kTorn;
  if (corrupt) return DiskWriteFault::kCorrupt;
  return DiskWriteFault::kNone;
}

bool FaultState::should_fail_disk_read() {
  std::lock_guard lock(mutex_);
  bool fired = false;
  const auto& events = plan_.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    if (event.kind != FaultKind::kDiskFailRead) continue;
    matches_[i] += 1;
    fired = fired || in_window(event, matches_[i]);
  }
  if (fired) stats_.disk_reads_failed += 1;
  return fired;
}

bool FaultState::starts_dormant(WorkerId worker) const {
  return join_version(worker).has_value();
}

std::optional<Version> FaultState::join_version(WorkerId worker) const {
  std::optional<Version> earliest;
  for (const FaultEvent& event : plan_.events()) {
    if (event.kind != FaultKind::kJoinWorker) continue;
    if (!event.key.worker.has_value() || *event.key.worker != worker) continue;
    if (!earliest.has_value() || event.join_version < *earliest) {
      earliest = event.join_version;
    }
  }
  return earliest;
}

FaultStats FaultState::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace asyncml::engine
