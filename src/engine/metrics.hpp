#pragma once

// Engine-level instrumentation.
//
// Wait time — the paper's Figures 4/6 and Table 3 metric — is defined as the
// interval from a worker submitting a task result until it receives its next
// task.  Each executor thread records it at task-receive time into a
// per-worker histogram.  Byte counters track the modeled wire traffic of
// broadcasts, fetches, and results.

#include <array>
#include <cassert>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/types.hpp"
#include "support/histogram.hpp"
#include "support/padded.hpp"

namespace asyncml::engine {

/// Traffic class of a fetched broadcast payload. The delta-versioned model
/// store publishes two kinds of driver→worker payloads — full base snapshots
/// and sparse model deltas — and the byte accounting keeps them apart so the
/// benches can report how much of the broadcast traffic the deltas saved.
enum class BroadcastClass { kSnapshot, kDelta };

/// Logical wire channel a transport frame travels on. Every backend counts
/// into the same per-channel table: the in-process backend records the
/// *charged* (modeled) bytes, the socket backends record *measured* frame
/// bytes — one ClusterMetrics path for both, so fig3 can print charged vs
/// measured side by side and flag divergence beyond framing overhead.
enum class WireChannel : std::uint8_t {
  kTask = 0,     ///< dispatch-plane task headers
  kResult = 1,   ///< worker→driver task results
  kModel = 2,    ///< broadcast/base/delta fetches
  kControl = 3,  ///< hello/shutdown/error traffic
};

inline constexpr std::size_t kNumWireChannels = 4;

/// Counters of the content-addressed disk tier under the model store
/// (store/disk/, docs/DURABILITY.md). A DiskTier owned by a cluster-attached
/// store counts into ClusterMetrics::disk; standalone tiers (checkpoint
/// loaders, unit tests) count into a private instance.
struct DiskTierMetrics {
  support::RelaxedCounter blob_writes;       ///< blobs published (post-dedup)
  support::RelaxedCounter blob_write_bytes;  ///< payload bytes written
  support::RelaxedCounter blob_reads;        ///< blob file reads (LRU misses)
  support::RelaxedCounter blob_read_bytes;   ///< payload bytes read from disk
  support::RelaxedCounter blob_dedup_hits;   ///< writes satisfied by an existing object
  support::RelaxedCounter lru_hits;          ///< reads served from the LRU layer
  support::RelaxedCounter quarantines;       ///< corrupt/truncated blobs quarantined
  support::RelaxedCounter recovery_walks;    ///< chain walks restarted around a bad blob
  support::RelaxedCounter bases_republished; ///< fallback bases re-published over lost chains
  support::RelaxedCounter write_retries;     ///< transient write-error retries
  support::RelaxedCounter read_retries;      ///< transient read-error retries
  support::RelaxedCounter manifest_appends;  ///< manifest records appended
  support::RelaxedCounter faulted_in;        ///< payloads rehydrated from disk into memory
  support::RelaxedCounter write_ns;          ///< wall time inside blob writes
  support::RelaxedCounter read_ns;           ///< wall time inside blob reads

  void reset() {
    blob_writes.reset();
    blob_write_bytes.reset();
    blob_reads.reset();
    blob_read_bytes.reset();
    blob_dedup_hits.reset();
    lru_hits.reset();
    quarantines.reset();
    recovery_walks.reset();
    bases_republished.reset();
    write_retries.reset();
    read_retries.reset();
    manifest_appends.reset();
    faulted_in.reset();
    write_ns.reset();
    read_ns.reset();
  }
};

class ClusterMetrics {
 public:
  explicit ClusterMetrics(int num_workers)
      : wait_hists_(num_workers), wait_mutexes_(num_workers) {}

  void record_wait(WorkerId worker, double wait_ns) {
    std::lock_guard lock(wait_mutexes_[worker].value);
    wait_hists_[worker].record(wait_ns);
  }

  /// Copy of one worker's wait histogram.
  [[nodiscard]] support::Histogram wait_histogram(WorkerId worker) const {
    std::lock_guard lock(wait_mutexes_[worker].value);
    return wait_hists_[worker];
  }

  /// All workers merged.
  [[nodiscard]] support::Histogram total_wait_histogram() const {
    support::Histogram total;
    for (std::size_t w = 0; w < wait_hists_.size(); ++w) {
      std::lock_guard lock(wait_mutexes_[w].value);
      total.merge(wait_hists_[w]);
    }
    return total;
  }

  /// Mean wait in milliseconds across all workers' recorded waits.
  [[nodiscard]] double mean_wait_ms() const { return total_wait_histogram().mean_ns() / 1e6; }

  void reset_waits() {
    for (std::size_t w = 0; w < wait_hists_.size(); ++w) {
      std::lock_guard lock(wait_mutexes_[w].value);
      wait_hists_[w].reset();
    }
  }

  [[nodiscard]] int num_workers() const { return static_cast<int>(wait_hists_.size()); }

  /// Counts one broadcast fetch of `bytes` in traffic class `cls` (the total
  /// and the per-class counter move together by construction).
  void count_broadcast_fetch(BroadcastClass cls, std::size_t bytes) {
    broadcast_fetches.add(1);
    broadcast_bytes.add(bytes);
    (cls == BroadcastClass::kDelta ? broadcast_delta_bytes : broadcast_base_bytes)
        .add(bytes);
  }

  /// Per-shard broadcast accounting of the sharded model plane.  Byte totals
  /// are split by the shard whose delta chain served the fetch, so the fig3
  /// bench can show sparse runs touching only their support-hit shards.
  struct ShardCounters {
    support::RelaxedCounter base_bytes;   ///< full-snapshot bytes fetched
    support::RelaxedCounter delta_bytes;  ///< sparse-delta bytes fetched
    support::RelaxedCounter fetches;      ///< driver-hitting fetches
  };

  /// Sizes the per-shard counter table.  Driver-side, before any dispatch —
  /// the table is not resized concurrently with counting.
  void set_num_shards(std::uint32_t num_shards) {
    shard_counters_.clear();
    shard_counters_.reserve(num_shards);
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      shard_counters_.push_back(std::make_unique<ShardCounters>());
    }
  }

  [[nodiscard]] std::uint32_t num_shards() const {
    return static_cast<std::uint32_t>(shard_counters_.size());
  }

  /// Attributes one shard-tagged fetch; no-op when the table was never sized
  /// (unsharded runs) or the store carries no shard tag (`shard < 0`).
  void count_shard_fetch(std::int32_t shard, BroadcastClass cls, std::size_t bytes) {
    if (shard < 0 || static_cast<std::size_t>(shard) >= shard_counters_.size()) {
      return;
    }
    ShardCounters& c = *shard_counters_[static_cast<std::size_t>(shard)];
    c.fetches.add(1);
    (cls == BroadcastClass::kDelta ? c.delta_bytes : c.base_bytes).add(bytes);
  }

  [[nodiscard]] const ShardCounters& shard(std::uint32_t s) const {
    assert(s < shard_counters_.size());
    return *shard_counters_[s];
  }

  /// Zeroes the per-shard byte table (run boundaries — the table keeps its
  /// size; only the counts reset).
  void reset_shard_counters() {
    for (auto& c : shard_counters_) {
      c->base_bytes.reset();
      c->delta_bytes.reset();
      c->fetches.reset();
    }
  }

  // Real CPU time spent inside task functions (nanoseconds), before
  // service-floor padding: the engine's actual compute cost, which the
  // padding otherwise hides. The fused-kernel work shows up here.
  support::RelaxedCounter task_compute_ns;

  // Wire-traffic counters (modeled bytes).
  support::RelaxedCounter broadcast_bytes;   ///< broadcast values fetched by workers
  support::RelaxedCounter broadcast_base_bytes;   ///< full-snapshot share of broadcast_bytes
  support::RelaxedCounter broadcast_delta_bytes;  ///< sparse-delta share of broadcast_bytes
  support::RelaxedCounter result_bytes;      ///< task result payloads
  support::RelaxedCounter task_messages;     ///< tasks shipped
  support::RelaxedCounter broadcast_fetches; ///< cache misses that hit the driver
  support::RelaxedCounter broadcast_hits;    ///< cache hits (no wire traffic)
  support::RelaxedCounter tasks_completed;
  support::RelaxedCounter tasks_failed;

  // Dynamic-placement counters (work stealing + speculative replication).
  support::RelaxedCounter migration_bytes;    ///< partition data moved by steals/replicas
  support::RelaxedCounter partitions_stolen;  ///< ownership transfers
  support::RelaxedCounter tasks_speculated;   ///< speculative replicas dispatched
  support::RelaxedCounter duplicate_results;  ///< replica results dropped (first-wins)

  // Durable disk tier under the model store (store/disk/).
  DiskTierMetrics disk;

  // Sharded-model-plane read accounting (store/sharded_store.hpp).
  support::RelaxedCounter shard_reads;          ///< model materializations
  support::RelaxedCounter shard_reads_partial;  ///< masked reads touching < S shards
  support::RelaxedCounter shard_touches;        ///< shard fills summed over reads

  /// Per-channel wire accounting. `bytes_sent` is the data-bearing request
  /// frame of a round trip, `bytes_received` its ack — modeled payload bytes
  /// on the in-process backend, actual frame bytes (header + msgpack + lz4)
  /// on the socket backends.
  struct WireCounters {
    support::RelaxedCounter frames;
    support::RelaxedCounter bytes_sent;
    support::RelaxedCounter bytes_received;
  };

  /// Counts one round trip on channel `ch`.
  void count_wire(WireChannel ch, std::size_t sent, std::size_t received) {
    WireCounters& c = wire_[static_cast<std::size_t>(ch)];
    c.frames.add(1);
    c.bytes_sent.add(sent);
    c.bytes_received.add(received);
  }

  [[nodiscard]] const WireCounters& wire(WireChannel ch) const {
    return wire_[static_cast<std::size_t>(ch)];
  }

  /// Zeroes the wire table (run boundaries, like reset_shard_counters).
  void reset_wire_counters() {
    for (WireCounters& c : wire_) {
      c.frames.reset();
      c.bytes_sent.reset();
      c.bytes_received.reset();
    }
  }

 private:
  std::array<WireCounters, kNumWireChannels> wire_{};
  std::vector<support::Histogram> wait_hists_;
  mutable std::vector<support::Padded<std::mutex>> wait_mutexes_;
  std::vector<std::unique_ptr<ShardCounters>> shard_counters_;
};

}  // namespace asyncml::engine
