#pragma once

// Deterministic fault injection: declarative, replayable failure schedules.
//
// The engine's failure behaviour is configuration, not test-local lambdas
// (the style of open-cradle's test-params context mixin): a FaultPlan is a
// list of events, each keyed on (worker, partition, seq) — any key may be
// wildcarded — plus an occurrence window (`after` matches skipped, `times`
// matches fired).  The compiled FaultState is consulted by the Worker at
// fixed points of the task lifecycle and by Cluster::submit, so the same
// plan against the same task stream replays the identical failure schedule;
// chaos tests generate plans from a seeded RNG and the plan — not the wall
// clock — decides what fails.
//
// Event kinds and where they fire:
//
//   kFailTask         worker, before the task function runs: the task
//                     becomes a non-OK TaskResult (the retry path covers it).
//                     Firing *before* the function keeps stateful closures
//                     (SAGA's version table) un-half-applied.
//   kRejectSubmit     Cluster::submit returns false as if the cluster had
//                     shut down — the exact window of the scheduler's
//                     on_dispatch_aborted unwind.
//   kCrashWorker      fail-stop: the worker dies at the matching dequeue.
//                     Nothing leaves the machine afterwards; every task it
//                     held (the one in hand, its mailbox, in-progress sibling
//                     tasks) surfaces as a synthesized kUnavailable failure —
//                     the simulated transport detecting the dead executor,
//                     which routes the loss through the coordinator's normal
//                     retry/dedup machinery (a live replica wins; otherwise
//                     the task is resubmitted to a live worker).
//   kDropResult       the task runs, the result never leaves the worker
//                     (permanent non-delivery; only speculative replication
//                     can recover it — see SchedulerPolicy::lost_task_factor).
//   kDuplicateResult  at-least-once delivery: the result is pushed twice
//                     (the coordinator's delivered-identity dedup drops the
//                     second copy).
//   kDelay            extra milliseconds at one pipeline stage: queue (before
//                     execution), compute (inside the measured task time),
//                     serialize (after compute, before the network charge),
//                     network (with the result transfer; alias
//                     kResultChannel, matching the telemetry segment the
//                     delay is attributed to — docs/TELEMETRY.md).
//   kJoinWorker       elastic membership: the worker starts OUTSIDE the
//                     member set (no partitions, no dispatch) and joins when
//                     the coordinator's model version reaches
//                     `join_version` (AsyncContext admits it and the
//                     scheduler rebalances partitions onto it; its first task
//                     cold-anchors on the nearest store snapshot and rides
//                     the delta chain — PR 3's catch-up path).
//
// Determinism: an event with all three keys set replays exactly. An event
// counted with wildcards (`crash worker 2 at its 5th task`) is deterministic
// when the worker runs one executor core (dequeue order is a single stream);
// chaos tests therefore run 1-core workers.  docs/FAULTS.md is the handbook.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "engine/types.hpp"

namespace asyncml::engine {

struct TaskSpec;

enum class FaultKind : std::uint8_t {
  kFailTask,
  kRejectSubmit,
  kCrashWorker,
  kDropResult,
  kDuplicateResult,
  kDelay,
  kJoinWorker,
  // Disk seams, evaluated inside the blob store (store/disk/blob_store.cpp).
  // They carry no task identity: FaultKey is ignored and the occurrence
  // window counts blob operations, in the deterministic driver-side order
  // writes happen (docs/DURABILITY.md).
  kDiskFailWrite,    ///< blob write returns kUnavailable (transient; retried)
  kDiskTornWrite,    ///< blob published truncated mid-payload (crash image)
  kDiskCorruptBlob,  ///< one payload bit flipped before the write
  kDiskFailRead,     ///< blob read returns kUnavailable (transient; retried)
};

/// Pipeline stage a kDelay event stretches. kResultChannel aliases kNetwork:
/// the injected stall rides the result transfer, which telemetry attributes
/// to its result_channel segment (the attribution tests pin this).
enum class FaultStage : std::uint8_t {
  kQueue,
  kCompute,
  kSerialize,
  kNetwork,
  kResultChannel = kNetwork,
};

/// Match keys of an event; an unset field matches anything.
struct FaultKey {
  std::optional<WorkerId> worker = std::nullopt;
  std::optional<PartitionId> partition = std::nullopt;
  std::optional<std::uint64_t> seq = std::nullopt;
};

struct FaultEvent {
  FaultKind kind = FaultKind::kFailTask;
  FaultKey key;
  /// Occurrence window over this event's *matching* tasks: the first `after`
  /// matches pass unharmed, the next `times` fire (0 = every match onwards).
  std::uint64_t after = 0;
  std::uint64_t times = 1;
  FaultStage stage = FaultStage::kCompute;  ///< kDelay only
  double delay_ms = 0.0;                    ///< kDelay only
  Version join_version = 0;                 ///< kJoinWorker only
};

/// Declarative failure schedule; value type, buildable fluently:
///   FaultPlan plan;
///   plan.fail_task({}, /*times=*/5)                  // first 5 tasks fail
///       .crash_worker(2, /*at_task=*/7)              // w2 dies at its 7th task
///       .delay(FaultStage::kNetwork, 5.0, {.worker = 1})
///       .join_worker(3, /*at_version=*/40);
class FaultPlan {
 public:
  FaultPlan& fail_task(FaultKey key = {}, std::uint64_t times = 1,
                       std::uint64_t after = 0);
  FaultPlan& reject_submit(FaultKey key = {}, std::uint64_t times = 1,
                           std::uint64_t after = 0);
  FaultPlan& crash_worker(WorkerId worker, std::uint64_t at_task = 1);
  FaultPlan& drop_result(FaultKey key = {}, std::uint64_t times = 1,
                         std::uint64_t after = 0);
  FaultPlan& duplicate_result(FaultKey key = {}, std::uint64_t times = 1,
                              std::uint64_t after = 0);
  FaultPlan& delay(FaultStage stage, double delay_ms, FaultKey key = {},
                   std::uint64_t times = 0, std::uint64_t after = 0);
  FaultPlan& join_worker(WorkerId worker, Version at_version);
  // Disk seams (occurrence windows count blob writes/reads, not tasks).
  FaultPlan& fail_write(std::uint64_t times = 1, std::uint64_t after = 0);
  FaultPlan& torn_write(std::uint64_t times = 1, std::uint64_t after = 0);
  FaultPlan& corrupt_blob(std::uint64_t times = 1, std::uint64_t after = 0);
  FaultPlan& fail_read(std::uint64_t times = 1, std::uint64_t after = 0);
  FaultPlan& add(FaultEvent event);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
};

/// Injection counters (what actually fired), for assertions and reports.
struct FaultStats {
  std::uint64_t tasks_failed = 0;
  std::uint64_t submits_rejected = 0;
  std::uint64_t workers_crashed = 0;
  std::uint64_t results_dropped = 0;
  std::uint64_t results_duplicated = 0;
  std::uint64_t delays_injected = 0;
  std::uint64_t disk_writes_failed = 0;  ///< kDiskFailWrite firings
  std::uint64_t disk_writes_torn = 0;    ///< kDiskTornWrite firings
  std::uint64_t blobs_corrupted = 0;     ///< kDiskCorruptBlob firings
  std::uint64_t disk_reads_failed = 0;   ///< kDiskFailRead firings
};

/// What the blob store should do to the write it is about to perform.
/// Priority when several events fire on the same write: fail > torn >
/// corrupt (a failed write never reaches the disk to be torn).
enum class DiskWriteFault : std::uint8_t { kNone, kFail, kTorn, kCorrupt };

/// Runtime of a FaultPlan: thread-safe matching with per-event occurrence
/// counters. One instance is shared by the Cluster and all its Workers; the
/// coordinator/scheduler layers never see it (death is observed through
/// Cluster::worker_alive, joins through pending_join/joined).
class FaultState {
 public:
  explicit FaultState(FaultPlan plan);

  FaultState(const FaultState&) = delete;
  FaultState& operator=(const FaultState&) = delete;

  // -- lifecycle queries (each advances the matched events' counters) --------

  [[nodiscard]] bool should_fail_task(WorkerId worker, const TaskSpec& spec);
  [[nodiscard]] bool should_reject_submit(WorkerId worker, const TaskSpec& spec);
  [[nodiscard]] bool should_crash(WorkerId worker, const TaskSpec& spec);
  [[nodiscard]] bool should_drop_result(WorkerId worker, const TaskSpec& spec);
  [[nodiscard]] bool should_duplicate_result(WorkerId worker, const TaskSpec& spec);
  /// Total extra milliseconds injected at `stage` for this task.
  [[nodiscard]] double stage_delay_ms(FaultStage stage, WorkerId worker,
                                      const TaskSpec& spec);

  // -- disk seams (store/disk/blob_store.cpp) --------------------------------

  /// Consulted once per blob write attempt; advances the matching disk-write
  /// events' occurrence counters and returns the highest-priority firing
  /// fault (kNone when no event fires).
  [[nodiscard]] DiskWriteFault next_disk_write_fault();
  /// Consulted once per blob read attempt (kDiskFailRead).
  [[nodiscard]] bool should_fail_disk_read();

  // -- elastic membership ----------------------------------------------------

  /// True if the plan holds a join event for `worker` (it starts dormant).
  [[nodiscard]] bool starts_dormant(WorkerId worker) const;
  /// The version at which a dormant `worker` becomes a member (nullopt when
  /// the plan has no join event for it).
  [[nodiscard]] std::optional<Version> join_version(WorkerId worker) const;

  // -- bookkeeping -----------------------------------------------------------

  void count_crash() { stats_lock_add(&FaultStats::workers_crashed); }

  [[nodiscard]] FaultStats stats() const;
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  /// Matches `spec` against every event of `kind`, advancing match counters;
  /// returns true if any matched event is inside its firing window.
  [[nodiscard]] bool fire(FaultKind kind, WorkerId worker, const TaskSpec& spec);
  void stats_lock_add(std::uint64_t FaultStats::* field);

  FaultPlan plan_;
  mutable std::mutex mutex_;
  std::vector<std::uint64_t> matches_;  ///< per-event match counts
  FaultStats stats_;
};

}  // namespace asyncml::engine
