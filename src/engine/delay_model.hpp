#pragma once

// Straggler interface: how much slower is worker `w` on task sequence `seq`?
//
// The engine multiplies a task's base service time by this factor, emulating
// slow machines.  Implementations (controlled delay, production-cluster
// patterns) live in src/straggler; the engine only sees this interface so the
// dependency points the right way.

#include <cstdint>

#include "engine/types.hpp"

namespace asyncml::engine {

class DelayModel {
 public:
  virtual ~DelayModel() = default;

  /// Service-time multiplier, >= 1.0. `seq` identifies the dispatch round so
  /// models may vary delay over time; stationary models ignore it.
  [[nodiscard]] virtual double multiplier(WorkerId worker, std::uint64_t seq) const = 0;

  /// Human-readable description for experiment logs.
  [[nodiscard]] virtual const char* name() const = 0;
};

/// The no-straggler baseline.
class NoDelay final : public DelayModel {
 public:
  [[nodiscard]] double multiplier(WorkerId, std::uint64_t) const override { return 1.0; }
  [[nodiscard]] const char* name() const override { return "none"; }
};

}  // namespace asyncml::engine
