#pragma once

// Executor worker: dedicated threads draining a private mailbox.
//
// A Worker models one executor node: `cores` executor threads (the paper runs
// 2-core executors) share a mailbox of TaskSpecs.  For each task the thread
//   1. records wait time (time since it submitted its previous result),
//   2. runs the task function with a deterministic per-task RNG,
//   3. pads execution to the straggler-scaled service floor,
//   4. charges the result transfer to the network model and pushes the
//      TaskResult to the driver's result queue.
// Errors (injected faults, exceptions) become non-OK TaskResults; nothing
// unwinds across the thread boundary.

#include <functional>
#include <thread>
#include <vector>

#include "engine/broadcast.hpp"
#include "engine/delay_model.hpp"
#include "engine/metrics.hpp"
#include "engine/network.hpp"
#include "engine/task.hpp"
#include "support/blocking_queue.hpp"

namespace asyncml::engine {

/// Test hook: return true to make the task fail without running it.
using FaultInjector = std::function<bool(WorkerId, const TaskSpec&)>;

class Worker {
 public:
  struct Deps {
    const BroadcastStore* store = nullptr;
    const NetworkModel* network = nullptr;
    const DelayModel* delay = nullptr;
    ClusterMetrics* metrics = nullptr;
    support::BlockingQueue<TaskResult>* results = nullptr;
    FaultInjector fault_injector;  // optional
  };

  Worker(WorkerId id, int cores, Deps deps);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Enqueues a task; returns false after stop().
  bool submit(TaskSpec spec);

  /// Closes the mailbox and joins executor threads. Idempotent.
  void stop();

  [[nodiscard]] WorkerId id() const noexcept { return id_; }
  [[nodiscard]] int cores() const noexcept { return static_cast<int>(threads_.size()); }
  [[nodiscard]] std::size_t mailbox_depth() const { return mailbox_.size(); }

  /// The worker's broadcast cache (exposed for cache-behaviour tests).
  [[nodiscard]] BroadcastCache& cache() { return cache_; }

 private:
  void executor_loop();

  WorkerId id_;
  Deps deps_;
  BroadcastCache cache_;
  support::BlockingQueue<TaskSpec> mailbox_;
  std::vector<std::jthread> threads_;
};

}  // namespace asyncml::engine
