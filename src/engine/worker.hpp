#pragma once

// Executor worker: dedicated threads draining a private mailbox.
//
// A Worker models one executor node: `cores` executor threads (the paper runs
// 2-core executors) share a mailbox of TaskSpecs.  For each task the thread
//   1. records wait time (time since it submitted its previous result),
//   2. runs the task function with a deterministic per-task RNG,
//   3. pads execution to the straggler-scaled service floor,
//   4. charges the result transfer to the network model and pushes the
//      TaskResult to the driver's result queue.
// Errors (injected faults, exceptions) become non-OK TaskResults; nothing
// unwinds across the thread boundary.
//
// Fault injection is declarative: Deps carries an optional FaultState
// (compiled from the cluster's FaultPlan) consulted at fixed lifecycle
// points — queue delay, crash, pre-run task failure, compute/serialize/
// network delays, result drop/duplication.  A crashed worker is fail-stop:
// `dead()` flips true, the crashing task and everything still in (or
// entering) the mailbox bounce back as synthesized kUnavailable failures —
// the simulated transport noticing the dead executor — and executor threads
// that were mid-task when the crash hit convert their result to the same
// failure at push time, so nothing useful ever leaves a dead machine.

#include <atomic>
#include <thread>
#include <vector>

#include "engine/broadcast.hpp"
#include "engine/delay_model.hpp"
#include "engine/fault.hpp"
#include "engine/metrics.hpp"
#include "engine/network.hpp"
#include "engine/task.hpp"
#include "support/blocking_queue.hpp"

namespace asyncml::telemetry {
class TelemetryRecorder;
}  // namespace asyncml::telemetry

namespace asyncml::transport {
class Channel;
}  // namespace asyncml::transport

namespace asyncml::engine {

class Worker {
 public:
  struct Deps {
    const BroadcastStore* store = nullptr;
    const NetworkModel* network = nullptr;
    const DelayModel* delay = nullptr;
    ClusterMetrics* metrics = nullptr;
    support::BlockingQueue<TaskResult>* results = nullptr;
    FaultState* faults = nullptr;  // optional, shared across the cluster
    /// Cluster-owned span recorder; checked per task via a relaxed atomic
    /// and otherwise free when telemetry is disabled.
    telemetry::TelemetryRecorder* telemetry = nullptr;
    /// This worker's transport channel (transport/transport.hpp). Null keeps
    /// the legacy modeled-sleep path; set, every result and broadcast fetch
    /// round-trips through it, and a dead wire fail-stops the worker exactly
    /// like a kCrashWorker fault.
    transport::Channel* channel = nullptr;
  };

  Worker(WorkerId id, int cores, Deps deps);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Enqueues a task; returns false after stop(). A dead worker still
  /// accepts tasks — they bounce back as kUnavailable failures, which is how
  /// callers that raced the crash learn about it.
  bool submit(TaskSpec spec);

  /// Closes the mailbox and joins executor threads. Idempotent.
  void stop();

  [[nodiscard]] WorkerId id() const noexcept { return id_; }
  [[nodiscard]] int cores() const noexcept { return static_cast<int>(threads_.size()); }
  [[nodiscard]] std::size_t mailbox_depth() const { return mailbox_.size(); }

  /// False once a kCrashWorker fault has fired on this worker, or its
  /// transport channel has gone dead (fail-stop either way).
  [[nodiscard]] bool alive() const noexcept;

  /// The worker's broadcast cache (exposed for cache-behaviour tests).
  [[nodiscard]] BroadcastCache& cache() { return cache_; }

 private:
  void executor_loop(int core);
  /// Pushes a synthesized kUnavailable failure for `spec` (no sleeps, no
  /// payload): the transport's dead-executor notification.
  void bounce(const TaskSpec& spec);

  WorkerId id_;
  Deps deps_;
  BroadcastCache cache_;
  support::BlockingQueue<TaskSpec> mailbox_;
  std::atomic<bool> dead_{false};
  std::vector<std::jthread> threads_;
};

}  // namespace asyncml::engine
