#pragma once

// Umbrella header: everything a downstream application needs to build and run
// synchronous/asynchronous distributed optimization with ASYNC.
//
// Intended usage — applications include only this header and follow the
// shape of examples/quickstart.cpp:
//
//   1. build a Dataset (data::load_libsvm / data::synthetic::*) and wrap it
//      in a Workload (optim/workload.hpp) with a loss from optim/loss.hpp;
//   2. stand up an engine::Cluster (workers × cores, optional straggler
//      DelayModel from src/straggler/) and a core::AsyncContext over it;
//   3. either call a packaged solver (optim::AsgdSolver::run,
//      optim::AsagaSolver::run, ...) and read back its RunResult, or write
//      the loop yourself
//      against the Table-1 API of core/api.hpp: dispatch with ASYNCreduce
//      under a BarrierControl, drain with ASYNCcollect, publish models with
//      ASYNCbroadcast, and steer using the STAT snapshot.
//
// Library code should include the specific module headers instead; this
// header exists for applications, examples, and benchmarks.

#include "core/api.hpp"              // Table-1-named free functions
#include "core/async_context.hpp"   // AC, ASYNCcollect/broadcast, barriers
#include "core/barrier.hpp"
#include "data/dataset.hpp"
#include "data/libsvm.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "engine/actions.hpp"
#include "engine/cluster.hpp"
#include "engine/rdd.hpp"
#include "linalg/blas.hpp"
#include "metrics/report.hpp"
#include "metrics/trace.hpp"
#include "optim/admm.hpp"
#include "optim/asaga.hpp"
#include "optim/asgd.hpp"
#include "optim/epoch_vr.hpp"
#include "optim/hogwild.hpp"
#include "optim/loss.hpp"
#include "optim/mllib_sgd.hpp"
#include "optim/naive_saga.hpp"
#include "optim/objective.hpp"
#include "optim/saga.hpp"
#include "optim/serial.hpp"
#include "optim/sgd.hpp"
#include "optim/solver_config.hpp"
#include "optim/step_size.hpp"
#include "optim/workload.hpp"
#include "store/model_cache.hpp"
#include "store/model_store.hpp"
#include "straggler/controlled_delay.hpp"
#include "straggler/production_cluster.hpp"
#include "straggler/trace_replay.hpp"
