#pragma once

// Umbrella header: everything a downstream application needs to build and run
// synchronous/asynchronous distributed optimization with ASYNC.

#include "core/api.hpp"              // Table-1-named free functions
#include "core/async_context.hpp"   // AC, ASYNCcollect/broadcast, barriers
#include "core/barrier.hpp"
#include "data/dataset.hpp"
#include "data/libsvm.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "engine/actions.hpp"
#include "engine/cluster.hpp"
#include "engine/rdd.hpp"
#include "linalg/blas.hpp"
#include "metrics/report.hpp"
#include "metrics/trace.hpp"
#include "optim/admm.hpp"
#include "optim/asaga.hpp"
#include "optim/asgd.hpp"
#include "optim/epoch_vr.hpp"
#include "optim/hogwild.hpp"
#include "optim/loss.hpp"
#include "optim/mllib_sgd.hpp"
#include "optim/naive_saga.hpp"
#include "optim/objective.hpp"
#include "optim/saga.hpp"
#include "optim/serial.hpp"
#include "optim/sgd.hpp"
#include "optim/solver_config.hpp"
#include "optim/step_size.hpp"
#include "optim/workload.hpp"
#include "straggler/controlled_delay.hpp"
#include "straggler/production_cluster.hpp"
#include "straggler/trace_replay.hpp"
