#include "linalg/sparse.hpp"

namespace asyncml::linalg {

CsrMatrix csr_from_rows(const std::vector<SparseVector>& rows, std::size_t cols) {
  CsrMatrix m = CsrMatrix::for_appending(cols);
  for (const SparseVector& row : rows) m.append_row(row);
  return m;
}

bool csr_is_well_formed(const CsrMatrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const SparseRowView row = m.row(r);
    for (std::size_t k = 0; k < row.nnz(); ++k) {
      if (row.indices[k] >= m.cols()) return false;
      if (k > 0 && row.indices[k] <= row.indices[k - 1]) return false;
    }
  }
  return true;
}

}  // namespace asyncml::linalg
