#include "linalg/solve.hpp"

#include <cmath>

#include "linalg/blas.hpp"

namespace asyncml::linalg {

using support::Status;
using support::StatusCode;
using support::StatusOr;

Status cholesky_factorize(DenseMatrix& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) {
    return Status(StatusCode::kInvalidArgument, "cholesky: matrix not square");
  }
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a.at(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a.at(j, k) * a.at(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status(StatusCode::kFailedPrecondition,
                    "cholesky: matrix not positive definite");
    }
    const double ljj = std::sqrt(diag);
    a.at(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= a.at(i, k) * a.at(j, k);
      a.at(i, j) = v / ljj;
    }
  }
  return Status::ok();
}

DenseVector cholesky_solve(const DenseMatrix& l, const DenseVector& b) {
  const std::size_t n = l.rows();
  DenseVector y(n);
  // Forward substitution L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l.at(i, k) * y[k];
    y[i] = v / l.at(i, i);
  }
  // Backward substitution Lᵀ x = y.
  DenseVector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= l.at(k, ii) * x[k];
    x[ii] = v / l.at(ii, ii);
  }
  return x;
}

namespace {

/// Shared implementation once the normal matrix AᵀA and vector Aᵀb are formed.
StatusOr<DenseVector> solve_normal_equations(DenseMatrix gram, DenseVector rhs,
                                             double ridge) {
  for (std::size_t i = 0; i < gram.rows(); ++i) gram.at(i, i) += ridge;
  if (Status s = cholesky_factorize(gram); !s.is_ok()) return s;
  return cholesky_solve(gram, rhs);
}

}  // namespace

StatusOr<DenseVector> least_squares_optimum(const DenseMatrix& a, const DenseVector& b,
                                            double ridge) {
  if (a.rows() != b.size()) {
    return Status(StatusCode::kInvalidArgument, "least_squares: size mismatch");
  }
  const std::size_t d = a.cols();
  DenseMatrix gram(d, d);
  DenseVector rhs(d);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto row = a.row(r);
    for (std::size_t i = 0; i < d; ++i) {
      const double xi = row[i];
      if (xi == 0.0) continue;
      for (std::size_t j = i; j < d; ++j) gram.at(i, j) += xi * row[j];
      rhs[i] += xi * b[r];
    }
  }
  // Mirror the upper triangle.
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < i; ++j) gram.at(i, j) = gram.at(j, i);
  return solve_normal_equations(std::move(gram), std::move(rhs), ridge);
}

StatusOr<DenseVector> least_squares_optimum(const CsrMatrix& a, const DenseVector& b,
                                            double ridge) {
  if (a.rows() != b.size()) {
    return Status(StatusCode::kInvalidArgument, "least_squares: size mismatch");
  }
  const std::size_t d = a.cols();
  DenseMatrix gram(d, d);
  DenseVector rhs(d);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const SparseRowView row = a.row(r);
    for (std::size_t ki = 0; ki < row.nnz(); ++ki) {
      const std::size_t i = row.indices[ki];
      const double xi = row.values[ki];
      for (std::size_t kj = ki; kj < row.nnz(); ++kj) {
        gram.at(i, row.indices[kj]) += xi * row.values[kj];
      }
      rhs[i] += xi * b[r];
    }
  }
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < i; ++j) gram.at(i, j) = gram.at(j, i);
  return solve_normal_equations(std::move(gram), std::move(rhs), ridge);
}

}  // namespace asyncml::linalg
