#pragma once

// Direct solvers for small systems.
//
// Tests and examples need the *exact* least-squares optimum to measure
// convergence error against; at test scale (d <= a few hundred) forming the
// normal equations and running Cholesky is the right tool.  Not used by the
// distributed algorithms themselves.

#include "linalg/dense_matrix.hpp"
#include "linalg/dense_vector.hpp"
#include "linalg/sparse.hpp"
#include "support/status.hpp"

namespace asyncml::linalg {

/// In-place Cholesky factorization A = L·Lᵀ of a symmetric positive-definite
/// matrix (lower triangle used). Fails with kFailedPrecondition if A is not
/// positive definite.
[[nodiscard]] support::Status cholesky_factorize(DenseMatrix& a);

/// Solves L·Lᵀ x = b given the factor produced by cholesky_factorize.
[[nodiscard]] DenseVector cholesky_solve(const DenseMatrix& l, const DenseVector& b);

/// Least-squares optimum argmin_w ||A w - b||² via normal equations with a
/// small ridge term for numerical safety. Intended for d small (test scale).
[[nodiscard]] support::StatusOr<DenseVector> least_squares_optimum(
    const DenseMatrix& a, const DenseVector& b, double ridge = 1e-10);

/// Sparse-matrix overload (densifies the normal matrix; d must be small).
[[nodiscard]] support::StatusOr<DenseVector> least_squares_optimum(
    const CsrMatrix& a, const DenseVector& b, double ridge = 1e-10);

}  // namespace asyncml::linalg
