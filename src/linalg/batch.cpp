#include "linalg/batch.hpp"

#include <cassert>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define ASYNCML_X86 1
#else
#define ASYNCML_X86 0
#endif

namespace asyncml::linalg {

namespace {

// ---- scalar reference kernels ----------------------------------------------
//
// These ARE the semantics: every other variant (multi-row blocking, AVX2)
// must produce bit-identical output. Per-row dot keeps linalg::dot's four
// strided partial sums; per-row accumulate applies coefficients in row order.

inline double dot_scalar(const double* x, const double* y, std::size_t n) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

inline double dot_sparse(const SparseRowView& row, const double* x) {
  double s = 0.0;
  for (std::size_t k = 0; k < row.indices.size(); ++k) {
    s += row.values[k] * x[row.indices[k]];
  }
  return s;
}

void gemv_rows_scalar(const DenseRowBlock& a, std::span<const std::uint32_t> rows,
                      const double* x, double* margins) {
  const std::size_t n = a.cols();
  std::size_t i = 0;
  // Two rows per pass: x is streamed once per pair, and the 8 live partial
  // sums still fit the scalar register file without spills.
  for (; i + 2 <= rows.size(); i += 2) {
    const double* r0 = a.row_data(rows[i]);
    const double* r1 = a.row_data(rows[i + 1]);
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    double b0 = 0.0, b1 = 0.0, b2 = 0.0, b3 = 0.0;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const double x0 = x[j], x1 = x[j + 1], x2 = x[j + 2], x3 = x[j + 3];
      a0 += r0[j] * x0;
      a1 += r0[j + 1] * x1;
      a2 += r0[j + 2] * x2;
      a3 += r0[j + 3] * x3;
      b0 += r1[j] * x0;
      b1 += r1[j + 1] * x1;
      b2 += r1[j + 2] * x2;
      b3 += r1[j + 3] * x3;
    }
    for (; j < n; ++j) {
      a0 += r0[j] * x[j];
      b0 += r1[j] * x[j];
    }
    margins[i] = (a0 + a1) + (a2 + a3);
    margins[i + 1] = (b0 + b1) + (b2 + b3);
  }
  for (; i < rows.size(); ++i) {
    margins[i] = dot_scalar(a.row_data(rows[i]), x, n);
  }
}

void accumulate_rows_scalar(const DenseRowBlock& a,
                            std::span<const std::uint32_t> rows,
                            const double* coeffs, double* acc) {
  const std::size_t n = a.cols();
  std::size_t i = 0;
  // Four rows per pass over acc: per coordinate the chain
  // (((acc+c0·r0)+c1·r1)+c2·r2)+c3·r3 performs the identical rounded ops, in
  // the identical order, as four separate per-row axpy sweeps.
  for (; i + 4 <= rows.size(); i += 4) {
    const double* r0 = a.row_data(rows[i]);
    const double* r1 = a.row_data(rows[i + 1]);
    const double* r2 = a.row_data(rows[i + 2]);
    const double* r3 = a.row_data(rows[i + 3]);
    const double c0 = coeffs[i], c1 = coeffs[i + 1];
    const double c2 = coeffs[i + 2], c3 = coeffs[i + 3];
    for (std::size_t j = 0; j < n; ++j) {
      double v = acc[j];
      v += c0 * r0[j];
      v += c1 * r1[j];
      v += c2 * r2[j];
      v += c3 * r3[j];
      acc[j] = v;
    }
  }
  for (; i < rows.size(); ++i) {
    const double* r = a.row_data(rows[i]);
    const double c = coeffs[i];
    for (std::size_t j = 0; j < n; ++j) acc[j] += c * r[j];
  }
}

// ---- AVX2 micro-kernels -----------------------------------------------------
//
// Lane k of each 4-lane accumulator is exactly the scalar partial sum s_k;
// vmulpd/vaddpd round per lane exactly like the scalar mul/add (no FMA), so
// results are bit-identical to the scalar kernels above.

#if ASYNCML_X86

[[gnu::target("avx2")]] void gemv_rows_avx2(const DenseRowBlock& a,
                                            std::span<const std::uint32_t> rows,
                                            const double* x, double* margins) {
  const std::size_t n = a.cols();
  std::size_t i = 0;
  for (; i + 4 <= rows.size(); i += 4) {
    const double* r0 = a.row_data(rows[i]);
    const double* r1 = a.row_data(rows[i + 1]);
    const double* r2 = a.row_data(rows[i + 2]);
    const double* r3 = a.row_data(rows[i + 3]);
    // Warm the next block's row starts while this block computes: sampled
    // rows are strided streams, and the stream-startup miss is what the
    // hardware prefetcher cannot hide.
    if (i + 8 <= rows.size()) {
      for (std::size_t q = 4; q < 8; ++q) {
        const char* next = reinterpret_cast<const char*>(a.row_data(rows[i + q]));
        _mm_prefetch(next, _MM_HINT_T0);
        _mm_prefetch(next + 64, _MM_HINT_T0);
      }
    }
    __m256d s0 = _mm256_setzero_pd();
    __m256d s1 = _mm256_setzero_pd();
    __m256d s2 = _mm256_setzero_pd();
    __m256d s3 = _mm256_setzero_pd();
    std::size_t j = 0;
    // 8 columns per iteration: two sequential vector adds into the same
    // per-row accumulator are the same rounded operations, in the same
    // order, as two 4-column iterations — only loop overhead changes.
    for (; j + 8 <= n; j += 8) {
      const __m256d xa = _mm256_loadu_pd(x + j);
      const __m256d xb = _mm256_loadu_pd(x + j + 4);
      s0 = _mm256_add_pd(s0, _mm256_mul_pd(_mm256_loadu_pd(r0 + j), xa));
      s1 = _mm256_add_pd(s1, _mm256_mul_pd(_mm256_loadu_pd(r1 + j), xa));
      s2 = _mm256_add_pd(s2, _mm256_mul_pd(_mm256_loadu_pd(r2 + j), xa));
      s3 = _mm256_add_pd(s3, _mm256_mul_pd(_mm256_loadu_pd(r3 + j), xa));
      s0 = _mm256_add_pd(s0, _mm256_mul_pd(_mm256_loadu_pd(r0 + j + 4), xb));
      s1 = _mm256_add_pd(s1, _mm256_mul_pd(_mm256_loadu_pd(r1 + j + 4), xb));
      s2 = _mm256_add_pd(s2, _mm256_mul_pd(_mm256_loadu_pd(r2 + j + 4), xb));
      s3 = _mm256_add_pd(s3, _mm256_mul_pd(_mm256_loadu_pd(r3 + j + 4), xb));
    }
    for (; j + 4 <= n; j += 4) {
      const __m256d xv = _mm256_loadu_pd(x + j);
      s0 = _mm256_add_pd(s0, _mm256_mul_pd(_mm256_loadu_pd(r0 + j), xv));
      s1 = _mm256_add_pd(s1, _mm256_mul_pd(_mm256_loadu_pd(r1 + j), xv));
      s2 = _mm256_add_pd(s2, _mm256_mul_pd(_mm256_loadu_pd(r2 + j), xv));
      s3 = _mm256_add_pd(s3, _mm256_mul_pd(_mm256_loadu_pd(r3 + j), xv));
    }
    // Remainder columns continue lane 0's partial sum one element at a time,
    // matching the scalar kernel's "tail adds into s0" rule exactly.
    alignas(32) double l0[4], l1[4], l2[4], l3[4];
    _mm256_store_pd(l0, s0);
    _mm256_store_pd(l1, s1);
    _mm256_store_pd(l2, s2);
    _mm256_store_pd(l3, s3);
    for (; j < n; ++j) {
      l0[0] += r0[j] * x[j];
      l1[0] += r1[j] * x[j];
      l2[0] += r2[j] * x[j];
      l3[0] += r3[j] * x[j];
    }
    margins[i] = (l0[0] + l0[1]) + (l0[2] + l0[3]);
    margins[i + 1] = (l1[0] + l1[1]) + (l1[2] + l1[3]);
    margins[i + 2] = (l2[0] + l2[1]) + (l2[2] + l2[3]);
    margins[i + 3] = (l3[0] + l3[1]) + (l3[2] + l3[3]);
  }
  for (; i < rows.size(); ++i) {
    const double* r = a.row_data(rows[i]);
    __m256d s = _mm256_setzero_pd();
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      s = _mm256_add_pd(s, _mm256_mul_pd(_mm256_loadu_pd(r + j), _mm256_loadu_pd(x + j)));
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, s);
    for (; j < n; ++j) lanes[0] += r[j] * x[j];
    margins[i] = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  }
}

[[gnu::target("avx2")]] void accumulate_rows_avx2(const DenseRowBlock& a,
                                                  std::span<const std::uint32_t> rows,
                                                  const double* coeffs, double* acc) {
  const std::size_t n = a.cols();
  std::size_t i = 0;
  for (; i + 4 <= rows.size(); i += 4) {
    const double* r0 = a.row_data(rows[i]);
    const double* r1 = a.row_data(rows[i + 1]);
    const double* r2 = a.row_data(rows[i + 2]);
    const double* r3 = a.row_data(rows[i + 3]);
    const __m256d c0 = _mm256_set1_pd(coeffs[i]);
    const __m256d c1 = _mm256_set1_pd(coeffs[i + 1]);
    const __m256d c2 = _mm256_set1_pd(coeffs[i + 2]);
    const __m256d c3 = _mm256_set1_pd(coeffs[i + 3]);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      __m256d v = _mm256_loadu_pd(acc + j);
      v = _mm256_add_pd(v, _mm256_mul_pd(c0, _mm256_loadu_pd(r0 + j)));
      v = _mm256_add_pd(v, _mm256_mul_pd(c1, _mm256_loadu_pd(r1 + j)));
      v = _mm256_add_pd(v, _mm256_mul_pd(c2, _mm256_loadu_pd(r2 + j)));
      v = _mm256_add_pd(v, _mm256_mul_pd(c3, _mm256_loadu_pd(r3 + j)));
      _mm256_storeu_pd(acc + j, v);
    }
    for (; j < n; ++j) {
      double v = acc[j];
      v += coeffs[i] * r0[j];
      v += coeffs[i + 1] * r1[j];
      v += coeffs[i + 2] * r2[j];
      v += coeffs[i + 3] * r3[j];
      acc[j] = v;
    }
  }
  for (; i < rows.size(); ++i) {
    const double* r = a.row_data(rows[i]);
    const __m256d c = _mm256_set1_pd(coeffs[i]);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      __m256d v = _mm256_loadu_pd(acc + j);
      v = _mm256_add_pd(v, _mm256_mul_pd(c, _mm256_loadu_pd(r + j)));
      _mm256_storeu_pd(acc + j, v);
    }
    for (; j < n; ++j) acc[j] += coeffs[i] * r[j];
  }
}

[[nodiscard]] bool cpu_has_avx2() {
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
}

#endif  // ASYNCML_X86

}  // namespace

void gemv_rows(const DenseRowBlock& a, std::span<const std::uint32_t> rows,
               std::span<const double> x, std::span<double> margins) {
  assert(rows.size() == margins.size() && x.size() == a.cols());
#if ASYNCML_X86
  if (cpu_has_avx2()) {
    gemv_rows_avx2(a, rows, x.data(), margins.data());
    return;
  }
#endif
  gemv_rows_scalar(a, rows, x.data(), margins.data());
}

void spmv_rows(const CsrRowSlice& a, std::span<const std::uint32_t> rows,
               std::span<const double> x, std::span<double> margins) {
  assert(rows.size() == margins.size() && x.size() == a.cols());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    margins[i] = dot_sparse(a.row(rows[i]), x.data());
  }
}

void accumulate_rows(const DenseRowBlock& a, std::span<const std::uint32_t> rows,
                     std::span<const double> coeffs, std::span<double> acc) {
  assert(rows.size() == coeffs.size() && acc.size() == a.cols());
#if ASYNCML_X86
  if (cpu_has_avx2()) {
    accumulate_rows_avx2(a, rows, coeffs.data(), acc.data());
    return;
  }
#endif
  accumulate_rows_scalar(a, rows, coeffs.data(), acc.data());
}

void accumulate_rows(const CsrRowSlice& a, std::span<const std::uint32_t> rows,
                     std::span<const double> coeffs, std::span<double> acc) {
  assert(rows.size() == coeffs.size() && acc.size() == a.cols());
  double* out = acc.data();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SparseRowView row = a.row(rows[i]);
    const double c = coeffs[i];
    for (std::size_t k = 0; k < row.indices.size(); ++k) {
      out[row.indices[k]] += c * row.values[k];
    }
  }
}

void accumulate_rows(const CsrRowSlice& a, std::span<const std::uint32_t> rows,
                     std::span<const double> coeffs, GradVector& g) {
  assert(rows.size() == coeffs.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    g.axpy(coeffs[i], a.row(rows[i]));
  }
}

}  // namespace asyncml::linalg
