#pragma once

// Adaptive gradient accumulator: sparse until it isn't.
//
// Mini-batch gradients of linear models over sparse data have support equal
// to the union of the batch rows' feature indices — usually a tiny fraction
// of `dim` for rcv1-like workloads.  A GradVector accumulates `axpy` of rows
// into an index-keyed open-addressing table and automatically densifies once
// the accumulated nnz crosses `densify_threshold * dim`, so dense workloads
// (and saturated sparse ones) pay dense-scatter costs while sparse ones ship
// and combine O(nnz) data.  `size_bytes()` reports the exact wire size of the
// current representation (the engine charges transfer time from it):
//
//   sparse: u64 nnz header + nnz x (u32 index, f64 value)  = 8 + 12*nnz
//   dense:  dim x f64                                      = 8*dim
//
// Determinism contract: for a fixed per-coordinate order of accumulated
// terms, sparse and dense modes produce bit-identical per-coordinate sums —
// each coordinate's partial sum is updated once per contributing term in
// visit order regardless of representation, so solver trajectories do not
// depend on the representation choice.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/dense_vector.hpp"
#include "linalg/sparse.hpp"
#include "support/aligned.hpp"

namespace asyncml::linalg {

/// Default nnz/dim ratio at which a sparse accumulator densifies.  Wire
/// break-even is 2/3 (12 bytes/entry sparse vs 8 dense), but *compute*
/// crosses over far earlier: measured on the accumulate micro bench, hash
/// upserts beat dense scatter+zero+apply only below ~12% occupancy — above
/// it the table walk costs more than the O(dim) passes it avoids
/// (bench_results/micro_grad_accumulate.csv; the old 0.25 default left a
/// 2.5x regression at 1% cell density, whose 16-row batch union is ~15%).
/// 1/8 keeps adaptive compute within ~1.2x of dense at every density while
/// sparse-regime workloads (rcv1-like, batch unions of a few percent) keep
/// their order-of-magnitude wire win.
inline constexpr double kDefaultDensifyThreshold = 0.125;

/// Representation policy a solver config chooses.
enum class GradMode {
  kAuto,    ///< start sparse for sparse datasets, dense otherwise
  kDense,   ///< always start dense (the pre-GradVector behaviour)
  kSparse,  ///< always start sparse (still densifies past the threshold)
};

struct GradVectorConfig {
  std::size_t dim = 0;
  double densify_threshold = kDefaultDensifyThreshold;
  bool start_dense = false;
  /// Expected accumulated nnz of one mini-batch (the batch-union support).
  /// When nonzero, the sparse table pre-sizes to hold it at ≤1/2 load on
  /// first use instead of growing through a rehash chain from 32 slots —
  /// the fix for the mid-density compute regression where rehashing, not
  /// probing, dominated (bench_micro_grad_accumulate @ density 0.01).
  /// Purely a performance hint: values and representation are unchanged.
  std::size_t expected_nnz = 0;

  GradVectorConfig() = default;
  // Explicit on purpose: a bare dimension silently defaulting to a
  // representation is the same footgun as Payload::wrap's sizeof default —
  // callers must spell out (or resolve) their density opinion.
  explicit GradVectorConfig(std::size_t dimension) : dim(dimension) {}
  GradVectorConfig(std::size_t dimension, double threshold, bool dense_start)
      : dim(dimension), densify_threshold(threshold), start_dense(dense_start) {}
};

/// Expected support fraction of a gradient summed over `batch_rows` rows of
/// per-cell density `density`: 1 − (1 − density)^batch_rows.  This — not the
/// raw dataset density — is what decides whether a batch accumulator
/// saturates, so it is the quantity kAuto should be fed.
[[nodiscard]] double expected_union_density(double density, double batch_rows);

/// Resolves a (mode, density) pair into a concrete config: kAuto starts
/// dense once `density` (ideally the expected_union_density of one task's
/// mini-batch) reaches the densify threshold — below it the sparse phase
/// pays off in both bytes and combine cost.
[[nodiscard]] GradVectorConfig resolve_grad_config(
    GradMode mode, std::size_t dim, double density,
    double densify_threshold = kDefaultDensifyThreshold);

class GradVector {
 public:
  GradVector() = default;
  explicit GradVector(const GradVectorConfig& config) { ensure(config); }

  /// Adopts `config` when unconfigured; no-op otherwise.  Seq operators call
  /// this so default-constructed accumulator zeros self-configure.
  void ensure(const GradVectorConfig& config) {
    if (cfg_.dim != 0 || config.dim == 0) return;
    cfg_ = config;
    dense_mode_ = cfg_.start_dense;
  }

  [[nodiscard]] bool configured() const noexcept { return cfg_.dim != 0; }
  [[nodiscard]] const GradVectorConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t dim() const noexcept { return cfg_.dim; }
  [[nodiscard]] bool is_dense() const noexcept { return dense_mode_; }

  /// Stored entries: table occupancy when sparse, `dim` once dense storage
  /// exists (a dense representation ships every coordinate regardless of
  /// value; an untouched dense accumulator holds — and ships — nothing).
  [[nodiscard]] std::size_t nnz() const noexcept {
    return dense_mode_ ? (dense_.empty() ? 0 : cfg_.dim) : nnz_;
  }

  /// this += a * x for a sparse row (the hot accumulation path).
  void axpy(double a, const SparseRowView& x) {
    assert(configured() && "GradVector::axpy before ensure()");
    if (dense_mode_) {
      double* d = touch_dense();
      for (std::size_t k = 0; k < x.indices.size(); ++k) {
        d[x.indices[k]] += a * x.values[k];
      }
      return;
    }
    if (keys_.empty()) init_table();
    for (std::size_t k = 0; k < x.indices.size(); ++k) {
      sparse_add(x.indices[k], a * x.values[k]);
    }
    maybe_densify();
  }

  /// this += a * x for a dense row: the support is (assumed) full, so this
  /// densifies immediately.
  void axpy(double a, std::span<const double> x);

  /// Adopts `v` as the dense value (bit-for-bit copy, dense mode).  The
  /// batch kernels accumulate dense-mode gradients in a reusable scratch
  /// buffer and publish the result through this; the copy is the modeled
  /// serialize step, and the bits equal a per-row dense accumulation.
  void assign_dense(std::span<const double> v);

  /// this += other (the combine kernel).  An unconfigured accumulator adopts
  /// `other` wholesale; mixed representations densify this side.
  void add(const GradVector& other);

  /// Sets coordinate `index` to `value` (insert-or-overwrite).  Unlike axpy
  /// this does not accumulate — it is the sparse-assignment primitive the
  /// delta-versioned model store builds overwrite deltas from.
  void set(std::uint32_t index, double value);

  /// y += a * this (the apply-update kernel); y.size() must equal dim.
  void scale_into(double a, std::span<double> y) const;

  /// y[i] = value for every stored entry (sparse overwrite — the delta-apply
  /// kernel; untouched coordinates of y keep their current values when the
  /// representation is sparse).  A dense representation assigns all of y.
  void overwrite_into(std::span<double> y) const;

  /// Splits this vector into contiguous index ranges — the scatter kernel of
  /// the sharded model plane (core/shard_map.hpp supplies the bounds).
  /// `bounds` is the S+1 boundary array [0, b1, …, dim]; piece s holds the
  /// entries with index in [bounds[s], bounds[s+1]), re-indexed locally
  /// (piece dim = bounds[s+1] − bounds[s]).
  ///
  /// Wire-size contract: a dense source yields dense pieces whose 8*local_dim
  /// bytes sum exactly to the source's 8*dim.  A sparse source yields sparse
  /// pieces (8 + 12*nnz_s each, empty pieces ship 0), so the 12*nnz data
  /// bytes are preserved exactly and each non-empty piece adds one 8-byte nnz
  /// header.  Sparse pieces never densify: a split must not change the
  /// encoding of what it splits.
  [[nodiscard]] std::vector<GradVector> split_ranges(
      std::span<const std::uint32_t> bounds) const;

  /// Accumulates a split_ranges piece back at `offset` (the piece's
  /// bounds[s]): this[offset + i] += piece[i].  The merge kernel of the
  /// sharded tree aggregation; merging every piece of a split into a zeroed
  /// vector reproduces the source bit for bit.
  void merge_from(const GradVector& piece, std::uint32_t offset);

  /// Materializes the dense equivalent (dim-sized).
  [[nodiscard]] DenseVector to_dense() const;

  /// Single-coordinate read (tests / cold paths: O(probe) when sparse).
  [[nodiscard]] double value_at(std::size_t i) const;

  /// Exact modeled wire size of the current representation.  An accumulator
  /// with no entries ships nothing, matching the pre-GradVector empty-batch
  /// payload (a never-resized DenseVector).
  [[nodiscard]] std::size_t size_bytes() const noexcept {
    if (nnz() == 0) return 0;
    return dense_mode_ ? cfg_.dim * sizeof(double)
                       : sizeof(std::uint64_t) +
                             nnz_ * (sizeof(std::uint32_t) + sizeof(double));
  }

  /// Clears all entries and reverts to the configured start representation
  /// (buffers are retained for reuse across mini-batches).
  void set_zero();

  /// Invokes f(index, value) for every stored entry.  Sparse iteration order
  /// is unspecified; each index appears at most once.
  template <typename F>
  void for_each(F&& f) const {
    if (dense_mode_) {
      for (std::size_t i = 0; i < dense_.size(); ++i) {
        f(static_cast<std::uint32_t>(i), dense_[i]);
      }
      return;
    }
    for (std::size_t s = 0; s < keys_.size(); ++s) {
      if (keys_[s] != kEmptyKey) f(keys_[s], vals_[s]);
    }
  }

 private:
  static constexpr std::uint32_t kEmptyKey = 0xFFFFFFFFu;
  static constexpr std::size_t kInitialSlots = 32;

  [[nodiscard]] static std::size_t hash(std::uint32_t key) noexcept {
    // Fibonacci multiplicative hash; the table masks the high bits down.
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull) >> 32);
  }

  /// Probe for `key`, inserting a zero-valued entry (growing the table as
  /// needed) when absent; returns the slot holding the entry. Sparse mode
  /// with an initialized table only.
  std::size_t upsert_slot(std::uint32_t key) {
    while (true) {
      std::size_t slot = hash(key) & mask_;
      while (keys_[slot] != key && keys_[slot] != kEmptyKey) {
        slot = (slot + 1) & mask_;
      }
      if (keys_[slot] == key) return slot;
      keys_[slot] = key;
      vals_[slot] = 0.0;
      ++nnz_;
      if (nnz_ * 8 < keys_.size() * 5) return slot;  // keep load under 5/8
      grow();  // slots moved; re-probe (the key is present now)
    }
  }

  void sparse_add(std::uint32_t key, double delta) { vals_[upsert_slot(key)] += delta; }

  void maybe_densify() {
    if (static_cast<double>(nnz_) >
        cfg_.densify_threshold * static_cast<double>(cfg_.dim)) {
      densify();
    }
  }

  /// Lazily allocates dense storage (dense_mode_ with an empty buffer means
  /// "all zeros"), returning the data pointer.
  double* touch_dense();

  void init_table();
  void grow();
  void densify();

  GradVectorConfig cfg_;
  bool dense_mode_ = false;
  // Dense representation (empty = all zeros when dense_mode_); aligned so
  // dense-mode accumulation and apply run the vector kernels at full speed.
  support::AlignedVector<double> dense_;
  // Sparse open-addressing table: parallel key/value arrays, linear probing,
  // power-of-two capacity.
  std::vector<std::uint32_t> keys_;
  std::vector<double> vals_;
  std::size_t nnz_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace asyncml::linalg
