#pragma once

// Row-major dense matrix. Rows are the data points of dense datasets
// (mnist8m-like, epsilon-like); row views are spans so gradient kernels
// iterate without copies.

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "support/aligned.hpp"

namespace asyncml::linalg {

/// Borrowed view of a contiguous block of dense rows (one partition's
/// features) — the dense counterpart of CsrRowSlice for the batch gradient
/// kernels.  Local row ids are relative to the block.
class DenseRowBlock {
 public:
  DenseRowBlock() = default;
  DenseRowBlock(const double* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] std::span<const double> row(std::size_t local) const noexcept {
    assert(local < rows_);
    return {data_ + local * cols_, cols_};
  }
  [[nodiscard]] const double* row_data(std::size_t local) const noexcept {
    assert(local < rows_);
    return data_ + local * cols_;
  }

 private:
  const double* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  /// View of rows [begin, end) — the partition-slice input of the batch
  /// kernels. The view borrows this matrix's storage.
  [[nodiscard]] DenseRowBlock block(std::size_t begin, std::size_t end) const noexcept {
    assert(begin <= end && end <= rows_);
    return DenseRowBlock(data_.data() + begin * cols_, end - begin, cols_);
  }

  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return data_.size() * sizeof(double);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  support::AlignedVector<double> data_;  // 64B-aligned for the AVX2 kernels
};

}  // namespace asyncml::linalg
