#include "linalg/dense_vector.hpp"

#include <sstream>

namespace asyncml::linalg {

std::string DenseVector::to_string() const {
  std::ostringstream os;
  os << "[";
  const std::size_t shown = std::min<std::size_t>(size(), 8);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  if (size() > shown) os << ", ... (" << size() << " total)";
  os << "]";
  return os.str();
}

}  // namespace asyncml::linalg
