#pragma once

// Sparse containers: CSR matrix for sparse datasets (rcv1-like) and a sparse
// vector for individual examples (LIBSVM parsing).  Column indices are sorted
// ascending within each row; kernels rely on it.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace asyncml::linalg {

/// Immutable view of one CSR row: parallel arrays of column indices/values.
struct SparseRowView {
  std::span<const std::uint32_t> indices;
  std::span<const double> values;

  [[nodiscard]] std::size_t nnz() const noexcept { return indices.size(); }
};

/// Owning sparse vector (one example's features).
class SparseVector {
 public:
  SparseVector() = default;
  SparseVector(std::vector<std::uint32_t> indices, std::vector<double> values)
      : indices_(std::move(indices)), values_(std::move(values)) {
    assert(indices_.size() == values_.size());
  }

  void push_back(std::uint32_t index, double value) {
    assert(indices_.empty() || index > indices_.back());
    indices_.push_back(index);
    values_.push_back(value);
  }

  [[nodiscard]] std::size_t nnz() const noexcept { return indices_.size(); }
  [[nodiscard]] const std::vector<std::uint32_t>& indices() const noexcept {
    return indices_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }

  [[nodiscard]] SparseRowView view() const noexcept {
    return {{indices_.data(), indices_.size()}, {values_.data(), values_.size()}};
  }

 private:
  std::vector<std::uint32_t> indices_;
  std::vector<double> values_;
};

/// Borrowed view of a contiguous block of CSR rows — the per-partition unit
/// the batch gradient kernels (linalg/batch.hpp) consume.  `row_ptr` spans
/// `rows()+1` absolute offsets into the parent's `col_idx`/`values` arrays,
/// so row lookups cost two loads and no bounds re-checks.  Local row ids are
/// relative to the slice (slice row 0 = parent row `begin`).
class CsrRowSlice {
 public:
  CsrRowSlice() = default;
  CsrRowSlice(std::span<const std::size_t> row_ptr,
              std::span<const std::uint32_t> col_idx, std::span<const double> values,
              std::size_t cols)
      : row_ptr_(row_ptr), col_idx_(col_idx), values_(values), cols_(cols) {
    assert(!row_ptr_.empty());
  }

  [[nodiscard]] std::size_t rows() const noexcept { return row_ptr_.size() - 1; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] SparseRowView row(std::size_t local) const noexcept {
    assert(local + 1 < row_ptr_.size());
    const std::size_t begin = row_ptr_[local];
    const std::size_t end = row_ptr_[local + 1];
    return {{col_idx_.data() + begin, end - begin},
            {values_.data() + begin, end - begin}};
  }

  /// Non-zeros in the slice (the batch-kernel work estimate).
  [[nodiscard]] std::size_t nnz() const noexcept {
    return row_ptr_[rows()] - row_ptr_[0];
  }

 private:
  std::span<const std::size_t> row_ptr_;
  std::span<const std::uint32_t> col_idx_;  // whole-matrix array (absolute offsets)
  std::span<const double> values_;          // whole-matrix array (absolute offsets)
  std::size_t cols_ = 0;
};

/// Compressed sparse row matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::size_t rows, std::size_t cols) : cols_(cols), row_ptr_(rows + 1, 0) {}

  /// Builder API: rows must be appended in order.
  void append_row(const SparseVector& row) {
    for (std::size_t k = 0; k < row.nnz(); ++k) {
      assert(row.indices()[k] < cols_);
      col_idx_.push_back(row.indices()[k]);
      values_.push_back(row.values()[k]);
    }
    row_ptr_.push_back(col_idx_.size());
  }

  /// Constructs an empty matrix ready for append_row (0 rows so far).
  [[nodiscard]] static CsrMatrix for_appending(std::size_t cols) {
    CsrMatrix m;
    m.cols_ = cols;
    m.row_ptr_.assign(1, 0);
    return m;
  }

  [[nodiscard]] std::size_t rows() const noexcept { return row_ptr_.size() - 1; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

  [[nodiscard]] double density() const noexcept {
    const double cells = static_cast<double>(rows()) * static_cast<double>(cols());
    return cells == 0.0 ? 0.0 : static_cast<double>(nnz()) / cells;
  }

  [[nodiscard]] SparseRowView row(std::size_t r) const noexcept {
    assert(r + 1 < row_ptr_.size());
    const std::size_t begin = row_ptr_[r];
    const std::size_t end = row_ptr_[r + 1];
    return {{col_idx_.data() + begin, end - begin}, {values_.data() + begin, end - begin}};
  }

  /// View of rows [begin, end) — the partition-slice input of the batch
  /// kernels. The view borrows this matrix's storage.
  [[nodiscard]] CsrRowSlice slice(std::size_t begin, std::size_t end) const noexcept {
    assert(begin <= end && end < row_ptr_.size());
    return CsrRowSlice({row_ptr_.data() + begin, end - begin + 1},
                       {col_idx_.data(), col_idx_.size()},
                       {values_.data(), values_.size()}, cols_);
  }

  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return col_idx_.size() * sizeof(std::uint32_t) + values_.size() * sizeof(double) +
           row_ptr_.size() * sizeof(std::size_t);
  }

 private:
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
};

/// Builds a CSR matrix from per-row sparse vectors.
[[nodiscard]] CsrMatrix csr_from_rows(const std::vector<SparseVector>& rows,
                                      std::size_t cols);

/// Structural invariants: monotone row_ptr, in-range sorted column indices.
/// Returns true when the matrix is well formed.
[[nodiscard]] bool csr_is_well_formed(const CsrMatrix& m);

}  // namespace asyncml::linalg
