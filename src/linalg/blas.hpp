#pragma once

// Level-1/2 kernels over dense and sparse containers.
//
// These are the only numeric kernels the optimizers touch; both the dense and
// sparse paths match what Breeze/netlib provided in the paper's Scala stack.
// All functions are free, take const views, and are safe to call concurrently
// on disjoint outputs.

#include <span>

#include "linalg/dense_matrix.hpp"
#include "linalg/dense_vector.hpp"
#include "linalg/sparse.hpp"

namespace asyncml::linalg {

/// dot(x, y) for dense spans. Unrolled 4-way for ILP.
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

/// dot of a sparse row with a dense vector.
[[nodiscard]] double dot(const SparseRowView& x, std::span<const double> y);

/// y += a * x (dense).
void axpy(double a, std::span<const double> x, std::span<double> y);

/// y += a * x for sparse x (scatter-add into dense y).
void axpy(double a, const SparseRowView& x, std::span<double> y);

/// x *= a.
void scal(double a, std::span<double> x);

/// Euclidean norm.
[[nodiscard]] double nrm2(std::span<const double> x);

/// Squared Euclidean norm.
[[nodiscard]] double nrm2_squared(std::span<const double> x);

/// out = A * x (dense GEMV, row-major).
void gemv(const DenseMatrix& a, std::span<const double> x, std::span<double> out);

/// out = A * x for CSR A.
void spmv(const CsrMatrix& a, std::span<const double> x, std::span<double> out);

/// Elementwise y = x (sizes must match).
void copy(std::span<const double> x, std::span<double> y);

/// max_i |x_i - y_i|.
[[nodiscard]] double max_abs_diff(std::span<const double> x, std::span<const double> y);

}  // namespace asyncml::linalg
