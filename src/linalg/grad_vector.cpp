#include "linalg/grad_vector.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"

namespace asyncml::linalg {

double expected_union_density(double density, double batch_rows) {
  const double d = std::clamp(density, 0.0, 1.0);
  if (d >= 1.0 || batch_rows <= 0.0) return d;
  return 1.0 - std::pow(1.0 - d, batch_rows);
}

GradVectorConfig resolve_grad_config(GradMode mode, std::size_t dim, double density,
                                     double densify_threshold) {
  GradVectorConfig cfg(dim, densify_threshold, /*dense_start=*/false);
  // Table pre-size hint: the expected batch-union support in coordinates.
  cfg.expected_nnz = static_cast<std::size_t>(
      std::clamp(density, 0.0, 1.0) * static_cast<double>(dim));
  switch (mode) {
    case GradMode::kDense:
      cfg.start_dense = true;
      break;
    case GradMode::kSparse:
      cfg.start_dense = false;
      break;
    case GradMode::kAuto:
      cfg.start_dense = density >= densify_threshold;
      break;
  }
  return cfg;
}

double* GradVector::touch_dense() {
  if (dense_.empty()) dense_.assign(cfg_.dim, 0.0);
  return dense_.data();
}

void GradVector::init_table() {
  // Pre-size to keep the expected batch-union support at <=1/2 load: one
  // allocation instead of a grow-rehash chain from 32 slots (rehashing was
  // 2-3x the probe cost at mid densities). The 5/8 growth rule still
  // applies if the estimate is exceeded.
  // An accumulator densifies past densify_threshold*dim entries, so never
  // pre-size beyond what the sparse phase can actually hold.
  const auto max_sparse_nnz = static_cast<std::size_t>(
      cfg_.densify_threshold * static_cast<double>(cfg_.dim)) + 1;
  const std::size_t target = std::min(cfg_.expected_nnz, max_sparse_nnz);
  std::size_t capacity = kInitialSlots;
  while (capacity < target * 2) capacity *= 2;
  keys_.assign(capacity, kEmptyKey);
  // vals_ slots are zeroed by upsert_slot on insertion, so no value fill is
  // needed — only the key array decides occupancy.
  vals_.resize(capacity);
  mask_ = capacity - 1;
}

void GradVector::grow() {
  std::vector<std::uint32_t> old_keys = std::move(keys_);
  std::vector<double> old_vals = std::move(vals_);
  const std::size_t capacity = old_keys.size() * 2;
  keys_.assign(capacity, kEmptyKey);
  vals_.resize(capacity);  // values are written on (re-)insertion below
  mask_ = capacity - 1;
  for (std::size_t s = 0; s < old_keys.size(); ++s) {
    if (old_keys[s] == kEmptyKey) continue;
    std::size_t slot = hash(old_keys[s]) & mask_;
    while (keys_[slot] != kEmptyKey) slot = (slot + 1) & mask_;
    keys_[slot] = old_keys[s];
    vals_[slot] = old_vals[s];
  }
}

void GradVector::densify() {
  double* d = touch_dense();
  for (std::size_t s = 0; s < keys_.size(); ++s) {
    if (keys_[s] != kEmptyKey) d[keys_[s]] += vals_[s];
  }
  keys_.clear();
  vals_.clear();
  nnz_ = 0;
  mask_ = 0;
  dense_mode_ = true;
}

void GradVector::axpy(double a, std::span<const double> x) {
  assert(configured() && x.size() == cfg_.dim);
  if (!dense_mode_) densify();
  linalg::axpy(a, x, {touch_dense(), cfg_.dim});
}

void GradVector::assign_dense(std::span<const double> v) {
  assert(configured() && v.size() == cfg_.dim);
  dense_.assign(v.begin(), v.end());
  keys_.clear();
  vals_.clear();
  nnz_ = 0;
  mask_ = 0;
  dense_mode_ = true;
}

void GradVector::add(const GradVector& other) {
  if (!other.configured()) return;
  if (!configured()) {
    *this = other;
    return;
  }
  assert(cfg_.dim == other.cfg_.dim && "GradVector::add: dimension mismatch");
  if (other.dense_mode_) {
    if (other.dense_.empty()) return;  // dense zero contributes nothing
    if (!dense_mode_) densify();
    linalg::axpy(1.0, {other.dense_.data(), other.dense_.size()},
                 {touch_dense(), cfg_.dim});
    return;
  }
  if (dense_mode_) {
    if (other.nnz_ == 0) return;
    double* d = touch_dense();
    other.for_each([&](std::uint32_t k, double v) { d[k] += v; });
    return;
  }
  if (other.nnz_ == 0) return;
  if (keys_.empty()) init_table();
  other.for_each([&](std::uint32_t k, double v) { sparse_add(k, v); });
  maybe_densify();
}

void GradVector::set(std::uint32_t index, double value) {
  assert(configured() && index < cfg_.dim && "GradVector::set before ensure()");
  if (dense_mode_) {
    touch_dense()[index] = value;
    return;
  }
  if (keys_.empty()) init_table();
  vals_[upsert_slot(index)] = value;
  maybe_densify();
}

void GradVector::scale_into(double a, std::span<double> y) const {
  assert(y.size() == cfg_.dim);
  if (dense_mode_) {
    if (!dense_.empty()) linalg::axpy(a, {dense_.data(), dense_.size()}, y);
    return;
  }
  for (std::size_t s = 0; s < keys_.size(); ++s) {
    if (keys_[s] != kEmptyKey) y[keys_[s]] += a * vals_[s];
  }
}

void GradVector::overwrite_into(std::span<double> y) const {
  assert(y.size() == cfg_.dim);
  if (dense_mode_) {
    if (dense_.empty()) {
      std::fill(y.begin(), y.end(), 0.0);  // dense zero specifies every coord
    } else {
      std::copy(dense_.begin(), dense_.end(), y.begin());
    }
    return;
  }
  for (std::size_t s = 0; s < keys_.size(); ++s) {
    if (keys_[s] != kEmptyKey) y[keys_[s]] = vals_[s];
  }
}

std::vector<GradVector> GradVector::split_ranges(
    std::span<const std::uint32_t> bounds) const {
  assert(configured() && "GradVector::split_ranges before ensure()");
  assert(bounds.size() >= 2 && bounds.front() == 0 &&
         bounds.back() == cfg_.dim && "bounds must be [0, …, dim]");
  const std::size_t pieces = bounds.size() - 1;
  std::vector<GradVector> out;
  out.reserve(pieces);
  for (std::size_t s = 0; s < pieces; ++s) {
    // Pieces preserve the source's representation; sparse pieces get a
    // never-densify threshold so the split cannot change the encoding.
    GradVectorConfig piece_cfg(bounds[s + 1] - bounds[s],
                               dense_mode_ ? cfg_.densify_threshold : 1.01,
                               /*dense_start=*/dense_mode_);
    out.emplace_back(piece_cfg);
  }
  if (dense_mode_) {
    if (!dense_.empty()) {
      for (std::size_t s = 0; s < pieces; ++s) {
        out[s].assign_dense({dense_.data() + bounds[s], out[s].dim()});
      }
    }
    return out;
  }
  for_each([&](std::uint32_t k, double v) {
    const auto it = std::upper_bound(bounds.begin(), bounds.end(), k);
    const auto s = static_cast<std::size_t>(it - bounds.begin()) - 1;
    out[s].set(k - bounds[s], v);
  });
  return out;
}

void GradVector::merge_from(const GradVector& piece, std::uint32_t offset) {
  assert(configured() && "GradVector::merge_from before ensure()");
  assert(offset + piece.dim() <= cfg_.dim && "piece exceeds target range");
  if (piece.nnz() == 0) return;
  if (dense_mode_) {
    double* d = touch_dense();
    piece.for_each([&](std::uint32_t k, double v) { d[offset + k] += v; });
    return;
  }
  if (keys_.empty()) init_table();
  piece.for_each([&](std::uint32_t k, double v) { sparse_add(offset + k, v); });
  maybe_densify();
}

DenseVector GradVector::to_dense() const {
  DenseVector out(cfg_.dim);
  scale_into(1.0, out.span());
  return out;
}

double GradVector::value_at(std::size_t i) const {
  assert(i < cfg_.dim);
  if (dense_mode_) return dense_.empty() ? 0.0 : dense_[i];
  if (keys_.empty()) return 0.0;
  const auto key = static_cast<std::uint32_t>(i);
  std::size_t slot = hash(key) & mask_;
  while (keys_[slot] != kEmptyKey) {
    if (keys_[slot] == key) return vals_[slot];
    slot = (slot + 1) & mask_;
  }
  return 0.0;
}

void GradVector::set_zero() {
  if (!dense_.empty()) std::fill(dense_.begin(), dense_.end(), 0.0);
  if (!keys_.empty()) std::fill(keys_.begin(), keys_.end(), kEmptyKey);
  nnz_ = 0;
  dense_mode_ = cfg_.start_dense;
}

}  // namespace asyncml::linalg
