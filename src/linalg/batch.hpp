#pragma once

// Fused batch gradient kernels: the one-pass margin / transposed-accumulate
// layer the optimizers' task bodies run on (the Breeze/netlib batch kernels
// of the paper's Scala stack, ASYNC §2).
//
// All kernels take a *block view* of one partition's rows (DenseRowBlock or
// CsrRowSlice) plus the mini-batch's selected local row ids, and are exactly
// reassociation-free with respect to the per-row reference path:
//
//   * `gemv_rows` / `spmv_rows` compute margin[i] = <row(rows[i]), x> with the
//     identical per-row reduction order as linalg::dot (dense: 4 strided
//     partial sums folded (s0+s1)+(s2+s3); sparse: one sequential sum), so
//     each margin is bit-identical to the per-row dot.
//   * `accumulate_rows` computes acc += Σ_i coeffs[i]·row(rows[i]) visiting
//     rows in index order per coordinate — the same sequence of rounded
//     multiply-adds as per-row axpy calls — so gradients are bit-identical
//     to the per-row path.  Multi-row blocking only fuses the *passes over
//     acc*, never the order of additions within a coordinate.
//
// The dense kernels carry an AVX2 micro-kernel behind runtime dispatch
// (__builtin_cpu_supports): lane k of a 4-lane vector accumulator is exactly
// the scalar path's partial sum s_k, and FMA contraction is never used (it
// would round once where the scalar path rounds twice), so vector and scalar
// variants produce identical bits.  Safe to call concurrently on disjoint
// outputs.

#include <cstdint>
#include <span>

#include "linalg/dense_matrix.hpp"
#include "linalg/grad_vector.hpp"
#include "linalg/sparse.hpp"

namespace asyncml::linalg {

/// margins[i] = <a.row(rows[i]), x> for a dense row block.
/// rows.size() == margins.size(); x.size() == a.cols().
void gemv_rows(const DenseRowBlock& a, std::span<const std::uint32_t> rows,
               std::span<const double> x, std::span<double> margins);

/// margins[i] = <a.row(rows[i]), x> for a CSR row slice.
void spmv_rows(const CsrRowSlice& a, std::span<const std::uint32_t> rows,
               std::span<const double> x, std::span<double> margins);

/// acc += Σ_i coeffs[i] · a.row(rows[i]) (the transposed accumulate
/// X_Bᵀ·coeffs), preserving per-coordinate addition order across rows.
void accumulate_rows(const DenseRowBlock& a, std::span<const std::uint32_t> rows,
                     std::span<const double> coeffs, std::span<double> acc);

/// Sparse-row scatter into a dense accumulator (dense-mode gradient).
void accumulate_rows(const CsrRowSlice& a, std::span<const std::uint32_t> rows,
                     std::span<const double> coeffs, std::span<double> acc);

/// Sparse-row scatter into an adaptive GradVector (sparse-mode gradient;
/// exactly the per-row g.axpy sequence, including any mid-batch densify).
void accumulate_rows(const CsrRowSlice& a, std::span<const std::uint32_t> rows,
                     std::span<const double> coeffs, GradVector& g);

}  // namespace asyncml::linalg
