#include "linalg/blas.hpp"

#include <cassert>
#include <cmath>

namespace asyncml::linalg {

double dot(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += x[i] * y[i];
    s1 += x[i + 1] * y[i + 1];
    s2 += x[i + 2] * y[i + 2];
    s3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) s0 += x[i] * y[i];
  return (s0 + s1) + (s2 + s3);
}

double dot(const SparseRowView& x, std::span<const double> y) {
  double s = 0.0;
  for (std::size_t k = 0; k < x.nnz(); ++k) {
    assert(x.indices[k] < y.size());
    s += x.values[k] * y[x.indices[k]];
  }
  return s;
}

void axpy(double a, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void axpy(double a, const SparseRowView& x, std::span<double> y) {
  for (std::size_t k = 0; k < x.nnz(); ++k) {
    assert(x.indices[k] < y.size());
    y[x.indices[k]] += a * x.values[k];
  }
}

void scal(double a, std::span<double> x) {
  for (double& v : x) v *= a;
}

double nrm2(std::span<const double> x) { return std::sqrt(nrm2_squared(x)); }

double nrm2_squared(std::span<const double> x) { return dot(x, x); }

void gemv(const DenseMatrix& a, std::span<const double> x, std::span<double> out) {
  assert(x.size() == a.cols() && out.size() == a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) out[r] = dot(a.row(r), x);
}

void spmv(const CsrMatrix& a, std::span<const double> x, std::span<double> out) {
  assert(x.size() == a.cols() && out.size() == a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) out[r] = dot(a.row(r), x);
}

void copy(std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i];
}

double max_abs_diff(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  double m = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) m = std::max(m, std::abs(x[i] - y[i]));
  return m;
}

}  // namespace asyncml::linalg
