#pragma once

// Dense double-precision vector.
//
// The model parameter `w`, gradients, and dense feature rows are
// DenseVectors.  The class is a thin owning wrapper over contiguous storage;
// all arithmetic lives in blas.hpp as free functions (mirroring the paper's
// Breeze/netlib split between containers and kernels).

#include <cassert>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "support/aligned.hpp"

namespace asyncml::linalg {

class DenseVector {
 public:
  DenseVector() = default;
  explicit DenseVector(std::size_t size, double fill = 0.0) : data_(size, fill) {}
  DenseVector(std::initializer_list<double> init) : data_(init.begin(), init.end()) {}
  explicit DenseVector(const std::vector<double>& data)
      : data_(data.begin(), data.end()) {}

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator[](std::size_t i) noexcept {
    assert(i < data_.size());
    return data_[i];
  }
  [[nodiscard]] double operator[](std::size_t i) const noexcept {
    assert(i < data_.size());
    return data_[i];
  }

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  [[nodiscard]] std::span<double> span() noexcept { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const double> span() const noexcept {
    return {data_.data(), data_.size()};
  }

  void resize(std::size_t size, double fill = 0.0) { data_.resize(size, fill); }
  void fill(double value) { std::fill(data_.begin(), data_.end(), value); }
  void set_zero() { fill(0.0); }

  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return data_.size() * sizeof(double);
  }

  auto begin() noexcept { return data_.begin(); }
  auto end() noexcept { return data_.end(); }
  auto begin() const noexcept { return data_.begin(); }
  auto end() const noexcept { return data_.end(); }

  friend bool operator==(const DenseVector& a, const DenseVector& b) = default;

  /// Debug rendering, e.g. "[1, 2, 3]" (truncated beyond 8 entries).
  [[nodiscard]] std::string to_string() const;

 private:
  support::AlignedVector<double> data_;  // 64B-aligned for the AVX2 kernels
};

/// Exact bitwise equality (size + every double's bit pattern) — the check
/// behind the scheduler's placement-independence guarantees
/// (docs/SCHEDULING.md, "Determinism"). Stricter than operator== for the
/// guarantee's purpose: -0.0 differs from 0.0 and NaNs compare equal to
/// themselves, so two runs pass iff they took the identical FP path.
[[nodiscard]] inline bool bitwise_equal(const DenseVector& a, const DenseVector& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

}  // namespace asyncml::linalg
