#pragma once

// On-disk blob format of the content-addressed tier (docs/DURABILITY.md).
//
// A blob file is one payload wrapped in a 16-byte integrity header:
//
//   offset  size  field
//   ------  ----  --------------------------------------------------------
//        0     8  magic   "AMLBLOB1"
//        8     4  u32 LE  payload length in bytes
//       12     4  u32 LE  CRC-32 (IEEE) of the payload bytes
//       16     n  payload
//
// The file name is the lowercase hex SHA-256 of the *payload* (not the
// header), so the name is the content address: identical payloads share one
// object, and a reader can prove it got back exactly what was written by
// re-hashing.  CRC catches bit rot cheaply; the hash check catches a file
// whose name lies about its content.
//
// decode_blob is a pure function over bytes — the fuzz battery
// (tests/store/disk_fuzz_test.cpp) drives it with torn files, lying lengths,
// and bit flips: every malformed input must return a non-OK Status (never
// crash, never silently accept).

#include <cstdint>
#include <span>
#include <vector>

#include "support/sha256.hpp"
#include "support/status.hpp"

namespace asyncml::store::disk {

inline constexpr std::size_t kBlobHeaderBytes = 16;

/// Payload -> complete blob file image (header + payload).
[[nodiscard]] std::vector<std::uint8_t> encode_blob(
    std::span<const std::uint8_t> payload);

/// Validates a blob file image and returns a view of its payload (into
/// `file`). Checks, in order: minimum length, magic, claimed length against
/// the actual file size (both directions — a lying length never reads out of
/// bounds or silently drops a tail), and the payload CRC.
[[nodiscard]] support::StatusOr<std::span<const std::uint8_t>> decode_blob(
    std::span<const std::uint8_t> file);

/// decode_blob + content-address check: the payload must hash to `expected`.
[[nodiscard]] support::StatusOr<std::span<const std::uint8_t>> decode_blob(
    std::span<const std::uint8_t> file, const support::Sha256Digest& expected);

}  // namespace asyncml::store::disk
