#pragma once

// Append-only manifest of the disk tier (docs/DURABILITY.md §manifest).
//
// The manifest is the tier's commit log: blobs under objects/ are anonymous
// content until a manifest record names them.  File grammar:
//
//   file    := "AMLMANI1" record*
//   record  := u8 type | u32 LE body_len | u32 LE crc32(body) | body
//
// Record bodies (all integers LE, digests raw 32 bytes):
//
//   type 1  publish     u32 shard | u64 version | u64 parent | u8 flags
//                       (bit0 has_base, bit1 has_delta) | 32B base_digest |
//                       32B delta_digest | u64 base_bytes | u64 delta_bytes
//   type 2  gc_floor    u32 shard | u64 floor
//   type 3  checkpoint  u64 update_index | u64 model_version | u64 round |
//                       32B model_digest | u32 n_counters |
//                       (u32 name_len | name | u64 value)* | u32 n_aux |
//                       (u32 name_len | name | 32B digest)*
//
// The loader replays records sequentially and is *torn-tail tolerant*: a
// truncated or CRC-failing record ends the replay at the last intact record
// (`torn_tail` set, `valid_bytes` = intact prefix length) — exactly what a
// crash mid-append leaves behind, and not an error.  An unknown type with a
// valid CRC is skipped (forward compatibility).  Duplicate (shard, version)
// publish records resolve last-wins, mirroring ModelStore::publish replace
// semantics.
//
// A resuming writer MUST truncate the file to `valid_bytes` before appending:
// appending after a torn tail would hide every post-restart record from any
// future replay that stops at the tear.

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "support/sha256.hpp"
#include "support/status.hpp"

namespace asyncml::store::disk {

inline constexpr std::size_t kManifestMagicBytes = 8;
inline constexpr std::size_t kRecordHeaderBytes = 9;  // u8 type + u32 len + u32 crc

/// One (shard, version) → blobs binding.  Zero digest = no such payload.
struct PublishRecord {
  std::uint32_t shard = 0;
  std::uint64_t version = 0;
  std::uint64_t parent = 0;
  bool has_base = false;
  bool has_delta = false;
  support::Sha256Digest base_digest{};
  support::Sha256Digest delta_digest{};
  std::uint64_t base_bytes = 0;
  std::uint64_t delta_bytes = 0;
};

/// One durable solver checkpoint.  The model (and each auxiliary slot) lives
/// in the blob store as an envelope-encoded DenseVector payload; counters are
/// small enough to inline.
struct CheckpointRecord {
  std::uint64_t update_index = 0;
  std::uint64_t model_version = 0;
  std::uint64_t round = 0;
  support::Sha256Digest model_digest{};
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, support::Sha256Digest>> aux;
};

/// Result of replaying a manifest file.
struct ManifestState {
  /// Last-wins publish records, per shard, version-ordered.
  std::map<std::uint32_t, std::map<std::uint64_t, PublishRecord>> shards;
  /// Highest gc_floor record seen per shard.
  std::map<std::uint32_t, std::uint64_t> gc_floors;
  /// Checkpoint records in append order (restore walks them newest-first).
  std::vector<CheckpointRecord> checkpoints;
  std::uint64_t records = 0;          ///< intact records replayed
  std::uint64_t skipped_unknown = 0;  ///< valid-CRC records of unknown type
  bool torn_tail = false;             ///< file ended mid-record
  std::uint64_t valid_bytes = 0;      ///< intact prefix; truncate here to resume
};

/// Serializes one record (header + body) ready to append.
[[nodiscard]] std::vector<std::uint8_t> encode_publish_record(const PublishRecord& r);
[[nodiscard]] std::vector<std::uint8_t> encode_gc_floor_record(std::uint32_t shard,
                                                               std::uint64_t floor);
[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint_record(
    const CheckpointRecord& r);

/// The 8-byte file header a fresh manifest starts with.
[[nodiscard]] std::vector<std::uint8_t> manifest_header();

/// Replays a complete manifest file image.  Only a bad/missing file header is
/// an error; torn tails and unknown record types are tolerated (see above).
/// The decoder never reads out of bounds regardless of input — the fuzz
/// battery (tests/store/disk_fuzz_test.cpp) holds it to that.
[[nodiscard]] support::StatusOr<ManifestState> decode_manifest(
    std::span<const std::uint8_t> file);

/// Append-only manifest writer over one file descriptor.
class ManifestWriter {
 public:
  ManifestWriter() = default;
  ~ManifestWriter();

  ManifestWriter(const ManifestWriter&) = delete;
  ManifestWriter& operator=(const ManifestWriter&) = delete;

  /// Opens `path` for appending, creating it (with the file header) when
  /// absent.  `truncate_to` > 0 first truncates the file to that length —
  /// the resume path cutting off a torn tail.  `do_fsync` syncs after every
  /// append.
  [[nodiscard]] support::Status open(const std::string& path,
                                     std::uint64_t truncate_to, bool do_fsync);

  /// Appends one encoded record (encode_*_record output), fsyncing per `open`.
  [[nodiscard]] support::Status append(std::span<const std::uint8_t> record);

  void close();
  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
  bool fsync_ = true;
};

}  // namespace asyncml::store::disk
