#pragma once

// DiskTier: the durable tier beneath the model store (docs/DURABILITY.md).
//
// Composes the content-addressed BlobStore (objects) with the append-only
// manifest (naming) and a byte-budgeted in-memory LRU above both.  The model
// plane talks to it in payload terms:
//
//   put_payload    engine::Payload -> envelope bytes -> blob, LRU-inserted
//   fetch_payload  digest -> LRU hit | blob read -> decoded Payload
//
// plus manifest appends for publishes, GC floors, and solver checkpoints.
//
// Open modes:
//   kFresh   a new run: any existing MANIFEST is rotated aside (manifest.old.N)
//            so stale records can never leak into the new run's replay; blobs
//            stay — content addressing makes them free dedup hits.
//   kResume  restart-without-replay: the manifest is replayed (torn tail
//            tolerated), truncated to its intact prefix, and `restored()`
//            exposes the replayed state for the store/solver to anchor on.
//
// Thread-safety: put_payload/fetch_payload are safe from any thread (the LRU
// has its own mutex, the blob store is internally synchronized); append_* are
// driver-thread operations like ModelStore::publish.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/fault.hpp"
#include "engine/metrics.hpp"
#include "engine/payload.hpp"
#include "store/disk/blob_store.hpp"
#include "store/disk/manifest.hpp"
#include "store/store_config.hpp"
#include "support/sha256.hpp"
#include "support/status.hpp"

namespace asyncml::store::disk {

enum class OpenMode : std::uint8_t {
  kFresh,   ///< rotate any existing manifest; start an empty log
  kResume,  ///< replay the manifest (truncate torn tail) and expose it
};

class DiskTier {
 public:
  /// Opens (or creates) the tier at `config.dir`. `metrics` may be null — the
  /// tier then counts into a private DiskTierMetrics instance reachable via
  /// metrics(); `faults` may be null (no injection).
  [[nodiscard]] static support::StatusOr<std::unique_ptr<DiskTier>> open(
      DiskTierConfig config, OpenMode mode,
      engine::DiskTierMetrics* metrics = nullptr,
      engine::FaultState* faults = nullptr);

  DiskTier(const DiskTier&) = delete;
  DiskTier& operator=(const DiskTier&) = delete;

  /// Envelope-encodes `payload` and publishes it as a blob. The bytes also
  /// enter the LRU so an immediate fault-in is a memory hit.
  [[nodiscard]] support::StatusOr<support::Sha256Digest> put_payload(
      const engine::Payload& payload);

  /// Materializes the payload stored under `digest`: LRU hit, else a verified
  /// blob read (kDataLoss = quarantined, fall back; kNotFound; kUnavailable).
  [[nodiscard]] support::StatusOr<engine::Payload> fetch_payload(
      const support::Sha256Digest& digest);

  /// Manifest appends (driver thread). Failures are returned, not fatal: a
  /// run degrades to in-memory when the log cannot be extended.
  [[nodiscard]] support::Status append_publish(const PublishRecord& record);
  [[nodiscard]] support::Status append_gc_floor(std::uint32_t shard,
                                                std::uint64_t floor);
  [[nodiscard]] support::Status append_checkpoint(const CheckpointRecord& record);

  /// Manifest state replayed at open (empty in kFresh mode).
  [[nodiscard]] const ManifestState& restored() const noexcept { return restored_; }

  [[nodiscard]] BlobStore& blobs() noexcept { return *blobs_; }
  [[nodiscard]] const std::string& dir() const noexcept { return cfg_.dir; }
  [[nodiscard]] const DiskTierConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] engine::DiskTierMetrics& metrics() noexcept { return *metrics_; }

 private:
  DiskTier(DiskTierConfig config, engine::DiskTierMetrics* metrics,
           engine::FaultState* faults);

  [[nodiscard]] support::Status init(OpenMode mode);

  // -- LRU over decoded-envelope bytes, keyed by content digest ------------
  struct DigestHash {
    std::size_t operator()(const support::Sha256Digest& d) const noexcept {
      std::size_t h = 0;
      for (std::size_t i = 0; i < sizeof(h); ++i) {
        h = h << 8 | d[i];
      }
      return h;
    }
  };
  struct LruEntry {
    support::Sha256Digest digest{};
    std::vector<std::uint8_t> bytes;
  };

  void lru_insert(const support::Sha256Digest& digest,
                  std::vector<std::uint8_t> bytes);
  [[nodiscard]] bool lru_get(const support::Sha256Digest& digest,
                             std::vector<std::uint8_t>& out);

  DiskTierConfig cfg_;
  engine::DiskTierMetrics own_;        ///< used when no external metrics given
  engine::DiskTierMetrics* metrics_;   ///< never null after construction
  std::unique_ptr<BlobStore> blobs_;
  ManifestWriter manifest_;
  ManifestState restored_;

  std::mutex lru_mutex_;
  std::list<LruEntry> lru_;  ///< front = most recent
  std::unordered_map<support::Sha256Digest, std::list<LruEntry>::iterator, DigestHash>
      lru_index_;
  std::size_t lru_bytes_ = 0;
};

}  // namespace asyncml::store::disk
