#include "store/disk/blob.hpp"

#include <cstring>

#include "support/crc32.hpp"

namespace asyncml::store::disk {

using support::Status;
using support::StatusCode;
using support::StatusOr;

namespace {

constexpr char kMagic[8] = {'A', 'M', 'L', 'B', 'L', 'O', 'B', '1'};

void put_u32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

std::vector<std::uint8_t> encode_blob(std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> file(kBlobHeaderBytes + payload.size());
  std::memcpy(file.data(), kMagic, sizeof(kMagic));
  put_u32le(file.data() + 8, static_cast<std::uint32_t>(payload.size()));
  put_u32le(file.data() + 12, support::crc32(payload));
  if (!payload.empty()) {
    std::memcpy(file.data() + kBlobHeaderBytes, payload.data(), payload.size());
  }
  return file;
}

StatusOr<std::span<const std::uint8_t>> decode_blob(
    std::span<const std::uint8_t> file) {
  if (file.size() < kBlobHeaderBytes) {
    return Status(StatusCode::kDataLoss, "blob: truncated header");
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status(StatusCode::kDataLoss, "blob: bad magic");
  }
  const std::uint32_t claimed = get_u32le(file.data() + 8);
  const std::size_t actual = file.size() - kBlobHeaderBytes;
  if (claimed != actual) {
    return Status(StatusCode::kDataLoss,
                  "blob: payload length " + std::to_string(claimed) +
                      " disagrees with file size " + std::to_string(actual));
  }
  const std::span<const std::uint8_t> payload = file.subspan(kBlobHeaderBytes);
  if (support::crc32(payload) != get_u32le(file.data() + 12)) {
    return Status(StatusCode::kDataLoss, "blob: payload CRC mismatch");
  }
  return payload;
}

StatusOr<std::span<const std::uint8_t>> decode_blob(
    std::span<const std::uint8_t> file, const support::Sha256Digest& expected) {
  auto payload = decode_blob(file);
  if (!payload.is_ok()) return payload;
  if (support::sha256(payload.value()) != expected) {
    return Status(StatusCode::kDataLoss, "blob: content hash mismatch");
  }
  return payload;
}

}  // namespace asyncml::store::disk
