#include "store/disk/manifest.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/crc32.hpp"

namespace asyncml::store::disk {

using support::Status;
using support::StatusCode;
using support::StatusOr;

namespace {

constexpr char kMagic[kManifestMagicBytes] = {'A', 'M', 'L', 'M', 'A', 'N', 'I', '1'};

constexpr std::uint8_t kTypePublish = 1;
constexpr std::uint8_t kTypeGcFloor = 2;
constexpr std::uint8_t kTypeCheckpoint = 3;

/// Sequential little-endian byte writer appending to a vector.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void digest(const support::Sha256Digest& d) {
    out_.insert(out_.end(), d.begin(), d.end());
  }
  void name(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked sequential reader over a record body.  Every accessor
/// reports success so a lying length can never read past the body.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> body) : body_(body) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > body_.size()) return false;
    v = body_[pos_++];
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > body_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(body_[pos_++]) << (8 * i);
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > body_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(body_[pos_++]) << (8 * i);
    return true;
  }
  bool digest(support::Sha256Digest& d) {
    if (pos_ + d.size() > body_.size()) return false;
    std::memcpy(d.data(), body_.data() + pos_, d.size());
    pos_ += d.size();
    return true;
  }
  bool name(std::string& s) {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (pos_ + len > body_.size()) return false;
    s.assign(reinterpret_cast<const char*>(body_.data() + pos_), len);
    pos_ += len;
    return true;
  }
  [[nodiscard]] bool exhausted() const { return pos_ == body_.size(); }

 private:
  std::span<const std::uint8_t> body_;
  std::size_t pos_ = 0;
};

std::vector<std::uint8_t> finish_record(std::uint8_t type,
                                        const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> record;
  record.reserve(kRecordHeaderBytes + body.size());
  Writer w(record);
  w.u8(type);
  w.u32(static_cast<std::uint32_t>(body.size()));
  w.u32(support::crc32(body));
  record.insert(record.end(), body.begin(), body.end());
  return record;
}

bool decode_publish(Reader& r, PublishRecord& out) {
  std::uint8_t flags = 0;
  if (!r.u32(out.shard) || !r.u64(out.version) || !r.u64(out.parent) ||
      !r.u8(flags) || !r.digest(out.base_digest) || !r.digest(out.delta_digest) ||
      !r.u64(out.base_bytes) || !r.u64(out.delta_bytes)) {
    return false;
  }
  out.has_base = (flags & 0x1) != 0;
  out.has_delta = (flags & 0x2) != 0;
  return r.exhausted();
}

bool decode_gc_floor(Reader& r, std::uint32_t& shard, std::uint64_t& floor) {
  return r.u32(shard) && r.u64(floor) && r.exhausted();
}

bool decode_checkpoint(Reader& r, CheckpointRecord& out) {
  if (!r.u64(out.update_index) || !r.u64(out.model_version) || !r.u64(out.round) ||
      !r.digest(out.model_digest)) {
    return false;
  }
  std::uint32_t n = 0;
  if (!r.u32(n)) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name;
    std::uint64_t value = 0;
    if (!r.name(name) || !r.u64(value)) return false;
    out.counters.emplace_back(std::move(name), value);
  }
  if (!r.u32(n)) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name;
    support::Sha256Digest digest{};
    if (!r.name(name) || !r.digest(digest)) return false;
    out.aux.emplace_back(std::move(name), digest);
  }
  return r.exhausted();
}

}  // namespace

std::vector<std::uint8_t> manifest_header() {
  return std::vector<std::uint8_t>(kMagic, kMagic + kManifestMagicBytes);
}

std::vector<std::uint8_t> encode_publish_record(const PublishRecord& r) {
  std::vector<std::uint8_t> body;
  Writer w(body);
  w.u32(r.shard);
  w.u64(r.version);
  w.u64(r.parent);
  w.u8(static_cast<std::uint8_t>((r.has_base ? 0x1 : 0x0) | (r.has_delta ? 0x2 : 0x0)));
  w.digest(r.base_digest);
  w.digest(r.delta_digest);
  w.u64(r.base_bytes);
  w.u64(r.delta_bytes);
  return finish_record(kTypePublish, body);
}

std::vector<std::uint8_t> encode_gc_floor_record(std::uint32_t shard,
                                                 std::uint64_t floor) {
  std::vector<std::uint8_t> body;
  Writer w(body);
  w.u32(shard);
  w.u64(floor);
  return finish_record(kTypeGcFloor, body);
}

std::vector<std::uint8_t> encode_checkpoint_record(const CheckpointRecord& r) {
  std::vector<std::uint8_t> body;
  Writer w(body);
  w.u64(r.update_index);
  w.u64(r.model_version);
  w.u64(r.round);
  w.digest(r.model_digest);
  w.u32(static_cast<std::uint32_t>(r.counters.size()));
  for (const auto& [name, value] : r.counters) {
    w.name(name);
    w.u64(value);
  }
  w.u32(static_cast<std::uint32_t>(r.aux.size()));
  for (const auto& [name, digest] : r.aux) {
    w.name(name);
    w.digest(digest);
  }
  return finish_record(kTypeCheckpoint, body);
}

StatusOr<ManifestState> decode_manifest(std::span<const std::uint8_t> file) {
  if (file.size() < kManifestMagicBytes ||
      std::memcmp(file.data(), kMagic, kManifestMagicBytes) != 0) {
    return Status(StatusCode::kDataLoss, "manifest: bad or missing file header");
  }
  ManifestState state;
  std::size_t pos = kManifestMagicBytes;
  state.valid_bytes = pos;
  while (pos < file.size()) {
    // A record that does not fully fit (header or body) is a torn tail, not
    // an error: stop at the last intact record.
    if (pos + kRecordHeaderBytes > file.size()) {
      state.torn_tail = true;
      break;
    }
    const std::uint8_t type = file[pos];
    std::uint32_t body_len = 0;
    std::uint32_t crc = 0;
    for (int i = 0; i < 4; ++i) {
      body_len |= static_cast<std::uint32_t>(file[pos + 1 + i]) << (8 * i);
      crc |= static_cast<std::uint32_t>(file[pos + 5 + i]) << (8 * i);
    }
    if (pos + kRecordHeaderBytes + body_len > file.size()) {
      state.torn_tail = true;
      break;
    }
    const std::span<const std::uint8_t> body =
        file.subspan(pos + kRecordHeaderBytes, body_len);
    if (support::crc32(body) != crc) {
      state.torn_tail = true;
      break;
    }
    Reader r(body);
    bool intact = true;
    switch (type) {
      case kTypePublish: {
        PublishRecord rec;
        intact = decode_publish(r, rec);
        if (intact) state.shards[rec.shard][rec.version] = rec;  // last wins
        break;
      }
      case kTypeGcFloor: {
        std::uint32_t shard = 0;
        std::uint64_t floor = 0;
        intact = decode_gc_floor(r, shard, floor);
        if (intact) {
          auto& slot = state.gc_floors[shard];
          if (floor > slot) slot = floor;
        }
        break;
      }
      case kTypeCheckpoint: {
        CheckpointRecord rec;
        intact = decode_checkpoint(r, rec);
        if (intact) state.checkpoints.push_back(std::move(rec));
        break;
      }
      default:
        // Unknown type with a valid CRC: a newer writer's record. Skip it.
        ++state.skipped_unknown;
        break;
    }
    if (!intact) {
      // Valid CRC but a malformed body is real corruption, not a torn tail;
      // still stop here — nothing after an undecodable record can be trusted
      // to mean what it says.
      state.torn_tail = true;
      break;
    }
    ++state.records;
    pos += kRecordHeaderBytes + body_len;
    state.valid_bytes = pos;
  }
  return state;
}

ManifestWriter::~ManifestWriter() { close(); }

Status ManifestWriter::open(const std::string& path, std::uint64_t truncate_to,
                            bool do_fsync) {
  close();
  fsync_ = do_fsync;
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status(StatusCode::kUnavailable,
                  "manifest: open " + path + ": " + std::strerror(errno));
  }
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) {
    close();
    return Status(StatusCode::kUnavailable,
                  "manifest: lseek " + path + ": " + std::strerror(errno));
  }
  if (truncate_to > 0 && static_cast<std::uint64_t>(size) > truncate_to) {
    if (::ftruncate(fd_, static_cast<off_t>(truncate_to)) != 0) {
      const int err = errno;
      close();
      return Status(StatusCode::kUnavailable,
                    "manifest: ftruncate " + path + ": " + std::strerror(err));
    }
  }
  if (size == 0) {
    const std::vector<std::uint8_t> header = manifest_header();
    if (Status s = append(header); !s.is_ok()) {
      close();
      return s;
    }
  }
  return Status::ok();
}

Status ManifestWriter::append(std::span<const std::uint8_t> record) {
  if (fd_ < 0) {
    return Status(StatusCode::kFailedPrecondition, "manifest: writer not open");
  }
  std::size_t written = 0;
  while (written < record.size()) {
    const ssize_t n = ::write(fd_, record.data() + written, record.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status(StatusCode::kUnavailable,
                    std::string("manifest: append: ") + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  if (fsync_ && ::fsync(fd_) != 0) {
    return Status(StatusCode::kUnavailable,
                  std::string("manifest: fsync: ") + std::strerror(errno));
  }
  return Status::ok();
}

void ManifestWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace asyncml::store::disk
