#pragma once

// Content-addressed blob store: the object half of the disk tier.
//
// Layout under the root directory:
//
//   objects/<sha256-hex>   published blobs (blob.hpp format)
//   tmp/                   in-flight writes; publish = fsync + atomic rename
//   quarantine/<hex>[.n]   blobs that failed an integrity check on read
//
// put() is crash-safe by construction: the blob is staged in tmp/ and only
// an atomic rename makes it visible under objects/, so a reader never
// observes a partially written object *name* (a torn write that loses the
// fsync race is exactly what the header CRC + hash verification on read
// catch).  Content addressing makes writes idempotent: an existing object of
// the right size is a free dedup hit.
//
// get() verifies header CRC and the sha256 content address on every read; a
// corrupt or truncated blob is moved into quarantine/ (kept for post-mortem,
// never re-served) and surfaces as kDataLoss so the caller can fall back to
// an intact ancestor.  Transient failures (injected fail_write/fail_read)
// surface as kUnavailable and are retried with bounded exponential backoff
// per DiskTierConfig::max_attempts.
//
// Fault seams (engine/fault.hpp kDiskFailWrite/kDiskTornWrite/
// kDiskCorruptBlob/kDiskFailRead) are evaluated here, once per attempt, so
// chaos plans exercise exactly the failure surface real disks have.

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "engine/fault.hpp"
#include "engine/metrics.hpp"
#include "store/store_config.hpp"
#include "support/sha256.hpp"
#include "support/status.hpp"

namespace asyncml::store::disk {

class BlobStore {
 public:
  /// `metrics` may be null (a standalone store counts nowhere); `faults` may
  /// be null (no injection). Call init() before any put/get.
  BlobStore(std::string root, DiskTierConfig config,
            engine::DiskTierMetrics* metrics = nullptr,
            engine::FaultState* faults = nullptr);

  BlobStore(const BlobStore&) = delete;
  BlobStore& operator=(const BlobStore&) = delete;

  /// Creates objects/, tmp/, and quarantine/ under the root.
  [[nodiscard]] support::Status init();

  /// Publishes `payload` and returns its content address. Idempotent;
  /// kUnavailable after max_attempts transient failures.
  [[nodiscard]] support::StatusOr<support::Sha256Digest> put(
      std::span<const std::uint8_t> payload);

  /// Reads and verifies the payload of `digest`. kNotFound when no such
  /// object exists; kDataLoss when it exists but fails verification (the
  /// object is quarantined first); kUnavailable after transient failures.
  [[nodiscard]] support::StatusOr<std::vector<std::uint8_t>> get(
      const support::Sha256Digest& digest);

  [[nodiscard]] bool contains(const support::Sha256Digest& digest) const;

  [[nodiscard]] std::string object_path(const support::Sha256Digest& digest) const;
  [[nodiscard]] const std::string& root() const noexcept { return root_; }

 private:
  /// Moves a failed object into quarantine/ (never overwrites an earlier
  /// quarantined copy of the same digest).
  void quarantine(const support::Sha256Digest& digest);

  /// One write attempt; `fault` mutates the file image per the seam.
  [[nodiscard]] support::Status write_object(const support::Sha256Digest& digest,
                                             std::span<const std::uint8_t> payload,
                                             engine::DiskWriteFault fault);

  std::string root_;
  DiskTierConfig cfg_;
  engine::DiskTierMetrics* metrics_;
  engine::FaultState* faults_;
  std::uint64_t tmp_seq_ = 0;  ///< unique tmp-file suffix (guarded by seq_mutex_)
  std::mutex seq_mutex_;
};

}  // namespace asyncml::store::disk
