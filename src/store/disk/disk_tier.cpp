#include "store/disk/disk_tier.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <utility>

// Included from the .cpp only: the tier reuses the transport payload
// envelope as its canonical serialization, but store headers must not pull in
// transport (store -> transport -> store would cycle).
#include "telemetry/telemetry.hpp"
#include "transport/wire.hpp"

namespace asyncml::store::disk {

namespace fs = std::filesystem;
using support::Sha256Digest;
using support::Status;
using support::StatusCode;
using support::StatusOr;

DiskTier::DiskTier(DiskTierConfig config, engine::DiskTierMetrics* metrics,
                   engine::FaultState* faults)
    : cfg_(std::move(config)), metrics_(metrics != nullptr ? metrics : &own_) {
  blobs_ = std::make_unique<BlobStore>(cfg_.dir, cfg_, metrics_, faults);
}

StatusOr<std::unique_ptr<DiskTier>> DiskTier::open(DiskTierConfig config,
                                                   OpenMode mode,
                                                   engine::DiskTierMetrics* metrics,
                                                   engine::FaultState* faults) {
  if (config.dir.empty()) {
    return Status(StatusCode::kInvalidArgument, "disk_tier: empty dir");
  }
  std::unique_ptr<DiskTier> tier(new DiskTier(std::move(config), metrics, faults));
  if (Status s = tier->init(mode); !s.is_ok()) return s;
  return tier;
}

Status DiskTier::init(OpenMode mode) {
  if (Status s = blobs_->init(); !s.is_ok()) return s;
  const fs::path manifest_path = fs::path(cfg_.dir) / "MANIFEST";
  std::uint64_t truncate_to = 0;

  std::error_code ec;
  const bool exists = fs::exists(manifest_path, ec);
  if (mode == OpenMode::kFresh && exists) {
    // Rotate, never delete: the old log stays inspectable, and a fresh run
    // must not replay another run's records. Deterministic first-free-N
    // naming keeps restarted chaos runs reproducible.
    for (int n = 0;; ++n) {
      const fs::path old = fs::path(cfg_.dir) / ("manifest.old." + std::to_string(n));
      if (fs::exists(old, ec)) continue;
      fs::rename(manifest_path, old, ec);
      if (ec) {
        return Status(StatusCode::kUnavailable,
                      "disk_tier: rotate manifest: " + ec.message());
      }
      break;
    }
  }
  if (mode == OpenMode::kResume && exists) {
    const int fd = ::open(manifest_path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status(StatusCode::kUnavailable, "disk_tier: open manifest failed");
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Status(StatusCode::kUnavailable, "disk_tier: read manifest failed");
      }
      if (n == 0) break;
      bytes.insert(bytes.end(), buf, buf + n);
    }
    ::close(fd);
    auto state = decode_manifest(bytes);
    if (!state.is_ok()) return state.status();
    restored_ = std::move(state).value();
    truncate_to = restored_.valid_bytes;
  }
  return manifest_.open(manifest_path.string(), truncate_to, cfg_.fsync);
}

StatusOr<Sha256Digest> DiskTier::put_payload(const engine::Payload& payload) {
  telemetry::ScopedStageTimer timer(telemetry::Stage::kDiskIo);
  std::vector<std::uint8_t> bytes = transport::encode_payload_envelope(payload);
  auto digest = blobs_->put(bytes);
  if (digest.is_ok()) lru_insert(digest.value(), std::move(bytes));
  return digest;
}

StatusOr<engine::Payload> DiskTier::fetch_payload(const Sha256Digest& digest) {
  telemetry::ScopedStageTimer timer(telemetry::Stage::kDiskIo);
  std::vector<std::uint8_t> bytes;
  if (lru_get(digest, bytes)) {
    metrics_->lru_hits.add(1);
  } else {
    auto read = blobs_->get(digest);
    if (!read.is_ok()) return read.status();
    bytes = std::move(read).value();
    metrics_->faulted_in.add(1);
    lru_insert(digest, bytes);
  }
  return transport::decode_payload_envelope(bytes, /*opaque_source=*/nullptr);
}

Status DiskTier::append_publish(const PublishRecord& record) {
  metrics_->manifest_appends.add(1);
  return manifest_.append(encode_publish_record(record));
}

Status DiskTier::append_gc_floor(std::uint32_t shard, std::uint64_t floor) {
  metrics_->manifest_appends.add(1);
  return manifest_.append(encode_gc_floor_record(shard, floor));
}

Status DiskTier::append_checkpoint(const CheckpointRecord& record) {
  metrics_->manifest_appends.add(1);
  return manifest_.append(encode_checkpoint_record(record));
}

void DiskTier::lru_insert(const Sha256Digest& digest, std::vector<std::uint8_t> bytes) {
  if (bytes.size() > cfg_.lru_bytes) return;  // would evict everything for one entry
  std::lock_guard lock(lru_mutex_);
  if (auto it = lru_index_.find(digest); it != lru_index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency, same bytes
    return;
  }
  lru_bytes_ += bytes.size();
  lru_.push_front(LruEntry{digest, std::move(bytes)});
  lru_index_[digest] = lru_.begin();
  while (lru_bytes_ > cfg_.lru_bytes && !lru_.empty()) {
    lru_bytes_ -= lru_.back().bytes.size();
    lru_index_.erase(lru_.back().digest);
    lru_.pop_back();
  }
}

bool DiskTier::lru_get(const Sha256Digest& digest, std::vector<std::uint8_t>& out) {
  std::lock_guard lock(lru_mutex_);
  const auto it = lru_index_.find(digest);
  if (it == lru_index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  out = it->second->bytes;
  return true;
}

}  // namespace asyncml::store::disk
