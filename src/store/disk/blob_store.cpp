#include "store/disk/blob_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "store/disk/blob.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_util.hpp"

namespace asyncml::store::disk {

namespace fs = std::filesystem;
using support::Sha256Digest;
using support::Status;
using support::StatusCode;
using support::StatusOr;

namespace {

/// Writes `bytes` to `path` (O_TRUNC), optionally fsyncing before close.
Status write_file(const std::string& path, std::span<const std::uint8_t> bytes,
                  bool do_fsync) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status(StatusCode::kUnavailable,
                  "blob_store: open " + path + ": " + std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status(StatusCode::kUnavailable,
                    "blob_store: write " + path + ": " + std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  if (do_fsync && ::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    return Status(StatusCode::kUnavailable,
                  "blob_store: fsync " + path + ": " + std::strerror(err));
  }
  if (::close(fd) != 0) {
    return Status(StatusCode::kUnavailable,
                  "blob_store: close " + path + ": " + std::strerror(errno));
  }
  return Status::ok();
}

StatusOr<std::vector<std::uint8_t>> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status(StatusCode::kNotFound, "blob_store: no object " + path);
    }
    return Status(StatusCode::kUnavailable,
                  "blob_store: open " + path + ": " + std::strerror(errno));
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return Status(StatusCode::kUnavailable,
                    "blob_store: read " + path + ": " + std::strerror(err));
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return bytes;
}

}  // namespace

BlobStore::BlobStore(std::string root, DiskTierConfig config,
                     engine::DiskTierMetrics* metrics, engine::FaultState* faults)
    : root_(std::move(root)), cfg_(std::move(config)), metrics_(metrics),
      faults_(faults) {}

Status BlobStore::init() {
  std::error_code ec;
  for (const char* sub : {"objects", "tmp", "quarantine"}) {
    fs::create_directories(fs::path(root_) / sub, ec);
    if (ec) {
      return Status(StatusCode::kUnavailable,
                    "blob_store: mkdir " + root_ + "/" + sub + ": " + ec.message());
    }
  }
  return Status::ok();
}

std::string BlobStore::object_path(const Sha256Digest& digest) const {
  return (fs::path(root_) / "objects" / support::sha256_hex(digest)).string();
}

bool BlobStore::contains(const Sha256Digest& digest) const {
  std::error_code ec;
  return fs::exists(object_path(digest), ec);
}

Status BlobStore::write_object(const Sha256Digest& digest,
                               std::span<const std::uint8_t> payload,
                               engine::DiskWriteFault fault) {
  std::vector<std::uint8_t> file = encode_blob(payload);
  if (fault == engine::DiskWriteFault::kCorrupt && !payload.empty()) {
    // One payload bit flipped after the header CRC was computed: the file
    // publishes cleanly and only a verified read can tell.
    file[kBlobHeaderBytes + payload.size() / 2] ^= 0x10;
  }
  if (fault == engine::DiskWriteFault::kTorn) {
    // A crash between write and fsync leaves a prefix: header intact, payload
    // cut mid-blob. The rename still happens — exactly the lying file a real
    // torn write leaves behind.
    file.resize(kBlobHeaderBytes + payload.size() / 2);
  }

  std::uint64_t seq = 0;
  {
    std::lock_guard lock(seq_mutex_);
    seq = tmp_seq_++;
  }
  const std::string tmp =
      (fs::path(root_) / "tmp" /
       (support::sha256_hex(digest) + "." + std::to_string(::getpid()) + "." +
        std::to_string(seq)))
          .string();
  if (Status s = write_file(tmp, file, cfg_.fsync); !s.is_ok()) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return s;
  }
  std::error_code ec;
  fs::rename(tmp, object_path(digest), ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status(StatusCode::kUnavailable, "blob_store: rename: " + ec.message());
  }
  return Status::ok();
}

StatusOr<Sha256Digest> BlobStore::put(std::span<const std::uint8_t> payload) {
  const support::Stopwatch timer;
  const Sha256Digest digest = support::sha256(payload);

  // Content addressing makes the write idempotent: an existing object of the
  // right size already IS this payload (a size mismatch means a torn earlier
  // write — fall through and rewrite it).
  {
    std::error_code ec;
    const auto size = fs::file_size(object_path(digest), ec);
    if (!ec && size == kBlobHeaderBytes + payload.size()) {
      if (metrics_ != nullptr) metrics_->blob_dedup_hits.add(1);
      return digest;
    }
  }

  Status last = Status::ok();
  for (std::uint32_t attempt = 0; attempt < std::max(1u, cfg_.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      if (metrics_ != nullptr) metrics_->write_retries.add(1);
      support::precise_sleep_ms(cfg_.retry_backoff_ms *
                                static_cast<double>(1u << (attempt - 1)));
    }
    engine::DiskWriteFault fault = engine::DiskWriteFault::kNone;
    if (faults_ != nullptr) fault = faults_->next_disk_write_fault();
    if (fault == engine::DiskWriteFault::kFail) {
      last = Status(StatusCode::kUnavailable, "blob_store: injected write failure");
      continue;
    }
    last = write_object(digest, payload, fault);
    if (last.is_ok()) {
      if (metrics_ != nullptr) {
        metrics_->blob_writes.add(1);
        metrics_->blob_write_bytes.add(payload.size());
        metrics_->write_ns.add(
            static_cast<std::uint64_t>(timer.elapsed().count()));
      }
      return digest;
    }
  }
  return last;
}

void BlobStore::quarantine(const Sha256Digest& digest) {
  const std::string hex = support::sha256_hex(digest);
  std::error_code ec;
  // Keep every quarantined image (".0", ".1", …): a re-published object that
  // corrupts again must not overwrite the earlier evidence.
  for (int n = 0; n < 1000; ++n) {
    const fs::path dst =
        fs::path(root_) / "quarantine" / (hex + "." + std::to_string(n));
    if (fs::exists(dst, ec)) continue;
    fs::rename(object_path(digest), dst, ec);
    break;
  }
  if (metrics_ != nullptr) metrics_->quarantines.add(1);
}

StatusOr<std::vector<std::uint8_t>> BlobStore::get(const Sha256Digest& digest) {
  const support::Stopwatch timer;
  Status last = Status::ok();
  for (std::uint32_t attempt = 0; attempt < std::max(1u, cfg_.max_attempts);
       ++attempt) {
    if (attempt > 0) {
      if (metrics_ != nullptr) metrics_->read_retries.add(1);
      support::precise_sleep_ms(cfg_.retry_backoff_ms *
                                static_cast<double>(1u << (attempt - 1)));
    }
    if (faults_ != nullptr && faults_->should_fail_disk_read()) {
      last = Status(StatusCode::kUnavailable, "blob_store: injected read failure");
      continue;
    }
    auto bytes = read_file(object_path(digest));
    if (!bytes.is_ok()) {
      last = bytes.status();
      if (last.code() == StatusCode::kNotFound) return last;  // not transient
      continue;
    }
    auto payload = decode_blob(bytes.value(), digest);
    if (!payload.is_ok()) {
      // Corruption is permanent: quarantine the object and report kDataLoss
      // so the caller falls back instead of retrying the same bad bytes.
      quarantine(digest);
      return Status(StatusCode::kDataLoss,
                    "blob_store: object " + support::sha256_hex(digest) +
                        " quarantined: " + payload.status().message());
    }
    std::vector<std::uint8_t> out(payload.value().begin(), payload.value().end());
    if (metrics_ != nullptr) {
      metrics_->blob_reads.add(1);
      metrics_->blob_read_bytes.add(out.size());
      metrics_->read_ns.add(static_cast<std::uint64_t>(timer.elapsed().count()));
    }
    return out;
  }
  return last;
}

}  // namespace asyncml::store::disk
