#include "store/sharded_store.hpp"

#include <cassert>
#include <cstdio>
#include <utility>

#include "store/model_cache.hpp"

namespace asyncml::store {

ShardedModelStore::ShardedModelStore(engine::BroadcastStore* broadcasts,
                                     StoreConfig config)
    : broadcasts_(broadcasts), cfg_(config) {
  assert(broadcasts_ != nullptr);
  if (cfg_.num_shards == 0) cfg_.num_shards = 1;
  if (!sharded()) {
    // The bit-exact reference: one eagerly built shard, every call a straight
    // delegation (a ModelStore needs no dimension up front, so direct-use
    // consumers like the HistoryRegistry tests see identical behaviour).
    shards_.push_back(std::make_unique<ModelStore>(broadcasts_, cfg_));
  }
}

engine::BroadcastId ShardedModelStore::publish(const linalg::DenseVector& w,
                                               engine::Version version) {
  if (cfg_.disk.enabled && tier_ == nullptr) {
    // First publish of a non-resumed run: open a fresh tier (rotating any
    // stale manifest aside). Failure downgrades to in-memory, once, loudly.
    auto tier = disk::DiskTier::open(cfg_.disk, disk::OpenMode::kFresh,
                                     disk_metrics_, disk_faults_);
    if (tier.is_ok()) {
      tier_ = std::move(tier).value();
      if (!sharded()) attach_shard(0);
    } else {
      std::fprintf(stderr,
                   "ShardedModelStore: disk tier open failed (%s); running "
                   "in-memory only\n",
                   tier.status().to_string().c_str());
      cfg_.disk.enabled = false;
    }
  }
  if (!sharded()) return shards_[0]->publish(w, version);

  if (map_ == nullptr) {
    // First publish fixes the dimension; S clamps to it.
    map_ = std::make_unique<core::ShardMap>(w.size(), cfg_.num_shards,
                                            cfg_.shard_scheme);
    shards_.reserve(map_->num_shards());
    for (std::uint32_t s = 0; s < map_->num_shards(); ++s) {
      auto shard = std::make_unique<ModelStore>(broadcasts_, cfg_);
      shard->set_shard_tag(static_cast<std::int32_t>(s));
      shards_.push_back(std::move(shard));
    }
    if (tier_ != nullptr) {
      for (std::uint32_t s = 0; s < map_->num_shards(); ++s) attach_shard(s);
      pending_restore_anchor_.reset();
    }
  }
  assert(w.size() == map_->dim() && "model dimension changed across publishes");

  bool republished_existing = false;
  {
    std::lock_guard lock(assembly_mutex_);
    republished_existing = versions_.contains(version);
  }
  if (republished_existing && has_prev_ && version == prev_version_ && w == prev_) {
    // Unchanged same-version republish (epoch boundaries): nothing to do —
    // every shard's entry already is this publish.
    return *id_of(version);
  }

  const std::uint32_t num_shards = map_->num_shards();
  linalg::DenseVector slice;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    // Skip shards whose slice is bit-unchanged: their existing chain head
    // keeps serving this (and later) versions via latest_at_or_below.
    if (has_prev_ && !map_->slice_differs(s, w.span(), prev_.span())) continue;
    slice.resize(map_->shard_dim(s));
    map_->extract(s, w.span(), slice.span());
    shards_[s]->publish(slice, version);
  }

  prev_ = w;
  prev_version_ = version;
  has_prev_ = true;
  {
    std::lock_guard lock(assembly_mutex_);
    versions_.insert(version);
  }
  if (republished_existing) {
    // The repo's republish contract (see ModelStore::publish): a version is
    // only republished with different content when no task can still read the
    // old materialization, so dropping the assembled buffers is safe.
    drop_assembly_at(version);
  }
  const auto v0 = shards_[0]->latest_at_or_below(version);
  assert(v0.has_value());
  return *shards_[0]->id_of(*v0);
}

const linalg::DenseVector& ShardedModelStore::value_at(engine::Version version,
                                                       const core::ShardSet* mask) {
  engine::WorkerEnv* env = engine::current_worker_env();
  if (env != nullptr && env->cache == nullptr) env = nullptr;
  if (!sharded()) {
    if (env != nullptr) {
      return shards_[0]->cache_for(env->id, env->cache, env->metrics)
          .value_at(version);
    }
    return shards_[0]->driver_cache().value_at(version);
  }
  assert(map_ != nullptr && "value_at before the first publish");
  const std::uint32_t num_shards = map_->num_shards();

  if (env != nullptr && env->metrics != nullptr) {
    const std::size_t touched = mask != nullptr ? mask->size() : num_shards;
    env->metrics->shard_reads.add(1);
    env->metrics->shard_touches.add(touched);
    if (touched < num_shards) env->metrics->shard_reads_partial.add(1);
  }

  const int worker = env != nullptr ? static_cast<int>(env->id) : -1;
  const std::shared_ptr<AssemblyEntry> entry = assembly_entry(worker, version);

  const auto fill = [&](std::uint32_t s) {
    if (entry->filled[s] != 0) return;
    const auto shard_version = shards_[s]->latest_at_or_below(version);
    assert(shard_version.has_value() && "shard resolving below its GC floor");
    const linalg::DenseVector& slice =
        env != nullptr
            ? shards_[s]->cache_for(env->id, env->cache, env->metrics)
                  .value_at(*shard_version)
            : shards_[s]->driver_cache().value_at(*shard_version);
    map_->scatter(s, slice.span(), entry->w.span());
    entry->filled[s] = 1;
  };

  // Single-flight per (worker, version): the fill mutex serializes sibling
  // executor threads assembling the same version, and establishes the
  // happens-before between a fill and every later masked read of that shard.
  std::lock_guard lock(entry->fill_mutex);
  if (mask != nullptr) {
    for (const std::uint32_t s : mask->ids) fill(s);
  } else {
    for (std::uint32_t s = 0; s < num_shards; ++s) fill(s);
  }
  return entry->w;
}

std::optional<engine::BroadcastId> ShardedModelStore::id_of(
    engine::Version version) const {
  if (!sharded()) return shards_[0]->id_of(version);
  if (map_ == nullptr) return std::nullopt;
  const auto v0 = shards_[0]->latest_at_or_below(version);
  if (!v0.has_value()) return std::nullopt;
  return shards_[0]->id_of(*v0);
}

void ShardedModelStore::gc_below(engine::Version min_version) {
  if (!sharded()) {
    shards_[0]->gc_below(min_version);
    return;
  }
  if (map_ == nullptr) return;
  for (const auto& shard : shards_) {
    // Translate the global floor into this shard's version set: the newest
    // entry ≤ min_version must survive — any in-flight version v ≥ min still
    // resolves to it — so the shard's own floor is that entry, not min.
    const auto floor = shard->latest_at_or_below(min_version);
    if (floor.has_value()) shard->gc_below(*floor);
  }
  std::lock_guard lock(assembly_mutex_);
  versions_.erase(versions_.begin(), versions_.lower_bound(min_version));
  for (auto& [worker, per_version] : assemblies_) {
    per_version.erase(per_version.begin(), per_version.lower_bound(min_version));
  }
}

std::size_t ShardedModelStore::size() const {
  if (!sharded()) return shards_[0]->size();
  std::lock_guard lock(assembly_mutex_);
  return versions_.size();
}

std::optional<engine::Version> ShardedModelStore::oldest() const {
  if (!sharded()) return shards_[0]->oldest();
  std::lock_guard lock(assembly_mutex_);
  if (versions_.empty()) return std::nullopt;
  return *versions_.begin();
}

ModelStore& ShardedModelStore::shard(std::uint32_t s) {
  assert(s < shards_.size());
  return *shards_[s];
}

const ModelStore& ShardedModelStore::shard(std::uint32_t s) const {
  assert(s < shards_.size());
  return *shards_[s];
}

std::uint32_t ShardedModelStore::active_shards() const {
  return static_cast<std::uint32_t>(shards_.size());
}

const core::ShardMap* ShardedModelStore::shard_map() const { return map_.get(); }

StoreStats ShardedModelStore::aggregate_stats() const {
  StoreStats total;
  for (const auto& shard : shards_) {
    const StoreStats s = shard->stats();
    total.bases_published += s.bases_published;
    total.deltas_published += s.deltas_published;
    total.base_bytes_published += s.base_bytes_published;
    total.delta_bytes_published += s.delta_bytes_published;
    total.compactions += s.compactions;
  }
  return total;
}

void ShardedModelStore::set_disk_hooks(engine::DiskTierMetrics* metrics,
                                       engine::FaultState* faults) {
  disk_metrics_ = metrics;
  disk_faults_ = faults;
}

support::Status ShardedModelStore::restore_from_disk(engine::Version anchor) {
  if (!cfg_.disk.enabled) {
    return support::Status(support::StatusCode::kFailedPrecondition,
                           "sharded_store: disk tier disabled");
  }
  if (tier_ == nullptr) {
    auto tier = disk::DiskTier::open(cfg_.disk, disk::OpenMode::kResume,
                                     disk_metrics_, disk_faults_);
    if (!tier.is_ok()) return tier.status();
    tier_ = std::move(tier).value();
  }
  pending_restore_anchor_ = anchor;
  if (!sharded()) {
    attach_shard(0);
    pending_restore_anchor_.reset();
  }
  // S > 1: the shards (and the ShardMap) do not exist until the dimension is
  // known at the first publish — the stashed anchor makes attach_shard replay
  // each shard's slice of the manifest then.
  return support::Status::ok();
}

void ShardedModelStore::attach_shard(std::uint32_t s) {
  shards_[s]->attach_disk(tier_.get(), s);
  if (!pending_restore_anchor_.has_value()) return;  // fresh run: nothing to replay
  const disk::ManifestState& st = tier_->restored();
  static const std::map<std::uint64_t, disk::PublishRecord> kNoRecords;
  const auto rec_it = st.shards.find(s);
  const auto floor_it = st.gc_floors.find(s);
  shards_[s]->restore_from_manifest(
      rec_it != st.shards.end() ? rec_it->second : kNoRecords,
      floor_it != st.gc_floors.end() ? floor_it->second : 0,
      *pending_restore_anchor_);
}

std::shared_ptr<ShardedModelStore::AssemblyEntry> ShardedModelStore::assembly_entry(
    int worker, engine::Version version) {
  std::lock_guard lock(assembly_mutex_);
  auto& slot = assemblies_[worker][version];
  if (slot == nullptr) {
    slot = std::make_shared<AssemblyEntry>(map_->dim(), map_->num_shards());
  }
  return slot;
}

void ShardedModelStore::drop_assembly_at(engine::Version version) {
  std::lock_guard lock(assembly_mutex_);
  for (auto& [worker, per_version] : assemblies_) per_version.erase(version);
}

}  // namespace asyncml::store
