#pragma once

// Configuration of the delta-versioned model store (src/store/).

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/shard_map.hpp"

namespace asyncml::store {

/// Knobs of the content-addressed disk tier beneath the model store
/// (store/disk/, docs/DURABILITY.md). Off by default: with `enabled` false no
/// disk code runs anywhere on the publish/resolve paths.
struct DiskTierConfig {
  bool enabled = false;

  /// Root directory of the tier: `objects/` (sha256-named blobs), `tmp/`
  /// (in-flight writes, published by atomic rename), `quarantine/` (blobs
  /// that failed their integrity check), and the append-only `MANIFEST`.
  std::string dir;

  /// Byte budget of the in-memory LRU above the blob files; hot chain links
  /// and freshly written payloads are served from here without touching disk.
  std::size_t lru_bytes = std::size_t{64} << 20;

  /// Attempts per blob operation on a *transient* error (kUnavailable —
  /// injected fail_write/fail_read or a real EINTR-ish failure). Corruption
  /// is never retried: the same bytes would fail the same check.
  std::uint32_t max_attempts = 4;

  /// Base backoff between attempts, doubled each retry.
  double retry_backoff_ms = 0.5;

  /// fsync blobs before the publishing rename and the manifest after each
  /// append. Off trades crash-safety of the last few records for speed
  /// (docs/DURABILITY.md §atomicity); tests keep it on.
  bool fsync = true;
};

/// Delta nnz/dim ratio above which publishing a full base snapshot is cheaper
/// than a delta: the wire break-even of the (u32 index, f64 value) encoding is
/// 12 bytes per touched coordinate against 8 bytes per dense coordinate.
inline constexpr double kDeltaDensifyThreshold = 2.0 / 3.0;

struct StoreConfig {
  /// false → publish every version as a full snapshot (the pre-store wire
  /// model; also what dense workloads effectively degrade to).
  bool delta_enabled = true;

  /// A full base snapshot is forced every `base_interval` versions, bounding
  /// the delta-chain length a cold worker must fetch to materialize a model.
  std::uint32_t base_interval = 16;

  /// Deltas touching more than this fraction of the coordinates densify into
  /// a base snapshot instead (see kDeltaDensifyThreshold for the break-even).
  double densify_threshold = kDeltaDensifyThreshold;

  /// Coordinator shards the model plane is partitioned across (clamped to the
  /// model dimension at first publish).  1 = the unsharded reference: the
  /// ShardedModelStore delegates wholesale to a single ModelStore and every
  /// trajectory is bit-exact with pre-sharding builds.  docs/SHARDING.md.
  std::uint32_t num_shards = 1;

  /// Feature-index partitioning scheme (kRange enables tree aggregation and
  /// memcpy extract/scatter; see core/shard_map.hpp).
  core::ShardScheme shard_scheme = core::ShardScheme::kRange;

  /// Durable disk tier beneath the store. Write-through + read-fault-in only:
  /// a live run never *reads* from disk, so trajectories are bit-identical
  /// with the tier on or off; restores and cold joiners anchor on it.
  DiskTierConfig disk;
};

}  // namespace asyncml::store
