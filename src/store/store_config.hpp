#pragma once

// Configuration of the delta-versioned model store (src/store/).

#include <cstdint>

#include "core/shard_map.hpp"

namespace asyncml::store {

/// Delta nnz/dim ratio above which publishing a full base snapshot is cheaper
/// than a delta: the wire break-even of the (u32 index, f64 value) encoding is
/// 12 bytes per touched coordinate against 8 bytes per dense coordinate.
inline constexpr double kDeltaDensifyThreshold = 2.0 / 3.0;

struct StoreConfig {
  /// false → publish every version as a full snapshot (the pre-store wire
  /// model; also what dense workloads effectively degrade to).
  bool delta_enabled = true;

  /// A full base snapshot is forced every `base_interval` versions, bounding
  /// the delta-chain length a cold worker must fetch to materialize a model.
  std::uint32_t base_interval = 16;

  /// Deltas touching more than this fraction of the coordinates densify into
  /// a base snapshot instead (see kDeltaDensifyThreshold for the break-even).
  double densify_threshold = kDeltaDensifyThreshold;

  /// Coordinator shards the model plane is partitioned across (clamped to the
  /// model dimension at first publish).  1 = the unsharded reference: the
  /// ShardedModelStore delegates wholesale to a single ModelStore and every
  /// trajectory is bit-exact with pre-sharding builds.  docs/SHARDING.md.
  std::uint32_t num_shards = 1;

  /// Feature-index partitioning scheme (kRange enables tree aggregation and
  /// memcpy extract/scatter; see core/shard_map.hpp).
  core::ShardScheme shard_scheme = core::ShardScheme::kRange;
};

}  // namespace asyncml::store
