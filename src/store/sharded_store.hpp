#pragma once

// Sharded model plane: S delta-versioned ModelStore shards behind one facade.
//
// A single ModelStore serializes every publish into one delta chain and makes
// every worker materialize the full model vector.  The ShardedModelStore
// partitions the feature index space across S shards (core/shard_map.hpp):
// each shard owns its own delta chain, base-snapshot cadence, and GC floor,
// so
//
//   * a publish only touches the shards whose slice actually changed — an
//     update with support confined to two shards publishes two small deltas
//     and skips the rest entirely (the skipped shards' chains stay short and
//     their bases stay cold);
//   * a sparse task materializes only the shards its batch-union support
//     touches (the ShardSet mask) — on rcv1-like data at 0.2% density most
//     batches hit a strict subset of the shards, and the untouched shards
//     ship zero bytes to that worker;
//   * GC runs per shard, keyed off the global STAT floor translated through
//     each shard's own (sparser) version set.
//
// Version translation: shard s resolves global version v at its newest
// published version ≤ v (`ModelStore::latest_at_or_below`) — exactly the
// publish that last changed the slice, so the assembled vector is bit-equal
// to what an unsharded store would serve.
//
// S == 1 is the bit-exact reference: every call delegates wholesale to a
// single ModelStore with no ShardMap, no assembly buffers, and no behavioural
// difference from pre-sharding builds.
//
// Assembly (S > 1): each (worker, version) pair owns an AssemblyEntry — a
// full-dim buffer plus a per-shard filled bitmap — and masked reads fill only
// the missing masked shards under the entry's mutex (the sharded analog of
// VersionedModelCache's single-flight).  Returned references stay valid until
// the version falls below the GC floor, same contract as the unsharded cache.
//
// Determinism: the ShardMap is a pure function of (dim, S, scheme), slices
// are copied bit-for-bit, and per-shard chains replay the same per-coordinate
// overwrite values the unsharded chain would — so solver trajectories are
// bit-identical across S for any fixed combine mode (docs/SHARDING.md).

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "core/shard_map.hpp"
#include "engine/broadcast.hpp"
#include "engine/types.hpp"
#include "linalg/dense_vector.hpp"
#include "store/disk/disk_tier.hpp"
#include "store/model_store.hpp"
#include "support/status.hpp"

namespace asyncml::store {

class ShardedModelStore {
 public:
  /// S = config.num_shards.  With S == 1 the single shard is built eagerly
  /// (a ModelStore needs no dimension up front); with S > 1 the ShardMap and
  /// shards are built lazily at the first publish, when the model dimension
  /// is known (S is then clamped to the dimension).
  ShardedModelStore(engine::BroadcastStore* broadcasts, StoreConfig config);

  ShardedModelStore(const ShardedModelStore&) = delete;
  ShardedModelStore& operator=(const ShardedModelStore&) = delete;

  /// Publishes `w` as `version` into every shard whose slice changed since
  /// the previous publish (all shards on the first publish).  Returns the
  /// broadcast id of shard 0's entry serving `version` — with S == 1 exactly
  /// the unsharded ModelStore::publish return.
  ///
  /// Threading: driver-thread only, like ModelStore::publish.
  engine::BroadcastId publish(const linalg::DenseVector& w, engine::Version version);

  /// The assembled dense model at `version`.  On a worker thread this
  /// resolves through the worker's per-shard caches (charging exactly the
  /// missing chain links of the shards it fills); on the driver, uncharged.
  /// `mask` restricts the fill to the listed shards: coordinates outside the
  /// masked shards are unspecified in the returned vector, so callers must
  /// read only coordinates whose shard is in the mask (the batch kernels pass
  /// their partition's shard-support set).  Null mask = full assembly.
  [[nodiscard]] const linalg::DenseVector& value_at(
      engine::Version version, const core::ShardSet* mask = nullptr);

  /// Broadcast id serving `version` on shard 0 (nullopt if unknown/GC'd).
  /// With S == 1 this is exactly ModelStore::id_of.
  [[nodiscard]] std::optional<engine::BroadcastId> id_of(engine::Version version) const;

  /// Per-shard GC: translates the global floor through each shard's version
  /// set (a shard keeps its newest entry ≤ `min_version` — later versions may
  /// still resolve to it) and drops assembly buffers below the floor.
  void gc_below(engine::Version min_version);

  /// Published versions retained (global versions, not per-shard entries).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::optional<engine::Version> oldest() const;

  /// Direct shard access (shard 0 is the unsharded store when S == 1).
  /// Valid for s < active_shards().
  [[nodiscard]] ModelStore& shard(std::uint32_t s);
  [[nodiscard]] const ModelStore& shard(std::uint32_t s) const;

  /// Shards actually constructed: 1 before the first S > 1 publish (and
  /// always for S == 1), the clamped shard count after.
  [[nodiscard]] std::uint32_t active_shards() const;

  /// The routing map; null until the first publish when S > 1.
  [[nodiscard]] const core::ShardMap* shard_map() const;

  [[nodiscard]] bool sharded() const noexcept { return cfg_.num_shards > 1; }
  [[nodiscard]] const StoreConfig& config() const noexcept { return cfg_; }

  /// Publish stats summed over shards.
  [[nodiscard]] StoreStats aggregate_stats() const;

  // ---- Durable disk tier (store/disk/, docs/DURABILITY.md) ---------------

  /// Routes the tier's counters into cluster metrics and its fault seams into
  /// the run's FaultState. Call before the first publish (AsyncContext ctor);
  /// both may be null.
  void set_disk_hooks(engine::DiskTierMetrics* metrics, engine::FaultState* faults);

  /// The tier, or null: disabled, or enabled but before the first publish
  /// (the tier opens lazily with the first publish, kFresh).
  [[nodiscard]] disk::DiskTier* disk_tier() noexcept { return tier_.get(); }

  /// Restart-without-replay: opens the tier in kResume mode (manifest replay,
  /// torn tail truncated) and anchors the store on the replayed publishes at
  /// or below `anchor` (the checkpointed model version). With S == 1 the
  /// shard replays immediately; with S > 1 the replay is deferred to the
  /// first publish, when the ShardMap (and thus the shards) exist.
  ///
  /// Must run before the first publish of the resumed run.
  [[nodiscard]] support::Status restore_from_disk(engine::Version anchor);

 private:
  struct AssemblyEntry {
    explicit AssemblyEntry(std::size_t dim, std::uint32_t num_shards)
        : w(dim), filled(num_shards, 0) {}
    linalg::DenseVector w;             ///< masked shards hold assembled values
    std::vector<std::uint8_t> filled;  ///< per-shard fill bitmap
    std::mutex fill_mutex;             ///< held across fills (single-flight)
  };

  /// Get-or-create the (worker, version) assembly entry. `worker` is -1 on
  /// the driver.
  [[nodiscard]] std::shared_ptr<AssemblyEntry> assembly_entry(
      int worker, engine::Version version);

  /// Drops assembly entries of exactly `version` (republish) across workers.
  void drop_assembly_at(engine::Version version);

  /// Attaches shard `s` to the tier and, when a deferred restore is pending,
  /// replays its slice of the manifest into the shard.
  void attach_shard(std::uint32_t s);

  engine::BroadcastStore* broadcasts_;
  StoreConfig cfg_;

  // Disk tier: owned here (shards borrow it), opened lazily at first publish
  // (kFresh) or eagerly by restore_from_disk (kResume).
  std::unique_ptr<disk::DiskTier> tier_;
  engine::DiskTierMetrics* disk_metrics_ = nullptr;
  engine::FaultState* disk_faults_ = nullptr;
  std::optional<engine::Version> pending_restore_anchor_;

  // Built at construction (S == 1) or first publish (S > 1); immutable after.
  std::unique_ptr<core::ShardMap> map_;
  std::vector<std::unique_ptr<ModelStore>> shards_;

  // Driver-private publish state (same threading contract as ModelStore).
  linalg::DenseVector prev_;
  engine::Version prev_version_ = 0;
  bool has_prev_ = false;

  // Global versions published (sharded mode), for size()/oldest() and the
  // republish-detection check; guarded by assembly_mutex_ (both are touched
  // on the same paths).
  std::set<engine::Version> versions_;

  mutable std::mutex assembly_mutex_;
  // worker (-1 = driver) → version → entry.
  std::map<int, std::map<engine::Version, std::shared_ptr<AssemblyEntry>>>
      assemblies_;
};

}  // namespace asyncml::store
