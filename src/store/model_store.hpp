#pragma once

// Delta-versioned model store: the driver-side half of sparse model shipping.
//
// The ASYNCbroadcaster (paper §4.3) already avoids re-broadcasting *past*
// models; this store removes the remaining O(dim) cost of broadcasting every
// *new* version.  publish(w, version) diffs the model against the previously
// published version and registers one of two payload kinds with the engine's
// BroadcastStore:
//
//   base   — a full DenseVector snapshot (8*dim wire bytes).  Forced for the
//            first version, every `base_interval` versions (bounding chain
//            length), when the delta densifies past `densify_threshold`, or
//            whenever delta publishing is disabled.
//   delta  — a sparse overwrite set against the parent version
//            (ModelDelta, exactly 8 + 12*nnz wire bytes).
//
// A scheduled base (the every-`base_interval` kind) is *dual-published*: the
// base snapshot AND its delta against the parent are both registered, so the
// version chain is never broken by a base — a warm worker rides the delta
// chain straight through it, while a cold (or very stale) worker anchors on
// the snapshot.  Only densified deltas and post-GC rebases break the chain.
//
// Versions therefore form chains  base ← delta ← delta ← …  A worker-side
// VersionedModelCache materializes version v by walking v's chain down to its
// nearest locally materialized ancestor, stopping early at a base snapshot
// when that is the cheaper wire plan (the walk compares accumulated delta
// bytes against snapshot bytes), fetching only the missing links — each
// charged individually through the NetworkModel — and applying the deltas in
// O(Σ nnz).
//
// Garbage collection (`gc_below`) keys off the coordinator's STAT minimum
// in-flight version: once no dispatched task can reference versions < m they
// are erased by *exact broadcast id* (ids are registration-ordered, not
// version-ordered, so threshold pruning would hit foreign broadcasts), and
// the oldest retained version is rebased onto a fresh base snapshot when its
// chain reached below the cut.

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <vector>

#include "engine/broadcast.hpp"
#include "engine/types.hpp"
#include "linalg/dense_vector.hpp"
#include "store/disk/manifest.hpp"
#include "store/model_delta.hpp"
#include "store/store_config.hpp"
#include "support/sha256.hpp"

namespace asyncml::store {

namespace disk {
class DiskTier;
}  // namespace disk

class VersionedModelCache;

enum class EntryKind : std::uint8_t { kBase, kDelta };

/// Server-side metadata of one published version.  A version can carry a
/// base snapshot, a delta against its parent, or both (dual-published
/// scheduled bases).
///
/// With a disk tier attached, a payload can exist in two places: registered
/// with the BroadcastStore (id != 0) and/or durable under a content address
/// (hash != 0).  A restored entry starts lazy — hash set, id 0 — and the
/// resolution walk faults the blob in on first use (docs/DURABILITY.md).
struct VersionEntry {
  /// Primary representation: kBase whenever a snapshot exists.
  EntryKind kind = EntryKind::kBase;
  /// Version this entry's delta applies on top of (meaningful with a delta).
  engine::Version parent = 0;
  engine::BroadcastId base_id = 0;   ///< 0 = snapshot not in memory
  engine::BroadcastId delta_id = 0;  ///< 0 = delta not in memory
  std::size_t base_bytes = 0;        ///< modeled wire size of the snapshot
  std::size_t delta_bytes = 0;       ///< modeled wire size of the delta
  support::Sha256Digest base_hash{};   ///< content address on disk (0 = none)
  support::Sha256Digest delta_hash{};  ///< content address on disk (0 = none)

  [[nodiscard]] bool has_base() const noexcept {
    return base_id != 0 || !support::sha256_is_zero(base_hash);
  }
  [[nodiscard]] bool has_delta() const noexcept {
    return delta_id != 0 || !support::sha256_is_zero(delta_hash);
  }
};

/// One link of a resolution chain, with the payload pinned at snapshot time
/// so a concurrent GC cannot invalidate an in-progress resolution.  The head
/// link is consumed either as a materialized anchor (no payload read) or as
/// a base snapshot (`is_base`); every later link is a delta.
struct ChainLink {
  engine::Version version = 0;
  engine::BroadcastId id = 0;
  std::size_t bytes = 0;
  bool is_base = false;
  engine::Payload payload;
};

/// Publishing statistics (driver-side; what was *registered*, not fetched —
/// fetched traffic lives in ClusterMetrics).
struct StoreStats {
  std::uint64_t bases_published = 0;
  std::uint64_t deltas_published = 0;
  std::uint64_t base_bytes_published = 0;
  std::uint64_t delta_bytes_published = 0;
  std::uint64_t compactions = 0;  ///< GC rebases of the oldest retained version
};

class ModelStore {
 public:
  explicit ModelStore(engine::BroadcastStore* broadcasts, StoreConfig config = {});
  ~ModelStore();

  ModelStore(const ModelStore&) = delete;
  ModelStore& operator=(const ModelStore&) = delete;

  /// Publishes `w` as `version` (a delta against the previously published
  /// version, or a base snapshot per the rules above) and returns the
  /// registered broadcast id.  Republishing an existing version replaces its
  /// entry and invalidates cached materializations.
  ///
  /// Threading: publish and gc_below are driver-thread operations (not
  /// thread-safe against each other); the resolution APIs (entry_of /
  /// chain_for / the caches) are safe from any thread concurrently with them.
  engine::BroadcastId publish(const linalg::DenseVector& w, engine::Version version);

  /// Metadata of a published version (nullopt if unknown or GC'd).
  [[nodiscard]] std::optional<VersionEntry> entry_of(engine::Version version) const;
  [[nodiscard]] std::optional<engine::BroadcastId> id_of(engine::Version version) const;

  /// Snapshot of the cheapest chain that materializes `version`, anchor
  /// first, in apply order.  The walk runs toward the first version contained
  /// in `anchors` (a cache's already-materialized versions) but switches to a
  /// base snapshot head when that costs fewer wire bytes (accumulated delta
  /// bytes vs snapshot bytes); a chain-breaking entry (densified delta, GC
  /// rebase, first version) always anchors on its snapshot.  Aborts if the
  /// version was never published or was GC'd: both are upstream logic errors.
  [[nodiscard]] std::vector<ChainLink> chain_for(
      engine::Version version,
      const std::unordered_set<engine::Version>* anchors = nullptr) const;

  /// Erases all versions < `min_version` (exact broadcast ids, server store
  /// and every registered cache), rebasing the oldest retained version onto a
  /// fresh base snapshot when its chain reached below the cut.  `min_version`
  /// must be a safe lower bound: the STAT minimum in-flight version, further
  /// floored by the SampleVersionTable minimum for history-reading solvers.
  void gc_below(engine::Version min_version);

  /// The per-worker materialization cache (created on first use). `bcache`
  /// and `metrics` belong to the worker; fetches charge through them.
  [[nodiscard]] VersionedModelCache& cache_for(engine::WorkerId worker,
                                               engine::BroadcastCache* bcache,
                                               engine::ClusterMetrics* metrics);

  /// Driver-side materialization cache: same resolution logic, no charging.
  [[nodiscard]] VersionedModelCache& driver_cache();

  /// Newest published version ≤ `version` (nullopt when every entry is above
  /// it or the store is empty).  The sharded plane uses this to translate a
  /// global GC floor into each shard's sparser version set: a shard that
  /// skipped publishes still resolves version v from its newest entry ≤ v.
  [[nodiscard]] std::optional<engine::Version> latest_at_or_below(
      engine::Version version) const;

  /// Tags this store as shard `shard` of a sharded model plane (-1 = untagged,
  /// the default): shard-tagged stores attribute their caches' fetch bytes to
  /// ClusterMetrics::count_shard_fetch.  Set before any cache is created.
  void set_shard_tag(std::int32_t shard) noexcept { shard_tag_ = shard; }
  [[nodiscard]] std::int32_t shard_tag() const noexcept { return shard_tag_; }

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::optional<engine::Version> oldest() const;
  /// Versions below this have been GC'd (resolution aborts).
  [[nodiscard]] engine::Version gc_floor() const;
  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] const StoreConfig& config() const noexcept { return cfg_; }

  // -- durable disk tier (docs/DURABILITY.md) --------------------------------

  /// Attaches the durable tier: every publish writes through to it (snapshot
  /// and delta blobs + a manifest record under `manifest_shard`) and the
  /// resolution walk faults lazy entries in from it.  The tier is shared
  /// across shards and outlives the store; call before the first publish.
  void attach_disk(disk::DiskTier* tier, std::uint32_t manifest_shard);

  /// Rebuilds the version map from replayed manifest records: each record
  /// becomes a lazy entry (content hashes set, no in-memory payload) so a
  /// restarted coordinator serves history without replaying updates.  Only
  /// records at or above the newest base-carrying version ≤ `floor`... more
  /// precisely: the GC floor re-derives as the oldest version whose chain is
  /// fully on disk — records below the oldest base-carrying version are
  /// dropped (their chains would dangle).  `anchor` is the version the run
  /// resumes at; GC is clamped to it until a newer base is published, so a
  /// restore can never have its anchor collected from under it.
  void restore_from_manifest(
      const std::map<std::uint64_t, disk::PublishRecord>& records,
      std::uint64_t floor, engine::Version anchor);

  /// The version GC is currently clamped to after a restore (nullopt once a
  /// newer base has been published). Exposed for the GC regression tests.
  [[nodiscard]] std::optional<engine::Version> restore_anchor() const;

 private:
  enum class WalkOutcome : std::uint8_t {
    kOk,     ///< chain assembled
    kRetry,  ///< a lazy entry failed to fault in; its hash was cleared — rewalk
    kNoBase, ///< no reachable snapshot anywhere below: needs repair
  };

  /// chain_for body; requires mutex_ held. Retries walks around disk
  /// fault-in failures and repairs an unmaterializable version by
  /// re-publishing its nearest intact ancestor as a fresh base.
  [[nodiscard]] std::vector<ChainLink> chain_locked(
      engine::Version version,
      const std::unordered_set<engine::Version>* anchors) const;

  /// One walk attempt; requires mutex_ held.
  [[nodiscard]] WalkOutcome walk_locked(
      engine::Version version, const std::unordered_set<engine::Version>* anchors,
      std::vector<ChainLink>& out) const;

  /// Ensures the base (or delta) payload of `e` is registered in memory,
  /// faulting it in from the disk tier when the entry is lazy. On a failed
  /// fault-in (corrupt/quarantined/unreadable blob) the content hash is
  /// cleared — the payload is gone — and false is returned. Requires mutex_.
  [[nodiscard]] bool ensure_payload_locked(engine::Version version, VersionEntry& e,
                                           bool base) const;

  /// Last-resort fallback after data loss: materializes the newest intact
  /// version ≤ `version` and installs its value as a fresh base snapshot
  /// under `version` (counted in DiskTierMetrics::bases_republished, warned —
  /// never silent). Returns false when no version below is intact either.
  /// Requires mutex_ held.
  [[nodiscard]] bool repair_locked(engine::Version version) const;

  /// Materializes `version` server-side (GC rebase); requires mutex_ held.
  [[nodiscard]] linalg::DenseVector materialize_locked(engine::Version version) const;

  /// Registered caches, snapshotted under caches_mutex_.
  [[nodiscard]] std::vector<VersionedModelCache*> snapshot_caches();

  engine::BroadcastStore* broadcasts_;
  StoreConfig cfg_;

  mutable std::mutex mutex_;
  // mutable: the logically-const resolution walk faults lazy entries in from
  // disk (registering their payloads and recording the broadcast ids here).
  mutable std::map<engine::Version, VersionEntry> entries_;
  linalg::DenseVector prev_;          ///< last published model (diff source)
  engine::Version prev_version_ = 0;
  bool has_prev_ = false;
  std::uint32_t since_base_ = 0;      ///< deltas published since the last base
  engine::Version gc_floor_ = 0;
  StoreStats stats_;
  std::int32_t shard_tag_ = -1;
  disk::DiskTier* tier_ = nullptr;    ///< durable tier (null = in-memory only)
  std::uint32_t manifest_shard_ = 0;  ///< this store's shard id in the manifest
  /// Set by restore_from_manifest; GC clamps to it until a newer base lands.
  std::optional<engine::Version> restore_anchor_;

  std::mutex caches_mutex_;
  std::vector<std::unique_ptr<VersionedModelCache>> worker_caches_;
  std::unique_ptr<VersionedModelCache> driver_cache_;
};

}  // namespace asyncml::store
