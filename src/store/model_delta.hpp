#pragma once

// Sparse model delta: the driver→worker payload the store ships instead of a
// full snapshot when a version changed only a mini-batch's support.
//
// A delta stores *assignments* (index, new value) against its parent version
// rather than differences: applying `w[i] = v` reproduces the published model
// bit-for-bit, whereas `w[i] += (v - old)` would accumulate rounding across a
// chain.  The index/value representation reuses linalg::GradVector's sparse
// table, and the modeled wire size is exact:
//
//   u64 nnz header + nnz x (u32 index, f64 value) = 8 + 12*nnz bytes.

#include <cassert>
#include <cstdint>
#include <span>

#include "engine/types.hpp"
#include "linalg/grad_vector.hpp"

namespace asyncml::store {

struct ModelDelta {
  /// Version this delta applies on top of (the previously published version).
  engine::Version parent = 0;
  /// (index, new value) assignments; always sparse (a delta that would
  /// densify is published as a base snapshot instead).
  linalg::GradVector values;

  /// Exact modeled wire size: the nnz header always ships, even for an empty
  /// delta (a republish of an unchanged model).
  [[nodiscard]] std::size_t wire_bytes() const noexcept {
    return sizeof(std::uint64_t) +
           values.nnz() * (sizeof(std::uint32_t) + sizeof(double));
  }

  /// Overwrites the touched coordinates of `w` (the chain-apply kernel,
  /// O(nnz)).
  void apply_to(std::span<double> w) const {
    assert(!values.is_dense() && "ModelDelta must stay sparse");
    values.overwrite_into(w);
  }
};

}  // namespace asyncml::store
