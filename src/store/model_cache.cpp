#include "store/model_cache.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <iterator>

#include "store/model_store.hpp"
#include "telemetry/telemetry.hpp"

namespace asyncml::store {

const linalg::DenseVector& VersionedModelCache::value_at(engine::Version version) {
  // Telemetry model-fetch segment: the whole resolution — hit or chain walk,
  // including the modeled wire sleeps the admits charge — is the "fetch and
  // materialize w" cost of the calling task. No-op off the executor threads.
  telemetry::ScopedStageTimer fetch_timer(telemetry::Stage::kModelFetch);
  // Releases the single-flight latch when a resolution attempt must restart
  // (anchor invalidated / entry republished mid-flight).
  const auto abandon = [&](engine::Version v) {
    std::lock_guard lock(mutex_);
    inflight_.erase(v);
    resolved_cv_.notify_all();
  };
  // Resolution can race a same-version republish invalidating our anchor or
  // replacing the entry; the loop simply re-resolves against the store's
  // current chain.
  for (int attempt = 0; attempt < 16; ++attempt) {
    std::unordered_set<engine::Version> anchors;
    {
      std::unique_lock lock(mutex_);
      // Single-flight: one chain resolution at a time per cache. A sibling
      // executor thread needing the same — or a nearby — version waits for
      // the in-progress materialization and then either hits it directly or
      // anchors on it, instead of re-fetching almost the same chain over the
      // (modeled) wire: one worker, one wire.
      resolved_cv_.wait(lock, [&] {
        return models_.contains(version) || inflight_.empty();
      });
      if (const auto it = models_.find(version); it != models_.end()) {
        if (metrics_ != nullptr) metrics_->broadcast_hits.add(1);
        return *it->second;
      }
      inflight_.insert(version);
      anchors.reserve(models_.size());
      for (const auto& [v, model] : models_) anchors.insert(v);
    }
    // From here on this thread owns the latch for `version`: every exit path
    // below releases it (abandon on restart, the commit paths on success).

    // Chain snapshot: payloads are pinned, so a concurrent GC cannot pull a
    // link out from under the walk below.
    const std::vector<ChainLink> chain = store_->chain_for(version, &anchors);
    assert(!chain.empty());
    const ChainLink& head = chain.front();
    // The target version's own payload id (its delta link — or its base when
    // the chain is just the base): re-validated against a concurrent
    // same-version republish before the materialization is committed.
    const engine::BroadcastId resolved_id = chain.back().id;
    const auto still_current = [&] {
      const auto entry = store_->entry_of(version);
      return entry.has_value() &&
             (entry->base_id == resolved_id || entry->delta_id == resolved_id);
    };

    linalg::DenseVector w;
    if (head.is_base) {
      // The chain anchors on a base snapshot: admit it (charged on a miss)
      // and materialize it zero-copy by aliasing the payload.
      engine::Payload payload = head.payload;
      if (bcache_ != nullptr) {
        std::size_t charged = 0;
        payload = bcache_->admit(head.id, payload,
                                 engine::BroadcastClass::kSnapshot, &charged);
        if (charged != 0 && shard_tag_ >= 0 && metrics_ != nullptr) {
          metrics_->count_shard_fetch(shard_tag_,
                                      engine::BroadcastClass::kSnapshot, charged);
        }
      }
      std::shared_ptr<const linalg::DenseVector> base =
          payload.share<linalg::DenseVector>();
      if (head.version == version) {
        // Commit under the cache lock with the store entry re-checked inside
        // it: a republish swapping the entry after this check must wait for
        // the lock before invalidating, so it erases a stale commit rather
        // than racing past it.
        std::lock_guard lock(mutex_);
        if (!still_current()) {
          inflight_.erase(version);
          resolved_cv_.notify_all();
          continue;
        }
        const auto it = models_.emplace(version, std::move(base)).first;
        inflight_.erase(version);
        resolved_cv_.notify_all();
        return *it->second;
      }
      {
        // Caching an ancestor base is always safe: bases below the target
        // are never republished (only the newest version can be), and a GC
        // rebase reuses identical values under a fresh id.
        std::lock_guard lock(mutex_);
        const auto it = models_.emplace(head.version, std::move(base)).first;
        w = *it->second;
      }
    } else {
      // Nearest materialized ancestor: start from the local copy, free.
      std::shared_ptr<const linalg::DenseVector> anchor;
      {
        std::lock_guard lock(mutex_);
        if (const auto it = models_.find(head.version); it != models_.end()) {
          anchor = it->second;
        }
      }
      if (anchor == nullptr) {
        // Invalidated meanwhile (same-version republish); re-resolve.
        abandon(version);
        continue;
      }
      w = *anchor;
    }

    for (std::size_t i = 1; i < chain.size(); ++i) {
      engine::Payload payload = chain[i].payload;
      if (bcache_ != nullptr) {
        std::size_t charged = 0;
        payload = bcache_->admit(chain[i].id, payload,
                                 engine::BroadcastClass::kDelta, &charged);
        if (charged != 0 && shard_tag_ >= 0 && metrics_ != nullptr) {
          metrics_->count_shard_fetch(shard_tag_, engine::BroadcastClass::kDelta,
                                      charged);
        }
      }
      payload.get<ModelDelta>().apply_to(w.span());
    }

    // Commit under the cache lock with the store entry re-checked inside it
    // (see the base-head commit above for why the ordering is airtight): a
    // version republished with different content while we applied the old
    // chain must not be served as a "materialized hit" forever.
    std::lock_guard lock(mutex_);
    if (!still_current()) {
      inflight_.erase(version);
      resolved_cv_.notify_all();
      continue;
    }
    const auto it = models_
                        .emplace(version, std::make_shared<const linalg::DenseVector>(
                                              std::move(w)))
                        .first;
    inflight_.erase(version);
    resolved_cv_.notify_all();
    return *it->second;
  }
  std::fprintf(stderr,
               "VersionedModelCache: version %llu kept being invalidated during "
               "resolution — republish storm?\n",
               static_cast<unsigned long long>(version));
  std::abort();
}

bool VersionedModelCache::contains(engine::Version version) const {
  std::lock_guard lock(mutex_);
  return models_.contains(version);
}

std::size_t VersionedModelCache::size() const {
  std::lock_guard lock(mutex_);
  return models_.size();
}

void VersionedModelCache::drop_below(
    engine::Version min_version,
    const std::vector<engine::BroadcastId>& erased_ids) {
  {
    std::lock_guard lock(mutex_);
    for (auto it = models_.begin(); it != models_.end();) {
      it = it->first < min_version ? models_.erase(it) : std::next(it);
    }
  }
  if (bcache_ != nullptr) {
    for (const engine::BroadcastId id : erased_ids) bcache_->erase(id);
  }
}

void VersionedModelCache::invalidate(
    engine::Version version, const std::vector<engine::BroadcastId>& erased_ids) {
  {
    std::lock_guard lock(mutex_);
    models_.erase(version);
  }
  resolved_cv_.notify_all();
  if (bcache_ != nullptr) {
    for (const engine::BroadcastId id : erased_ids) bcache_->erase(id);
  }
}

}  // namespace asyncml::store
