#pragma once

// Worker-side versioned model cache: the consumer half of the delta store.
//
// value_at(v) asks the store for the cheapest chain from v down to this
// cache's nearest materialized ancestor (or a base snapshot, when that costs
// fewer wire bytes), fetches only the missing links — each charged
// individually through the worker's BroadcastCache/NetworkModel, base links
// as BroadcastClass::kSnapshot and delta links as kDelta — and materializes
// the dense model by applying the overwrite deltas in O(Σ nnz).  A version
// already materialized is a pure cache hit: no wire traffic, no payload
// lookups.
//
// Resolution is single-flight per cache: when both executor threads of a
// worker need new versions at once, the second waits for the first and then
// anchors on its materialization instead of re-fetching almost the same
// chain (one worker, one wire).
//
// Base snapshots are materialized zero-copy by aliasing the broadcast payload
// (Payload::share), so a chain's base costs memory once regardless of how
// many caches anchor on it.
//
// Thread safety: all methods are safe to call from the worker's executor
// threads concurrently with driver-side publish/GC.  Returned references stay
// valid until the version is dropped by GC — which the STAT-keyed GC bound
// guarantees cannot happen while a dispatched task can still reference it.

#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/broadcast.hpp"
#include "engine/types.hpp"
#include "linalg/dense_vector.hpp"

namespace asyncml::store {

class ModelStore;

class VersionedModelCache {
 public:
  /// `bcache`/`metrics` may be null (the driver-side cache): resolution then
  /// reads payloads without charging.  `shard_tag` ≥ 0 additionally attributes
  /// every charged fetch to that shard's ClusterMetrics counters.
  VersionedModelCache(const ModelStore* store, engine::BroadcastCache* bcache,
                      engine::ClusterMetrics* metrics,
                      std::int32_t shard_tag = -1)
      : store_(store), bcache_(bcache), metrics_(metrics), shard_tag_(shard_tag) {}

  VersionedModelCache(const VersionedModelCache&) = delete;
  VersionedModelCache& operator=(const VersionedModelCache&) = delete;

  /// The dense model at `version`.  Materialized hit = free; miss fetches
  /// exactly the chain links missing from this worker and charges their exact
  /// wire bytes.  Aborts (via ModelStore::chain_for) on unknown/GC'd versions.
  [[nodiscard]] const linalg::DenseVector& value_at(engine::Version version);

  /// True if `version` is materialized locally (value_at would be free).
  [[nodiscard]] bool contains(engine::Version version) const;

  /// Number of materialized versions held.
  [[nodiscard]] std::size_t size() const;

  // -- ModelStore hooks -------------------------------------------------------

  /// GC propagation: drops materialized versions < `min_version` and evicts
  /// the exact erased broadcast ids from the worker's payload cache.
  void drop_below(engine::Version min_version,
                  const std::vector<engine::BroadcastId>& erased_ids);

  /// Republish propagation: invalidates one version's materialization.
  void invalidate(engine::Version version,
                  const std::vector<engine::BroadcastId>& erased_ids);

 private:
  const ModelStore* store_;
  engine::BroadcastCache* bcache_;   ///< null on the driver — no charging
  engine::ClusterMetrics* metrics_;  ///< null on the driver
  std::int32_t shard_tag_ = -1;      ///< ≥0: attribute fetches to this shard
  mutable std::mutex mutex_;
  std::condition_variable resolved_cv_;
  std::unordered_map<engine::Version, std::shared_ptr<const linalg::DenseVector>>
      models_;
  std::unordered_set<engine::Version> inflight_;  ///< single-flight latches
};

}  // namespace asyncml::store
