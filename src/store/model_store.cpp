#include "store/model_store.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "store/disk/disk_tier.hpp"
#include "store/model_cache.hpp"

namespace asyncml::store {

ModelStore::ModelStore(engine::BroadcastStore* broadcasts, StoreConfig config)
    : broadcasts_(broadcasts), cfg_(config) {
  assert(broadcasts_ != nullptr);
  if (cfg_.base_interval == 0) cfg_.base_interval = 1;  // every version a base
}

ModelStore::~ModelStore() = default;

engine::BroadcastId ModelStore::publish(const linalg::DenseVector& w,
                                        engine::Version version) {
  // publish() runs on the driver thread only (it is not thread-safe against
  // itself or gc_below); prev_/since_base_ are driver-private state, so the
  // O(dim) diff and payload construction stay OFF mutex_ — workers resolving
  // concurrent versions only contend on the brief entries_ commit below.
  std::vector<engine::BroadcastId> replaced;
  bool replacing_parent = false;
  {
    std::lock_guard lock(mutex_);
    if (const auto it = entries_.find(version); it != entries_.end()) {
      // Same-version republish (epoch boundaries re-broadcast the current
      // version when no update landed in between).  Unchanged model: the
      // existing entry already is this publish — keep it, zero wire cost.
      if (has_prev_ && version == prev_version_ && w == prev_) {
        return it->second.has_base() ? it->second.base_id : it->second.delta_id;
      }
      // Changed model: the entry is swapped below (after the new payloads
      // exist, so resolutions never observe a gap) and caches invalidated.
      // The replaced version cannot serve as its own delta parent, so the
      // new entry starts a fresh base.
      replacing_parent = version == prev_version_;
      // Lazy restored entries hold no broadcast (id 0) — only in-memory
      // payloads need erasing; their blobs stay on disk untouched.
      if (it->second.base_id != 0) replaced.push_back(it->second.base_id);
      if (it->second.delta_id != 0) replaced.push_back(it->second.delta_id);
    }
  }

  const std::size_t dim = w.size();
  const bool can_delta = has_prev_ && !replacing_parent && cfg_.delta_enabled &&
                         dim == prev_.size();
  const bool scheduled_base = since_base_ + 1 >= cfg_.base_interval;
  bool densified = false;

  ModelDelta delta;
  if (can_delta) {
    delta.parent = prev_version_;
    // Overwrite deltas must stay sparse; the size cutoff below fires first.
    delta.values.ensure(linalg::GradVectorConfig(dim, /*threshold=*/1.01,
                                                 /*dense_start=*/false));
    const double limit = cfg_.densify_threshold * static_cast<double>(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      if (w[i] != prev_[i]) {
        delta.values.set(static_cast<std::uint32_t>(i), w[i]);
        if (static_cast<double>(delta.values.nnz()) > limit) {
          densified = true;  // a full snapshot is cheaper; break the chain
          break;
        }
      }
    }
  }

  VersionEntry entry;
  entry.parent = delta.parent;
  // The delta twin ships whenever it stayed sparse — also alongside a
  // scheduled base, so warm workers ride the chain straight through it.
  if (can_delta && !densified) {
    entry.delta_bytes = delta.wire_bytes();
    entry.delta_id = broadcasts_->put(
        engine::Payload::wrap<ModelDelta>(std::move(delta), entry.delta_bytes));
  }
  if (!can_delta || densified || scheduled_base) {
    entry.base_bytes = w.size_bytes();
    entry.base_id = broadcasts_->put(
        engine::Payload::wrap<linalg::DenseVector>(w, entry.base_bytes));
    since_base_ = 0;
  } else {
    since_base_ += 1;
  }
  entry.kind = entry.has_base() ? EntryKind::kBase : EntryKind::kDelta;

  {
    std::lock_guard lock(mutex_);
    entries_[version] = entry;
    if (entry.has_delta()) {
      stats_.deltas_published += 1;
      stats_.delta_bytes_published += entry.delta_bytes;
    }
    if (entry.has_base()) {
      stats_.bases_published += 1;
      stats_.base_bytes_published += entry.base_bytes;
    }
    // A fresh base above the restore anchor re-anchors every later
    // resolution in memory — the restored history no longer needs GC
    // protection.
    if (restore_anchor_.has_value() && version > *restore_anchor_ &&
        entry.base_id != 0) {
      restore_anchor_.reset();
    }
  }
  prev_ = w;
  prev_version_ = version;
  has_prev_ = true;

  if (!replaced.empty()) {
    // Old payloads are erased only after the swap, so a resolution that
    // pinned them mid-flight keeps working and then re-validates (see
    // VersionedModelCache::value_at).
    for (const engine::BroadcastId id : replaced) broadcasts_->erase(id);
    for (VersionedModelCache* cache : snapshot_caches()) {
      cache->invalidate(version, replaced);
    }
  }

  if (tier_ != nullptr) {
    // Write-through AFTER the in-memory commit: the live run never waits on
    // or reads from disk, so trajectories are bit-identical with the tier on
    // or off. A write failure degrades durability (the manifest simply lacks
    // this version), never correctness.
    disk::PublishRecord rec;
    rec.shard = manifest_shard_;
    rec.version = version;
    rec.parent = entry.parent;
    bool complete = true;
    if (entry.base_id != 0) {
      auto digest = tier_->put_payload(broadcasts_->get(entry.base_id));
      if (digest.is_ok()) {
        rec.has_base = true;
        rec.base_digest = digest.value();
        rec.base_bytes = entry.base_bytes;
      } else {
        complete = false;
      }
    }
    if (entry.delta_id != 0) {
      auto digest = tier_->put_payload(broadcasts_->get(entry.delta_id));
      if (digest.is_ok()) {
        rec.has_delta = true;
        rec.delta_digest = digest.value();
        rec.delta_bytes = entry.delta_bytes;
      } else {
        complete = false;
      }
    }
    support::Status appended = support::Status::ok();
    if (complete) appended = tier_->append_publish(rec);
    if (!complete || !appended.is_ok()) {
      std::fprintf(stderr,
                   "ModelStore: disk write-through of version %llu failed "
                   "(%s); continuing in-memory\n",
                   static_cast<unsigned long long>(version),
                   appended.is_ok() ? "blob write" : appended.to_string().c_str());
    } else {
      std::lock_guard lock(mutex_);
      if (const auto it = entries_.find(version); it != entries_.end()) {
        it->second.base_hash = rec.base_digest;
        it->second.delta_hash = rec.delta_digest;
      }
    }
  }
  return entry.has_base() ? entry.base_id : entry.delta_id;
}

void ModelStore::attach_disk(disk::DiskTier* tier, std::uint32_t manifest_shard) {
  tier_ = tier;
  manifest_shard_ = manifest_shard;
}

void ModelStore::restore_from_manifest(
    const std::map<std::uint64_t, disk::PublishRecord>& records,
    std::uint64_t floor, engine::Version anchor) {
  // A restored chain must terminate at a snapshot: entries below the oldest
  // base-carrying record at/above the manifest floor would dangle (their
  // parents were GC'd before the crash), so the floor rounds up to it.
  std::uint64_t effective_floor = floor;
  bool found_base = false;
  for (const auto& [version, rec] : records) {
    if (version < floor) continue;
    if (rec.has_base) {
      effective_floor = version;
      found_base = true;
      break;
    }
  }
  std::lock_guard lock(mutex_);
  if (!found_base) {
    // Nothing on disk can anchor a walk; the resumed run's first publish
    // starts a fresh base. GC floor still honors the manifest.
    gc_floor_ = std::max(gc_floor_, floor);
    return;
  }
  for (const auto& [version, rec] : records) {
    if (version < effective_floor) continue;
    VersionEntry entry;
    entry.parent = rec.parent;
    entry.base_bytes = rec.base_bytes;
    entry.delta_bytes = rec.delta_bytes;
    if (rec.has_base) entry.base_hash = rec.base_digest;
    if (rec.has_delta) entry.delta_hash = rec.delta_digest;
    entry.kind = entry.has_base() ? EntryKind::kBase : EntryKind::kDelta;
    entries_[version] = entry;
  }
  gc_floor_ = std::max(gc_floor_, effective_floor);
  // Clamp GC to the version the run resumes at (or the newest restored one
  // below it): until a new base is published above it, collecting it would
  // unlink the only anchor the resumed run has.
  auto it = entries_.upper_bound(anchor);
  restore_anchor_ =
      it == entries_.begin() ? entries_.begin()->first : std::prev(it)->first;
}

std::optional<engine::Version> ModelStore::restore_anchor() const {
  std::lock_guard lock(mutex_);
  return restore_anchor_;
}

std::optional<VersionEntry> ModelStore::entry_of(engine::Version version) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(version);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::optional<engine::BroadcastId> ModelStore::id_of(engine::Version version) const {
  const auto entry = entry_of(version);
  if (!entry.has_value()) return std::nullopt;
  return entry->has_base() ? entry->base_id : entry->delta_id;
}

bool ModelStore::ensure_payload_locked(engine::Version version, VersionEntry& e,
                                       bool base) const {
  engine::BroadcastId& id = base ? e.base_id : e.delta_id;
  support::Sha256Digest& hash = base ? e.base_hash : e.delta_hash;
  if (id != 0) return true;
  if (support::sha256_is_zero(hash)) return false;
  support::StatusOr<engine::Payload> payload =
      tier_ != nullptr
          ? tier_->fetch_payload(hash)
          : support::StatusOr<engine::Payload>(support::Status(
                support::StatusCode::kFailedPrecondition, "no disk tier attached"));
  if (!payload.is_ok()) {
    std::fprintf(stderr,
                 "ModelStore: disk fault-in of version %llu %s failed (%s); "
                 "falling back to an intact ancestor\n",
                 static_cast<unsigned long long>(version), base ? "base" : "delta",
                 payload.status().to_string().c_str());
    // The blob is gone (quarantined or unreadable): forget the address so
    // the rewalk plans around it.
    hash = {};
    return false;
  }
  id = broadcasts_->put(std::move(payload).value());
  return true;
}

std::vector<ChainLink> ModelStore::chain_locked(
    engine::Version version,
    const std::unordered_set<engine::Version>* anchors) const {
  std::vector<ChainLink> chain;
  while (true) {
    chain.clear();
    switch (walk_locked(version, anchors, chain)) {
      case WalkOutcome::kOk:
        return chain;
      case WalkOutcome::kRetry:
        // A lazy entry's blob was lost; its hash is cleared, so the next
        // walk plans a different chain. Each retry clears at least one
        // hash — the loop terminates.
        if (tier_ != nullptr) tier_->metrics().recovery_walks.add(1);
        continue;
      case WalkOutcome::kNoBase:
        // Every snapshot below is gone. Install the nearest intact
        // ancestor's value as a fresh base under `version` — loud, counted,
        // and the only alternative to aborting after real data loss.
        if (!repair_locked(version)) {
          std::fprintf(stderr,
                       "ModelStore: version %llu has no intact snapshot or "
                       "ancestor left to recover from\n",
                       static_cast<unsigned long long>(version));
          std::abort();
        }
        continue;
    }
  }
}

ModelStore::WalkOutcome ModelStore::walk_locked(
    engine::Version version, const std::unordered_set<engine::Version>* anchors,
    std::vector<ChainLink>& out) const {
  // Walk from `version` toward older versions collecting delta links, keeping
  // the cheapest base stop seen so far; commit to a materialized anchor only
  // while its accumulated delta cost still beats every base plan.
  std::vector<ChainLink> deltas;  // walk order: version, parent, grandparent…
  std::size_t delta_cost = 0;
  std::size_t best_base_cost = std::numeric_limits<std::size_t>::max();
  engine::Version best_base = 0;

  const auto die = [&](engine::Version u) {
    std::fprintf(stderr,
                 "ModelStore: version %llu (resolving %llu) %s — a task "
                 "referenced a model below the GC bound or one never "
                 "published\n",
                 static_cast<unsigned long long>(u),
                 static_cast<unsigned long long>(version),
                 u < gc_floor_ ? "was garbage-collected" : "was never published");
    std::abort();
  };
  const auto pinned_payload = [&](engine::BroadcastId id, engine::Version u) {
    engine::Payload payload = broadcasts_->get(id);
    if (!payload.has_value()) {
      std::fprintf(stderr,
                   "ModelStore: broadcast %llu of version %llu missing from "
                   "the store — entry erased without going through gc_below?\n",
                   static_cast<unsigned long long>(id),
                   static_cast<unsigned long long>(u));
      std::abort();
    }
    return payload;
  };
  // Assembles the final chain from the best base stop: [base] + deltas above.
  const auto base_plan = [&]() -> WalkOutcome {
    if (best_base_cost == std::numeric_limits<std::size_t>::max()) {
      return WalkOutcome::kNoBase;
    }
    VersionEntry& base_entry = entries_.at(best_base);
    if (!ensure_payload_locked(best_base, base_entry, /*base=*/true)) {
      return WalkOutcome::kRetry;
    }
    out.push_back(ChainLink{best_base, base_entry.base_id, base_entry.base_bytes,
                            /*is_base=*/true,
                            pinned_payload(base_entry.base_id, best_base)});
    for (auto it = deltas.rbegin(); it != deltas.rend(); ++it) {
      if (it->version > best_base) out.push_back(std::move(*it));
    }
    return WalkOutcome::kOk;
  };

  engine::Version u = version;
  while (true) {
    const auto it = entries_.find(u);
    if (it == entries_.end()) {
      // Mid-chain gap: a restored chain referencing a version the manifest
      // floor dropped (the pre-crash GC rebase was in-memory only). The
      // chain is broken here — fall back to the best base above the gap.
      if (u != version) return base_plan();
      die(u);
    }
    VersionEntry& e = it->second;

    if (u != version && anchors != nullptr && anchors->contains(u)) {
      if (delta_cost <= best_base_cost) {
        // Materialized anchor wins: [anchor] + deltas above it.
        out.push_back(ChainLink{u, 0, 0, /*is_base=*/false, engine::Payload{}});
        for (auto dit = deltas.rbegin(); dit != deltas.rend(); ++dit) {
          out.push_back(std::move(*dit));
        }
        return WalkOutcome::kOk;
      }
      return base_plan();
    }
    if (e.has_base()) {
      const std::size_t cost = e.base_bytes + delta_cost;
      if (cost < best_base_cost) {
        best_base_cost = cost;
        best_base = u;
      }
    }
    // Chain broken (densified delta, GC rebase, first version), or no
    // cheaper anchor can exist below: take the best base seen.
    if (!e.has_delta() || delta_cost >= best_base_cost) return base_plan();

    if (!ensure_payload_locked(u, e, /*base=*/false)) return WalkOutcome::kRetry;
    deltas.push_back(ChainLink{u, e.delta_id, e.delta_bytes, /*is_base=*/false,
                               pinned_payload(e.delta_id, u)});
    delta_cost += e.delta_bytes;
    u = e.parent;
  }
}

bool ModelStore::repair_locked(engine::Version version) const {
  // Newest-first over versions strictly below: the closest intact ancestor
  // loses the fewest updates.
  auto it = entries_.upper_bound(version);
  while (it != entries_.begin()) {
    --it;
    const engine::Version candidate = it->first;
    if (candidate >= version) continue;
    std::vector<ChainLink> chain;
    bool usable = false;
    for (;;) {
      chain.clear();
      const WalkOutcome outcome = walk_locked(candidate, nullptr, chain);
      if (outcome == WalkOutcome::kOk) {
        usable = true;
        break;
      }
      if (outcome == WalkOutcome::kNoBase) break;  // next older candidate
      // kRetry: a hash was cleared; the rewalk plans differently.
    }
    if (!usable) continue;
    assert(!chain.empty() && chain.front().is_base);
    linalg::DenseVector w = chain.front().payload.get<linalg::DenseVector>();
    for (std::size_t i = 1; i < chain.size(); ++i) {
      chain[i].payload.get<ModelDelta>().apply_to(w.span());
    }
    VersionEntry& entry = entries_[version];
    entry.base_bytes = w.size_bytes();
    entry.base_id = broadcasts_->put(engine::Payload::wrap<linalg::DenseVector>(
        std::move(w), entry.base_bytes));
    entry.base_hash = {};
    entry.delta_id = 0;
    entry.delta_bytes = 0;
    entry.delta_hash = {};
    entry.kind = EntryKind::kBase;
    if (tier_ != nullptr) tier_->metrics().bases_republished.add(1);
    std::fprintf(stderr,
                 "ModelStore: version %llu lost to corruption; re-published "
                 "version %llu's model as its base (staleness absorbed, run "
                 "continues)\n",
                 static_cast<unsigned long long>(version),
                 static_cast<unsigned long long>(candidate));
    return true;
  }
  return false;
}

std::vector<ChainLink> ModelStore::chain_for(
    engine::Version version,
    const std::unordered_set<engine::Version>* anchors) const {
  std::lock_guard lock(mutex_);
  return chain_locked(version, anchors);
}

linalg::DenseVector ModelStore::materialize_locked(engine::Version version) const {
  const std::vector<ChainLink> chain = chain_locked(version, nullptr);
  assert(!chain.empty() && chain.front().is_base);
  linalg::DenseVector w = chain.front().payload.get<linalg::DenseVector>();
  for (std::size_t i = 1; i < chain.size(); ++i) {
    chain[i].payload.get<ModelDelta>().apply_to(w.span());
  }
  return w;
}

void ModelStore::gc_below(engine::Version min_version) {
  std::vector<engine::BroadcastId> erased;
  bool floor_advanced = false;
  bool dropped_entries = false;
  {
    std::lock_guard lock(mutex_);
    if (restore_anchor_.has_value()) {
      // Never collect the disk-restore anchor out from under a pending
      // rehydrate: every lazy chain in entries_ bottoms out at or above it.
      min_version = std::min(min_version, *restore_anchor_);
    }
    if (min_version > gc_floor_) {
      gc_floor_ = min_version;
      floor_advanced = true;
    }
    const auto first_keep = entries_.lower_bound(min_version);
    if (entries_.begin() != first_keep) {
      dropped_entries = true;
      if (first_keep == entries_.end()) {
        // Everything is below the cut; the next publish cannot chain onto a
        // GC'd parent, so force it to start a fresh base.
        has_prev_ = false;
      } else if (first_keep->second.has_delta() &&
                 first_keep->second.parent < min_version) {
        // The oldest retained version's delta chains below the cut. Drop the
        // dangling delta; if that leaves the version without a payload,
        // materialize it first and rebase it onto a fresh base snapshot.
        VersionEntry& entry = first_keep->second;
        if (!entry.has_base()) {
          linalg::DenseVector w = materialize_locked(first_keep->first);
          entry.base_bytes = w.size_bytes();
          entry.base_id = broadcasts_->put(engine::Payload::wrap<linalg::DenseVector>(
              std::move(w), entry.base_bytes));
          entry.base_hash = {};
          stats_.compactions += 1;
        }
        if (entry.delta_id != 0) {
          broadcasts_->erase(entry.delta_id);
          erased.push_back(entry.delta_id);
        }
        entry.delta_id = 0;
        entry.delta_bytes = 0;
        entry.delta_hash = {};  // un-fetched lazy delta: just forget the address
        entry.kind = EntryKind::kBase;
      }
      for (auto it = entries_.begin(); it != first_keep;) {
        // Exact ids, never an id threshold: foreign broadcasts may interleave.
        // Lazy restored entries (id 0, hash set) have nothing in memory.
        if (it->second.base_id != 0) {
          broadcasts_->erase(it->second.base_id);
          erased.push_back(it->second.base_id);
        }
        if (it->second.delta_id != 0) {
          broadcasts_->erase(it->second.delta_id);
          erased.push_back(it->second.delta_id);
        }
        it = entries_.erase(it);
      }
    }
  }
  if (dropped_entries) {
    for (VersionedModelCache* cache : snapshot_caches()) {
      cache->drop_below(min_version, erased);
    }
  }
  // The durable floor record makes the retained range self-describing: a
  // restart re-derives its GC bound from the manifest, never from replay.
  if (tier_ != nullptr && floor_advanced) {
    if (support::Status s = tier_->append_gc_floor(manifest_shard_, min_version);
        !s.is_ok()) {
      std::fprintf(stderr,
                   "ModelStore: gc-floor manifest append failed (%s); "
                   "continuing in-memory\n",
                   s.to_string().c_str());
    }
  }
}

VersionedModelCache& ModelStore::cache_for(engine::WorkerId worker,
                                           engine::BroadcastCache* bcache,
                                           engine::ClusterMetrics* metrics) {
  assert(worker >= 0 && bcache != nullptr);
  std::lock_guard lock(caches_mutex_);
  const auto index = static_cast<std::size_t>(worker);
  if (index >= worker_caches_.size()) worker_caches_.resize(index + 1);
  if (worker_caches_[index] == nullptr) {
    worker_caches_[index] =
        std::make_unique<VersionedModelCache>(this, bcache, metrics, shard_tag_);
  }
  return *worker_caches_[index];
}

VersionedModelCache& ModelStore::driver_cache() {
  std::lock_guard lock(caches_mutex_);
  if (driver_cache_ == nullptr) {
    driver_cache_ = std::make_unique<VersionedModelCache>(this, nullptr, nullptr);
  }
  return *driver_cache_;
}

std::vector<VersionedModelCache*> ModelStore::snapshot_caches() {
  std::lock_guard lock(caches_mutex_);
  std::vector<VersionedModelCache*> out;
  out.reserve(worker_caches_.size() + 1);
  for (const auto& cache : worker_caches_) {
    if (cache != nullptr) out.push_back(cache.get());
  }
  if (driver_cache_ != nullptr) out.push_back(driver_cache_.get());
  return out;
}

std::size_t ModelStore::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::optional<engine::Version> ModelStore::oldest() const {
  std::lock_guard lock(mutex_);
  if (entries_.empty()) return std::nullopt;
  return entries_.begin()->first;
}

std::optional<engine::Version> ModelStore::latest_at_or_below(
    engine::Version version) const {
  std::lock_guard lock(mutex_);
  auto it = entries_.upper_bound(version);
  if (it == entries_.begin()) return std::nullopt;
  return std::prev(it)->first;
}

engine::Version ModelStore::gc_floor() const {
  std::lock_guard lock(mutex_);
  return gc_floor_;
}

StoreStats ModelStore::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace asyncml::store
