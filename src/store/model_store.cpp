#include "store/model_store.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "store/model_cache.hpp"

namespace asyncml::store {

ModelStore::ModelStore(engine::BroadcastStore* broadcasts, StoreConfig config)
    : broadcasts_(broadcasts), cfg_(config) {
  assert(broadcasts_ != nullptr);
  if (cfg_.base_interval == 0) cfg_.base_interval = 1;  // every version a base
}

ModelStore::~ModelStore() = default;

engine::BroadcastId ModelStore::publish(const linalg::DenseVector& w,
                                        engine::Version version) {
  // publish() runs on the driver thread only (it is not thread-safe against
  // itself or gc_below); prev_/since_base_ are driver-private state, so the
  // O(dim) diff and payload construction stay OFF mutex_ — workers resolving
  // concurrent versions only contend on the brief entries_ commit below.
  std::vector<engine::BroadcastId> replaced;
  bool replacing_parent = false;
  {
    std::lock_guard lock(mutex_);
    if (const auto it = entries_.find(version); it != entries_.end()) {
      // Same-version republish (epoch boundaries re-broadcast the current
      // version when no update landed in between).  Unchanged model: the
      // existing entry already is this publish — keep it, zero wire cost.
      if (has_prev_ && version == prev_version_ && w == prev_) {
        return it->second.has_base() ? it->second.base_id : it->second.delta_id;
      }
      // Changed model: the entry is swapped below (after the new payloads
      // exist, so resolutions never observe a gap) and caches invalidated.
      // The replaced version cannot serve as its own delta parent, so the
      // new entry starts a fresh base.
      replacing_parent = version == prev_version_;
      if (it->second.has_base()) replaced.push_back(it->second.base_id);
      if (it->second.has_delta()) replaced.push_back(it->second.delta_id);
    }
  }

  const std::size_t dim = w.size();
  const bool can_delta = has_prev_ && !replacing_parent && cfg_.delta_enabled &&
                         dim == prev_.size();
  const bool scheduled_base = since_base_ + 1 >= cfg_.base_interval;
  bool densified = false;

  ModelDelta delta;
  if (can_delta) {
    delta.parent = prev_version_;
    // Overwrite deltas must stay sparse; the size cutoff below fires first.
    delta.values.ensure(linalg::GradVectorConfig(dim, /*threshold=*/1.01,
                                                 /*dense_start=*/false));
    const double limit = cfg_.densify_threshold * static_cast<double>(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      if (w[i] != prev_[i]) {
        delta.values.set(static_cast<std::uint32_t>(i), w[i]);
        if (static_cast<double>(delta.values.nnz()) > limit) {
          densified = true;  // a full snapshot is cheaper; break the chain
          break;
        }
      }
    }
  }

  VersionEntry entry;
  entry.parent = delta.parent;
  // The delta twin ships whenever it stayed sparse — also alongside a
  // scheduled base, so warm workers ride the chain straight through it.
  if (can_delta && !densified) {
    entry.delta_bytes = delta.wire_bytes();
    entry.delta_id = broadcasts_->put(
        engine::Payload::wrap<ModelDelta>(std::move(delta), entry.delta_bytes));
  }
  if (!can_delta || densified || scheduled_base) {
    entry.base_bytes = w.size_bytes();
    entry.base_id = broadcasts_->put(
        engine::Payload::wrap<linalg::DenseVector>(w, entry.base_bytes));
    since_base_ = 0;
  } else {
    since_base_ += 1;
  }
  entry.kind = entry.has_base() ? EntryKind::kBase : EntryKind::kDelta;

  {
    std::lock_guard lock(mutex_);
    entries_[version] = entry;
    if (entry.has_delta()) {
      stats_.deltas_published += 1;
      stats_.delta_bytes_published += entry.delta_bytes;
    }
    if (entry.has_base()) {
      stats_.bases_published += 1;
      stats_.base_bytes_published += entry.base_bytes;
    }
  }
  prev_ = w;
  prev_version_ = version;
  has_prev_ = true;

  if (!replaced.empty()) {
    // Old payloads are erased only after the swap, so a resolution that
    // pinned them mid-flight keeps working and then re-validates (see
    // VersionedModelCache::value_at).
    for (const engine::BroadcastId id : replaced) broadcasts_->erase(id);
    for (VersionedModelCache* cache : snapshot_caches()) {
      cache->invalidate(version, replaced);
    }
  }
  return entry.has_base() ? entry.base_id : entry.delta_id;
}

std::optional<VersionEntry> ModelStore::entry_of(engine::Version version) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find(version);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::optional<engine::BroadcastId> ModelStore::id_of(engine::Version version) const {
  const auto entry = entry_of(version);
  if (!entry.has_value()) return std::nullopt;
  return entry->has_base() ? entry->base_id : entry->delta_id;
}

std::vector<ChainLink> ModelStore::chain_locked(
    engine::Version version,
    const std::unordered_set<engine::Version>* anchors) const {
  // Walk from `version` toward older versions collecting delta links, keeping
  // the cheapest base stop seen so far; commit to a materialized anchor only
  // while its accumulated delta cost still beats every base plan.
  std::vector<ChainLink> deltas;  // walk order: version, parent, grandparent…
  std::size_t delta_cost = 0;
  std::size_t best_base_cost = std::numeric_limits<std::size_t>::max();
  engine::Version best_base = 0;

  const auto die = [&](engine::Version u) {
    std::fprintf(stderr,
                 "ModelStore: version %llu (resolving %llu) %s — a task "
                 "referenced a model below the GC bound or one never "
                 "published\n",
                 static_cast<unsigned long long>(u),
                 static_cast<unsigned long long>(version),
                 u < gc_floor_ ? "was garbage-collected" : "was never published");
    std::abort();
  };
  const auto pinned_payload = [&](engine::BroadcastId id, engine::Version u) {
    engine::Payload payload = broadcasts_->get(id);
    if (!payload.has_value()) {
      std::fprintf(stderr,
                   "ModelStore: broadcast %llu of version %llu missing from "
                   "the store — entry erased without going through gc_below?\n",
                   static_cast<unsigned long long>(id),
                   static_cast<unsigned long long>(u));
      std::abort();
    }
    return payload;
  };
  // Assembles the final chain from the best base stop: [base] + deltas above.
  const auto base_plan = [&] {
    assert(best_base_cost != std::numeric_limits<std::size_t>::max());
    const VersionEntry& base_entry = entries_.at(best_base);
    std::vector<ChainLink> chain;
    chain.push_back(ChainLink{best_base, base_entry.base_id,
                              base_entry.base_bytes, /*is_base=*/true,
                              pinned_payload(base_entry.base_id, best_base)});
    for (auto it = deltas.rbegin(); it != deltas.rend(); ++it) {
      if (it->version > best_base) chain.push_back(std::move(*it));
    }
    return chain;
  };

  engine::Version u = version;
  while (true) {
    const auto it = entries_.find(u);
    if (it == entries_.end()) die(u);
    const VersionEntry& e = it->second;

    if (u != version && anchors != nullptr && anchors->contains(u)) {
      if (delta_cost <= best_base_cost) {
        // Materialized anchor wins: [anchor] + deltas above it.
        std::vector<ChainLink> chain;
        chain.push_back(ChainLink{u, 0, 0, /*is_base=*/false, engine::Payload{}});
        for (auto dit = deltas.rbegin(); dit != deltas.rend(); ++dit) {
          chain.push_back(std::move(*dit));
        }
        return chain;
      }
      return base_plan();
    }
    if (e.has_base()) {
      const std::size_t cost = e.base_bytes + delta_cost;
      if (cost < best_base_cost) {
        best_base_cost = cost;
        best_base = u;
      }
    }
    // Chain broken (densified delta, GC rebase, first version), or no
    // cheaper anchor can exist below: take the best base seen.
    if (!e.has_delta() || delta_cost >= best_base_cost) return base_plan();

    deltas.push_back(ChainLink{u, e.delta_id, e.delta_bytes, /*is_base=*/false,
                               pinned_payload(e.delta_id, u)});
    delta_cost += e.delta_bytes;
    u = e.parent;
  }
}

std::vector<ChainLink> ModelStore::chain_for(
    engine::Version version,
    const std::unordered_set<engine::Version>* anchors) const {
  std::lock_guard lock(mutex_);
  return chain_locked(version, anchors);
}

linalg::DenseVector ModelStore::materialize_locked(engine::Version version) const {
  const std::vector<ChainLink> chain = chain_locked(version, nullptr);
  assert(!chain.empty() && chain.front().is_base);
  linalg::DenseVector w = chain.front().payload.get<linalg::DenseVector>();
  for (std::size_t i = 1; i < chain.size(); ++i) {
    chain[i].payload.get<ModelDelta>().apply_to(w.span());
  }
  return w;
}

void ModelStore::gc_below(engine::Version min_version) {
  std::vector<engine::BroadcastId> erased;
  {
    std::lock_guard lock(mutex_);
    gc_floor_ = std::max(gc_floor_, min_version);
    const auto first_keep = entries_.lower_bound(min_version);
    if (entries_.begin() == first_keep) return;  // nothing below the cut
    if (first_keep == entries_.end()) {
      // Everything is below the cut; the next publish cannot chain onto a
      // GC'd parent, so force it to start a fresh base.
      has_prev_ = false;
    } else if (first_keep->second.has_delta() &&
               first_keep->second.parent < min_version) {
      // The oldest retained version's delta chains below the cut. Drop the
      // dangling delta; if that leaves the version without a payload,
      // materialize it first and rebase it onto a fresh base snapshot.
      VersionEntry& entry = first_keep->second;
      if (!entry.has_base()) {
        linalg::DenseVector w = materialize_locked(first_keep->first);
        entry.base_bytes = w.size_bytes();
        entry.base_id = broadcasts_->put(engine::Payload::wrap<linalg::DenseVector>(
            std::move(w), entry.base_bytes));
        stats_.compactions += 1;
      }
      broadcasts_->erase(entry.delta_id);
      erased.push_back(entry.delta_id);
      entry.delta_id = 0;
      entry.delta_bytes = 0;
      entry.kind = EntryKind::kBase;
    }
    for (auto it = entries_.begin(); it != first_keep;) {
      // Exact ids, never an id threshold: foreign broadcasts may interleave.
      if (it->second.has_base()) {
        broadcasts_->erase(it->second.base_id);
        erased.push_back(it->second.base_id);
      }
      if (it->second.has_delta()) {
        broadcasts_->erase(it->second.delta_id);
        erased.push_back(it->second.delta_id);
      }
      it = entries_.erase(it);
    }
  }
  for (VersionedModelCache* cache : snapshot_caches()) {
    cache->drop_below(min_version, erased);
  }
}

VersionedModelCache& ModelStore::cache_for(engine::WorkerId worker,
                                           engine::BroadcastCache* bcache,
                                           engine::ClusterMetrics* metrics) {
  assert(worker >= 0 && bcache != nullptr);
  std::lock_guard lock(caches_mutex_);
  const auto index = static_cast<std::size_t>(worker);
  if (index >= worker_caches_.size()) worker_caches_.resize(index + 1);
  if (worker_caches_[index] == nullptr) {
    worker_caches_[index] =
        std::make_unique<VersionedModelCache>(this, bcache, metrics, shard_tag_);
  }
  return *worker_caches_[index];
}

VersionedModelCache& ModelStore::driver_cache() {
  std::lock_guard lock(caches_mutex_);
  if (driver_cache_ == nullptr) {
    driver_cache_ = std::make_unique<VersionedModelCache>(this, nullptr, nullptr);
  }
  return *driver_cache_;
}

std::vector<VersionedModelCache*> ModelStore::snapshot_caches() {
  std::lock_guard lock(caches_mutex_);
  std::vector<VersionedModelCache*> out;
  out.reserve(worker_caches_.size() + 1);
  for (const auto& cache : worker_caches_) {
    if (cache != nullptr) out.push_back(cache.get());
  }
  if (driver_cache_ != nullptr) out.push_back(driver_cache_.get());
  return out;
}

std::size_t ModelStore::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

std::optional<engine::Version> ModelStore::oldest() const {
  std::lock_guard lock(mutex_);
  if (entries_.empty()) return std::nullopt;
  return entries_.begin()->first;
}

std::optional<engine::Version> ModelStore::latest_at_or_below(
    engine::Version version) const {
  std::lock_guard lock(mutex_);
  auto it = entries_.upper_bound(version);
  if (it == entries_.begin()) return std::nullopt;
  return std::prev(it)->first;
}

engine::Version ModelStore::gc_floor() const {
  std::lock_guard lock(mutex_);
  return gc_floor_;
}

StoreStats ModelStore::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace asyncml::store
