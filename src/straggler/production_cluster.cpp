#include "straggler/production_cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "support/rng.hpp"

namespace asyncml::straggler {

ProductionCluster::ProductionCluster(int num_workers, std::uint64_t seed,
                                     PcsConfig config)
    : multipliers_(static_cast<std::size_t>(num_workers), 1.0) {
  assert(num_workers > 0);
  support::RngStream rng(seed);

  num_stragglers_ = static_cast<int>(
      std::lround(config.straggler_fraction * static_cast<double>(num_workers)));
  num_stragglers_ = std::clamp(num_stragglers_, 0, num_workers);
  num_long_tail_ = static_cast<int>(
      std::lround(config.long_tail_fraction * static_cast<double>(num_stragglers_)));
  num_long_tail_ = std::clamp(num_long_tail_, 0, num_stragglers_);

  // Choose which workers straggle, then which of those are long tail.
  auto straggler_ids = support::sample_without_replacement(
      rng, static_cast<std::size_t>(num_workers), static_cast<std::size_t>(num_stragglers_));
  for (int i = 0; i < num_stragglers_; ++i) {
    const std::size_t w = straggler_ids[static_cast<std::size_t>(i)];
    const bool long_tail = i < num_long_tail_;
    multipliers_[w] = long_tail ? rng.uniform(config.long_tail_lo, config.long_tail_hi)
                                : rng.uniform(config.uniform_lo, config.uniform_hi);
  }
}

double ProductionCluster::multiplier(engine::WorkerId worker, std::uint64_t) const {
  return multipliers_.at(static_cast<std::size_t>(worker));
}

}  // namespace asyncml::straggler
