#pragma once

// Trace-driven delay model: replays recorded per-worker slowdown traces.
//
// The CDS and PCS models are *stationary* (a worker's multiplier never
// changes).  Real clusters drift: machines degrade, recover, get co-tenants.
// TraceReplay feeds the engine a schedule of multipliers per worker — either
// constructed programmatically or loaded from a CSV of
// `worker,seq,multiplier` rows — enabling experiments against recorded or
// scripted straggler behaviour (e.g. a worker that becomes a straggler
// mid-run, the scenario the STAT table's EWMA exists for).

#include <string>
#include <vector>

#include "engine/delay_model.hpp"
#include "support/status.hpp"

namespace asyncml::straggler {

class TraceReplay final : public engine::DelayModel {
 public:
  /// `schedule[w]` lists worker w's multiplier per dispatch round; rounds
  /// beyond the end of a worker's trace repeat its last entry (a drained
  /// trace means steady state). Workers without a trace run at 1.0.
  explicit TraceReplay(std::vector<std::vector<double>> schedule);

  /// Parses CSV rows `worker,seq,multiplier` (header and blank lines
  /// ignored). Missing (worker, seq) cells default to the previous seq's
  /// value, i.e. traces are step functions.
  [[nodiscard]] static support::StatusOr<TraceReplay> from_csv(const std::string& text,
                                                               int num_workers);

  [[nodiscard]] double multiplier(engine::WorkerId worker,
                                  std::uint64_t seq) const override;

  [[nodiscard]] const char* name() const override { return "trace-replay"; }

  [[nodiscard]] std::size_t num_traced_workers() const noexcept {
    return schedule_.size();
  }

 private:
  std::vector<std::vector<double>> schedule_;
};

}  // namespace asyncml::straggler
