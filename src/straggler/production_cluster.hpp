#pragma once

// Production Cluster Straggler (PCS) pattern.
//
// Reproduces the distribution the paper synthesizes from empirical studies of
// Microsoft Bing and Google production clusters [3, 20, 21, 46, 50]:
//   * ~25% of machines are stragglers;
//   * 80% of stragglers have a uniform delay of 150%–250% of the mean
//     task-completion time;
//   * the remaining 20% are "long tail" workers delayed 250% up to 10×.
// For the paper's 32-worker experiment this yields 6 uniform stragglers and
// 2 long-tail workers; the same proportions apply at other cluster sizes.
// Multipliers are drawn once per worker from a fixed seed, so repeated runs
// see the identical cluster (the paper fixes the randomized delay seed too).

#include <memory>
#include <vector>

#include "engine/delay_model.hpp"

namespace asyncml::straggler {

struct PcsConfig {
  double straggler_fraction = 0.25;
  double long_tail_fraction = 0.20;  ///< of the stragglers
  double uniform_lo = 1.5;           ///< 150% of mean service time
  double uniform_hi = 2.5;           ///< 250%
  double long_tail_lo = 2.5;         ///< 250%
  double long_tail_hi = 10.0;        ///< 10×
};

class ProductionCluster final : public engine::DelayModel {
 public:
  ProductionCluster(int num_workers, std::uint64_t seed, PcsConfig config = {});

  [[nodiscard]] double multiplier(engine::WorkerId worker,
                                  std::uint64_t) const override;

  [[nodiscard]] const char* name() const override { return "production-cluster"; }

  [[nodiscard]] int num_stragglers() const noexcept { return num_stragglers_; }
  [[nodiscard]] int num_long_tail() const noexcept { return num_long_tail_; }
  [[nodiscard]] const std::vector<double>& multipliers() const noexcept {
    return multipliers_;
  }

 private:
  std::vector<double> multipliers_;
  int num_stragglers_ = 0;
  int num_long_tail_ = 0;
};

}  // namespace asyncml::straggler
