#include "straggler/trace_replay.hpp"

#include <charconv>
#include <sstream>

namespace asyncml::straggler {

using support::Status;
using support::StatusCode;
using support::StatusOr;

TraceReplay::TraceReplay(std::vector<std::vector<double>> schedule)
    : schedule_(std::move(schedule)) {}

double TraceReplay::multiplier(engine::WorkerId worker, std::uint64_t seq) const {
  if (worker < 0 || static_cast<std::size_t>(worker) >= schedule_.size()) return 1.0;
  const auto& trace = schedule_[static_cast<std::size_t>(worker)];
  if (trace.empty()) return 1.0;
  const std::size_t index = std::min<std::size_t>(seq, trace.size() - 1);
  return trace[index];
}

StatusOr<TraceReplay> TraceReplay::from_csv(const std::string& text, int num_workers) {
  std::vector<std::vector<double>> schedule(static_cast<std::size_t>(num_workers));
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line.starts_with("worker") || line.starts_with("#")) continue;
    long worker = -1;
    unsigned long long seq = 0;
    double mult = 1.0;
    std::istringstream fields(line);
    char comma1 = 0, comma2 = 0;
    if (!(fields >> worker >> comma1 >> seq >> comma2 >> mult) || comma1 != ',' ||
        comma2 != ',') {
      return Status(StatusCode::kInvalidArgument,
                    "trace csv line " + std::to_string(line_no) + ": expected "
                    "'worker,seq,multiplier', got '" + line + "'");
    }
    if (worker < 0 || worker >= num_workers) {
      return Status(StatusCode::kInvalidArgument,
                    "trace csv line " + std::to_string(line_no) + ": worker " +
                        std::to_string(worker) + " out of range");
    }
    if (mult < 1.0) {
      return Status(StatusCode::kInvalidArgument,
                    "trace csv line " + std::to_string(line_no) +
                        ": multiplier must be >= 1.0");
    }
    auto& trace = schedule[static_cast<std::size_t>(worker)];
    // Step-function fill: extend with the previous value up to `seq`.
    const double fill = trace.empty() ? 1.0 : trace.back();
    while (trace.size() <= seq) trace.push_back(fill);
    trace[seq] = mult;
  }
  return TraceReplay(std::move(schedule));
}

}  // namespace asyncml::straggler
