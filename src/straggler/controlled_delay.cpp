#include "straggler/controlled_delay.hpp"

// ControlledDelay is fully inline; this translation unit anchors the vtable.

namespace asyncml::straggler {}  // namespace asyncml::straggler
