#pragma once

// Controlled Delay Straggler (CDS) — the paper's §6.3 single-straggler model.
//
// One designated worker executes every task `intensity` slower: a delay
// intensity of 1.0 (the paper's "100%") means the worker runs at half speed
// (service time × 2).  The paper implements this with `sleep`; we implement
// it as a service-time multiplier, which is the same thing under the
// service-floor execution model.

#include "engine/delay_model.hpp"

namespace asyncml::straggler {

class ControlledDelay final : public engine::DelayModel {
 public:
  /// `intensity` in [0, ∞): fraction of the base iteration time added to the
  /// straggler's tasks (0.3 → 30% slower, 1.0 → 2× service time).
  ControlledDelay(engine::WorkerId straggler, double intensity)
      : straggler_(straggler), intensity_(intensity) {}

  [[nodiscard]] double multiplier(engine::WorkerId worker,
                                  std::uint64_t) const override {
    return worker == straggler_ ? 1.0 + intensity_ : 1.0;
  }

  [[nodiscard]] const char* name() const override { return "controlled-delay"; }

  [[nodiscard]] engine::WorkerId straggler() const noexcept { return straggler_; }
  [[nodiscard]] double intensity() const noexcept { return intensity_; }

 private:
  engine::WorkerId straggler_;
  double intensity_;
};

}  // namespace asyncml::straggler
