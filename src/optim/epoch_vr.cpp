#include "optim/epoch_vr.hpp"

#include "core/async_context.hpp"
#include "metrics/trace.hpp"
#include "optim/objective.hpp"
#include "optim/solver_util.hpp"
#include "support/stopwatch.hpp"

namespace asyncml::optim {

RunResult EpochVrSolver::run(engine::Cluster& cluster, const Workload& workload,
                             const SolverConfig& config) {
  const std::size_t dim = workload.dim();
  const double batch_service_ms =
      config.service_floor_ms > 0.0
          ? config.service_floor_ms
          : config.cost.task_service_ms(*workload.dataset, workload.num_partitions(),
                                        config.batch_fraction, /*saga_two_pass=*/true);
  // The full-gradient pass touches the whole partition.
  const double full_service_ms = config.cost.task_service_ms(
      *workload.dataset, workload.num_partitions(), 1.0);
  const double step_scale =
      config.async_step_scale.value_or(1.0 / static_cast<double>(cluster.num_workers()));

  const linalg::GradVectorConfig grad_cfg = detail::grad_config(workload, config);
  // Per-partition shard-support sets (sparse workloads on a sharded plane).
  const auto support_table = detail::shard_support_table(workload, config);

  detail::reset_run_metrics(cluster.metrics());
  detail::begin_telemetry(cluster, config);

  core::AsyncContext ac(cluster, workload.num_partitions(), config.store_config);
  ac.scheduler().set_policy(detail::scheduler_policy(workload, config));

  linalg::DenseVector w(dim);
  metrics::TraceRecorder recorder(config.eval_every);
  recorder.reserve_for(config.updates);
  support::Stopwatch watch;
  recorder.snapshot(0, 0.0, w);

  std::uint64_t updates = 0;
  auto comb = detail::grad_comb();
  while (updates < config.updates) {
    // ---- Epoch head: synchronous full gradient at the snapshot w̃. --------
    // The previous epoch's history (its snapshot and inner versions) is dead
    // once the tail drain left the cluster quiet; compact it.
    if (config.gc_every != 0) (void)ac.gc_history();
    const linalg::DenseVector snapshot = w;
    core::HistoryBroadcast snapshot_br = ac.async_broadcast(snapshot);
    const engine::Version snapshot_version = snapshot_br.version();

    core::SubmitOptions full_opts;
    full_opts.service_floor_ms = full_service_ms;
    full_opts.rng_seed = config.seed;
    auto full_results = ac.sync_round_fn(
        detail::grad_task_fn(workload, config, snapshot_br, grad_cfg,
                             /*fraction=*/std::nullopt, support_table),
        full_opts);
    GradCount mu_sum;
    for (core::TaggedResult& r : full_results) {
      mu_sum = comb(std::move(mu_sum), r.result.payload.get<GradCount>());
    }
    linalg::DenseVector mu(dim);
    if (mu_sum.count > 0) {
      mu_sum.grad.scale_into(1.0 / static_cast<double>(mu_sum.count), mu.span());
    }

    // ---- Asynchronous inner loop. -----------------------------------------
    core::SubmitOptions opts;
    opts.service_floor_ms = batch_service_ms;
    opts.rng_seed = config.seed;

    core::HistoryBroadcast w_br = ac.handle_for(snapshot_version);
    auto rebuild_factory = [&] {
      return ac.make_fn_factory(
          detail::svrg_task_fn(workload, config, w_br, snapshot_br, grad_cfg,
                               config.batch_fraction, support_table),
          opts);
    };
    core::AsyncScheduler::TaskFactory factory = rebuild_factory();
    detail::dispatch_live(ac, config.barrier, factory);

    std::uint64_t inner = 0;
    while (inner < config.epoch_inner_updates && updates < config.updates) {
      auto collected = ac.collect(&factory);
      if (!collected.has_value()) return RunResult{};  // context stopped

      const GradHist& g = collected->result.payload.get<GradHist>();
      if (g.count > 0) {
        const double inv_b = 1.0 / static_cast<double>(g.count);
        linalg::DenseVector direction = mu;
        g.grad.scale_into(inv_b, direction.span());
        g.hist.scale_into(-inv_b, direction.span());
        linalg::axpy(-config.step(updates) * step_scale, direction.span(), w.span());
      }
      ++inner;
      ++updates;
      ac.advance_version();
      w_br = ac.async_broadcast(w);
      factory = rebuild_factory();
      recorder.maybe_snapshot(updates, watch.elapsed_ms(), w);
      // In-flight inner tasks still read the epoch's w̃ — floor the GC there.
      detail::maybe_gc_history(ac, config, updates, snapshot_version);
      if (inner < config.epoch_inner_updates && updates < config.updates) {
        detail::dispatch_live(ac, config.barrier, factory);
      }
    }

    // ---- Epoch tail: drain in-flight inner tasks so the next epoch's
    // synchronous stage sees a quiet cluster (Listing 3's epoch boundary). --
    while (ac.coordinator().total_outstanding() > 0 || ac.has_next()) {
      auto leftover = ac.collect(&factory);
      if (!leftover.has_value()) break;
      // Leftover inner results are still valid SVRG updates; apply them.
      const GradHist& g = leftover->result.payload.get<GradHist>();
      if (g.count > 0) {
        const double inv_b = 1.0 / static_cast<double>(g.count);
        linalg::DenseVector direction = mu;
        g.grad.scale_into(inv_b, direction.span());
        g.hist.scale_into(-inv_b, direction.span());
        linalg::axpy(-config.step(updates) * step_scale, direction.span(), w.span());
        ++updates;
        ac.advance_version();
        recorder.maybe_snapshot(updates, watch.elapsed_ms(), w);
      }
    }
  }
  recorder.snapshot(updates, watch.elapsed_ms(), w);

  RunResult result;
  result.algorithm = "EpochVR";
  result.wall_ms = watch.elapsed_ms();
  result.updates = updates;
  result.tasks = updates;
  result.final_w = w;
  detail::fill_run_stats(result, cluster.metrics());
  detail::finish_telemetry(result, cluster, config);
  result.trace = recorder.finalize([&](const linalg::DenseVector& model) {
    return full_objective(*workload.dataset, *workload.loss, model);
  });
  return result;
}

}  // namespace asyncml::optim
