#pragma once

// Task-result payload types of the optimizers, with wire-size overloads so
// the engine charges realistic transfer costs.
//
// Gradients ride in linalg::GradVector, so a sparse mini-batch ships only the
// union of its feature indices (8 + 12*nnz bytes) instead of dim*8 — the
// charged network bytes the paper's figures measure now track true support.

#include <cstdint>

#include "linalg/grad_vector.hpp"

namespace asyncml::optim {

/// Sum of per-sample gradients over the task's mini-batch plus the batch
/// size; the server divides to get the unbiased mini-batch gradient.
struct GradCount {
  linalg::GradVector grad;
  std::uint64_t count = 0;
};

[[nodiscard]] inline std::size_t payload_size_bytes(const GradCount& g) {
  return g.grad.size_bytes() + sizeof(g.count);
}

/// SAGA/ASAGA (and SVRG-style) payload: the batch's fresh gradient sum and
/// its historical (or snapshot) gradient sum.
struct GradHist {
  linalg::GradVector grad;  ///< Σ ∇f_j(w_current) over the batch
  linalg::GradVector hist;  ///< Σ ∇f_j(w_historical_j) over the batch
  std::uint64_t count = 0;
};

[[nodiscard]] inline std::size_t payload_size_bytes(const GradHist& g) {
  return g.grad.size_bytes() + g.hist.size_bytes() + sizeof(g.count);
}

}  // namespace asyncml::optim
