#pragma once

// Common result type returned by every solver run, carrying the convergence
// trace and the run-level statistics the paper reports (wall time, mean
// worker wait time, modeled wire traffic).

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "engine/metrics.hpp"
#include "linalg/dense_vector.hpp"
#include "metrics/trace.hpp"
#include "telemetry/report.hpp"

namespace asyncml::optim {

struct RunResult {
  std::string algorithm;
  metrics::Trace trace;            ///< (time_ms, update, error) series
  linalg::DenseVector final_w;
  double wall_ms = 0.0;            ///< total timed run duration
  std::uint64_t updates = 0;       ///< model updates applied
  std::uint64_t tasks = 0;         ///< task results consumed
  double mean_wait_ms = 0.0;       ///< per-iteration worker wait (Fig 4/6, Table 3)
  double p95_wait_ms = 0.0;
  /// Real CPU time inside task functions, per completed task (ms) — the
  /// engine's actual compute cost before service-floor padding.
  double mean_task_compute_ms = 0.0;
  std::uint64_t broadcast_bytes = 0;  ///< modeled bytes fetched by workers
  std::uint64_t broadcast_base_bytes = 0;   ///< full-snapshot share of broadcast_bytes
  std::uint64_t broadcast_delta_bytes = 0;  ///< sparse-delta share of broadcast_bytes
  std::uint64_t result_bytes = 0;     ///< modeled bytes of result payloads
  std::uint64_t broadcast_fetches = 0;
  std::uint64_t broadcast_hits = 0;
  std::uint64_t migration_bytes = 0;   ///< partition data moved by steals/replicas
  std::uint64_t partitions_stolen = 0; ///< ownership transfers (work stealing)
  std::uint64_t tasks_speculated = 0;  ///< speculative replicas dispatched
  std::uint64_t duplicates_dropped = 0;  ///< replica results dropped (first-wins)

  // Sharded-model-plane read accounting (docs/SHARDING.md): worker-side model
  // materializations, how many of them were masked below the full shard
  // count, and the total shard fills — shard_touches / shard_reads is the
  // mean shards-per-read, < S on sparse support-masked runs.
  std::uint64_t shard_reads = 0;
  std::uint64_t shard_reads_partial = 0;  ///< reads touching < S shards
  std::uint64_t shard_touches = 0;        ///< shard fills summed over reads

  /// Per-channel transport wire accounting (docs/TRANSPORT.md), indexed by
  /// engine::WireChannel. On the in-process backend these are the *charged*
  /// (modeled) bytes; on the socket backends they are *measured* frame bytes
  /// — same counters, so charged-vs-measured comparisons read one path.
  struct WireChannelStats {
    std::uint64_t frames = 0;
    std::uint64_t bytes_sent = 0;      ///< data-bearing request frames
    std::uint64_t bytes_received = 0;  ///< ack frames
  };
  std::array<WireChannelStats, engine::kNumWireChannels> wire{};

  /// Durable disk tier under the model store (docs/DURABILITY.md); all zero
  /// unless SolverConfig::store_config.disk.enabled.
  struct DiskTierStats {
    std::uint64_t blob_writes = 0;
    std::uint64_t blob_write_bytes = 0;
    std::uint64_t blob_reads = 0;
    std::uint64_t blob_read_bytes = 0;
    std::uint64_t lru_hits = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t recovery_walks = 0;
    std::uint64_t manifest_appends = 0;
  };
  DiskTierStats disk;

  /// Harvested span telemetry (docs/TELEMETRY.md); null unless the run was
  /// configured with SolverConfig::telemetry.enabled.
  std::shared_ptr<const telemetry::TelemetryReport> telemetry;

  [[nodiscard]] double final_error() const { return metrics::final_error(trace); }
};

}  // namespace asyncml::optim
