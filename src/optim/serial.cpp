#include "optim/serial.hpp"

#include <vector>

#include "linalg/blas.hpp"
#include "linalg/grad_vector.hpp"

namespace asyncml::optim {

using linalg::DenseVector;

DenseVector serial_sgd(const data::Dataset& dataset, const Loss& loss,
                       std::uint64_t iterations, double batch_fraction,
                       const StepSchedule& step, std::uint64_t seed) {
  const std::size_t n = dataset.rows();
  DenseVector w(dataset.cols());
  support::RngStream root(seed);
  const linalg::GradVectorConfig grad_cfg = linalg::resolve_grad_config(
      linalg::GradMode::kAuto, dataset.cols(),
      linalg::expected_union_density(dataset.density(),
                                     batch_fraction * static_cast<double>(n)));
  linalg::GradVector grad(grad_cfg);
  for (std::uint64_t k = 0; k < iterations; ++k) {
    support::RngStream rng = root.substream(k);
    grad.set_zero();
    std::uint64_t count = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (!rng.bernoulli(batch_fraction)) continue;
      const data::LabeledPoint p = dataset.point(r);
      const double coeff = loss.derivative(p.features.dot(w.span()), p.label);
      p.features.axpy_into(coeff, grad);
      ++count;
    }
    if (count == 0) continue;
    grad.scale_into(-step(k) / static_cast<double>(count), w.span());
  }
  return w;
}

DenseVector serial_saga(const data::Dataset& dataset, const Loss& loss,
                        std::uint64_t iterations, double batch_fraction, double step,
                        std::uint64_t seed) {
  const std::size_t n = dataset.rows();
  const std::size_t d = dataset.cols();
  DenseVector w(d);

  // Stored per-sample gradient *coefficients*: for margin losses the gradient
  // of sample i is coeff_i · x_i, so the table stores one scalar per sample
  // and the mean gradient is maintained incrementally as a dense vector.
  std::vector<double> table_coeff(n);
  DenseVector mean(d);
  for (std::size_t r = 0; r < n; ++r) {
    const data::LabeledPoint p = dataset.point(r);
    table_coeff[r] = loss.derivative(p.features.dot(w.span()), p.label);
    p.features.axpy_into(table_coeff[r] / static_cast<double>(n), mean.span());
  }

  support::RngStream root(seed);
  const linalg::GradVectorConfig grad_cfg = linalg::resolve_grad_config(
      linalg::GradMode::kAuto, d,
      linalg::expected_union_density(dataset.density(),
                                     batch_fraction * static_cast<double>(n)));
  linalg::GradVector batch_dir(grad_cfg);
  for (std::uint64_t k = 0; k < iterations; ++k) {
    support::RngStream rng = root.substream(k);
    batch_dir.set_zero();
    std::uint64_t count = 0;
    // Collect the batch's (new − old) direction and update the table/mean.
    for (std::size_t r = 0; r < n; ++r) {
      if (!rng.bernoulli(batch_fraction)) continue;
      const data::LabeledPoint p = dataset.point(r);
      const double coeff_new = loss.derivative(p.features.dot(w.span()), p.label);
      const double delta = coeff_new - table_coeff[r];
      p.features.axpy_into(delta, batch_dir);
      p.features.axpy_into(delta / static_cast<double>(n), mean.span());
      table_coeff[r] = coeff_new;
      ++count;
    }
    if (count == 0) continue;
    // w ← w − α [ (g_new − g_old)/b + mean_before ]; mean was already
    // advanced, so reconstruct mean_before = mean − batch_dir/n.
    DenseVector direction = mean;
    batch_dir.scale_into(-1.0 / static_cast<double>(n), direction.span());
    batch_dir.scale_into(1.0 / static_cast<double>(count), direction.span());
    linalg::axpy(-step, direction.span(), w.span());
  }
  return w;
}

}  // namespace asyncml::optim
