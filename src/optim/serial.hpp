#pragma once

// Serial reference implementations (no cluster): ground truth the distributed
// solvers are tested against.

#include "data/dataset.hpp"
#include "linalg/dense_vector.hpp"
#include "optim/loss.hpp"
#include "optim/step_size.hpp"
#include "support/rng.hpp"

namespace asyncml::optim {

/// Mini-batch SGD on one thread: per iteration samples each row with
/// probability `batch_fraction` and applies the averaged gradient.
[[nodiscard]] linalg::DenseVector serial_sgd(const data::Dataset& dataset,
                                             const Loss& loss, std::uint64_t iterations,
                                             double batch_fraction,
                                             const StepSchedule& step,
                                             std::uint64_t seed);

/// Textbook SAGA with a stored gradient table (mean-form updates), mini-batch
/// variant. Converges linearly on smooth strongly convex problems.
[[nodiscard]] linalg::DenseVector serial_saga(const data::Dataset& dataset,
                                              const Loss& loss, std::uint64_t iterations,
                                              double batch_fraction, double step,
                                              std::uint64_t seed);

}  // namespace asyncml::optim
