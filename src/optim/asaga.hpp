#pragma once

// ASAGA — asynchronous SAGA, the paper's Algorithm 4 (after Leblond et al.).
//
// Identical update math to SagaSolver, but every collected task result
// triggers its own model update: the server never waits for the round to
// complete, so a straggler's historical-gradient work lands whenever it
// lands (possibly stale), and fresh tasks flow to whichever workers the
// barrier admits.  The ASYNCbroadcaster keeps the communication per round at
// one model vector regardless of how much history the workers touch — the
// property Figures 5, 6, 8 and Table 3 measure.

#include "engine/cluster.hpp"
#include "optim/run_result.hpp"
#include "optim/solver_config.hpp"
#include "optim/workload.hpp"

namespace asyncml::optim {

class AsagaSolver {
 public:
  [[nodiscard]] static RunResult run(engine::Cluster& cluster, const Workload& workload,
                                     const SolverConfig& config);
};

}  // namespace asyncml::optim
