#include "optim/step_size.hpp"

#include <cmath>

namespace asyncml::optim {

StepSchedule constant_step(double a) {
  return [a](std::uint64_t) { return a; };
}

StepSchedule inverse_decay_step(double a, double b, double c) {
  return [a, b, c](std::uint64_t k) { return a / (b + c * static_cast<double>(k)); };
}

StepSchedule inv_sqrt_step(double a) {
  return [a](std::uint64_t k) { return a / std::sqrt(static_cast<double>(k) + 1.0); };
}

}  // namespace asyncml::optim
