#pragma once

// Fused batch gradient task bodies — the devirtualized replacement for the
// per-row seq-op pipeline (make_grad_seq / make_saga_seq streaming through
// the RDD sink chain).
//
// One task = one partition slice. The fused body runs three passes:
//   1. margins:  gemv over the dense row block / row-slice spmv over CSR
//      (linalg/batch.hpp) — all mini-batch margins in one pass;
//   2. coeffs:   derivative_batch, loss-kind-dispatched (no virtual call
//      per row);
//   3. gradient: transposed accumulate X_Bᵀ·coeffs, scattering into the
//      GradVector (sparse mode) or a scratch dense accumulator.
// Scratch (row ids, margins, labels, coeffs, dense accumulators) comes from
// the executor thread's support::ScratchArena and is reused across tasks.
//
// Bit-compatibility contract with the per-row path, relied on by the
// fused/per-row property sweep and the fig3 1-worker bit-match check:
//   * mini-batch selection replays engine::sample_partition_rows (same RNG
//     draws in the same order as Rdd::sample);
//   * margins and coefficients use the identical scalar arithmetic
//     (linalg::dot's reduction order, loss_kernels::*);
//   * gradients accumulate per coordinate in row order (linalg/batch.hpp's
//     reassociation-free blocking), so every GradVector — including its
//     representation trajectory (densify points) — matches the per-row
//     path bit for bit.

#include <algorithm>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/history.hpp"
#include "core/shard_map.hpp"
#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "engine/rdd.hpp"
#include "engine/task.hpp"
#include "linalg/batch.hpp"
#include "optim/loss.hpp"
#include "optim/payloads.hpp"
#include "support/scratch_arena.hpp"
#include "telemetry/telemetry.hpp"

namespace asyncml::optim::detail {

/// Selects this task's mini-batch rows (local offsets into `range`).
/// `fraction` engaged = Bernoulli sample via the task RNG (the draw sequence
/// of Rdd::sample); nullopt = the whole partition with no RNG draws (the
/// epoch-head full pass over workload.points).
inline support::ScratchArena::Lease<std::uint32_t> select_batch_rows(
    const data::RowRange& range, std::optional<double> fraction,
    engine::TaskContext& ctx, support::ScratchArena& arena) {
  const std::size_t n = range.size();
  auto rows = arena.indices(
      fraction.has_value()
          ? static_cast<std::size_t>(static_cast<double>(n) * *fraction * 1.5) + 8
          : n);
  if (fraction.has_value()) {
    engine::sample_partition_rows(n, *fraction, ctx.rng, rows.vec());
  } else {
    for (std::size_t local = 0; local < n; ++local) {
      rows.vec().push_back(static_cast<std::uint32_t>(local));
    }
  }
  return rows;
}

/// margins[i] = <row(rows[i]), w> for one partition slice of the dataset.
inline void batch_margins(const data::Dataset& dataset, const data::RowRange& range,
                          std::span<const std::uint32_t> rows,
                          std::span<const double> w, std::span<double> margins) {
  if (dataset.is_dense()) {
    linalg::gemv_rows(dataset.dense_features().block(range.begin, range.end), rows,
                      w, margins);
  } else {
    linalg::spmv_rows(dataset.sparse_features().slice(range.begin, range.end), rows,
                      w, margins);
  }
}

/// Writes the batch gradient into `g`: sparse mode scatters *into* g's
/// table (preserving the per-row axpy sequence, and thus any mid-batch
/// densify, exactly); dense mode accumulates into a reused scratch buffer
/// and then REPLACES g's dense value via assign_dense (the serialize copy).
/// `g` must therefore be freshly constructed/empty — this is a
/// produce-the-result primitive, not a `+=`.
inline void batch_accumulate(const data::Dataset& dataset, const data::RowRange& range,
                             std::span<const std::uint32_t> rows,
                             std::span<const double> coeffs, linalg::GradVector& g,
                             support::ScratchArena& arena) {
  if (rows.empty()) return;
  const bool dense_mode = g.is_dense() || dataset.is_dense();
  if (dense_mode) {
    auto acc = arena.zeroed_doubles(dataset.cols());
    if (dataset.is_dense()) {
      linalg::accumulate_rows(dataset.dense_features().block(range.begin, range.end),
                              rows, coeffs, acc.span());
    } else {
      linalg::accumulate_rows(dataset.sparse_features().slice(range.begin, range.end),
                              rows, coeffs, acc.span());
    }
    g.assign_dense(acc.span());
    return;
  }
  linalg::accumulate_rows(dataset.sparse_features().slice(range.begin, range.end),
                          rows, coeffs, g);
}

/// Panel row budget: margins + accumulate stream the selected rows twice, so
/// the task body processes them in panels small enough (32 KB — near-L1) for
/// the accumulate pass to re-read hot lines instead of refetching the whole
/// slice.  Measured flat between 32 KB and 256 KB panels on the bench hosts;
/// the small size is kept so the second pass stays close to L1.  Panels are
/// contiguous subsequences of the selected rows, so every per-row and
/// per-coordinate order is unchanged.
[[nodiscard]] inline std::size_t panel_rows(std::size_t cols) {
  constexpr std::size_t kPanelBytes = 32 * 1024;
  const std::size_t rows = kPanelBytes / (sizeof(double) * std::max<std::size_t>(1, cols));
  return std::max<std::size_t>(4, rows);
}

/// One fused gradient sum: margins → batch derivative → transposed
/// accumulate, panel by panel, into `g` (+ labels gathered per panel).
/// The shared stage of the SGD / SVRG / SAGA-fresh task bodies.
inline void fused_grad_sum(const data::Dataset& dataset, const data::RowRange& range,
                           std::span<const std::uint32_t> rows, const Loss& loss,
                           std::span<const double> w, linalg::GradVector& g,
                           support::ScratchArena& arena) {
  if (rows.empty()) return;
  const bool dense_mode = g.is_dense() || dataset.is_dense();
  // Panels exist for dense-row L1 reuse; CSR rows touch ~nnz*12 bytes, so a
  // cols-based budget would collapse to the floor and pay a stage dispatch
  // every few rows for nothing — sparse batches run as one panel.
  const std::size_t panel =
      dataset.is_dense() ? panel_rows(dataset.cols()) : rows.size();
  const linalg::DenseVector& all_labels = dataset.labels();

  auto margins = arena.doubles(std::min(panel, rows.size()));
  auto labels = arena.doubles(std::min(panel, rows.size()));
  auto coeffs = arena.doubles(std::min(panel, rows.size()));

  const auto run_panels = [&](auto&& accumulate) {
    for (std::size_t i0 = 0; i0 < rows.size(); i0 += panel) {
      const std::size_t len = std::min(panel, rows.size() - i0);
      const auto sub = rows.subspan(i0, len);
      batch_margins(dataset, range, sub, w, margins.span().subspan(0, len));
      for (std::size_t i = 0; i < len; ++i) {
        labels.span()[i] = all_labels[range.begin + sub[i]];
      }
      derivative_batch(loss, margins.span().subspan(0, len),
                       labels.span().subspan(0, len), coeffs.span().subspan(0, len));
      accumulate(sub, coeffs.span().subspan(0, len));
    }
  };

  if (dense_mode) {
    auto acc = arena.zeroed_doubles(dataset.cols());
    if (dataset.is_dense()) {
      const linalg::DenseRowBlock block =
          dataset.dense_features().block(range.begin, range.end);
      run_panels([&](std::span<const std::uint32_t> sub, std::span<const double> c) {
        linalg::accumulate_rows(block, sub, c, acc.span());
      });
    } else {
      const linalg::CsrRowSlice slice =
          dataset.sparse_features().slice(range.begin, range.end);
      run_panels([&](std::span<const std::uint32_t> sub, std::span<const double> c) {
        linalg::accumulate_rows(slice, sub, c, acc.span());
      });
    }
    g.assign_dense(acc.span());
    return;
  }
  const linalg::CsrRowSlice slice =
      dataset.sparse_features().slice(range.begin, range.end);
  run_panels([&](std::span<const std::uint32_t> sub, std::span<const double> c) {
    linalg::accumulate_rows(slice, sub, c, g);
  });
}

/// Resolves the dispatched model through `w_br`, masked to the partition's
/// shard-support set when the handle can route it (core::HistoryBroadcast on
/// a sharded plane). Only coordinates inside the mask's shards are defined in
/// the result — safe here because the fused bodies read exactly the batch
/// rows' support, a subset of the partition support the mask was built from.
template <typename Handle>
[[nodiscard]] inline const linalg::DenseVector& resolve_model(
    const Handle& w_br, const core::ShardSet* mask) {
  if constexpr (std::is_same_v<Handle, core::HistoryBroadcast>) {
    return w_br.value(mask);
  } else {
    (void)mask;
    return w_br.value();
  }
}

/// This task's shard-support mask: the per-partition entry of the solver's
/// support table (null table or out-of-range partition → unmasked).
[[nodiscard]] inline const core::ShardSet* shard_mask(
    const std::shared_ptr<const std::vector<core::ShardSet>>& support,
    engine::PartitionId partition) {
  if (support == nullptr || partition < 0 ||
      static_cast<std::size_t>(partition) >= support->size()) {
    return nullptr;
  }
  return &(*support)[static_cast<std::size_t>(partition)];
}

/// Fused gradient-sum task (Algorithms 1–2): the batch replacement for
/// make_aggregate_fn(points.sample(f), GradCount{}, make_grad_seq(...)).
/// `Handle` is engine::Broadcast<DenseVector> or core::HistoryBroadcast.
/// `support` (optional) masks the model read to the partition's shards.
template <typename Handle>
[[nodiscard]] std::shared_ptr<const engine::TaskFn> make_grad_batch_fn(
    data::DatasetPtr dataset, std::vector<data::RowRange> partitions,
    std::shared_ptr<const Loss> loss, Handle w_br, linalg::GradVectorConfig grad_cfg,
    std::optional<double> fraction,
    std::shared_ptr<const std::vector<core::ShardSet>> support_table = nullptr) {
  return std::make_shared<const engine::TaskFn>(
      [dataset = std::move(dataset), partitions = std::move(partitions),
       loss = std::move(loss), w_br, grad_cfg, fraction,
       support_table = std::move(support_table)](
          engine::TaskContext& ctx) -> support::StatusOr<engine::Payload> {
        const data::RowRange range =
            partitions.at(static_cast<std::size_t>(ctx.partition));
        support::ScratchArena& arena = support::ScratchArena::local();
        auto rows = select_batch_rows(range, fraction, ctx, arena);

        GradCount out{linalg::GradVector(grad_cfg)};
        out.count = rows.vec().size();
        if (out.count > 0) {
          const linalg::DenseVector& w =
              resolve_model(w_br, shard_mask(support_table, ctx.partition));
          fused_grad_sum(*dataset, range, rows.span(), *loss, w.span(), out.grad,
                         arena);
        }
        telemetry::ScopedStageTimer serialize_timer(
            telemetry::Stage::kSerialize);
        const std::size_t bytes = payload_size_bytes(out);
        return engine::Payload::wrap<GradCount>(std::move(out), bytes);
      });
}

/// Fused SAGA task (Algorithm 4): fresh gradient at the pinned model plus a
/// second historical-margin pass, each sample's history recomputed at the
/// model version the SampleVersionTable remembers (resolved through
/// `hist_model`, memoized per distinct version), and the table advanced to
/// `set_version`.  `HistModel` maps (engine::Version, const core::ShardSet*)
/// -> const DenseVector& — the mask routes historical reads through the same
/// shard-support masking as the fresh read.
template <typename Handle, typename HistModel>
[[nodiscard]] std::shared_ptr<const engine::TaskFn> make_saga_batch_fn(
    data::DatasetPtr dataset, std::vector<data::RowRange> partitions,
    std::shared_ptr<const Loss> loss, Handle w_br,
    std::shared_ptr<core::SampleVersionTable> table,
    linalg::GradVectorConfig grad_cfg, std::optional<double> fraction,
    HistModel hist_model, engine::Version set_version,
    std::shared_ptr<const std::vector<core::ShardSet>> support_table = nullptr) {
  return std::make_shared<const engine::TaskFn>(
      [dataset = std::move(dataset), partitions = std::move(partitions),
       loss = std::move(loss), w_br, table = std::move(table), grad_cfg, fraction,
       hist_model = std::move(hist_model), set_version,
       support_table = std::move(support_table)](
          engine::TaskContext& ctx) -> support::StatusOr<engine::Payload> {
        const data::RowRange range =
            partitions.at(static_cast<std::size_t>(ctx.partition));
        support::ScratchArena& arena = support::ScratchArena::local();
        auto rows = select_batch_rows(range, fraction, ctx, arena);

        GradHist out{linalg::GradVector(grad_cfg), linalg::GradVector(grad_cfg)};
        out.count = rows.vec().size();
        if (out.count > 0) {
          const std::size_t b = rows.vec().size();
          const linalg::DenseVector& all_labels = dataset->labels();
          const core::ShardSet* mask = shard_mask(support_table, ctx.partition);

          // Fresh pass at the pinned model.
          const linalg::DenseVector& w = resolve_model(w_br, mask);
          fused_grad_sum(*dataset, range, rows.span(), *loss, w.span(), out.grad,
                         arena);

          auto margins = arena.doubles(b);
          auto labels = arena.doubles(b);
          auto coeffs = arena.doubles(b);
          // Historical pass: each visited sample's margin against the model
          // it last saw. Versions arrive in long runs (most of a batch was
          // last seen at the same version), so margins are computed with the
          // batch kernels per maximal same-version run — values are
          // per-row dots either way, so run boundaries never change bits.
          // The resolved model ref is memoized per distinct version.
          auto hist_rows = arena.indices(b);
          std::vector<std::pair<engine::Version, const linalg::DenseVector*>> cache;
          const auto resolve = [&](engine::Version v) -> const linalg::DenseVector& {
            for (const auto& [version, model] : cache) {
              if (version == v) return *model;
            }
            const linalg::DenseVector& model = hist_model(v, mask);
            cache.emplace_back(v, &model);
            return model;
          };
          std::size_t h = 0;
          std::size_t run_start = 0;
          engine::Version run_version = 0;
          const auto flush_run = [&] {
            if (h == run_start) return;
            const linalg::DenseVector& w_old = resolve(run_version);
            batch_margins(*dataset, range,
                          hist_rows.span().subspan(run_start, h - run_start),
                          w_old.span(),
                          margins.span().subspan(run_start, h - run_start));
            run_start = h;
          };
          for (std::size_t i = 0; i < b; ++i) {
            const std::uint32_t local = rows.span()[i];
            const engine::Version last = table->get(range.begin + local);
            if (last == core::kNeverVisited) continue;
            if (h > run_start && last != run_version) flush_run();
            run_version = last;
            hist_rows.vec().push_back(local);
            labels.span()[h] = all_labels[range.begin + local];
            ++h;
          }
          flush_run();
          if (h > 0) {
            derivative_batch(*loss, margins.span().subspan(0, h),
                             labels.span().subspan(0, h),
                             coeffs.span().subspan(0, h));
            batch_accumulate(*dataset, range, hist_rows.span(),
                             coeffs.span().subspan(0, h), out.hist, arena);
          }
          for (std::size_t i = 0; i < b; ++i) {
            table->set(range.begin + rows.span()[i], set_version);
          }
        }
        telemetry::ScopedStageTimer serialize_timer(
            telemetry::Stage::kSerialize);
        const std::size_t bytes = payload_size_bytes(out);
        return engine::Payload::wrap<GradHist>(std::move(out), bytes);
      });
}

/// Two gradient sums over the same mini-batch against two fixed models in
/// ONE panel sweep (the SVRG inner shape: fresh + snapshot).  Halves the
/// row traffic of two independent fused_grad_sum calls; each accumulator
/// still sees its own per-coordinate additions in row order, so both
/// results are bit-identical to independent passes.
inline void fused_grad_sum_pair(const data::Dataset& dataset,
                                const data::RowRange& range,
                                std::span<const std::uint32_t> rows, const Loss& loss,
                                std::span<const double> w_a,
                                std::span<const double> w_b, linalg::GradVector& g_a,
                                linalg::GradVector& g_b,
                                support::ScratchArena& arena) {
  if (rows.empty()) return;
  const bool dense_mode =
      g_a.is_dense() || g_b.is_dense() || dataset.is_dense();
  if (!dense_mode) {
    // Sparse-table accumulation: panel fusion buys nothing (rows are tiny);
    // run the two passes independently.
    fused_grad_sum(dataset, range, rows, loss, w_a, g_a, arena);
    fused_grad_sum(dataset, range, rows, loss, w_b, g_b, arena);
    return;
  }
  const std::size_t panel =
      dataset.is_dense() ? panel_rows(dataset.cols()) : rows.size();
  const std::size_t cap = std::min(panel, rows.size());
  const linalg::DenseVector& all_labels = dataset.labels();
  auto margins = arena.doubles(cap);
  auto labels = arena.doubles(cap);
  auto coeffs_a = arena.doubles(cap);
  auto coeffs_b = arena.doubles(cap);
  auto acc_a = arena.zeroed_doubles(dataset.cols());
  auto acc_b = arena.zeroed_doubles(dataset.cols());

  const auto sweep = [&](auto&& accumulate) {
    for (std::size_t i0 = 0; i0 < rows.size(); i0 += panel) {
      const std::size_t len = std::min(panel, rows.size() - i0);
      const auto sub = rows.subspan(i0, len);
      for (std::size_t i = 0; i < len; ++i) {
        labels.span()[i] = all_labels[range.begin + sub[i]];
      }
      batch_margins(dataset, range, sub, w_a, margins.span().subspan(0, len));
      derivative_batch(loss, margins.span().subspan(0, len),
                       labels.span().subspan(0, len),
                       coeffs_a.span().subspan(0, len));
      batch_margins(dataset, range, sub, w_b, margins.span().subspan(0, len));
      derivative_batch(loss, margins.span().subspan(0, len),
                       labels.span().subspan(0, len),
                       coeffs_b.span().subspan(0, len));
      accumulate(sub, coeffs_a.span().subspan(0, len),
                 coeffs_b.span().subspan(0, len));
    }
  };
  if (dataset.is_dense()) {
    const linalg::DenseRowBlock block =
        dataset.dense_features().block(range.begin, range.end);
    sweep([&](std::span<const std::uint32_t> sub, std::span<const double> ca,
              std::span<const double> cb) {
      linalg::accumulate_rows(block, sub, ca, acc_a.span());
      linalg::accumulate_rows(block, sub, cb, acc_b.span());
    });
  } else {
    const linalg::CsrRowSlice slice =
        dataset.sparse_features().slice(range.begin, range.end);
    sweep([&](std::span<const std::uint32_t> sub, std::span<const double> ca,
              std::span<const double> cb) {
      linalg::accumulate_rows(slice, sub, ca, acc_a.span());
      linalg::accumulate_rows(slice, sub, cb, acc_b.span());
    });
  }
  g_a.assign_dense(acc_a.span());
  g_b.assign_dense(acc_b.span());
}

/// Fused SVRG inner task (epoch VR): fresh gradient at the dispatched model
/// and snapshot gradient at the epoch's w̃ — two fixed models, so both
/// margin passes are full batch kernels.
[[nodiscard]] inline std::shared_ptr<const engine::TaskFn> make_svrg_batch_fn(
    data::DatasetPtr dataset, std::vector<data::RowRange> partitions,
    std::shared_ptr<const Loss> loss, core::HistoryBroadcast w_br,
    core::HistoryBroadcast snapshot_br, linalg::GradVectorConfig grad_cfg,
    std::optional<double> fraction,
    std::shared_ptr<const std::vector<core::ShardSet>> support_table = nullptr) {
  return std::make_shared<const engine::TaskFn>(
      [dataset = std::move(dataset), partitions = std::move(partitions),
       loss = std::move(loss), w_br, snapshot_br, grad_cfg, fraction,
       support_table = std::move(support_table)](
          engine::TaskContext& ctx) -> support::StatusOr<engine::Payload> {
        const data::RowRange range =
            partitions.at(static_cast<std::size_t>(ctx.partition));
        support::ScratchArena& arena = support::ScratchArena::local();
        auto rows = select_batch_rows(range, fraction, ctx, arena);

        GradHist out{linalg::GradVector(grad_cfg), linalg::GradVector(grad_cfg)};
        out.count = rows.vec().size();
        if (out.count > 0) {
          const core::ShardSet* mask = shard_mask(support_table, ctx.partition);
          fused_grad_sum_pair(*dataset, range, rows.span(), *loss,
                              w_br.value(mask).span(),
                              snapshot_br.value(mask).span(), out.grad, out.hist,
                              arena);
        }
        telemetry::ScopedStageTimer serialize_timer(
            telemetry::Stage::kSerialize);
        const std::size_t bytes = payload_size_bytes(out);
        return engine::Payload::wrap<GradHist>(std::move(out), bytes);
      });
}

}  // namespace asyncml::optim::detail
