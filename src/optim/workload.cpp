#include "optim/workload.hpp"

namespace asyncml::optim {

Workload Workload::create(data::DatasetPtr dataset, int num_partitions,
                          std::shared_ptr<const Loss> loss) {
  Workload w;
  w.dataset = dataset;
  w.partitions = data::contiguous_partitions(dataset->rows(),
                                             static_cast<std::size_t>(num_partitions));
  w.points = engine::make_points_rdd(dataset, w.partitions);
  w.loss = std::move(loss);
  return w;
}

}  // namespace asyncml::optim
