#include "optim/workload.hpp"

#include <algorithm>

namespace asyncml::optim {

std::vector<std::size_t> Workload::partition_bytes() const {
  const std::size_t rows = std::max<std::size_t>(1, dataset->rows());
  const double bytes_per_row =
      static_cast<double>(dataset->feature_bytes()) / static_cast<double>(rows);
  std::vector<std::size_t> out;
  out.reserve(partitions.size());
  for (const data::RowRange& range : partitions) {
    out.push_back(static_cast<std::size_t>(bytes_per_row * static_cast<double>(range.size())));
  }
  return out;
}

Workload Workload::create(data::DatasetPtr dataset, int num_partitions,
                          std::shared_ptr<const Loss> loss) {
  Workload w;
  w.dataset = dataset;
  w.partitions = data::contiguous_partitions(dataset->rows(),
                                             static_cast<std::size_t>(num_partitions));
  w.points = engine::make_points_rdd(dataset, w.partitions);
  w.loss = std::move(loss);
  return w;
}

}  // namespace asyncml::optim
