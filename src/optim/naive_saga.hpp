#pragma once

// Naive Spark SAGA — the paper's Algorithm 3 *as written for plain Spark*,
// including the red line: broadcasting the full table of past model
// parameters every iteration.  The table grows by one d-vector per round, so
// the broadcast traffic is O(k·d) at iteration k — the overhead that makes
// SAGA "inefficient and not practical" on stock Spark (paper §5.2) and that
// the ASYNCbroadcaster removes.  Exists for the communication ablation
// (bench/ablation_broadcast); the update math matches SagaSolver exactly, so
// the two converge identically and differ only in wire traffic and time.

#include "engine/cluster.hpp"
#include "optim/run_result.hpp"
#include "optim/solver_config.hpp"
#include "optim/workload.hpp"

namespace asyncml::optim {

class NaiveSagaSolver {
 public:
  [[nodiscard]] static RunResult run(engine::Cluster& cluster, const Workload& workload,
                                     const SolverConfig& config);
};

}  // namespace asyncml::optim
