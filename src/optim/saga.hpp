#pragma once

// Synchronous SAGA through ASYNC — the paper's Algorithm 3 semantics with the
// ASYNCbroadcaster doing the history bookkeeping (the efficient form the
// paper says ASYNC enables for *both* SAGA and ASAGA; the naive
// full-table-broadcast Spark variant lives in naive_saga.hpp for the
// communication ablation).
//
// Math (mean-form SAGA, mini-batch): per round with batch B of size b,
//   ĝ_new = (1/b) Σ_B ∇f_j(w),      ĝ_old = (1/b) Σ_B α_j,
//   w    ← w − α (ĝ_new − ĝ_old + ᾱ),
//   ᾱ    ← ᾱ + (1/n) Σ_B (∇f_j(w) − α_j),   α_j ← ∇f_j(w) for j ∈ B.
// The α_j are never stored: the worker recomputes ∇f_j at the model version
// recorded in the per-sample version table (the ASYNCbroadcaster trick).
// Unvisited samples contribute α_j = 0, consistent with ᾱ = 0 at start.

#include "engine/cluster.hpp"
#include "optim/run_result.hpp"
#include "optim/solver_config.hpp"
#include "optim/workload.hpp"

namespace asyncml::optim {

class SagaSolver {
 public:
  [[nodiscard]] static RunResult run(engine::Cluster& cluster, const Workload& workload,
                                     const SolverConfig& config);
};

}  // namespace asyncml::optim
