#pragma once

// Asynchronous SGD — the paper's Algorithm 2.
//
// The server dispatches gradient tasks through the ASYNCscheduler under a
// barrier control (ASP by default), applies one model update per collected
// task result, republishes the model through the ASYNCbroadcaster, and
// immediately re-dispatches to whichever workers the barrier admits.  The
// straggler keeps computing on stale parameters without stalling anyone —
// the mechanism behind Figures 3 and 7.
//
// Two paper extensions are built in:
//  * staleness-dependent learning rates (Listing 1): lr/(1+staleness);
//  * arbitrary barrier controls (Listing 2): BSP/SSP/β-fraction/custom.

#include "core/async_context.hpp"
#include "engine/cluster.hpp"
#include "optim/run_result.hpp"
#include "optim/solver_config.hpp"
#include "optim/workload.hpp"

namespace asyncml::optim {

class AsgdSolver {
 public:
  [[nodiscard]] static RunResult run(engine::Cluster& cluster, const Workload& workload,
                                     const SolverConfig& config);
};

}  // namespace asyncml::optim
