#include "optim/loss.hpp"

#include <cassert>
#include <cmath>
#include <cstddef>

namespace asyncml::optim {

double LeastSquaresLoss::value(double margin, double label) const {
  const double r = margin - label;
  return r * r;
}

double LeastSquaresLoss::derivative(double margin, double label) const {
  return loss_kernels::least_squares_derivative(margin, label);
}

double LogisticLoss::value(double margin, double label) const {
  const double z = -label * margin;
  // log1p(exp(z)) computed stably for large |z|.
  if (z > 35.0) return z;
  return std::log1p(std::exp(z));
}

double LogisticLoss::derivative(double margin, double label) const {
  return loss_kernels::logistic_derivative(margin, label);
}

double SquaredHingeLoss::value(double margin, double label) const {
  const double gap = 1.0 - label * margin;
  return gap > 0.0 ? gap * gap : 0.0;
}

double SquaredHingeLoss::derivative(double margin, double label) const {
  return loss_kernels::squared_hinge_derivative(margin, label);
}

void derivative_batch(const Loss& loss, std::span<const double> margins,
                      std::span<const double> labels, std::span<double> coeffs) {
  assert(margins.size() == labels.size() && margins.size() == coeffs.size());
  const std::size_t n = margins.size();
  switch (loss.kind()) {
    case LossKind::kLeastSquares:
      for (std::size_t i = 0; i < n; ++i) {
        coeffs[i] = loss_kernels::least_squares_derivative(margins[i], labels[i]);
      }
      return;
    case LossKind::kLogistic:
      for (std::size_t i = 0; i < n; ++i) {
        coeffs[i] = loss_kernels::logistic_derivative(margins[i], labels[i]);
      }
      return;
    case LossKind::kSquaredHinge:
      for (std::size_t i = 0; i < n; ++i) {
        coeffs[i] = loss_kernels::squared_hinge_derivative(margins[i], labels[i]);
      }
      return;
    case LossKind::kCustom:
      for (std::size_t i = 0; i < n; ++i) {
        coeffs[i] = loss.derivative(margins[i], labels[i]);
      }
      return;
  }
}

std::shared_ptr<const Loss> make_least_squares() {
  return std::make_shared<const LeastSquaresLoss>();
}
std::shared_ptr<const Loss> make_logistic() {
  return std::make_shared<const LogisticLoss>();
}
std::shared_ptr<const Loss> make_squared_hinge() {
  return std::make_shared<const SquaredHingeLoss>();
}

}  // namespace asyncml::optim
