#include "optim/loss.hpp"

#include <cmath>

namespace asyncml::optim {

double LeastSquaresLoss::value(double margin, double label) const {
  const double r = margin - label;
  return r * r;
}

double LeastSquaresLoss::derivative(double margin, double label) const {
  return 2.0 * (margin - label);
}

double LogisticLoss::value(double margin, double label) const {
  const double z = -label * margin;
  // log1p(exp(z)) computed stably for large |z|.
  if (z > 35.0) return z;
  return std::log1p(std::exp(z));
}

double LogisticLoss::derivative(double margin, double label) const {
  const double z = -label * margin;
  // σ(z) = 1/(1+e^{-z}); derivative = −y·σ(−y·m).
  const double sigma = z >= 0.0 ? 1.0 / (1.0 + std::exp(-z))
                                : std::exp(z) / (1.0 + std::exp(z));
  return -label * sigma;
}

double SquaredHingeLoss::value(double margin, double label) const {
  const double gap = 1.0 - label * margin;
  return gap > 0.0 ? gap * gap : 0.0;
}

double SquaredHingeLoss::derivative(double margin, double label) const {
  const double gap = 1.0 - label * margin;
  return gap > 0.0 ? -2.0 * label * gap : 0.0;
}

std::shared_ptr<const Loss> make_least_squares() {
  return std::make_shared<const LeastSquaresLoss>();
}
std::shared_ptr<const Loss> make_logistic() {
  return std::make_shared<const LogisticLoss>();
}
std::shared_ptr<const Loss> make_squared_hinge() {
  return std::make_shared<const SquaredHingeLoss>();
}

}  // namespace asyncml::optim
