#include "optim/asaga.hpp"

#include "core/async_context.hpp"
#include "metrics/trace.hpp"
#include "optim/objective.hpp"
#include "optim/solver_util.hpp"
#include "support/stopwatch.hpp"

namespace asyncml::optim {

RunResult AsagaSolver::run(engine::Cluster& cluster, const Workload& workload,
                           const SolverConfig& config) {
  const std::size_t dim = workload.dim();
  const std::size_t n = workload.n();
  const double service_ms =
      config.service_floor_ms > 0.0
          ? config.service_floor_ms
          : config.cost.task_service_ms(*workload.dataset, workload.num_partitions(),
                                        config.batch_fraction, /*saga_two_pass=*/true);
  const double step_scale =
      config.async_step_scale.value_or(1.0 / static_cast<double>(cluster.num_workers()));

  const linalg::GradVectorConfig grad_cfg = detail::grad_config(workload, config);
  // Per-partition shard-support sets (sparse workloads on a sharded plane).
  const auto support_table = detail::shard_support_table(workload, config);

  detail::reset_run_metrics(cluster.metrics());
  detail::begin_telemetry(cluster, config);

  core::AsyncContext ac(cluster, workload.num_partitions(), config.store_config);
  // History-writing tasks (SampleVersionTable updates) are not idempotent
  // under racing replicas, so speculation is forced off regardless of the
  // config knob; stealing never duplicates execution and stays available
  // (docs/SCHEDULING.md, "Composition caveats").
  core::SchedulerPolicy policy = detail::scheduler_policy(workload, config);
  policy.speculation_factor = 0.0;
  ac.scheduler().set_policy(std::move(policy));
  auto table =
      std::make_shared<core::SampleVersionTable>(n, detail::kNeverVisited);

  core::SubmitOptions opts;
  opts.service_floor_ms = service_ms;
  opts.rng_seed = config.seed;

  linalg::DenseVector w(dim);
  linalg::DenseVector alpha_bar(dim);
  core::HistoryBroadcast w_br = ac.async_broadcast(w);  // version 0

  auto rebuild_factory = [&] {
    return ac.make_fn_factory(
        detail::saga_task_fn(workload, config, w_br, table, grad_cfg,
                             config.batch_fraction, support_table),
        opts);
  };
  core::AsyncScheduler::TaskFactory factory = rebuild_factory();

  metrics::TraceRecorder recorder(config.eval_every);
  recorder.reserve_for(config.updates);
  support::Stopwatch watch;
  recorder.snapshot(0, 0.0, w);

  detail::dispatch_live(ac, config.barrier, factory);

  std::uint64_t updates = 0;
  while (updates < config.updates) {
    auto collected = ac.collect(&factory);
    if (!collected.has_value()) break;

    const GradHist& g = collected->result.payload.get<GradHist>();
    if (g.count > 0) {
      const double inv_b = 1.0 / static_cast<double>(g.count);
      linalg::DenseVector direction = alpha_bar;
      g.grad.scale_into(inv_b, direction.span());
      g.hist.scale_into(-inv_b, direction.span());
      linalg::axpy(-config.step(updates) * step_scale, direction.span(), w.span());

      const double inv_n = 1.0 / static_cast<double>(n);
      g.grad.scale_into(inv_n, alpha_bar.span());
      g.hist.scale_into(-inv_n, alpha_bar.span());
    }
    ++updates;
    ac.advance_version();
    w_br = ac.async_broadcast(w);
    factory = rebuild_factory();
    recorder.maybe_snapshot(updates, watch.elapsed_ms(), w);
    // History GC: floored by the sample table so recomputable historical
    // gradients keep their versions resolvable.
    detail::maybe_gc_history(ac, config, updates, table->min_version());

    detail::dispatch_live(ac, config.barrier, factory);
  }
  recorder.snapshot(updates, watch.elapsed_ms(), w);

  RunResult result;
  result.algorithm = "ASAGA";
  result.wall_ms = watch.elapsed_ms();
  result.updates = updates;
  result.tasks = updates;
  result.final_w = w;
  detail::fill_run_stats(result, cluster.metrics());
  detail::finish_telemetry(result, cluster, config);
  result.trace = recorder.finalize([&](const linalg::DenseVector& model) {
    return full_objective(*workload.dataset, *workload.loss, model);
  });
  return result;
}

}  // namespace asyncml::optim
