#pragma once

// Internals shared by the solvers: run-metric bookkeeping and the gradient
// sequence operators (the `map` bodies of Algorithms 1–4).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "core/async_context.hpp"
#include "core/history.hpp"
#include "core/shard_map.hpp"
#include "data/dataset.hpp"
#include "engine/metrics.hpp"
#include "linalg/blas.hpp"
#include "linalg/grad_vector.hpp"
#include "optim/checkpoint.hpp"
#include "optim/grad_batch.hpp"
#include "optim/loss.hpp"
#include "optim/payloads.hpp"
#include "optim/run_result.hpp"
#include "optim/solver_config.hpp"
#include "support/thread_util.hpp"

namespace asyncml::optim::detail {

/// Resolves the gradient representation for a (workload, config) pair: the
/// expected per-task batch support (dataset density unioned over the rows
/// one task samples) drives the kAuto choice, so rcv1-like runs accumulate
/// and ship sparse gradients without any per-solver opt-in while saturating
/// batches start dense.
[[nodiscard]] inline linalg::GradVectorConfig grad_config(const Workload& workload,
                                                          const SolverConfig& config) {
  const double rows_per_task =
      config.batch_fraction * static_cast<double>(workload.n()) /
      static_cast<double>(std::max(1, workload.num_partitions()));
  return config.grad_config(workload.dim(), workload.dataset->density(),
                            std::max(1.0, rows_per_task));
}

/// Sentinel for "sample never visited" (canonical definition lives beside
/// SampleVersionTable in core/history.hpp).
inline constexpr engine::Version kNeverVisited = core::kNeverVisited;

/// Per-partition shard-support sets of a sparse workload on a sharded model
/// plane (docs/SHARDING.md): for each partition, the sorted set of shards its
/// rows' column indices touch.  Fused task bodies pass their partition's set
/// as the read mask, so a 0.2%-density batch materializes only the shards its
/// support hits instead of assembling all S.  Null when masking cannot help:
/// an unsharded plane, or a dense dataset (every row touches every shard).
/// The ShardMap here is a pure function of (dim, S, scheme) — identical to
/// the one the sharded store builds lazily at first publish.
[[nodiscard]] inline std::shared_ptr<const std::vector<core::ShardSet>>
shard_support_table(const Workload& workload, const SolverConfig& config) {
  if (config.store_config.num_shards <= 1 || workload.dataset->is_dense()) {
    return nullptr;
  }
  const core::ShardMap map(static_cast<std::uint32_t>(workload.dim()),
                           config.store_config.num_shards,
                           config.store_config.shard_scheme);
  if (map.num_shards() <= 1) return nullptr;
  const linalg::CsrMatrix& csr = workload.dataset->sparse_features();
  auto table = std::make_shared<std::vector<core::ShardSet>>();
  table->reserve(workload.partitions.size());
  std::vector<std::uint8_t> hit(map.num_shards());
  for (const data::RowRange& range : workload.partitions) {
    std::fill(hit.begin(), hit.end(), std::uint8_t{0});
    for (std::size_t r = range.begin; r < range.end; ++r) {
      for (std::uint32_t col : csr.row(r).indices) hit[map.shard_of(col)] = 1;
    }
    core::ShardSet set;
    for (std::uint32_t s = 0; s < map.num_shards(); ++s) {
      if (hit[s] != 0) set.ids.push_back(s);
    }
    table->push_back(std::move(set));
  }
  return table;
}

inline void reset_run_metrics(engine::ClusterMetrics& m) {
  m.reset_waits();
  m.broadcast_bytes.reset();
  m.broadcast_base_bytes.reset();
  m.broadcast_delta_bytes.reset();
  m.result_bytes.reset();
  m.task_messages.reset();
  m.broadcast_fetches.reset();
  m.broadcast_hits.reset();
  m.tasks_completed.reset();
  m.tasks_failed.reset();
  m.task_compute_ns.reset();
  m.migration_bytes.reset();
  m.partitions_stolen.reset();
  m.tasks_speculated.reset();
  m.duplicate_results.reset();
  m.shard_reads.reset();
  m.shard_reads_partial.reset();
  m.shard_touches.reset();
  m.reset_shard_counters();
  m.reset_wire_counters();
  m.disk.reset();
}

inline void fill_run_stats(RunResult& r, const engine::ClusterMetrics& m) {
  const support::Histogram waits = m.total_wait_histogram();
  r.mean_wait_ms = waits.mean_ns() / 1e6;
  r.p95_wait_ms = waits.quantile_ns(0.95) / 1e6;
  r.broadcast_bytes = m.broadcast_bytes.load();
  r.broadcast_base_bytes = m.broadcast_base_bytes.load();
  r.broadcast_delta_bytes = m.broadcast_delta_bytes.load();
  r.result_bytes = m.result_bytes.load();
  r.broadcast_fetches = m.broadcast_fetches.load();
  r.broadcast_hits = m.broadcast_hits.load();
  const std::uint64_t completed = m.tasks_completed.load();
  r.mean_task_compute_ms =
      completed > 0
          ? static_cast<double>(m.task_compute_ns.load()) / 1e6 /
                static_cast<double>(completed)
          : 0.0;
  r.migration_bytes = m.migration_bytes.load();
  r.partitions_stolen = m.partitions_stolen.load();
  r.tasks_speculated = m.tasks_speculated.load();
  r.duplicates_dropped = m.duplicate_results.load();
  r.shard_reads = m.shard_reads.load();
  r.shard_reads_partial = m.shard_reads_partial.load();
  r.shard_touches = m.shard_touches.load();
  for (std::size_t ch = 0; ch < engine::kNumWireChannels; ++ch) {
    const auto& w = m.wire(static_cast<engine::WireChannel>(ch));
    r.wire[ch] = {w.frames.load(), w.bytes_sent.load(), w.bytes_received.load()};
  }
  r.disk = {m.disk.blob_writes.load(),   m.disk.blob_write_bytes.load(),
            m.disk.blob_reads.load(),    m.disk.blob_read_bytes.load(),
            m.disk.lru_hits.load(),      m.disk.quarantines.load(),
            m.disk.recovery_walks.load(), m.disk.manifest_appends.load()};
}

/// Arms the cluster's span recorder for this run when
/// config.telemetry.enabled; otherwise a no-op — the recorder stays inert
/// and no clock is read anywhere on the task path. Must run before the
/// first dispatch (the recorder rebuilds its rings). Templated so every
/// config struct carrying a `telemetry` member (SolverConfig, AdmmConfig)
/// wires identically.
template <typename Config>
inline void begin_telemetry(engine::Cluster& cluster, const Config& config) {
  if (!config.telemetry.enabled) return;
  cluster.telemetry().configure(config.telemetry);
}

/// Final telemetry sweep: harvests what the cadence cycle has not drained
/// yet, builds the report into `r.telemetry`, writes the JSON export when
/// config.telemetry.export_path is set, and disarms the recorder so the
/// cluster can host an untraced run next.
template <typename Config>
inline void finish_telemetry(RunResult& r, engine::Cluster& cluster,
                             const Config& config) {
  if (!config.telemetry.enabled) return;
  r.telemetry = cluster.telemetry().finish();
  if (!config.telemetry.export_path.empty() && r.telemetry != nullptr) {
    r.telemetry->write_json(config.telemetry.export_path);
  }
}

/// Scheduler policy for a (workload, config) pair: the SolverConfig knobs
/// plus the workload's modeled per-partition bytes (the migration cost of a
/// steal). Installed via ac.scheduler().set_policy by every solver that
/// schedules through the AsyncContext.
[[nodiscard]] inline core::SchedulerPolicy scheduler_policy(const Workload& workload,
                                                            const SolverConfig& config) {
  core::SchedulerPolicy policy;
  policy.steal_mode = config.steal_mode;
  policy.speculation_factor = config.speculation_factor;
  policy.lost_task_factor = config.lost_task_factor;
  policy.partition_bytes = workload.partition_bytes();
  return policy;
}

/// Loads config.resume_from when set. A malformed or unreadable checkpoint
/// aborts loudly: silently starting from zero would masquerade as a
/// successful resume with a wrong trajectory.
[[nodiscard]] inline std::optional<SolverCheckpoint> maybe_resume(
    const SolverConfig& config) {
  if (config.resume_from.empty()) return std::nullopt;
  auto loaded = load_checkpoint(config.resume_from);
  if (!loaded.is_ok()) {
    std::fprintf(stderr, "maybe_resume: cannot resume from '%s': %s\n",
                 config.resume_from.c_str(), loaded.status().to_string().c_str());
    std::abort();
  }
  return std::move(loaded).value();
}

/// Snapshots the solver state to config.checkpoint_path on the
/// checkpoint_every cadence. `update_index` counts *completed* model updates
/// (call with k+1 after the k-th update has been applied and the version
/// advanced, so a restore at index k resumes with update k+1). `aux` carries
/// solver-specific vectors (SAGA's "alpha_bar").
inline void maybe_checkpoint(const SolverConfig& config, core::AsyncContext& ac,
                             const linalg::DenseVector& w, std::uint64_t update_index,
                             std::map<std::string, linalg::DenseVector> aux = {}) {
  if (config.checkpoint_every == 0 || update_index == 0 ||
      update_index % config.checkpoint_every != 0) {
    return;
  }
  SolverCheckpoint cp;
  cp.update_index = update_index;
  cp.model_version = ac.current_version();
  cp.round = ac.scheduler().rounds_dispatched();
  cp.model = w;
  cp.aux = std::move(aux);
  const core::StatSnapshot stat = ac.stat();
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  for (const auto& row : stat.workers) {
    completed += static_cast<std::uint64_t>(row.tasks_completed);
    failed += static_cast<std::uint64_t>(row.tasks_failed);
  }
  cp.counters["tasks_completed"] = completed;
  cp.counters["tasks_failed"] = failed;
  cp.counters["duplicates_dropped"] = ac.coordinator().duplicates_dropped();
  cp.counters["retries"] = ac.retries();

  // With the disk tier live, checkpoint through it (v3): model/aux become
  // content-addressed blobs, the record rides the manifest, and the
  // checkpoint file shrinks to a pointer. Any step failing (an injected
  // write fault that exhausts its retries, a full disk) degrades loudly to
  // the self-contained v2 format — durability of *this* snapshot is
  // preserved either way.
  if (config.store_config.disk.enabled) {
    if (auto* tier = ac.history().sharded_store().disk_tier(); tier != nullptr) {
      store::disk::CheckpointRecord rec;
      rec.update_index = cp.update_index;
      rec.model_version = cp.model_version;
      rec.round = cp.round;
      rec.counters.assign(cp.counters.begin(), cp.counters.end());
      bool ok = false;
      // The checkpointed model is written as its own blob: solvers snapshot
      // *after* advance_version, so `w` is not yet published (and content
      // addressing dedups the write when it is).
      if (auto digest = tier->put_payload(engine::Payload::wrap<linalg::DenseVector>(
              cp.model, cp.model.size_bytes()));
          digest.is_ok()) {
        rec.model_digest = digest.value();
        ok = true;
      }
      for (const auto& [name, vec] : cp.aux) {
        if (!ok) break;
        auto digest = tier->put_payload(
            engine::Payload::wrap<linalg::DenseVector>(vec, vec.size_bytes()));
        ok = digest.is_ok();
        if (ok) rec.aux.emplace_back(name, digest.value());
      }
      if (ok) ok = tier->append_checkpoint(rec).is_ok();
      if (ok) {
        ok = save_checkpoint_v3(config.checkpoint_path, tier->dir(), update_index)
                 .is_ok();
      }
      if (ok) return;
      std::fprintf(stderr,
                   "maybe_checkpoint: disk-tier checkpoint failed; writing a "
                   "self-contained v2 checkpoint instead\n");
    }
  }

  const support::Status saved = save_checkpoint(config.checkpoint_path, cp);
  if (!saved.is_ok()) {
    std::fprintf(stderr, "maybe_checkpoint: cannot write '%s': %s\n",
                 config.checkpoint_path.c_str(), saved.to_string().c_str());
    std::abort();
  }
}

/// STAT-keyed history GC on the configured cadence: every `gc_every` updates,
/// delta chains below the minimum in-flight version (further floored by
/// `extra_floor` — the SampleVersionTable minimum for history-reading
/// solvers) are compacted. Exactly then no dispatched task can reference the
/// erased versions.
inline void maybe_gc_history(core::AsyncContext& ac, const SolverConfig& config,
                             std::uint64_t updates,
                             std::optional<engine::Version> extra_floor = std::nullopt) {
  if (config.gc_every == 0 || updates == 0 || updates % config.gc_every != 0) return;
  ac.gc_history(extra_floor);
}

/// Dispatch with a liveness guarantee: if the barrier admits nobody AND the
/// cluster is completely idle (so no collect can ever re-open it), keep
/// retrying until something is in flight. Randomized barriers (PSP) need the
/// retries; deterministic ones exit the loop on the first pass because
/// either something was dispatched or tasks are already outstanding.
inline int dispatch_live(core::AsyncContext& ac, const core::BarrierControl& barrier,
                         const core::AsyncScheduler::TaskFactory& factory) {
  int submitted = ac.scheduler().dispatch_eligible(barrier, factory);
  while (submitted == 0 && ac.coordinator().total_outstanding() == 0 &&
         !ac.has_next()) {
    support::precise_sleep_ms(0.1);
    submitted = ac.scheduler().dispatch_eligible(barrier, factory);
  }
  return submitted;
}

/// Gradient-sum sequence op (the `map(p => ∇f_p(w_br.value))` of Algorithms
/// 1–2), generic over the broadcast handle type (engine::Broadcast or
/// core::HistoryBroadcast — both expose value()).  `grad_cfg` fixes the
/// accumulator representation (see detail::grad_config); passing a bare dim
/// yields the default sparse-start policy.
template <typename Handle>
[[nodiscard]] auto make_grad_seq(std::shared_ptr<const Loss> loss, Handle w_br,
                                 linalg::GradVectorConfig grad_cfg) {
  return [loss = std::move(loss), w_br, grad_cfg](GradCount acc,
                                                  const data::LabeledPoint& p) {
    acc.grad.ensure(grad_cfg);
    const linalg::DenseVector& w = w_br.value();
    const double coeff = loss->derivative(p.features.dot(w.span()), p.label);
    p.features.axpy_into(coeff, acc.grad);
    acc.count += 1;
    return acc;
  };
}

/// Combine op summing GradCount partials (driver side of reduce(_+_)).
[[nodiscard]] inline auto grad_comb() {
  return [](GradCount a, const GradCount& b) {
    if (b.count == 0) return a;
    a.grad.add(b.grad);
    a.count += b.count;
    return a;
  };
}

/// SAGA sequence op (the `map((index,p) => (∇f_p(w_br.value),
/// ∇f_p(w_br.value(index))))` of Algorithm 4): fresh gradient at the pinned
/// model, historical gradient recomputed from the sample's last version, and
/// the version table advanced to the pinned version.
[[nodiscard]] inline auto make_saga_seq(std::shared_ptr<const Loss> loss,
                                        core::HistoryBroadcast w_br,
                                        std::shared_ptr<core::SampleVersionTable> table,
                                        linalg::GradVectorConfig grad_cfg) {
  return [loss = std::move(loss), w_br, table = std::move(table), grad_cfg](
             GradHist acc, const data::LabeledPoint& p) {
    acc.grad.ensure(grad_cfg);
    acc.hist.ensure(grad_cfg);
    const linalg::DenseVector& w_new = w_br.value();
    const double coeff_new = loss->derivative(p.features.dot(w_new.span()), p.label);
    p.features.axpy_into(coeff_new, acc.grad);

    const engine::Version last = table->get(p.index);
    if (last != kNeverVisited) {
      const linalg::DenseVector& w_old = w_br.value_at(last);
      const double coeff_old =
          loss->derivative(p.features.dot(w_old.span()), p.label);
      p.features.axpy_into(coeff_old, acc.hist);
    }
    table->set(p.index, w_br.version());
    acc.count += 1;
    return acc;
  };
}

/// Combine op for GradHist partials.
[[nodiscard]] inline auto grad_hist_comb() {
  return [](GradHist a, const GradHist& b) {
    if (b.count == 0) return a;
    a.grad.add(b.grad);
    a.hist.add(b.hist);
    a.count += b.count;
    return a;
  };
}

/// SVRG inner sequence op (per-row reference): fresh gradient at the
/// dispatched model and snapshot gradient at the epoch's w̃.
[[nodiscard]] inline auto make_svrg_seq(std::shared_ptr<const Loss> loss,
                                        core::HistoryBroadcast w_br,
                                        core::HistoryBroadcast snapshot_br,
                                        linalg::GradVectorConfig grad_cfg) {
  return [loss = std::move(loss), w_br, snapshot_br, grad_cfg](
             GradHist acc, const data::LabeledPoint& p) {
    acc.grad.ensure(grad_cfg);
    acc.hist.ensure(grad_cfg);
    const linalg::DenseVector& w = w_br.value();
    const double coeff = loss->derivative(p.features.dot(w.span()), p.label);
    p.features.axpy_into(coeff, acc.grad);

    const linalg::DenseVector& snap = snapshot_br.value();
    const double coeff_snap = loss->derivative(p.features.dot(snap.span()), p.label);
    p.features.axpy_into(coeff_snap, acc.hist);
    acc.count += 1;
    return acc;
  };
}

// ---- task-body dispatch: fused batch kernels vs per-row reference ----------
//
// Every gradient-shipping solver builds its task bodies through these; the
// SolverConfig::fused_kernels switch keeps the per-row pipeline alive as the
// bit-compatible reference (property sweeps, micro benches).  `fraction`
// engaged = mini-batch sample; nullopt = full partition pass (epoch heads).

/// Gradient-sum task body (Algorithms 1–2).  `support` is the per-partition
/// shard-support table (shard_support_table); the fused bodies use it to
/// mask their model reads on a sharded plane, the per-row reference path
/// ignores it (full materialization, bit-identical values either way).
template <typename Handle>
[[nodiscard]] std::shared_ptr<const engine::TaskFn> grad_task_fn(
    const Workload& workload, const SolverConfig& config, Handle w_br,
    linalg::GradVectorConfig grad_cfg, std::optional<double> fraction,
    std::shared_ptr<const std::vector<core::ShardSet>> support = nullptr) {
  if (config.fused_kernels) {
    return make_grad_batch_fn(workload.dataset, workload.partitions, workload.loss,
                              w_br, grad_cfg, fraction, std::move(support));
  }
  const engine::Rdd<data::LabeledPoint> rdd =
      fraction.has_value() ? workload.points.sample(*fraction) : workload.points;
  return engine::make_aggregate_fn<data::LabeledPoint, GradCount>(
      rdd, GradCount{linalg::GradVector(grad_cfg)},
      make_grad_seq(workload.loss, w_br, grad_cfg));
}

/// SAGA task body (Algorithm 4).
[[nodiscard]] inline std::shared_ptr<const engine::TaskFn> saga_task_fn(
    const Workload& workload, const SolverConfig& config, core::HistoryBroadcast w_br,
    std::shared_ptr<core::SampleVersionTable> table, linalg::GradVectorConfig grad_cfg,
    std::optional<double> fraction,
    std::shared_ptr<const std::vector<core::ShardSet>> support = nullptr) {
  if (config.fused_kernels) {
    return make_saga_batch_fn(
        workload.dataset, workload.partitions, workload.loss, w_br, std::move(table),
        grad_cfg, fraction,
        [w_br](engine::Version v,
               const core::ShardSet* mask) -> const linalg::DenseVector& {
          return w_br.value_at(v, mask);
        },
        w_br.version(), std::move(support));
  }
  const engine::Rdd<data::LabeledPoint> rdd =
      fraction.has_value() ? workload.points.sample(*fraction) : workload.points;
  return engine::make_aggregate_fn<data::LabeledPoint, GradHist>(
      rdd, GradHist{linalg::GradVector(grad_cfg), linalg::GradVector(grad_cfg)},
      make_saga_seq(workload.loss, w_br, std::move(table), grad_cfg));
}

/// SVRG inner task body (epoch VR).
[[nodiscard]] inline std::shared_ptr<const engine::TaskFn> svrg_task_fn(
    const Workload& workload, const SolverConfig& config, core::HistoryBroadcast w_br,
    core::HistoryBroadcast snapshot_br, linalg::GradVectorConfig grad_cfg,
    std::optional<double> fraction,
    std::shared_ptr<const std::vector<core::ShardSet>> support = nullptr) {
  if (config.fused_kernels) {
    return make_svrg_batch_fn(workload.dataset, workload.partitions, workload.loss,
                              w_br, snapshot_br, grad_cfg, fraction,
                              std::move(support));
  }
  const engine::Rdd<data::LabeledPoint> rdd =
      fraction.has_value() ? workload.points.sample(*fraction) : workload.points;
  return engine::make_aggregate_fn<data::LabeledPoint, GradHist>(
      rdd, GradHist{linalg::GradVector(grad_cfg), linalg::GradVector(grad_cfg)},
      make_svrg_seq(workload.loss, w_br, snapshot_br, grad_cfg));
}

}  // namespace asyncml::optim::detail
