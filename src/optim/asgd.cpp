#include "optim/asgd.hpp"

#include "metrics/trace.hpp"
#include "optim/objective.hpp"
#include "optim/solver_util.hpp"
#include "support/stopwatch.hpp"

namespace asyncml::optim {

RunResult AsgdSolver::run(engine::Cluster& cluster, const Workload& workload,
                          const SolverConfig& config) {
  const std::size_t dim = workload.dim();
  const double service_ms =
      config.service_floor_ms > 0.0
          ? config.service_floor_ms
          : config.cost.task_service_ms(*workload.dataset, workload.num_partitions(),
                                        config.batch_fraction);
  // Listing 1 applies alpha/(1+staleness) directly, so the staleness factor
  // replaces the 1/P heuristic rather than stacking on top of it.
  const double default_scale = config.staleness_adaptive_lr
                                   ? 1.0
                                   : 1.0 / static_cast<double>(cluster.num_workers());
  const double step_scale = config.async_step_scale.value_or(default_scale);
  const linalg::GradVectorConfig grad_cfg = detail::grad_config(workload, config);
  // Per-partition shard-support sets (sparse workloads on a sharded plane).
  const auto support_table = detail::shard_support_table(workload, config);

  detail::reset_run_metrics(cluster.metrics());
  detail::begin_telemetry(cluster, config);

  // AC = new ASYNCcontext; models publish through the delta-versioned store.
  core::AsyncContext ac(cluster, workload.num_partitions(), config.store_config);
  ac.scheduler().set_policy(detail::scheduler_policy(workload, config));

  core::SubmitOptions opts;
  opts.service_floor_ms = service_ms;
  opts.rng_seed = config.seed;

  linalg::DenseVector w(dim);
  std::uint64_t updates0 = 0;
  if (auto cp = detail::maybe_resume(config); cp.has_value()) {
    // Trajectory-equivalent resume: the restored model republishes at the
    // restored version and the update count continues, but arrival order —
    // and therefore the exact float trajectory — is scheduling-dependent,
    // exactly as between two uninterrupted async runs.
    w = std::move(cp->model);
    updates0 = cp->update_index;
    ac.restore(cp->model_version, cp->round);
  }
  core::HistoryBroadcast w_br = ac.async_broadcast(w);  // publish at the current version

  // Factory building this round's gradient tasks against the latest w_br.
  auto rebuild_factory = [&] {
    return ac.make_fn_factory(
        detail::grad_task_fn(workload, config, w_br, grad_cfg, config.batch_fraction,
                             support_table),
        opts);
  };
  core::AsyncScheduler::TaskFactory factory = rebuild_factory();

  metrics::TraceRecorder recorder(config.eval_every);
  recorder.reserve_for(config.updates);
  support::Stopwatch watch;
  recorder.snapshot(updates0, 0.0, w);

  // Prime every worker the barrier admits (all of them, initially).
  detail::dispatch_live(ac, config.barrier, factory);

  std::uint64_t updates = updates0;
  while (updates < config.updates) {
    auto collected = ac.collect(&factory);  // while(AC.hasNext()) { ASYNCcollect() }
    if (!collected.has_value()) break;      // context stopped

    const GradCount& g = collected->result.payload.get<GradCount>();
    if (g.count > 0) {
      // Algorithm 2 indexes the schedule by the outer iteration αᵢ: one
      // logical iteration yields up to one result per partition, so the
      // decay advances once per P collected updates (each update still
      // applies the per-result step α/W per the §6.1 heuristic).
      const std::uint64_t round =
          updates / static_cast<std::uint64_t>(std::max(1, workload.num_partitions()));
      double lr = config.step(round) * step_scale;
      if (config.staleness_adaptive_lr) {
        lr /= 1.0 + static_cast<double>(collected->staleness);  // Listing 1
      }
      g.grad.scale_into(-lr / static_cast<double>(g.count), w.span());
    }
    ++updates;
    ac.advance_version();
    w_br = ac.async_broadcast(w);
    factory = rebuild_factory();
    recorder.maybe_snapshot(updates, watch.elapsed_ms(), w);
    detail::maybe_gc_history(ac, config, updates);
    detail::maybe_checkpoint(config, ac, w, updates);

    // points.ASYNCbarrier(f, AC.STAT) ... — admit whatever the barrier allows.
    detail::dispatch_live(ac, config.barrier, factory);
  }
  recorder.snapshot(updates, watch.elapsed_ms(), w);

  RunResult result;
  result.algorithm = config.staleness_adaptive_lr ? "ASGD-staleness" : "ASGD";
  result.wall_ms = watch.elapsed_ms();
  result.updates = updates;
  result.tasks = updates;
  result.final_w = w;
  detail::fill_run_stats(result, cluster.metrics());
  detail::finish_telemetry(result, cluster, config);
  result.trace = recorder.finalize([&](const linalg::DenseVector& model) {
    return full_objective(*workload.dataset, *workload.loss, model);
  });
  return result;
}

}  // namespace asyncml::optim
