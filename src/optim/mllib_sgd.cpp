#include "optim/mllib_sgd.hpp"

#include "optim/sgd.hpp"

namespace asyncml::optim {

RunResult MllibSgdSolver::run(engine::Cluster& cluster, const Workload& workload,
                              const SolverConfig& config) {
  return detail::run_sync_sgd(cluster, workload, config, /*tree=*/true, "MLlib-SGD");
}

}  // namespace asyncml::optim
