#include "optim/hogwild.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "metrics/trace.hpp"
#include "optim/objective.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_util.hpp"

namespace asyncml::optim {

namespace {

/// Lock-free view of the shared model: each coordinate is a relaxed atomic.
/// Hogwild!'s guarantee is exactly that such unsynchronized updates still
/// converge when the conflict pattern is sparse.
class SharedModel {
 public:
  explicit SharedModel(std::size_t dim) : coords_(dim) {
    for (auto& c : coords_) c.store(0.0, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const noexcept { return coords_.size(); }

  [[nodiscard]] double load(std::size_t i) const noexcept {
    return coords_[i].load(std::memory_order_relaxed);
  }

  void add(std::size_t i, double delta) noexcept {
    // fetch_add on atomic<double> (C++20); relaxed: Hogwild semantics.
    coords_[i].fetch_add(delta, std::memory_order_relaxed);
  }

  /// Inconsistent snapshot (fine for evaluation: coordinates may be from
  /// slightly different logical times, as in the algorithm itself).
  [[nodiscard]] linalg::DenseVector snapshot() const {
    linalg::DenseVector w(coords_.size());
    for (std::size_t i = 0; i < coords_.size(); ++i) w[i] = load(i);
    return w;
  }

 private:
  std::vector<std::atomic<double>> coords_;
};

}  // namespace

RunResult HogwildSolver::run(const data::Dataset& dataset, const Loss& loss,
                             const HogwildConfig& config) {
  const std::size_t n = dataset.rows();
  const std::size_t dim = dataset.cols();
  SharedModel model(dim);

  metrics::TraceRecorder recorder(config.eval_every);
  recorder.reserve_for(config.updates_per_thread *
                       static_cast<std::uint64_t>(config.threads));
  support::Stopwatch watch;
  recorder.snapshot(0, 0.0, model.snapshot());

  std::atomic<std::uint64_t> global_updates{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config.threads));

  // Thread 0 additionally records trace snapshots; recorder access is safe
  // because only thread 0 touches it while the others run.
  for (int t = 0; t < config.threads; ++t) {
    threads.emplace_back([&, t] {
      support::set_current_thread_name("hogwild-" + std::to_string(t));
      support::RngStream rng =
          support::RngStream(config.seed).substream(static_cast<std::uint64_t>(t) + 1);
      // Thread-local read buffer for the (racy) model read.
      linalg::DenseVector w_local(dim);

      for (std::uint64_t k = 0; k < config.updates_per_thread; ++k) {
        // Racy read of the current model (the x̂ of the Hogwild analysis).
        for (std::size_t i = 0; i < dim; ++i) w_local[i] = model.load(i);

        const double lr =
            config.step(global_updates.load(std::memory_order_relaxed)) /
            static_cast<double>(config.batch_size);
        for (std::size_t s = 0; s < config.batch_size; ++s) {
          const std::size_t row = static_cast<std::size_t>(rng.next_below(n));
          const data::LabeledPoint p = dataset.point(row);
          const double coeff =
              loss.derivative(p.features.dot(w_local.span()), p.label);
          // Scatter the update straight into the shared vector, touching
          // only the sample's support (the sparsity Hogwild relies on).
          // RowRef's axpy would write into a plain span, so scatter manually
          // through the atomic adds.
          const double scale = -lr * coeff;
          if (p.features.is_dense()) {
            const auto row_view = dataset.dense_features().row(row);
            for (std::size_t i = 0; i < dim; ++i) {
              if (row_view[i] != 0.0) model.add(i, scale * row_view[i]);
            }
          } else {
            const auto row_view = dataset.sparse_features().row(row);
            for (std::size_t j = 0; j < row_view.nnz(); ++j) {
              model.add(row_view.indices[j], scale * row_view.values[j]);
            }
          }
        }

        const std::uint64_t done =
            global_updates.fetch_add(1, std::memory_order_relaxed) + 1;
        if (t == 0 && done % config.eval_every == 0) {
          recorder.snapshot(done, watch.elapsed_ms(), model.snapshot());
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const linalg::DenseVector final_w = model.snapshot();
  recorder.snapshot(global_updates.load(), watch.elapsed_ms(), final_w);

  RunResult result;
  result.algorithm = "Hogwild";
  result.wall_ms = watch.elapsed_ms();
  result.updates = global_updates.load();
  result.tasks = result.updates;
  result.final_w = final_w;
  result.trace = recorder.finalize(
      [&](const linalg::DenseVector& w) { return full_objective(dataset, loss, w); });
  return result;
}

}  // namespace asyncml::optim
