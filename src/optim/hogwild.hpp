#pragma once

// Hogwild!-style shared-memory asynchronous SGD (Recht et al. [55]).
//
// The paper's related-work section contrasts ASYNC's distributed setting
// with shared-memory asynchrony, where threads update one model vector with
// no locking at all.  This solver implements that baseline: T threads sample
// mini-batches and apply lock-free updates to a shared parameter vector
// (per-coordinate relaxed atomics — torn reads are part of the algorithm's
// contract).  It exists (a) as the canonical shared-memory comparison point
// and (b) as a stress test that the library's loss/data layers are safe under
// genuine data races on the model only.
//
// Unlike the cluster solvers there is no engine underneath: this is the
// "single big machine" alternative the paper argues does not scale to
// cluster-resident data, included for completeness of the comparison.

#include <cstdint>

#include "data/dataset.hpp"
#include "linalg/dense_vector.hpp"
#include "optim/loss.hpp"
#include "optim/run_result.hpp"
#include "optim/step_size.hpp"

namespace asyncml::optim {

struct HogwildConfig {
  int threads = 4;
  std::uint64_t updates_per_thread = 500;
  /// Samples per update, drawn uniformly with replacement.
  std::size_t batch_size = 16;
  StepSchedule step = constant_step(0.01);
  std::uint64_t seed = 1;
  std::uint64_t eval_every = 50;  ///< snapshots (taken by thread 0)
};

class HogwildSolver {
 public:
  [[nodiscard]] static RunResult run(const data::Dataset& dataset, const Loss& loss,
                                     const HogwildConfig& config);
};

}  // namespace asyncml::optim
