#include "optim/admm.hpp"

#include "core/async_context.hpp"
#include "linalg/blas.hpp"
#include "metrics/trace.hpp"
#include "optim/objective.hpp"
#include "optim/solver_util.hpp"
#include "support/stopwatch.hpp"

namespace asyncml::optim {

namespace {

/// Worker-resident primal/dual state, one (x_p, u_p) pair per partition.
/// Same partition-affinity contract as core::SampleVersionTable: entry p is
/// only touched by the task currently running partition p.
struct AdmmLocalState {
  std::vector<linalg::DenseVector> x;
  std::vector<linalg::DenseVector> u;

  AdmmLocalState(int partitions, std::size_t dim)
      : x(static_cast<std::size_t>(partitions), linalg::DenseVector(dim)),
        u(static_cast<std::size_t>(partitions), linalg::DenseVector(dim)) {}
};

}  // namespace

RunResult AsyncAdmmSolver::run(engine::Cluster& cluster, const Workload& workload,
                               const AdmmConfig& config) {
  const std::size_t dim = workload.dim();
  const int partitions = workload.num_partitions();
  const double service_ms =
      config.service_floor_ms > 0.0
          ? config.service_floor_ms
          : config.cost.task_service_ms(*workload.dataset, partitions, 1.0);

  // Default local step from the ρ-regularized subproblem's smoothness:
  // L_local ≈ 2·E‖x‖² (mean-normalized partition loss) + ρ.
  double mean_norm_sq = 0.0;
  const std::size_t probe = std::min<std::size_t>(workload.n(), 256);
  for (std::size_t r = 0; r < probe; ++r) {
    mean_norm_sq += workload.dataset->row(r).norm_squared();
  }
  mean_norm_sq /= std::max<std::size_t>(1, probe);
  const double local_step = config.local_step > 0.0
                                ? config.local_step
                                : 1.0 / (2.0 * mean_norm_sq + config.rho);

  detail::reset_run_metrics(cluster.metrics());
  detail::begin_telemetry(cluster, config);

  core::AsyncContext ac(cluster, partitions);
  auto state = std::make_shared<AdmmLocalState>(partitions, dim);

  core::SubmitOptions opts;
  opts.service_floor_ms = service_ms;
  opts.rng_seed = config.seed;

  linalg::DenseVector z(dim);
  linalg::DenseVector share_sum(dim);  // Σ_p (x_p + u_p), updated incrementally
  std::vector<linalg::DenseVector> last_share(
      static_cast<std::size_t>(partitions), linalg::DenseVector(dim));
  core::HistoryBroadcast z_br = ac.async_broadcast(z);

  // The partition task: inexact local argmin + dual ascent, returns x_p + u_p.
  const auto make_factory = [&](core::HistoryBroadcast z_handle) {
    auto fn = std::make_shared<const engine::TaskFn>(
        [points = workload.points, state, z_handle, loss = workload.loss, dim,
         rho = config.rho, steps = config.local_gd_steps,
         eta = local_step](engine::TaskContext& ctx)
            -> support::StatusOr<engine::Payload> {
          const std::size_t p = static_cast<std::size_t>(ctx.partition);
          linalg::DenseVector& x = state->x[p];
          linalg::DenseVector& u = state->u[p];
          const linalg::DenseVector& z_local = z_handle.value();

          linalg::DenseVector grad(dim);
          for (int s = 0; s < steps; ++s) {
            grad.set_zero();
            std::size_t count = 0;
            points.foreach_partition(ctx.partition, ctx,
                                     [&](const data::LabeledPoint& point) {
                                       const double coeff = loss->derivative(
                                           point.features.dot(x.span()), point.label);
                                       point.features.axpy_into(coeff, grad.span());
                                       ++count;
                                     });
            if (count > 0) {
              linalg::scal(1.0 / static_cast<double>(count), grad.span());
            }
            // + ρ (x − z + u) from the augmented Lagrangian.
            for (std::size_t i = 0; i < dim; ++i) {
              grad[i] += rho * (x[i] - z_local[i] + u[i]);
            }
            linalg::axpy(-eta, grad.span(), x.span());
          }
          // Dual ascent: u ← u + x − z.
          for (std::size_t i = 0; i < dim; ++i) u[i] += x[i] - z_local[i];

          linalg::DenseVector share = x;
          linalg::axpy(1.0, u.span(), share.span());
          const std::size_t bytes = share.size_bytes();
          return engine::Payload::wrap<linalg::DenseVector>(std::move(share), bytes);
        });
    return [this_fn = std::move(fn), &ac, opts](engine::PartitionId p) {
      engine::TaskSpec spec;
      spec.partition = p;
      spec.model_version = ac.current_version();
      spec.fn = this_fn;
      spec.service_floor_ms = opts.service_floor_ms;
      spec.rng_seed = opts.rng_seed;
      return spec;
    };
  };

  core::AsyncScheduler::TaskFactory factory = make_factory(z_br);

  metrics::TraceRecorder recorder(config.eval_every);
  recorder.reserve_for(config.updates);
  support::Stopwatch watch;
  recorder.snapshot(0, 0.0, z);

  detail::dispatch_live(ac, config.barrier, factory);

  std::uint64_t updates = 0;
  while (updates < config.updates) {
    auto collected = ac.collect(&factory);
    if (!collected.has_value()) break;

    const std::size_t p = static_cast<std::size_t>(collected->result.partition);
    const auto& share = collected->result.payload.get<linalg::DenseVector>();
    // z ← mean_p (x_p + u_p), maintained incrementally.
    linalg::axpy(-1.0, last_share[p].span(), share_sum.span());
    linalg::axpy(1.0, share.span(), share_sum.span());
    last_share[p] = share;
    z = share_sum;
    linalg::scal(1.0 / static_cast<double>(partitions), z.span());

    ++updates;
    ac.advance_version();
    z_br = ac.async_broadcast(z);
    factory = make_factory(z_br);
    recorder.maybe_snapshot(updates, watch.elapsed_ms(), z);

    detail::dispatch_live(ac, config.barrier, factory);
  }
  recorder.snapshot(updates, watch.elapsed_ms(), z);

  RunResult result;
  result.algorithm = "AsyncADMM";
  result.wall_ms = watch.elapsed_ms();
  result.updates = updates;
  result.tasks = updates;
  result.final_w = z;
  detail::fill_run_stats(result, cluster.metrics());
  detail::finish_telemetry(result, cluster, config);
  result.trace = recorder.finalize([&](const linalg::DenseVector& model) {
    return full_objective(*workload.dataset, *workload.loss, model);
  });
  return result;
}

}  // namespace asyncml::optim
