#include "optim/objective.hpp"

namespace asyncml::optim {

double full_objective(const data::Dataset& dataset, const Loss& loss,
                      const linalg::DenseVector& w) {
  double total = 0.0;
  const std::size_t n = dataset.rows();
  for (std::size_t r = 0; r < n; ++r) {
    const data::LabeledPoint p = dataset.point(r);
    total += loss.value(p.features.dot(w.span()), p.label);
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

linalg::DenseVector full_gradient(const data::Dataset& dataset, const Loss& loss,
                                  const linalg::DenseVector& w) {
  linalg::DenseVector g(dataset.cols());
  const std::size_t n = dataset.rows();
  for (std::size_t r = 0; r < n; ++r) {
    const data::LabeledPoint p = dataset.point(r);
    const double coeff = loss.derivative(p.features.dot(w.span()), p.label);
    p.features.axpy_into(coeff, g.span());
  }
  if (n > 0) linalg::scal(1.0 / static_cast<double>(n), g.span());
  return g;
}

}  // namespace asyncml::optim
