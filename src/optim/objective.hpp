#pragma once

// Full-objective evaluation: F(w) = (1/n) Σ ℓ(<x_i, w>, y_i).
//
// Used only for convergence traces (outside the timed path) and tests; the
// distributed solvers never evaluate the full objective during a run.

#include "data/dataset.hpp"
#include "linalg/dense_vector.hpp"
#include "optim/loss.hpp"

namespace asyncml::optim {

[[nodiscard]] double full_objective(const data::Dataset& dataset, const Loss& loss,
                                    const linalg::DenseVector& w);

/// Full gradient ∇F(w) = (1/n) Σ ℓ'(<x_i, w>, y_i) · x_i (tests, SVRG epochs'
/// reference implementation).
[[nodiscard]] linalg::DenseVector full_gradient(const data::Dataset& dataset,
                                                const Loss& loss,
                                                const linalg::DenseVector& w);

}  // namespace asyncml::optim
