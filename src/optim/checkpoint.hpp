#pragma once

// Solver-state checkpointing.
//
// Spark's fault tolerance covers tasks (retries) and RDDs (lineage); the
// *driver's* algorithm state — the model, SAGA's running mean, the version
// counter — is the user's to persist.  This module provides a small binary
// format for exactly that, so long optimizations survive server restarts:
//
//   SolverCheckpoint cp;
//   cp.model = w; cp.aux["alpha_bar"] = alpha_bar;
//   cp.update_index = k; save_checkpoint(path, cp);
//   ...
//   auto restored = load_checkpoint(path);
//
// Format v2 ("AMLCKPT2"): update index, model version, dispatch round, a
// named u64 counter map (STAT totals, solver run counters), then named dense
// vectors (u32 name length, name bytes, u64 dim, doubles).  Little-endian
// host order (documented limitation: not portable across endianness).
// Version + round matter for *bit-exact* resume: mini-batches derive from
// (seed, partition, seq), so the restored run must continue the seq stream
// where the original left off, not restart it at zero.
//
// v1 files ("AMLCKPT1": update index + vectors only) still load; the v2-only
// fields come back zero/empty.  Every malformed input — truncated file, bad
// magic, a vector length that overruns the file — is a non-OK Status, never
// a crash: claimed sizes are validated against the actual file size before
// any allocation.
//
// Format v3 ("AMLCKPT3", docs/DURABILITY.md): the checkpoint file shrinks to
// a pointer — the disk-tier directory plus an advisory update index.  The
// real state lives in the tier: checkpoint records in the append-only
// MANIFEST naming sha256-addressed model/aux blobs.  Loading replays the
// manifest read-only and walks the checkpoint records newest → oldest,
// returning the first record whose blobs all verify (hash + CRC); a corrupt
// blob is quarantined by the blob store and the loader falls back to the
// next older record — bit-exact, since *any* intact checkpoint k resumes
// exactly at update k.  v3 is written by maybe_checkpoint when the store's
// disk tier is enabled; v1/v2 files keep loading unchanged.

#include <cstdint>
#include <map>
#include <string>

#include "linalg/dense_vector.hpp"
#include "support/status.hpp"

namespace asyncml::optim {

struct SolverCheckpoint {
  std::uint64_t update_index = 0;
  /// Coordinator model version at snapshot time (v2).
  std::uint64_t model_version = 0;
  /// Scheduler dispatch round — the per-partition seq counter (v2). Resuming
  /// from it keeps the deterministic (seed, partition, seq) batch stream
  /// aligned with the uninterrupted run.
  std::uint64_t round = 0;
  linalg::DenseVector model;
  /// Named scalar counters (e.g. STAT totals) (v2).
  std::map<std::string, std::uint64_t> counters;
  /// Named auxiliary vectors (e.g. SAGA's "alpha_bar", ADMM's duals).
  std::map<std::string, linalg::DenseVector> aux;
  /// Disk-tier directory this checkpoint was loaded from (v3 only; empty for
  /// v1/v2). Informational — the resumed run re-opens the tier through its
  /// own StoreConfig.
  std::string store_dir;
};

[[nodiscard]] support::Status save_checkpoint(const std::string& path,
                                              const SolverCheckpoint& checkpoint);

/// Writes a v3 pointer checkpoint: `store_dir` (the disk tier holding the
/// actual state) + the advisory update index, published by atomic rename so a
/// crash mid-write can never leave a torn pointer at `path`.
[[nodiscard]] support::Status save_checkpoint_v3(const std::string& path,
                                                 const std::string& store_dir,
                                                 std::uint64_t update_index);

[[nodiscard]] support::StatusOr<SolverCheckpoint> load_checkpoint(
    const std::string& path);

}  // namespace asyncml::optim
