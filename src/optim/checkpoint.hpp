#pragma once

// Solver-state checkpointing.
//
// Spark's fault tolerance covers tasks (retries) and RDDs (lineage); the
// *driver's* algorithm state — the model, SAGA's running mean, the version
// counter — is the user's to persist.  This module provides a small binary
// format for exactly that, so long optimizations survive server restarts:
//
//   SolverCheckpoint cp;
//   cp.model = w; cp.aux["alpha_bar"] = alpha_bar;
//   cp.update_index = k; save_checkpoint(path, cp);
//   ...
//   auto restored = load_checkpoint(path);
//
// Format: magic "AMLCKPT1", then update index, then named dense vectors
// (u32 name length, name bytes, u64 dim, doubles), little-endian host order
// (documented limitation: not portable across endianness).

#include <cstdint>
#include <map>
#include <string>

#include "linalg/dense_vector.hpp"
#include "support/status.hpp"

namespace asyncml::optim {

struct SolverCheckpoint {
  std::uint64_t update_index = 0;
  linalg::DenseVector model;
  /// Named auxiliary vectors (e.g. SAGA's "alpha_bar", ADMM's duals).
  std::map<std::string, linalg::DenseVector> aux;
};

[[nodiscard]] support::Status save_checkpoint(const std::string& path,
                                              const SolverCheckpoint& checkpoint);

[[nodiscard]] support::StatusOr<SolverCheckpoint> load_checkpoint(
    const std::string& path);

}  // namespace asyncml::optim
