#include "optim/sgd.hpp"

#include <algorithm>

#include "engine/actions.hpp"
#include "metrics/trace.hpp"
#include "optim/objective.hpp"
#include "optim/solver_util.hpp"
#include "support/stopwatch.hpp"

namespace asyncml::optim {

namespace detail {

RunResult run_sync_sgd(engine::Cluster& cluster, const Workload& workload,
                       const SolverConfig& config, bool tree,
                       const char* algorithm_name) {
  const std::size_t dim = workload.dim();
  const double service_ms =
      config.service_floor_ms > 0.0
          ? config.service_floor_ms
          : config.cost.task_service_ms(*workload.dataset, workload.num_partitions(),
                                        config.batch_fraction);

  const linalg::GradVectorConfig grad_cfg = grad_config(workload, config);

  reset_run_metrics(cluster.metrics());
  begin_telemetry(cluster, config);

  linalg::DenseVector w(dim);
  auto comb = grad_comb();

  metrics::TraceRecorder recorder(config.eval_every);
  recorder.reserve_for(config.updates);
  support::Stopwatch watch;
  recorder.snapshot(0, 0.0, w);

  engine::BroadcastId previous_id = 0;
  std::vector<engine::BroadcastId> dead_ids;  // erased from worker caches below
  for (std::uint64_t k = 0; k < config.updates; ++k) {
    // Fresh broadcast of w each iteration (Algorithm 1 line 2); workers
    // fetch it once, tasks on the same worker share the cached copy.
    engine::Broadcast<linalg::DenseVector> w_br =
        cluster.broadcast(w, w.size_bytes());

    engine::StageOptions stage;
    stage.seq = k;
    stage.model_version = k;
    stage.service_floor_ms = service_ms;
    stage.rng_seed = config.seed;

    auto fn = grad_task_fn(workload, config, w_br, grad_cfg, config.batch_fraction);
    GradCount zero{linalg::GradVector(grad_cfg)};
    const int parts = workload.num_partitions();
    const GradCount total =
        tree ? engine::tree_aggregate_sync_fn(cluster, std::move(fn), parts,
                                              std::move(zero), comb, stage)
             : engine::aggregate_sync_fn(cluster, std::move(fn), parts,
                                         std::move(zero), comb, stage);

    if (total.count > 0) {
      total.grad.scale_into(-config.step(k) / static_cast<double>(total.count),
                            w.span());
    }
    recorder.maybe_snapshot(k + 1, watch.elapsed_ms(), w);

    // The previous iteration's broadcast is dead: drop it from the store so
    // memory stays bounded over long runs (Spark unpersists similarly), and
    // periodically trim the worker caches too — by the exact dead ids, never
    // an id threshold: broadcast ids are registration-ordered, so a threshold
    // would also evict unrelated broadcasts registered mid-run.
    if (previous_id != 0) {
      cluster.store().erase(previous_id);
      dead_ids.push_back(previous_id);
    }
    previous_id = w_br.id();
    if ((k & 63u) == 63u) {
      for (int worker = 0; worker < cluster.num_workers(); ++worker) {
        engine::BroadcastCache& cache = cluster.worker(worker).cache();
        for (const engine::BroadcastId id : dead_ids) cache.erase(id);
      }
      dead_ids.clear();
    }
  }
  recorder.snapshot(config.updates, watch.elapsed_ms(), w);

  RunResult result;
  result.algorithm = algorithm_name;
  result.wall_ms = watch.elapsed_ms();
  result.updates = config.updates;
  result.tasks = cluster.metrics().tasks_completed.load();
  result.final_w = w;
  fill_run_stats(result, cluster.metrics());
  finish_telemetry(result, cluster, config);
  result.trace = recorder.finalize([&](const linalg::DenseVector& model) {
    return full_objective(*workload.dataset, *workload.loss, model);
  });
  return result;
}

}  // namespace detail

RunResult SgdSolver::run(engine::Cluster& cluster, const Workload& workload,
                         const SolverConfig& config) {
  return detail::run_sync_sgd(cluster, workload, config, /*tree=*/false, "SGD");
}

RunResult ScheduledSgdSolver::run(engine::Cluster& cluster, const Workload& workload,
                                  const SolverConfig& config) {
  const std::size_t dim = workload.dim();
  const double service_ms =
      config.service_floor_ms > 0.0
          ? config.service_floor_ms
          : config.cost.task_service_ms(*workload.dataset, workload.num_partitions(),
                                        config.batch_fraction);
  const linalg::GradVectorConfig grad_cfg = detail::grad_config(workload, config);
  // Per-partition shard-support sets (sparse workloads on a sharded plane):
  // workers fetch only the shards their partition's support touches.
  const auto support_table = detail::shard_support_table(workload, config);

  detail::reset_run_metrics(cluster.metrics());
  detail::begin_telemetry(cluster, config);

  core::AsyncContext ac(cluster, workload.num_partitions(), config.store_config);
  ac.scheduler().set_policy(detail::scheduler_policy(workload, config));
  auto comb = detail::grad_comb();

  core::SubmitOptions opts;
  opts.service_floor_ms = service_ms;
  opts.rng_seed = config.seed;

  linalg::DenseVector w(dim);
  std::uint64_t k0 = 0;
  if (auto cp = detail::maybe_resume(config); cp.has_value()) {
    // Bit-exact resume: the restored model plus the restored version and
    // dispatch-round streams make updates k0, k0+1, … identical to the
    // uninterrupted run's (tests/faults/checkpoint_restore_test.cpp pins it).
    w = std::move(cp->model);
    k0 = cp->update_index;
    ac.restore(cp->model_version, cp->round);
  }
  metrics::TraceRecorder recorder(config.eval_every);
  recorder.reserve_for(config.updates);
  support::Stopwatch watch;
  recorder.snapshot(k0, 0.0, w);

  std::uint64_t tasks = 0;
  for (std::uint64_t k = k0; k < config.updates; ++k) {
    // Publish w at the round's version; workers ride the delta chain.
    core::HistoryBroadcast w_br = ac.async_broadcast(w);

    std::vector<core::TaggedResult> results = ac.sync_round_fn(
        detail::grad_task_fn(workload, config, w_br, grad_cfg, config.batch_fraction,
                             support_table),
        opts);
    tasks += results.size();

    // Combine in partition order, not arrival order: together with the
    // (seed, partition, seq) task RNG this makes the iterate sequence
    // independent of placement — stealing and speculative replicas change
    // the wall clock, never the bits (docs/SCHEDULING.md, "Determinism").
    std::sort(results.begin(), results.end(),
              [](const core::TaggedResult& a, const core::TaggedResult& b) {
                return a.result.partition < b.result.partition;
              });
    GradCount total{linalg::GradVector(grad_cfg)};
    if (config.combine_mode == core::CombineMode::kTree) {
      // Tree aggregation through the live context (core/shard_route.hpp):
      // partition-ordered partials reduce as log-depth combine tasks — per
      // shard on a sharded plane — instead of one driver hot loop. Safe here
      // because the round is fully collected (no foreign tasks in flight).
      std::vector<linalg::GradVector> parts;
      parts.reserve(results.size());
      for (core::TaggedResult& r : results) {
        GradCount gc = r.result.payload.get<GradCount>();
        if (gc.count == 0) continue;
        total.count += gc.count;
        parts.push_back(std::move(gc.grad));
      }
      core::TreeCombineOptions tree;
      tree.fanout = config.combine_fanout;
      tree.seq = k;
      tree.model_version = ac.current_version();
      tree.rng_seed = config.seed;
      total.grad = core::tree_combine_async(
          ac, std::move(parts), ac.history().sharded_store().shard_map(), grad_cfg,
          tree);
    } else {
      for (core::TaggedResult& r : results) {
        total = comb(std::move(total), r.result.payload.get<GradCount>());
      }
    }
    if (total.count > 0) {
      total.grad.scale_into(-config.step(k) / static_cast<double>(total.count),
                            w.span());
    }
    ac.advance_version();
    recorder.maybe_snapshot(k + 1, watch.elapsed_ms(), w);
    detail::maybe_gc_history(ac, config, k + 1);
    detail::maybe_checkpoint(config, ac, w, k + 1);
  }
  recorder.snapshot(config.updates, watch.elapsed_ms(), w);

  RunResult result;
  result.algorithm = "SGD-sched";
  result.wall_ms = watch.elapsed_ms();
  result.updates = config.updates;
  result.tasks = tasks;
  result.final_w = w;
  detail::fill_run_stats(result, cluster.metrics());
  detail::finish_telemetry(result, cluster, config);
  result.trace = recorder.finalize([&](const linalg::DenseVector& model) {
    return full_objective(*workload.dataset, *workload.loss, model);
  });
  return result;
}

}  // namespace asyncml::optim
