#pragma once

// Epoch-based variance reduction — the paper's Listing 3 (SVRG-style,
// after Johnson & Zhang; asynchronous inner loop as in [29, 56, 71]).
//
// Each epoch starts with a *synchronous* full-gradient pass at the snapshot
// model w̃ (the "periodic synchronization" of the listing), then runs an
// asynchronous inner loop whose tasks return (∇f_B(w), ∇f_B(w̃)) pairs; the
// server applies  w ← w − α [ (ĝ_cur − ĝ_snap) + μ ]  per collected result.
// This exercises ASYNC's claim that epoch-based VR methods mix its
// synchronous and asynchronous primitives freely.

#include "engine/cluster.hpp"
#include "optim/run_result.hpp"
#include "optim/solver_config.hpp"
#include "optim/workload.hpp"

namespace asyncml::optim {

class EpochVrSolver {
 public:
  /// `config.updates` = total inner updates; `config.epoch_inner_updates`
  /// inner updates per epoch between full-gradient synchronizations.
  [[nodiscard]] static RunResult run(engine::Cluster& cluster, const Workload& workload,
                                     const SolverConfig& config);
};

}  // namespace asyncml::optim
