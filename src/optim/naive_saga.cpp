#include "optim/naive_saga.hpp"

#include <vector>

#include "core/history.hpp"  // SampleVersionTable reused as the index table
#include "engine/actions.hpp"
#include "metrics/trace.hpp"
#include "optim/objective.hpp"
#include "optim/solver_util.hpp"
#include "support/stopwatch.hpp"

namespace asyncml::optim {

namespace {

/// The "table" of Algorithm 3: every past model parameter, shipped wholesale.
struct ModelTable {
  std::vector<linalg::DenseVector> models;  // models[k] = w after update k
};

[[nodiscard]] std::size_t payload_size_bytes(const ModelTable& t) {
  std::size_t bytes = 0;
  for (const auto& m : t.models) bytes += m.size_bytes();
  return bytes;
}

/// Handle adapter for the fused batch body: "the fresh model" is one entry
/// of the wholesale-shipped table.
struct TableHandle {
  engine::Broadcast<ModelTable> br;
  std::uint64_t index = 0;
  [[nodiscard]] const linalg::DenseVector& value() const {
    return br.value().models[index];
  }
};

}  // namespace

RunResult NaiveSagaSolver::run(engine::Cluster& cluster, const Workload& workload,
                               const SolverConfig& config) {
  const std::size_t dim = workload.dim();
  const std::size_t n = workload.n();
  const double service_ms =
      config.service_floor_ms > 0.0
          ? config.service_floor_ms
          : config.cost.task_service_ms(*workload.dataset, workload.num_partitions(),
                                        config.batch_fraction, /*saga_two_pass=*/true);

  const linalg::GradVectorConfig grad_cfg = detail::grad_config(workload, config);

  detail::reset_run_metrics(cluster.metrics());
  detail::begin_telemetry(cluster, config);

  const engine::Rdd<data::LabeledPoint> sampled =
      workload.points.sample(config.batch_fraction);
  // Worker-resident per-sample index into the model table (same partition-
  // affinity contract as core::SampleVersionTable).
  auto index_table =
      std::make_shared<core::SampleVersionTable>(n, detail::kNeverVisited);

  linalg::DenseVector w(dim);
  linalg::DenseVector alpha_bar(dim);
  ModelTable table;
  table.models.push_back(w);  // "store w in table" (Algorithm 3 line 2)

  metrics::TraceRecorder recorder(config.eval_every);
  recorder.reserve_for(config.updates);
  support::Stopwatch watch;
  recorder.snapshot(0, 0.0, w);

  auto comb = detail::grad_hist_comb();
  engine::BroadcastId previous_id = 0;
  for (std::uint64_t k = 0; k < config.updates; ++k) {
    // The expensive line: the ENTIRE table is a fresh broadcast value every
    // iteration, so every worker re-fetches O(k·d) bytes.
    engine::Broadcast<ModelTable> table_br =
        cluster.broadcast(table, payload_size_bytes(table));
    const std::uint64_t current_index = table.models.size() - 1;

    std::shared_ptr<const engine::TaskFn> fn;
    if (config.fused_kernels) {
      fn = detail::make_saga_batch_fn(
          workload.dataset, workload.partitions, workload.loss,
          TableHandle{table_br, current_index}, index_table, grad_cfg,
          config.batch_fraction,
          [table_br](engine::Version last,
                     const core::ShardSet* /*mask*/) -> const linalg::DenseVector& {
            return table_br.value().models[last];
          },
          /*set_version=*/current_index);
    } else {
      auto seq = [loss = workload.loss, table_br, index_table, grad_cfg,
                  current_index](GradHist acc, const data::LabeledPoint& p) {
        acc.grad.ensure(grad_cfg);
        acc.hist.ensure(grad_cfg);
        const ModelTable& models = table_br.value();
        const linalg::DenseVector& w_new = models.models[current_index];
        const double coeff_new =
            loss->derivative(p.features.dot(w_new.span()), p.label);
        p.features.axpy_into(coeff_new, acc.grad);

        const engine::Version last = index_table->get(p.index);
        if (last != detail::kNeverVisited) {
          const linalg::DenseVector& w_old = models.models[last];
          const double coeff_old =
              loss->derivative(p.features.dot(w_old.span()), p.label);
          p.features.axpy_into(coeff_old, acc.hist);
        }
        index_table->set(p.index, current_index);
        acc.count += 1;
        return acc;
      };
      fn = engine::make_aggregate_fn<data::LabeledPoint, GradHist>(
          sampled, GradHist{linalg::GradVector(grad_cfg), linalg::GradVector(grad_cfg)},
          std::move(seq));
    }

    engine::StageOptions stage;
    // seq = k+1 aligns batches with SagaSolver (the AsyncScheduler's round
    // counter starts at 1), so the two trajectories are directly comparable.
    stage.seq = k + 1;
    stage.model_version = k;
    stage.service_floor_ms = service_ms;
    stage.rng_seed = config.seed;
    const GradHist total = engine::aggregate_sync_fn(
        cluster, std::move(fn), workload.num_partitions(),
        GradHist{linalg::GradVector(grad_cfg), linalg::GradVector(grad_cfg)}, comb,
        stage);

    if (total.count > 0) {
      const double inv_b = 1.0 / static_cast<double>(total.count);
      linalg::DenseVector direction = alpha_bar;
      total.grad.scale_into(inv_b, direction.span());
      total.hist.scale_into(-inv_b, direction.span());
      linalg::axpy(-config.step(k), direction.span(), w.span());
      const double inv_n = 1.0 / static_cast<double>(n);
      total.grad.scale_into(inv_n, alpha_bar.span());
      total.hist.scale_into(-inv_n, alpha_bar.span());
    }
    table.models.push_back(w);  // "update table" (Algorithm 3 line 8)
    recorder.maybe_snapshot(k + 1, watch.elapsed_ms(), w);

    if (previous_id != 0) cluster.store().erase(previous_id);
    previous_id = table_br.id();
  }
  recorder.snapshot(config.updates, watch.elapsed_ms(), w);

  RunResult result;
  result.algorithm = "NaiveSAGA";
  result.wall_ms = watch.elapsed_ms();
  result.updates = config.updates;
  result.tasks = cluster.metrics().tasks_completed.load();
  result.final_w = w;
  detail::fill_run_stats(result, cluster.metrics());
  detail::finish_telemetry(result, cluster, config);
  result.trace = recorder.finalize([&](const linalg::DenseVector& model) {
    return full_objective(*workload.dataset, *workload.loss, model);
  });
  return result;
}

}  // namespace asyncml::optim
