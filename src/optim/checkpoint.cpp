#include "optim/checkpoint.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <new>
#include <vector>

#include "engine/payload.hpp"
#include "store/disk/blob_store.hpp"
#include "store/disk/manifest.hpp"
#include "store/store_config.hpp"
#include "transport/wire.hpp"

namespace asyncml::optim {

using support::Status;
using support::StatusCode;
using support::StatusOr;

namespace {

constexpr char kMagicV1[8] = {'A', 'M', 'L', 'C', 'K', 'P', 'T', '1'};
constexpr char kMagicV2[8] = {'A', 'M', 'L', 'C', 'K', 'P', 'T', '2'};
constexpr char kMagicV3[8] = {'A', 'M', 'L', 'C', 'K', 'P', 'T', '3'};

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
bool read_u32(std::istream& in, std::uint32_t& v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(&v), sizeof(v)));
}
bool read_u64(std::istream& in, std::uint64_t& v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(&v), sizeof(v)));
}

void write_name(std::ostream& out, const std::string& name) {
  write_u32(out, static_cast<std::uint32_t>(name.size()));
  out.write(name.data(), static_cast<std::streamsize>(name.size()));
}

void write_vector(std::ostream& out, const std::string& name,
                  const linalg::DenseVector& v) {
  write_name(out, name);
  write_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size_bytes()));
}

/// Bytes left between the stream position and end-of-file; the loader
/// validates every claimed length against this so a corrupted header can
/// never drive a multi-gigabyte allocation (the v1 loader crashed with
/// bad_alloc on exactly that input).
std::uint64_t bytes_remaining(std::istream& in) {
  const auto pos = in.tellg();
  if (pos < 0) return 0;
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(pos);
  return end > pos ? static_cast<std::uint64_t>(end - pos) : 0;
}

StatusOr<std::string> read_name(std::istream& in) {
  std::uint32_t name_len = 0;
  if (!read_u32(in, name_len) || name_len > 4096) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: bad name length");
  }
  std::string name(name_len, '\0');
  if (!in.read(name.data(), name_len)) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: truncated name");
  }
  return name;
}

StatusOr<std::pair<std::string, linalg::DenseVector>> read_vector(std::istream& in) {
  auto name = read_name(in);
  if (!name.is_ok()) return name.status();
  std::uint64_t dim = 0;
  if (!read_u64(in, dim) || dim > (1ULL << 32)) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: bad vector size");
  }
  if (dim * sizeof(double) > bytes_remaining(in)) {
    return Status(StatusCode::kInvalidArgument,
                  "checkpoint: vector length overruns file");
  }
  try {
    linalg::DenseVector v(dim);
    if (!in.read(reinterpret_cast<char*>(v.data()),
                 static_cast<std::streamsize>(v.size_bytes()))) {
      return Status(StatusCode::kInvalidArgument, "checkpoint: truncated vector data");
    }
    return std::make_pair(std::move(name).value(), std::move(v));
  } catch (const std::bad_alloc&) {
    return Status(StatusCode::kInternal, "checkpoint: vector allocation failed");
  }
}

Status read_vectors(std::istream& in, SolverCheckpoint& checkpoint) {
  std::uint32_t vectors = 0;
  if (!read_u32(in, vectors) || vectors == 0 || vectors > 10'000) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: bad vector count");
  }
  bool saw_model = false;
  for (std::uint32_t i = 0; i < vectors; ++i) {
    auto entry = read_vector(in);
    if (!entry.is_ok()) return entry.status();
    auto [name, vec] = std::move(entry).value();
    if (name == "model") {
      checkpoint.model = std::move(vec);
      saw_model = true;
    } else {
      checkpoint.aux.emplace(std::move(name), std::move(vec));
    }
  }
  if (!saw_model) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: missing model vector");
  }
  return Status::ok();
}

/// Materializes the dense vector stored under `digest`, or nullopt when the
/// blob is missing/corrupt (the blob store quarantines it) or holds a payload
/// of an unexpected kind.
std::optional<linalg::DenseVector> fetch_dense(store::disk::BlobStore& blobs,
                                               const support::Sha256Digest& digest) {
  auto bytes = blobs.get(digest);
  if (!bytes.is_ok()) return std::nullopt;
  auto payload = transport::decode_payload_envelope(bytes.value(),
                                                    /*opaque_source=*/nullptr);
  if (!payload.is_ok() || !payload.value().holds<linalg::DenseVector>()) {
    return std::nullopt;
  }
  return payload.value().get<linalg::DenseVector>();
}

/// v3 load: the stream holds only a pointer (store_dir + advisory index); the
/// actual state is replayed read-only from the tier's manifest and blobs —
/// deliberately *not* through DiskTier, which would open a second manifest
/// writer against a directory the resumed run is about to reopen.
StatusOr<SolverCheckpoint> load_checkpoint_v3(std::istream& in) {
  auto dir = read_name(in);
  if (!dir.is_ok()) return dir.status();
  const std::string store_dir = std::move(dir).value();
  std::uint64_t advisory_index = 0;
  if (!read_u64(in, advisory_index)) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: truncated v3 pointer");
  }

  const std::string manifest_path = store_dir + "/MANIFEST";
  std::ifstream mf(manifest_path, std::ios::binary);
  if (!mf) {
    return Status(StatusCode::kDataLoss,
                  "checkpoint: v3 store manifest missing: " + manifest_path);
  }
  const std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(mf)), std::istreambuf_iterator<char>());
  auto decoded = store::disk::decode_manifest(bytes);
  if (!decoded.is_ok()) return decoded.status();
  const store::disk::ManifestState state = std::move(decoded).value();
  if (state.checkpoints.empty()) {
    return Status(StatusCode::kDataLoss,
                  "checkpoint: no checkpoint records in " + manifest_path);
  }

  store::DiskTierConfig cfg;
  cfg.dir = store_dir;
  store::disk::BlobStore blobs(store_dir, cfg);
  if (Status s = blobs.init(); !s.is_ok()) return s;

  // Newest record first; a record with any unverifiable blob falls back to
  // the next older one — any intact checkpoint k resumes bit-exactly at k.
  for (auto it = state.checkpoints.rbegin(); it != state.checkpoints.rend(); ++it) {
    const store::disk::CheckpointRecord& rec = *it;
    std::optional<linalg::DenseVector> model = fetch_dense(blobs, rec.model_digest);
    if (!model.has_value()) continue;
    SolverCheckpoint cp;
    cp.update_index = rec.update_index;
    cp.model_version = rec.model_version;
    cp.round = rec.round;
    cp.model = std::move(*model);
    cp.store_dir = store_dir;
    for (const auto& [name, value] : rec.counters) cp.counters[name] = value;
    bool aux_ok = true;
    for (const auto& [name, digest] : rec.aux) {
      std::optional<linalg::DenseVector> vec = fetch_dense(blobs, digest);
      if (!vec.has_value()) {
        aux_ok = false;
        break;
      }
      cp.aux.emplace(name, std::move(*vec));
    }
    if (!aux_ok) continue;
    return cp;
  }
  return Status(StatusCode::kDataLoss,
                "checkpoint: every checkpoint record in " + manifest_path +
                    " has lost or corrupt blobs");
}

}  // namespace

Status save_checkpoint(const std::string& path, const SolverCheckpoint& checkpoint) {
  for (const auto& [name, vec] : checkpoint.aux) {
    (void)vec;
    if (name == "model") {
      return Status(StatusCode::kInvalidArgument,
                    "checkpoint: aux name 'model' is reserved");
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status(StatusCode::kInternal, "checkpoint: cannot create " + path);

  out.write(kMagicV2, sizeof(kMagicV2));
  write_u64(out, checkpoint.update_index);
  write_u64(out, checkpoint.model_version);
  write_u64(out, checkpoint.round);
  write_u32(out, static_cast<std::uint32_t>(checkpoint.counters.size()));
  for (const auto& [name, value] : checkpoint.counters) {
    write_name(out, name);
    write_u64(out, value);
  }
  write_u32(out, static_cast<std::uint32_t>(1 + checkpoint.aux.size()));
  write_vector(out, "model", checkpoint.model);
  for (const auto& [name, vec] : checkpoint.aux) {
    write_vector(out, name, vec);
  }
  if (!out) return Status(StatusCode::kInternal, "checkpoint: write failed");
  return Status::ok();
}

Status save_checkpoint_v3(const std::string& path, const std::string& store_dir,
                          std::uint64_t update_index) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status(StatusCode::kInternal, "checkpoint: cannot create " + tmp);
    out.write(kMagicV3, sizeof(kMagicV3));
    write_name(out, store_dir);
    write_u64(out, update_index);
    if (!out) return Status(StatusCode::kInternal, "checkpoint: write failed");
  }
  // Atomic pointer flip: a reader sees the old pointer or the new one, never
  // a torn file (the durable state both point into is append-only anyway).
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status(StatusCode::kInternal, "checkpoint: rename failed: " + ec.message());
  }
  return Status::ok();
}

StatusOr<SolverCheckpoint> load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status(StatusCode::kNotFound, "checkpoint: cannot open " + path);

  char magic[sizeof(kMagicV2)] = {};
  if (!in.read(magic, sizeof(magic))) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: bad magic");
  }
  if (std::memcmp(magic, kMagicV3, sizeof(kMagicV3)) == 0) {
    return load_checkpoint_v3(in);
  }
  const bool v2 = std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0;
  if (!v2 && std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: bad magic");
  }

  SolverCheckpoint checkpoint;
  if (!read_u64(in, checkpoint.update_index)) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: truncated header");
  }
  if (v2) {
    if (!read_u64(in, checkpoint.model_version) || !read_u64(in, checkpoint.round)) {
      return Status(StatusCode::kInvalidArgument, "checkpoint: truncated header");
    }
    std::uint32_t counters = 0;
    if (!read_u32(in, counters) || counters > 10'000) {
      return Status(StatusCode::kInvalidArgument, "checkpoint: bad counter count");
    }
    for (std::uint32_t i = 0; i < counters; ++i) {
      auto name = read_name(in);
      if (!name.is_ok()) return name.status();
      std::uint64_t value = 0;
      if (!read_u64(in, value)) {
        return Status(StatusCode::kInvalidArgument, "checkpoint: truncated counter");
      }
      checkpoint.counters.emplace(std::move(name).value(), value);
    }
  }
  const Status vectors = read_vectors(in, checkpoint);
  if (!vectors.is_ok()) return vectors;
  return checkpoint;
}

}  // namespace asyncml::optim
