#include "optim/checkpoint.hpp"

#include <cstring>
#include <fstream>

namespace asyncml::optim {

using support::Status;
using support::StatusCode;
using support::StatusOr;

namespace {

constexpr char kMagic[8] = {'A', 'M', 'L', 'C', 'K', 'P', 'T', '1'};

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
bool read_u32(std::istream& in, std::uint32_t& v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(&v), sizeof(v)));
}
bool read_u64(std::istream& in, std::uint64_t& v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(&v), sizeof(v)));
}

void write_vector(std::ostream& out, const std::string& name,
                  const linalg::DenseVector& v) {
  write_u32(out, static_cast<std::uint32_t>(name.size()));
  out.write(name.data(), static_cast<std::streamsize>(name.size()));
  write_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size_bytes()));
}

StatusOr<std::pair<std::string, linalg::DenseVector>> read_vector(std::istream& in) {
  std::uint32_t name_len = 0;
  if (!read_u32(in, name_len) || name_len > 4096) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: bad vector name length");
  }
  std::string name(name_len, '\0');
  if (!in.read(name.data(), name_len)) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: truncated name");
  }
  std::uint64_t dim = 0;
  if (!read_u64(in, dim) || dim > (1ULL << 32)) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: bad vector size");
  }
  linalg::DenseVector v(dim);
  if (!in.read(reinterpret_cast<char*>(v.data()),
               static_cast<std::streamsize>(v.size_bytes()))) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: truncated vector data");
  }
  return std::make_pair(std::move(name), std::move(v));
}

}  // namespace

Status save_checkpoint(const std::string& path, const SolverCheckpoint& checkpoint) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status(StatusCode::kInternal, "checkpoint: cannot create " + path);

  out.write(kMagic, sizeof(kMagic));
  write_u64(out, checkpoint.update_index);
  write_u32(out, static_cast<std::uint32_t>(1 + checkpoint.aux.size()));
  write_vector(out, "model", checkpoint.model);
  for (const auto& [name, vec] : checkpoint.aux) {
    if (name == "model") {
      return Status(StatusCode::kInvalidArgument,
                    "checkpoint: aux name 'model' is reserved");
    }
    write_vector(out, name, vec);
  }
  if (!out) return Status(StatusCode::kInternal, "checkpoint: write failed");
  return Status::ok();
}

StatusOr<SolverCheckpoint> load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status(StatusCode::kNotFound, "checkpoint: cannot open " + path);

  char magic[sizeof(kMagic)] = {};
  if (!in.read(magic, sizeof(magic)) || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: bad magic");
  }
  SolverCheckpoint checkpoint;
  if (!read_u64(in, checkpoint.update_index)) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: truncated header");
  }
  std::uint32_t vectors = 0;
  if (!read_u32(in, vectors) || vectors == 0 || vectors > 10'000) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: bad vector count");
  }
  bool saw_model = false;
  for (std::uint32_t i = 0; i < vectors; ++i) {
    auto entry = read_vector(in);
    if (!entry.is_ok()) return entry.status();
    auto [name, vec] = std::move(entry).value();
    if (name == "model") {
      checkpoint.model = std::move(vec);
      saw_model = true;
    } else {
      checkpoint.aux.emplace(std::move(name), std::move(vec));
    }
  }
  if (!saw_model) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: missing model vector");
  }
  return checkpoint;
}

}  // namespace asyncml::optim
