#include "optim/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <new>

namespace asyncml::optim {

using support::Status;
using support::StatusCode;
using support::StatusOr;

namespace {

constexpr char kMagicV1[8] = {'A', 'M', 'L', 'C', 'K', 'P', 'T', '1'};
constexpr char kMagicV2[8] = {'A', 'M', 'L', 'C', 'K', 'P', 'T', '2'};

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
bool read_u32(std::istream& in, std::uint32_t& v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(&v), sizeof(v)));
}
bool read_u64(std::istream& in, std::uint64_t& v) {
  return static_cast<bool>(in.read(reinterpret_cast<char*>(&v), sizeof(v)));
}

void write_name(std::ostream& out, const std::string& name) {
  write_u32(out, static_cast<std::uint32_t>(name.size()));
  out.write(name.data(), static_cast<std::streamsize>(name.size()));
}

void write_vector(std::ostream& out, const std::string& name,
                  const linalg::DenseVector& v) {
  write_name(out, name);
  write_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size_bytes()));
}

/// Bytes left between the stream position and end-of-file; the loader
/// validates every claimed length against this so a corrupted header can
/// never drive a multi-gigabyte allocation (the v1 loader crashed with
/// bad_alloc on exactly that input).
std::uint64_t bytes_remaining(std::istream& in) {
  const auto pos = in.tellg();
  if (pos < 0) return 0;
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(pos);
  return end > pos ? static_cast<std::uint64_t>(end - pos) : 0;
}

StatusOr<std::string> read_name(std::istream& in) {
  std::uint32_t name_len = 0;
  if (!read_u32(in, name_len) || name_len > 4096) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: bad name length");
  }
  std::string name(name_len, '\0');
  if (!in.read(name.data(), name_len)) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: truncated name");
  }
  return name;
}

StatusOr<std::pair<std::string, linalg::DenseVector>> read_vector(std::istream& in) {
  auto name = read_name(in);
  if (!name.is_ok()) return name.status();
  std::uint64_t dim = 0;
  if (!read_u64(in, dim) || dim > (1ULL << 32)) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: bad vector size");
  }
  if (dim * sizeof(double) > bytes_remaining(in)) {
    return Status(StatusCode::kInvalidArgument,
                  "checkpoint: vector length overruns file");
  }
  try {
    linalg::DenseVector v(dim);
    if (!in.read(reinterpret_cast<char*>(v.data()),
                 static_cast<std::streamsize>(v.size_bytes()))) {
      return Status(StatusCode::kInvalidArgument, "checkpoint: truncated vector data");
    }
    return std::make_pair(std::move(name).value(), std::move(v));
  } catch (const std::bad_alloc&) {
    return Status(StatusCode::kInternal, "checkpoint: vector allocation failed");
  }
}

Status read_vectors(std::istream& in, SolverCheckpoint& checkpoint) {
  std::uint32_t vectors = 0;
  if (!read_u32(in, vectors) || vectors == 0 || vectors > 10'000) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: bad vector count");
  }
  bool saw_model = false;
  for (std::uint32_t i = 0; i < vectors; ++i) {
    auto entry = read_vector(in);
    if (!entry.is_ok()) return entry.status();
    auto [name, vec] = std::move(entry).value();
    if (name == "model") {
      checkpoint.model = std::move(vec);
      saw_model = true;
    } else {
      checkpoint.aux.emplace(std::move(name), std::move(vec));
    }
  }
  if (!saw_model) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: missing model vector");
  }
  return Status::ok();
}

}  // namespace

Status save_checkpoint(const std::string& path, const SolverCheckpoint& checkpoint) {
  for (const auto& [name, vec] : checkpoint.aux) {
    (void)vec;
    if (name == "model") {
      return Status(StatusCode::kInvalidArgument,
                    "checkpoint: aux name 'model' is reserved");
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status(StatusCode::kInternal, "checkpoint: cannot create " + path);

  out.write(kMagicV2, sizeof(kMagicV2));
  write_u64(out, checkpoint.update_index);
  write_u64(out, checkpoint.model_version);
  write_u64(out, checkpoint.round);
  write_u32(out, static_cast<std::uint32_t>(checkpoint.counters.size()));
  for (const auto& [name, value] : checkpoint.counters) {
    write_name(out, name);
    write_u64(out, value);
  }
  write_u32(out, static_cast<std::uint32_t>(1 + checkpoint.aux.size()));
  write_vector(out, "model", checkpoint.model);
  for (const auto& [name, vec] : checkpoint.aux) {
    write_vector(out, name, vec);
  }
  if (!out) return Status(StatusCode::kInternal, "checkpoint: write failed");
  return Status::ok();
}

StatusOr<SolverCheckpoint> load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status(StatusCode::kNotFound, "checkpoint: cannot open " + path);

  char magic[sizeof(kMagicV2)] = {};
  if (!in.read(magic, sizeof(magic))) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: bad magic");
  }
  const bool v2 = std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0;
  if (!v2 && std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: bad magic");
  }

  SolverCheckpoint checkpoint;
  if (!read_u64(in, checkpoint.update_index)) {
    return Status(StatusCode::kInvalidArgument, "checkpoint: truncated header");
  }
  if (v2) {
    if (!read_u64(in, checkpoint.model_version) || !read_u64(in, checkpoint.round)) {
      return Status(StatusCode::kInvalidArgument, "checkpoint: truncated header");
    }
    std::uint32_t counters = 0;
    if (!read_u32(in, counters) || counters > 10'000) {
      return Status(StatusCode::kInvalidArgument, "checkpoint: bad counter count");
    }
    for (std::uint32_t i = 0; i < counters; ++i) {
      auto name = read_name(in);
      if (!name.is_ok()) return name.status();
      std::uint64_t value = 0;
      if (!read_u64(in, value)) {
        return Status(StatusCode::kInvalidArgument, "checkpoint: truncated counter");
      }
      checkpoint.counters.emplace(std::move(name).value(), value);
    }
  }
  const Status vectors = read_vectors(in, checkpoint);
  if (!vectors.is_ok()) return vectors;
  return checkpoint;
}

}  // namespace asyncml::optim
