#pragma once

// Synchronous mini-batch SGD — the paper's Algorithm 1 on the engine's BSP
// path (plain Spark semantics: broadcast w, map sampled gradients, blocking
// reduce, update).  One straggler stalls every iteration, which is exactly
// the behaviour Figures 3, 4 and 7 quantify.

#include "engine/cluster.hpp"
#include "optim/run_result.hpp"
#include "optim/solver_config.hpp"
#include "optim/workload.hpp"

namespace asyncml::optim {

class SgdSolver {
 public:
  [[nodiscard]] static RunResult run(engine::Cluster& cluster, const Workload& workload,
                                     const SolverConfig& config);
};

namespace detail {
/// Shared body of SgdSolver and MllibSgdSolver (`tree` selects treeAggregate).
[[nodiscard]] RunResult run_sync_sgd(engine::Cluster& cluster, const Workload& workload,
                                     const SolverConfig& config, bool tree,
                                     const char* algorithm_name);
}  // namespace detail

}  // namespace asyncml::optim
