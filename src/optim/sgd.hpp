#pragma once

// Synchronous mini-batch SGD — the paper's Algorithm 1 on the engine's BSP
// path (plain Spark semantics: broadcast w, map sampled gradients, blocking
// reduce, update).  One straggler stalls every iteration, which is exactly
// the behaviour Figures 3, 4 and 7 quantify.

#include "engine/cluster.hpp"
#include "optim/run_result.hpp"
#include "optim/solver_config.hpp"
#include "optim/workload.hpp"

namespace asyncml::optim {

class SgdSolver {
 public:
  [[nodiscard]] static RunResult run(engine::Cluster& cluster, const Workload& workload,
                                     const SolverConfig& config);
};

/// Synchronous SGD dispatched through the ASYNCscheduler instead of the
/// engine's fixed-placement BSP stage: each iteration is a dispatch_all +
/// collect-all round, so the dynamic-placement machinery applies — work
/// stealing rebalances partition ownership away from stragglers and
/// speculative replication re-runs overdue tasks on fast workers
/// (SolverConfig::steal_mode / speculation_factor; docs/SCHEDULING.md).
///
/// The math is unchanged from SgdSolver, and results are combined in
/// partition order, so the trajectory is bit-identical across placements:
/// steal on/off and speculation on/off produce the same iterates, only the
/// wall clock moves. With both knobs off this is the classic fixed-placement
/// barrier-wait SGD of Figure 4.
class ScheduledSgdSolver {
 public:
  [[nodiscard]] static RunResult run(engine::Cluster& cluster, const Workload& workload,
                                     const SolverConfig& config);
};

namespace detail {
/// Shared body of SgdSolver and MllibSgdSolver (`tree` selects treeAggregate).
[[nodiscard]] RunResult run_sync_sgd(engine::Cluster& cluster, const Workload& workload,
                                     const SolverConfig& config, bool tree,
                                     const char* algorithm_name);
}  // namespace detail

}  // namespace asyncml::optim
