#pragma once

// Asynchronous consensus ADMM (after Zhang & Kwok [70], which the paper's
// related work names as an asynchrony-extended distributed method ASYNC can
// host).
//
// Global consensus form: minimize Σ_p f_p(x_p) s.t. x_p = z, solved with one
// local model x_p and dual u_p per *partition* and a server-side consensus
// variable z:
//
//   x_p ← argmin_x f_p(x) + (ρ/2)‖x − z + u_p‖²   (worker task, local solve)
//   u_p ← u_p + x_p − z                            (worker-local dual update)
//   z   ← mean over partitions of (x_p + u_p)      (server, incremental)
//
// Asynchrony: the server refreshes z and re-dispatches as each partition's
// (x_p + u_p) arrives — partial barrier instead of the classic full
// synchronization, exactly the async-ADMM execution model.  The local
// argmin is approximated by `local_gd_steps` gradient steps on the
// ρ-regularized subproblem (standard inexact-ADMM practice).
//
// Demonstrates that the ASYNC abstractions (history broadcast for z,
// worker-resident state for x_p/u_p via the same partition-affinity contract
// as the SAGA tables) cover primal-dual methods beyond SGD-style updates.

#include "engine/cluster.hpp"
#include "optim/run_result.hpp"
#include "optim/solver_config.hpp"
#include "optim/workload.hpp"

namespace asyncml::optim {

struct AdmmConfig {
  /// Server updates budget (collected partition results).
  std::uint64_t updates = 200;
  /// Augmented-Lagrangian penalty ρ.
  double rho = 1.0;
  /// Gradient steps approximating the local argmin.
  int local_gd_steps = 10;
  /// Step size for the local gradient steps; 0 ⇒ 1/(L_local + ρ) estimate.
  double local_step = 0.0;
  double service_floor_ms = 0.0;
  CostModel cost;
  std::uint64_t eval_every = 5;
  std::uint64_t seed = 1;
  core::BarrierControl barrier = core::barriers::asp();
  /// Span-based telemetry (docs/TELEMETRY.md); same semantics as
  /// SolverConfig::telemetry.
  telemetry::TelemetryConfig telemetry;
};

class AsyncAdmmSolver {
 public:
  [[nodiscard]] static RunResult run(engine::Cluster& cluster, const Workload& workload,
                                     const AdmmConfig& config);
};

}  // namespace asyncml::optim
