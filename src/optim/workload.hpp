#pragma once

// Workload bundle and cost model shared by every solver.
//
// A Workload ties together the partitioned dataset, its points RDD, and the
// loss; the CostModel turns "how much data does one task touch" into the base
// service time the engine pads tasks to (DESIGN.md §1's execution/time
// model).

#include <memory>

#include "data/dataset.hpp"
#include "data/partition.hpp"
#include "engine/rdd.hpp"
#include "optim/loss.hpp"

namespace asyncml::optim {

struct Workload {
  data::DatasetPtr dataset;
  std::vector<data::RowRange> partitions;
  engine::Rdd<data::LabeledPoint> points;
  std::shared_ptr<const Loss> loss;

  [[nodiscard]] std::size_t n() const { return dataset->rows(); }
  [[nodiscard]] std::size_t dim() const { return dataset->cols(); }
  [[nodiscard]] int num_partitions() const {
    return static_cast<int>(partitions.size());
  }

  /// Modeled resident bytes of each partition (row share of the dataset's
  /// feature bytes): the one-time cost of migrating a partition to a new
  /// owner, fed to the scheduler as SchedulerPolicy::partition_bytes.
  [[nodiscard]] std::vector<std::size_t> partition_bytes() const;

  /// Partitions `dataset` into `num_partitions` contiguous ranges and builds
  /// the points RDD over them.
  [[nodiscard]] static Workload create(data::DatasetPtr dataset, int num_partitions,
                                       std::shared_ptr<const Loss> loss);
};

/// Converts per-task data volume into a base service time. Calibrated so the
/// paper's datasets (scaled 1/1000) give a few milliseconds per task: large
/// enough for straggler multipliers to dominate scheduling, small enough that
/// a full figure reproduces in seconds.
struct CostModel {
  /// Milliseconds of service per megabyte of partition data touched.
  double ms_per_mb = 16.0;
  /// Floor so tiny batches still cost a schedulable quantum. Kept well above
  /// the emulation host's per-stage scheduling noise (~1ms on a busy 2-core
  /// box) so that modeled service, not host jitter, dominates timings.
  double min_service_ms = 2.0;
  /// Extra factor for algorithms that do two gradient passes per sample
  /// (SAGA's new + historical gradients).
  double saga_pass_factor = 1.6;

  [[nodiscard]] double task_service_ms(const data::Dataset& dataset, int num_partitions,
                                       double batch_fraction,
                                       bool saga_two_pass = false) const {
    const double bytes_per_partition =
        static_cast<double>(dataset.feature_bytes()) / std::max(1, num_partitions);
    const double mb = bytes_per_partition * batch_fraction / (1024.0 * 1024.0);
    const double base = ms_per_mb * mb * (saga_two_pass ? saga_pass_factor : 1.0);
    return std::max(min_service_ms, base);
  }
};

}  // namespace asyncml::optim
