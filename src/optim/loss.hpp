#pragma once

// Point losses of the form ℓ(margin, label) with margin = <x, w>.
//
// Every loss the empirical-risk problems of the paper's §2 cover (least
// squares, logistic regression, smooth hinge) factors through the margin, so
// a per-sample gradient is always `derivative(margin, y) · x` and solvers
// stay loss-agnostic.  The paper's evaluation solves least squares; the other
// losses demonstrate the claimed generality of the framework.

#include <memory>
#include <string>

namespace asyncml::optim {

class Loss {
 public:
  virtual ~Loss() = default;

  /// ℓ(margin, label).
  [[nodiscard]] virtual double value(double margin, double label) const = 0;

  /// ∂ℓ/∂margin — the per-sample gradient is derivative(m, y) · x.
  [[nodiscard]] virtual double derivative(double margin, double label) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// ℓ = (margin − y)²; the paper's equation (3) (no ½ factor, matching (4)).
class LeastSquaresLoss final : public Loss {
 public:
  [[nodiscard]] double value(double margin, double label) const override;
  [[nodiscard]] double derivative(double margin, double label) const override;
  [[nodiscard]] std::string name() const override { return "least_squares"; }
};

/// ℓ = log(1 + exp(−y·margin)) for labels in {−1, +1}.
class LogisticLoss final : public Loss {
 public:
  [[nodiscard]] double value(double margin, double label) const override;
  [[nodiscard]] double derivative(double margin, double label) const override;
  [[nodiscard]] std::string name() const override { return "logistic"; }
};

/// Smoothed (squared) hinge: ℓ = max(0, 1 − y·margin)²; an SVM-style loss
/// that stays differentiable so the same solvers apply.
class SquaredHingeLoss final : public Loss {
 public:
  [[nodiscard]] double value(double margin, double label) const override;
  [[nodiscard]] double derivative(double margin, double label) const override;
  [[nodiscard]] std::string name() const override { return "squared_hinge"; }
};

[[nodiscard]] std::shared_ptr<const Loss> make_least_squares();
[[nodiscard]] std::shared_ptr<const Loss> make_logistic();
[[nodiscard]] std::shared_ptr<const Loss> make_squared_hinge();

}  // namespace asyncml::optim
