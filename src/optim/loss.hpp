#pragma once

// Point losses of the form ℓ(margin, label) with margin = <x, w>.
//
// Every loss the empirical-risk problems of the paper's §2 cover (least
// squares, logistic regression, smooth hinge) factors through the margin, so
// a per-sample gradient is always `derivative(margin, y) · x` and solvers
// stay loss-agnostic.  The paper's evaluation solves least squares; the other
// losses demonstrate the claimed generality of the framework.

#include <cmath>
#include <memory>
#include <span>
#include <string>

namespace asyncml::optim {

/// Concrete loss identity for devirtualized batch dispatch: the fused
/// gradient kernels switch on the kind once per mini-batch instead of
/// making a virtual derivative call per row. kCustom falls back to the
/// virtual path (external Loss subclasses keep working, just per-row).
enum class LossKind {
  kLeastSquares,
  kLogistic,
  kSquaredHinge,
  kCustom,
};

/// Scalar loss kernels — the single source of truth for the arithmetic.
/// Both the virtual per-row methods and the vectorized batch loops call
/// these, so the two paths are bit-identical by construction.
namespace loss_kernels {

[[nodiscard]] inline double least_squares_derivative(double margin,
                                                     double label) noexcept {
  return 2.0 * (margin - label);
}

[[nodiscard]] inline double logistic_derivative(double margin, double label) noexcept {
  const double z = -label * margin;
  // σ(z) = 1/(1+e^{-z}); derivative = −y·σ(−y·m).
  const double sigma = z >= 0.0 ? 1.0 / (1.0 + std::exp(-z))
                                : std::exp(z) / (1.0 + std::exp(z));
  return -label * sigma;
}

[[nodiscard]] inline double squared_hinge_derivative(double margin,
                                                     double label) noexcept {
  const double gap = 1.0 - label * margin;
  return gap > 0.0 ? -2.0 * label * gap : 0.0;
}

}  // namespace loss_kernels

class Loss {
 public:
  virtual ~Loss() = default;

  /// ℓ(margin, label).
  [[nodiscard]] virtual double value(double margin, double label) const = 0;

  /// ∂ℓ/∂margin — the per-sample gradient is derivative(m, y) · x.
  [[nodiscard]] virtual double derivative(double margin, double label) const = 0;

  /// Which devirtualized batch kernel applies (kCustom = none; the batch
  /// path then loops the virtual derivative).
  [[nodiscard]] virtual LossKind kind() const { return LossKind::kCustom; }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// coeffs[i] = loss.derivative(margins[i], labels[i]) — the vectorized,
/// loss-kind-dispatched derivative kernel of the fused gradient pipeline.
/// One switch per batch; each element's arithmetic is the scalar kernel's,
/// so results bit-match the per-row virtual calls.
void derivative_batch(const Loss& loss, std::span<const double> margins,
                      std::span<const double> labels, std::span<double> coeffs);

/// ℓ = (margin − y)²; the paper's equation (3) (no ½ factor, matching (4)).
class LeastSquaresLoss final : public Loss {
 public:
  [[nodiscard]] double value(double margin, double label) const override;
  [[nodiscard]] double derivative(double margin, double label) const override;
  [[nodiscard]] LossKind kind() const override { return LossKind::kLeastSquares; }
  [[nodiscard]] std::string name() const override { return "least_squares"; }
};

/// ℓ = log(1 + exp(−y·margin)) for labels in {−1, +1}.
class LogisticLoss final : public Loss {
 public:
  [[nodiscard]] double value(double margin, double label) const override;
  [[nodiscard]] double derivative(double margin, double label) const override;
  [[nodiscard]] LossKind kind() const override { return LossKind::kLogistic; }
  [[nodiscard]] std::string name() const override { return "logistic"; }
};

/// Smoothed (squared) hinge: ℓ = max(0, 1 − y·margin)²; an SVM-style loss
/// that stays differentiable so the same solvers apply.
class SquaredHingeLoss final : public Loss {
 public:
  [[nodiscard]] double value(double margin, double label) const override;
  [[nodiscard]] double derivative(double margin, double label) const override;
  [[nodiscard]] LossKind kind() const override { return LossKind::kSquaredHinge; }
  [[nodiscard]] std::string name() const override { return "squared_hinge"; }
};

[[nodiscard]] std::shared_ptr<const Loss> make_least_squares();
[[nodiscard]] std::shared_ptr<const Loss> make_logistic();
[[nodiscard]] std::shared_ptr<const Loss> make_squared_hinge();

}  // namespace asyncml::optim
