#pragma once

// Step-size schedules (paper §2 "hyperparameter selection").
//
// A schedule maps the update index k (0-based) to a learning rate.  The
// paper's setups:
//   * MLlib SGD: initial step decayed by 1/√t  → inv_sqrt(a)
//   * generic decaying SGD: a / (b + c·k)      → inverse_decay(a, b, c)
//   * SAGA/ASAGA: fixed step                   → constant(a)
// Staleness-dependent modulation (Listing 1) is applied by the asynchronous
// solvers on top of the schedule, because it needs the per-result staleness
// attribute the coordinator provides.

#include <cstdint>
#include <functional>

namespace asyncml::optim {

using StepSchedule = std::function<double(std::uint64_t update)>;

[[nodiscard]] StepSchedule constant_step(double a);

/// a / (b + c·k).
[[nodiscard]] StepSchedule inverse_decay_step(double a, double b, double c);

/// a / √(k + 1) — MLlib's GradientDescent decay.
[[nodiscard]] StepSchedule inv_sqrt_step(double a);

}  // namespace asyncml::optim
