#pragma once

// Shared solver configuration.
//
// One struct covers all solvers; fields irrelevant to a given algorithm are
// ignored (documented per field).  Defaults reproduce the paper's §6.1
// parameter-tuning choices at our scale.

#include <cstdint>
#include <optional>
#include <string>

#include "core/barrier.hpp"
#include "core/scheduler.hpp"
#include "core/shard_route.hpp"
#include "linalg/grad_vector.hpp"
#include "optim/step_size.hpp"
#include "optim/workload.hpp"
#include "store/store_config.hpp"
#include "telemetry/telemetry.hpp"

namespace asyncml::optim {

struct SolverConfig {
  /// Model-update budget. Synchronous solvers: iterations. Asynchronous
  /// solvers: collected task results (each is one update).
  std::uint64_t updates = 200;

  /// Mini-batch sampling rate b (fraction of each partition per task).
  double batch_fraction = 0.1;

  /// Learning-rate schedule (sync solvers use it directly; async solvers
  /// scale it by async_step_scale).
  StepSchedule step = constant_step(0.05);

  /// Async step heuristic (§6.1): async step = sync step / num_workers.
  /// nullopt → 1/num_workers; 1.0 → no scaling.
  std::optional<double> async_step_scale;

  /// Staleness-dependent learning-rate modulation (paper Listing 1):
  /// lr ← lr / (1 + staleness). Only read by asynchronous solvers.
  bool staleness_adaptive_lr = false;

  /// Barrier control for asynchronous dispatch (default ASP). Only read by
  /// asynchronous solvers.
  core::BarrierControl barrier = core::barriers::asp();

  /// Base service time per task in ms; 0 → derive from `cost`.
  double service_floor_ms = 0.0;
  CostModel cost;

  /// Dynamic partition placement (docs/SCHEDULING.md): kLocality lets a
  /// worker with free capacity and no idle owned partition claim an idle
  /// partition from the most-backlogged peer, paying a one-time modeled
  /// migration cost; ownership transfers so later rounds are local. Read by
  /// every solver that schedules through the AsyncContext.
  core::StealMode steal_mode = core::StealMode::kOff;

  /// Speculative task replication: re-dispatch a task whose in-flight age
  /// exceeds `speculation_factor` × the cluster-median EWMA service time to
  /// a fast worker (first result wins, duplicates dropped — replicas of the
  /// same (seed, partition, seq) are bit-identical). <= 0 disables; 2.0 is
  /// a good starting point (docs/SCHEDULING.md).
  double speculation_factor = 0.0;

  /// Lost-task rescue horizon (SchedulerPolicy::lost_task_factor,
  /// docs/FAULTS.md): a task in flight longer than `lost_task_factor` × the
  /// cluster-median EWMA service time is presumed lost (dropped result,
  /// crashed holder) — its registration is written off and a fresh replica
  /// dispatched. <= 0 (default) disables. Only safe for solvers whose task
  /// bodies are re-entrant (plain gradient sums; NOT SAGA's version-table
  /// tasks); 6.0 is a sane horizon for chaos runs.
  double lost_task_factor = 0.0;

  // -- checkpoint / restore (optim/checkpoint.hpp, docs/FAULTS.md) -----------

  /// Snapshot the solver state (model, version, round, STAT totals, solver
  /// aux vectors) to `checkpoint_path` every `checkpoint_every` model
  /// updates. 0 (default) = never. Read by the checkpoint-aware solvers
  /// (ScheduledSgd, Asgd, Saga).
  std::uint64_t checkpoint_every = 0;

  /// Snapshot destination; each snapshot overwrites the previous one.
  /// Required when checkpoint_every > 0.
  std::string checkpoint_path;

  /// Resume from this checkpoint before the first update: synchronous
  /// solvers continue bit-exactly (same trajectory as the uninterrupted
  /// run), asynchronous ones trajectory-equivalently. Empty = fresh start.
  /// A malformed file aborts loudly rather than silently restarting.
  std::string resume_from;

  /// Snapshot the model every `eval_every` updates for the trace.
  std::uint64_t eval_every = 5;

  /// Experiment seed (drives mini-batch sampling).
  std::uint64_t seed = 1;

  /// Epoch-based variance reduction (EpochVrSolver only): inner updates per
  /// epoch; `updates` then counts total inner updates across epochs.
  std::uint64_t epoch_inner_updates = 50;

  /// Fused batch gradient kernels (optim/grad_batch.hpp): one-pass margins
  /// (gemv / row-slice spmv), loss-kind-dispatched batch derivative, and a
  /// transposed accumulate with per-thread scratch reuse. Off = the per-row
  /// seq-op pipeline streaming through the RDD sink chain. The two paths
  /// are bit-identical by construction (the property sweep pins it), so
  /// this is purely a compute-speed switch; off exists for reference
  /// benchmarking and differential tests.
  bool fused_kernels = true;

  /// Gradient accumulation representation. kAuto reads the workload's
  /// dataset density (or `density_hint`) and starts sparse for sparse
  /// datasets, so task results ship O(batch-support) bytes instead of dim×8.
  linalg::GradMode grad_mode = linalg::GradMode::kAuto;

  /// nnz/dim ratio at which sparse gradient accumulators densify.
  double grad_densify_threshold = linalg::kDefaultDensifyThreshold;

  /// Overrides the dataset density the kAuto choice reads; nullopt → the
  /// solver propagates workload.dataset->density().
  std::optional<double> density_hint;

  /// Delta-versioned model store behind ASYNCbroadcast: delta vs
  /// full-snapshot publishing, base-snapshot cadence, densify cutoff — and
  /// the shard count of the sharded model plane (store_config.num_shards,
  /// docs/SHARDING.md). Only read by solvers publishing through the
  /// AsyncContext.
  store::StoreConfig store_config;

  /// How synchronous rounds fold their per-partition gradients
  /// (docs/SHARDING.md): kDriver is the flat partition-ordered driver fold
  /// (the historical reference trajectory); kTree runs log-depth combine
  /// tasks through the async path (core/shard_route.hpp) — per-shard trees
  /// on a sharded plane. Each mode is bit-identical across shard counts and
  /// placements, but the two modes are distinct FP association orders, so
  /// switching changes the trajectory like changing the seed would. Read by
  /// the synchronous engine-path solvers (ScheduledSgd).
  core::CombineMode combine_mode = core::CombineMode::kDriver;

  /// Combine fan-in per tree task (kTree only; clamped to ≥ 2).
  int combine_fanout = 4;

  /// Span-based telemetry (docs/TELEMETRY.md): per-task pipeline segments
  /// recorded into lock-free per-thread rings, harvested every
  /// `telemetry.harvest_every` processed results, surfaced as
  /// RunResult::telemetry (+ optional JSON export). Off by default — the
  /// disabled path is bit-and-timing-identical to not having the subsystem.
  /// Read by the engine-path solvers (sgd/asgd/saga/asaga/naive_saga/
  /// mllib_sgd/epoch_vr).
  telemetry::TelemetryConfig telemetry;

  /// Model-history GC cadence: every `gc_every` updates the async solvers
  /// compact delta chains below the STAT minimum in-flight version
  /// (AsyncContext::gc_history). 0 disables GC (history grows unboundedly —
  /// only sensible for short diagnostic runs).
  std::uint64_t gc_every = 64;

  /// Concrete per-run representation (solvers call this via
  /// detail::grad_config with the workload's dim/density).  The kAuto choice
  /// is driven by the expected support of one task's batch gradient — the
  /// union of `expected_batch_rows` rows — not the raw per-cell density: a
  /// mid-density dataset saturates a large batch and should start dense.
  [[nodiscard]] linalg::GradVectorConfig grad_config(
      std::size_t dim, double dataset_density,
      double expected_batch_rows = 1.0) const {
    const double cell_density = density_hint.value_or(dataset_density);
    return linalg::resolve_grad_config(
        grad_mode, dim,
        linalg::expected_union_density(cell_density, expected_batch_rows),
        grad_densify_threshold);
  }
};

}  // namespace asyncml::optim
