#pragma once

// MLlib-style synchronous SGD — the baseline of the paper's Figure 2.
//
// Matches MLlib's GradientDescent: mini-batch sampling, treeAggregate
// reduction (log-depth combine stages on workers), and the 1/√t step decay.
// The paper shows ASYNC's synchronous SGD matches this implementation; our
// Figure-2 bench reproduces that parity check.

#include "engine/cluster.hpp"
#include "optim/run_result.hpp"
#include "optim/solver_config.hpp"
#include "optim/workload.hpp"

namespace asyncml::optim {

class MllibSgdSolver {
 public:
  /// Note: callers should pass an inv_sqrt_step schedule to match MLlib's
  /// decay (the solver does not override config.step).
  [[nodiscard]] static RunResult run(engine::Cluster& cluster, const Workload& workload,
                                     const SolverConfig& config);
};

}  // namespace asyncml::optim
