#include "optim/saga.hpp"

#include "core/async_context.hpp"
#include "metrics/trace.hpp"
#include "optim/objective.hpp"
#include "optim/solver_util.hpp"
#include "support/stopwatch.hpp"

namespace asyncml::optim {

RunResult SagaSolver::run(engine::Cluster& cluster, const Workload& workload,
                          const SolverConfig& config) {
  const std::size_t dim = workload.dim();
  const std::size_t n = workload.n();
  const double service_ms =
      config.service_floor_ms > 0.0
          ? config.service_floor_ms
          : config.cost.task_service_ms(*workload.dataset, workload.num_partitions(),
                                        config.batch_fraction, /*saga_two_pass=*/true);

  const linalg::GradVectorConfig grad_cfg = detail::grad_config(workload, config);
  // Per-partition shard-support sets (sparse workloads on a sharded plane).
  const auto support_table = detail::shard_support_table(workload, config);

  detail::reset_run_metrics(cluster.metrics());
  detail::begin_telemetry(cluster, config);

  core::AsyncContext ac(cluster, workload.num_partitions(), config.store_config);
  // History-writing tasks (SampleVersionTable updates) are not idempotent
  // under racing replicas, so speculation is forced off regardless of the
  // config knob; stealing never duplicates execution and stays available
  // (docs/SCHEDULING.md, "Composition caveats").
  core::SchedulerPolicy policy = detail::scheduler_policy(workload, config);
  policy.speculation_factor = 0.0;
  policy.lost_task_factor = 0.0;  // rescue re-executes tasks: same hazard
  ac.scheduler().set_policy(std::move(policy));
  auto table =
      std::make_shared<core::SampleVersionTable>(n, detail::kNeverVisited);

  core::SubmitOptions opts;
  opts.service_floor_ms = service_ms;
  opts.rng_seed = config.seed;

  linalg::DenseVector w(dim);
  linalg::DenseVector alpha_bar(dim);  // ᾱ — "averageHistory" of Algorithm 3
  std::uint64_t k0 = 0;
  if (auto cp = detail::maybe_resume(config); cp.has_value()) {
    // SAGA resumes the *model* and the version/round streams, but restarts
    // ᾱ and the version table cold: the table's entries reference published
    // history the restarted process no longer holds, and restoring ᾱ
    // without them would bias every correction term. A cold table is just
    // plain SAGA warm-started at w — unbiased, converging from a better
    // iterate. The checkpoint still carries "alpha_bar" for inspection.
    w = std::move(cp->model);
    k0 = cp->update_index;
    ac.restore(cp->model_version, cp->round);
  }
  core::HistoryBroadcast w_br = ac.async_broadcast(w);

  metrics::TraceRecorder recorder(config.eval_every);
  recorder.reserve_for(config.updates);
  support::Stopwatch watch;
  recorder.snapshot(k0, 0.0, w);

  auto comb = detail::grad_hist_comb();
  for (std::uint64_t k = k0; k < config.updates; ++k) {
    std::vector<core::TaggedResult> results = ac.sync_round_fn(
        detail::saga_task_fn(workload, config, w_br, table, grad_cfg,
                             config.batch_fraction, support_table),
        opts);

    GradHist total;
    for (core::TaggedResult& r : results) {
      total = comb(std::move(total), r.result.payload.get<GradHist>());
    }
    if (total.count > 0) {
      const double inv_b = 1.0 / static_cast<double>(total.count);
      // w ← w − α (ĝ_new − ĝ_old + ᾱ)
      linalg::DenseVector direction = alpha_bar;
      total.grad.scale_into(inv_b, direction.span());
      total.hist.scale_into(-inv_b, direction.span());
      linalg::axpy(-config.step(k), direction.span(), w.span());
      // ᾱ ← ᾱ + (1/n) Σ_B (∇f_j − α_j)
      const double inv_n = 1.0 / static_cast<double>(n);
      total.grad.scale_into(inv_n, alpha_bar.span());
      total.hist.scale_into(-inv_n, alpha_bar.span());
    }
    ac.advance_version();
    w_br = ac.async_broadcast(w);
    recorder.maybe_snapshot(k + 1, watch.elapsed_ms(), w);
    detail::maybe_gc_history(ac, config, k + 1, table->min_version());
    detail::maybe_checkpoint(config, ac, w, k + 1, {{"alpha_bar", alpha_bar}});
  }
  recorder.snapshot(config.updates, watch.elapsed_ms(), w);

  RunResult result;
  result.algorithm = "SAGA";
  result.wall_ms = watch.elapsed_ms();
  result.updates = config.updates;
  result.tasks = cluster.metrics().tasks_completed.load();
  result.final_w = w;
  detail::fill_run_stats(result, cluster.metrics());
  detail::finish_telemetry(result, cluster, config);
  result.trace = recorder.finalize([&](const linalg::DenseVector& model) {
    return full_objective(*workload.dataset, *workload.loss, model);
  });
  return result;
}

}  // namespace asyncml::optim
