#pragma once

// Lock-free per-executor-thread trace ring with drop-OLDEST overwrite.
//
// support::SpscRing rejects pushes when full (the newest record would be the
// one lost), which is the wrong policy for telemetry: under saturation the
// interesting records are the most recent ones, and the producer must never
// block or branch on the consumer. TraceRing therefore always overwrites —
// a producer lap simply claims the oldest unharvested slots — and the
// harvest cycle counts what it lost.
//
// Concurrency model: a single producer (the owning executor thread) and a
// single logical consumer (harvests are serialized by TelemetryRecorder's
// harvest mutex). Every slot word is a relaxed std::atomic so concurrent
// record/harvest is data-race-free under TSan; per-slot sequence numbers
// (seqlock style, validated around the copy) discard records the producer
// overwrote mid-read instead of surfacing torn traces.

#include <atomic>
#include <cstdint>
#include <memory>

#include "telemetry/telemetry.hpp"

namespace asyncml::telemetry {

/// TaskTrace packed as ring words: ids in 3 words, one word per stage.
inline constexpr std::size_t kTraceWords = 3 + kNumStages;

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
  }

  /// Producer side: always succeeds, overwriting the oldest record when the
  /// consumer has fallen a full lap behind. Single-threaded per ring.
  void push(const TaskTrace& trace) {
    const std::uint64_t index = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[index & mask_];
    // Odd sequence marks the slot in-flight; readers that observe it (or a
    // different write index) drop the record rather than report torn data.
    slot.seq.store(2 * index + 1, std::memory_order_relaxed);
    std::uint64_t words[kTraceWords];
    pack(trace, words);
    for (std::size_t w = 0; w < kTraceWords; ++w) {
      slot.words[w].store(words[w], std::memory_order_relaxed);
    }
    slot.seq.store(2 * index + 2, std::memory_order_release);
    head_.store(index + 1, std::memory_order_release);
  }

  struct DrainStats {
    std::size_t drained = 0;    ///< records delivered to the callback
    std::uint64_t dropped = 0;  ///< records overwritten before harvest
  };

  /// Consumer side: deliver every record published since the previous drain,
  /// oldest first. Callers must serialize drains externally (the recorder's
  /// harvest mutex does).
  template <typename Fn>
  DrainStats drain(Fn&& fn) {
    DrainStats stats;
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t start = next_;
    if (head > capacity_ && head - capacity_ > start) {
      // The producer lapped us: everything below head - capacity is gone.
      stats.dropped += (head - capacity_) - start;
      start = head - capacity_;
    }
    for (std::uint64_t i = start; i < head; ++i) {
      Slot& slot = slots_[i & mask_];
      const std::uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
      if (seq_before != 2 * i + 2) {
        stats.dropped += 1;  // overwritten (or in-flight) after the head read
        continue;
      }
      std::uint64_t words[kTraceWords];
      for (std::size_t w = 0; w < kTraceWords; ++w) {
        words[w] = slot.words[w].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != seq_before) {
        stats.dropped += 1;  // producer lapped into the slot mid-copy
        continue;
      }
      fn(unpack(words));
      stats.drained += 1;
    }
    next_ = head;
    return stats;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t pushed() const {
    return head_.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> words[kTraceWords]{};
  };

  static void pack(const TaskTrace& trace, std::uint64_t* words) {
    words[0] =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(trace.worker))
         << 32) |
        static_cast<std::uint32_t>(trace.partition);
    words[1] = trace.seq;
    words[2] = trace.model_version;
    for (std::size_t s = 0; s < kNumStages; ++s) {
      words[3 + s] = trace.stage_ns[s];
    }
  }

  static TaskTrace unpack(const std::uint64_t* words) {
    TaskTrace trace;
    trace.worker = static_cast<std::int32_t>(words[0] >> 32);
    trace.partition =
        static_cast<std::int32_t>(static_cast<std::uint32_t>(words[0]));
    trace.seq = words[1];
    trace.model_version = words[2];
    for (std::size_t s = 0; s < kNumStages; ++s) {
      trace.stage_ns[s] = words[3 + s];
    }
    return trace;
  }

  std::size_t capacity_ = 0;
  std::uint64_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::uint64_t next_ = 0;  ///< consumer cursor, guarded by the harvest mutex
};

}  // namespace asyncml::telemetry
