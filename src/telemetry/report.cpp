#include "telemetry/report.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace asyncml::telemetry {

namespace {

StageSummary summarize(const std::string& name, const support::Histogram& h,
                       double total_sum) {
  StageSummary s;
  s.name = name;
  s.count = h.count();
  s.sum_ns = h.mean_ns() * static_cast<double>(h.count());
  s.mean_ns = h.mean_ns();
  s.p50_ns = h.quantile_ns(0.5);
  s.p99_ns = h.quantile_ns(0.99);
  s.max_ns = h.max_ns();
  s.share = total_sum > 0.0 ? s.sum_ns / total_sum : 0.0;
  s.hist = h;
  return s;
}

void append_summary(std::ostringstream& os, const StageSummary& s,
                    bool with_hist) {
  os << "{\"count\":" << s.count << ",\"sum_ns\":" << s.sum_ns
     << ",\"mean_ns\":" << s.mean_ns << ",\"p50_ns\":" << s.p50_ns
     << ",\"p99_ns\":" << s.p99_ns << ",\"max_ns\":" << s.max_ns
     << ",\"share\":" << s.share;
  if (with_hist) os << ",\"hist\":" << s.hist.to_json();
  os << '}';
}

}  // namespace

TelemetryReport TelemetryReport::build(const TelemetryStore::Snapshot& snap) {
  TelemetryReport report;
  report.records = snap.records;
  report.dropped = snap.dropped;
  report.harvests = snap.harvests;
  report.updates = snap.updates;

  double total_sum = 0.0;
  for (const auto& h : snap.stages) {
    total_sum += h.mean_ns() * static_cast<double>(h.count());
  }
  report.stages.reserve(snap.stages.size());
  for (std::size_t s = 0; s < snap.stages.size(); ++s) {
    report.stages.push_back(summarize(stage_name(static_cast<Stage>(s)),
                                      snap.stages[s], total_sum));
  }
  report.staleness = summarize("staleness", snap.staleness, 0.0);

  report.workers.reserve(snap.workers.size());
  for (std::size_t w = 0; w < snap.workers.size(); ++w) {
    WorkerBreakdown breakdown;
    breakdown.worker = static_cast<int>(w);
    double worker_sum = 0.0;
    for (const auto& h : snap.workers[w]) {
      worker_sum += h.mean_ns() * static_cast<double>(h.count());
    }
    for (std::size_t s = 0; s < snap.workers[w].size(); ++s) {
      breakdown.stages.push_back(summarize(stage_name(static_cast<Stage>(s)),
                                           snap.workers[w][s], worker_sum));
    }
    report.workers.push_back(std::move(breakdown));
  }
  report.samples = snap.samples;
  return report;
}

std::string TelemetryReport::to_json() const {
  std::ostringstream os;
  os << "{\n  \"schema_version\": " << schema_version << ",\n  \"records\": "
     << records << ",\n  \"dropped\": " << dropped << ",\n  \"harvests\": "
     << harvests << ",\n  \"updates\": " << updates << ",\n  \"staleness\": ";
  append_summary(os, staleness, /*with_hist=*/true);
  os << ",\n  \"stages\": {";
  for (std::size_t s = 0; s < stages.size(); ++s) {
    if (s != 0) os << ',';
    os << "\n    \"" << stages[s].name << "\": ";
    append_summary(os, stages[s], /*with_hist=*/true);
  }
  os << "\n  },\n  \"workers\": [";
  for (std::size_t w = 0; w < workers.size(); ++w) {
    if (w != 0) os << ',';
    os << "\n    {\"worker\": " << workers[w].worker << ", \"stages\": {";
    for (std::size_t s = 0; s < workers[w].stages.size(); ++s) {
      if (s != 0) os << ',';
      os << '"' << workers[w].stages[s].name << "\":";
      append_summary(os, workers[w].stages[s], /*with_hist=*/false);
    }
    os << "}}";
  }
  os << "\n  ],\n  \"samples\": [";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const TaskTrace& t = samples[i];
    if (i != 0) os << ',';
    os << "\n    {\"worker\":" << t.worker << ",\"partition\":" << t.partition
       << ",\"seq\":" << t.seq << ",\"model_version\":" << t.model_version
       << ",\"stages\":{";
    for (std::size_t s = 0; s < kWorkerStages; ++s) {
      if (s != 0) os << ',';
      os << '"' << stage_name(static_cast<Stage>(s)) << "\":" << t.stage_ns[s];
    }
    os << "}}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

bool TelemetryReport::write_json(const std::string& path) const {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "telemetry: cannot write report to %s\n",
                 path.c_str());
    return false;
  }
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace asyncml::telemetry
