#pragma once

// Run-level aggregation target of the harvest cycle.
//
// Harvests drain the per-thread TraceRings into this store: per-stage
// histograms, per-(worker, stage) breakdowns, the per-update staleness
// histogram, and a seed-deterministic reservoir of whole-task span records
// (Algorithm R) that keeps a uniform sample once the run outgrows the
// reservoir. The store is mutex-protected — the lock-free requirement
// applies to worker-side recording, and harvests amortize the lock over
// whole ring batches off the timed solver path.

#include <cstdint>
#include <mutex>
#include <vector>

#include "support/histogram.hpp"
#include "support/rng.hpp"
#include "telemetry/telemetry.hpp"

namespace asyncml::telemetry {

class TelemetryStore {
 public:
  explicit TelemetryStore(std::size_t num_workers);

  /// Drops all aggregates and re-arms the reservoir for a new run.
  void reset(std::size_t reservoir_capacity, std::uint64_t sample_seed);

  /// Absorb one harvested task trace (worker-side stages + reservoir).
  void absorb(const TaskTrace& trace);

  /// Charge a driver-side stage observation (accumulate, broadcast-publish).
  void charge_driver(Stage stage, std::uint64_t ns);

  /// Model-version lag of one processed update (version at apply time minus
  /// the version the task read).
  void record_staleness(std::uint64_t staleness);

  void note_dropped(std::uint64_t n);
  void note_harvest();
  void note_update();

  /// Point-in-time copy of every aggregate, for report building.
  struct Snapshot {
    std::uint64_t records = 0;    ///< task traces absorbed
    std::uint64_t dropped = 0;    ///< ring records lost to overwrite
    std::uint64_t harvests = 0;   ///< harvest cycles run
    std::uint64_t updates = 0;    ///< driver updates observed
    support::Histogram staleness;
    std::vector<support::Histogram> stages;             ///< kNumStages
    std::vector<std::vector<support::Histogram>> workers;  ///< [w][kWorkerStages]
    std::vector<TaskTrace> samples;                     ///< reservoir content
  };

  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::uint64_t records_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t harvests_ = 0;
  std::uint64_t updates_ = 0;
  support::Histogram staleness_;
  std::vector<support::Histogram> stages_;
  std::vector<std::vector<support::Histogram>> workers_;
  // Reservoir (Algorithm R): deterministic given the seed and arrival order.
  std::size_t reservoir_capacity_ = 0;
  std::uint64_t reservoir_seen_ = 0;
  support::RngStream reservoir_rng_{1};
  std::vector<TaskTrace> samples_;
};

}  // namespace asyncml::telemetry
