#pragma once

// The harvested, run-level telemetry result and its versioned JSON export.
//
// A TelemetryReport is an immutable summary built from a TelemetryStore
// snapshot at run end: per-stage summaries with share-of-total, per-worker
// breakdowns, the staleness histogram, and the sampled whole-task traces.
// to_json() emits schema_version 1 (docs/TELEMETRY.md documents the schema);
// tools/bench_diff.py diffs two exports stage by stage.

#include <cstdint>
#include <string>
#include <vector>

#include "support/histogram.hpp"
#include "telemetry/store.hpp"
#include "telemetry/telemetry.hpp"

namespace asyncml::telemetry {

struct StageSummary {
  std::string name;
  std::uint64_t count = 0;
  double sum_ns = 0.0;
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double max_ns = 0.0;
  /// This stage's fraction of the total time across all stages.
  double share = 0.0;
  support::Histogram hist;
};

struct WorkerBreakdown {
  int worker = 0;
  std::vector<StageSummary> stages;  ///< worker-side stages only
};

struct TelemetryReport {
  int schema_version = 1;
  std::uint64_t records = 0;
  std::uint64_t dropped = 0;
  std::uint64_t harvests = 0;
  std::uint64_t updates = 0;
  StageSummary staleness;  ///< unit: versions, not ns (name "staleness")
  std::vector<StageSummary> stages;
  std::vector<WorkerBreakdown> workers;
  std::vector<TaskTrace> samples;

  [[nodiscard]] static TelemetryReport build(
      const TelemetryStore::Snapshot& snap);

  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path`, creating parent directories best-effort.
  /// Returns false (and warns on stderr) when the file cannot be written.
  bool write_json(const std::string& path) const;
};

}  // namespace asyncml::telemetry
