#pragma once

// Cluster-wide telemetry front end: per-executor-thread rings + harvest.
//
// The Cluster always owns one TelemetryRecorder (so worker code can hold a
// stable pointer), but it is inert until a solver arms it from
// SolverConfig::telemetry. Disabled cost is a single relaxed atomic load per
// task. Harvests — triggered every `harvest_every` processed results by the
// coordinator's drain thread, plus a final sweep at run end — drain every
// ring into the TelemetryStore under a mutex that serializes consumers (the
// rings are single-consumer by contract).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "telemetry/ring.hpp"
#include "telemetry/store.hpp"
#include "telemetry/telemetry.hpp"

namespace asyncml::telemetry {

struct TelemetryReport;

class TelemetryRecorder {
 public:
  TelemetryRecorder(std::size_t num_workers, std::size_t cores_per_worker);

  /// Arm for a run: fresh rings at the configured capacity, reset store and
  /// reservoir. Must not race in-flight tasks (solvers arm before dispatch).
  void configure(const TelemetryConfig& config);

  void disable() { enabled_.store(false, std::memory_order_relaxed); }

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Producer side: push one finished task trace into the calling executor
  /// thread's ring. Lock-free; never blocks; overwrites oldest on overflow.
  void record(std::size_t worker, std::size_t core, const TaskTrace& trace) {
    const std::size_t slot = worker * cores_per_worker_ + core;
    if (slot < rings_.size()) rings_[slot]->push(trace);
  }

  void record_staleness(std::uint64_t staleness) {
    store_.record_staleness(staleness);
  }

  void charge_driver(Stage stage, std::uint64_t ns) {
    store_.charge_driver(stage, ns);
  }

  void note_update() { store_.note_update(); }

  /// Harvest-cycle cadence hook, called by the coordinator drain thread per
  /// processed result: every `harvest_every`-th call drains the rings.
  void on_result_processed();

  /// Drain every ring into the store now (also the final-sweep entry point).
  void harvest();

  /// Final harvest and report build; leaves the recorder disabled.
  [[nodiscard]] std::shared_ptr<const TelemetryReport> finish();

  [[nodiscard]] const TelemetryConfig& config() const { return config_; }
  [[nodiscard]] TelemetryStore& store() { return store_; }

 private:
  std::size_t num_workers_;
  std::size_t cores_per_worker_;
  TelemetryConfig config_;
  std::atomic<bool> enabled_{false};
  std::vector<std::unique_ptr<TraceRing>> rings_;
  TelemetryStore store_;
  std::atomic<std::uint64_t> processed_{0};
  std::mutex harvest_mutex_;  ///< serializes ring consumers
};

}  // namespace asyncml::telemetry
