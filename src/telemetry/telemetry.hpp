#pragma once

// Span-based telemetry: the stage model and the per-task trace record.
//
// Every task carries a TaskTrace of timestamped pipeline segments
// (docs/TELEMETRY.md). Worker-side stages are charged by the executor loop
// and — for stages buried inside the task function, like model fetch and
// payload serialization — through a thread-local active-trace hook, so the
// store and grad-batch code never need a recorder handle threaded through.
// The driver-side stages (accumulate, broadcast-publish) are charged by
// AsyncContext per update.
//
// Everything here is a no-op costing one predictable branch when telemetry
// is disabled: the TLS pointer stays null and ScopedStageTimer never reads
// the clock.

#include <array>
#include <cstdint>
#include <string>

#include "support/stopwatch.hpp"

namespace asyncml::telemetry {

/// Pipeline segments of one task's life, in pipeline order. The first seven
/// are measured on the worker per task; the last two are measured on the
/// driver per update.
enum class Stage : std::uint8_t {
  kQueueWait = 0,     ///< submit -> worker thread picks the task up
  kDequeueDelay,      ///< pickup -> task function starts (incl. migration)
  kModelFetch,        ///< materializing w at the task's model version
  kCompute,           ///< task function minus fetch/serialize time
  kServicePad,        ///< padding sleep to the service floor x delay model
  kSerialize,         ///< gradient -> wire payload (+ injected serialize delay)
  kResultChannel,     ///< modeled transfer of the result to the coordinator
  kAccumulate,        ///< driver: collect return -> publish start
  kBroadcastPublish,  ///< driver: publishing the new model version
  kDiskIo,            ///< disk-tier blob I/O. An attribution *overlay*, not a
                      ///< pipeline segment: worker-side fault-ins run inside
                      ///< kModelFetch (so fetch time already contains it);
                      ///< driver-side write-through spill is charged per
                      ///< update next to kBroadcastPublish.
};

inline constexpr std::size_t kNumStages = 10;
inline constexpr std::size_t kWorkerStages = 7;  ///< first N stages are per-task

[[nodiscard]] inline const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kDequeueDelay: return "dequeue_delay";
    case Stage::kModelFetch: return "model_fetch";
    case Stage::kCompute: return "compute";
    case Stage::kServicePad: return "service_pad";
    case Stage::kSerialize: return "serialize";
    case Stage::kResultChannel: return "result_channel";
    case Stage::kAccumulate: return "accumulate";
    case Stage::kBroadcastPublish: return "broadcast_publish";
    case Stage::kDiskIo: return "disk_io";
  }
  return "unknown";
}

/// One task's span record: identity plus nanoseconds per worker-side stage.
/// POD on purpose — it is packed word-by-word into the lock-free TraceRing.
struct TaskTrace {
  std::int32_t worker = 0;
  std::int32_t partition = 0;
  std::uint64_t seq = 0;
  std::uint64_t model_version = 0;
  std::array<std::uint64_t, kNumStages> stage_ns{};

  void charge(Stage stage, std::uint64_t ns) {
    stage_ns[static_cast<std::size_t>(stage)] += ns;
  }

  void set(Stage stage, std::uint64_t ns) {
    stage_ns[static_cast<std::size_t>(stage)] = ns;
  }

  [[nodiscard]] std::uint64_t ns(Stage stage) const {
    return stage_ns[static_cast<std::size_t>(stage)];
  }
};

/// Per-run telemetry knobs, carried on SolverConfig. Off by default: the
/// disabled path must be bit-and-timing-identical to a build without the
/// subsystem.
struct TelemetryConfig {
  bool enabled = false;
  /// Capacity of each per-executor-thread trace ring (rounded up to a power
  /// of two). On overflow the ring overwrites the OLDEST records.
  std::size_t ring_capacity = 1024;
  /// Harvest the rings into the run-level store every N processed results.
  std::uint64_t harvest_every = 32;
  /// Whole-task span records kept by reservoir sampling across the run.
  std::size_t reservoir_capacity = 256;
  /// Seed for the sampling reservoir: same seed + same arrival order =>
  /// same retained samples.
  std::uint64_t sample_seed = 1;
  /// When non-empty, TelemetryReport::to_json is written here after the run
  /// (next to BENCH_micro.json for the bench harness).
  std::string export_path;
};

// ---- Thread-local active-trace hook -----------------------------------

/// The executor loop points this at the in-flight task's trace for the
/// duration of the task function, so deep callees (model cache, payload
/// wrap) can charge their stage without plumbing.
inline thread_local TaskTrace* t_active_trace = nullptr;

[[nodiscard]] inline TaskTrace* active_trace() { return t_active_trace; }
inline void set_active_trace(TaskTrace* trace) { t_active_trace = trace; }

inline void charge_active(Stage stage, std::uint64_t ns) {
  if (TaskTrace* trace = t_active_trace; trace != nullptr) {
    trace->charge(stage, ns);
  }
}

/// RAII stage timer against the thread-local active trace. When no trace is
/// active (telemetry off, or a thread outside the executor loop) the
/// constructor is a single null check and the clock is never read.
class ScopedStageTimer {
 public:
  explicit ScopedStageTimer(Stage stage)
      : trace_(t_active_trace), stage_(stage) {
    if (trace_ != nullptr) start_ = support::Clock::now();
  }

  ~ScopedStageTimer() {
    if (trace_ != nullptr) {
      trace_->charge(stage_, static_cast<std::uint64_t>(
                                 (support::Clock::now() - start_).count()));
    }
  }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  TaskTrace* trace_;
  Stage stage_;
  support::TimePoint start_{};
};

}  // namespace asyncml::telemetry
