#include "telemetry/store.hpp"

namespace asyncml::telemetry {

TelemetryStore::TelemetryStore(std::size_t num_workers)
    : stages_(kNumStages),
      workers_(num_workers, std::vector<support::Histogram>(kWorkerStages)) {}

void TelemetryStore::reset(std::size_t reservoir_capacity,
                           std::uint64_t sample_seed) {
  std::lock_guard lock(mutex_);
  records_ = dropped_ = harvests_ = updates_ = 0;
  staleness_.reset();
  for (auto& h : stages_) h.reset();
  for (auto& per_worker : workers_) {
    for (auto& h : per_worker) h.reset();
  }
  reservoir_capacity_ = reservoir_capacity;
  reservoir_seen_ = 0;
  reservoir_rng_ = support::RngStream(sample_seed);
  samples_.clear();
  samples_.reserve(reservoir_capacity);
}

void TelemetryStore::absorb(const TaskTrace& trace) {
  std::lock_guard lock(mutex_);
  records_ += 1;
  for (std::size_t s = 0; s < kWorkerStages; ++s) {
    const auto ns = static_cast<double>(trace.stage_ns[s]);
    stages_[s].record(ns);
    if (trace.worker >= 0 &&
        static_cast<std::size_t>(trace.worker) < workers_.size()) {
      workers_[static_cast<std::size_t>(trace.worker)][s].record(ns);
    }
  }
  // Reservoir sampling, Algorithm R: every trace seen so far is retained
  // with equal probability reservoir_capacity / seen.
  reservoir_seen_ += 1;
  if (reservoir_capacity_ == 0) return;
  if (samples_.size() < reservoir_capacity_) {
    samples_.push_back(trace);
  } else {
    const std::uint64_t j = reservoir_rng_.next_below(reservoir_seen_);
    if (j < reservoir_capacity_) samples_[j] = trace;
  }
}

void TelemetryStore::charge_driver(Stage stage, std::uint64_t ns) {
  std::lock_guard lock(mutex_);
  stages_[static_cast<std::size_t>(stage)].record(static_cast<double>(ns));
}

void TelemetryStore::record_staleness(std::uint64_t staleness) {
  std::lock_guard lock(mutex_);
  staleness_.record(static_cast<double>(staleness));
}

void TelemetryStore::note_dropped(std::uint64_t n) {
  if (n == 0) return;
  std::lock_guard lock(mutex_);
  dropped_ += n;
}

void TelemetryStore::note_harvest() {
  std::lock_guard lock(mutex_);
  harvests_ += 1;
}

void TelemetryStore::note_update() {
  std::lock_guard lock(mutex_);
  updates_ += 1;
}

TelemetryStore::Snapshot TelemetryStore::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot snap;
  snap.records = records_;
  snap.dropped = dropped_;
  snap.harvests = harvests_;
  snap.updates = updates_;
  snap.staleness = staleness_;
  snap.stages = stages_;
  snap.workers = workers_;
  snap.samples = samples_;
  return snap;
}

}  // namespace asyncml::telemetry
