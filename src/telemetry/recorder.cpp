#include "telemetry/recorder.hpp"

#include "telemetry/report.hpp"

namespace asyncml::telemetry {

TelemetryRecorder::TelemetryRecorder(std::size_t num_workers,
                                     std::size_t cores_per_worker)
    : num_workers_(num_workers),
      cores_per_worker_(cores_per_worker),
      store_(num_workers) {}

void TelemetryRecorder::configure(const TelemetryConfig& config) {
  std::lock_guard lock(harvest_mutex_);
  config_ = config;
  store_.reset(config.reservoir_capacity, config.sample_seed);
  processed_.store(0, std::memory_order_relaxed);
  rings_.clear();
  const std::size_t threads = num_workers_ * cores_per_worker_;
  rings_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    rings_.push_back(std::make_unique<TraceRing>(config.ring_capacity));
  }
  enabled_.store(config.enabled, std::memory_order_relaxed);
}

void TelemetryRecorder::on_result_processed() {
  const std::uint64_t n =
      processed_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t every = config_.harvest_every == 0 ? 1
                                                        : config_.harvest_every;
  if (n % every == 0) harvest();
}

void TelemetryRecorder::harvest() {
  std::lock_guard lock(harvest_mutex_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    const TraceRing::DrainStats stats =
        ring->drain([this](const TaskTrace& trace) { store_.absorb(trace); });
    dropped += stats.dropped;
  }
  store_.note_dropped(dropped);
  store_.note_harvest();
}

std::shared_ptr<const TelemetryReport> TelemetryRecorder::finish() {
  harvest();
  disable();
  return std::make_shared<const TelemetryReport>(
      TelemetryReport::build(store_.snapshot()));
}

}  // namespace asyncml::telemetry
